module selfserv

go 1.24
