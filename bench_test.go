// Package selfserv_test is the benchmark harness for the experiments
// catalogued in DESIGN.md (E1–E7). Each benchmark regenerates one
// table/figure-equivalent of the paper's demo and claims; EXPERIMENTS.md
// records the measured series.
//
// Run everything:
//
//	go test -bench=. -benchmem .
//
// Or one experiment:
//
//	go test -bench=BenchmarkE3 .
package selfserv_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"selfserv/internal/circuit"
	"selfserv/internal/community"
	"selfserv/internal/controlplane"
	"selfserv/internal/core"
	"selfserv/internal/discovery"
	"selfserv/internal/engine"
	"selfserv/internal/hostapi"
	"selfserv/internal/journal"
	"selfserv/internal/limits"
	"selfserv/internal/message"
	"selfserv/internal/routing"
	"selfserv/internal/service"
	"selfserv/internal/statechart"
	"selfserv/internal/transport"
	"selfserv/internal/uddi"
	"selfserv/internal/workload"
)

// deployP2P deploys sc on a fresh platform (one host per service) and
// returns the composite plus the platform.
func deployP2P(b *testing.B, sc *statechart.Statechart, register func(p *core.Platform)) (*core.Platform, *core.Composite) {
	b.Helper()
	p := core.New(core.Options{Funcs: workload.TravelGuards()})
	b.Cleanup(func() { p.Close() })
	register(p)
	for i, svc := range sc.Services() {
		h, err := p.AddHost(fmt.Sprintf("host-%d-%s", i, svc))
		if err != nil {
			b.Fatal(err)
		}
		prov, err := p.Registry().Lookup(svc)
		if err != nil {
			b.Fatal(err)
		}
		p.RegisterService(h, prov)
	}
	comp, err := p.Deploy(sc)
	if err != nil {
		b.Fatal(err)
	}
	return p, comp
}

func registerTravel(b *testing.B) func(*core.Platform) {
	return func(p *core.Platform) {
		if _, err := workload.RegisterTravelProviders(p.Registry(), service.SimulatedOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E1: the travel scenario (Fig 2) ---------------------------------

// BenchmarkE1TravelScenario measures end-to-end latency of the paper's
// demo composite for each of its control-flow variants: domestic/near
// (4 services), domestic/far (5 services incl. car rental),
// international/far, international/near.
func BenchmarkE1TravelScenario(b *testing.B) {
	variants := []struct {
		name string
		dest string
	}{
		{"domestic-near/sydney", "sydney"},
		{"domestic-far/melbourne", "melbourne"},
		{"international-far/tokyo", "tokyo"},
		{"international-near/paris", "paris"},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			_, comp := deployP2P(b, workload.Travel(), registerTravel(b))
			req := workload.TravelRequest("bench", v.dest, true)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := comp.Execute(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E2: discovery engine throughput (Fig 1 architecture) ------------

// BenchmarkE2DiscoveryThroughput measures UDDI publish and inquiry rates
// through the full SOAP/HTTP stack, for growing registry sizes.
func BenchmarkE2DiscoveryThroughput(b *testing.B) {
	for _, preload := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("find/registry-size-%d", preload), func(b *testing.B) {
			reg := uddi.NewRegistry()
			ts := httptest.NewServer(uddi.Serve(reg, nil))
			defer ts.Close()
			c := &uddi.Client{URL: ts.URL + "/uddi"}
			biz, err := c.SaveBusiness(uddi.BusinessEntity{Name: "LoadCo"})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < preload; i++ {
				if _, err := c.SaveService(uddi.BusinessService{
					BusinessKey: biz.BusinessKey,
					Name:        fmt.Sprintf("svc-%05d", i),
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hits, err := c.FindService(uddi.ServiceQuery{NamePattern: "svc-00001", Qualifier: uddi.MatchPrefix})
				if err != nil {
					b.Fatal(err)
				}
				_ = hits
			}
		})
	}
	b.Run("publish", func(b *testing.B) {
		reg := uddi.NewRegistry()
		ts := httptest.NewServer(uddi.Serve(reg, nil))
		defer ts.Close()
		c := &uddi.Client{URL: ts.URL + "/uddi"}
		biz, err := c.SaveBusiness(uddi.BusinessEntity{Name: "LoadCo"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			svc, err := c.SaveService(uddi.BusinessService{
				BusinessKey: biz.BusinessKey,
				Name:        fmt.Sprintf("bench-%08d", i),
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.SaveBinding(uddi.BindingTemplate{
				ServiceKey: svc.ServiceKey, AccessPoint: "http://x/soap",
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E3: P2P vs centralized orchestration ------------------------------

// BenchmarkE3P2PvsCentral compares end-to-end latency of the peer-to-peer
// engine against the hub baseline on chains and parallel fans of growing
// width. Per-node load is E7.
func BenchmarkE3P2PvsCentral(b *testing.B) {
	sizes := []int{2, 4, 8, 16, 32}
	for _, k := range sizes {
		k := k
		for _, shape := range []string{"chain", "parallel"} {
			shape := shape
			var sc *statechart.Statechart
			var register func(p *core.Platform)
			if shape == "chain" {
				sc = workload.Chain(k)
				register = func(p *core.Platform) {
					workload.RegisterChainProviders(p.Registry(), k, service.SimulatedOptions{})
				}
			} else {
				sc = workload.Parallel(k)
				register = func(p *core.Platform) {
					workload.RegisterParallelProviders(p.Registry(), k, service.SimulatedOptions{})
				}
			}
			b.Run(fmt.Sprintf("%s-%d/p2p", shape, k), func(b *testing.B) {
				p, comp := deployP2P(b, sc, register)
				ctx := context.Background()
				in := map[string]string{"x": "0"}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := comp.Execute(ctx, in); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				total := p.Network().Stats().Total()
				b.ReportMetric(float64(total.MsgsOut)/float64(b.N), "msgs/exec")
				b.ReportMetric(float64(total.FramesOut)/float64(b.N), "frames/exec")
			})
			b.Run(fmt.Sprintf("%s-%d/central", shape, k), func(b *testing.B) {
				_, comp := deployP2P(b, sc, register)
				central, err := comp.NewCentralBaseline(fmt.Sprintf("central-%s-%d", shape, k))
				if err != nil {
					b.Fatal(err)
				}
				defer central.Close()
				ctx := context.Background()
				in := map[string]string{"x": "0"}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := central.Execute(ctx, in); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE3ParallelFanColocated measures the Network v2 coalescing win
// in isolation: Parallel(k) with every branch service on ONE host, so the
// wrapper's start fan is k notifications to a single destination. With
// per-round outbox coalescing the whole fan is one wire frame
// (frames/exec ≈ rounds, not messages); before v2 it was k frames.
func BenchmarkE3ParallelFanColocated(b *testing.B) {
	for _, k := range []int{8, 32} {
		k := k
		b.Run(fmt.Sprintf("parallel-%d/p2p-one-host", k), func(b *testing.B) {
			p := core.New(core.Options{Funcs: workload.TravelGuards()})
			b.Cleanup(func() { p.Close() })
			workload.RegisterParallelProviders(p.Registry(), k, service.SimulatedOptions{})
			h, err := p.AddHost("colo-host")
			if err != nil {
				b.Fatal(err)
			}
			for i := 1; i <= k; i++ {
				prov, err := p.Registry().Lookup(fmt.Sprintf("svc%d", i))
				if err != nil {
					b.Fatal(err)
				}
				p.RegisterService(h, prov)
			}
			comp, err := p.Deploy(workload.Parallel(k))
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			in := map[string]string{"x": "0"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := comp.Execute(ctx, in); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			wrapper := p.Network().Stats().Nodes[comp.Wrapper().Addr()]
			b.ReportMetric(float64(wrapper.MsgsOut)/float64(b.N), "fan-msgs/exec")
			b.ReportMetric(float64(wrapper.FramesOut)/float64(b.N), "fan-frames/exec")
		})
	}
}

// BenchmarkE3PipelinedChainTCP measures CROSS-ROUND batching (the
// FlowOptions.FlushDelay knob) on a pipelined workload over real TCP:
// Chain(8) with one host per service and many executions in flight, so
// successive firing rounds of DIFFERENT instances address the same
// destination connections back-to-back. With FlushDelay 0 every round
// is its own wire write (the PR 3 behavior); with the Nagle delay
// enabled the per-destination writers fold the pipeline's bursts into
// merged frames — wire-frames/exec drops while ns/op absorbs at most
// one delay per hop. The sweep {0, 200µs, 1ms} is the latency/
// throughput trade recorded in BENCH_crossround.json.
func BenchmarkE3PipelinedChainTCP(b *testing.B) {
	const k = 8
	for _, delay := range []time.Duration{0, 200 * time.Microsecond, time.Millisecond} {
		delay := delay
		b.Run(fmt.Sprintf("chain-%d/flush-%s", k, delay), func(b *testing.B) {
			net := transport.NewTCP(transport.FlowOptions{FlushDelay: delay})
			p := core.New(core.Options{Network: net})
			// The platform doesn't own a caller-supplied network; close it
			// too or each sub-run leaks listeners and writer goroutines.
			b.Cleanup(func() { p.Close(); net.Close() })
			workload.RegisterChainProviders(p.Registry(), k, service.SimulatedOptions{})
			sc := workload.Chain(k)
			for _, svc := range sc.Services() {
				h, err := p.AddHost("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				prov, err := p.Registry().Lookup(svc)
				if err != nil {
					b.Fatal(err)
				}
				p.RegisterService(h, prov)
			}
			comp, err := p.Deploy(sc)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			in := map[string]string{"x": "0"}
			b.SetParallelism(4) // keep the pipeline full: 4×GOMAXPROCS instances in flight
			var execErr atomic.Pointer[error]
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := comp.Execute(ctx, in); err != nil {
						// FailNow must not run on a RunParallel worker; park
						// the first error for the benchmark goroutine.
						execErr.CompareAndSwap(nil, &err)
						return
					}
				}
			})
			b.StopTimer()
			if errp := execErr.Load(); errp != nil {
				b.Fatal(*errp)
			}
			total := net.Stats().Total()
			// FramesOut counts frames ACCEPTED (one per Send/SendBatch);
			// FramesMerged counts those folded into another frame's write —
			// the difference is what actually hit the wire.
			b.ReportMetric(float64(total.FramesOut)/float64(b.N), "frames/exec")
			b.ReportMetric(float64(total.FramesOut-total.FramesMerged)/float64(b.N), "wire-frames/exec")
			b.ReportMetric(total.MergedMsgsPerFrame(), "merged-msgs/frame")
		})
	}
}

// --- E8: concurrent-instance scaling -----------------------------------

// BenchmarkE8ConcurrentInstances measures how the engine scales with the
// number of in-flight executions of ONE composite — the regime the
// paper's "heavy traffic" pitch lives in, where a central hub melts and
// peer-to-peer coordinators are supposed to keep going. M workers each
// run executions back-to-back (an open pipe of M concurrent instances
// per wrapper and per coordinator), sharing the b.N execution budget.
// Reported per cell: p50 per-execution latency and aggregate execs/sec.
// The sweep M ∈ {1, 8, 64, 256} over Parallel(8) and Chain(8) is the
// series recorded in BENCH_concurrency.json; contention inside the
// engine (instance-map locks, receive dispatch) shows up here and
// nowhere else in the harness.
func BenchmarkE8ConcurrentInstances(b *testing.B) {
	const k = 8
	for _, shape := range []string{"parallel", "chain"} {
		shape := shape
		var sc *statechart.Statechart
		var register func(p *core.Platform)
		if shape == "chain" {
			sc = workload.Chain(k)
			register = func(p *core.Platform) {
				workload.RegisterChainProviders(p.Registry(), k, service.SimulatedOptions{})
			}
		} else {
			sc = workload.Parallel(k)
			register = func(p *core.Platform) {
				workload.RegisterParallelProviders(p.Registry(), k, service.SimulatedOptions{})
			}
		}
		for _, m := range []int{1, 8, 64, 256} {
			m := m
			b.Run(fmt.Sprintf("%s-%d/inflight-%d", shape, k, m), func(b *testing.B) {
				_, comp := deployP2P(b, sc, register)
				ctx := context.Background()
				in := map[string]string{"x": "0"}
				if _, err := comp.Execute(ctx, in); err != nil {
					b.Fatal(err) // warm the directory and conn caches
				}
				var next atomic.Int64
				var execErr atomic.Pointer[error]
				lat := make([][]time.Duration, m)
				var wg sync.WaitGroup
				b.ResetTimer()
				start := time.Now()
				for w := 0; w < m; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for next.Add(1) <= int64(b.N) {
							t0 := time.Now()
							if _, err := comp.Execute(ctx, in); err != nil {
								// FailNow must not run off the benchmark
								// goroutine; park the first error instead.
								execErr.CompareAndSwap(nil, &err)
								return
							}
							lat[w] = append(lat[w], time.Since(t0))
						}
					}(w)
				}
				wg.Wait()
				elapsed := time.Since(start)
				b.StopTimer()
				if errp := execErr.Load(); errp != nil {
					b.Fatal(*errp)
				}
				var all []time.Duration
				for _, ls := range lat {
					all = append(all, ls...)
				}
				sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
				if len(all) > 0 {
					// p50 AND p95: under the pre-laned engine the median
					// looked fine while the tail starved (unfair
					// goroutine-per-frame scheduling); the spread between
					// the two is the fairness observable.
					b.ReportMetric(float64(all[len(all)/2].Microseconds()), "p50-µs")
					b.ReportMetric(float64(all[len(all)*95/100].Microseconds()), "p95-µs")
				}
				b.ReportMetric(float64(len(all))/elapsed.Seconds(), "execs/sec")
			})
		}
	}
}

// --- E4: community delegation policies --------------------------------

// BenchmarkE4CommunityPolicies measures delegation under heterogeneous
// members (fast, slow, flaky, pricey) for each policy. ns/op is the mean
// invocation latency; the fail metric reports the failure fraction.
func BenchmarkE4CommunityPolicies(b *testing.B) {
	for _, policyName := range []string{"random", "round-robin", "least-loaded", "qos", "cheapest"} {
		policyName := policyName
		b.Run(policyName, func(b *testing.B) {
			policy, err := community.PolicyByName(policyName, 11)
			if err != nil {
				b.Fatal(err)
			}
			comm := community.New("AccommodationBooking", community.Options{Policy: policy})
			members := []struct {
				brand    string
				latency  time.Duration
				failRate float64
				cost     float64
			}{
				{"Fast", 50 * time.Microsecond, 0, 3},
				{"Slow", 2 * time.Millisecond, 0, 2},
				{"Flaky", 100 * time.Microsecond, 0.3, 1},
				{"Steady", 300 * time.Microsecond, 0, 4},
			}
			for i, m := range members {
				if err := comm.Join(&community.Member{
					Provider: service.NewAccommodationBooking(m.brand, service.SimulatedOptions{
						BaseLatency: m.latency, FailRate: m.failRate, Seed: int64(i + 1),
					}),
					Cost: m.cost,
				}); err != nil {
					b.Fatal(err)
				}
			}
			req := service.Request{
				Service: "AccommodationBooking", Operation: "book",
				Params: map[string]string{"customer": "bench", "dest": "sydney"},
			}
			ctx := context.Background()
			failures := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := comm.Invoke(ctx, req); err != nil {
					failures++
				}
			}
			b.ReportMetric(float64(failures)/float64(b.N), "failrate")
		})
	}
}

// --- E5: routing-table generation (deployer) ---------------------------

// BenchmarkE5RoutingTableGen measures the deployer's static compilation
// cost against statechart size and nesting depth, supporting the paper's
// claim that coordinators need no runtime scheduling because the analysis
// is a cheap precomputation.
func BenchmarkE5RoutingTableGen(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256} {
		for _, depth := range []int{1, 3} {
			sc := workload.RandomChart(workload.RandomOptions{
				States: n, MaxDepth: depth, BranchProb: 0.25, ParallelProb: 0.2, Seed: 1234,
			})
			b.Run(fmt.Sprintf("states-%d/depth-%d", n, depth), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					plan, err := routing.Generate(sc)
					if err != nil {
						b.Fatal(err)
					}
					_ = plan
				}
				b.ReportMetric(float64(len(sc.BasicStates())), "basicstates")
			})
		}
	}
}

// --- E6: locate and execute (Fig 3) ------------------------------------

// BenchmarkE6LocateAndExecute measures the full end-user flow: search the
// UDDI registry, resolve WSDL binding details, and invoke the operation
// via SOAP.
func BenchmarkE6LocateAndExecute(b *testing.B) {
	reg := uddi.NewRegistry()
	mux := uddi.Serve(reg, nil)
	dfb := service.NewDomesticFlightBooking(service.SimulatedOptions{})
	mux.Handle("/soap/dfb", discovery.ServiceEndpoint(dfb))
	ts := httptest.NewServer(mux)
	defer ts.Close()
	wsdlH, err := discovery.WSDLEndpoint(dfb, ts.URL+"/soap/dfb")
	if err != nil {
		b.Fatal(err)
	}
	mux.Handle("/wsdl/dfb", wsdlH)

	eng := discovery.NewEngine(ts.URL + "/uddi")
	if _, err := eng.Register(discovery.Publication{
		ProviderName: "QF Airlines",
		ServiceName:  "DomesticFlightBooking",
		Endpoint:     ts.URL + "/soap/dfb",
		WSDLURL:      ts.URL + "/wsdl/dfb",
	}); err != nil {
		b.Fatal(err)
	}
	params := map[string]string{"customer": "bench", "dest": "sydney"}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc, err := eng.LocateOne("DomesticFlightBooking")
		if err != nil {
			b.Fatal(err)
		}
		out, err := eng.Invoke(ctx, loc, "book", params)
		if err != nil {
			b.Fatal(err)
		}
		if out["ref"] == "" {
			b.Fatal("no ref")
		}
	}
}

// --- E7: per-node coordination load ------------------------------------

// BenchmarkE7NodeLoad reports messages handled per execution by (a) the
// busiest coordinator node under P2P and (b) the hub under centralized
// orchestration, on Parallel(k). The paper's availability argument is
// exactly this asymmetry.
func BenchmarkE7NodeLoad(b *testing.B) {
	for _, k := range []int{4, 8, 16} {
		k := k
		sc := workload.Parallel(k)
		register := func(p *core.Platform) {
			workload.RegisterParallelProviders(p.Registry(), k, service.SimulatedOptions{})
		}
		b.Run(fmt.Sprintf("parallel-%d/p2p", k), func(b *testing.B) {
			p, comp := deployP2P(b, sc, register)
			ctx := context.Background()
			in := map[string]string{"x": "0"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := comp.Execute(ctx, in); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			stats := p.Network().Stats()
			var worstCoord int64
			for addr, ns := range stats.Nodes {
				if strings.HasPrefix(addr, "host-") {
					if t := ns.MsgsIn + ns.MsgsOut; t > worstCoord {
						worstCoord = t
					}
				}
			}
			b.ReportMetric(float64(worstCoord)/float64(b.N), "busiest-msgs/exec")
			total := stats.Total()
			b.ReportMetric(float64(total.FramesOut)/float64(b.N), "frames/exec")
		})
		b.Run(fmt.Sprintf("parallel-%d/central", k), func(b *testing.B) {
			p, comp := deployP2P(b, sc, register)
			central, err := comp.NewCentralBaseline(fmt.Sprintf("central-e7-%d", k))
			if err != nil {
				b.Fatal(err)
			}
			defer central.Close()
			ctx := context.Background()
			in := map[string]string{"x": "0"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := central.Execute(ctx, in); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			hub := p.Network().Stats().Nodes[central.Addr()]
			b.ReportMetric(float64(hub.MsgsIn+hub.MsgsOut)/float64(b.N), "hub-msgs/exec")
		})
	}
}

// --- E9: availability under churn --------------------------------------

// incStep is the chain workload's step function: x -> x+1.
func incStep(_ context.Context, p map[string]string) (map[string]string, error) {
	x, err := strconv.Atoi(p["x"])
	if err != nil {
		return nil, fmt.Errorf("bad x %q: %w", p["x"], err)
	}
	return map[string]string{"x": strconv.Itoa(x + 1)}, nil
}

// chaosChain deploys Chain(8) whose fourth state is served by a
// two-member community — a primary the chaos scenario abuses and a
// steady backup — over an in-memory network with the given message drop
// rate. churn=true arms the availability layer (failover, per-member
// breakers, tenant limits); churn=false is the paper's single-delegation
// baseline.
func chaosChain(b *testing.B, dropRate, primaryFail float64, churn bool) (*core.Composite, *service.Simulated) {
	const k = 8
	net := transport.NewInMem(transport.InMemOptions{DropRate: dropRate, Seed: 7})
	opts := core.Options{Network: net}
	if churn {
		opts.Limits = limits.New(limits.Options{
			PerTenant: map[string]limits.Limit{"noisy": {Rate: 20, Burst: 20}},
		})
	}
	p := core.New(opts)
	b.Cleanup(func() {
		p.Close()
		net.Close()
	})

	primary := service.NewSimulated("ChaosPrimary", service.SimulatedOptions{FailRate: primaryFail, Seed: 11})
	primary.Handle("run", incStep)
	backup := service.NewSimulated("ChaosBackup", service.SimulatedOptions{})
	backup.Handle("run", incStep)

	sc := workload.Chain(k)
	for i, svc := range sc.Services() {
		h, err := p.AddHost(fmt.Sprintf("chaos-host-%d", i))
		if err != nil {
			b.Fatal(err)
		}
		if svc == "svc4" {
			commOpts := community.Options{Policy: community.NewCheapest()}
			if churn {
				commOpts.Failover = 1
				commOpts.Breaker = &circuit.Options{
					Window: 8, Threshold: 0.5, MinSamples: 4, OpenFor: 50 * time.Millisecond,
				}
			}
			comm := community.New("svc4", commOpts)
			for _, m := range []*community.Member{
				{Provider: primary, Cost: 1}, // preferred while it behaves
				{Provider: backup, Cost: 2},
			} {
				if err := comm.Join(m); err != nil {
					b.Fatal(err)
				}
			}
			p.RegisterService(h, comm)
			continue
		}
		s := service.NewSimulated(svc, service.SimulatedOptions{})
		s.Handle("run", incStep)
		p.RegisterService(h, s)
	}
	comp, err := p.Deploy(sc)
	if err != nil {
		b.Fatal(err)
	}
	return comp, primary
}

// BenchmarkE9Availability is the chaos sweep behind BENCH_availability
// .json: Chain(8) with a community-backed state, executed under three
// chaos scenarios — the preferred member dead (death), 2% message loss
// plus a flaky member (loss), and a noisy tenant flooding the platform
// (overload) — each with the churn layer off (single delegation, no
// breakers, no limits) and on (failover + breakers + tenant limits).
// Reported per cell: completion rate and p95 latency of completed
// executions. Timed-out or faulted executions count against completion.
func BenchmarkE9Availability(b *testing.B) {
	scenarios := []struct {
		name     string
		drop     float64 // transport message drop rate
		fail     float64 // primary member fail rate
		dead     bool    // kill the primary outright
		overload bool    // flood with a rate-limited tenant
	}{
		{name: "death", dead: true},
		{name: "loss", drop: 0.02, fail: 0.2},
		{name: "overload", fail: 0.1, overload: true},
	}
	for _, scen := range scenarios {
		for _, churn := range []bool{false, true} {
			mode := "off"
			if churn {
				mode = "on"
			}
			b.Run(fmt.Sprintf("%s/churn-%s", scen.name, mode), func(b *testing.B) {
				comp, primary := chaosChain(b, scen.drop, scen.fail, churn)
				ctx := context.Background()
				in := map[string]string{"x": "0"}
				warm, cancel := context.WithTimeout(ctx, time.Second)
				comp.Execute(warm, in) // warm the directory; may fail under chaos
				cancel()
				if scen.dead {
					primary.SetDown(true)
				}
				var stop chan struct{}
				if scen.overload {
					// Four noisy-tenant clients flooding back-to-back; with
					// churn on the limiter sheds them at wrapper admission.
					stop = make(chan struct{})
					for w := 0; w < 4; w++ {
						go func() {
							noisy := map[string]string{"x": "0", engine.TenantVar: "noisy"}
							for {
								select {
								case <-stop:
									return
								default:
								}
								c, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
								if _, err := comp.Execute(c, noisy); err != nil {
									time.Sleep(time.Millisecond) // shed/fault: back off
								}
								cancel()
							}
						}()
					}
				}
				ok := 0
				var lats []time.Duration
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
					t0 := time.Now()
					if _, err := comp.Execute(c, in); err == nil {
						ok++
						lats = append(lats, time.Since(t0))
					}
					cancel()
				}
				b.StopTimer()
				if stop != nil {
					close(stop)
				}
				b.ReportMetric(float64(ok)/float64(b.N), "completion")
				if len(lats) > 0 {
					sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
					b.ReportMetric(float64(lats[len(lats)*95/100].Microseconds()), "p95-µs")
				}
			})
		}
	}
}

// --- E11: zero-downtime redeploy ---------------------------------------

// e11Fleet is a controlplane-managed deployment of Chain(n): one hostapi
// daemon per component service on a shared in-memory network, a control
// plane over their admin URLs, and a version-pinned wrapper per release.
type e11Fleet struct {
	net    transport.Network
	cp     *controlplane.ControlPlane
	admins []*httptest.Server
	sc     *statechart.Statechart
}

func newE11Fleet(b *testing.B, n int) *e11Fleet {
	b.Helper()
	net := transport.NewInMem(transport.InMemOptions{})
	b.Cleanup(func() { net.Close() })
	f := &e11Fleet{net: net, sc: workload.Chain(n)}
	var urls []string
	for i := 1; i <= n; i++ {
		reg := service.NewRegistry()
		s := service.NewSimulated(fmt.Sprintf("svc%d", i), service.SimulatedOptions{})
		s.Handle("run", incStep)
		reg.Register(s)
		dir := engine.NewDirectory()
		h, err := engine.NewHost(net, fmt.Sprintf("e11-coord-%d", i), reg, dir, engine.HostOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { h.Close() })
		admin := httptest.NewServer(hostapi.NewServer(h, dir, reg.Names))
		b.Cleanup(admin.Close)
		f.admins = append(f.admins, admin)
		urls = append(urls, admin.URL)
	}
	f.cp = controlplane.New(urls...)
	return f
}

// release rolls out the next version and returns its wrapper, seeded
// with the resolved peer routes and pinned to the release version.
func (f *e11Fleet) release(b *testing.B, wrapperAddr string) *engine.Wrapper {
	b.Helper()
	rel, err := f.cp.Prepare(f.sc)
	if err != nil {
		b.Fatal(err)
	}
	wdir := engine.NewDirectory()
	w, err := engine.NewCompiledWrapper(f.net, wrapperAddr, wdir, rel.Compiled, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { w.Close() })
	if err := f.cp.Apply(rel, w.Addr()); err != nil {
		b.Fatal(err)
	}
	for id, addrs := range rel.Peers {
		wdir.SetReplicasV(rel.Composite, rel.Version, id, addrs)
	}
	wdir.SetCurrent(rel.Composite, rel.Version)
	return w
}

// e11Report reports E11's per-cell metrics and enforces its acceptance
// criterion: zero failed executions across the run.
func e11Report(b *testing.B, failed int, lats []time.Duration) {
	b.ReportMetric(float64(failed), "failed")
	if failed > 0 {
		b.Fatalf("E11: %d failed execution(s); a live swap must not drop work", failed)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		b.ReportMetric(float64(lats[len(lats)*95/100].Microseconds()), "p95-µs")
	}
}

// BenchmarkE11Redeploy is the live-redeploy sweep behind
// BENCH_redeploy.json: Chain(8) executed back-to-back while the
// composite is redeployed underneath the driver. Cells:
//
//   - platform-swap: in-process core.Platform, a fresh plan version
//     deployed every 50 executions; the driver follows the platform's
//     current composite and retries once when an admission lands on a
//     wrapper that just started draining.
//   - controlplane-swap: a hostapi fleet managed by the control plane,
//     one mid-run rollout; the replaced wrapper drains in the
//     background while the new version serves.
//   - controlplane-down: the same fleet with every admin endpoint shut
//     down after the initial rollout — data-plane autonomy: executions
//     proceed on last-known-good with zero admin calls.
//
// Per cell: execs/sec (implicit in ns/op), p95 latency, and the failed-
// execution count, which must be ZERO everywhere — the benchmark fails
// otherwise.
func BenchmarkE11Redeploy(b *testing.B) {
	const n = 8

	b.Run("platform-swap", func(b *testing.B) {
		p := core.New(core.Options{})
		b.Cleanup(func() { p.Close() })
		sc := workload.Chain(n)
		for i, svc := range sc.Services() {
			h, err := p.AddHost(fmt.Sprintf("e11-host-%d", i))
			if err != nil {
				b.Fatal(err)
			}
			s := service.NewSimulated(svc, service.SimulatedOptions{})
			s.Handle("run", incStep)
			p.RegisterService(h, s)
		}
		comp, err := p.Deploy(sc)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		in := map[string]string{"x": "0"}
		const swapEvery = 50
		swaps, failed := 0, 0
		var lats []time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%swapEvery == 0 {
				next, err := p.Deploy(sc)
				if err != nil {
					b.Fatal(err)
				}
				comp = next
				swaps++
			}
			t0 := time.Now()
			_, err := comp.Execute(ctx, in)
			if errors.Is(err, engine.ErrDraining) {
				// A concurrent retirement raced the driver's handle; the
				// shed is loud by design — follow the swap and retry.
				if cur, ok := p.Composite(sc.Name); ok {
					comp = cur
					_, err = comp.Execute(ctx, in)
				}
			}
			if err != nil {
				failed++
				continue
			}
			lats = append(lats, time.Since(t0))
		}
		b.StopTimer()
		b.ReportMetric(float64(swaps), "swaps")
		e11Report(b, failed, lats)
	})

	b.Run("controlplane-swap", func(b *testing.B) {
		f := newE11Fleet(b, n)
		w := f.release(b, "e11-wrapper-1")
		ctx := context.Background()
		in := map[string]string{"x": "0"}
		failed := 0
		var lats []time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i == b.N/2 {
				// THE swap: v2 rolls out and takes over; v1 drains in the
				// background while v2 is already serving.
				old := w
				w = f.release(b, "e11-wrapper-2")
				go func() {
					dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
					defer cancel()
					old.Drain(dctx)
					old.Close()
				}()
			}
			t0 := time.Now()
			if _, err := w.Execute(ctx, in); err != nil {
				failed++
				continue
			}
			lats = append(lats, time.Since(t0))
		}
		b.StopTimer()
		e11Report(b, failed, lats)
	})

	b.Run("controlplane-down", func(b *testing.B) {
		f := newE11Fleet(b, n)
		w := f.release(b, "e11-wrapper-1")
		// The control plane goes dark: every admin endpoint shut down.
		for _, admin := range f.admins {
			admin.Close()
		}
		calls := f.cp.AdminCalls()
		ctx := context.Background()
		in := map[string]string{"x": "0"}
		failed := 0
		var lats []time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := w.Execute(ctx, in); err != nil {
				failed++
				continue
			}
			lats = append(lats, time.Since(t0))
		}
		b.StopTimer()
		if got := f.cp.AdminCalls(); got != calls {
			b.Fatalf("E11: executions issued %d admin calls; the control plane must never sit in the hot path", got-calls)
		}
		e11Report(b, failed, lats)
	})
}

// e12Chain deploys Chain(n) on a single-host platform with the given
// options and runs b.N sequential executions, reporting the journal's
// append and fsync cost per execution. The journal-on and journal-off
// cells of E12 differ only in opts.Durability.
func e12Chain(b *testing.B, n int, opts core.Options) {
	p := core.New(opts)
	b.Cleanup(func() { p.Close() })
	if err := p.DurabilityError(); err != nil {
		b.Fatal(err)
	}
	h, err := p.AddHost("e12-host")
	if err != nil {
		b.Fatal(err)
	}
	sc := workload.Chain(n)
	for _, svc := range sc.Services() {
		s := service.NewSimulated(svc, service.SimulatedOptions{})
		s.Handle("run", incStep)
		p.RegisterService(h, service.NewIdempotent(s, 0))
	}
	comp, err := p.Deploy(sc)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	in := map[string]string{"x": "0"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.Execute(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := p.DurabilityStats().Journal
	b.ReportMetric(float64(st.Appends)/float64(b.N), "appends/op")
	b.ReportMetric(float64(st.Syncs)/float64(b.N), "syncs/op")
}

// e12JoinCycle is one two-phase AND-join drive in the exact shape the
// engine's passivation contract test pins (passivate_test.go): 40
// instance IDs pigeonhole over the 32-way striped table, so at cap 1 at
// least 8 half-armed joins passivate to disk in phase one and MUST
// rehydrate when phase two completes the clause. Returns the phase-two
// wall time and the host's rehydration count.
func e12JoinCycle(b *testing.B, cap int) (time.Duration, uint64) {
	b.Helper()
	const instances = 40
	net := transport.NewInMem(transport.InMemOptions{Synchronous: true})
	defer net.Close()
	fired := make(chan struct{}, instances)
	reg := service.NewRegistry()
	s := service.NewSimulated("SvcJoin", service.SimulatedOptions{})
	s.Handle("run", func(context.Context, map[string]string) (map[string]string, error) {
		fired <- struct{}{}
		return map[string]string{}, nil
	})
	reg.Register(s)
	j, err := journal.Open(journal.Options{Dir: b.TempDir(), Fsync: journal.FsyncOff})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	dir := engine.NewDirectory()
	h, err := engine.NewHost(net, "e12-pass-host", reg, dir, engine.HostOptions{
		MaxInstancesPerState: cap,
		Journal:              j,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	err = h.Install("C", &routing.Table{
		State:     "join",
		Service:   "SvcJoin",
		Operation: "run",
		Inputs: []statechart.Binding{
			{Param: "x", Var: "x"},
			{Param: "y", Var: "y"},
		},
		Preconditions: []routing.Clause{
			{Sources: []string{"s1", "s2"}},
		},
		Postprocessings: []routing.Target{{To: message.WrapperID}},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := net.Listen("e12-pass-sink", func(context.Context, *message.Message) {}); err != nil {
		b.Fatal(err)
	}
	dir.Set("C", message.WrapperID, "e12-pass-sink")
	notify := func(instance, from string, vars map[string]string) {
		err := net.Send(context.Background(), "e12-pass-host", &message.Message{
			Type: message.TypeNotify, Composite: "C", Instance: instance,
			From: from, To: "join", Vars: vars,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	// Phase 1: half-arm every join; the synchronous network makes each
	// cap-hit passivation complete before the next Send returns.
	for k := 1; k <= instances; k++ {
		notify(fmt.Sprintf("i%d", k), "s1", map[string]string{"x": fmt.Sprint(k)})
	}
	// Phase 2 (timed): complete the clause; passivated instances go
	// through the journal's passive index on this path.
	t0 := time.Now()
	for k := 1; k <= instances; k++ {
		notify(fmt.Sprintf("i%d", k), "s2", map[string]string{"y": fmt.Sprint(2 * k)})
	}
	for got := 0; got < instances; got++ {
		<-fired
	}
	return time.Since(t0), h.Rehydrated()
}

// e12BuildJournal runs execs Chain(chain) executions against a durable
// platform over dir and then kills it — leaving a journal of known
// length for the recovery cell to replay.
func e12BuildJournal(b *testing.B, dir string, chain, execs int) {
	b.Helper()
	p := core.New(core.Options{Durability: journal.Options{Dir: dir, Fsync: journal.FsyncOff}})
	if err := p.DurabilityError(); err != nil {
		b.Fatal(err)
	}
	h, err := p.AddHost("e12-rec-host")
	if err != nil {
		b.Fatal(err)
	}
	sc := workload.Chain(chain)
	for _, svc := range sc.Services() {
		s := service.NewSimulated(svc, service.SimulatedOptions{})
		s.Handle("run", incStep)
		p.RegisterService(h, service.NewIdempotent(s, 0))
	}
	comp, err := p.Deploy(sc)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for e := 0; e < execs; e++ {
		if _, err := comp.Execute(ctx, map[string]string{"x": "0"}); err != nil {
			b.Fatal(err)
		}
	}
	p.Crash()
}

// BenchmarkE12Durability is the durability sweep behind
// BENCH_durability.json. Cells:
//
//   - throughput/journal-off|journal-on: Chain(8) executions back to
//     back, with and without a fsync-off journal at every commit point
//     — the write-path cost of durable instances (appends/op makes the
//     per-execution record count explicit).
//   - rehydrate/tight-cap|roomy-cap: the two-phase AND-join drive from
//     the engine's passivation contract test; tight-cap forces ≥8
//     disk round-trips per cycle and reports µs per rehydration,
//     roomy-cap is the same drive with passivation never triggered.
//   - recovery/len-*: rebuild a crashed platform over journals of
//     increasing length and time Recover — replay cost as a function
//     of journal size.
//
// All cells run fsync-off: the suite measures the journal's code
// paths, not the disk (FsyncBatch/FsyncAlways are configuration, and
// CI runners' fsync latency is pure noise).
func BenchmarkE12Durability(b *testing.B) {
	const n = 8

	b.Run("throughput/journal-off", func(b *testing.B) {
		e12Chain(b, n, core.Options{})
	})
	b.Run("throughput/journal-on", func(b *testing.B) {
		e12Chain(b, n, core.Options{
			Durability: journal.Options{Dir: b.TempDir(), Fsync: journal.FsyncOff},
		})
	})

	b.Run("rehydrate/tight-cap", func(b *testing.B) {
		var rehydrated uint64
		var inDisk time.Duration
		for i := 0; i < b.N; i++ {
			el, re := e12JoinCycle(b, 1)
			if re == 0 {
				b.Fatal("E12: tight cap rehydrated nothing; the pigeonhole guarantee is broken")
			}
			inDisk += el
			rehydrated += re
		}
		b.ReportMetric(float64(rehydrated)/float64(b.N), "rehydrated/op")
		b.ReportMetric(float64(inDisk.Microseconds())/float64(rehydrated), "µs/rehydrate")
	})
	b.Run("rehydrate/roomy-cap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, re := e12JoinCycle(b, 80); re != 0 {
				b.Fatalf("E12: roomy cap rehydrated %d instances, want 0", re)
			}
		}
	})

	for _, execs := range []int{32, 128} {
		b.Run(fmt.Sprintf("recovery/len-%d", execs), func(b *testing.B) {
			const chain = 4
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				e12BuildJournal(b, dir, chain, execs)
				// Life B: fresh providers, same journal directory, the
				// chart re-deployed (reproducing plan version 1 — the
				// version the journal records name).
				p := core.New(core.Options{Durability: journal.Options{Dir: dir, Fsync: journal.FsyncOff}})
				if err := p.DurabilityError(); err != nil {
					b.Fatal(err)
				}
				h, err := p.AddHost("e12-rec-host")
				if err != nil {
					b.Fatal(err)
				}
				sc := workload.Chain(chain)
				for _, svc := range sc.Services() {
					s := service.NewSimulated(svc, service.SimulatedOptions{})
					s.Handle("run", incStep)
					p.RegisterService(h, service.NewIdempotent(s, 0))
				}
				if _, err := p.Deploy(sc); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				stats, err := p.Recover(ctx)
				b.StopTimer()
				if err != nil {
					b.Fatalf("Recover: %v", err)
				}
				if stats.Finished != execs {
					b.Fatalf("E12: replay saw %d finished executions, want %d", stats.Finished, execs)
				}
				p.Close()
				b.StartTimer()
			}
		})
	}
}
