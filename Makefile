GO ?= go

.PHONY: verify
verify: ## tier-1 gate: everything builds, all tests pass
	$(GO) build ./...
	$(GO) test ./...

.PHONY: race
race: ## tier-1 plus the race detector on the concurrent packages
	$(GO) test -race ./internal/engine/ ./internal/transport/ ./internal/core/ ./internal/message/

.PHONY: bench
bench: ## full E1-E7 experiment harness (compare against BENCH_baseline.json)
	$(GO) test -bench=. -benchmem -run '^$$' .

.PHONY: bench-e3
bench-e3: ## E3 only: P2P vs centralized orchestration latency
	$(GO) test -bench=BenchmarkE3 -benchmem -run '^$$' .

.PHONY: vet
vet:
	$(GO) vet ./...
