GO ?= go

.PHONY: verify
verify: ## tier-1 gate: everything builds, all tests pass
	$(GO) build ./...
	$(GO) test ./...

.PHONY: race
race: ## tier-1 plus the race detector on the concurrent packages
	$(GO) test -race ./internal/engine/ ./internal/transport/ ./internal/core/ ./internal/message/ ./internal/journal/

.PHONY: bench
bench: ## full E1-E7 experiment harness (compare against BENCH_baseline.json)
	$(GO) test -bench=. -benchmem -run '^$$' .

.PHONY: bench-e3
bench-e3: ## E3 only: P2P vs centralized orchestration latency
	$(GO) test -bench=BenchmarkE3 -benchmem -run '^$$' .

.PHONY: bench-crossround
bench-crossround: ## cross-round batching sweep (compare against BENCH_crossround.json)
	$(GO) test -bench=BenchmarkE3PipelinedChainTCP -run '^$$' .

# Short fixed-iteration run of the E8 concurrent-instance sweep
# (M in-flight executions over Parallel(8)/Chain(8), p50 + execs/sec).
# CI runs this as a smoke job on every push: a regression guard by
# inspection against BENCH_concurrency.json — no hard threshold, since
# shared runners make absolute throughput numbers noisy.
.PHONY: bench-concurrency
bench-concurrency:
	$(GO) test -bench=BenchmarkE8ConcurrentInstances -benchtime=300x -run '^$$' .

# Short fixed-iteration run of the E9 chaos sweep (loss x provider-death
# x overload, churn layer off vs on, completion rate + p95). CI runs
# this as a smoke job; BENCH_availability.json records the full series.
.PHONY: bench-availability
bench-availability:
	$(GO) test -bench=BenchmarkE9Availability -benchtime=50x -run '^$$' .

# Short run of the E10 scale-out sweep: spawns real hostd processes at
# 1/2/4 replicas per service state and measures execs/sec. The run
# itself asserts the routing-never-RPCs invariant — it FAILS if the
# wrapper exchanges anything but exactly 2 messages per execution at
# any replica count. CI smoke; BENCH_scaleout.json records the full
# series.
.PHONY: bench-scaleout
bench-scaleout:
	$(GO) run ./cmd/bench -exp e10 -n 10

# Short fixed-iteration run of the E12 durability sweep: Chain(8)
# executions with and without a journal at every commit point, the
# AND-join passivate/rehydrate cycle (µs per disk round-trip), and
# crashed-platform recovery time vs journal length. Everything runs
# fsync-off — the sweep measures the journal's code paths, not CI
# runners' disks. The run itself FAILS if a tight-cap cycle rehydrates
# nothing or a replay loses a finished execution. CI smoke;
# BENCH_durability.json records the full series.
.PHONY: bench-durability
bench-durability:
	$(GO) test -bench=BenchmarkE12Durability -benchtime=20x -run '^$$' .

# Short fixed-iteration run of the E11 live-redeploy sweep: Chain(8)
# executed while plan versions swap underneath the driver (in-process
# platform swap, controlplane-managed fleet rollout, and control plane
# dead). The run itself asserts the zero-failed-executions and
# zero-admin-calls-in-hot-path invariants — it FAILS if a live swap
# drops work or an execution touches the control plane. CI smoke;
# BENCH_redeploy.json records the full series.
.PHONY: bench-redeploy
bench-redeploy:
	$(GO) test -bench=BenchmarkE11Redeploy -benchtime=300x -run '^$$' .

COVER_FLOOR ?= 80

.PHONY: cover
cover: ## coverage floor on the concurrency- and availability-critical packages
	$(GO) test -coverprofile=cover.out ./internal/transport/ ./internal/engine/ ./internal/community/ ./internal/qos/ ./internal/circuit/ ./internal/limits/ ./internal/journal/
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "transport+engine+community+qos+circuit+limits+journal coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
	{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

FUZZTIME ?= 30s

.PHONY: fuzz
fuzz: ## short fuzz pass over the wire decoders and the frame merge
	$(GO) test ./internal/message -run '^$$' -fuzz 'FuzzUnmarshal$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/message -run '^$$' -fuzz 'FuzzUnmarshalBatch$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/message -run '^$$' -fuzz 'FuzzMergeBatch$$' -fuzztime $(FUZZTIME)

.PHONY: flake
flake: ## liveness/flake hunt: the concurrent packages, race detector, 10 loops
	# Covers the 64-way concurrent-Execute stress test (engine
	# stress_test.go), the receive-lane FIFO contract (transport
	# faults_test.go), the churn chaos suite (core churn_test.go), the
	# community failover/health races (community churn_test.go), and the
	# durability suite — crash recovery mid-Chain(8) over both
	# transports, passivate/rehydrate byte-identity (core
	# durability_test.go, engine passivate_test.go), and journal
	# torn-tail repair (journal package).
	$(GO) test -race -count=10 ./internal/engine/ ./internal/transport/ ./internal/core/ ./internal/community/ ./internal/journal/

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: lint
lint: ## selfservvet analyzer suite + gofmt, over the whole tree
	$(GO) run ./cmd/selfservvet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
