package message

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// The hand-rolled codec must be observationally identical to the
// encoding/xml reference kept in marshalXML/unmarshalXML: every message
// round-trips through all four codec combinations to the same value.

func randMessage(r *rand.Rand) *Message {
	randStr := func() string {
		alphabet := []rune("abz09 <>&\"'\t\néß漢-_./:")
		n := r.Intn(12)
		out := make([]rune, n)
		for i := range out {
			out[i] = alphabet[r.Intn(len(alphabet))]
		}
		return string(out)
	}
	types := []Type{TypeStart, TypeNotify, TypeDone, TypeFault, TypeInvoke, TypeResult}
	m := &Message{
		Type:      types[r.Intn(len(types))],
		Composite: randStr(),
		Instance:  randStr(),
		From:      randStr(),
		To:        randStr(),
		Seq:       r.Intn(3),
		ReplyTo:   randStr(),
	}
	if r.Intn(3) == 0 {
		m.Error = randStr()
	}
	if n := r.Intn(5); n > 0 {
		m.Vars = map[string]string{}
		for i := 0; i < n; i++ {
			m.Vars[fmt.Sprintf("k%d", i)] = randStr()
		}
	}
	return m
}

// normalize maps empty-but-non-nil Vars to nil so decoded messages
// compare with reflect.DeepEqual regardless of codec.
func normalize(m *Message) *Message {
	if len(m.Vars) == 0 {
		m.Vars = nil
	}
	return m
}

func TestCodecDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		m := randMessage(r)

		fast, err := Marshal(m)
		if err != nil {
			t.Fatalf("#%d Marshal: %v (%+v)", i, err, m)
		}
		ref, err := marshalXML(m)
		if err != nil {
			t.Fatalf("#%d marshalXML: %v", i, err)
		}

		// Every (encoder, decoder) pair agrees on the decoded message.
		for name, data := range map[string][]byte{"fast": fast, "ref": ref} {
			viaFast, err := Unmarshal(data)
			if err != nil {
				t.Fatalf("#%d Unmarshal(%s): %v\n%s", i, name, err, data)
			}
			viaRef, err := unmarshalXML(data)
			if err != nil {
				t.Fatalf("#%d unmarshalXML(%s): %v\n%s", i, name, err, data)
			}
			if !reflect.DeepEqual(normalize(viaFast), normalize(viaRef)) {
				t.Fatalf("#%d decoders disagree on %s bytes:\nfast: %+v\nref:  %+v\ndoc: %s",
					i, name, viaFast, viaRef, data)
			}
			if !reflect.DeepEqual(normalize(viaFast), normalize(m.Clone())) {
				t.Fatalf("#%d round trip via %s changed the message:\nin:  %+v\nout: %+v\ndoc: %s",
					i, name, m, viaFast, data)
			}
		}
	}
}

// TestFastPathDeclines: documents outside the fast vocabulary fall back
// to the reference decoder rather than mis-parsing.
func TestFastPathDeclines(t *testing.T) {
	docs := []string{
		`<?xml version="1.0"?><message type="notify"></message>`,
		`<message type="notify"><!-- comment --></message>`,
		`<message type="notify"><var name="k"><![CDATA[v]]></var></message>`,
		"<message type=\"notify\">\n  <var name=\"k\">v</var>\n</message>",
		`<message type="notify" extra="x"></message>`,
	}
	for _, doc := range docs {
		m, err := Unmarshal([]byte(doc))
		if err != nil {
			t.Errorf("Unmarshal(%q): %v", doc, err)
			continue
		}
		if m.Type != TypeNotify {
			t.Errorf("Unmarshal(%q).Type = %q", doc, m.Type)
		}
	}
}

func TestFastPathRejectsGarbage(t *testing.T) {
	for _, doc := range []string{"not xml", "<message/>", "<message type='x'", "<other type='x'/>"} {
		if m, ok := unmarshalFast([]byte(doc)); ok && m.Type != "" {
			t.Errorf("unmarshalFast(%q) accepted: %+v", doc, m)
		}
	}
}

// TestInvalidCharRefsAgree: on character references XML forbids (NUL,
// surrogates, beyond U+10FFFF) the fast path must DECLINE, so Unmarshal
// behaves exactly like the encoding/xml reference — whatever that is
// (it errors on NUL and out-of-range, but accepts surrogates as U+FFFD).
func TestInvalidCharRefsAgree(t *testing.T) {
	for _, ref := range []string{"&#0;", "&#55296;", "&#x110000;", "&#xD800;", "&bogus;"} {
		doc := []byte(`<message type="notify"><var name="k">` + ref + `</var></message>`)
		if _, ok := unmarshalFast(doc); ok {
			t.Errorf("unmarshalFast accepted suspect reference %s instead of declining", ref)
		}
		got, gotErr := Unmarshal(doc)
		want, wantErr := unmarshalXML(doc)
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("%s: Unmarshal err = %v, reference err = %v", ref, gotErr, wantErr)
			continue
		}
		if gotErr == nil && got.Vars["k"] != want.Vars["k"] {
			t.Errorf("%s: Unmarshal = %q, reference = %q", ref, got.Vars["k"], want.Vars["k"])
		}
	}
	// Valid references still work on the fast path.
	doc := []byte(`<message type="notify"><var name="k">&#65;&#x1F600;&#x9;</var></message>`)
	m, ok := unmarshalFast(doc)
	if !ok || m.Vars["k"] != "A\U0001F600\t" {
		t.Fatalf("unmarshalFast(valid refs) = %+v, %v", m, ok)
	}
}
