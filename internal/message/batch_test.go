package message

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func sampleMessages() []*Message {
	return []*Message{
		{Type: TypeStart, Composite: "C", Instance: "i1", From: WrapperID, To: "s1",
			Vars: map[string]string{"x": "0", "name": `q"uo<te>`}},
		{Type: TypeNotify, Composite: "C", Instance: "i1", From: "s1", To: "s2", Seq: 7},
		{Type: TypeDone, Composite: "C", Instance: "i1", From: "s2", To: WrapperID,
			Vars: map[string]string{"y": "42 & counting"}},
		{Type: TypeFault, Composite: "C", Instance: "i1", From: "s2", Error: "late\nfailure"},
		{Type: TypeInvoke, Composite: "C", Instance: "tok/1", To: "Svc/op", ReplyTo: "127.0.0.1:9"},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	ms := sampleMessages()
	for width := 1; width <= len(ms); width++ {
		data, err := MarshalBatch(ms[:width])
		if err != nil {
			t.Fatalf("MarshalBatch(%d): %v", width, err)
		}
		got, err := UnmarshalBatch(data)
		if err != nil {
			t.Fatalf("UnmarshalBatch(%d): %v", width, err)
		}
		if len(got) != width {
			t.Fatalf("round trip width %d returned %d messages", width, len(got))
		}
		for i := range got {
			if !reflect.DeepEqual(normalize(got[i]), normalize(ms[i])) {
				t.Fatalf("width %d message %d = %+v, want %+v", width, i, got[i], ms[i])
			}
		}
	}
}

func TestBatchOfOneIsLegacyEncoding(t *testing.T) {
	m := sampleMessages()[0]
	single, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := MarshalBatch([]*Message{m})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(single, batched) {
		t.Fatalf("batch of one is not byte-identical to Marshal:\n%q\n%q", single, batched)
	}
}

func TestUnmarshalBatchDecodesLegacyPayload(t *testing.T) {
	// A pre-batch sender's frame payload (plain XML document) must decode
	// as a batch of one.
	m := sampleMessages()[2]
	legacy, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBatch(legacy)
	if err != nil {
		t.Fatalf("UnmarshalBatch(legacy): %v", err)
	}
	if len(got) != 1 || !reflect.DeepEqual(normalize(got[0]), normalize(m)) {
		t.Fatalf("legacy decode = %+v", got)
	}
	// And the reference reflection encoder's output too.
	ref, err := marshalXML(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err = UnmarshalBatch(ref)
	if err != nil || len(got) != 1 {
		t.Fatalf("UnmarshalBatch(reference encoder) = %v, %v", got, err)
	}
}

func TestMarshalBatchEmpty(t *testing.T) {
	if _, err := MarshalBatch(nil); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("MarshalBatch(nil) = %v, want ErrEmptyBatch", err)
	}
}

func TestUnmarshalBatchCorrupt(t *testing.T) {
	good, err := MarshalBatch(sampleMessages())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"bare magic":       {batchMagic},
		"zero count":       {batchMagic, 0x00},
		"huge count":       {batchMagic, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"length overruns":  {batchMagic, 0x01, 0x7f, '<'},
		"truncated":        good[:len(good)-3],
		"trailing":         append(append([]byte{}, good...), 'x'),
		"non-xml document": {batchMagic, 0x01, 0x03, 'a', 'b', 'c'},
	}
	for name, data := range cases {
		if ms, err := UnmarshalBatch(data); err == nil {
			t.Fatalf("%s: decoded %d messages from corrupt payload", name, len(ms))
		}
	}
}

// TestBatchPropertyRandom cross-checks MarshalBatch/UnmarshalBatch
// against the single-message codec on random message slices: batching is
// a transparent container, so element-wise decode must agree with
// Marshal/Unmarshal of each element.
func TestBatchPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	randStr := func() string {
		alphabet := []rune("abz<>&\"' \n\té ")
		n := rng.Intn(8)
		out := make([]rune, n)
		for i := range out {
			out[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(out)
	}
	for iter := 0; iter < 200; iter++ {
		width := 1 + rng.Intn(6)
		ms := make([]*Message, width)
		for i := range ms {
			m := &Message{
				Type:      Type([]string{"start", "notify", "done", "fault", "invoke", "result"}[rng.Intn(6)]),
				Composite: randStr(),
				Instance:  fmt.Sprintf("i%d", rng.Intn(10)),
				From:      randStr(),
				To:        randStr(),
				Seq:       rng.Intn(100),
				Error:     randStr(),
				ReplyTo:   randStr(),
			}
			for v := rng.Intn(4); v > 0; v-- {
				if m.Vars == nil {
					m.Vars = map[string]string{}
				}
				m.Vars["v"+randStr()] = randStr()
			}
			ms[i] = m
		}
		data, err := MarshalBatch(ms)
		if err != nil {
			t.Fatalf("iter %d: MarshalBatch: %v", iter, err)
		}
		got, err := UnmarshalBatch(data)
		if err != nil {
			t.Fatalf("iter %d: UnmarshalBatch: %v", iter, err)
		}
		if len(got) != width {
			t.Fatalf("iter %d: %d messages out of %d in", iter, len(got), width)
		}
		for i := range got {
			single, err := Marshal(ms[i])
			if err != nil {
				t.Fatal(err)
			}
			want, err := Unmarshal(single)
			if err != nil {
				t.Fatalf("iter %d: single round trip: %v", iter, err)
			}
			if !reflect.DeepEqual(normalize(got[i]), normalize(want)) {
				t.Fatalf("iter %d message %d: batch decode %+v != single decode %+v", iter, i, got[i], want)
			}
		}
	}
}

func BenchmarkMarshalBatch(b *testing.B) {
	for _, width := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("width-%d", width), func(b *testing.B) {
			ms := make([]*Message, width)
			for i := range ms {
				ms[i] = &Message{Type: TypeNotify, Composite: "C", Instance: "i1",
					From: "s", To: fmt.Sprintf("t%d", i), Vars: map[string]string{"x": "1"}}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := MarshalBatch(ms); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
