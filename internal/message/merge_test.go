package message

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func mustMarshal(t *testing.T, m *Message) []byte {
	t.Helper()
	data, err := Marshal(m)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	return data
}

func mustMarshalBatch(t *testing.T, ms []*Message) []byte {
	t.Helper()
	data, err := MarshalBatch(ms)
	if err != nil {
		t.Fatalf("MarshalBatch: %v", err)
	}
	return data
}

// TestMergeBatchEqualsMarshalBatch pins the core identity: merging the
// individually encoded frames of a message sequence produces byte-for-
// byte the same payload as batch-encoding the sequence directly — the
// writer-side merge is indistinguishable on the wire from sender-side
// batching.
func TestMergeBatchEqualsMarshalBatch(t *testing.T) {
	ms := seedMessages()
	payloads := make([][]byte, len(ms))
	for i, m := range ms {
		payloads[i] = mustMarshal(t, m)
	}
	merged, count, err := MergeBatch(payloads)
	if err != nil {
		t.Fatalf("MergeBatch: %v", err)
	}
	if count != len(ms) {
		t.Fatalf("count = %d, want %d", count, len(ms))
	}
	want := mustMarshalBatch(t, ms)
	if !bytes.Equal(merged, want) {
		t.Fatalf("merged payload differs from MarshalBatch:\nmerged: %q\ndirect: %q", merged, want)
	}
}

// TestMergeBatchMixedKinds merges legacy and batch payloads in one call:
// the result decodes to the concatenation of all messages in order.
func TestMergeBatchMixedKinds(t *testing.T) {
	ms := seedMessages()
	payloads := [][]byte{
		mustMarshalBatch(t, ms[0:2]), // batch of two
		mustMarshal(t, ms[2]),        // legacy, promoted on merge
		mustMarshalBatch(t, ms[3:6]), // batch of three
	}
	merged, count, err := MergeBatch(payloads)
	if err != nil {
		t.Fatalf("MergeBatch: %v", err)
	}
	if count != 6 {
		t.Fatalf("count = %d, want 6", count)
	}
	got, err := UnmarshalBatch(merged)
	if err != nil {
		t.Fatalf("UnmarshalBatch of merged payload: %v", err)
	}
	if len(got) != len(ms) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(ms))
	}
	for i := range ms {
		if !reflect.DeepEqual(normalize(got[i]), normalize(ms[i])) {
			t.Fatalf("message %d diverged:\n got: %+v\nwant: %+v", i, got[i], ms[i])
		}
	}
}

// TestMergeBatchSingleIsZeroCopy pins that a merge of one frame is the
// identity: same bytes, same backing array — the FlushDelay=0 path must
// not even copy.
func TestMergeBatchSingleIsZeroCopy(t *testing.T) {
	p := mustMarshal(t, seedMessages()[0])
	merged, count, err := MergeBatch([][]byte{p})
	if err != nil {
		t.Fatalf("MergeBatch: %v", err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if &merged[0] != &p[0] || len(merged) != len(p) {
		t.Fatal("single-payload merge copied the payload")
	}
}

// TestMergeBatchRejectsCorrupt pins the failure contract: framing
// corruption in any input refuses the whole merge with ErrMergeCorrupt
// (wrapped), without panicking.
func TestMergeBatchRejectsCorrupt(t *testing.T) {
	good := mustMarshal(t, seedMessages()[0])
	batch := mustMarshalBatch(t, seedMessages()[:3])
	cases := map[string][]byte{
		"empty payload":   {},
		"bare magic":      {0x00},
		"lying count":     {0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
		"zero count":      {0x00, 0x00},
		"truncated batch": batch[:len(batch)-3],
		"trailing bytes":  append(append([]byte{}, batch...), 'x'),
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			if _, _, err := MergeBatch([][]byte{good, corrupt}); !errors.Is(err, ErrMergeCorrupt) {
				t.Fatalf("err = %v, want ErrMergeCorrupt", err)
			}
			if _, _, err := MergeBatch([][]byte{corrupt, good}); !errors.Is(err, ErrMergeCorrupt) {
				t.Fatalf("err (corrupt first) = %v, want ErrMergeCorrupt", err)
			}
		})
	}
	if _, _, err := MergeBatch(nil); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("empty merge err = %v, want ErrEmptyBatch", err)
	}
}

// TestMergeBatchAssociative pins that merging is associative: merging
// incrementally (as a writer draining a queue might) equals merging all
// at once — so batching decisions can never change what is delivered.
func TestMergeBatchAssociative(t *testing.T) {
	ms := seedMessages()
	a := mustMarshal(t, ms[0])
	b := mustMarshalBatch(t, ms[1:3])
	c := mustMarshal(t, ms[3])

	ab, _, err := MergeBatch([][]byte{a, b})
	if err != nil {
		t.Fatal(err)
	}
	abc1, n1, err := MergeBatch([][]byte{ab, c})
	if err != nil {
		t.Fatal(err)
	}
	abc2, n2, err := MergeBatch([][]byte{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if n1 != 4 || n2 != 4 {
		t.Fatalf("counts = %d, %d, want 4", n1, n2)
	}
	if !bytes.Equal(abc1, abc2) {
		t.Fatalf("incremental merge differs from one-shot merge:\n inc: %q\nshot: %q", abc1, abc2)
	}
}
