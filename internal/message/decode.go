package message

import (
	"strconv"
	"strings"
)

// This file implements the fast path of Unmarshal: a non-reflective
// parser for exactly the documents Marshal produces —
//
//	<message attr="..." ...>
//	  <error>text</error>?
//	  <var name="...">text</var>*
//	</message>
//
// plus insignificant whitespace between elements. Anything else (XML
// declarations, comments, CDATA, namespaces, unknown children) makes the
// parser decline, and Unmarshal falls back to encoding/xml. Declining is
// always safe; accepting is only done when the document parses fully.

// unmarshalFast parses data; ok=false means "not handled, use fallback".
func unmarshalFast(data []byte) (*Message, bool) {
	p := &fastParser{s: data}
	p.space()
	if !p.lit("<message") {
		return nil, false
	}
	m := &Message{}
	// Attributes.
	for {
		p.space()
		if p.lit("/>") {
			p.space()
			if p.pos != len(p.s) {
				return nil, false
			}
			return m, true
		}
		if p.lit(">") {
			break
		}
		name, ok := p.attrName()
		if !ok {
			return nil, false
		}
		val, ok := p.attrValue()
		if !ok {
			return nil, false
		}
		switch name {
		case "type":
			m.Type = Type(val)
		case "composite":
			m.Composite = val
		case "instance":
			m.Instance = val
		case "from":
			m.From = val
		case "to":
			m.To = val
		case "seq":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, false
			}
			m.Seq = n
		case "version":
			v, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, false
			}
			m.Version = v
		case "replyTo":
			m.ReplyTo = val
		default:
			return nil, false // unknown attribute: let encoding/xml decide
		}
	}
	// Children.
	for {
		p.space()
		if p.lit("</message>") {
			p.space()
			if p.pos != len(p.s) {
				return nil, false
			}
			return m, true
		}
		switch {
		case p.lit("<error>"):
			text, ok := p.textUntil("</error>")
			if !ok {
				return nil, false
			}
			m.Error = text
		case p.lit("<error/>"):
			// empty error element: nothing to record
		case p.lit("<var"):
			p.space()
			name, ok := p.attrName()
			if !ok || name != "name" {
				return nil, false
			}
			key, ok := p.attrValue()
			if !ok {
				return nil, false
			}
			p.space()
			var val string
			switch {
			case p.lit("/>"):
				val = ""
			case p.lit(">"):
				val, ok = p.textUntil("</var>")
				if !ok {
					return nil, false
				}
			default:
				return nil, false
			}
			if m.Vars == nil {
				m.Vars = map[string]string{}
			}
			m.Vars[key] = val
		default:
			return nil, false
		}
	}
}

type fastParser struct {
	s   []byte
	pos int
}

// space skips XML whitespace.
func (p *fastParser) space() {
	for p.pos < len(p.s) {
		switch p.s[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// lit consumes the literal if it is next.
func (p *fastParser) lit(l string) bool {
	if len(p.s)-p.pos < len(l) || string(p.s[p.pos:p.pos+len(l)]) != l {
		return false
	}
	p.pos += len(l)
	return true
}

// attrName reads an attribute name followed by '='.
func (p *fastParser) attrName() (string, bool) {
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c == '=' {
			name := string(p.s[start:p.pos])
			p.pos++
			return name, name != ""
		}
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.' {
			p.pos++
			continue
		}
		return "", false
	}
	return "", false
}

// attrValue reads a double- or single-quoted attribute value, unescaped.
func (p *fastParser) attrValue() (string, bool) {
	if p.pos >= len(p.s) {
		return "", false
	}
	quote := p.s[p.pos]
	if quote != '"' && quote != '\'' {
		return "", false
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c == quote {
			raw := p.s[start:p.pos]
			p.pos++
			return xmlUnescape(raw)
		}
		if c == '<' {
			return "", false
		}
		p.pos++
	}
	return "", false
}

// textUntil reads character data up to the closing tag, unescaped. Any
// markup other than entities ('<' that is not the closing tag) makes the
// fast path decline.
func (p *fastParser) textUntil(closing string) (string, bool) {
	start := p.pos
	for p.pos < len(p.s) {
		if p.s[p.pos] == '<' {
			raw := p.s[start:p.pos]
			if !p.lit(closing) {
				return "", false
			}
			return xmlUnescape(raw)
		}
		p.pos++
	}
	return "", false
}

// validXMLChar reports whether r is a character XML 1.0 allows (the
// same set encoding/xml accepts in character references).
func validXMLChar(r rune) bool {
	return r == 0x09 || r == 0x0A || r == 0x0D ||
		r >= 0x20 && r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}

// xmlUnescape resolves the predefined and numeric character references.
// Unknown entities decline the fast path rather than guessing.
func xmlUnescape(raw []byte) (string, bool) {
	amp := -1
	for i, c := range raw {
		if c == '&' {
			amp = i
			break
		}
	}
	if amp < 0 {
		return string(raw), true
	}
	var sb strings.Builder
	sb.Grow(len(raw))
	sb.Write(raw[:amp])
	for i := amp; i < len(raw); {
		if raw[i] != '&' {
			sb.WriteByte(raw[i])
			i++
			continue
		}
		semi := -1
		for j := i + 1; j < len(raw) && j-i <= 12; j++ {
			if raw[j] == ';' {
				semi = j
				break
			}
		}
		if semi < 0 {
			return "", false
		}
		ent := string(raw[i+1 : semi])
		switch ent {
		case "amp":
			sb.WriteByte('&')
		case "lt":
			sb.WriteByte('<')
		case "gt":
			sb.WriteByte('>')
		case "quot":
			sb.WriteByte('"')
		case "apos":
			sb.WriteByte('\'')
		default:
			if len(ent) < 2 || ent[0] != '#' {
				return "", false
			}
			var (
				n   uint64
				err error
			)
			if ent[1] == 'x' || ent[1] == 'X' {
				n, err = strconv.ParseUint(ent[2:], 16, 32)
			} else {
				n, err = strconv.ParseUint(ent[1:], 10, 32)
			}
			if err != nil || !validXMLChar(rune(n)) {
				// Invalid XML character reference (NUL, surrogate,
				// out-of-range): decline so the encoding/xml fallback
				// rejects the document instead of us guessing.
				return "", false
			}
			sb.WriteRune(rune(n))
		}
		i = semi + 1
	}
	return sb.String(), true
}
