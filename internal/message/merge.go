package message

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// This file implements the frame-merge primitive behind cross-round
// batching: the transport writer goroutines coalesce everything queued
// for one destination into a single wire frame, and they must do it
// WITHOUT re-marshaling payloads that were already encoded when the
// sends were accepted. Merging is pure byte surgery on the batch
// framing (batch.go): document bytes are copied verbatim, so the merge
// of frames F1..Fn decodes to exactly the concatenation of the messages
// of F1..Fn, in order — the property FuzzMergeBatch pins.

// ErrMergeCorrupt reports a payload whose batch framing is inconsistent
// (a lying count or length prefix). Corrupt frames are refused, never
// merged: a writer falls back to writing the frame untouched rather
// than contaminating its neighbours.
var ErrMergeCorrupt = fmt.Errorf("message: merge: corrupt payload")

// payloadShape describes one encoded payload's framing: how many
// messages it carries and, for batch payloads, where its (len|doc)*
// body starts. It validates the framing ONLY — document bytes are never
// parsed here (that is the receiver's job).
func payloadShape(data []byte) (count int, body []byte, legacy bool, err error) {
	if len(data) == 0 {
		return 0, nil, false, fmt.Errorf("%w: empty payload", ErrMergeCorrupt)
	}
	if data[0] != batchMagic {
		// Legacy single-document payload: one message, the whole payload
		// is the document.
		return 1, nil, true, nil
	}
	rest := data[1:]
	n, w := binary.Uvarint(rest)
	if w <= 0 {
		return 0, nil, false, fmt.Errorf("%w: malformed count", ErrMergeCorrupt)
	}
	rest = rest[w:]
	if n == 0 || n > uint64(len(rest)) {
		return 0, nil, false, fmt.Errorf("%w: count %d exceeds payload", ErrMergeCorrupt, n)
	}
	// Walk the length prefixes so a lying length cannot survive into a
	// merged frame (the walk is O(count), not O(bytes)).
	walk := rest
	for i := uint64(0); i < n; i++ {
		size, w := binary.Uvarint(walk)
		if w <= 0 || size > uint64(len(walk)-w) {
			return 0, nil, false, fmt.Errorf("%w: malformed length for document %d", ErrMergeCorrupt, i)
		}
		walk = walk[w+int(size):]
	}
	if len(walk) != 0 {
		return 0, nil, false, fmt.Errorf("%w: %d trailing bytes", ErrMergeCorrupt, len(walk))
	}
	return int(n), rest, false, nil
}

// MergeBatch merges already-encoded frame payloads — each either a
// legacy single-document payload or a batch payload — into ONE payload
// that decodes (UnmarshalBatch) to the concatenation of their messages
// in slice order. Documents are copied verbatim, never re-marshaled;
// legacy payloads are promoted to batch entries. The returned count is
// the total number of messages.
//
// A single valid payload is returned unchanged (zero-copy), preserving
// the batch-of-one ≡ legacy byte-identity of the wire format. Corrupt
// framing in ANY input fails the whole merge with ErrMergeCorrupt and
// no partial output.
func MergeBatch(payloads [][]byte) ([]byte, int, error) {
	if len(payloads) == 0 {
		return nil, 0, ErrEmptyBatch
	}
	total := 0
	size := 1 + binary.MaxVarintLen64 // magic + count, worst case
	shapes := make([]struct {
		body   []byte
		legacy bool
	}, len(payloads))
	for i, p := range payloads {
		count, body, legacy, err := payloadShape(p)
		if err != nil {
			return nil, 0, fmt.Errorf("payload %d: %w", i, err)
		}
		total += count
		if legacy {
			size += binary.MaxVarintLen64 + len(p)
		} else {
			size += len(body)
		}
		shapes[i].body, shapes[i].legacy = body, legacy
	}
	if len(payloads) == 1 {
		return payloads[0], total, nil
	}

	var buf bytes.Buffer
	buf.Grow(size)
	var varint [binary.MaxVarintLen64]byte
	buf.WriteByte(batchMagic)
	buf.Write(varint[:binary.PutUvarint(varint[:], uint64(total))])
	for i, p := range payloads {
		if shapes[i].legacy {
			buf.Write(varint[:binary.PutUvarint(varint[:], uint64(len(p)))])
			buf.Write(p)
			continue
		}
		buf.Write(shapes[i].body)
	}
	return buf.Bytes(), total, nil
}
