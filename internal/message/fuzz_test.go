package message

// Fuzz targets for the wire decoders. The decode side accepts arbitrary
// bytes off TCP connections, so the contract under fuzzing is: never
// panic, never over-allocate on corrupt headers, and for every payload
// that DOES decode, re-encoding the decoded messages round-trips to the
// same values (the decoder never fabricates state it cannot represent).
//
// Seeds cover both payload kinds the decoders must handle: legacy
// single-document XML frames (still what Send emits) and v2
// count-prefixed batch frames, plus corrupt variants of each.
//
// Run locally with:
//
//	go test ./internal/message -run '^$' -fuzz FuzzUnmarshal -fuzztime 30s
//	go test ./internal/message -run '^$' -fuzz FuzzUnmarshalBatch -fuzztime 30s
//	go test ./internal/message -run '^$' -fuzz FuzzMergeBatch -fuzztime 30s
//
// (make fuzz runs all three; CI gives each 30s per push.)

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// seedMessages is a small vocabulary-spanning corpus.
func seedMessages() []*Message {
	return []*Message{
		{Type: TypeStart, Composite: "C", Instance: "i1", From: WrapperID, To: "s1",
			Vars: map[string]string{"x": "1"}},
		{Type: TypeNotify, Composite: "Travel", Instance: "i2", From: "s1", To: "s2", Seq: 7,
			Vars: map[string]string{"dest": "sydney", "w€ird": "<&>\"'\x09"}},
		{Type: TypeDone, Composite: "C", Instance: "i3", From: "s2", To: WrapperID},
		{Type: TypeFault, Composite: "C", Instance: "i4", From: "s1", To: WrapperID,
			Error: "engine: boom"},
		{Type: TypeInvoke, Composite: "C", Instance: "i5", To: "Svc/op", ReplyTo: "127.0.0.1:9",
			Vars: map[string]string{"a": "", "b": "2"}},
		{Type: TypeResult, Composite: "C", Instance: "i6", From: "Svc/op"},
	}
}

func addSeeds(f *testing.F) {
	f.Helper()
	for _, m := range seedMessages() {
		data, err := Marshal(m)
		if err != nil {
			f.Fatalf("seed marshal: %v", err)
		}
		f.Add(data)
	}
	batch, err := MarshalBatch(seedMessages())
	if err != nil {
		f.Fatalf("seed batch marshal: %v", err)
	}
	f.Add(batch)
	two, err := MarshalBatch(seedMessages()[:2])
	if err != nil {
		f.Fatalf("seed batch marshal: %v", err)
	}
	f.Add(two)
	// Corrupt variants: truncations, a lying batch count, stray NULs.
	f.Add(batch[:len(batch)/2])
	f.Add([]byte{0x00})
	f.Add([]byte{0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add([]byte("<message"))
	f.Add([]byte("  <message></message>"))
	f.Add([]byte{})
}

// FuzzUnmarshal fuzzes the single-document decoder (the legacy payload
// every v1 peer still emits).
func FuzzUnmarshal(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		// Accepted payloads must round-trip by value.
		re, err := Marshal(m)
		if err != nil {
			t.Fatalf("re-marshal of accepted decode failed: %v\n(message: %+v)", err, m)
		}
		m2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("decode of re-marshal failed: %v", err)
		}
		if !reflect.DeepEqual(normalize(m), normalize(m2)) {
			t.Fatalf("round-trip diverged:\n first: %+v\nsecond: %+v", m, m2)
		}
	})
}

// FuzzUnmarshalBatch fuzzes the dual-format frame decoder (batch OR
// legacy, discriminated by the leading byte) — the single decode entry
// point of both transports' read paths.
func FuzzUnmarshalBatch(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		ms, err := UnmarshalBatch(data)
		if err != nil {
			return
		}
		if len(ms) == 0 {
			t.Fatal("UnmarshalBatch accepted a payload but returned zero messages")
		}
		re, err := MarshalBatch(ms)
		if err != nil {
			t.Fatalf("re-marshal of accepted batch failed: %v", err)
		}
		ms2, err := UnmarshalBatch(re)
		if err != nil {
			t.Fatalf("decode of re-marshal failed: %v", err)
		}
		if len(ms) != len(ms2) {
			t.Fatalf("round-trip count diverged: %d then %d", len(ms), len(ms2))
		}
		for i := range ms {
			if !reflect.DeepEqual(normalize(ms[i]), normalize(ms2[i])) {
				t.Fatalf("round-trip message %d diverged:\n first: %+v\nsecond: %+v", i, ms[i], ms2[i])
			}
		}
		// A batch of one must stay byte-identical to the legacy encoding
		// (the compatibility clause of the wire format).
		if len(ms) == 1 {
			legacy, err := Marshal(ms[0])
			if err != nil {
				t.Fatalf("legacy re-marshal failed: %v", err)
			}
			if !bytes.Equal(re, legacy) {
				t.Fatalf("batch-of-one encoding differs from legacy:\nbatch:  %q\nlegacy: %q", re, legacy)
			}
		}
	})
}

// FuzzMergeBatch fuzzes the writer-side frame merge (merge.go) with
// PAIRS of payloads. The contract: two payloads that each decode must
// merge, and the merge decodes to the concatenation of their messages;
// payloads with corrupt framing are rejected without panic and without
// partial output.
func FuzzMergeBatch(f *testing.F) {
	var seeds [][]byte
	for _, m := range seedMessages() {
		data, err := Marshal(m)
		if err != nil {
			f.Fatalf("seed marshal: %v", err)
		}
		seeds = append(seeds, data)
	}
	batch, err := MarshalBatch(seedMessages())
	if err != nil {
		f.Fatalf("seed batch marshal: %v", err)
	}
	seeds = append(seeds, batch, batch[:len(batch)/2],
		[]byte{0x00}, []byte{0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
		[]byte("<message"), []byte{})
	for _, a := range seeds {
		for _, b := range seeds {
			f.Add(a, b)
		}
	}
	f.Fuzz(func(t *testing.T, a, b []byte) {
		wantA, errA := UnmarshalBatch(a)
		wantB, errB := UnmarshalBatch(b)
		merged, count, err := MergeBatch([][]byte{a, b})
		if errA != nil || errB != nil {
			// At least one input does not decode. The merge may accept it
			// anyway (framing can be valid around an undecodable document —
			// document bytes are deliberately not parsed here), but it must
			// never panic; rejection must be ErrMergeCorrupt or ErrEmptyBatch.
			if err != nil && !errors.Is(err, ErrMergeCorrupt) && !errors.Is(err, ErrEmptyBatch) {
				t.Fatalf("unexpected merge error kind: %v", err)
			}
			return
		}
		// Both inputs decode -> their framing is valid -> merge MUST work.
		if err != nil {
			t.Fatalf("merge of two decodable payloads failed: %v", err)
		}
		want := append(append([]*Message{}, wantA...), wantB...)
		if count != len(want) {
			t.Fatalf("merge count = %d, want %d", count, len(want))
		}
		got, err := UnmarshalBatch(merged)
		if err != nil {
			t.Fatalf("decode of merged payload failed: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("merged decode has %d messages, want %d", len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(normalize(got[i]), normalize(want[i])) {
				t.Fatalf("merged message %d diverged:\n got: %+v\nwant: %+v", i, got[i], want[i])
			}
		}
	})
}
