package message

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	m := &Message{
		Type:      TypeNotify,
		Composite: "TravelPlanner",
		Instance:  "inst-42",
		From:      "DFB",
		To:        "CR",
		Seq:       7,
		ReplyTo:   "host1:9000",
		Vars: map[string]string{
			"destination": "sydney",
			"price":       "120.5",
			"vip":         "true",
			"note":        "needs <escaping> & \"quotes\"",
		},
	}
	data, err := Marshal(m)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Type != m.Type || back.Composite != m.Composite || back.Instance != m.Instance ||
		back.From != m.From || back.To != m.To || back.Seq != m.Seq || back.ReplyTo != m.ReplyTo {
		t.Fatalf("header mismatch: %+v vs %+v", back, m)
	}
	if len(back.Vars) != len(m.Vars) {
		t.Fatalf("vars = %v", back.Vars)
	}
	for k, v := range m.Vars {
		if back.Vars[k] != v {
			t.Errorf("var %q = %q, want %q", k, back.Vars[k], v)
		}
	}
}

func TestMarshalDeterministic(t *testing.T) {
	m := &Message{Type: TypeDone, Vars: map[string]string{"b": "2", "a": "1", "c": "3"}}
	first, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("non-deterministic encoding:\n%s\n%s", first, again)
		}
	}
	s := string(first)
	if strings.Index(s, `name="a"`) > strings.Index(s, `name="b"`) {
		t.Error("vars not sorted")
	}
}

func TestUnmarshalFaults(t *testing.T) {
	if _, err := Unmarshal([]byte("not xml")); err == nil {
		t.Error("Unmarshal accepted garbage")
	}
	if _, err := Unmarshal([]byte("<message/>")); err == nil {
		t.Error("Unmarshal accepted message without type")
	}
}

func TestFaultMessage(t *testing.T) {
	m := &Message{Type: TypeFault, Error: "service unavailable: no member"}
	data, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Error != m.Error {
		t.Fatalf("Error = %q, want %q", back.Error, m.Error)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := &Message{Type: TypeNotify, Vars: map[string]string{"k": "v"}}
	cp := m.Clone()
	cp.Vars["k"] = "changed"
	cp.Vars["new"] = "x"
	if m.Vars["k"] != "v" || len(m.Vars) != 1 {
		t.Fatal("Clone shares Vars map")
	}
	var nilVars *Message = &Message{Type: TypeStart}
	cp2 := nilVars.Clone()
	if cp2.Vars != nil {
		t.Fatal("Clone invented a Vars map")
	}
}

func TestMergeVars(t *testing.T) {
	m := &Message{Type: TypeNotify}
	m.MergeVars(nil) // no-op on nil
	if m.Vars != nil {
		t.Fatal("MergeVars(nil) allocated")
	}
	m.MergeVars(map[string]string{"a": "1"})
	m.MergeVars(map[string]string{"a": "2", "b": "3"})
	if m.Vars["a"] != "2" || m.Vars["b"] != "3" {
		t.Fatalf("Vars = %v", m.Vars)
	}
}

// Property: round trip preserves arbitrary var maps (printable content).
func TestQuickRoundTrip(t *testing.T) {
	f := func(instance string, keys, vals []string) bool {
		m := &Message{Type: TypeNotify, Instance: sanitize(instance), Vars: map[string]string{}}
		for i := 0; i < len(keys) && i < len(vals); i++ {
			k := "k" + sanitizeName(keys[i])
			m.Vars[k] = sanitize(vals[i])
		}
		data, err := Marshal(m)
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		if back.Instance != m.Instance || len(back.Vars) != len(m.Vars) {
			return false
		}
		for k, v := range m.Vars {
			if back.Vars[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// sanitize strips control characters that XML 1.0 cannot represent; the
// transport never produces them, so excluding them from the property is a
// faithful model.
func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r == '\t' || r == '\n' || r >= 0x20 && r != 0xFFFE && r != 0xFFFF && !(r >= 0xD800 && r <= 0xDFFF) {
			sb.WriteRune(r)
		}
	}
	// encoding/xml chardata trims nothing, but leading/trailing \r would
	// be normalized; strip it for a clean equality property.
	return strings.Trim(sb.String(), "\r")
}

func sanitizeName(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func BenchmarkMarshal(b *testing.B) {
	m := &Message{
		Type: TypeNotify, Composite: "TravelPlanner", Instance: "inst-1",
		From: "DFB", To: "CR",
		Vars: map[string]string{"destination": "sydney", "flightRef": "QF-1", "price": "120.5"},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	m := &Message{
		Type: TypeNotify, Composite: "TravelPlanner", Instance: "inst-1",
		From: "DFB", To: "CR",
		Vars: map[string]string{"destination": "sydney", "flightRef": "QF-1", "price": "120.5"},
	}
	data, err := Marshal(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}
