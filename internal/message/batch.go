package message

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// This file implements the batch wire encoding used by Network v2's
// SendBatch: several control documents coalesced into one transport
// frame. The format is
//
//	0x00 | uvarint count | (uvarint len | document bytes) * count
//
// The leading NUL byte discriminates batches from legacy payloads: an
// XML document can never start with 0x00, so UnmarshalBatch decodes both
// new batch frames and old single-document frames, and a batch of one is
// emitted in the legacy encoding (byte-identical to Marshal), keeping
// unbatched senders readable by pre-batch receivers.

// batchMagic is the first byte of a batch payload. XML documents start
// with '<' or whitespace, never NUL, so the discriminator is unambiguous.
const batchMagic = 0x00

// ErrEmptyBatch reports a MarshalBatch of zero messages.
var ErrEmptyBatch = fmt.Errorf("message: empty batch")

// MarshalBatch encodes ms as one payload using the pooled fast-path
// encoder. A batch of one is encoded exactly as Marshal would encode it
// (legacy single-document payload); larger batches use the count-prefixed
// batch format documented above. Message order is preserved.
func MarshalBatch(ms []*Message) ([]byte, error) {
	switch len(ms) {
	case 0:
		return nil, ErrEmptyBatch
	case 1:
		return Marshal(ms[0])
	}

	buf := marshalBufPool.Get().(*bytes.Buffer)
	defer marshalBufPool.Put(buf)
	buf.Reset()
	scratch := marshalBufPool.Get().(*bytes.Buffer)
	defer marshalBufPool.Put(scratch)

	var varint [binary.MaxVarintLen64]byte
	buf.WriteByte(batchMagic)
	buf.Write(varint[:binary.PutUvarint(varint[:], uint64(len(ms)))])
	for _, m := range ms {
		scratch.Reset()
		encodeInto(scratch, m)
		buf.Write(varint[:binary.PutUvarint(varint[:], uint64(scratch.Len()))])
		buf.Write(scratch.Bytes())
	}

	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// UnmarshalBatch decodes a payload produced by MarshalBatch — or by the
// legacy single-document Marshal, which it returns as a batch of one.
// This is the only decode entry point a transport needs: old and new
// frames are distinguished by the leading byte.
func UnmarshalBatch(data []byte) ([]*Message, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("message: empty payload")
	}
	if data[0] != batchMagic {
		m, err := Unmarshal(data)
		if err != nil {
			return nil, err
		}
		return []*Message{m}, nil
	}

	rest := data[1:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("message: batch: malformed count")
	}
	rest = rest[n:]
	if count == 0 {
		return nil, fmt.Errorf("message: batch: zero messages")
	}
	// Every document needs at least its length prefix, so count can never
	// exceed the remaining bytes: reject early rather than over-allocating
	// on a corrupt header. The capacity hint is additionally capped so a
	// corrupt count that passes the check cannot amplify a small frame
	// into a huge pointer-slice allocation before the first parse fails.
	if count > uint64(len(rest)) {
		return nil, fmt.Errorf("message: batch: count %d exceeds payload", count)
	}
	capHint := count
	if capHint > 1024 {
		capHint = 1024
	}
	ms := make([]*Message, 0, capHint)
	for i := uint64(0); i < count; i++ {
		size, n := binary.Uvarint(rest)
		if n <= 0 || size > uint64(len(rest)-n) {
			return nil, fmt.Errorf("message: batch: malformed length for document %d", i)
		}
		rest = rest[n:]
		m, err := Unmarshal(rest[:size])
		if err != nil {
			return nil, fmt.Errorf("message: batch: document %d: %w", i, err)
		}
		ms = append(ms, m)
		rest = rest[size:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("message: batch: %d trailing bytes", len(rest))
	}
	return ms, nil
}
