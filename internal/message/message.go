// Package message defines the XML control documents that SELF-SERV peers
// exchange. In the paper, services "communicate through XML documents ...
// exchanged through Java sockets"; this package is the Go equivalent of
// that document vocabulary, shared by the peer-to-peer coordinators, the
// composite-service wrapper, and the centralized baseline orchestrator.
package message

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Type discriminates control documents.
type Type string

// Message types.
const (
	// TypeStart flows from the composite wrapper to the coordinators of
	// the states that must be entered first.
	TypeStart Type = "start"
	// TypeNotify flows between peer coordinators: the source state has
	// completed and its postprocessing selected the target.
	TypeNotify Type = "notify"
	// TypeDone flows from the coordinators of the states exited last back
	// to the composite wrapper, carrying the final variable bindings.
	TypeDone Type = "done"
	// TypeFault reports a failed execution to the wrapper.
	TypeFault Type = "fault"
	// TypeInvoke asks a service host to execute an operation (used by the
	// centralized orchestrator and by wrappers talking to providers).
	TypeInvoke Type = "invoke"
	// TypeResult carries an operation result back to the invoker.
	TypeResult Type = "result"
)

// WrapperID is the reserved pseudo-address of a composite service's
// wrapper in From/To fields of control messages.
const WrapperID = "$wrapper"

// Message is one control document. Vars carries the execution instance's
// variable bindings as text (see expr.FromText for the text convention).
type Message struct {
	// Type discriminates the document.
	Type Type
	// Composite names the composite service the instance belongs to.
	Composite string
	// Instance identifies one execution of the composite service.
	Instance string
	// From and To are state IDs within the composite's statechart, or
	// WrapperID. For TypeInvoke/TypeResult, To/From name the target
	// service and operation as "service/operation".
	From string
	To   string
	// Seq is a sender-local sequence number, useful in logs and tests.
	Seq int
	// Version pins the message to the compiled-plan version the instance
	// started on. Zero means "unversioned" (pre-control-plane senders);
	// zero is omitted on the wire, so legacy documents are byte-identical.
	Version uint64
	// Vars is the variable bag. Nil and empty are equivalent.
	Vars map[string]string
	// Error describes a fault (TypeFault or failed TypeResult).
	Error string
	// ReplyTo is the network address to send a TypeResult back to; set on
	// TypeInvoke messages.
	ReplyTo string
}

// Clone returns an independent copy of m (its Vars map is copied).
func (m *Message) Clone() *Message {
	cp := *m
	if m.Vars != nil {
		cp.Vars = make(map[string]string, len(m.Vars))
		for k, v := range m.Vars {
			cp.Vars[k] = v
		}
	}
	return &cp
}

// MergeVars copies bindings from vars into m.Vars, overwriting existing
// names, and returns m for chaining.
func (m *Message) MergeVars(vars map[string]string) *Message {
	if len(vars) == 0 {
		return m
	}
	if m.Vars == nil {
		m.Vars = make(map[string]string, len(vars))
	}
	for k, v := range vars {
		m.Vars[k] = v
	}
	return m
}

// String renders a compact one-line summary for logs.
func (m *Message) String() string {
	return fmt.Sprintf("%s %s/%s %s->%s vars=%d", m.Type, m.Composite, m.Instance, m.From, m.To, len(m.Vars))
}

// xmlMessage is the wire representation.
type xmlMessage struct {
	XMLName   xml.Name `xml:"message"`
	Type      string   `xml:"type,attr"`
	Composite string   `xml:"composite,attr,omitempty"`
	Instance  string   `xml:"instance,attr,omitempty"`
	From      string   `xml:"from,attr,omitempty"`
	To        string   `xml:"to,attr,omitempty"`
	Seq       int      `xml:"seq,attr,omitempty"`
	Version   uint64   `xml:"version,attr,omitempty"`
	ReplyTo   string   `xml:"replyTo,attr,omitempty"`
	Error     string   `xml:"error,omitempty"`
	Vars      []xmlVar `xml:"var"`
}

type xmlVar struct {
	Name  string `xml:"name,attr"`
	Value string `xml:",chardata"`
}

// marshalBufPool recycles encode buffers across Marshal calls: every
// notification on every transport serializes through here, so the buffer
// (and its grown backing array) is the dominant per-message allocation.
var marshalBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Marshal encodes m as an XML document. Variables are emitted in sorted
// order so the encoding is deterministic (stable tests, stable byte
// counts in benchmarks).
//
// The encoder is hand-rolled for this package's small fixed vocabulary —
// the reflection-based encoding/xml encoder accounted for most of the
// per-notification allocation cost. The wire format is unchanged;
// marshalXML remains in the package as the differential-test reference.
func Marshal(m *Message) ([]byte, error) {
	buf := marshalBufPool.Get().(*bytes.Buffer)
	defer marshalBufPool.Put(buf)
	buf.Reset()
	encodeInto(buf, m)

	// Copy out: the buffer returns to the pool, so its bytes can't escape.
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// encodeInto appends m's XML document to buf (the shared body of Marshal
// and MarshalBatch).
func encodeInto(buf *bytes.Buffer, m *Message) {
	buf.WriteString(`<message type="`)
	xmlEscape(buf, string(m.Type))
	buf.WriteByte('"')
	writeAttr(buf, ` composite="`, m.Composite)
	writeAttr(buf, ` instance="`, m.Instance)
	writeAttr(buf, ` from="`, m.From)
	writeAttr(buf, ` to="`, m.To)
	if m.Seq != 0 {
		buf.WriteString(` seq="`)
		buf.WriteString(strconv.Itoa(m.Seq))
		buf.WriteByte('"')
	}
	if m.Version != 0 {
		buf.WriteString(` version="`)
		buf.WriteString(strconv.FormatUint(m.Version, 10))
		buf.WriteByte('"')
	}
	writeAttr(buf, ` replyTo="`, m.ReplyTo)
	buf.WriteByte('>')
	if m.Error != "" {
		buf.WriteString("<error>")
		xmlEscape(buf, m.Error)
		buf.WriteString("</error>")
	}
	if len(m.Vars) > 0 {
		names := make([]string, 0, len(m.Vars))
		for k := range m.Vars {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			buf.WriteString(`<var name="`)
			xmlEscape(buf, k)
			buf.WriteString(`">`)
			xmlEscape(buf, m.Vars[k])
			buf.WriteString("</var>")
		}
	}
	buf.WriteString("</message>")
}

// writeAttr emits ` name="value"` (prefix carries name and opening quote),
// omitting empty values like encoding/xml's omitempty.
func writeAttr(buf *bytes.Buffer, prefix, value string) {
	if value == "" {
		return
	}
	buf.WriteString(prefix)
	xmlEscape(buf, value)
	buf.WriteByte('"')
}

// xmlEscape writes s with the same byte-level escaping xml.EscapeText
// applies, so hand-encoded documents stay readable by any XML parser.
func xmlEscape(buf *bytes.Buffer, s string) {
	last := 0
	for i := 0; i < len(s); i++ {
		var esc string
		switch s[i] {
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '"':
			esc = "&#34;"
		case '\'':
			esc = "&#39;"
		case '\t':
			esc = "&#x9;"
		case '\n':
			esc = "&#xA;"
		case '\r':
			esc = "&#xD;"
		default:
			continue
		}
		buf.WriteString(s[last:i])
		buf.WriteString(esc)
		last = i + 1
	}
	buf.WriteString(s[last:])
}

// marshalXML is the reflection-based reference encoder (the original
// implementation). Kept for differential tests: Marshal's output must
// decode to the same Message as marshalXML's.
func marshalXML(m *Message) ([]byte, error) {
	doc := xmlMessage{
		Type:      string(m.Type),
		Composite: m.Composite,
		Instance:  m.Instance,
		From:      m.From,
		To:        m.To,
		Seq:       m.Seq,
		Version:   m.Version,
		ReplyTo:   m.ReplyTo,
		Error:     m.Error,
	}
	if len(m.Vars) > 0 {
		names := make([]string, 0, len(m.Vars))
		for k := range m.Vars {
			names = append(names, k)
		}
		sort.Strings(names)
		doc.Vars = make([]xmlVar, 0, len(names))
		for _, k := range names {
			doc.Vars = append(doc.Vars, xmlVar{Name: k, Value: m.Vars[k]})
		}
	}
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	if err := enc.Encode(doc); err != nil {
		return nil, fmt.Errorf("message: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes an XML document produced by Marshal. It first runs a
// hand-rolled parser specialized to the message vocabulary (the common
// case: every control message on every transport); documents it cannot
// handle — processing instructions, comments, CDATA, foreign elements —
// fall back to the general encoding/xml decoder.
func Unmarshal(data []byte) (*Message, error) {
	if m, ok := unmarshalFast(data); ok {
		if m.Type == "" {
			return nil, fmt.Errorf("message: document has no type attribute")
		}
		return m, nil
	}
	return unmarshalXML(data)
}

// unmarshalXML is the reflection-based reference decoder (the original
// implementation and the fallback for documents the fast path declines).
func unmarshalXML(data []byte) (*Message, error) {
	var doc xmlMessage
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("message: unmarshal: %w", err)
	}
	if doc.Type == "" {
		return nil, fmt.Errorf("message: document has no type attribute")
	}
	m := &Message{
		Type:      Type(doc.Type),
		Composite: doc.Composite,
		Instance:  doc.Instance,
		From:      doc.From,
		To:        doc.To,
		Seq:       doc.Seq,
		Version:   doc.Version,
		ReplyTo:   doc.ReplyTo,
		Error:     doc.Error,
	}
	if len(doc.Vars) > 0 {
		m.Vars = make(map[string]string, len(doc.Vars))
		for _, v := range doc.Vars {
			m.Vars[v.Name] = v.Value
		}
	}
	return m, nil
}
