// Package qos tracks the runtime quality-of-service observations that
// service communities use for delegation: per-member latency, reliability
// (success rate), and instantaneous load, smoothed over "the history of
// past executions and the status of ongoing executions" (§2 of the
// paper).
//
// Latency and reliability are exponentially weighted moving averages so
// recent behaviour dominates; load is an exact in-flight counter.
package qos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultAlpha is the EWMA smoothing factor: the weight of the newest
// observation.
const DefaultAlpha = 0.3

// PriorReliability is the neutral reliability prior a member's smoothed
// reliability decays TOWARD on a health-state reset (recovery from dark,
// rejoin after a flap). It is deliberately well below the optimistic
// start of 1: a member with a failure history earns trust back through
// observed successes, never by resetting its state.
const PriorReliability = 0.5

// Health is a member's position in the active health-check state
// machine: Healthy → Suspect (first probe/invocation failures) → Dark
// (failure streak past the threshold; excluded from selection) →
// Probing (a recovery probe is in flight) → Healthy again.
type Health int

const (
	// Healthy members are fully eligible for selection.
	Healthy Health = iota
	// Suspect members failed recently but are still selectable; more
	// failures turn them dark, a success heals them.
	Suspect
	// Dark members are excluded from selection until a probe succeeds.
	Dark
	// Probing marks a dark member with a recovery probe in flight; it
	// stays excluded from selection until the probe verdict.
	Probing
)

// String returns the lowercase name of the health state.
func (h Health) String() string {
	switch h {
	case Suspect:
		return "suspect"
	case Dark:
		return "dark"
	case Probing:
		return "probing"
	}
	return "healthy"
}

// Selectable reports whether a member in this state may be delegated a
// request (dark and probing members may not).
func (h Health) Selectable() bool { return h == Healthy || h == Suspect }

// Metrics is a snapshot of one member's observed quality.
type Metrics struct {
	// Latency is the smoothed service time. Zero until first observation.
	Latency time.Duration
	// Reliability is the smoothed success probability in [0,1]. Members
	// with no observations report 1 (optimistic start, standard for
	// exploration); see ResetToPrior for why a RESET never restores it.
	Reliability float64
	// Load is the number of in-flight invocations right now.
	Load int
	// Executions is the lifetime number of completed invocations.
	Executions int64
	// Health is the member's health-check state (Healthy for members no
	// checker has ever classified).
	Health Health
}

// String renders a compact summary.
func (m Metrics) String() string {
	return fmt.Sprintf("lat=%v rel=%.2f load=%d n=%d health=%s",
		m.Latency.Round(time.Microsecond), m.Reliability, m.Load, m.Executions, m.Health)
}

// History accumulates observations for a set of members. The zero value
// is not usable; call NewHistory.
type History struct {
	alpha float64

	mu      sync.Mutex
	members map[string]*memberStats
}

type memberStats struct {
	latency     float64 // EWMA nanoseconds
	reliability float64 // EWMA success indicator
	seeded      bool
	load        int
	executions  int64
	health      Health
}

// NewHistory returns a History with the given EWMA alpha; alpha outside
// (0,1] falls back to DefaultAlpha.
func NewHistory(alpha float64) *History {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	return &History{alpha: alpha, members: map[string]*memberStats{}}
}

func (h *History) member(name string) *memberStats {
	m, ok := h.members[name]
	if !ok {
		m = &memberStats{reliability: 1}
		h.members[name] = m
	}
	return m
}

// Begin records that an invocation of member has started (load +1).
func (h *History) Begin(member string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.member(member).load++
}

// End records a finished invocation: its duration, whether it succeeded,
// and load -1. Begin/End must pair.
func (h *History) End(member string, d time.Duration, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.member(member)
	if m.load > 0 {
		m.load--
	}
	m.executions++
	success := 0.0
	if ok {
		success = 1.0
	}
	if !m.seeded {
		m.latency = float64(d)
		m.reliability = success
		m.seeded = true
		return
	}
	m.latency = h.alpha*float64(d) + (1-h.alpha)*m.latency
	m.reliability = h.alpha*success + (1-h.alpha)*m.reliability
}

// Snapshot returns the current metrics for member. Unknown members report
// zero latency, reliability 1, and zero load.
func (h *History) Snapshot(member string) Metrics {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.members[member]
	if !ok {
		return Metrics{Reliability: 1}
	}
	return Metrics{
		Latency:     time.Duration(m.latency),
		Reliability: m.reliability,
		Load:        m.load,
		Executions:  m.executions,
		Health:      m.health,
	}
}

// SetHealth records member's health-check state (health checkers own
// these transitions; History just makes them visible to policies).
func (h *History) SetHealth(member string, state Health) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.member(member).health = state
}

// Health returns member's current health state (Healthy when unknown).
func (h *History) Health(member string) Health {
	h.mu.Lock()
	defer h.mu.Unlock()
	if m, ok := h.members[member]; ok {
		return m.health
	}
	return Healthy
}

// ResetToPrior applies a health-state reset to member's reliability: the
// smoothed value decays HALFWAY toward PriorReliability, keeping the
// latency history and execution count.
//
// The naive reset — dropping the member's stats so it restarts at the
// optimistic 1 — is exploitable: a flapping provider that fails, goes
// dark, and reconnects "with fresh state" would out-score every honest
// member on each reappearance and win selection forever. Decaying toward
// a neutral prior instead gives a recovered member partial forgiveness
// (it isn't starved by its past), but caps what a reset can ever earn at
// the prior: repeated flap cycles converge to PriorReliability, always
// below a steadily healthy member's ~1. Members with no history at all
// are seeded AT the prior — a reset is an admission of past failure, so
// it must never grant the optimistic start.
func (h *History) ResetToPrior(member string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.member(member)
	if !m.seeded {
		m.reliability = PriorReliability
		m.seeded = true
		return
	}
	m.reliability = PriorReliability + (m.reliability-PriorReliability)/2
}

// Members returns the names with any recorded state, sorted.
func (h *History) Members() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	names := make([]string, 0, len(h.members))
	for n := range h.members {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders all members' metrics, one per line, sorted by name.
func (h *History) String() string {
	var sb strings.Builder
	for _, n := range h.Members() {
		fmt.Fprintf(&sb, "%s: %s\n", n, h.Snapshot(n))
	}
	return sb.String()
}
