// Package qos tracks the runtime quality-of-service observations that
// service communities use for delegation: per-member latency, reliability
// (success rate), and instantaneous load, smoothed over "the history of
// past executions and the status of ongoing executions" (§2 of the
// paper).
//
// Latency and reliability are exponentially weighted moving averages so
// recent behaviour dominates; load is an exact in-flight counter.
package qos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultAlpha is the EWMA smoothing factor: the weight of the newest
// observation.
const DefaultAlpha = 0.3

// Metrics is a snapshot of one member's observed quality.
type Metrics struct {
	// Latency is the smoothed service time. Zero until first observation.
	Latency time.Duration
	// Reliability is the smoothed success probability in [0,1]. Members
	// with no observations report 1 (optimistic start, standard for
	// exploration).
	Reliability float64
	// Load is the number of in-flight invocations right now.
	Load int
	// Executions is the lifetime number of completed invocations.
	Executions int64
}

// String renders a compact summary.
func (m Metrics) String() string {
	return fmt.Sprintf("lat=%v rel=%.2f load=%d n=%d", m.Latency.Round(time.Microsecond), m.Reliability, m.Load, m.Executions)
}

// History accumulates observations for a set of members. The zero value
// is not usable; call NewHistory.
type History struct {
	alpha float64

	mu      sync.Mutex
	members map[string]*memberStats
}

type memberStats struct {
	latency     float64 // EWMA nanoseconds
	reliability float64 // EWMA success indicator
	seeded      bool
	load        int
	executions  int64
}

// NewHistory returns a History with the given EWMA alpha; alpha outside
// (0,1] falls back to DefaultAlpha.
func NewHistory(alpha float64) *History {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	return &History{alpha: alpha, members: map[string]*memberStats{}}
}

func (h *History) member(name string) *memberStats {
	m, ok := h.members[name]
	if !ok {
		m = &memberStats{reliability: 1}
		h.members[name] = m
	}
	return m
}

// Begin records that an invocation of member has started (load +1).
func (h *History) Begin(member string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.member(member).load++
}

// End records a finished invocation: its duration, whether it succeeded,
// and load -1. Begin/End must pair.
func (h *History) End(member string, d time.Duration, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.member(member)
	if m.load > 0 {
		m.load--
	}
	m.executions++
	success := 0.0
	if ok {
		success = 1.0
	}
	if !m.seeded {
		m.latency = float64(d)
		m.reliability = success
		m.seeded = true
		return
	}
	m.latency = h.alpha*float64(d) + (1-h.alpha)*m.latency
	m.reliability = h.alpha*success + (1-h.alpha)*m.reliability
}

// Snapshot returns the current metrics for member. Unknown members report
// zero latency, reliability 1, and zero load.
func (h *History) Snapshot(member string) Metrics {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.members[member]
	if !ok {
		return Metrics{Reliability: 1}
	}
	return Metrics{
		Latency:     time.Duration(m.latency),
		Reliability: m.reliability,
		Load:        m.load,
		Executions:  m.executions,
	}
}

// Members returns the names with any recorded state, sorted.
func (h *History) Members() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	names := make([]string, 0, len(h.members))
	for n := range h.members {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders all members' metrics, one per line, sorted by name.
func (h *History) String() string {
	var sb strings.Builder
	for _, n := range h.Members() {
		fmt.Fprintf(&sb, "%s: %s\n", n, h.Snapshot(n))
	}
	return sb.String()
}
