package qos

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestUnknownMemberOptimisticStart(t *testing.T) {
	h := NewHistory(0.5)
	m := h.Snapshot("new")
	if m.Reliability != 1 || m.Latency != 0 || m.Load != 0 || m.Executions != 0 {
		t.Fatalf("fresh member metrics = %+v", m)
	}
}

func TestFirstObservationSeeds(t *testing.T) {
	h := NewHistory(0.3)
	h.Begin("a")
	h.End("a", 100*time.Millisecond, true)
	m := h.Snapshot("a")
	if m.Latency != 100*time.Millisecond {
		t.Fatalf("seeded latency = %v", m.Latency)
	}
	if m.Reliability != 1 || m.Executions != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestEWMASmoothing(t *testing.T) {
	h := NewHistory(0.5)
	h.Begin("a")
	h.End("a", 100*time.Millisecond, true)
	h.Begin("a")
	h.End("a", 200*time.Millisecond, true)
	m := h.Snapshot("a")
	// 0.5*200 + 0.5*100 = 150ms
	if m.Latency != 150*time.Millisecond {
		t.Fatalf("latency = %v, want 150ms", m.Latency)
	}
	h.Begin("a")
	h.End("a", 150*time.Millisecond, false)
	m = h.Snapshot("a")
	// reliability: 0.5*0 + 0.5*1 = 0.5
	if m.Reliability != 0.5 {
		t.Fatalf("reliability = %v, want 0.5", m.Reliability)
	}
}

func TestRecentBehaviourDominates(t *testing.T) {
	h := NewHistory(0.3)
	// Long good history ...
	for i := 0; i < 50; i++ {
		h.Begin("a")
		h.End("a", 10*time.Millisecond, true)
	}
	// ... then the service degrades.
	for i := 0; i < 10; i++ {
		h.Begin("a")
		h.End("a", 500*time.Millisecond, false)
	}
	m := h.Snapshot("a")
	if m.Latency < 400*time.Millisecond {
		t.Fatalf("latency = %v, should track recent degradation", m.Latency)
	}
	if m.Reliability > 0.1 {
		t.Fatalf("reliability = %v, should track recent failures", m.Reliability)
	}
}

func TestLoadTracking(t *testing.T) {
	h := NewHistory(0)
	h.Begin("a")
	h.Begin("a")
	h.Begin("b")
	if got := h.Snapshot("a").Load; got != 2 {
		t.Fatalf("a load = %d", got)
	}
	if got := h.Snapshot("b").Load; got != 1 {
		t.Fatalf("b load = %d", got)
	}
	h.End("a", time.Millisecond, true)
	if got := h.Snapshot("a").Load; got != 1 {
		t.Fatalf("a load after End = %d", got)
	}
	// End without Begin must not underflow.
	h.End("c", time.Millisecond, true)
	if got := h.Snapshot("c").Load; got != 0 {
		t.Fatalf("c load = %d", got)
	}
}

func TestBadAlphaFallsBack(t *testing.T) {
	for _, alpha := range []float64{-1, 0, 1.5} {
		h := NewHistory(alpha)
		if h.alpha != DefaultAlpha {
			t.Fatalf("alpha %v -> %v, want DefaultAlpha", alpha, h.alpha)
		}
	}
	// Alpha exactly 1: newest observation fully replaces.
	h := NewHistory(1)
	h.Begin("a")
	h.End("a", 10*time.Millisecond, true)
	h.Begin("a")
	h.End("a", 90*time.Millisecond, true)
	if got := h.Snapshot("a").Latency; got != 90*time.Millisecond {
		t.Fatalf("alpha=1 latency = %v", got)
	}
}

func TestMembersSortedAndString(t *testing.T) {
	h := NewHistory(0)
	h.Begin("zeta")
	h.Begin("alpha")
	got := h.Members()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("Members = %v", got)
	}
	s := h.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "load=1") {
		t.Fatalf("String = %q", s)
	}
}

func TestHealthStateVisible(t *testing.T) {
	h := NewHistory(0.3)
	if got := h.Health("m"); got != Healthy {
		t.Fatalf("unknown member health = %v, want healthy", got)
	}
	h.SetHealth("m", Dark)
	if got := h.Health("m"); got != Dark {
		t.Fatalf("health = %v, want dark", got)
	}
	if got := h.Snapshot("m").Health; got != Dark {
		t.Fatalf("snapshot health = %v, want dark", got)
	}
	if s := h.Snapshot("m").String(); !strings.Contains(s, "health=dark") {
		t.Fatalf("String = %q, want health=dark", s)
	}
	for state, selectable := range map[Health]bool{
		Healthy: true, Suspect: true, Dark: false, Probing: false,
	} {
		if state.Selectable() != selectable {
			t.Fatalf("%v.Selectable() = %v", state, state.Selectable())
		}
	}
}

// TestFlappingMemberNeverRegainsOptimism pins the optimistic-start fix:
// a member that builds up a failure history, goes dark, and "reconnects
// with fresh state" must NOT come back at reliability 1 — a reset decays
// toward the prior, and repeated flap cycles converge there, always
// below a steadily healthy member.
func TestFlappingMemberNeverRegainsOptimism(t *testing.T) {
	h := NewHistory(0.5)
	// Steady member: long success history, reliability ~1.
	for i := 0; i < 20; i++ {
		h.Begin("steady")
		h.End("steady", time.Millisecond, true)
	}
	// Flapper: fails hard, goes dark, then its health state resets on
	// every reconnect.
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 10; i++ {
			h.Begin("flappy")
			h.End("flappy", time.Millisecond, false)
		}
		h.SetHealth("flappy", Dark)
		h.ResetToPrior("flappy")
		h.SetHealth("flappy", Healthy)
		rel := h.Snapshot("flappy").Reliability
		if rel > PriorReliability {
			t.Fatalf("cycle %d: reset reliability = %v, above the %v prior", cycle, rel, PriorReliability)
		}
	}
	if flap, steady := h.Snapshot("flappy").Reliability, h.Snapshot("steady").Reliability; flap >= steady {
		t.Fatalf("flapper reliability %v >= steady member %v: flapping must not pay", flap, steady)
	}
	// The reset preserved, not wiped, the rest of the history.
	if n := h.Snapshot("flappy").Executions; n != 50 {
		t.Fatalf("executions after resets = %d, want 50", n)
	}
}

// TestResetToPriorSeedsUnknownMemberAtPrior: resetting a member nobody
// has observed yet seeds it AT the prior — a reset is an admission of
// past failure and must never grant the optimistic start of 1.
func TestResetToPriorSeedsUnknownMemberAtPrior(t *testing.T) {
	h := NewHistory(0.5)
	h.ResetToPrior("fresh")
	if rel := h.Snapshot("fresh").Reliability; rel != PriorReliability {
		t.Fatalf("reset of unknown member: reliability = %v, want %v", rel, PriorReliability)
	}
	// And further successes still earn trust back from the prior.
	h.Begin("fresh")
	h.End("fresh", time.Millisecond, true)
	if rel := h.Snapshot("fresh").Reliability; rel != 0.75 { // 0.5*1 + 0.5*0.5
		t.Fatalf("reliability after one success = %v, want 0.75", rel)
	}
}

// TestResetDecaysFromAboveToo: a reliable member's reset also moves
// toward the prior (from above), so resets are never an upgrade path in
// either direction.
func TestResetDecaysFromAboveToo(t *testing.T) {
	h := NewHistory(0.5)
	for i := 0; i < 20; i++ {
		h.Begin("good")
		h.End("good", time.Millisecond, true)
	}
	before := h.Snapshot("good").Reliability
	h.ResetToPrior("good")
	after := h.Snapshot("good").Reliability
	if !(after < before && after > PriorReliability) {
		t.Fatalf("reset from above: %v -> %v, want strictly between prior and old value", before, after)
	}
}

func TestConcurrentAccess(t *testing.T) {
	h := NewHistory(0.3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.Begin("m")
				h.End("m", time.Millisecond, i%5 != 0)
				_ = h.Snapshot("m")
			}
		}()
	}
	wg.Wait()
	m := h.Snapshot("m")
	if m.Load != 0 {
		t.Fatalf("load = %d after all ended", m.Load)
	}
	if m.Executions != 8*200 {
		t.Fatalf("executions = %d", m.Executions)
	}
}
