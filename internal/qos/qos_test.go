package qos

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestUnknownMemberOptimisticStart(t *testing.T) {
	h := NewHistory(0.5)
	m := h.Snapshot("new")
	if m.Reliability != 1 || m.Latency != 0 || m.Load != 0 || m.Executions != 0 {
		t.Fatalf("fresh member metrics = %+v", m)
	}
}

func TestFirstObservationSeeds(t *testing.T) {
	h := NewHistory(0.3)
	h.Begin("a")
	h.End("a", 100*time.Millisecond, true)
	m := h.Snapshot("a")
	if m.Latency != 100*time.Millisecond {
		t.Fatalf("seeded latency = %v", m.Latency)
	}
	if m.Reliability != 1 || m.Executions != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestEWMASmoothing(t *testing.T) {
	h := NewHistory(0.5)
	h.Begin("a")
	h.End("a", 100*time.Millisecond, true)
	h.Begin("a")
	h.End("a", 200*time.Millisecond, true)
	m := h.Snapshot("a")
	// 0.5*200 + 0.5*100 = 150ms
	if m.Latency != 150*time.Millisecond {
		t.Fatalf("latency = %v, want 150ms", m.Latency)
	}
	h.Begin("a")
	h.End("a", 150*time.Millisecond, false)
	m = h.Snapshot("a")
	// reliability: 0.5*0 + 0.5*1 = 0.5
	if m.Reliability != 0.5 {
		t.Fatalf("reliability = %v, want 0.5", m.Reliability)
	}
}

func TestRecentBehaviourDominates(t *testing.T) {
	h := NewHistory(0.3)
	// Long good history ...
	for i := 0; i < 50; i++ {
		h.Begin("a")
		h.End("a", 10*time.Millisecond, true)
	}
	// ... then the service degrades.
	for i := 0; i < 10; i++ {
		h.Begin("a")
		h.End("a", 500*time.Millisecond, false)
	}
	m := h.Snapshot("a")
	if m.Latency < 400*time.Millisecond {
		t.Fatalf("latency = %v, should track recent degradation", m.Latency)
	}
	if m.Reliability > 0.1 {
		t.Fatalf("reliability = %v, should track recent failures", m.Reliability)
	}
}

func TestLoadTracking(t *testing.T) {
	h := NewHistory(0)
	h.Begin("a")
	h.Begin("a")
	h.Begin("b")
	if got := h.Snapshot("a").Load; got != 2 {
		t.Fatalf("a load = %d", got)
	}
	if got := h.Snapshot("b").Load; got != 1 {
		t.Fatalf("b load = %d", got)
	}
	h.End("a", time.Millisecond, true)
	if got := h.Snapshot("a").Load; got != 1 {
		t.Fatalf("a load after End = %d", got)
	}
	// End without Begin must not underflow.
	h.End("c", time.Millisecond, true)
	if got := h.Snapshot("c").Load; got != 0 {
		t.Fatalf("c load = %d", got)
	}
}

func TestBadAlphaFallsBack(t *testing.T) {
	for _, alpha := range []float64{-1, 0, 1.5} {
		h := NewHistory(alpha)
		if h.alpha != DefaultAlpha {
			t.Fatalf("alpha %v -> %v, want DefaultAlpha", alpha, h.alpha)
		}
	}
	// Alpha exactly 1: newest observation fully replaces.
	h := NewHistory(1)
	h.Begin("a")
	h.End("a", 10*time.Millisecond, true)
	h.Begin("a")
	h.End("a", 90*time.Millisecond, true)
	if got := h.Snapshot("a").Latency; got != 90*time.Millisecond {
		t.Fatalf("alpha=1 latency = %v", got)
	}
}

func TestMembersSortedAndString(t *testing.T) {
	h := NewHistory(0)
	h.Begin("zeta")
	h.Begin("alpha")
	got := h.Members()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("Members = %v", got)
	}
	s := h.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "load=1") {
		t.Fatalf("String = %q", s)
	}
}

func TestConcurrentAccess(t *testing.T) {
	h := NewHistory(0.3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.Begin("m")
				h.End("m", time.Millisecond, i%5 != 0)
				_ = h.Snapshot("m")
			}
		}()
	}
	wg.Wait()
	m := h.Snapshot("m")
	if m.Load != 0 {
		t.Fatalf("load = %d after all ended", m.Load)
	}
	if m.Executions != 8*200 {
		t.Fatalf("executions = %d", m.Executions)
	}
}
