// Package placement implements the deterministic two-level lookup that
// routes every notification of a replicated deployment: (tenant,
// instance) → placement (a cell or a shuffle-shard of the replica pool)
// → replica address. It is the scale-out twin of the paper's "the
// coordinators do not need to implement any complex scheduling
// algorithm" invariant: routing a message is pure local hashing over an
// immutable snapshot — no RPC, no coordination, no shared counters —
// so every node that holds the same replica set and policy computes the
// SAME replica for the same key, which is what lets N replica hosts of
// one service state act as a single logical coordinator (all
// notifications of one instance converge on one replica's bookkeeping).
//
// The placement model follows cell-based routing practice:
//
//   - A "visa"-sized tenant can be pinned to a DEDICATED CELL: a subset
//     of replicas claimed for that tenant and excluded from the shared
//     pool, so nobody else's load (or poison) lands on it.
//   - Every other tenant gets a SHUFFLE-SHARD of the shared pool: a
//     deterministic, tenant-keyed subset of ShardSize replicas. Two
//     tenants' shards overlap only partially, so a noisy tenant
//     degrades at most its own shard, not the whole fleet.
//   - Within a tenant's pool, the instance ID picks the replica by
//     RENDEZVOUS (highest-random-weight) hashing — order-independent,
//     so nodes that learned the replica set in different orders still
//     agree, and adding/removing one replica remaps only the instances
//     that hashed to it (minimal disruption).
//
// Everything here is a pure function of (replica set, policy, key);
// Group precomputes the per-replica-set work (sorting, cell claiming)
// once per directory update so the per-message path is a handful of
// FNV-1a hashes.
package placement

import "sort"

// Policy configures the two-level lookup. The zero value routes every
// key over all replicas by instance hash — the right default for a
// deployment with no tenant isolation needs. A policy is deployment
// configuration: every node of a deployment must hold the same policy,
// exactly like they must hold the same routing tables.
type Policy struct {
	// ShardSize bounds how many replicas a tenant's instances spread
	// over (its shuffle-shard of the shared pool). Zero (or a value at
	// least the pool size) disables sharding: the tenant uses the whole
	// shared pool. Untagged traffic (empty tenant) always spreads over
	// the whole shared pool — with no identity to shard by, pinning it
	// to one shard would concentrate every anonymous request.
	ShardSize int
	// Tenants overrides ShardSize for specific tenants (a bigger tenant
	// can get a wider shard).
	Tenants map[string]int
	// Dedicated claims a dedicated cell of the given size for each
	// listed tenant: the claimed replicas are excluded from the shared
	// pool, so the tenant's traffic is isolated in BOTH directions.
	// Cells are claimed deterministically in sorted tenant order; if
	// the pool runs out, later tenants fall back to the shared pool.
	Dedicated map[string]int
}

// shardSize returns the tenant's effective shard width over a pool of n
// replicas (0 = the whole pool).
func (p Policy) shardSize(tenant string, n int) int {
	size := p.ShardSize
	if s, ok := p.Tenants[tenant]; ok {
		size = s
	}
	if size <= 0 || size >= n {
		return 0
	}
	return size
}

// fnv1a is FNV-1a 64-bit over two logical segments separated by a NUL
// (so ("ab","c") and ("a","bc") hash differently). Inlined byte loops —
// this runs on every routed notification.
func fnv1a(a, b string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(a); i++ {
		h = (h ^ uint64(a[i])) * 1099511628211
	}
	h = (h ^ 0) * 1099511628211 // NUL separator
	for i := 0; i < len(b); i++ {
		h = (h ^ uint64(b[i])) * 1099511628211
	}
	return h
}

// Group is the precomputed placement of one replica set under one
// policy: the canonical (sorted, deduplicated) replica list, the shared
// pool, and the dedicated cells. Immutable after Build; safe for
// concurrent use.
type Group struct {
	addrs  []string            // all replicas, sorted
	shared []string            // replicas not claimed by a dedicated cell
	cells  map[string][]string // dedicated tenant → its claimed cell
}

// Build precomputes the placement of addrs under p. The input order is
// irrelevant (the set is canonicalized), so two nodes that learned the
// replicas in different orders build identical groups.
func Build(addrs []string, p Policy) *Group {
	sorted := make([]string, 0, len(addrs))
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		sorted = append(sorted, a)
	}
	sort.Strings(sorted)
	g := &Group{addrs: sorted, shared: sorted}

	if len(p.Dedicated) == 0 || len(sorted) == 0 {
		return g
	}
	tenants := make([]string, 0, len(p.Dedicated))
	for t := range p.Dedicated {
		if p.Dedicated[t] > 0 {
			tenants = append(tenants, t)
		}
	}
	sort.Strings(tenants)
	claimed := make(map[string]bool, len(sorted))
	g.cells = make(map[string][]string, len(tenants))
	for _, t := range tenants {
		avail := make([]string, 0, len(sorted)-len(claimed))
		for _, a := range sorted {
			if !claimed[a] {
				avail = append(avail, a)
			}
		}
		if len(avail) == 0 {
			break // pool exhausted: remaining tenants use the shared pool
		}
		cell := topK(avail, p.Dedicated[t], "cell\x00"+t)
		for _, a := range cell {
			claimed[a] = true
		}
		g.cells[t] = cell
	}
	shared := make([]string, 0, len(sorted)-len(claimed))
	for _, a := range sorted {
		if !claimed[a] {
			shared = append(shared, a)
		}
	}
	if len(shared) == 0 {
		// Every replica is dedicated: unlisted tenants fall back to the
		// full set rather than having nowhere to go.
		shared = sorted
	}
	g.shared = shared
	return g
}

// topK selects the k addresses of pool with the highest rendezvous
// score for key, preserving pool order (which is sorted, so the result
// is canonical). k <= 0 or k >= len(pool) returns pool itself.
func topK(pool []string, k int, key string) []string {
	if k <= 0 || k >= len(pool) {
		return pool
	}
	type scored struct {
		idx   int
		score uint64
	}
	best := make([]scored, 0, k)
	for i, a := range pool {
		s := fnv1a(key, a)
		if len(best) < k {
			best = append(best, scored{i, s})
			continue
		}
		// Replace the current minimum if this score beats it.
		min := 0
		for j := 1; j < k; j++ {
			if best[j].score < best[min].score {
				min = j
			}
		}
		if s > best[min].score {
			best[min] = scored{i, s}
		}
	}
	sort.Slice(best, func(i, j int) bool { return best[i].idx < best[j].idx })
	out := make([]string, len(best))
	for i, b := range best {
		out[i] = pool[b.idx]
	}
	return out
}

// Addrs returns the full canonical replica list (do not mutate).
func (g *Group) Addrs() []string { return g.addrs }

// Len returns the number of replicas.
func (g *Group) Len() int { return len(g.addrs) }

// First returns the canonical first replica ("", false when empty) —
// the single-replica compatibility accessor.
func (g *Group) First() (string, bool) {
	if len(g.addrs) == 0 {
		return "", false
	}
	return g.addrs[0], true
}

// Pool returns the replicas the tenant's instances may land on: its
// dedicated cell, or its shuffle-shard of the shared pool. Exposed for
// tests and tooling; Pick is the hot-path entry.
func (g *Group) Pool(tenant string, p Policy) []string {
	if cell, ok := g.cells[tenant]; ok {
		return cell
	}
	if tenant == "" {
		return g.shared
	}
	return topK(g.shared, p.shardSize(tenant, len(g.shared)), "shard\x00"+tenant)
}

// Pick resolves the replica for one routing key: tenant → pool (cell or
// shuffle-shard), instance → rendezvous winner within the pool. Pure
// and total: any two nodes holding an equal replica SET and policy
// return the same address for the same key. Returns ("", false) only
// for an empty group.
func (g *Group) Pick(tenant, instance string, p Policy) (string, bool) {
	if len(g.addrs) == 0 {
		return "", false
	}
	if len(g.addrs) == 1 {
		return g.addrs[0], true
	}
	pool := g.Pool(tenant, p)
	best, bestScore := pool[0], fnv1a(instance, pool[0])
	for _, a := range pool[1:] {
		if s := fnv1a(instance, a); s > bestScore {
			best, bestScore = a, s
		}
	}
	return best, true
}
