package placement

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestBuildCanonicalizes pins that Build sorts, dedups, and drops empty
// addresses, so the group is a pure function of the replica SET.
func TestBuildCanonicalizes(t *testing.T) {
	g := Build([]string{"c", "a", "", "b", "a", "c"}, Policy{})
	want := []string{"a", "b", "c"}
	if len(g.Addrs()) != len(want) {
		t.Fatalf("addrs = %v, want %v", g.Addrs(), want)
	}
	for i, a := range want {
		if g.Addrs()[i] != a {
			t.Fatalf("addrs = %v, want %v", g.Addrs(), want)
		}
	}
	if first, ok := g.First(); !ok || first != "a" {
		t.Fatalf("First() = %q, %v", first, ok)
	}
}

// TestPickPermutationInvariant is the core determinism property: every
// node computes the identical replica for the same (instance, tenant)
// key regardless of the order it learned the replica set in.
func TestPickPermutationInvariant(t *testing.T) {
	addrs := []string{"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"}
	pol := Policy{ShardSize: 3, Dedicated: map[string]int{"visa": 2}}
	ref := Build(addrs, pol)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		perm := append([]string(nil), addrs...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		g := Build(perm, pol)
		for i := 0; i < 50; i++ {
			inst := fmt.Sprintf("i%d", i)
			for _, tenant := range []string{"", "visa", "acme", "tiny"} {
				want, _ := ref.Pick(tenant, inst, pol)
				got, ok := g.Pick(tenant, inst, pol)
				if !ok || got != want {
					t.Fatalf("trial %d: Pick(%q, %q) = %q, want %q (perm %v)",
						trial, tenant, inst, got, want, perm)
				}
			}
		}
	}
}

// TestPickEmptyAndSingle covers the degenerate group sizes.
func TestPickEmptyAndSingle(t *testing.T) {
	if _, ok := Build(nil, Policy{}).Pick("t", "i", Policy{}); ok {
		t.Fatal("empty group must not pick")
	}
	if a, ok := Build([]string{"only"}, Policy{}).Pick("t", "i", Policy{}); !ok || a != "only" {
		t.Fatalf("single group Pick = %q, %v", a, ok)
	}
}

// TestDedicatedCellIsolation pins the failure-domain property: a
// dedicated tenant's instances land only inside its cell, and no other
// tenant's instances ever land on the cell's replicas.
func TestDedicatedCellIsolation(t *testing.T) {
	addrs := []string{"h0", "h1", "h2", "h3", "h4", "h5"}
	pol := Policy{ShardSize: 2, Dedicated: map[string]int{"visa": 2}}
	g := Build(addrs, pol)
	cell := map[string]bool{}
	for _, a := range g.Pool("visa", pol) {
		cell[a] = true
	}
	if len(cell) != 2 {
		t.Fatalf("visa cell = %v, want size 2", g.Pool("visa", pol))
	}
	for i := 0; i < 200; i++ {
		inst := fmt.Sprintf("i%d", i)
		if a, _ := g.Pick("visa", inst, pol); !cell[a] {
			t.Fatalf("visa instance %s routed outside its cell: %s", inst, a)
		}
		for _, other := range []string{"", "acme", "bulk"} {
			if a, _ := g.Pick(other, inst, pol); cell[a] {
				t.Fatalf("tenant %q instance %s landed on visa cell replica %s", other, inst, a)
			}
		}
	}
}

// TestShuffleShardBounds pins that a sharded tenant spreads over at
// most ShardSize replicas while the anonymous tenant uses the whole
// shared pool.
func TestShuffleShardBounds(t *testing.T) {
	addrs := make([]string, 10)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("h%02d", i)
	}
	pol := Policy{ShardSize: 3, Tenants: map[string]int{"wide": 5}}
	g := Build(addrs, pol)

	hit := func(tenant string) map[string]bool {
		m := map[string]bool{}
		for i := 0; i < 500; i++ {
			a, _ := g.Pick(tenant, fmt.Sprintf("i%d", i), pol)
			m[a] = true
		}
		return m
	}
	if got := hit("acme"); len(got) > 3 {
		t.Fatalf("tenant acme spread over %d replicas, shard size 3", len(got))
	}
	if got := hit("wide"); len(got) > 5 {
		t.Fatalf("tenant wide spread over %d replicas, override 5", len(got))
	}
	// 500 instances over a 10-replica pool: the anonymous tenant should
	// touch every replica with overwhelming probability.
	if got := hit(""); len(got) != 10 {
		t.Fatalf("anonymous tenant spread over %d replicas, want all 10", len(got))
	}
}

// TestShardsDiffer spot-checks that two tenants' shuffle-shards are not
// the same subset (the whole point of shuffle-sharding) for at least
// one pair among a handful of tenants.
func TestShardsDiffer(t *testing.T) {
	addrs := make([]string, 12)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("h%02d", i)
	}
	pol := Policy{ShardSize: 3}
	g := Build(addrs, pol)
	shards := map[string][]string{}
	for _, tenant := range []string{"t1", "t2", "t3", "t4", "t5"} {
		shards[tenant] = g.Pool(tenant, pol)
	}
	same := func(a, b []string) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	distinct := false
	for _, a := range []string{"t1", "t2", "t3", "t4"} {
		for _, b := range []string{"t2", "t3", "t4", "t5"} {
			if a != b && !same(shards[a], shards[b]) {
				distinct = true
			}
		}
	}
	if !distinct {
		t.Fatalf("all five tenants got the identical shard %v", shards["t1"])
	}
}

// TestMinimalDisruption pins the rendezvous property that removing one
// replica only remaps instances that were routed to it.
func TestMinimalDisruption(t *testing.T) {
	addrs := []string{"h0", "h1", "h2", "h3"}
	pol := Policy{}
	before := Build(addrs, pol)
	after := Build([]string{"h0", "h1", "h3"}, pol) // h2 removed
	for i := 0; i < 200; i++ {
		inst := fmt.Sprintf("i%d", i)
		b, _ := before.Pick("", inst, pol)
		a, _ := after.Pick("", inst, pol)
		if b != "h2" && a != b {
			t.Fatalf("instance %s moved %s→%s though its replica survived", inst, b, a)
		}
	}
}

// TestDedicatedExhaustion: more dedicated demand than replicas — later
// tenants (sorted order) fall back to the shared pool, and the shared
// pool falls back to the full set when fully claimed.
func TestDedicatedExhaustion(t *testing.T) {
	pol := Policy{Dedicated: map[string]int{"aa": 2, "bb": 2}}
	g := Build([]string{"h0", "h1"}, pol)
	if len(g.Pool("aa", pol)) != 2 {
		t.Fatalf("aa cell = %v", g.Pool("aa", pol))
	}
	// bb found the pool exhausted: routes via shared, which fell back to
	// the full set.
	if got := g.Pool("bb", pol); len(got) != 2 {
		t.Fatalf("bb pool = %v, want full-set fallback", got)
	}
	if a, ok := g.Pick("bb", "i1", pol); !ok || a == "" {
		t.Fatalf("bb must still route somewhere, got %q, %v", a, ok)
	}
}
