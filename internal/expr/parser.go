package expr

import "fmt"

// Parse compiles src into an expression tree. The grammar, lowest to
// highest precedence:
//
//	expr    = or
//	or      = and { ("or" | "||") and }
//	and     = unary { ("and" | "&&") unary }
//	unary   = ("not" | "!") unary | cmp
//	cmp     = add [ ("="|"=="|"!="|"<>"|"<"|"<="|">"|">=") add ]
//	add     = mul { ("+"|"-") mul }
//	mul     = neg { ("*"|"/"|"%") neg }
//	neg     = "-" neg | primary
//	primary = NUMBER | STRING | "true" | "false"
//	        | IDENT [ "(" [ expr { "," expr } ] ")" ]
//	        | "(" expr ")"
//
// An empty or all-whitespace src parses to the constant true, which
// matches the routing-table convention that an absent precondition means
// "always fireable".
func Parse(src string) (Node, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.cur.kind == tokEOF {
		return &litNode{v: Bool(true)}, nil
	}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokEOF {
		return nil, p.errorf("unexpected %s after expression", p.cur)
	}
	return n, nil
}

// MustParse is like Parse but panics on error. Intended for tests and
// package-level expression constants.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

// Eval parses src and evaluates it against env in one step. It is a
// convenience wrapper over Compile + Program.Eval for one-shot callers;
// hot paths should Compile once and reuse the Program.
func Eval(src string, env Env) (Value, error) {
	n, err := Parse(src)
	if err != nil {
		return Value{}, err
	}
	return n.Eval(env)
}

// EvalBool parses src and evaluates it, requiring a boolean result. Like
// Eval, it is the one-shot wrapper over Compile + Program.EvalBool.
func EvalBool(src string, env Env) (bool, error) {
	v, err := Eval(src, env)
	if err != nil {
		return false, err
	}
	b, err := v.AsBool()
	if err != nil {
		return false, fmt.Errorf("expr: %q did not evaluate to a bool: %w", src, err)
	}
	return b, nil
}

// Variables returns the set of variable names referenced by n, in no
// particular order. Useful for validating that a guard only references
// declared parameters.
func Variables(n Node) []string {
	seen := map[string]bool{}
	var names []string
	n.walk(func(c Node) {
		if v, ok := c.(*varNode); ok && !seen[v.name] {
			seen[v.name] = true
			names = append(names, v.name)
		}
	})
	return names
}

// Functions returns the set of function names referenced by n.
func Functions(n Node) []string {
	seen := map[string]bool{}
	var names []string
	n.walk(func(c Node) {
		if v, ok := c.(*callNode); ok && !seen[v.name] {
			seen[v.name] = true
			names = append(names, v.name)
		}
	})
	return names
}

type parser struct {
	lex *lexer
	cur token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Src: p.lex.src, Pos: p.cur.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseOr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binNode{op: opOr, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &binNode{op: opAnd, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Node, error) {
	if p.cur.kind == tokNot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &notNode{x: x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Node, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	var op binOp
	switch p.cur.kind {
	case tokEq:
		op = opEq
	case tokNeq:
		op = opNeq
	case tokLt:
		op = opLt
	case tokLte:
		op = opLte
	case tokGt:
		op = opGt
	case tokGte:
		op = opGte
	default:
		return l, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	r, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	return &binNode{op: op, l: l, r: r}, nil
}

func (p *parser) parseAdd() (Node, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == tokPlus || p.cur.kind == tokMinus {
		op := opAdd
		if p.cur.kind == tokMinus {
			op = opSub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &binNode{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Node, error) {
	l, err := p.parseNeg()
	if err != nil {
		return nil, err
	}
	for {
		var op binOp
		switch p.cur.kind {
		case tokStar:
			op = opMul
		case tokSlash:
			op = opDiv
		case tokPercent:
			op = opMod
		default:
			return l, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseNeg()
		if err != nil {
			return nil, err
		}
		l = &binNode{op: op, l: l, r: r}
	}
}

func (p *parser) parseNeg() (Node, error) {
	if p.cur.kind == tokMinus {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseNeg()
		if err != nil {
			return nil, err
		}
		// Fold negation of literal numbers so String() round-trips.
		if lit, ok := x.(*litNode); ok && lit.v.Kind() == KindNumber {
			return &litNode{v: Number(-lit.v.n)}, nil
		}
		return &negNode{x: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	switch p.cur.kind {
	case tokNumber:
		n := &litNode{v: Number(p.cur.num)}
		return n, p.advance()
	case tokString:
		n := &litNode{v: StringVal(p.cur.text)}
		return n, p.advance()
	case tokTrue:
		return &litNode{v: Bool(true)}, p.advance()
	case tokFalse:
		return &litNode{v: Bool(false)}, p.advance()
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.cur.kind != tokRParen {
			return nil, p.errorf("expected ')', found %s", p.cur)
		}
		return inner, p.advance()
	case tokIdent:
		name := p.cur.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.cur.kind != tokLParen {
			return &varNode{name: name}, nil
		}
		// Function call.
		if err := p.advance(); err != nil {
			return nil, err
		}
		var args []Node
		if p.cur.kind != tokRParen {
			for {
				a, err := p.parseOr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.cur.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if p.cur.kind != tokRParen {
			return nil, p.errorf("expected ')' closing call to %s, found %s", name, p.cur)
		}
		return &callNode{name: name, args: args}, p.advance()
	default:
		return nil, p.errorf("expected expression, found %s", p.cur)
	}
}
