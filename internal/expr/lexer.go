package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// SyntaxError describes a lexical or grammatical error in an expression
// source string, with the byte offset at which it was detected.
type SyntaxError struct {
	Src string // the full source text
	Pos int    // byte offset of the error
	Msg string // human-readable description
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("expr: syntax error at offset %d in %q: %s", e.Pos, e.Src, e.Msg)
}

// lexer scans an expression source string into tokens.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Src: l.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next token, or an error on invalid input.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		return l.lexNumber()
	case c == '\'' || c == '"':
		return l.lexString(c)
	case isIdentStart(rune(c)) || c >= utf8.RuneSelf:
		return l.lexIdent()
	}
	l.pos++
	switch c {
	case '(':
		return token{kind: tokLParen, pos: start}, nil
	case ')':
		return token{kind: tokRParen, pos: start}, nil
	case ',':
		return token{kind: tokComma, pos: start}, nil
	case '+':
		return token{kind: tokPlus, pos: start}, nil
	case '-':
		return token{kind: tokMinus, pos: start}, nil
	case '*':
		return token{kind: tokStar, pos: start}, nil
	case '/':
		return token{kind: tokSlash, pos: start}, nil
	case '%':
		return token{kind: tokPercent, pos: start}, nil
	case '=':
		if l.peekByte() == '=' {
			l.pos++
		}
		return token{kind: tokEq, pos: start}, nil
	case '!':
		if l.peekByte() == '=' {
			l.pos++
			return token{kind: tokNeq, pos: start}, nil
		}
		return token{kind: tokNot, pos: start}, nil
	case '<':
		switch l.peekByte() {
		case '=':
			l.pos++
			return token{kind: tokLte, pos: start}, nil
		case '>':
			l.pos++
			return token{kind: tokNeq, pos: start}, nil
		}
		return token{kind: tokLt, pos: start}, nil
	case '>':
		if l.peekByte() == '=' {
			l.pos++
			return token{kind: tokGte, pos: start}, nil
		}
		return token{kind: tokGt, pos: start}, nil
	case '&':
		if l.peekByte() == '&' {
			l.pos++
			return token{kind: tokAnd, pos: start}, nil
		}
		return token{}, l.errorf(start, "unexpected character %q (did you mean '&&'?)", c)
	case '|':
		if l.peekByte() == '|' {
			l.pos++
			return token{kind: tokOr, pos: start}, nil
		}
		return token{}, l.errorf(start, "unexpected character %q (did you mean '||'?)", c)
	}
	return token{}, l.errorf(start, "unexpected character %q", c)
}

func (l *lexer) peekByte() byte {
	if l.pos < len(l.src) {
		return l.src[l.pos]
	}
	return 0
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	n, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, l.errorf(start, "malformed number %q", text)
	}
	return token{kind: tokNumber, text: text, num: n, pos: start}, nil
}

func (l *lexer) lexString(quote byte) (token, error) {
	start := l.pos
	l.pos++ // consume opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return token{}, l.errorf(start, "unterminated string")
			}
			esc := l.src[l.pos]
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '\'', '"':
				sb.WriteByte(esc)
			default:
				return token{}, l.errorf(l.pos, "unknown escape \\%c", esc)
			}
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errorf(start, "unterminated string")
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if isIdentPart(r) || r == '.' {
			l.pos += size
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if strings.HasSuffix(text, ".") || strings.Contains(text, "..") {
		return token{}, l.errorf(start, "malformed dotted name %q", text)
	}
	switch text {
	case "and", "AND":
		return token{kind: tokAnd, pos: start}, nil
	case "or", "OR":
		return token{kind: tokOr, pos: start}, nil
	case "not", "NOT":
		return token{kind: tokNot, pos: start}, nil
	case "true":
		return token{kind: tokTrue, pos: start}, nil
	case "false":
		return token{kind: tokFalse, pos: start}, nil
	}
	return token{kind: tokIdent, text: text, pos: start}, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
