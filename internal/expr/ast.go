package expr

import (
	"fmt"
	"strconv"
	"strings"
)

// Node is a parsed expression. Nodes are immutable after parsing and safe
// for concurrent evaluation against different environments.
type Node interface {
	// Eval computes the node's value in env.
	Eval(env Env) (Value, error)
	// String renders the node back to parseable source text.
	String() string
	// walk calls fn for this node and every descendant.
	walk(fn func(Node))
}

// litNode is a literal constant.
type litNode struct{ v Value }

func (n *litNode) Eval(Env) (Value, error) { return n.v, nil }
func (n *litNode) String() string          { return n.v.String() }
func (n *litNode) walk(fn func(Node))      { fn(n) }

// varNode references a (possibly dotted) variable.
type varNode struct{ name string }

func (n *varNode) Eval(env Env) (Value, error) {
	v, ok := env.Lookup(n.name)
	if !ok {
		return Value{}, fmt.Errorf("expr: undefined variable %q", n.name)
	}
	return v, nil
}
func (n *varNode) String() string     { return n.name }
func (n *varNode) walk(fn func(Node)) { fn(n) }

// callNode is a function application.
type callNode struct {
	name string
	args []Node
}

func (n *callNode) Eval(env Env) (Value, error) {
	fn, ok := env.Func(n.name)
	if !ok {
		return Value{}, fmt.Errorf("expr: undefined function %q", n.name)
	}
	args := make([]Value, len(n.args))
	for i, a := range n.args {
		v, err := a.Eval(env)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	v, err := fn(args)
	if err != nil {
		return Value{}, fmt.Errorf("expr: %s(...): %w", n.name, err)
	}
	return v, nil
}

func (n *callNode) String() string {
	parts := make([]string, len(n.args))
	for i, a := range n.args {
		parts[i] = a.String()
	}
	return n.name + "(" + strings.Join(parts, ", ") + ")"
}

func (n *callNode) walk(fn func(Node)) {
	fn(n)
	for _, a := range n.args {
		a.walk(fn)
	}
}

// notNode is logical negation.
type notNode struct{ x Node }

func (n *notNode) Eval(env Env) (Value, error) {
	v, err := n.x.Eval(env)
	if err != nil {
		return Value{}, err
	}
	b, err := v.AsBool()
	if err != nil {
		return Value{}, fmt.Errorf("expr: operand of 'not' %w", errNotBool(v))
	}
	_ = b
	return Bool(!v.b), nil
}
func (n *notNode) String() string { return "not " + parenthesize(n.x) }
func (n *notNode) walk(fn func(Node)) {
	fn(n)
	n.x.walk(fn)
}

// negNode is arithmetic negation.
type negNode struct{ x Node }

func (n *negNode) Eval(env Env) (Value, error) {
	v, err := n.x.Eval(env)
	if err != nil {
		return Value{}, err
	}
	f, err := v.AsNumber()
	if err != nil {
		return Value{}, fmt.Errorf("expr: operand of unary '-' is not a number: %s", v)
	}
	return Number(-f), nil
}
func (n *negNode) String() string { return "-" + parenthesize(n.x) }
func (n *negNode) walk(fn func(Node)) {
	fn(n)
	n.x.walk(fn)
}

// binOp enumerates binary operators.
type binOp int

const (
	opAnd binOp = iota
	opOr
	opEq
	opNeq
	opLt
	opLte
	opGt
	opGte
	opAdd
	opSub
	opMul
	opDiv
	opMod
)

func (op binOp) String() string {
	switch op {
	case opAnd:
		return "and"
	case opOr:
		return "or"
	case opEq:
		return "="
	case opNeq:
		return "!="
	case opLt:
		return "<"
	case opLte:
		return "<="
	case opGt:
		return ">"
	case opGte:
		return ">="
	case opAdd:
		return "+"
	case opSub:
		return "-"
	case opMul:
		return "*"
	case opDiv:
		return "/"
	case opMod:
		return "%"
	default:
		return "?"
	}
}

// binNode is a binary operation.
type binNode struct {
	op   binOp
	l, r Node
}

func (n *binNode) Eval(env Env) (Value, error) {
	switch n.op {
	case opAnd, opOr:
		return n.evalLogic(env)
	}
	lv, err := n.l.Eval(env)
	if err != nil {
		return Value{}, err
	}
	rv, err := n.r.Eval(env)
	if err != nil {
		return Value{}, err
	}
	switch n.op {
	case opEq:
		return Bool(lv.Equal(rv)), nil
	case opNeq:
		return Bool(!lv.Equal(rv)), nil
	case opLt, opLte, opGt, opGte:
		return compare(n.op, lv, rv)
	case opAdd:
		// '+' concatenates strings and adds numbers.
		if lv.Kind() == KindString && rv.Kind() == KindString {
			return StringVal(lv.s + rv.s), nil
		}
		return arith(n.op, lv, rv)
	default:
		return arith(n.op, lv, rv)
	}
}

// evalLogic implements short-circuit and/or.
func (n *binNode) evalLogic(env Env) (Value, error) {
	lv, err := n.l.Eval(env)
	if err != nil {
		return Value{}, err
	}
	lb, err := lv.AsBool()
	if err != nil {
		return Value{}, fmt.Errorf("expr: left operand of %q %w", n.op.String(), errNotBool(lv))
	}
	if n.op == opAnd && !lb {
		return Bool(false), nil
	}
	if n.op == opOr && lb {
		return Bool(true), nil
	}
	rv, err := n.r.Eval(env)
	if err != nil {
		return Value{}, err
	}
	rb, err := rv.AsBool()
	if err != nil {
		return Value{}, fmt.Errorf("expr: right operand of %q %w", n.op.String(), errNotBool(rv))
	}
	return Bool(rb), nil
}

func (n *binNode) String() string {
	return parenthesize(n.l) + " " + n.op.String() + " " + parenthesize(n.r)
}

func (n *binNode) walk(fn func(Node)) {
	fn(n)
	n.l.walk(fn)
	n.r.walk(fn)
}

func compare(op binOp, l, r Value) (Value, error) {
	if l.Kind() == KindString && r.Kind() == KindString {
		c := strings.Compare(l.s, r.s)
		return Bool(cmpHolds(op, c)), nil
	}
	lf, err := l.AsNumber()
	if err != nil {
		return Value{}, fmt.Errorf("expr: cannot compare %s with %s", l, r)
	}
	rf, err := r.AsNumber()
	if err != nil {
		return Value{}, fmt.Errorf("expr: cannot compare %s with %s", l, r)
	}
	var c int
	switch {
	case lf < rf:
		c = -1
	case lf > rf:
		c = 1
	}
	return Bool(cmpHolds(op, c)), nil
}

func cmpHolds(op binOp, c int) bool {
	switch op {
	case opLt:
		return c < 0
	case opLte:
		return c <= 0
	case opGt:
		return c > 0
	case opGte:
		return c >= 0
	default:
		return false
	}
}

func arith(op binOp, l, r Value) (Value, error) {
	lf, err := l.AsNumber()
	if err != nil {
		return Value{}, fmt.Errorf("expr: left operand of %q is not a number: %s", op.String(), l)
	}
	rf, err := r.AsNumber()
	if err != nil {
		return Value{}, fmt.Errorf("expr: right operand of %q is not a number: %s", op.String(), r)
	}
	switch op {
	case opAdd:
		return Number(lf + rf), nil
	case opSub:
		return Number(lf - rf), nil
	case opMul:
		return Number(lf * rf), nil
	case opDiv:
		if rf == 0 {
			return Value{}, fmt.Errorf("expr: division by zero")
		}
		return Number(lf / rf), nil
	case opMod:
		if rf == 0 {
			return Value{}, fmt.Errorf("expr: modulo by zero")
		}
		li, lerr := toInt(lf)
		ri, rerr := toInt(rf)
		if lerr != nil || rerr != nil {
			return Value{}, fmt.Errorf("expr: %% requires integer operands")
		}
		return Number(float64(li % ri)), nil
	default:
		return Value{}, fmt.Errorf("expr: unknown arithmetic operator %q", op.String())
	}
}

func toInt(f float64) (int64, error) {
	i := int64(f)
	if float64(i) != f {
		return 0, fmt.Errorf("not an integer: %s", strconv.FormatFloat(f, 'g', -1, 64))
	}
	return i, nil
}

func errNotBool(v Value) error {
	return fmt.Errorf("is not a bool: %s", v)
}

// parenthesize renders a child expression, wrapping composite nodes in
// parentheses so that String output re-parses with identical structure.
func parenthesize(n Node) string {
	switch n.(type) {
	case *binNode, *notNode:
		return "(" + n.String() + ")"
	default:
		return n.String()
	}
}
