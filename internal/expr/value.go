// Package expr implements the guard-expression language used throughout
// SELF-SERV: in ECA rules on statechart transitions (e.g.
// "not domestic(destination)"), in routing-table preconditions, and in
// community membership predicates.
//
// The language is a small, side-effect-free expression language over three
// value kinds (booleans, numbers, strings) with variables, dotted paths,
// and host-registered functions. It is evaluated against an Env.
package expr

import (
	"fmt"
	"strconv"
)

// Kind enumerates the dynamic types a Value may hold.
type Kind int

// The value kinds.
const (
	KindBool Kind = iota
	KindNumber
	KindString
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindBool:
		return "bool"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is a dynamically typed value produced by evaluation.
// The zero Value is the boolean false.
type Value struct {
	kind Kind
	b    bool
	n    float64
	s    string
}

// Bool returns a boolean Value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Number returns a numeric Value.
func Number(n float64) Value { return Value{kind: KindNumber, n: n} }

// String returns a string Value.
func StringVal(s string) Value { return Value{kind: KindString, s: s} }

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsTrue reports whether v is the boolean true.
func (v Value) IsTrue() bool { return v.kind == KindBool && v.b }

// AsBool returns the boolean content of v, or an error if v is not a bool.
func (v Value) AsBool() (bool, error) {
	if v.kind != KindBool {
		return false, fmt.Errorf("expr: %s is not a bool", v)
	}
	return v.b, nil
}

// AsNumber returns the numeric content of v, or an error if v is not a number.
func (v Value) AsNumber() (float64, error) {
	if v.kind != KindNumber {
		return 0, fmt.Errorf("expr: %s is not a number", v)
	}
	return v.n, nil
}

// AsString returns the string content of v, or an error if v is not a string.
func (v Value) AsString() (string, error) {
	if v.kind != KindString {
		return "", fmt.Errorf("expr: %s is not a string", v)
	}
	return v.s, nil
}

// Text returns the raw string content regardless of kind, rendering
// numbers and booleans in their canonical form. Useful for carrying
// values into XML documents.
func (v Value) Text() string {
	switch v.kind {
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindNumber:
		return strconv.FormatFloat(v.n, 'g', -1, 64)
	default:
		return v.s
	}
}

// String implements fmt.Stringer. Strings are quoted so that the output
// is unambiguous in logs and error messages.
func (v Value) String() string {
	if v.kind == KindString {
		return strconv.Quote(v.s)
	}
	return v.Text()
}

// Equal reports deep equality of two values. Values of different kinds
// are never equal.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindBool:
		return v.b == o.b
	case KindNumber:
		return v.n == o.n
	default:
		return v.s == o.s
	}
}

// FromText parses s into the most specific Value: bool if it is "true" or
// "false", number if it parses as a float, otherwise a string.
func FromText(s string) Value {
	switch s {
	case "true":
		return Bool(true)
	case "false":
		return Bool(false)
	}
	if n, err := strconv.ParseFloat(s, 64); err == nil {
		return Number(n)
	}
	return StringVal(s)
}
