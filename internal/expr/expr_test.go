package expr

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func env(pairs ...any) *MapEnv {
	e := NewMapEnv()
	for i := 0; i+1 < len(pairs); i += 2 {
		name := pairs[i].(string)
		switch v := pairs[i+1].(type) {
		case bool:
			e.Bind(name, Bool(v))
		case float64:
			e.Bind(name, Number(v))
		case int:
			e.Bind(name, Number(float64(v)))
		case string:
			e.Bind(name, StringVal(v))
		default:
			panic(fmt.Sprintf("bad pair value %T", v))
		}
	}
	return e
}

func TestEvalBoolTable(t *testing.T) {
	e := env(
		"destination", "sydney",
		"price", 120.5,
		"stars", 4,
		"vip", true,
		"trip.distance", 35.0,
	)
	e.BindFunc("domestic", func(args []Value) (Value, error) {
		s, err := args[0].AsString()
		if err != nil {
			return Value{}, err
		}
		return Bool(s == "sydney" || s == "melbourne"), nil
	})
	e.BindFunc("near", func(args []Value) (Value, error) {
		a, _ := args[0].AsNumber()
		return Bool(a < 50), nil
	})

	cases := []struct {
		src  string
		want bool
	}{
		{"true", true},
		{"false", false},
		{"", true}, // empty guard means "always"
		{"   ", true},
		{"not false", true},
		{"!false", true},
		{"not not true", true},
		{"true and true", true},
		{"true && false", false},
		{"false or true", true},
		{"false || false", false},
		{"vip", true},
		{"not vip or vip", true},
		{"price < 200", true},
		{"price <= 120.5", true},
		{"price > 120.5", false},
		{"price >= 121", false},
		{"stars = 4", true},
		{"stars == 4", true},
		{"stars != 5", true},
		{"stars <> 5", true},
		{"destination = 'sydney'", true},
		{"destination == \"sydney\"", true},
		{"destination != 'tokyo'", true},
		{"destination < 'tokyo'", true}, // lexicographic
		{"domestic(destination)", true},
		{"not domestic('tokyo')", true},
		{"near(trip.distance)", true},
		{"not near(trip.distance + 100)", true},
		{"price * 2 > 240", true},
		{"(price + 79.5) / 2 = 100", true},
		{"10 % 3 = 1", true},
		{"-price < 0", true},
		{"min(stars, 10) = 4", true},
		{"max(1, 2, 3) = 3", true},
		{"abs(-3) = 3", true},
		{"floor(1.9) = 1", true},
		{"ceil(1.1) = 2", true},
		{"round(1.5) = 2", true},
		{"sqrt(16) = 4", true},
		{"len(destination) = 6", true},
		{"contains(destination, 'syd')", true},
		{"prefix(destination, 'syd')", true},
		{"suffix(destination, 'ney')", true},
		{"lower('ABC') = 'abc'", true},
		{"upper('abc') = 'ABC'", true},
		{"trim('  x ') = 'x'", true},
		{"if(vip, 1, 2) = 1", true},
		{"number('42') = 42", true},
		{"string(42) = '42'", true},
		{"'a' + 'b' = 'ab'", true},
		{"price < 100 or stars >= 4 and vip", true},
		{"(price < 100 or stars >= 4) and vip", true},
	}
	for _, tc := range cases {
		got, err := EvalBool(tc.src, e)
		if err != nil {
			t.Errorf("EvalBool(%q): unexpected error: %v", tc.src, err)
			continue
		}
		if got != tc.want {
			t.Errorf("EvalBool(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestEvalNumbers(t *testing.T) {
	e := env("x", 7, "y", 2)
	cases := []struct {
		src  string
		want float64
	}{
		{"x + y", 9},
		{"x - y", 5},
		{"x * y", 14},
		{"x / y", 3.5},
		{"x % y", 1},
		{"-x + y", -5},
		{"x + y * 3", 13},
		{"(x + y) * 3", 27},
		{"2 * -3", -6},
		{"1e3 + 1", 1001},
		{"0.5 * 4", 2},
	}
	for _, tc := range cases {
		v, err := Eval(tc.src, e)
		if err != nil {
			t.Fatalf("Eval(%q): %v", tc.src, err)
		}
		n, err := v.AsNumber()
		if err != nil {
			t.Fatalf("Eval(%q) kind = %v, want number", tc.src, v.Kind())
		}
		if n != tc.want {
			t.Errorf("Eval(%q) = %g, want %g", tc.src, n, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"(", ")", "1 +", "and true", "true and", "x ==", "== x",
		"f(", "f(1,", "f(1", "'unterminated", "\"unterminated",
		"a..b", "a.", "1 2", "x & y", "x | y", "@", "1 = = 2",
		"not", "x !", "'bad\\q'",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		} else {
			var se *SyntaxError
			if !errorsAs(err, &se) {
				t.Errorf("Parse(%q) error is %T, want *SyntaxError", src, err)
			}
		}
	}
}

// errorsAs is a tiny local clone to avoid importing errors just for one call.
func errorsAs(err error, target **SyntaxError) bool {
	for err != nil {
		if se, ok := err.(*SyntaxError); ok {
			*target = se
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestEvalErrors(t *testing.T) {
	e := env("s", "abc", "n", 3, "b", true)
	bad := []string{
		"missing",             // undefined variable
		"nosuchfn(1)",         // undefined function
		"s + n",               // mixed + with non-numbers
		"s < n",               // incomparable kinds
		"not n",               // not on number
		"n and b",             // and on number
		"n or b",              // or with number on lhs
		"-s",                  // negate string
		"1 / 0",               // division by zero
		"1 % 0",               // modulo by zero
		"1.5 % 2",             // non-integer modulo
		"abs('x')",            // wrong arg type
		"abs(1, 2)",           // wrong arity
		"len(1)",              // len of number
		"if(1, 2, 3)",         // if cond not bool
		"number('not-a-num')", // unconvertible
		"min()",               // empty variadic
		"contains('a')",       // arity
	}
	for _, src := range bad {
		if _, err := Eval(src, e); err == nil {
			t.Errorf("Eval(%q) succeeded, want error", src)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	calls := 0
	e := NewMapEnv().Bind("t", Bool(true)).Bind("f", Bool(false))
	e.BindFunc("boom", func([]Value) (Value, error) {
		calls++
		return Value{}, fmt.Errorf("must not be called")
	})
	if ok, err := EvalBool("f and boom()", e); err != nil || ok {
		t.Fatalf("f and boom() = %v, %v; want false, nil", ok, err)
	}
	if ok, err := EvalBool("t or boom()", e); err != nil || !ok {
		t.Fatalf("t or boom() = %v, %v; want true, nil", ok, err)
	}
	if calls != 0 {
		t.Fatalf("boom called %d times, want 0", calls)
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"true",
		"price < 200 and not domestic(destination)",
		"near(major_attraction, accommodation)",
		"(a or b) and c",
		"a or (b and c)",
		"x + y * z",
		"(x + y) * z",
		"-x",
		"f()",
		"f(1, 'two', g(3))",
		"a.b.c = 'v'",
		"s != 'it\\'s'",
	}
	e := NewMapEnv()
	for _, src := range srcs {
		n1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		rendered := n1.String()
		n2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-Parse(%q) from %q: %v", rendered, src, err)
		}
		if n1.String() != n2.String() {
			t.Errorf("round trip diverged: %q -> %q -> %q", src, rendered, n2.String())
		}
		_ = e
	}
}

func TestVariablesAndFunctions(t *testing.T) {
	n := MustParse("near(major_attraction, accommodation) and price < budget or f(x)")
	vars := Variables(n)
	wantVars := map[string]bool{"major_attraction": true, "accommodation": true, "price": true, "budget": true, "x": true}
	if len(vars) != len(wantVars) {
		t.Fatalf("Variables = %v, want keys %v", vars, wantVars)
	}
	for _, v := range vars {
		if !wantVars[v] {
			t.Errorf("unexpected variable %q", v)
		}
	}
	fns := Functions(n)
	wantFns := map[string]bool{"near": true, "f": true}
	if len(fns) != len(wantFns) {
		t.Fatalf("Functions = %v, want keys %v", fns, wantFns)
	}
	for _, f := range fns {
		if !wantFns[f] {
			t.Errorf("unexpected function %q", f)
		}
	}
}

func TestChainEnv(t *testing.T) {
	inner := NewMapEnv().Bind("x", Number(1)).Bind("shadow", StringVal("inner"))
	outer := NewMapEnv().Bind("y", Number(2)).Bind("shadow", StringVal("outer"))
	c := ChainEnv{inner, outer}
	v, ok := c.Lookup("x")
	if !ok || v.n != 1 {
		t.Fatalf("Lookup(x) = %v, %v", v, ok)
	}
	v, ok = c.Lookup("y")
	if !ok || v.n != 2 {
		t.Fatalf("Lookup(y) = %v, %v", v, ok)
	}
	v, ok = c.Lookup("shadow")
	if !ok || v.s != "inner" {
		t.Fatalf("Lookup(shadow) = %v, want inner binding", v)
	}
	if _, ok := c.Lookup("absent"); ok {
		t.Fatal("Lookup(absent) found a value")
	}
	if _, ok := c.Func("abs"); !ok {
		t.Fatal("ChainEnv did not resolve builtin through MapEnv")
	}
}

func TestFromText(t *testing.T) {
	cases := []struct {
		in   string
		kind Kind
	}{
		{"true", KindBool},
		{"false", KindBool},
		{"42", KindNumber},
		{"-1.5", KindNumber},
		{"1e9", KindNumber},
		{"hello", KindString},
		{"TRUE", KindString}, // only lowercase spellings are bools
		{"", KindString},
	}
	for _, tc := range cases {
		if got := FromText(tc.in).Kind(); got != tc.kind {
			t.Errorf("FromText(%q).Kind() = %v, want %v", tc.in, got, tc.kind)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if _, err := Bool(true).AsNumber(); err == nil {
		t.Error("AsNumber on bool succeeded")
	}
	if _, err := Number(1).AsString(); err == nil {
		t.Error("AsString on number succeeded")
	}
	if _, err := StringVal("x").AsBool(); err == nil {
		t.Error("AsBool on string succeeded")
	}
	if Bool(true).Text() != "true" || Number(2.5).Text() != "2.5" || StringVal("s").Text() != "s" {
		t.Error("Text() canonical forms wrong")
	}
	if !Number(1).Equal(Number(1)) || Number(1).Equal(Number(2)) || Number(1).Equal(StringVal("1")) {
		t.Error("Equal semantics wrong")
	}
}

// Property: every parsed expression renders to a string that re-parses and
// evaluates to the same value.
func TestQuickRenderEvalEquivalence(t *testing.T) {
	e := env("a", 3, "b", 5, "s", "hello", "flag", true)
	exprs := []string{
		"a + b", "a * b - 2", "a < b", "a = b or flag",
		"contains(s, 'ell') and a + 1 <= b", "not flag or a > 0",
		"if(flag, a, b) + min(a, b)",
	}
	for _, src := range exprs {
		n := MustParse(src)
		v1, err := n.Eval(e)
		if err != nil {
			t.Fatalf("Eval(%q): %v", src, err)
		}
		n2 := MustParse(n.String())
		v2, err := n2.Eval(e)
		if err != nil {
			t.Fatalf("Eval(render(%q)): %v", src, err)
		}
		if !v1.Equal(v2) {
			t.Errorf("%q: value changed after render round trip: %s vs %s", src, v1, v2)
		}
	}
}

// Property: arithmetic in the language matches Go float64 arithmetic.
func TestQuickArithmeticMatchesGo(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		e := NewMapEnv().Bind("a", Number(a)).Bind("b", Number(b))
		v, err := Eval("a + b * 2 - a / 4", e)
		if err != nil {
			return false
		}
		got, err := v.AsNumber()
		if err != nil {
			return false
		}
		want := a + b*2 - a/4
		return got == want || math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: comparison operators form a total order consistent with Go.
func TestQuickComparisonsMatchGo(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		e := NewMapEnv().Bind("a", Number(a)).Bind("b", Number(b))
		checks := []struct {
			src  string
			want bool
		}{
			{"a < b", a < b},
			{"a <= b", a <= b},
			{"a > b", a > b},
			{"a >= b", a >= b},
			{"a = b", a == b},
			{"a != b", a != b},
		}
		for _, c := range checks {
			got, err := EvalBool(c.src, e)
			if err != nil || got != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: lexer never loops forever and tokenizes printable ASCII
// without panicking.
func TestQuickLexerTotal(t *testing.T) {
	f := func(s string) bool {
		// Constrain to printable ASCII to focus on grammar, not UTF-8 noise.
		var sb strings.Builder
		for _, r := range s {
			if r >= ' ' && r < 127 {
				sb.WriteRune(r)
			}
		}
		l := newLexer(sb.String())
		for i := 0; i < len(sb.String())+2; i++ {
			tok, err := l.next()
			if err != nil {
				return true // errors are fine; hangs/panics are not
			}
			if tok.kind == tokEOF {
				return true
			}
		}
		return false // did not terminate within bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("price <")
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	for _, want := range []string{"syntax error", "price <"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

func BenchmarkParseGuard(b *testing.B) {
	src := "not near(major_attraction, accommodation) and price < budget"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalGuard(b *testing.B) {
	n := MustParse("not near(dist) and price < budget")
	e := NewMapEnv().
		Bind("dist", Number(120)).
		Bind("price", Number(80)).
		Bind("budget", Number(100))
	e.BindFunc("near", func(args []Value) (Value, error) {
		d, err := args[0].AsNumber()
		if err != nil {
			return Value{}, err
		}
		return Bool(d < 50), nil
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v, err := n.Eval(e)
		if err != nil || !v.IsTrue() {
			b.Fatalf("eval = %v, %v", v, err)
		}
	}
}
