package expr

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Func is a host function callable from expressions.
type Func func(args []Value) (Value, error)

// Env supplies variable bindings and functions during evaluation.
type Env interface {
	// Lookup resolves a (possibly dotted) variable name.
	Lookup(name string) (Value, bool)
	// Func resolves a function by name.
	Func(name string) (Func, bool)
}

// MapEnv is a simple Env backed by maps. The zero value is usable: it has
// no variables and only the built-in functions.
type MapEnv struct {
	Vars  map[string]Value
	Funcs map[string]Func
}

// NewMapEnv returns an empty environment ready for Bind/BindFunc calls.
func NewMapEnv() *MapEnv {
	return &MapEnv{Vars: map[string]Value{}, Funcs: map[string]Func{}}
}

// Bind sets variable name to v and returns the environment for chaining.
func (e *MapEnv) Bind(name string, v Value) *MapEnv {
	if e.Vars == nil {
		e.Vars = map[string]Value{}
	}
	e.Vars[name] = v
	return e
}

// BindText parses raw into the most specific value kind and binds it.
func (e *MapEnv) BindText(name, raw string) *MapEnv {
	return e.Bind(name, FromText(raw))
}

// BindFunc registers a host function and returns the environment.
func (e *MapEnv) BindFunc(name string, fn Func) *MapEnv {
	if e.Funcs == nil {
		e.Funcs = map[string]Func{}
	}
	e.Funcs[name] = fn
	return e
}

// Lookup implements Env.
func (e *MapEnv) Lookup(name string) (Value, bool) {
	v, ok := e.Vars[name]
	return v, ok
}

// Func implements Env. Built-in functions are consulted when the name is
// not overridden in e.Funcs.
func (e *MapEnv) Func(name string) (Func, bool) {
	if fn, ok := e.Funcs[name]; ok {
		return fn, true
	}
	fn, ok := builtins[name]
	return fn, ok
}

// VarNames returns the bound variable names in sorted order.
func (e *MapEnv) VarNames() []string {
	names := make([]string, 0, len(e.Vars))
	for n := range e.Vars {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ChainEnv resolves against a sequence of environments, first match wins.
// It is the composition glue for the two-layer evaluation setup used by
// the engine: a per-instance TextVars layer chained onto a per-composite
// FuncsEnv layer, so host functions are bound exactly once per composite
// instead of re-registered on every evaluation.
type ChainEnv []Env

// Lookup implements Env.
func (c ChainEnv) Lookup(name string) (Value, bool) {
	for _, e := range c {
		if v, ok := e.Lookup(name); ok {
			return v, true
		}
	}
	return Value{}, false
}

// Func implements Env.
func (c ChainEnv) Func(name string) (Func, bool) {
	for _, e := range c {
		if f, ok := e.Func(name); ok {
			return f, true
		}
	}
	return nil, false
}

// FuncsEnv is an Env layer that resolves only functions: the registered
// ones first, then the built-ins. It holds no variables, so one FuncsEnv
// can be built per composite at deploy time and shared immutably by every
// evaluation of every instance.
type FuncsEnv map[string]Func

// Lookup implements Env; a FuncsEnv binds no variables.
func (FuncsEnv) Lookup(string) (Value, bool) { return Value{}, false }

// Func implements Env, falling back to the built-in functions.
func (f FuncsEnv) Func(name string) (Func, bool) {
	if fn, ok := f[name]; ok {
		return fn, true
	}
	fn, ok := builtins[name]
	return fn, ok
}

// TextVars is an Env layer over a raw text variable bag (the shape control
// messages carry). Values are converted with FromText lazily, on lookup,
// so an evaluation touching two of fifty variables converts two — the
// eager alternative materializes the whole bag per evaluation.
type TextVars map[string]string

// Lookup implements Env.
func (t TextVars) Lookup(name string) (Value, bool) {
	raw, ok := t[name]
	if !ok {
		return Value{}, false
	}
	return FromText(raw), true
}

// Func implements Env; a TextVars layer provides no functions.
func (TextVars) Func(string) (Func, bool) { return nil, false }

// builtins are functions available in every MapEnv.
var builtins = map[string]Func{
	"abs":      numeric1("abs", math.Abs),
	"floor":    numeric1("floor", math.Floor),
	"ceil":     numeric1("ceil", math.Ceil),
	"round":    numeric1("round", math.Round),
	"sqrt":     numeric1("sqrt", math.Sqrt),
	"min":      variadicNum("min", math.Min),
	"max":      variadicNum("max", math.Max),
	"len":      builtinLen,
	"contains": builtinContains,
	"prefix":   builtinPrefix,
	"suffix":   builtinSuffix,
	"lower":    string1("lower", strings.ToLower),
	"upper":    string1("upper", strings.ToUpper),
	"trim":     string1("trim", strings.TrimSpace),
	"defined":  nil, // replaced below; needs env, handled specially via closure-free trick
	"if":       builtinIf,
	"number":   builtinNumber,
	"string":   builtinString,
}

func init() {
	// "defined" cannot see the env through the Func signature; it is
	// implemented as a one-argument identity on purpose: callers that need
	// existence checks should bind a bool. Remove the placeholder so a
	// missing function error is raised instead of a nil-call panic.
	delete(builtins, "defined")
}

func numeric1(name string, f func(float64) float64) Func {
	return func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Value{}, fmt.Errorf("%s expects 1 argument, got %d", name, len(args))
		}
		n, err := args[0].AsNumber()
		if err != nil {
			return Value{}, err
		}
		return Number(f(n)), nil
	}
}

func string1(name string, f func(string) string) Func {
	return func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Value{}, fmt.Errorf("%s expects 1 argument, got %d", name, len(args))
		}
		s, err := args[0].AsString()
		if err != nil {
			return Value{}, err
		}
		return StringVal(f(s)), nil
	}
}

func variadicNum(name string, f func(float64, float64) float64) Func {
	return func(args []Value) (Value, error) {
		if len(args) == 0 {
			return Value{}, fmt.Errorf("%s expects at least 1 argument", name)
		}
		acc, err := args[0].AsNumber()
		if err != nil {
			return Value{}, err
		}
		for _, a := range args[1:] {
			n, err := a.AsNumber()
			if err != nil {
				return Value{}, err
			}
			acc = f(acc, n)
		}
		return Number(acc), nil
	}
}

func builtinLen(args []Value) (Value, error) {
	if len(args) != 1 {
		return Value{}, fmt.Errorf("len expects 1 argument, got %d", len(args))
	}
	s, err := args[0].AsString()
	if err != nil {
		return Value{}, err
	}
	return Number(float64(len(s))), nil
}

func builtinContains(args []Value) (Value, error) {
	if len(args) != 2 {
		return Value{}, fmt.Errorf("contains expects 2 arguments, got %d", len(args))
	}
	s, err := args[0].AsString()
	if err != nil {
		return Value{}, err
	}
	sub, err := args[1].AsString()
	if err != nil {
		return Value{}, err
	}
	return Bool(strings.Contains(s, sub)), nil
}

func builtinPrefix(args []Value) (Value, error) {
	if len(args) != 2 {
		return Value{}, fmt.Errorf("prefix expects 2 arguments, got %d", len(args))
	}
	s, err := args[0].AsString()
	if err != nil {
		return Value{}, err
	}
	pre, err := args[1].AsString()
	if err != nil {
		return Value{}, err
	}
	return Bool(strings.HasPrefix(s, pre)), nil
}

func builtinSuffix(args []Value) (Value, error) {
	if len(args) != 2 {
		return Value{}, fmt.Errorf("suffix expects 2 arguments, got %d", len(args))
	}
	s, err := args[0].AsString()
	if err != nil {
		return Value{}, err
	}
	suf, err := args[1].AsString()
	if err != nil {
		return Value{}, err
	}
	return Bool(strings.HasSuffix(s, suf)), nil
}

// builtinIf is if(cond, then, else). Both branches are already evaluated
// by the time the function is applied; the language is side-effect free,
// so this only costs evaluation time, never correctness.
func builtinIf(args []Value) (Value, error) {
	if len(args) != 3 {
		return Value{}, fmt.Errorf("if expects 3 arguments, got %d", len(args))
	}
	c, err := args[0].AsBool()
	if err != nil {
		return Value{}, err
	}
	if c {
		return args[1], nil
	}
	return args[2], nil
}

func builtinNumber(args []Value) (Value, error) {
	if len(args) != 1 {
		return Value{}, fmt.Errorf("number expects 1 argument, got %d", len(args))
	}
	v := FromText(args[0].Text())
	if v.Kind() != KindNumber {
		return Value{}, fmt.Errorf("number: cannot convert %s", args[0])
	}
	return v, nil
}

func builtinString(args []Value) (Value, error) {
	if len(args) != 1 {
		return Value{}, fmt.Errorf("string expects 1 argument, got %d", len(args))
	}
	return StringVal(args[0].Text()), nil
}
