package expr

import "fmt"

// Program is a compiled expression: the reusable product of parsing one
// guard/action source string. A Program is immutable after Compile and
// safe for concurrent evaluation against different environments, so a
// deployer can compile every guard of a composite once and share the
// handles across all execution instances — the runtime then never touches
// the lexer or parser again.
type Program struct {
	root Node
	src  string
}

// Compile parses src into a reusable Program. It is the deploy-time half
// of the split that Eval performs in one step; callers on hot paths should
// compile once and call Program.Eval/EvalBool per evaluation.
func Compile(src string) (*Program, error) {
	n, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return &Program{root: n, src: src}, nil
}

// MustCompile is like Compile but panics on error. Intended for tests and
// package-level expression constants.
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Source returns the source text the program was compiled from.
func (p *Program) Source() string { return p.src }

// Node exposes the parsed expression tree (for Variables/Functions
// analysis and String rendering).
func (p *Program) Node() Node { return p.root }

// ConstBool reports whether the program is a boolean constant, and its
// value. Empty guards compile to the constant true, so routing layers can
// skip storing (and evaluating) them entirely.
func (p *Program) ConstBool() (value, ok bool) {
	lit, isLit := p.root.(*litNode)
	if !isLit || lit.v.Kind() != KindBool {
		return false, false
	}
	return lit.v.b, true
}

// Eval evaluates the compiled program against env.
func (p *Program) Eval(env Env) (Value, error) {
	return p.root.Eval(env)
}

// EvalBool evaluates the program, requiring a boolean result.
func (p *Program) EvalBool(env Env) (bool, error) {
	v, err := p.root.Eval(env)
	if err != nil {
		return false, err
	}
	b, err := v.AsBool()
	if err != nil {
		return false, fmt.Errorf("expr: %q did not evaluate to a bool: %w", p.src, err)
	}
	return b, nil
}
