package expr

import "fmt"

// tokenKind identifies the lexical class of a token.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNumber
	tokString
	tokIdent   // identifier or dotted path: a, a.b.c
	tokAnd     // "and" or "&&"
	tokOr      // "or" or "||"
	tokNot     // "not" or "!"
	tokTrue    // "true"
	tokFalse   // "false"
	tokEq      // "=" or "=="
	tokNeq     // "!=" or "<>"
	tokLt      // "<"
	tokLte     // "<="
	tokGt      // ">"
	tokGte     // ">="
	tokPlus    // "+"
	tokMinus   // "-"
	tokStar    // "*"
	tokSlash   // "/"
	tokPercent // "%"
	tokLParen  // "("
	tokRParen  // ")"
	tokComma   // ","
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokIdent:
		return "identifier"
	case tokAnd:
		return "'and'"
	case tokOr:
		return "'or'"
	case tokNot:
		return "'not'"
	case tokTrue:
		return "'true'"
	case tokFalse:
		return "'false'"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLte:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGte:
		return "'>='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokPercent:
		return "'%'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is a lexeme with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokNumber:
		return fmt.Sprintf("%g", t.num)
	case tokString:
		return fmt.Sprintf("%q", t.text)
	case tokIdent:
		return t.text
	default:
		return t.kind.String()
	}
}
