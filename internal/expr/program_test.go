package expr

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"
)

// programCorpus is every expression source exercised by the package's
// other tests (the table corpus of expr_test.go), plus guard shapes from
// the travel workload. The compiled-plan contract is that Compile+Eval is
// observationally identical to one-shot Eval over all of them.
var programCorpus = []string{
	// TestEvalBoolTable corpus.
	"true", "false", "", "   ",
	"not false", "!false", "not not true",
	"true and true", "true && false", "false or true", "false || false",
	"vip", "not vip or vip",
	"price < 200", "price <= 120.5", "price > 120.5", "price >= 121",
	"stars = 4", "stars == 4", "stars != 5", "stars <> 5",
	"destination = 'sydney'", "destination == \"sydney\"",
	"destination != 'tokyo'", "destination < 'tokyo'",
	"domestic(destination)", "not domestic('tokyo')",
	"near(trip.distance)", "not near(trip.distance + 100)",
	"price * 2 > 240", "(price + 79.5) / 2 = 100", "10 % 3 = 1",
	"-price < 0", "min(stars, 10) = 4", "max(1, 2, 3) = 3",
	"abs(-3) = 3", "floor(1.9) = 1", "ceil(1.1) = 2", "round(1.5) = 2",
	"sqrt(16) = 4", "len(destination) = 6",
	"contains(destination, 'syd')", "prefix(destination, 'syd')",
	"suffix(destination, 'ney')",
	"lower('ABC') = 'abc'", "upper('abc') = 'ABC'", "trim('  x ') = 'x'",
	"if(vip, 1, 2) = 1", "number('42') = 42", "string(42) = '42'",
	"'a' + 'b' = 'ab'",
	"price < 100 or stars >= 4 and vip",
	"(price < 100 or stars >= 4) and vip",
	// TestEvalNumbers corpus (numeric results).
	"price + stars", "price - stars", "price * stars", "price / stars",
	"stars % 3", "-price + stars", "price + stars * 3", "(price + stars) * 3",
	"2 * -3", "1e3 + 1", "0.5 * 4",
	// TestEvalErrors corpus (must error identically on both paths).
	"missing", "nosuchfn(1)", "destination + stars", "destination < stars",
	"not stars", "stars and vip", "stars or vip", "-destination",
	"1 / 0", "1 % 0", "1.5 % 2", "abs('x')", "abs(1, 2)", "len(1)",
	"if(1, 2, 3)", "number('not-a-num')", "min()", "contains('a')",
}

func programEnv() *MapEnv {
	e := env(
		"destination", "sydney",
		"price", 120.5,
		"stars", 4,
		"vip", true,
		"trip.distance", 35.0,
	)
	e.BindFunc("domestic", func(args []Value) (Value, error) {
		s, err := args[0].AsString()
		if err != nil {
			return Value{}, err
		}
		return Bool(s == "sydney" || s == "melbourne"), nil
	})
	e.BindFunc("near", func(args []Value) (Value, error) {
		a, err := args[0].AsNumber()
		if err != nil {
			return Value{}, err
		}
		return Bool(a < 50), nil
	})
	return e
}

// assertEquivalent checks Compile(src)+Program.Eval against one-shot
// Eval(src): identical values, identical error texts.
func assertEquivalent(t *testing.T, src string, e Env) {
	t.Helper()
	oneShot, oneErr := Eval(src, e)
	prog, compErr := Compile(src)
	if compErr != nil {
		if oneErr == nil {
			t.Errorf("Compile(%q) failed (%v) but Eval succeeded", src, compErr)
		} else if compErr.Error() != oneErr.Error() {
			t.Errorf("Compile(%q) error %q != Eval error %q", src, compErr, oneErr)
		}
		return
	}
	got, gotErr := prog.Eval(e)
	switch {
	case (gotErr == nil) != (oneErr == nil):
		t.Errorf("Program(%q).Eval err = %v, Eval err = %v", src, gotErr, oneErr)
	case gotErr != nil:
		if gotErr.Error() != oneErr.Error() {
			t.Errorf("Program(%q).Eval error %q != Eval error %q", src, gotErr, oneErr)
		}
	case !got.Equal(oneShot):
		t.Errorf("Program(%q).Eval = %s, Eval = %s", src, got, oneShot)
	}
	// EvalBool must agree with the package-level helper too.
	wantB, wantBErr := EvalBool(src, e)
	gotB, gotBErr := prog.EvalBool(e)
	if (gotBErr == nil) != (wantBErr == nil) || gotB != wantB {
		t.Errorf("Program(%q).EvalBool = (%v, %v), EvalBool = (%v, %v)",
			src, gotB, gotBErr, wantB, wantBErr)
	}
}

// TestProgramEquivalenceCorpus: compiled evaluation is observationally
// identical to parse-per-eval over the full corpus.
func TestProgramEquivalenceCorpus(t *testing.T) {
	e := programEnv()
	for _, src := range programCorpus {
		assertEquivalent(t, src, e)
	}
}

// TestProgramEquivalenceTwoLayerEnv: the deploy-time two-layer environment
// (lazy TextVars chained onto a shared FuncsEnv) computes the same results
// as the eager per-eval MapEnv the engine used to rebuild.
func TestProgramEquivalenceTwoLayerEnv(t *testing.T) {
	vars := map[string]string{
		"destination":   "sydney",
		"price":         "120.5",
		"stars":         "4",
		"vip":           "true",
		"trip.distance": "35",
	}
	funcs := FuncsEnv{
		"domestic": func(args []Value) (Value, error) {
			s, err := args[0].AsString()
			if err != nil {
				return Value{}, err
			}
			return Bool(s == "sydney" || s == "melbourne"), nil
		},
		"near": func(args []Value) (Value, error) {
			a, err := args[0].AsNumber()
			if err != nil {
				return Value{}, err
			}
			return Bool(a < 50), nil
		},
	}
	layered := ChainEnv{TextVars(vars), funcs}

	eager := NewMapEnv()
	for k, v := range vars {
		eager.BindText(k, v)
	}
	for name, fn := range funcs {
		eager.BindFunc(name, fn)
	}

	for _, src := range programCorpus {
		prog, err := Compile(src)
		if err != nil {
			continue // parse errors covered by the corpus test
		}
		v1, err1 := prog.Eval(layered)
		v2, err2 := prog.Eval(eager)
		if (err1 == nil) != (err2 == nil) {
			t.Errorf("%q: layered err = %v, eager err = %v", src, err1, err2)
			continue
		}
		if err1 == nil && !v1.Equal(v2) {
			t.Errorf("%q: layered = %s, eager = %s", src, v1, v2)
		}
	}
}

// randExpr generates a random expression source from the guard grammar.
// Some generated expressions are type-incorrect on purpose: the property
// under test is equivalence, including equivalence of failures.
func randExpr(r *rand.Rand, depth int) string {
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return strconv.FormatFloat(float64(r.Intn(200))/2, 'g', -1, 64)
		case 1:
			return []string{"'sydney'", "'tokyo'", "'x'"}[r.Intn(3)]
		case 2:
			return []string{"true", "false"}[r.Intn(2)]
		default:
			return []string{"price", "stars", "vip", "destination"}[r.Intn(4)]
		}
	}
	switch r.Intn(8) {
	case 0:
		op := []string{"+", "-", "*", "/", "%"}[r.Intn(5)]
		return fmt.Sprintf("(%s %s %s)", randExpr(r, depth-1), op, randExpr(r, depth-1))
	case 1:
		op := []string{"=", "!=", "<", "<=", ">", ">="}[r.Intn(6)]
		return fmt.Sprintf("(%s %s %s)", randExpr(r, depth-1), op, randExpr(r, depth-1))
	case 2:
		op := []string{"and", "or"}[r.Intn(2)]
		return fmt.Sprintf("(%s %s %s)", randExpr(r, depth-1), op, randExpr(r, depth-1))
	case 3:
		return "not " + randExpr(r, depth-1)
	case 4:
		return "-" + randExpr(r, depth-1)
	case 5:
		fn := []string{"abs", "min", "max", "len", "lower", "string"}[r.Intn(6)]
		return fmt.Sprintf("%s(%s)", fn, randExpr(r, depth-1))
	case 6:
		return fmt.Sprintf("if(%s, %s, %s)", randExpr(r, depth-1), randExpr(r, depth-1), randExpr(r, depth-1))
	default:
		return randExpr(r, depth-1)
	}
}

// TestProgramEquivalenceRandomized: 2000 randomly generated expressions
// evaluate identically through both paths.
func TestProgramEquivalenceRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(20260726))
	e := programEnv()
	for i := 0; i < 2000; i++ {
		src := randExpr(r, 1+r.Intn(4))
		assertEquivalent(t, src, e)
	}
}

// TestProgramConstBool: empty and constant guards are recognized so
// routing compilation can elide them.
func TestProgramConstBool(t *testing.T) {
	cases := []struct {
		src     string
		val, ok bool
	}{
		{"", true, true},
		{"   ", true, true},
		{"true", true, true},
		{"false", false, true},
		{"1 = 1", false, false}, // not folded; still a binNode
		{"price > 0", false, false},
	}
	for _, tc := range cases {
		p := MustCompile(tc.src)
		v, ok := p.ConstBool()
		if v != tc.val || ok != tc.ok {
			t.Errorf("ConstBool(%q) = (%v, %v), want (%v, %v)", tc.src, v, ok, tc.val, tc.ok)
		}
	}
}

func BenchmarkCompiledEvalGuard(b *testing.B) {
	p := MustCompile("not near(dist) and price < budget")
	funcs := FuncsEnv{
		"near": func(args []Value) (Value, error) {
			d, err := args[0].AsNumber()
			if err != nil {
				return Value{}, err
			}
			return Bool(d < 50), nil
		},
	}
	vars := TextVars{"dist": "120", "price": "80", "budget": "100"}
	env := ChainEnv{vars, funcs}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := p.EvalBool(env)
		if err != nil || !ok {
			b.Fatalf("eval = %v, %v", ok, err)
		}
	}
}
