// Package core assembles the SELF-SERV platform: a service manager
// (registry of providers + deployer) over a pool of hosts executing
// composite services peer-to-peer. It is the top-level API a downstream
// user programs against; the examples/ directory and the cmd/ tools are
// all thin layers over this package.
//
// Typical use:
//
//	p := core.New(core.Options{})
//	defer p.Close()
//	h, _ := p.AddHost("host-1")
//	p.RegisterService(h, myProvider)
//	comp, _ := p.Deploy(myStatechart)
//	out, _ := comp.Execute(ctx, inputs)
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"selfserv/internal/deployer"
	"selfserv/internal/engine"
	"selfserv/internal/expr"
	"selfserv/internal/journal"
	"selfserv/internal/limits"
	"selfserv/internal/placement"
	"selfserv/internal/routing"
	"selfserv/internal/service"
	"selfserv/internal/statechart"
	"selfserv/internal/transport"
)

// ErrClosed reports a Platform method called after Close. A closed
// platform stays closed: hosts added or composites deployed afterwards
// would leak listeners that nothing will ever shut down.
var ErrClosed = errors.New("core: platform is closed")

// Options configure a Platform.
type Options struct {
	// Network carries all control messages. Nil defaults to an in-memory
	// network (single-process deployments, tests, benchmarks); pass
	// transport.NewTCP() for a distributed deployment.
	Network transport.Network
	// Flow tunes transport flow control (bounded per-destination write
	// queues, full-queue policy, send deadline) and cross-round batching
	// (FlushDelay/MaxBatchBytes) for the DEFAULT network built when
	// Network is nil. A caller-supplied Network carries its own flow
	// configuration and ignores this field.
	Flow transport.FlowOptions
	// Funcs are guard functions available to every condition evaluation
	// (e.g. the travel scenario's domestic/near).
	Funcs map[string]expr.Func
	// HostOptions tune coordinator hosts.
	HostOptions engine.HostOptions
	// Limits, when set, applies per-tenant admission control at every
	// entry point of the platform: composite executions (wrapper
	// admission) and remote invocations served by hosts. Requests tag
	// their tenant with the engine.TenantVar input variable; untagged
	// requests share the anonymous bucket. Nil admits everything.
	Limits *limits.Limiter
	// Placement configures tenant-aware replica routing (shuffle-shard
	// width, dedicated cells) for services registered on multiple hosts.
	// The zero value routes purely by instance hash over all replicas.
	Placement placement.Policy
	// DrainTimeout bounds how long a replaced deployment may keep
	// finishing its in-flight instances after a redeploy before the old
	// wrapper is force-closed (failing the stragglers loudly — counted
	// in Wrapper.Abandoned, never silently dropped). Zero means 30s.
	DrainTimeout time.Duration
	// Durability configures the write-ahead journal behind durable
	// instances (docs/durability.md): every coordinator and wrapper on
	// this platform journals its commit points, cap-hit eviction becomes
	// passivation, and Recover can rebuild in-flight instances after a
	// crash. An empty Dir disables durability entirely (the default:
	// everything stays in RAM, as before). A journal that fails to open
	// surfaces from DurabilityError and Recover; the platform still runs,
	// journal-less, so a bad disk degrades durability, not availability.
	Durability journal.Options
}

// Platform is a running SELF-SERV instance.
type Platform struct {
	net        transport.Network
	ownsNet    bool
	registry   *service.Registry
	dir        *engine.Directory
	funcs      engine.Funcs
	hostOpts   engine.HostOptions
	limits     *limits.Limiter
	drainAfter time.Duration
	jnl        *journal.Journal // nil when durability is off or the open failed
	durErr     error            // why the journal is nil despite Durability.Dir being set
	// drains lets tests and Close wait for retirement goroutines
	// (a WaitGroup synchronizes itself; it is not guarded by mu).
	drains sync.WaitGroup

	mu         sync.Mutex // lockorder:platform — guards everything below; never held across engine calls that take instance locks
	closed     bool
	hosts      []*engine.Host
	placement  deployer.Placement
	composites map[string]*Composite
	// versions is the per-composite plan-version allocator: Deploy
	// stamps each (re)deploy of a name with the next number, starting at
	// 1 (0 stays the unversioned namespace engine-wide).
	versions map[string]uint64
	// draining holds replaced composites whose old version is still
	// finishing in-flight instances; Close force-closes them so a
	// platform shutdown never waits out a drain deadline.
	draining map[*Composite]struct{}
}

// New creates a platform.
func New(opts Options) *Platform {
	net := opts.Network
	owns := false
	if net == nil {
		net = transport.NewInMem(transport.InMemOptions{Flow: opts.Flow})
		owns = true
	}
	hostOpts := opts.HostOptions
	if hostOpts.Funcs == nil {
		hostOpts.Funcs = engine.Funcs(opts.Funcs)
	}
	if hostOpts.Limits == nil {
		hostOpts.Limits = opts.Limits
	}
	dir := engine.NewDirectory()
	dir.SetPolicy(opts.Placement)
	drainAfter := opts.DrainTimeout
	if drainAfter <= 0 {
		drainAfter = 30 * time.Second
	}
	var jnl *journal.Journal
	var durErr error
	if opts.Durability.Dir != "" {
		jnl, durErr = journal.Open(opts.Durability)
		hostOpts.Journal = jnl // nil on failure: hosts run journal-less
	}
	return &Platform{
		net:        net,
		ownsNet:    owns,
		jnl:        jnl,
		durErr:     durErr,
		registry:   service.NewRegistry(),
		dir:        dir,
		funcs:      engine.Funcs(opts.Funcs),
		hostOpts:   hostOpts,
		limits:     opts.Limits,
		drainAfter: drainAfter,
		placement:  deployer.Placement{},
		composites: map[string]*Composite{},
		versions:   map[string]uint64{},
		draining:   map[*Composite]struct{}{},
	}
}

// Registry exposes the platform's pool of services.
func (p *Platform) Registry() *service.Registry { return p.registry }

// Network exposes the underlying transport (for stats in experiments).
func (p *Platform) Network() transport.Network { return p.net }

// Limits exposes the platform's tenant limiter (nil when unlimited).
func (p *Platform) Limits() *limits.Limiter { return p.limits }

// Directory exposes the peer directory (read-mostly).
func (p *Platform) Directory() *engine.Directory { return p.dir }

// Journal exposes the durability journal (nil when durability is off or
// the journal failed to open — see DurabilityError).
func (p *Platform) Journal() *journal.Journal { return p.jnl }

// DurabilityError reports why the platform is running journal-less
// despite Options.Durability.Dir being set (nil otherwise).
func (p *Platform) DurabilityError() error { return p.durErr }

// Recover replays the durability journal into this platform's hosts and
// wrappers, rebuilding the instances a previous process left in flight.
// It must be called AFTER the fleet is reassembled — same hosts, same
// providers (wrapped in service.Idempotent where exactly-once matters),
// and the same composites re-deployed so plan versions line up (a fresh
// platform's version allocator restarts at 1, so re-deploying the same
// charts in the same order reproduces the versions the journal names).
// Rebuilt executions are listed by Composite.Recovered and awaited with
// Composite.WaitRecovered.
func (p *Platform) Recover(ctx context.Context) (engine.RecoveryStats, error) {
	if p.durErr != nil {
		return engine.RecoveryStats{}, fmt.Errorf("core: recover: %w", p.durErr)
	}
	if p.jnl == nil {
		return engine.RecoveryStats{}, fmt.Errorf("core: recover: durability is not configured")
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return engine.RecoveryStats{}, fmt.Errorf("recover: %w", ErrClosed)
	}
	hosts := append([]*engine.Host(nil), p.hosts...)
	wrappers := make([]*engine.Wrapper, 0, len(p.composites))
	for _, c := range p.composites {
		wrappers = append(wrappers, c.wrapper)
	}
	p.mu.Unlock()
	return engine.Recover(ctx, p.jnl, hosts, wrappers)
}

// DurabilityStats aggregates the fleet's durable-instance counters: the
// hosts' eviction/passivation/rehydration counts and the journal's own
// append/sync/compaction figures.
type DurabilityStats struct {
	Evicted    uint64
	Passivated uint64
	Rehydrated uint64
	Journal    journal.Stats
}

// DurabilityStats reports the platform's durable-instance counters
// (all zero when durability is off).
func (p *Platform) DurabilityStats() DurabilityStats {
	p.mu.Lock()
	hosts := append([]*engine.Host(nil), p.hosts...)
	p.mu.Unlock()
	var s DurabilityStats
	for _, h := range hosts {
		s.Evicted += h.Evicted()
		s.Passivated += h.Passivated()
		s.Rehydrated += h.Rehydrated()
	}
	if p.jnl != nil {
		s.Journal = p.jnl.Stats()
	}
	return s
}

// InFlight totals the in-flight execution gauges of every live
// deployment (draining versions included — their instances are still
// running).
func (p *Platform) InFlight() int {
	p.mu.Lock()
	comps := make([]*Composite, 0, len(p.composites)+len(p.draining))
	for _, c := range p.composites {
		comps = append(comps, c)
	}
	for c := range p.draining {
		comps = append(comps, c)
	}
	p.mu.Unlock()
	total := 0
	for _, c := range comps {
		total += c.wrapper.InFlight()
	}
	return total
}

// Abandoned totals the abandoned-instance counters of every live
// deployment.
func (p *Platform) Abandoned() uint64 {
	p.mu.Lock()
	comps := make([]*Composite, 0, len(p.composites)+len(p.draining))
	for _, c := range p.composites {
		comps = append(comps, c)
	}
	for c := range p.draining {
		comps = append(comps, c)
	}
	p.mu.Unlock()
	var total uint64
	for _, c := range comps {
		total += c.wrapper.Abandoned()
	}
	return total
}

// AddHost starts a coordinator host listening on addr ("host-1" style
// names on the in-memory network, "ip:port" on TCP). Returns ErrClosed
// after Close: a host added to a closed platform would never be shut
// down.
func (p *Platform) AddHost(addr string) (*engine.Host, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("add host %q: %w", addr, ErrClosed)
	}
	p.mu.Unlock()
	h, err := engine.NewHost(p.net, addr, p.registry, p.dir, p.hostOpts)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		// Close raced us between the check and the listen: don't leak the
		// host — shut it down and report the platform closed.
		p.mu.Unlock()
		h.Close()
		return nil, fmt.Errorf("add host %q: %w", addr, ErrClosed)
	}
	p.hosts = append(p.hosts, h)
	p.mu.Unlock()
	return h, nil
}

// RegisterService adds a provider (elementary service or community) to
// the pool and places it on host: composite states bound to the
// provider's name will have their coordinators installed there.
// Registering the same provider on additional hosts makes them replicas
// — the state's routing table is installed on every one at deploy time
// and the engine routes each (instance, tenant) key to a deterministic
// replica (docs/scaleout.md). On a closed platform this is a no-op.
func (p *Platform) RegisterService(host *engine.Host, prov service.Provider) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.registry.Register(prov)
	name := prov.Name()
	for _, h := range p.placement[name] {
		if h == deployer.Installer(host) {
			p.mu.Unlock()
			return // already a replica of this service
		}
	}
	p.placement[name] = append(p.placement[name], host)
	p.mu.Unlock()
}

// Composite is a deployed composite service.
type Composite struct {
	platform *Platform
	wrapper  *engine.Wrapper
	plan     *routing.Plan
	compiled *routing.CompiledPlan
	version  uint64
}

// Deploy validates, compiles, and deploys a composite service: routing
// tables are generated, compiled (every guard parsed exactly once), and
// installed on every replica host of the component services, and a
// wrapper is started over the shared compiled plan. Parse errors
// surface here — a successfully deployed composite can never hit one at
// runtime.
//
// Every (re)deploy of a name gets a fresh, monotonically increasing
// plan version, and the swap is DRAIN-AWARE — the paper's dynamic
// evolution, done without data loss:
//
//  1. Version n+1's tables and wrapper are staged next to version n's
//     (separate coordinator keys, separate directory tables); v(n)
//     serves throughout.
//  2. The directory's current pointer flips to n+1: new ExecuteInstance
//     calls start on the new plan, in-flight instances stay pinned to
//     the version they started on and keep executing on v(n)'s
//     coordinators and routes.
//  3. v(n) drains in the background: its wrapper rejects new work
//     (engine.ErrDraining) and waits for the in-flight gauge to reach
//     zero, bounded by Options.DrainTimeout. Stragglers past the
//     deadline are failed LOUDLY (their Execute returns an abandonment
//     error; Wrapper.Abandoned counts them), then v(n)'s coordinators
//     and routes are retired everywhere.
//
// A failed redeploy leaves the previous deployment registered, current,
// and executing — the new version's partial install is rolled back,
// never the live one.
func (p *Platform) Deploy(sc *statechart.Statechart) (*Composite, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("deploy %q: %w", sc.Name, ErrClosed)
	}
	placement := make(deployer.Placement, len(p.placement))
	for k, v := range p.placement {
		placement[k] = append([]deployer.Installer(nil), v...)
	}
	p.versions[sc.Name]++
	version := p.versions[sc.Name]
	p.mu.Unlock()

	dep, err := deployer.DeployVersion(sc, placement, version)
	if err != nil {
		return nil, err
	}
	// MintAddr turns the logical wrapper name into whatever this
	// transport listens on (the name itself in-memory, an ephemeral
	// loopback bind on TCP) — no type-switching on the implementation.
	// The version keeps replacement wrapper addresses distinct from the
	// previous wrapper's, which is still serving at this point.
	addr := p.net.MintAddr(fmt.Sprintf("wrapper/%s/%d", sc.Name, version))
	w, err := engine.NewCompiledWrapper(p.net, addr, p.dir, dep.Compiled, p.funcs)
	if err != nil {
		// The previous deployment (if any) is untouched: its wrapper was
		// never closed, the current pointer never moved, and the new
		// version's coordinators are uninstalled again. Version-scoped
		// rollback — the fix for the old behavior where a failed redeploy
		// tore down live state.
		p.unwindVersion(sc.Name, dep, placement, version)
		return nil, err
	}
	w.SetLimiter(p.limits)
	w.SetJournal(p.jnl)
	comp := &Composite{platform: p, wrapper: w, plan: dep.Plan, compiled: dep.Compiled, version: version}
	p.mu.Lock()
	if p.closed {
		// Close raced the deploy: tear the new wrapper down instead of
		// leaking it into a closed platform.
		p.mu.Unlock()
		w.Close()
		p.unwindVersion(sc.Name, dep, placement, version)
		return nil, fmt.Errorf("deploy %q: %w", sc.Name, ErrClosed)
	}
	prev := p.composites[sc.Name]
	p.composites[sc.Name] = comp
	if prev != nil {
		p.draining[prev] = struct{}{}
	}
	p.mu.Unlock()
	// THE swap: one atomic pointer move makes version the one new
	// instances start on. Everything the new version needs (coordinators,
	// directory tables, wrapper registration) is already in place.
	p.dir.SetCurrent(sc.Name, version)
	// The replaced wrapper starts rejecting admissions BEFORE Deploy
	// returns — no execution can slip onto the old version after the new
	// one is live — and drains in the background; Deploy returns with
	// the new version serving.
	if prev != nil {
		prev.wrapper.StartDrain()
		p.drains.Add(1)
		go p.drainAndRetire(prev)
	}
	return comp, nil
}

// unwindVersion rolls back a staged-but-never-activated plan version:
// its coordinators leave every replica host and its routing tables
// leave the directory. The live version is untouched.
func (p *Platform) unwindVersion(composite string, dep *deployer.Deployment, plc deployer.Placement, version uint64) {
	for id, tbl := range dep.Plan.Tables {
		for _, host := range plc[tbl.Service] {
			host.Uninstall(composite, id, version)
		}
	}
	p.dir.RetireVersion(composite, version)
}

// drainAndRetire waits (bounded by Options.DrainTimeout) for a replaced
// composite's in-flight instances, then force-closes its wrapper and
// retires its plan version from every host and the directory.
func (p *Platform) drainAndRetire(c *Composite) {
	defer p.drains.Done()
	ctx, cancel := context.WithTimeout(context.Background(), p.drainAfter)
	defer cancel()
	c.wrapper.Drain(ctx)
	// Close fails any stragglers loudly (recorded in Wrapper.Abandoned)
	// and is what wakes THEIR Execute callers; a clean drain makes it a
	// plain endpoint close.
	c.wrapper.Close()
	p.mu.Lock()
	delete(p.draining, c)
	hosts := append([]*engine.Host(nil), p.hosts...)
	p.mu.Unlock()
	for _, h := range hosts {
		h.RetireVersion(c.plan.Composite, c.version)
	}
	p.dir.RetireVersion(c.plan.Composite, c.version)
}

// Composite returns a previously deployed composite by name.
func (p *Platform) Composite(name string) (*Composite, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.composites[name]
	return c, ok
}

// Close shuts down wrappers, hosts, and (when owned) the network, and
// marks the platform closed: AddHost and Deploy return ErrClosed
// afterwards, RegisterService becomes a no-op. Idempotent — a second
// Close returns nil without touching anything.
func (p *Platform) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	comps := p.composites
	hosts := p.hosts
	draining := make([]*Composite, 0, len(p.draining))
	for c := range p.draining {
		draining = append(draining, c)
	}
	p.composites = map[string]*Composite{}
	p.hosts = nil
	p.mu.Unlock()
	for _, c := range comps {
		c.wrapper.Close()
	}
	// Force-close wrappers still draining from a redeploy: their
	// in-flight instances fail loudly NOW, which is also what unblocks
	// the background drain goroutines — a shutdown never waits out a
	// drain deadline.
	for _, c := range draining {
		c.wrapper.Close()
	}
	p.drains.Wait()
	for _, h := range hosts {
		h.Close()
	}
	// The journal closes after the hosts: no coordinator can append once
	// its endpoint is gone.
	if p.jnl != nil {
		p.jnl.Close()
	}
	if p.ownsNet {
		return p.net.Close()
	}
	return nil
}

// Crash simulates a process kill for the durability fault suite: every
// wrapper and host endpoint closes immediately — no drain, no
// abandonment records, no completion records — and the journal closes,
// leaving the on-disk state exactly as a killed process would. The
// platform is closed afterwards (Close becomes a no-op). Unlike Close,
// Crash does not wait for background drain goroutines: a crashed
// process waits for nothing.
func (p *Platform) Crash() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	comps := p.composites
	hosts := p.hosts
	draining := make([]*Composite, 0, len(p.draining))
	for c := range p.draining {
		draining = append(draining, c)
	}
	p.composites = map[string]*Composite{}
	p.hosts = nil
	p.mu.Unlock()
	for _, c := range comps {
		c.wrapper.Kill()
	}
	for _, c := range draining {
		c.wrapper.Kill()
	}
	for _, h := range hosts {
		h.Close()
	}
	if p.jnl != nil {
		p.jnl.Close()
	}
	if p.ownsNet {
		p.net.Close()
	}
}

// Execute runs one instance of the composite.
func (c *Composite) Execute(ctx context.Context, inputs map[string]string) (map[string]string, error) {
	return c.wrapper.Execute(ctx, inputs)
}

// RaiseEvent delivers an ECA event to a running instance (see
// engine.Wrapper.RaiseEvent). Use ExecuteInstance-style flows: start the
// execution with a known instance ID, then raise events against it.
func (c *Composite) RaiseEvent(ctx context.Context, instanceID, event string, payload map[string]string) error {
	return c.wrapper.RaiseEvent(ctx, instanceID, event, payload)
}

// ExecuteInstance runs one instance under a caller-chosen ID, so events
// can be raised against it while it runs.
func (c *Composite) ExecuteInstance(ctx context.Context, id string, inputs map[string]string) (map[string]string, error) {
	return c.wrapper.ExecuteInstance(ctx, id, inputs)
}

// Recovered lists the execution IDs Recover rebuilt into this
// deployment's wrapper.
func (c *Composite) Recovered() []string { return c.wrapper.Recovered() }

// WaitRecovered blocks until a recovery-rebuilt execution terminates
// and returns its outputs — the crashed process's Execute, completed by
// this one.
func (c *Composite) WaitRecovered(ctx context.Context, id string) (map[string]string, error) {
	return c.wrapper.WaitRecovered(ctx, id)
}

// Name returns the composite service name.
func (c *Composite) Name() string { return c.plan.Composite }

// Version returns the compiled plan version this deployment serves
// (1 for a composite's first deploy, +1 per redeploy).
func (c *Composite) Version() uint64 { return c.version }

// InFlight reports how many executions are currently inside this
// deployment's wrapper — the gauge a drain-aware swap watches.
func (c *Composite) InFlight() int { return c.wrapper.InFlight() }

// Abandoned reports how many in-flight instances were failed when this
// deployment's wrapper was force-closed (drain deadline or shutdown).
func (c *Composite) Abandoned() uint64 { return c.wrapper.Abandoned() }

// VersionTable describes the live plan versions of one composite: which
// version new instances start on and which older ones are still
// draining. The platform's swap observability surface.
type VersionTable struct {
	Current uint64   `json:"current"`
	Live    []uint64 `json:"live"`
}

// Versions reports composite's version table from the directory.
func (p *Platform) Versions(composite string) VersionTable {
	return VersionTable{
		Current: p.dir.Current(composite),
		Live:    p.dir.Versions(composite),
	}
}

// SwapStats aggregates the hosts' stale-frame counters (re-routed and
// dropped frames during rollouts); both stay zero outside a swap.
func (p *Platform) SwapStats() engine.SwapStats {
	p.mu.Lock()
	hosts := append([]*engine.Host(nil), p.hosts...)
	p.mu.Unlock()
	var total engine.SwapStats
	for _, h := range hosts {
		s := h.SwapStats()
		total.Rerouted += s.Rerouted
		total.DroppedStale += s.DroppedStale
	}
	return total
}

// Plan exposes the declarative routing plan (for inspection and tooling).
func (c *Composite) Plan() *routing.Plan { return c.plan }

// CompiledPlan exposes the compiled execution plan shared by the wrapper
// and (when built) the centralized baseline.
func (c *Composite) CompiledPlan() *routing.CompiledPlan { return c.compiled }

// Wrapper exposes the underlying wrapper (e.g. for its address).
func (c *Composite) Wrapper() *engine.Wrapper { return c.wrapper }

// NewCentralBaseline builds the hub orchestrator for the same compiled
// plan — the comparator of experiments E3/E7. Sharing the compilation
// keeps the comparison apples-to-apples: neither side parses at runtime.
func (c *Composite) NewCentralBaseline(addr string) (*engine.Central, error) {
	return engine.NewCompiledCentral(c.platform.net, addr, c.platform.dir, c.compiled, c.platform.funcs)
}

// AsProvider exposes the composite as a service.Provider with a single
// "execute" operation, so composites can be components of other
// composites (hierarchical composition).
func (c *Composite) AsProvider() service.Provider {
	return &compositeProvider{c: c}
}

type compositeProvider struct {
	c *Composite
}

func (p *compositeProvider) Name() string { return p.c.Name() }

func (p *compositeProvider) Operations() []string { return []string{"execute"} }

func (p *compositeProvider) Invoke(ctx context.Context, req service.Request) (service.Response, error) {
	if req.Operation != "execute" {
		return service.Response{}, fmt.Errorf("%w: %s.%s (composites expose 'execute')",
			service.ErrUnknownOperation, p.c.Name(), req.Operation)
	}
	out, err := p.c.Execute(ctx, req.Params)
	if err != nil {
		return service.Response{}, err
	}
	return service.Response{Outputs: out}, nil
}
