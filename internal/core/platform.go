// Package core assembles the SELF-SERV platform: a service manager
// (registry of providers + deployer) over a pool of hosts executing
// composite services peer-to-peer. It is the top-level API a downstream
// user programs against; the examples/ directory and the cmd/ tools are
// all thin layers over this package.
//
// Typical use:
//
//	p := core.New(core.Options{})
//	defer p.Close()
//	h, _ := p.AddHost("host-1")
//	p.RegisterService(h, myProvider)
//	comp, _ := p.Deploy(myStatechart)
//	out, _ := comp.Execute(ctx, inputs)
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"selfserv/internal/deployer"
	"selfserv/internal/engine"
	"selfserv/internal/expr"
	"selfserv/internal/limits"
	"selfserv/internal/placement"
	"selfserv/internal/routing"
	"selfserv/internal/service"
	"selfserv/internal/statechart"
	"selfserv/internal/transport"
)

// ErrClosed reports a Platform method called after Close. A closed
// platform stays closed: hosts added or composites deployed afterwards
// would leak listeners that nothing will ever shut down.
var ErrClosed = errors.New("core: platform is closed")

// Options configure a Platform.
type Options struct {
	// Network carries all control messages. Nil defaults to an in-memory
	// network (single-process deployments, tests, benchmarks); pass
	// transport.NewTCP() for a distributed deployment.
	Network transport.Network
	// Flow tunes transport flow control (bounded per-destination write
	// queues, full-queue policy, send deadline) and cross-round batching
	// (FlushDelay/MaxBatchBytes) for the DEFAULT network built when
	// Network is nil. A caller-supplied Network carries its own flow
	// configuration and ignores this field.
	Flow transport.FlowOptions
	// Funcs are guard functions available to every condition evaluation
	// (e.g. the travel scenario's domestic/near).
	Funcs map[string]expr.Func
	// HostOptions tune coordinator hosts.
	HostOptions engine.HostOptions
	// Limits, when set, applies per-tenant admission control at every
	// entry point of the platform: composite executions (wrapper
	// admission) and remote invocations served by hosts. Requests tag
	// their tenant with the engine.TenantVar input variable; untagged
	// requests share the anonymous bucket. Nil admits everything.
	Limits *limits.Limiter
	// Placement configures tenant-aware replica routing (shuffle-shard
	// width, dedicated cells) for services registered on multiple hosts.
	// The zero value routes purely by instance hash over all replicas.
	Placement placement.Policy
}

// Platform is a running SELF-SERV instance.
type Platform struct {
	net      transport.Network
	ownsNet  bool
	registry *service.Registry
	dir      *engine.Directory
	funcs    engine.Funcs
	hostOpts engine.HostOptions
	limits   *limits.Limiter

	mu         sync.Mutex // lockorder:platform — guards everything below; never held across engine calls that take instance locks
	closed     bool
	hosts      []*engine.Host
	placement  deployer.Placement
	composites map[string]*Composite
	wrapperSeq int
}

// New creates a platform.
func New(opts Options) *Platform {
	net := opts.Network
	owns := false
	if net == nil {
		net = transport.NewInMem(transport.InMemOptions{Flow: opts.Flow})
		owns = true
	}
	hostOpts := opts.HostOptions
	if hostOpts.Funcs == nil {
		hostOpts.Funcs = engine.Funcs(opts.Funcs)
	}
	if hostOpts.Limits == nil {
		hostOpts.Limits = opts.Limits
	}
	dir := engine.NewDirectory()
	dir.SetPolicy(opts.Placement)
	return &Platform{
		net:        net,
		ownsNet:    owns,
		registry:   service.NewRegistry(),
		dir:        dir,
		funcs:      engine.Funcs(opts.Funcs),
		hostOpts:   hostOpts,
		limits:     opts.Limits,
		placement:  deployer.Placement{},
		composites: map[string]*Composite{},
	}
}

// Registry exposes the platform's pool of services.
func (p *Platform) Registry() *service.Registry { return p.registry }

// Network exposes the underlying transport (for stats in experiments).
func (p *Platform) Network() transport.Network { return p.net }

// Limits exposes the platform's tenant limiter (nil when unlimited).
func (p *Platform) Limits() *limits.Limiter { return p.limits }

// Directory exposes the peer directory (read-mostly).
func (p *Platform) Directory() *engine.Directory { return p.dir }

// AddHost starts a coordinator host listening on addr ("host-1" style
// names on the in-memory network, "ip:port" on TCP). Returns ErrClosed
// after Close: a host added to a closed platform would never be shut
// down.
func (p *Platform) AddHost(addr string) (*engine.Host, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("add host %q: %w", addr, ErrClosed)
	}
	p.mu.Unlock()
	h, err := engine.NewHost(p.net, addr, p.registry, p.dir, p.hostOpts)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		// Close raced us between the check and the listen: don't leak the
		// host — shut it down and report the platform closed.
		p.mu.Unlock()
		h.Close()
		return nil, fmt.Errorf("add host %q: %w", addr, ErrClosed)
	}
	p.hosts = append(p.hosts, h)
	p.mu.Unlock()
	return h, nil
}

// RegisterService adds a provider (elementary service or community) to
// the pool and places it on host: composite states bound to the
// provider's name will have their coordinators installed there.
// Registering the same provider on additional hosts makes them replicas
// — the state's routing table is installed on every one at deploy time
// and the engine routes each (instance, tenant) key to a deterministic
// replica (docs/scaleout.md). On a closed platform this is a no-op.
func (p *Platform) RegisterService(host *engine.Host, prov service.Provider) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.registry.Register(prov)
	name := prov.Name()
	for _, h := range p.placement[name] {
		if h == deployer.Installer(host) {
			p.mu.Unlock()
			return // already a replica of this service
		}
	}
	p.placement[name] = append(p.placement[name], host)
	p.mu.Unlock()
}

// Composite is a deployed composite service.
type Composite struct {
	platform *Platform
	wrapper  *engine.Wrapper
	plan     *routing.Plan
	compiled *routing.CompiledPlan
}

// Deploy validates, compiles, and deploys a composite service: routing
// tables are generated, compiled (every guard parsed exactly once), and
// installed on every replica host of the component services, and a
// wrapper is started over the shared compiled plan. Parse errors
// surface here — a successfully deployed composite can never hit one at
// runtime. Redeploying an existing name replaces its wrapper; the
// previous wrapper is closed only AFTER the replacement is live, so a
// failed redeploy leaves the previous deployment registered, routable,
// and executing — never a closed wrapper in the composites map.
func (p *Platform) Deploy(sc *statechart.Statechart) (*Composite, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("deploy %q: %w", sc.Name, ErrClosed)
	}
	placement := make(deployer.Placement, len(p.placement))
	for k, v := range p.placement {
		placement[k] = append([]deployer.Installer(nil), v...)
	}
	p.wrapperSeq++
	seq := p.wrapperSeq
	p.mu.Unlock()

	dep, err := deployer.Deploy(sc, placement)
	if err != nil {
		return nil, err
	}
	// MintAddr turns the logical wrapper name into whatever this
	// transport listens on (the name itself in-memory, an ephemeral
	// loopback bind on TCP) — no type-switching on the implementation.
	// The sequence number keeps replacement wrapper addresses distinct
	// from the previous wrapper's, which is still serving at this point.
	addr := p.net.MintAddr(fmt.Sprintf("wrapper/%s/%d", sc.Name, seq))
	w, err := engine.NewCompiledWrapper(p.net, addr, p.dir, dep.Compiled, p.funcs)
	if err != nil {
		// The previous deployment (if any) is untouched: its wrapper was
		// never closed and the directory's WrapperID entry still points
		// at it (NewCompiledWrapper publishes its address only after a
		// successful listen).
		return nil, err
	}
	w.SetLimiter(p.limits)
	comp := &Composite{platform: p, wrapper: w, plan: dep.Plan, compiled: dep.Compiled}
	p.mu.Lock()
	if p.closed {
		// Close raced the deploy: tear the new wrapper down instead of
		// leaking it into a closed platform.
		p.mu.Unlock()
		w.Close()
		return nil, fmt.Errorf("deploy %q: %w", sc.Name, ErrClosed)
	}
	prev := p.composites[sc.Name]
	p.composites[sc.Name] = comp
	p.mu.Unlock()
	// Close the replaced wrapper only now that the replacement is both
	// live and registered; in-flight executions on prev fail fast, new
	// ones land on the replacement.
	if prev != nil {
		prev.wrapper.Close()
	}
	return comp, nil
}

// Composite returns a previously deployed composite by name.
func (p *Platform) Composite(name string) (*Composite, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.composites[name]
	return c, ok
}

// Close shuts down wrappers, hosts, and (when owned) the network, and
// marks the platform closed: AddHost and Deploy return ErrClosed
// afterwards, RegisterService becomes a no-op. Idempotent — a second
// Close returns nil without touching anything.
func (p *Platform) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	comps := p.composites
	hosts := p.hosts
	p.composites = map[string]*Composite{}
	p.hosts = nil
	p.mu.Unlock()
	for _, c := range comps {
		c.wrapper.Close()
	}
	for _, h := range hosts {
		h.Close()
	}
	if p.ownsNet {
		return p.net.Close()
	}
	return nil
}

// Execute runs one instance of the composite.
func (c *Composite) Execute(ctx context.Context, inputs map[string]string) (map[string]string, error) {
	return c.wrapper.Execute(ctx, inputs)
}

// RaiseEvent delivers an ECA event to a running instance (see
// engine.Wrapper.RaiseEvent). Use ExecuteInstance-style flows: start the
// execution with a known instance ID, then raise events against it.
func (c *Composite) RaiseEvent(ctx context.Context, instanceID, event string, payload map[string]string) error {
	return c.wrapper.RaiseEvent(ctx, instanceID, event, payload)
}

// ExecuteInstance runs one instance under a caller-chosen ID, so events
// can be raised against it while it runs.
func (c *Composite) ExecuteInstance(ctx context.Context, id string, inputs map[string]string) (map[string]string, error) {
	return c.wrapper.ExecuteInstance(ctx, id, inputs)
}

// Name returns the composite service name.
func (c *Composite) Name() string { return c.plan.Composite }

// Plan exposes the declarative routing plan (for inspection and tooling).
func (c *Composite) Plan() *routing.Plan { return c.plan }

// CompiledPlan exposes the compiled execution plan shared by the wrapper
// and (when built) the centralized baseline.
func (c *Composite) CompiledPlan() *routing.CompiledPlan { return c.compiled }

// Wrapper exposes the underlying wrapper (e.g. for its address).
func (c *Composite) Wrapper() *engine.Wrapper { return c.wrapper }

// NewCentralBaseline builds the hub orchestrator for the same compiled
// plan — the comparator of experiments E3/E7. Sharing the compilation
// keeps the comparison apples-to-apples: neither side parses at runtime.
func (c *Composite) NewCentralBaseline(addr string) (*engine.Central, error) {
	return engine.NewCompiledCentral(c.platform.net, addr, c.platform.dir, c.compiled, c.platform.funcs)
}

// AsProvider exposes the composite as a service.Provider with a single
// "execute" operation, so composites can be components of other
// composites (hierarchical composition).
func (c *Composite) AsProvider() service.Provider {
	return &compositeProvider{c: c}
}

type compositeProvider struct {
	c *Composite
}

func (p *compositeProvider) Name() string { return p.c.Name() }

func (p *compositeProvider) Operations() []string { return []string{"execute"} }

func (p *compositeProvider) Invoke(ctx context.Context, req service.Request) (service.Response, error) {
	if req.Operation != "execute" {
		return service.Response{}, fmt.Errorf("%w: %s.%s (composites expose 'execute')",
			service.ErrUnknownOperation, p.c.Name(), req.Operation)
	}
	out, err := p.c.Execute(ctx, req.Params)
	if err != nil {
		return service.Response{}, err
	}
	return service.Response{Outputs: out}, nil
}
