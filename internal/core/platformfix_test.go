package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"selfserv/internal/message"
	"selfserv/internal/service"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

// failListenNet wraps a Network and fails Listen for addresses matching
// a substring — the lever for making wrapper creation fail mid-Deploy
// while everything else (host listeners, the first wrapper) works.
type failListenNet struct {
	transport.Network
	failSubstr string
}

func (f *failListenNet) Listen(addr string, h transport.Handler) (transport.Endpoint, error) {
	if f.failSubstr != "" && strings.Contains(addr, f.failSubstr) {
		return nil, fmt.Errorf("injected listen failure for %q", addr)
	}
	return f.Network.Listen(addr, h)
}

// TestRedeployFailureKeepsPreviousLive pins the redeploy-atomicity fix:
// when a redeploy fails at wrapper creation, the previous composite
// must stay registered, routable, and executable — not a closed wrapper
// left in the map.
func TestRedeployFailureKeepsPreviousLive(t *testing.T) {
	inner := transport.NewInMem(transport.InMemOptions{})
	net := &failListenNet{Network: inner}
	p := New(Options{Network: net})
	t.Cleanup(func() {
		p.Close()
		inner.Close()
	})

	workload.RegisterChainProviders(p.Registry(), 2, service.SimulatedOptions{})
	h, err := p.AddHost("host-1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		prov, err := p.Registry().Lookup(fmt.Sprintf("svc%d", i))
		if err != nil {
			t.Fatal(err)
		}
		p.RegisterService(h, prov)
	}

	comp1, err := p.Deploy(workload.Chain(2))
	if err != nil {
		t.Fatalf("first deploy: %v", err)
	}
	wrapperAddr, _ := p.Directory().Lookup("Chain2", message.WrapperID)

	// Second wrapper gets sequence 2: make its listen fail.
	net.failSubstr = "wrapper/Chain2/2"
	if _, err := p.Deploy(workload.Chain(2)); err == nil {
		t.Fatal("redeploy with a failing wrapper listen succeeded")
	}

	// The previous composite is still the registered one, its wrapper is
	// still the published one, and it still executes.
	got, ok := p.Composite("Chain2")
	if !ok || got != comp1 {
		t.Fatalf("composites map lost the previous deployment: %v, %v", got, ok)
	}
	if addr, _ := p.Directory().Lookup("Chain2", message.WrapperID); addr != wrapperAddr {
		t.Fatalf("wrapper address changed across failed redeploy: %q -> %q", wrapperAddr, addr)
	}
	out, err := comp1.Execute(context.Background(), map[string]string{"x": "0"})
	if err != nil || out["x"] != "2" {
		t.Fatalf("previous composite no longer executes: %v, %v", out, err)
	}

	// And once the injected fault clears, redeploy succeeds and replaces.
	net.failSubstr = ""
	comp3, err := p.Deploy(workload.Chain(2))
	if err != nil {
		t.Fatalf("redeploy after fault cleared: %v", err)
	}
	if got, _ := p.Composite("Chain2"); got != comp3 {
		t.Fatal("successful redeploy did not replace the composite")
	}
	out, err = comp3.Execute(context.Background(), map[string]string{"x": "0"})
	if err != nil || out["x"] != "2" {
		t.Fatalf("replacement composite: %v, %v", out, err)
	}
}

// TestPlatformUseAfterClose pins the Close contract: AddHost and Deploy
// reject with ErrClosed, RegisterService is a no-op, Close is
// idempotent — no resurrection, no leaked hosts.
func TestPlatformUseAfterClose(t *testing.T) {
	p := New(Options{})
	workload.RegisterChainProviders(p.Registry(), 1, service.SimulatedOptions{})
	h, err := p.AddHost("host-1")
	if err != nil {
		t.Fatal(err)
	}
	prov, err := p.Registry().Lookup("svc1")
	if err != nil {
		t.Fatal(err)
	}
	p.RegisterService(h, prov)
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if _, err := p.AddHost("host-2"); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddHost after Close: err = %v, want ErrClosed", err)
	}
	if _, err := p.Deploy(workload.Chain(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Deploy after Close: err = %v, want ErrClosed", err)
	}
	p.RegisterService(h, prov) // must not panic or resurrect anything
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
