package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"selfserv/internal/service"
	"selfserv/internal/statechart"
	"selfserv/internal/workload"
)

func travelPlatform(t testing.TB) (*Platform, *Composite) {
	t.Helper()
	p := New(Options{Funcs: workload.TravelGuards()})
	t.Cleanup(func() { p.Close() })

	// One host per service, as in the paper's topology.
	sc := workload.Travel()
	if _, err := workload.RegisterTravelProviders(p.Registry(), service.SimulatedOptions{}); err != nil {
		t.Fatal(err)
	}
	for i, svc := range sc.Services() {
		h, err := p.AddHost(fmt.Sprintf("host-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		prov, err := p.Registry().Lookup(svc)
		if err != nil {
			t.Fatal(err)
		}
		p.RegisterService(h, prov)
	}
	comp, err := p.Deploy(sc)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return p, comp
}

func TestPlatformTravelEndToEnd(t *testing.T) {
	_, comp := travelPlatform(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out, err := comp.Execute(ctx, workload.TravelRequest("alice", "melbourne", true))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if out["flightRef"] != "QF-ALI-MEL" || out["carRef"] != "CAR-ALI" {
		t.Fatalf("outputs = %v", out)
	}
	if got, ok := comp.Plan().Tables["CR"]; !ok || got.Service != "CarRental" {
		t.Fatal("plan not exposed")
	}
}

func TestPlatformCompositeLookupAndRedeploy(t *testing.T) {
	p, comp := travelPlatform(t)
	got, ok := p.Composite("TravelPlanner")
	if !ok || got != comp {
		t.Fatal("Composite lookup failed")
	}
	if _, ok := p.Composite("Ghost"); ok {
		t.Fatal("found a ghost composite")
	}
	again, err := p.Deploy(workload.Travel())
	if err != nil {
		t.Fatalf("redeploy: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := again.Execute(ctx, workload.TravelRequest("bob", "sydney", true)); err != nil {
		t.Fatalf("Execute after redeploy: %v", err)
	}
}

func TestPlatformCentralBaseline(t *testing.T) {
	_, comp := travelPlatform(t)
	central, err := comp.NewCentralBaseline("central")
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out, err := central.Execute(ctx, workload.TravelRequest("carol", "sydney", true))
	if err != nil {
		t.Fatalf("central Execute: %v", err)
	}
	if out["flightRef"] != "QF-CAR-SYD" {
		t.Fatalf("outputs = %v", out)
	}
}

func TestHierarchicalComposition(t *testing.T) {
	// Deploy the travel composite, then use it as a component of an outer
	// composite: pre-check -> travel -> receipt.
	p, comp := travelPlatform(t)

	outerHost, err := p.AddHost("outer-host")
	if err != nil {
		t.Fatal(err)
	}
	p.RegisterService(outerHost, comp.AsProvider())

	precheck := service.NewSimulated("PreCheck", service.SimulatedOptions{})
	precheck.Handle("check", func(_ context.Context, in map[string]string) (map[string]string, error) {
		if in["customer"] == "" {
			return nil, fmt.Errorf("no customer")
		}
		return map[string]string{"approved": "true"}, nil
	})
	p.RegisterService(outerHost, precheck)

	receipt := service.NewSimulated("Receipt", service.SimulatedOptions{})
	receipt.Handle("issue", func(_ context.Context, in map[string]string) (map[string]string, error) {
		return map[string]string{"receipt": "RCPT for " + in["flight"]}, nil
	})
	p.RegisterService(outerHost, receipt)

	outer := &statechart.Statechart{
		Name: "ManagedTravel",
		Inputs: []statechart.Param{
			{Name: "customer"}, {Name: "destination"}, {Name: "departDate"}, {Name: "returnDate"},
		},
		Outputs: []statechart.Param{{Name: "receipt"}},
		Root: &statechart.State{
			ID: "root", Kind: statechart.KindCompound,
			Children: []*statechart.State{
				{ID: "i", Kind: statechart.KindInitial},
				{ID: "pre", Kind: statechart.KindBasic, Service: "PreCheck", Operation: "check",
					Inputs:  []statechart.Binding{{Param: "customer", Var: "customer"}},
					Outputs: []statechart.Binding{{Param: "approved", Var: "approved"}}},
				{ID: "trip", Kind: statechart.KindBasic, Service: "TravelPlanner", Operation: "execute",
					Inputs: []statechart.Binding{
						{Param: "customer", Var: "customer"},
						{Param: "destination", Var: "destination"},
						{Param: "departDate", Var: "departDate"},
						{Param: "returnDate", Var: "returnDate"},
					},
					Outputs: []statechart.Binding{{Param: "flightRef", Var: "flightRef"}}},
				{ID: "rcpt", Kind: statechart.KindBasic, Service: "Receipt", Operation: "issue",
					Inputs:  []statechart.Binding{{Param: "flight", Var: "flightRef"}},
					Outputs: []statechart.Binding{{Param: "receipt", Var: "receipt"}}},
				{ID: "f", Kind: statechart.KindFinal},
			},
			Transitions: []statechart.Transition{
				{From: "i", To: "pre"},
				{From: "pre", To: "trip", Condition: "approved"},
				{From: "trip", To: "rcpt"},
				{From: "rcpt", To: "f"},
			},
		},
	}
	outerComp, err := p.Deploy(outer)
	if err != nil {
		t.Fatalf("Deploy outer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	out, err := outerComp.Execute(ctx, workload.TravelRequest("hank", "sydney", true))
	if err != nil {
		t.Fatalf("Execute outer: %v", err)
	}
	if !strings.Contains(out["receipt"], "QF-HAN-SYD") {
		t.Fatalf("receipt = %q", out["receipt"])
	}
}

func TestCompositeProviderRejectsOtherOps(t *testing.T) {
	_, comp := travelPlatform(t)
	prov := comp.AsProvider()
	if prov.Name() != "TravelPlanner" || len(prov.Operations()) != 1 {
		t.Fatalf("provider = %v %v", prov.Name(), prov.Operations())
	}
	_, err := prov.Invoke(context.Background(), service.Request{Operation: "other"})
	if err == nil {
		t.Fatal("non-execute operation accepted")
	}
}

func TestDeployFailsWithoutPlacement(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	if _, err := p.Deploy(workload.Chain(1)); err == nil {
		t.Fatal("Deploy without placement succeeded")
	}
}
