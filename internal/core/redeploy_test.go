package core_test

// The zero-downtime redeploy contract suite: a composite redeployed
// while instances are mid-flight must finish those instances on the
// plan version they started on, run everything admitted after the swap
// on the new version, and never stall or duplicate an invocation —
// over BOTH transports. The drain deadline is the loud failure path:
// instances that outlive it are failed with ErrInstanceFault and
// counted, never silently dropped.

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"

	"selfserv/internal/core"
	"selfserv/internal/engine"
	"selfserv/internal/service"
	"selfserv/internal/statechart"
	"selfserv/internal/workload"
)

// chainV2 is the redeployed flavor of workload.Chain(n): identical
// services and flow, but the final transition adds 100 to x. The
// offset is the version marker — an instance that finishes with
// x == n ran entirely on v1, one with x == n+100 on v2; any cross-
// version misroute of the last hop shows up in the output.
func chainV2(n int) *statechart.Statechart {
	sc := workload.Chain(n)
	for i, tr := range sc.Root.Transitions {
		if tr.To == "end" {
			sc.Root.Transitions[i].Actions = []statechart.Assignment{{Var: "x", Expr: "x + 100"}}
		}
	}
	return sc
}

// gated wraps incr in a gate: until release is closed, callers park
// (reporting themselves on arrived) — the test's way of holding
// instances mid-chain while it redeploys underneath them.
func gated(arrived chan<- struct{}, release <-chan struct{}) service.Func {
	return func(ctx context.Context, params map[string]string) (map[string]string, error) {
		select {
		case <-release:
		default:
			arrived <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return incr(ctx, params)
	}
}

// TestRedeployUnderLoad deploys Chain(8), wedges a batch of instances
// mid-chain, deploys v2 of the same composite, and asserts the full
// swap contract: v1 instances complete with v1 semantics, the drained
// wrapper sheds new work loudly, post-swap executions run v2, nothing
// stalls, nothing is invoked twice, and v1 is retired once drained.
func TestRedeployUnderLoad(t *testing.T) {
	const n = 8
	const inflight = 4
	const postSwap = 3
	for _, impl := range churnImpls() {
		t.Run(impl.name, func(t *testing.T) {
			p := impl.newPlatform(t, core.Options{})
			h1, err := p.AddHost(impl.hostAddr(1))
			if err != nil {
				t.Fatalf("AddHost: %v", err)
			}
			h2, err := p.AddHost(impl.hostAddr(2))
			if err != nil {
				t.Fatalf("AddHost: %v", err)
			}
			hosts := []*engine.Host{h1, h2}

			arrived := make(chan struct{}, inflight*2)
			release := make(chan struct{})
			steps := map[int]*service.Simulated{}
			for i := 1; i <= n; i++ {
				s := service.NewSimulated(fmt.Sprintf("svc%d", i), service.SimulatedOptions{})
				if i == 5 {
					s.Handle("run", gated(arrived, release))
				} else {
					s.Handle("run", incr)
				}
				steps[i] = s
				p.RegisterService(hosts[i%2], s)
			}

			comp1, err := p.Deploy(workload.Chain(n))
			if err != nil {
				t.Fatalf("Deploy v1: %v", err)
			}
			if comp1.Version() != 1 {
				t.Fatalf("v1 version = %d, want 1", comp1.Version())
			}

			ctx := churnCtx(t)
			type result struct {
				out map[string]string
				err error
			}
			results := make(chan result, inflight)
			for i := 0; i < inflight; i++ {
				go func() {
					out, err := comp1.Execute(ctx, map[string]string{"x": "0"})
					results <- result{out, err}
				}()
			}
			// Every instance must be wedged mid-chain before the swap.
			for i := 0; i < inflight; i++ {
				select {
				case <-arrived:
				case <-ctx.Done():
					t.Fatal("instances never reached the mid-chain gate")
				}
			}
			if got := comp1.InFlight(); got != inflight {
				t.Fatalf("InFlight = %d, want %d", got, inflight)
			}

			// THE swap: v2 goes live while v1 instances are in flight.
			comp2, err := p.Deploy(chainV2(n))
			if err != nil {
				t.Fatalf("Deploy v2: %v", err)
			}
			if comp2.Version() != 2 {
				t.Fatalf("v2 version = %d, want 2", comp2.Version())
			}

			// The draining v1 wrapper sheds NEW admissions loudly...
			if _, err := comp1.Execute(ctx, map[string]string{"x": "0"}); !errors.Is(err, engine.ErrDraining) {
				t.Fatalf("admission on draining wrapper = %v, want ErrDraining", err)
			}
			// ...while its in-flight instances are still pinned and alive.
			if got := comp1.InFlight(); got != inflight {
				t.Fatalf("InFlight after swap = %d, want %d", got, inflight)
			}

			close(release)

			// Pinned completion: every v1 instance finishes with v1
			// semantics (x == n; the v2 final hop would have made it n+100).
			for i := 0; i < inflight; i++ {
				r := <-results
				if r.err != nil {
					t.Fatalf("v1 instance failed across the swap: %v", r.err)
				}
				if r.out["x"] != strconv.Itoa(n) {
					t.Fatalf("v1 instance x = %q, want %d (ran on the wrong plan version)", r.out["x"], n)
				}
			}

			// Post-swap executions run v2.
			for i := 0; i < postSwap; i++ {
				out, err := comp2.Execute(ctx, map[string]string{"x": "0"})
				if err != nil {
					t.Fatalf("v2 execution %d: %v", i, err)
				}
				if out["x"] != strconv.Itoa(n+100) {
					t.Fatalf("v2 execution %d: x = %q, want %d", i, out["x"], n+100)
				}
			}

			// No duplicate invocations anywhere across both versions.
			for i, s := range steps {
				if invoked, failures, _ := s.Counters(); invoked != inflight+postSwap || failures != 0 {
					t.Errorf("svc%d counters = invoked %d failures %d, want %d/0", i, invoked, failures, inflight+postSwap)
				}
			}

			// v1 drains to zero — nothing abandoned — and is retired.
			waitRetired(t, p, comp1.Name(), 1)
			if got := comp1.InFlight(); got != 0 {
				t.Errorf("InFlight after drain = %d, want 0", got)
			}
			if got := comp1.Abandoned(); got != 0 {
				t.Errorf("Abandoned = %d, want 0", got)
			}
			vt := p.Versions(comp1.Name())
			if vt.Current != 2 {
				t.Errorf("current version = %d, want 2", vt.Current)
			}

			// The happy swap needed no stale-frame repair.
			if stats := p.SwapStats(); stats.DroppedStale != 0 {
				t.Errorf("DroppedStale = %d, want 0", stats.DroppedStale)
			}
		})
	}
}

// waitRetired polls until version is no longer live for the composite
// (the platform retires it in the background once its wrapper drains).
func waitRetired(t *testing.T, p *core.Platform, composite string, version uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		live := false
		for _, v := range p.Versions(composite).Live {
			if v == version {
				live = true
			}
		}
		if !live {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("version %d of %s still live after drain: %+v", version, composite, p.Versions(composite))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRedeployDrainDeadlineFailsStragglersLoudly wedges instances past
// the drain deadline: the platform must force-close the old wrapper,
// failing each straggler with ErrInstanceFault and counting it as
// abandoned — a loud failure, never a silent stall.
func TestRedeployDrainDeadlineFailsStragglersLoudly(t *testing.T) {
	const n = 2
	const inflight = 2
	for _, impl := range churnImpls() {
		t.Run(impl.name, func(t *testing.T) {
			p := impl.newPlatform(t, core.Options{DrainTimeout: 50 * time.Millisecond})
			h, err := p.AddHost(impl.hostAddr(1))
			if err != nil {
				t.Fatalf("AddHost: %v", err)
			}

			arrived := make(chan struct{}, inflight*2)
			release := make(chan struct{})
			defer close(release) // let wedged service goroutines exit
			for i := 1; i <= n; i++ {
				s := service.NewSimulated(fmt.Sprintf("svc%d", i), service.SimulatedOptions{})
				if i == 2 {
					s.Handle("run", gated(arrived, release))
				} else {
					s.Handle("run", incr)
				}
				p.RegisterService(h, s)
			}

			comp1, err := p.Deploy(workload.Chain(n))
			if err != nil {
				t.Fatalf("Deploy v1: %v", err)
			}
			ctx := churnCtx(t)
			errs := make(chan error, inflight)
			for i := 0; i < inflight; i++ {
				go func() {
					_, err := comp1.Execute(ctx, map[string]string{"x": "0"})
					errs <- err
				}()
			}
			for i := 0; i < inflight; i++ {
				select {
				case <-arrived:
				case <-ctx.Done():
					t.Fatal("instances never reached the gate")
				}
			}

			if _, err := p.Deploy(chainV2(n)); err != nil {
				t.Fatalf("Deploy v2: %v", err)
			}

			// The stragglers never finish; the deadline must fail them.
			for i := 0; i < inflight; i++ {
				select {
				case err := <-errs:
					if !errors.Is(err, engine.ErrInstanceFault) {
						t.Fatalf("straggler error = %v, want ErrInstanceFault", err)
					}
				case <-ctx.Done():
					t.Fatal("straggler still stalled after the drain deadline")
				}
			}
			if got := comp1.Abandoned(); got != uint64(inflight) {
				t.Errorf("Abandoned = %d, want %d", got, inflight)
			}
			waitRetired(t, p, comp1.Name(), 1)
		})
	}
}
