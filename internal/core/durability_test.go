package core_test

// The durability contract suite (docs/durability.md), run over BOTH
// transports like the churn suite. These pin the acceptance criteria of
// the durable-instance layer:
//
//   - A platform killed mid-Chain(8) and rebuilt over the same journal
//     directory completes the interrupted composite with ZERO duplicate
//     provider invocations (journal replay + idempotency priming +
//     sequence-deduped redelivery) and zero lost instances.
//   - Passivated-then-rehydrated instances produce byte-identical
//     outcomes to never-passivated runs, and passivation fully replaces
//     lossy eviction while a journal is configured.
//   - Without a journal, cap-hit eviction is LOUD: counted in the
//     Evicted stat and logged.

import (
	"context"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"selfserv/internal/core"
	"selfserv/internal/journal"
	"selfserv/internal/service"
	"selfserv/internal/workload"
)

// durabilityOpts configures a journal in dir, fsync off (the suite
// kills processes, not kernels; CI must not pay fsync latency).
func durabilityOpts(dir string) core.Options {
	return core.Options{
		Durability: journal.Options{Dir: dir, Fsync: journal.FsyncOff},
	}
}

// TestDurabilityCrashRecoveryMidChain is THE crash-recovery contract:
// platform A runs Chain(8) and is killed while state 5's provider is
// executing; platform B — fresh provider objects, same journal dir,
// same chart re-deployed — recovers, finishes the instance, and no
// provider anywhere executed twice for a completed invocation. States
// 1–4 completed in life A and must NOT re-execute in life B (their
// rounds replay from the journal); state 5 was in doubt at the kill and
// legally re-executes once; states 6–8 run only in life B.
func TestDurabilityCrashRecoveryMidChain(t *testing.T) {
	const n = 8
	for _, impl := range churnImpls() {
		t.Run(impl.name, func(t *testing.T) {
			dir := t.TempDir()

			// --- life A -------------------------------------------------
			pA := impl.newPlatform(t, durabilityOpts(dir))
			if err := pA.DurabilityError(); err != nil {
				t.Fatalf("journal: %v", err)
			}
			hA1, err := pA.AddHost(impl.hostAddr(1))
			if err != nil {
				t.Fatalf("AddHost: %v", err)
			}
			hA2, err := pA.AddHost(impl.hostAddr(2))
			if err != nil {
				t.Fatalf("AddHost: %v", err)
			}
			reached5 := make(chan struct{})
			gate := make(chan struct{})
			defer close(gate) // release life A's stuck provider goroutine
			var reachedOnce sync.Once
			aSims := map[int]*service.Simulated{}
			for i := 1; i <= n; i++ {
				s := service.NewSimulated(fmt.Sprintf("svc%d", i), service.SimulatedOptions{})
				if i == 5 {
					s.Handle("run", func(ctx context.Context, params map[string]string) (map[string]string, error) {
						reachedOnce.Do(func() { close(reached5) })
						<-gate // the kill lands while this invocation is in flight
						return incr(ctx, params)
					})
				} else {
					s.Handle("run", incr)
				}
				aSims[i] = s
				host := hA1
				if i%2 == 0 {
					host = hA2
				}
				pA.RegisterService(host, service.NewIdempotent(s, 0))
			}
			compA, err := pA.Deploy(workload.Chain(n))
			if err != nil {
				t.Fatalf("Deploy: %v", err)
			}
			ctxA, cancelA := context.WithCancel(context.Background())
			defer cancelA()
			execDone := make(chan struct{})
			go func() {
				defer close(execDone)
				// The client of life A: its Execute dies with the process.
				compA.ExecuteInstance(ctxA, "crash-1", map[string]string{"x": "0"})
			}()
			select {
			case <-reached5:
			case <-churnCtx(t).Done():
				t.Fatal("state 5 never reached")
			}
			pA.Crash() // kill: endpoints and journal close, nothing drains
			cancelA()
			<-execDone

			// --- life B -------------------------------------------------
			pB := impl.newPlatform(t, durabilityOpts(dir))
			if err := pB.DurabilityError(); err != nil {
				t.Fatalf("reopen journal: %v", err)
			}
			hB1, err := pB.AddHost(impl.hostAddr(3))
			if err != nil {
				t.Fatalf("AddHost: %v", err)
			}
			hB2, err := pB.AddHost(impl.hostAddr(4))
			if err != nil {
				t.Fatalf("AddHost: %v", err)
			}
			bSims := map[int]*service.Simulated{}
			for i := 1; i <= n; i++ {
				s := service.NewSimulated(fmt.Sprintf("svc%d", i), service.SimulatedOptions{})
				s.Handle("run", incr)
				bSims[i] = s
				host := hB1
				if i%2 == 0 {
					host = hB2
				}
				pB.RegisterService(host, service.NewIdempotent(s, 0))
			}
			// Re-deploying the same chart on a fresh platform reproduces
			// plan version 1 — the version the journal records name.
			compB, err := pB.Deploy(workload.Chain(n))
			if err != nil {
				t.Fatalf("redeploy: %v", err)
			}
			ctx := churnCtx(t)
			stats, err := pB.Recover(ctx)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if stats.Wrappers != 1 {
				t.Errorf("recovered wrappers = %d, want 1 (stats: %s)", stats.Wrappers, stats)
			}
			found := false
			for _, id := range compB.Recovered() {
				if id == "crash-1" {
					found = true
				}
			}
			if !found {
				t.Fatalf("instance crash-1 lost: recovered = %v", compB.Recovered())
			}
			out, err := compB.WaitRecovered(ctx, "crash-1")
			if err != nil {
				t.Fatalf("WaitRecovered: %v", err)
			}
			if out["x"] != strconv.Itoa(n) {
				t.Fatalf("x = %q, want %d", out["x"], n)
			}

			// Zero duplicate invocations across both lives: completed steps
			// ran exactly once, in exactly one life. Step 5 — in doubt at
			// the kill, its outcome never journaled — re-executes in B.
			for i := 1; i <= 4; i++ {
				if inv, _, _ := aSims[i].Counters(); inv != 1 {
					t.Errorf("life A svc%d invoked %d times, want 1", i, inv)
				}
				if inv, _, _ := bSims[i].Counters(); inv != 0 {
					t.Errorf("life B svc%d invoked %d times, want 0 (round was journaled)", i, inv)
				}
			}
			for i := 5; i <= n; i++ {
				if inv, _, _ := bSims[i].Counters(); inv != 1 {
					t.Errorf("life B svc%d invoked %d times, want 1", i, inv)
				}
			}
			for i := 6; i <= n; i++ {
				if inv, _, _ := aSims[i].Counters(); inv != 0 {
					t.Errorf("life A svc%d invoked %d times, want 0", i, inv)
				}
			}
		})
	}
}

// TestDurabilityPassivateByteIdentical pins the platform-level
// passivation contract: with a journal and a cap of 1, enough
// concurrent executions pigeonhole instance IDs into the engine's
// 32-way striped tables, so cap-hit passivations are GUARANTEED — and
// every outcome stays byte-identical to a run with a cap nothing ever
// hits. Passivation fully replaces lossy eviction: Evicted stays zero.
// (Transparent rehydration of a passivated instance is pinned
// deterministically at the engine layer by
// TestPassivateRehydrateANDJoinDeterministic; Chain instances receive
// exactly one frame each, so they passivate but are never revisited.)
func TestDurabilityPassivateByteIdentical(t *testing.T) {
	const chain, execs = 4, 48
	for _, impl := range churnImpls() {
		t.Run(impl.name, func(t *testing.T) {
			run := func(cap int, dir string) ([]map[string]string, core.DurabilityStats) {
				opts := durabilityOpts(dir)
				opts.HostOptions.MaxInstancesPerState = cap
				p := impl.newPlatform(t, opts)
				h, err := p.AddHost(impl.hostAddr(1))
				if err != nil {
					t.Fatalf("AddHost: %v", err)
				}
				for i := 1; i <= chain; i++ {
					s := service.NewSimulated(fmt.Sprintf("svc%d", i), service.SimulatedOptions{})
					s.Handle("run", incr)
					p.RegisterService(h, service.NewIdempotent(s, 0))
				}
				comp, err := p.Deploy(workload.Chain(chain))
				if err != nil {
					t.Fatalf("Deploy: %v", err)
				}
				ctx := churnCtx(t)
				// Sequential: every instance from an earlier execution is
				// idle (and hydrated) by the time a later one's bookkeeping
				// collides with it, so the cap-hit scan always finds a
				// passivatable victim — the pigeonhole guarantee is exact,
				// not scheduling-dependent.
				outs := make([]map[string]string, execs)
				for e := 0; e < execs; e++ {
					out, err := comp.Execute(ctx, map[string]string{"x": strconv.Itoa(e * 10)})
					if err != nil {
						t.Fatalf("execution %d: %v", e, err)
					}
					outs[e] = out
				}
				return outs, p.DurabilityStats()
			}

			tight, tightStats := run(1, t.TempDir())
			roomy, roomyStats := run(execs*chain*2, t.TempDir())
			if !reflect.DeepEqual(tight, roomy) {
				t.Errorf("outcomes diverge:\n tight: %v\n roomy: %v", tight, roomy)
			}
			if tightStats.Evicted != 0 {
				t.Errorf("tight-cap run evicted %d live instances; passivation must replace eviction", tightStats.Evicted)
			}
			if tightStats.Passivated == 0 {
				t.Errorf("tight-cap run passivated nothing (cap 1, %d concurrent executions)", execs)
			}
			if roomyStats.Passivated != 0 {
				t.Errorf("roomy-cap run passivated %d instances, want 0", roomyStats.Passivated)
			}
		})
	}
}

// TestDurabilityEvictionIsLoudWithoutJournal pins the satellite
// contract for the journal-less path: a cap-hit eviction of a live
// instance is counted in the Evicted stat and logged loudly, never a
// silent FIFO drop.
func TestDurabilityEvictionIsLoudWithoutJournal(t *testing.T) {
	for _, impl := range churnImpls() {
		t.Run(impl.name, func(t *testing.T) {
			var mu sync.Mutex
			var logs []string
			opts := core.Options{}
			opts.HostOptions.MaxInstancesPerState = 1
			opts.HostOptions.Logf = func(format string, args ...any) {
				mu.Lock()
				logs = append(logs, fmt.Sprintf(format, args...))
				mu.Unlock()
			}
			p := impl.newPlatform(t, opts)
			h, err := p.AddHost(impl.hostAddr(1))
			if err != nil {
				t.Fatalf("AddHost: %v", err)
			}
			for i := 1; i <= 2; i++ {
				s := service.NewSimulated(fmt.Sprintf("svc%d", i), service.SimulatedOptions{})
				s.Handle("run", incr)
				p.RegisterService(h, s)
			}
			comp, err := p.Deploy(workload.Chain(2))
			if err != nil {
				t.Fatalf("Deploy: %v", err)
			}
			ctx := churnCtx(t)
			// Sequential executions: instance bookkeeping is striped over a
			// 32-way table with shard-local caps, so 40 instance IDs
			// pigeonhole at least one stripe past the cap of 1 and evict an
			// earlier (idle, finished) instance.
			for e := 0; e < 40; e++ {
				if _, err := comp.Execute(ctx, map[string]string{"x": "0"}); err != nil {
					t.Fatalf("execution %d: %v", e, err)
				}
			}
			if got := p.DurabilityStats().Evicted; got == 0 {
				t.Errorf("Evicted = %d, want > 0", got)
			}
			mu.Lock()
			defer mu.Unlock()
			loud := false
			for _, l := range logs {
				if strings.Contains(l, "EVICTED") {
					loud = true
					break
				}
			}
			if !loud {
				t.Errorf("no loud eviction log line; got %d log lines", len(logs))
			}
		})
	}
}
