package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"selfserv/internal/engine"
	"selfserv/internal/placement"
	"selfserv/internal/service"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

// replicatedChain builds a platform hosting Chain(n) with every service
// registered on all of the given hosts (full replication).
func replicatedChain(t testing.TB, n, hosts int, opts Options) (*Platform, *Composite) {
	t.Helper()
	p := New(opts)
	t.Cleanup(func() { p.Close() })
	workload.RegisterChainProviders(p.Registry(), n, service.SimulatedOptions{})
	for h := 0; h < hosts; h++ {
		host, err := p.AddHost(fmt.Sprintf("replica-%d", h))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= n; i++ {
			prov, err := p.Registry().Lookup(fmt.Sprintf("svc%d", i))
			if err != nil {
				t.Fatal(err)
			}
			p.RegisterService(host, prov)
		}
	}
	comp, err := p.Deploy(workload.Chain(n))
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return p, comp
}

func scaleoutCtx(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestReplicatedDeployExecutes is the scale-out happy path: every state
// installed on all three replicas, and executions with assorted tenants
// still produce correct results (all notifications of one instance
// converge on one coordinator object — the AND-free chain would corrupt
// x otherwise only under misrouting, so also run Parallel below).
func TestReplicatedDeployExecutes(t *testing.T) {
	p, comp := replicatedChain(t, 3, 3, Options{})
	ctx := scaleoutCtx(t)
	for i := 1; i <= 3; i++ {
		if got := p.Directory().Replicas("Chain3", fmt.Sprintf("s%d", i)); len(got) != 3 {
			t.Fatalf("state s%d replicas = %v, want 3", i, got)
		}
	}
	for i := 0; i < 20; i++ {
		inputs := map[string]string{"x": "0"}
		if i%2 == 1 {
			inputs[engine.TenantVar] = fmt.Sprintf("tenant-%d", i%4)
		}
		out, err := comp.Execute(ctx, inputs)
		if err != nil {
			t.Fatalf("Execute %d: %v", i, err)
		}
		if out["x"] != "3" {
			t.Fatalf("Execute %d: x = %q, want 3", i, out["x"])
		}
	}
}

// TestReplicatedTravelJoin pins correctness of multi-source
// coordination under replication: the travel scenario's downstream
// states merge notifications from several upstream sources, which only
// works if every source's notification for one instance reaches the
// SAME replica of the target coordinator (the deterministic-routing
// convergence property).
func TestReplicatedTravelJoin(t *testing.T) {
	p := New(Options{Funcs: workload.TravelGuards()})
	t.Cleanup(func() { p.Close() })
	sc := workload.Travel()
	if _, err := workload.RegisterTravelProviders(p.Registry(), service.SimulatedOptions{}); err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 3; h++ {
		host, err := p.AddHost(fmt.Sprintf("replica-%d", h))
		if err != nil {
			t.Fatal(err)
		}
		for _, svc := range sc.Services() {
			prov, err := p.Registry().Lookup(svc)
			if err != nil {
				t.Fatal(err)
			}
			p.RegisterService(host, prov)
		}
	}
	comp, err := p.Deploy(sc)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	ctx := scaleoutCtx(t)
	for i := 0; i < 10; i++ {
		req := workload.TravelRequest("tina", "melbourne", true)
		req[engine.TenantVar] = fmt.Sprintf("t%d", i%3)
		out, err := comp.Execute(ctx, req)
		if err != nil {
			t.Fatalf("Execute %d: %v", i, err)
		}
		if out["flightRef"] != "QF-TIN-MEL" || out["carRef"] != "CAR-TIN" {
			t.Fatalf("Execute %d: outputs = %v", i, out)
		}
	}
}

// TestScaleoutSpreadsInstances verifies replicas actually share load:
// with enough instances, every replica host receives coordination
// traffic (rendezvous hashing spreads instance keys across the set).
func TestScaleoutSpreadsInstances(t *testing.T) {
	p, comp := replicatedChain(t, 2, 3, Options{})
	ctx := scaleoutCtx(t)
	for i := 0; i < 30; i++ {
		if _, err := comp.Execute(ctx, map[string]string{"x": "0"}); err != nil {
			t.Fatalf("Execute %d: %v", i, err)
		}
	}
	stats := p.Network().Stats()
	for h := 0; h < 3; h++ {
		addr := fmt.Sprintf("replica-%d", h)
		if stats.Nodes[addr].MsgsIn == 0 {
			t.Fatalf("replica %s received no traffic over 30 instances: %+v", addr, stats.Nodes)
		}
	}
}

// TestScaleoutRoutingNeverRPCs pins the routing-never-RPCs invariant
// with a stats assertion: executing N instances produces EXACTLY the
// same total message count whether a state has 1 replica or 3 — replica
// resolution is a pure local computation, so scale-out adds zero
// messages to the coordination path.
func TestScaleoutRoutingNeverRPCs(t *testing.T) {
	const execs = 10
	run := func(replicas int) int64 {
		p, comp := replicatedChain(t, 3, replicas, Options{})
		ctx := scaleoutCtx(t)
		for i := 0; i < execs; i++ {
			// Fixed instance keys so both topologies route the same work.
			if _, err := comp.ExecuteInstance(ctx, fmt.Sprintf("i%d", i), map[string]string{"x": "0"}); err != nil {
				t.Fatalf("Execute %d: %v", i, err)
			}
		}
		return p.Network().Stats().Total().MsgsIn
	}
	single := run(1)
	tripled := run(3)
	if single == 0 {
		t.Fatal("no traffic measured")
	}
	if single != tripled {
		t.Fatalf("scale-out changed the message count: %d msgs with 1 replica, %d with 3 — routing must be RPC-free", single, tripled)
	}
}

// TestScaleoutDedicatedCell pins tenant isolation end to end: with a
// dedicated cell policy, every instance of the dedicated tenant routes
// to one fixed replica subset and other tenants never touch it.
func TestScaleoutDedicatedCell(t *testing.T) {
	pol := placement.Policy{Dedicated: map[string]int{"visa": 1}}
	p, comp := replicatedChain(t, 2, 3, Options{Placement: pol})
	ctx := scaleoutCtx(t)

	dir := p.Directory()
	cell := map[string]bool{}
	for i := 0; i < 50; i++ {
		addr, ok := dir.Route("Chain2", "s1", fmt.Sprintf("i%d", i), "visa")
		if !ok {
			t.Fatal("no route for visa")
		}
		cell[addr] = true
	}
	if len(cell) != 1 {
		t.Fatalf("visa cell of size 1 spread over %d replicas: %v", len(cell), cell)
	}
	for i := 0; i < 50; i++ {
		addr, ok := dir.Route("Chain2", "s1", fmt.Sprintf("i%d", i), "acme")
		if !ok {
			t.Fatal("no route for acme")
		}
		if cell[addr] {
			t.Fatalf("tenant acme landed on visa's dedicated replica %s", addr)
		}
	}

	// And the isolated tenant still executes correctly.
	out, err := comp.Execute(ctx, map[string]string{"x": "0", engine.TenantVar: "visa"})
	if err != nil || out["x"] != "2" {
		t.Fatalf("visa execute: %v, %v", out, err)
	}
}

// TestScaleoutTCP runs the replicated chain over real TCP sockets to
// make sure nothing in the replica path assumes the in-memory network.
func TestScaleoutTCP(t *testing.T) {
	net := transport.NewTCP()
	p := New(Options{Network: net})
	t.Cleanup(func() {
		p.Close()
		net.Close()
	})
	workload.RegisterChainProviders(p.Registry(), 2, service.SimulatedOptions{})
	for h := 0; h < 2; h++ {
		host, err := p.AddHost("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 2; i++ {
			prov, err := p.Registry().Lookup(fmt.Sprintf("svc%d", i))
			if err != nil {
				t.Fatal(err)
			}
			p.RegisterService(host, prov)
		}
	}
	comp, err := p.Deploy(workload.Chain(2))
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	ctx := scaleoutCtx(t)
	out, err := comp.Execute(ctx, map[string]string{"x": "0", engine.TenantVar: "t1"})
	if err != nil || out["x"] != "2" {
		t.Fatalf("TCP replicated execute: %v, %v", out, err)
	}
}
