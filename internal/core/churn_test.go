package core_test

// The availability-under-churn contract suite: deterministic end-to-end
// scenarios at the platform level, each run over BOTH the in-memory and
// the TCP transport. These pin the acceptance criteria of the churn
// layer: a provider killed mid-composite never stalls or duplicates an
// invocation (failover + idempotent retry), a wedged member's breaker
// stops the community from burning attempts on it, and a rate-limited
// tenant is shed while other tenants complete.

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"

	"selfserv/internal/circuit"
	"selfserv/internal/community"
	"selfserv/internal/core"
	"selfserv/internal/engine"
	"selfserv/internal/limits"
	"selfserv/internal/service"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

// churnImpl runs one scenario over a specific transport.
type churnImpl struct {
	name string
	// newPlatform builds a platform; the returned cleanup closes any
	// caller-owned network.
	newPlatform func(t *testing.T, opts core.Options) *core.Platform
	// hostAddr mints a listenable host address.
	hostAddr func(i int) string
}

func churnImpls() []churnImpl {
	return []churnImpl{
		{
			name: "inmem",
			newPlatform: func(t *testing.T, opts core.Options) *core.Platform {
				p := core.New(opts) // nil Network: platform owns an InMem
				t.Cleanup(func() { p.Close() })
				return p
			},
			hostAddr: func(i int) string { return fmt.Sprintf("churn-host-%d", i) },
		},
		{
			name: "tcp",
			newPlatform: func(t *testing.T, opts core.Options) *core.Platform {
				net := transport.NewTCP()
				opts.Network = net
				p := core.New(opts)
				t.Cleanup(func() {
					p.Close()
					net.Close()
				})
				return p
			},
			hostAddr: func(i int) string { return "127.0.0.1:0" },
		},
	}
}

func churnCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// incr is the chain workload's step: x -> x+1.
func incr(_ context.Context, params map[string]string) (map[string]string, error) {
	x, err := strconv.Atoi(params["x"])
	if err != nil {
		return nil, fmt.Errorf("bad x %q: %w", params["x"], err)
	}
	return map[string]string{"x": strconv.Itoa(x + 1)}, nil
}

// TestChurnProviderKilledMidComposite: a Chain(8) whose fifth state is
// served by a two-member community. While the composite runs, state
// four's provider kills the community's preferred member; the firing of
// state five fails against the dead member, the community fails over to
// the backup, and the execution completes — no stall, no duplicated
// invocation anywhere in the chain.
func TestChurnProviderKilledMidComposite(t *testing.T) {
	const n = 8
	for _, impl := range churnImpls() {
		t.Run(impl.name, func(t *testing.T) {
			p := impl.newPlatform(t, core.Options{})
			h1, err := p.AddHost(impl.hostAddr(1))
			if err != nil {
				t.Fatalf("AddHost: %v", err)
			}
			h2, err := p.AddHost(impl.hostAddr(2))
			if err != nil {
				t.Fatalf("AddHost: %v", err)
			}
			hosts := []*engine.Host{h1, h2}

			primary := service.NewSimulated("Primary5", service.SimulatedOptions{})
			primary.Handle("run", incr)
			backup := service.NewSimulated("Backup5", service.SimulatedOptions{})
			backup.Handle("run", incr)

			steps := map[int]*service.Simulated{}
			for i := 1; i <= n; i++ {
				host := hosts[i%2]
				switch i {
				case 4:
					// The churn event itself: firing state four kills the
					// community member state five would prefer.
					killer := service.NewSimulated("svc4", service.SimulatedOptions{})
					killer.Handle("run", func(ctx context.Context, params map[string]string) (map[string]string, error) {
						primary.SetDown(true)
						return incr(ctx, params)
					})
					steps[i] = killer
					p.RegisterService(host, killer)
				case 5:
					comm := community.New("svc5", community.Options{
						Policy:   community.NewCheapest(),
						Failover: 1,
					})
					for _, m := range []*community.Member{
						{Provider: primary, Cost: 1}, // preferred until it dies
						{Provider: backup, Cost: 2},
					} {
						if err := comm.Join(m); err != nil {
							t.Fatalf("Join: %v", err)
						}
					}
					p.RegisterService(host, comm)
				default:
					s := service.NewSimulated(fmt.Sprintf("svc%d", i), service.SimulatedOptions{})
					s.Handle("run", incr)
					steps[i] = s
					p.RegisterService(host, s)
				}
			}

			comp, err := p.Deploy(workload.Chain(n))
			if err != nil {
				t.Fatalf("Deploy: %v", err)
			}
			out, err := comp.Execute(churnCtx(t), map[string]string{"x": "0"})
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			if out["x"] != strconv.Itoa(n) {
				t.Fatalf("x = %q, want %d", out["x"], n)
			}

			// No duplicate invocations: every chain step executed exactly
			// once; the killed member saw exactly the one failed attempt.
			for i, s := range steps {
				if invoked, _, _ := s.Counters(); invoked != 1 {
					t.Errorf("svc%d invoked %d times, want 1", i, invoked)
				}
			}
			if invoked, failures, _ := primary.Counters(); invoked != 1 || failures != 1 {
				t.Errorf("primary counters = invoked %d failures %d, want 1/1", invoked, failures)
			}
			if invoked, failures, _ := backup.Counters(); invoked != 1 || failures != 0 {
				t.Errorf("backup counters = invoked %d failures %d, want 1/0", invoked, failures)
			}

			comm, _ := p.Registry().Lookup("svc5")
			av := comm.(*community.Community).Availability()
			if av.Failovers != 1 {
				t.Errorf("Failovers = %d, want 1", av.Failovers)
			}
		})
	}
}

// TestChurnBreakerStopsBurningAttemptsOnWedgedMember: a community member
// that keeps failing trips its per-member breaker; from then on the
// community goes straight to the healthy member without invoking the
// wedged one, and every composite execution still succeeds.
func TestChurnBreakerStopsBurningAttemptsOnWedgedMember(t *testing.T) {
	for _, impl := range churnImpls() {
		t.Run(impl.name, func(t *testing.T) {
			p := impl.newPlatform(t, core.Options{})
			h, err := p.AddHost(impl.hostAddr(1))
			if err != nil {
				t.Fatalf("AddHost: %v", err)
			}

			wedged := service.NewSimulated("Wedged", service.SimulatedOptions{})
			wedged.Handle("run", incr)
			wedged.SetDown(true) // wedged from the start, never recovers
			live := service.NewSimulated("Live", service.SimulatedOptions{})
			live.Handle("run", incr)

			frozen := time.Unix(11000, 0)
			comm := community.New("svc1", community.Options{
				Policy:   community.NewCheapest(),
				Failover: 1,
				Breaker: &circuit.Options{
					Window: 2, MinSamples: 2, Threshold: 1.0,
					OpenFor: time.Hour, Now: func() time.Time { return frozen },
				},
			})
			for _, m := range []*community.Member{
				{Provider: wedged, Cost: 1}, // always preferred while allowed
				{Provider: live, Cost: 2},
			} {
				if err := comm.Join(m); err != nil {
					t.Fatalf("Join: %v", err)
				}
			}
			p.RegisterService(h, comm)

			s2 := service.NewSimulated("svc2", service.SimulatedOptions{})
			s2.Handle("run", incr)
			p.RegisterService(h, s2)

			comp, err := p.Deploy(workload.Chain(2))
			if err != nil {
				t.Fatalf("Deploy: %v", err)
			}
			ctx := churnCtx(t)
			for i := 0; i < 4; i++ {
				out, err := comp.Execute(ctx, map[string]string{"x": "0"})
				if err != nil {
					t.Fatalf("execution %d: %v", i, err)
				}
				if out["x"] != "2" {
					t.Fatalf("execution %d: x = %q, want 2", i, out["x"])
				}
			}

			// The first two executions each burned one attempt on the wedged
			// member (filling its all-failure window); the breaker then
			// opened, and the last two went straight to the live member.
			if invoked, _, _ := wedged.Counters(); invoked != 2 {
				t.Errorf("wedged invoked %d times, want 2", invoked)
			}
			if invoked, failures, _ := live.Counters(); invoked != 4 || failures != 0 {
				t.Errorf("live counters = invoked %d failures %d, want 4/0", invoked, failures)
			}
			if got := comm.BreakerState("Wedged"); got != circuit.Open {
				t.Errorf("breaker state = %v, want open", got)
			}
			av := comm.Availability()
			if av.BreakerOpens != 1 {
				t.Errorf("BreakerOpens = %d, want 1", av.BreakerOpens)
			}
			if av.BreakerRefusals != 2 {
				t.Errorf("BreakerRefusals = %d, want 2", av.BreakerRefusals)
			}
		})
	}
}

// TestChurnRateLimitedTenantShedWhileOthersComplete: with platform-level
// limits, the noisy tenant's second execution is shed at wrapper
// admission while a quiet tenant and anonymous traffic complete, and the
// shed shows up in the transport's stats.
func TestChurnRateLimitedTenantShedWhileOthersComplete(t *testing.T) {
	for _, impl := range churnImpls() {
		t.Run(impl.name, func(t *testing.T) {
			frozen := time.Unix(12000, 0)
			p := impl.newPlatform(t, core.Options{
				Limits: limits.New(limits.Options{
					PerTenant: map[string]limits.Limit{"noisy": {Rate: 0.001, Burst: 1}},
					Now:       func() time.Time { return frozen },
				}),
			})
			h, err := p.AddHost(impl.hostAddr(1))
			if err != nil {
				t.Fatalf("AddHost: %v", err)
			}
			for i := 1; i <= 2; i++ {
				s := service.NewSimulated(fmt.Sprintf("svc%d", i), service.SimulatedOptions{})
				s.Handle("run", incr)
				p.RegisterService(h, s)
			}
			comp, err := p.Deploy(workload.Chain(2))
			if err != nil {
				t.Fatalf("Deploy: %v", err)
			}

			ctx := churnCtx(t)
			if _, err := comp.Execute(ctx, map[string]string{"x": "0", engine.TenantVar: "noisy"}); err != nil {
				t.Fatalf("first noisy execution: %v", err)
			}
			if _, err := comp.Execute(ctx, map[string]string{"x": "0", engine.TenantVar: "noisy"}); !errors.Is(err, limits.ErrShed) {
				t.Fatalf("second noisy execution = %v, want ErrShed", err)
			}
			if _, err := comp.Execute(ctx, map[string]string{"x": "0", engine.TenantVar: "quiet"}); err != nil {
				t.Fatalf("quiet execution: %v", err)
			}
			if _, err := comp.Execute(ctx, map[string]string{"x": "0"}); err != nil {
				t.Fatalf("anonymous execution: %v", err)
			}

			if got := p.Network().Stats().Total().ShedRequests; got != 1 {
				t.Errorf("total ShedRequests = %d, want 1", got)
			}
			sheds := p.Limits().Sheds()
			if sheds != 1 {
				t.Errorf("limiter sheds = %d, want 1", sheds)
			}
		})
	}
}
