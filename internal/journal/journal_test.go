package journal

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fixedNow is the injected clock every test journal runs on: record
// timestamps must come from Options.Now, never the wall clock.
func fixedNow() time.Time { return time.Unix(1700000000, 42) }

func openTest(t *testing.T, opts Options) *Journal {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.Now == nil {
		opts.Now = fixedNow
	}
	j, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func collectAll(t *testing.T, j *Journal) []*Record {
	t.Helper()
	var out []*Record
	if err := j.Replay(func(r *Record) error {
		cp := *r
		out = append(out, &cp)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, Options{Dir: dir, Fsync: FsyncOff, Shards: 2})
	recs := []*Record{
		{Kind: KindArrival, Composite: "c", State: "s1", Instance: "i1", Src: "w", Seq: 1, Vars: map[string]string{"x": "1"}},
		{Kind: KindInvoke, Composite: "c", State: "s1", Instance: "i1", Service: "svc", Key: "c/i1/s1/1", Outputs: map[string]string{"x": "2"}},
		{Kind: KindRound, Composite: "c", State: "s1", Instance: "i1", FireSeq: 1, Consumed: []string{"w"}, Cleared: []string{"w"},
			Vars: map[string]string{"x": "2"}, SendSeq: 1, Msgs: []OutMsg{{Type: "notify", To: "s2", Seq: 1, Vars: map[string]string{"x": "2"}}}},
		{Kind: KindWStart, Composite: "c", Instance: "i1", Vars: map[string]string{"x": "0"}},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if r.Time != fixedNow().UnixNano() {
			t.Fatalf("record time %d, want the injected clock's %d", r.Time, fixedNow().UnixNano())
		}
	}
	// Same instance → same shard → replay preserves append order.
	got := collectAll(t, j)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.Kind != recs[i].Kind {
			t.Fatalf("record %d kind %q, want %q", i, r.Kind, recs[i].Kind)
		}
	}
	if got[2].Msgs[0].To != "s2" || got[2].Msgs[0].Seq != 1 {
		t.Fatalf("round message survived badly: %+v", got[2].Msgs[0])
	}

	// Reopen: everything still there.
	j.Close()
	j2 := openTest(t, Options{Dir: dir, Fsync: FsyncOff, Shards: 2})
	if got := collectAll(t, j2); len(got) != len(recs) {
		t.Fatalf("after reopen: %d records, want %d", len(got), len(recs))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, Options{Dir: dir, Fsync: FsyncOff, Shards: 1, SegmentMaxBytes: 128})
	for i := 0; i < 50; i++ {
		if err := j.Append(&Record{Kind: KindArrival, Composite: "c", State: "s", Instance: "i1", Src: "w", Seq: uint64(i + 1)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if st := j.Stats(); st.Segments < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", st.Segments)
	}
	got := collectAll(t, j)
	if len(got) != 50 {
		t.Fatalf("replayed %d, want 50", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d — rotation broke order", i, r.Seq)
		}
	}
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, Options{Dir: dir, Fsync: FsyncOff, Shards: 1})
	for i := 0; i < 3; i++ {
		if err := j.Append(&Record{Kind: KindArrival, Composite: "c", State: "s", Instance: "i1", Seq: uint64(i + 1)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	j.Close()
	// Simulate a crash mid-append: garbage half-frame at the tail.
	segs, _ := filepath.Glob(filepath.Join(dir, "shard-00", "seg-*.wal"))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v", segs)
	}
	f, err := os.OpenFile(segs[0], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 1, 2, 3}); err != nil { // length 9, but only 0 payload bytes follow
		t.Fatal(err)
	}
	f.Close()

	j2 := openTest(t, Options{Dir: dir, Fsync: FsyncOff, Shards: 1})
	got := collectAll(t, j2)
	if len(got) != 3 {
		t.Fatalf("replayed %d records after torn tail, want 3", len(got))
	}
	// The repair is physical: the file itself was truncated back.
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(segs[0])
	if n, err := walkSegment(segs[0], func(int64, *Record) error { return nil }); err != nil || n != info.Size() {
		t.Fatalf("segment not repaired: valid prefix %d of %d bytes (err %v)", n, len(data), err)
	}
}

func TestCorruptionInEarlierSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, Options{Dir: dir, Fsync: FsyncOff, Shards: 1, SegmentMaxBytes: 64})
	for i := 0; i < 20; i++ {
		if err := j.Append(&Record{Kind: KindArrival, Composite: "c", State: "s", Instance: "i1", Seq: uint64(i + 1)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	j.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "shard-00", "seg-*.wal"))
	if len(segs) < 2 {
		t.Fatalf("need >= 2 segments, got %d", len(segs))
	}
	// Flip a payload byte in the FIRST segment: not a torn tail, real damage.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Fsync: FsyncOff, Shards: 1, Now: fixedNow}); err == nil {
		t.Fatal("Open accepted a corrupt non-tail segment")
	}
}

func TestPassiveIndex(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, Options{Dir: dir, Fsync: FsyncOff, Shards: 2})
	pass := &Record{
		Kind: KindPassivate, Composite: "c", State: "s", Instance: "i7",
		Vars:     map[string]string{"x": "3"},
		Counts:   map[string]uint32{"w": 1},
		SrcVars:  map[string]map[string]string{"w": {"y": "2"}},
		LastSeen: map[string]uint64{"w": 5},
		FireSeq:  2, SendSeq: 4,
	}
	if err := j.Append(pass); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if !j.IsPassive("c", "s", "i7") {
		t.Fatal("instance not in passive index after passivate record")
	}
	if st := j.Stats(); st.Passive != 1 {
		t.Fatalf("Stats.Passive = %d, want 1", st.Passive)
	}

	r, ok, err := j.TakePassive("c", "s", "i7")
	if err != nil || !ok {
		t.Fatalf("TakePassive: ok=%v err=%v", ok, err)
	}
	if r.Vars["x"] != "3" || r.Counts["w"] != 1 || r.SrcVars["w"]["y"] != "2" || r.LastSeen["w"] != 5 || r.FireSeq != 2 {
		t.Fatalf("rehydrated record wrong: %+v", r)
	}
	if j.IsPassive("c", "s", "i7") {
		t.Fatal("TakePassive left the index entry behind")
	}
	if _, ok, _ := j.TakePassive("c", "s", "i7"); ok {
		t.Fatal("second TakePassive found the instance again")
	}

	// Passivate again, then reopen: the scan rebuilds the index.
	if err := j.Append(pass); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2 := openTest(t, Options{Dir: dir, Fsync: FsyncOff, Shards: 2})
	if !j2.IsPassive("c", "s", "i7") {
		t.Fatal("reopen lost the passive index")
	}
	// A later record for the key un-passivates it on scan too.
	if err := j2.Append(&Record{Kind: KindArrival, Composite: "c", State: "s", Instance: "i7", Src: "w", Seq: 6}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3 := openTest(t, Options{Dir: dir, Fsync: FsyncOff, Shards: 2})
	if j3.IsPassive("c", "s", "i7") {
		t.Fatal("index kept an entry whose instance has later records")
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, Options{Dir: dir, Fsync: FsyncOff, Shards: 1})
	// Instance A: finished (wdone) — compaction must drop ALL its records,
	// including its coordinator-side ones.
	for _, r := range []*Record{
		{Kind: KindWStart, Composite: "c", Instance: "iA", Vars: map[string]string{"x": "0"}},
		{Kind: KindArrival, Composite: "c", State: "s1", Instance: "iA", Src: "w", Seq: 1},
		{Kind: KindRound, Composite: "c", State: "s1", Instance: "iA", FireSeq: 1},
		{Kind: KindWDone, Composite: "c", Instance: "iA"},
	} {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Instance B: live, with a snapshot mid-history — records before the
	// snapshot go, the snapshot and everything after stays.
	for _, r := range []*Record{
		{Kind: KindArrival, Composite: "c", State: "s1", Instance: "iB", Src: "w", Seq: 1},
		{Kind: KindRound, Composite: "c", State: "s1", Instance: "iB", FireSeq: 1},
		{Kind: KindSnapshot, Composite: "c", State: "s1", Instance: "iB", FireSeq: 1, Vars: map[string]string{"x": "1"}},
		{Kind: KindArrival, Composite: "c", State: "s1", Instance: "iB", Src: "w", Seq: 2},
	} {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Instance C: passivated — the index must survive compaction at the
	// record's NEW offset.
	if err := j.Append(&Record{Kind: KindPassivate, Composite: "c", State: "s2", Instance: "iC", Vars: map[string]string{"y": "9"}}); err != nil {
		t.Fatal(err)
	}

	if err := j.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	got := collectAll(t, j)
	for _, r := range got {
		if r.Instance == "iA" {
			t.Fatalf("compaction kept a record of finished instance iA: %+v", r)
		}
	}
	var kinds []string
	for _, r := range got {
		if r.Instance == "iB" {
			kinds = append(kinds, r.Kind)
		}
	}
	if len(kinds) != 2 || kinds[0] != KindSnapshot || kinds[1] != KindArrival {
		t.Fatalf("iB history after compact = %v, want [snapshot arrival]", kinds)
	}
	r, ok, err := j.TakePassive("c", "s2", "iC")
	if err != nil || !ok || r.Vars["y"] != "9" {
		t.Fatalf("passive index broken after compact: ok=%v err=%v r=%+v", ok, err, r)
	}
	// Compacted journal still appends and reopens cleanly. 4 records
	// remain: iB's snapshot + 2 arrivals, and iC's passivate (TakePassive
	// removes the INDEX entry; the record itself stays until the next
	// compaction).
	if err := j.Append(&Record{Kind: KindArrival, Composite: "c", State: "s1", Instance: "iB", Src: "w", Seq: 3}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2 := openTest(t, Options{Dir: dir, Fsync: FsyncOff, Shards: 1})
	if n := len(collectAll(t, j2)); n != 4 {
		t.Fatalf("after compact+append+reopen: %d records, want 4", n)
	}
}

func TestFsyncModes(t *testing.T) {
	always := openTest(t, Options{Fsync: FsyncAlways, Shards: 1})
	for i := 0; i < 4; i++ {
		if err := always.Append(&Record{Kind: KindArrival, Composite: "c", State: "s", Instance: "i"}); err != nil {
			t.Fatal(err)
		}
	}
	if st := always.Stats(); st.Syncs != 4 {
		t.Fatalf("FsyncAlways: %d syncs for 4 appends", st.Syncs)
	}

	batch := openTest(t, Options{Fsync: FsyncBatch, FsyncEvery: 3, Shards: 1})
	for i := 0; i < 7; i++ {
		if err := batch.Append(&Record{Kind: KindArrival, Composite: "c", State: "s", Instance: "i"}); err != nil {
			t.Fatal(err)
		}
	}
	if st := batch.Stats(); st.Syncs != 2 {
		t.Fatalf("FsyncBatch(3): %d syncs for 7 appends, want 2", st.Syncs)
	}

	off := openTest(t, Options{Fsync: FsyncOff, Shards: 1})
	for i := 0; i < 4; i++ {
		if err := off.Append(&Record{Kind: KindArrival, Composite: "c", State: "s", Instance: "i"}); err != nil {
			t.Fatal(err)
		}
	}
	if st := off.Stats(); st.Syncs != 0 {
		t.Fatalf("FsyncOff issued %d syncs", st.Syncs)
	}
}

func TestParseFsyncMode(t *testing.T) {
	for spec, want := range map[string]FsyncMode{"always": FsyncAlways, "": FsyncAlways, "batch": FsyncBatch, "off": FsyncOff} {
		got, err := ParseFsyncMode(spec)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncMode(%q) = %v, %v", spec, got, err)
		}
		if spec != "" && got.String() != spec {
			t.Fatalf("FsyncMode %v round-trips to %q", got, got.String())
		}
	}
	if _, err := ParseFsyncMode("sometimes"); err == nil {
		t.Fatal("ParseFsyncMode accepted garbage")
	}
}

func TestShardCountPinnedToDirectory(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, Options{Dir: dir, Fsync: FsyncOff, Shards: 4})
	j.Close()
	if _, err := Open(Options{Dir: dir, Fsync: FsyncOff, Shards: 8, Now: fixedNow}); err == nil {
		t.Fatal("Open accepted a shard-count change on an existing journal")
	}
}

func TestOpenRejectsBadOptions(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open accepted an empty dir")
	}
	if _, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncMode(42)}); err == nil {
		t.Fatal("Open accepted a bogus fsync mode")
	}
}
