// Package journal is the engine's durability substrate: a per-shard
// append-only write-ahead log of firing rounds, plus the passivation
// index that lets an idle instance live on disk instead of RAM
// (docs/durability.md).
//
// Each record describes one commit point of one instance — a
// notification arrival, a completed provider invocation, a firing
// round's bag delta and outbound messages, or a full bag snapshot
// (periodic, or terminal-for-now when the instance passivates). Records
// are framed [length|crc32|json] and sharded by (composite, instance),
// so every record of an instance lands in one shard file sequence and
// the shard's append mutex makes file order equal commit order for that
// instance. Recovery replays shards independently (engine.Recover);
// cross-shard order carries no meaning.
//
// The journal is deliberately clock-free on its decision paths: fsync
// batching is COUNT-based (every N appends), never timer-based, so a
// replayed history is bit-for-bit independent of scheduling. The
// injected Options.Now stamps records for observability only.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Record kinds. Coordinator-side kinds carry State; wrapper-side kinds
// (the "w" prefix) do not.
const (
	// KindArrival is a notification accepted by a coordinator instance:
	// Src's variables merged into the instance bag, the source counter
	// bumped. Written BEFORE the arrival is applied (write-ahead).
	KindArrival = "arrival"
	// KindInvoke is a completed provider invocation: the idempotency Key
	// and the provider's Outputs. Replay primes service.Idempotent so a
	// re-fired round replays the response instead of re-executing.
	KindInvoke = "invoke"
	// KindRound is one firing round's effect on the instance: consumed
	// source counters, absorbed (cleared) source bags, the base-layer
	// delta, and the outbound messages with their dedup sequence numbers.
	// Written BEFORE the messages are flushed (write-ahead of sends).
	KindRound = "round"
	// KindSnapshot is a full coordinator-instance state image; replay
	// restarts from the newest one, and compaction drops what precedes it.
	KindSnapshot = "snapshot"
	// KindPassivate is a snapshot that also REMOVES the instance from
	// RAM: the journal's passive index keeps (file, offset), and the
	// instance rehydrates from it on its next frame.
	KindPassivate = "passivate"
	// KindWStart is a wrapper execution admitted: the request inputs.
	KindWStart = "wstart"
	// KindWArrival is a termination/fault notice received by the wrapper.
	KindWArrival = "warrival"
	// KindWDone marks a wrapper execution finished (result delivered or
	// faulted); compaction drops every record of the instance.
	KindWDone = "wdone"
)

// OutMsg is one outbound notification recorded in a KindRound record —
// enough to redeliver it after a crash. The destination is the LOGICAL
// peer (a state ID or the wrapper ID), never a transport address:
// addresses change across restarts and are re-resolved at redelivery.
type OutMsg struct {
	Type string            `json:"type"`
	To   string            `json:"to"`
	Seq  uint64            `json:"seq,omitempty"`
	Vars map[string]string `json:"vars,omitempty"`
}

// Record is one journal entry. One flat struct covers every kind; the
// unused fields of a kind are omitted from the JSON.
type Record struct {
	Kind      string `json:"k"`
	Composite string `json:"c"`
	Instance  string `json:"i"`
	State     string `json:"s,omitempty"`
	Version   uint64 `json:"v,omitempty"`
	// Time is Options.Now at append, unix nanoseconds. Observability
	// only: nothing in replay or compaction reads it.
	Time int64 `json:"t,omitempty"`

	// Arrival fields (also WArrival: Src + Seq + Vars + Error).
	Src string `json:"src,omitempty"`
	Seq uint64 `json:"seq,omitempty"`
	// Vars is the arrival's payload, the round's base-layer delta, the
	// snapshot's base layer, or the wstart's inputs — the "main bag" of
	// each kind.
	Vars map[string]string `json:"vars,omitempty"`

	// Invoke fields.
	Service string            `json:"svc,omitempty"`
	Key     string            `json:"key,omitempty"`
	Outputs map[string]string `json:"out,omitempty"`

	// Round fields.
	FireSeq  uint64   `json:"fire,omitempty"`
	Consumed []string `json:"cons,omitempty"` // source counters decremented
	Cleared  []string `json:"clr,omitempty"`  // source bags absorbed into base
	SendSeq  uint64   `json:"send,omitempty"` // high-water after stamping Msgs
	Msgs     []OutMsg `json:"msgs,omitempty"`

	// Snapshot/passivate fields (Vars carries the base layer).
	Counts   map[string]uint32            `json:"cnt,omitempty"`
	SrcVars  map[string]map[string]string `json:"bags,omitempty"`
	LastSeen map[string]uint64            `json:"seen,omitempty"`

	// Error carries a fault's text (WArrival of a TypeFault, WDone of a
	// failed execution).
	Error string `json:"err,omitempty"`
}

// FsyncMode selects the durability/throughput trade of Append.
type FsyncMode int

const (
	// FsyncAlways syncs after every append: a record returned from
	// Append survives power loss. The default.
	FsyncAlways FsyncMode = iota
	// FsyncBatch syncs every Options.FsyncEvery appends (count-based,
	// never timer-based). An OS crash may lose the tail of a batch; a
	// process crash loses nothing (the OS holds the pages).
	FsyncBatch
	// FsyncOff never syncs (tests, CI): a process crash loses nothing,
	// an OS crash may lose anything unsynced.
	FsyncOff
)

// String returns the flag spelling of the mode.
func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncBatch:
		return "batch"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncMode(%d)", int(m))
}

// ParseFsyncMode parses the -fsync flag spelling.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("journal: unknown fsync mode %q (want always, batch, or off)", s)
}

// Options configure a Journal.
type Options struct {
	// Dir is the journal directory; created if missing. Empty disables
	// durability entirely at the layers above (core.Options.Durability).
	Dir string
	// Fsync selects the sync policy (default FsyncAlways).
	Fsync FsyncMode
	// FsyncEvery is the batch size under FsyncBatch (default 32).
	FsyncEvery int
	// SnapshotEvery asks the engine to write a full instance snapshot
	// every N firing rounds (default 8). The journal only carries the
	// knob; the engine's commit points act on it.
	SnapshotEvery int
	// SegmentMaxBytes rotates a shard's segment beyond this size
	// (default 4 MiB).
	SegmentMaxBytes int64
	// Shards is the number of independent append streams (default 8).
	// Fixed at first Open of a directory: reopening with a different
	// count is an error.
	Shards int
	// Now stamps records (observability only). Defaults to time.Now.
	Now func() time.Time
}

// passiveLoc locates a passivated instance's record on disk. Only the
// location lives in RAM — the bag stays in the segment file, which is
// the entire point of passivation.
type passiveLoc struct {
	file string
	off  int64
}

// shard is one independent append stream: a directory of numbered
// segment files plus the slice of the passive index whose keys hash
// here.
type shard struct {
	mu       sync.Mutex // lockorder:journal — leaf; taken under engine instance locks, never above any other repo mutex
	dir      string
	seg      *os.File // open segment (lazily created on first append)
	segPath  string
	segSize  int64
	nextSeg  uint64
	unsynced int
	// passive maps composite\x00state\x00instance to the location of its
	// KindPassivate record. Guarded by mu (the index slice is shard-local
	// because records shard by (composite, instance)).
	passive map[string]passiveLoc
	// existing are the segment paths found at Open, oldest first; appends
	// go to a fresh segment so a torn tail is never appended after.
	existing []string
}

// Journal is an open journal directory. Safe for concurrent use.
type Journal struct {
	opts   Options
	shards []*shard

	appends  atomic.Uint64
	syncs    atomic.Uint64
	bytes    atomic.Uint64
	replayed atomic.Uint64
}

// Stats are the journal's running counters.
type Stats struct {
	Appends  uint64 // records appended this process
	Syncs    uint64 // fsyncs issued
	Bytes    uint64 // bytes appended this process
	Passive  int    // instances currently passivated (index size)
	Segments int    // segment files on disk
}

// Open opens (creating if needed) the journal at opts.Dir, scans every
// existing segment to rebuild the passive index, and repairs a torn
// tail (a crash mid-append) by truncating the last segment of each
// shard to its last whole record. Corruption anywhere BUT a last
// segment's tail is an error — that is real damage, not a crash
// artifact.
func Open(opts Options) (*Journal, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("journal: empty directory")
	}
	if opts.Fsync < FsyncAlways || opts.Fsync > FsyncOff {
		return nil, fmt.Errorf("journal: bad fsync mode %d", int(opts.Fsync))
	}
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = 32
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = 8
	}
	if opts.SegmentMaxBytes <= 0 {
		opts.SegmentMaxBytes = 4 << 20
	}
	if opts.Shards <= 0 {
		opts.Shards = 8
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	// The shard count is a property of the directory: records hash to
	// shards by (composite, instance), so reopening with a different
	// count would replay an instance's records out of their stream.
	existing, err := filepath.Glob(filepath.Join(opts.Dir, "shard-*"))
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if n := len(existing); n > 0 && n != opts.Shards {
		return nil, fmt.Errorf("journal: %s holds %d shards, options say %d", opts.Dir, n, opts.Shards)
	}
	j := &Journal{opts: opts, shards: make([]*shard, opts.Shards)}
	for i := range j.shards {
		s := &shard{
			dir:     filepath.Join(opts.Dir, fmt.Sprintf("shard-%02d", i)),
			passive: map[string]passiveLoc{},
		}
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		if err := s.scan(); err != nil {
			return nil, err
		}
		j.shards[i] = s
	}
	return j, nil
}

// SnapshotEvery returns the snapshot cadence the engine should honor.
func (j *Journal) SnapshotEvery() int { return j.opts.SnapshotEvery }

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.opts.Dir }

// passiveKey names an instance's slot in the passive index.
func passiveKey(composite, state, instance string) string {
	return composite + "\x00" + state + "\x00" + instance
}

// shardFor hashes (composite, instance) onto a shard — state is NOT
// part of the key, so every coordinator's records for one instance
// (and the wrapper's) serialize through one stream.
func (j *Journal) shardFor(composite, instance string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(composite); i++ {
		h = (h ^ uint32(composite[i])) * 16777619
	}
	h = (h ^ 0) * 16777619
	for i := 0; i < len(instance); i++ {
		h = (h ^ uint32(instance[i])) * 16777619
	}
	return j.shards[h%uint32(len(j.shards))]
}

// Append writes r durably (per the fsync mode) and returns when it is
// committed. The caller's instance lock orders the records of one
// instance; the shard mutex orders the file.
func (j *Journal) Append(r *Record) error {
	r.Time = j.opts.Now().UnixNano()
	buf, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	s := j.shardFor(r.Composite, r.Instance)
	s.mu.Lock()
	defer s.mu.Unlock()
	off, err := s.append(buf, j.opts)
	if err != nil {
		return err
	}
	key := passiveKey(r.Composite, r.State, r.Instance)
	if r.Kind == KindPassivate {
		s.passive[key] = passiveLoc{file: s.segPath, off: off}
	} else {
		// Any later record for the key means the instance is live again;
		// Open's scan applies the same rule when rebuilding the index.
		delete(s.passive, key)
	}
	j.appends.Add(1)
	j.bytes.Add(uint64(len(buf) + frameHeader))
	if s.unsynced > 0 && (j.opts.Fsync == FsyncAlways || (j.opts.Fsync == FsyncBatch && s.unsynced >= j.opts.FsyncEvery)) {
		if err := s.seg.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
		s.unsynced = 0
		j.syncs.Add(1)
	}
	return nil
}

// TakePassive removes an instance from the passive index and returns
// its passivation record — the rehydration path. ok is false when the
// instance is not passivated here.
func (j *Journal) TakePassive(composite, state, instance string) (*Record, bool, error) {
	s := j.shardFor(composite, instance)
	key := passiveKey(composite, state, instance)
	s.mu.Lock()
	defer s.mu.Unlock()
	loc, ok := s.passive[key]
	if !ok {
		return nil, false, nil
	}
	r, err := readRecordAt(loc.file, loc.off)
	if err != nil {
		return nil, false, fmt.Errorf("journal: rehydrate %s/%s/%s: %w", composite, state, instance, err)
	}
	delete(s.passive, key)
	return r, true, nil
}

// IsPassive reports whether the instance is currently passivated.
func (j *Journal) IsPassive(composite, state, instance string) bool {
	s := j.shardFor(composite, instance)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.passive[passiveKey(composite, state, instance)]
	return ok
}

// Replay streams every record on disk, shard by shard, in append order
// within each shard, stopping early if fn errors. Concurrent appends
// are excluded per shard (recovery runs before traffic anyway).
func (j *Journal) Replay(fn func(*Record) error) error {
	for _, s := range j.shards {
		s.mu.Lock()
		err := s.replay(func(r *Record) error {
			j.replayed.Add(1)
			return fn(r)
		})
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Compact rewrites each shard keeping only what recovery needs: for a
// finished instance (a KindWDone anywhere in the shard) nothing at all;
// for every other (composite, state, instance) the records from its
// newest snapshot/passivate onward (or all of them when it never
// snapshotted). The passive index is rebuilt at the new offsets.
func (j *Journal) Compact() error {
	for _, s := range j.shards {
		s.mu.Lock()
		err := s.compact(j.opts)
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats returns the running counters.
func (j *Journal) Stats() Stats {
	st := Stats{
		Appends: j.appends.Load(),
		Syncs:   j.syncs.Load(),
		Bytes:   j.bytes.Load(),
	}
	for _, s := range j.shards {
		s.mu.Lock()
		st.Passive += len(s.passive)
		st.Segments += len(s.existing)
		if s.seg != nil {
			st.Segments++
		}
		s.mu.Unlock()
	}
	return st
}

// Close syncs and closes every open segment.
func (j *Journal) Close() error {
	var first error
	for _, s := range j.shards {
		s.mu.Lock()
		if s.seg != nil {
			if s.unsynced > 0 && j.opts.Fsync != FsyncOff {
				if err := s.seg.Sync(); err != nil && first == nil {
					first = err
				}
			}
			if err := s.seg.Close(); err != nil && first == nil {
				first = err
			}
			s.seg = nil
		}
		s.mu.Unlock()
	}
	return first
}

// frameHeader is the per-record framing overhead: a little-endian
// uint32 payload length followed by the payload's CRC-32 (IEEE).
const frameHeader = 8

// maxRecordBytes bounds a single record frame — a sanity valve so a
// corrupt length word can't ask for a gigabyte allocation.
const maxRecordBytes = 16 << 20

// append writes one framed payload to the shard's open segment,
// rotating first when over the size limit. Returns the record's offset
// in the (possibly fresh) segment. Caller holds s.mu.
func (s *shard) append(payload []byte, opts Options) (int64, error) {
	if s.seg == nil || s.segSize >= opts.SegmentMaxBytes {
		if err := s.rotate(opts); err != nil {
			return 0, err
		}
	}
	off := s.segSize
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := s.seg.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("journal: append: %w", err)
	}
	if _, err := s.seg.Write(payload); err != nil {
		return 0, fmt.Errorf("journal: append: %w", err)
	}
	s.segSize += int64(frameHeader + len(payload))
	s.unsynced++
	return off, nil
}

// rotate closes the open segment (if any) and starts the next one.
// Caller holds s.mu.
func (s *shard) rotate(opts Options) error {
	if s.seg != nil {
		if s.unsynced > 0 && opts.Fsync != FsyncOff {
			if err := s.seg.Sync(); err != nil {
				return fmt.Errorf("journal: rotate: %w", err)
			}
			s.unsynced = 0
		}
		if err := s.seg.Close(); err != nil {
			return fmt.Errorf("journal: rotate: %w", err)
		}
		s.existing = append(s.existing, s.segPath)
		s.seg = nil
	}
	path := filepath.Join(s.dir, fmt.Sprintf("seg-%08d.wal", s.nextSeg))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	s.nextSeg++
	s.seg = f
	s.segPath = path
	s.segSize = 0
	return nil
}

// scan walks the shard's existing segments oldest-first: validates
// frames, rebuilds the passive index, truncates a torn tail on the LAST
// segment (crash artifact), and errors on damage anywhere else. Appends
// after scan go to a fresh segment.
func (s *shard) scan() error {
	segs, err := filepath.Glob(filepath.Join(s.dir, "seg-*.wal"))
	if err != nil {
		return fmt.Errorf("journal: scan: %w", err)
	}
	sort.Strings(segs)
	s.existing = segs
	for _, path := range segs {
		// Segment names are zero-padded so the lexical sort above is the
		// numeric order; nextSeg must clear the highest seen.
		var n uint64
		base := filepath.Base(path)
		if _, err := fmt.Sscanf(base, "seg-%d.wal", &n); err == nil && n >= s.nextSeg {
			s.nextSeg = n + 1
		}
	}
	for i, path := range segs {
		last := i == len(segs)-1
		validLen, err := s.scanSegment(path)
		if err != nil {
			if !last {
				return fmt.Errorf("journal: segment %s: %w (not the shard tail — real corruption, not a torn append)", path, err)
			}
			// Torn tail from a crash mid-append: repair by truncating to
			// the last whole record so later scans see a clean file.
			if terr := os.Truncate(path, validLen); terr != nil {
				return fmt.Errorf("journal: truncate torn tail of %s: %w", path, terr)
			}
		}
	}
	return nil
}

// scanSegment validates one segment, applying its records to the
// passive index. Returns the length of the valid prefix and an error
// describing the first bad frame (nil when the file is whole).
func (s *shard) scanSegment(path string) (int64, error) {
	return walkSegment(path, func(off int64, r *Record) error {
		key := passiveKey(r.Composite, r.State, r.Instance)
		if r.Kind == KindPassivate {
			s.passive[key] = passiveLoc{file: path, off: off}
		} else {
			delete(s.passive, key)
		}
		return nil
	})
}

// replay streams the shard's records in order. The open (currently
// appended) segment is read via its path — the write fd's offset is
// untouched. Caller holds s.mu.
func (s *shard) replay(fn func(*Record) error) error {
	segs := append([]string(nil), s.existing...)
	if s.seg != nil {
		segs = append(segs, s.segPath)
	}
	for _, path := range segs {
		_, err := walkSegment(path, func(_ int64, r *Record) error { return fn(r) })
		if err != nil {
			return fmt.Errorf("journal: replay %s: %w", path, err)
		}
	}
	return nil
}

// compact rewrites the shard (see Journal.Compact). Caller holds s.mu.
func (s *shard) compact(opts Options) error {
	// Pass 1: find finished instances and each key's newest snapshot
	// position (counting records per key so pass 2 can cut precisely).
	type cursor struct {
		n        int // records seen for this key
		snapshot int // 1-based index of the newest snapshot/passivate; 0 = none
	}
	doneInst := map[string]bool{} // composite\x00instance
	cursors := map[string]*cursor{}
	collect := func(r *Record) error {
		if r.Kind == KindWDone {
			doneInst[r.Composite+"\x00"+r.Instance] = true
		}
		key := passiveKey(r.Composite, r.State, r.Instance)
		c := cursors[key]
		if c == nil {
			c = &cursor{}
			cursors[key] = c
		}
		c.n++
		if r.Kind == KindSnapshot || r.Kind == KindPassivate {
			c.snapshot = c.n
		}
		return nil
	}
	if err := s.replay(collect); err != nil {
		return err
	}

	// Pass 2: stream the keepers into fresh segments. The old segments
	// are removed only after the new ones are synced, so a crash during
	// compaction leaves either the old history or the new — never
	// neither. (A crash in between can leave BOTH; the keepers replay
	// twice, which recovery tolerates: arrivals dedup, rounds re-apply
	// onto snapshots idempotently.)
	old := append([]string(nil), s.existing...)
	if s.seg != nil {
		if s.unsynced > 0 && opts.Fsync != FsyncOff {
			if err := s.seg.Sync(); err != nil {
				return err
			}
			s.unsynced = 0
		}
		if err := s.seg.Close(); err != nil {
			return err
		}
		old = append(old, s.segPath)
		s.seg = nil
	}
	s.existing = nil
	s.passive = map[string]passiveLoc{}
	seen := map[string]int{}
	keep := func(_ int64, r *Record, raw []byte) error {
		if doneInst[r.Composite+"\x00"+r.Instance] {
			return nil
		}
		key := passiveKey(r.Composite, r.State, r.Instance)
		seen[key]++
		if c := cursors[key]; c.snapshot != 0 && seen[key] < c.snapshot {
			return nil
		}
		off, err := s.append(raw, opts)
		if err != nil {
			return err
		}
		if r.Kind == KindPassivate {
			s.passive[key] = passiveLoc{file: s.segPath, off: off}
		} else {
			delete(s.passive, key)
		}
		return nil
	}
	for _, path := range old {
		if _, err := walkSegmentRaw(path, keep); err != nil {
			return fmt.Errorf("journal: compact %s: %w", path, err)
		}
	}
	if s.seg != nil && opts.Fsync != FsyncOff {
		if err := s.seg.Sync(); err != nil {
			return err
		}
		s.unsynced = 0
	}
	for _, path := range old {
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("journal: compact: %w", err)
		}
	}
	return nil
}

// walkSegment streams a segment's decoded records.
func walkSegment(path string, fn func(off int64, r *Record) error) (int64, error) {
	return walkSegmentRaw(path, func(off int64, r *Record, _ []byte) error {
		return fn(off, r)
	})
}

// walkSegmentRaw streams a segment's records with their offsets and raw
// payloads. It returns the byte length of the valid prefix; err
// describes the first bad frame (io errors, short frames, CRC
// mismatches). A clean EOF returns a nil error.
func walkSegmentRaw(path string, fn func(off int64, r *Record, raw []byte) error) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var off int64
	for int64(len(data))-off >= frameHeader {
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n == 0 || n > maxRecordBytes {
			return off, fmt.Errorf("bad frame length %d at offset %d", n, off)
		}
		if int64(len(data))-off-frameHeader < n {
			return off, fmt.Errorf("truncated frame at offset %d", off)
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != crc {
			return off, fmt.Errorf("crc mismatch at offset %d", off)
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return off, fmt.Errorf("bad record at offset %d: %w", off, err)
		}
		if err := fn(off, &r, payload); err != nil {
			return off, err
		}
		off += frameHeader + n
	}
	if rem := int64(len(data)) - off; rem > 0 {
		return off, fmt.Errorf("trailing %d bytes at offset %d", rem, off)
	}
	return off, nil
}

// readRecordAt decodes the single record at (file, off) — the
// rehydration read.
func readRecordAt(path string, off int64) (*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [frameHeader]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return nil, err
	}
	n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n == 0 || n > maxRecordBytes {
		return nil, fmt.Errorf("bad frame length %d at offset %d", n, off)
	}
	payload := make([]byte, n)
	if _, err := f.ReadAt(payload, off+frameHeader); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("crc mismatch at offset %d", off)
	}
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// FormatStats renders the stats for a -stats log line.
func (st Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "appends=%d syncs=%d bytes=%d passive=%d segments=%d",
		st.Appends, st.Syncs, st.Bytes, st.Passive, st.Segments)
	return sb.String()
}
