// Package limits implements per-tenant token-bucket rate limits and load
// shedding: the traffic-isolation half of the availability-under-churn
// story. A shared tier serves many tenants; without admission control,
// one abusive caller can saturate the hosts' bounded queues and starve
// everyone (the noisy-neighbour failure). A Limiter gives every tenant
// its own token bucket — refilled continuously at Rate tokens/second up
// to Burst — and SHEDS (refuses immediately, ErrShed) requests that find
// the bucket empty, so overload surfaces as fast, attributable rejections
// of the offending tenant instead of queueing delay for all of them.
//
// Like package circuit, the clock is injectable (Options.Now), so refill
// arithmetic is exact and the contract tests never sleep.
package limits

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrShed reports a request refused by admission control: the tenant's
// token bucket was empty. The request was NOT queued; callers retry
// later or propagate the rejection.
var ErrShed = errors.New("limits: rate limit exceeded")

// DefaultTenant is the bucket key used for requests carrying no tenant
// tag: anonymous traffic shares one bucket rather than bypassing
// admission control.
const DefaultTenant = "$anonymous"

// Limit is one tenant's bucket shape.
type Limit struct {
	// Rate is the sustained admission rate, in requests per second.
	// Zero or negative means unlimited (no bucket, never shed).
	Rate float64
	// Burst is the bucket capacity: how many requests may be admitted
	// instantaneously after an idle period. Zero means max(Rate, 1).
	Burst float64
}

// withDefaults fills the burst default.
func (l Limit) withDefaults() Limit {
	if l.Burst <= 0 {
		l.Burst = l.Rate
		if l.Burst < 1 {
			l.Burst = 1
		}
	}
	return l
}

// Options configure a Limiter.
type Options struct {
	// Default is the bucket shape for tenants without an override.
	// Default.Rate <= 0 disables limiting for them entirely.
	Default Limit
	// PerTenant overrides the bucket shape for specific tenants (e.g. a
	// "visa"-sized tenant buys a bigger bucket; an abusive one is
	// clamped). A Rate <= 0 override makes that tenant unlimited.
	PerTenant map[string]Limit
	// Now is the clock; nil means time.Now.
	Now func() time.Time
}

// Limiter is a set of per-tenant token buckets. Buckets are created
// lazily on a tenant's first request. Safe for concurrent use.
type Limiter struct {
	opts Options

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	limit  Limit
	tokens float64
	last   time.Time
	// admitted and shed are lifetime decision counters, the stats feed.
	admitted int64
	shed     int64
}

// New returns a Limiter. A nil-equivalent Options (Default.Rate <= 0, no
// overrides) admits everything — limiting is strictly opt-in.
func New(opts Options) *Limiter {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Limiter{opts: opts, buckets: map[string]*bucket{}}
}

// limitFor resolves the bucket shape for tenant.
func (l *Limiter) limitFor(tenant string) Limit {
	if lim, ok := l.opts.PerTenant[tenant]; ok {
		return lim
	}
	return l.opts.Default
}

// Allow admits or sheds one request from tenant (empty means
// DefaultTenant). nil admits; an ErrShed-wrapped error (naming the
// tenant) sheds.
func (l *Limiter) Allow(tenant string) error {
	if l == nil {
		return nil // a nil *Limiter admits everything: callers don't branch
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	lim := l.limitFor(tenant)
	if lim.Rate <= 0 {
		return nil
	}
	lim = lim.withDefaults()
	now := l.opts.Now()

	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[tenant]
	if !ok {
		b = &bucket{limit: lim, tokens: lim.Burst, last: now}
		l.buckets[tenant] = b
	}
	// Continuous refill since the last decision, capped at the burst.
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.limit.Rate
		if b.tokens > b.limit.Burst {
			b.tokens = b.limit.Burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		b.shed++
		return fmt.Errorf("%w: tenant %q over %.3g req/s (burst %.3g)",
			ErrShed, tenant, b.limit.Rate, b.limit.Burst)
	}
	b.tokens--
	b.admitted++
	return nil
}

// TenantStats is one tenant's lifetime admission counters.
type TenantStats struct {
	Admitted int64
	Shed     int64
}

// Stats snapshots the per-tenant decision counters (only tenants that
// have hit a bucket appear; unlimited tenants never do).
func (l *Limiter) Stats() map[string]TenantStats {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]TenantStats, len(l.buckets))
	for t, b := range l.buckets {
		out[t] = TenantStats{Admitted: b.admitted, Shed: b.shed}
	}
	return out
}

// Sheds returns the total number of shed requests across all tenants.
func (l *Limiter) Sheds() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, b := range l.buckets {
		total += b.shed
	}
	return total
}

// Tenants returns the tenants with a bucket, sorted.
func (l *Limiter) Tenants() []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.buckets))
	for t := range l.buckets {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
