package limits

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

type clock struct {
	mu  sync.Mutex
	now time.Time
}

func newClock() *clock { return &clock{now: time.Unix(5000, 0)} }

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBurstThenShed(t *testing.T) {
	clk := newClock()
	l := New(Options{Default: Limit{Rate: 10, Burst: 3}, Now: clk.Now})
	for i := 0; i < 3; i++ {
		if err := l.Allow("acme"); err != nil {
			t.Fatalf("request %d shed within burst: %v", i, err)
		}
	}
	err := l.Allow("acme")
	if !errors.Is(err, ErrShed) {
		t.Fatalf("request past burst = %v, want ErrShed", err)
	}
	if !strings.Contains(err.Error(), `"acme"`) {
		t.Fatalf("shed error %q does not name the tenant", err)
	}
	st := l.Stats()["acme"]
	if st.Admitted != 3 || st.Shed != 1 {
		t.Fatalf("stats = %+v, want 3 admitted / 1 shed", st)
	}
}

func TestRefillOverTime(t *testing.T) {
	clk := newClock()
	l := New(Options{Default: Limit{Rate: 10, Burst: 2}, Now: clk.Now})
	if err := l.Allow("a"); err != nil {
		t.Fatal(err)
	}
	if err := l.Allow("a"); err != nil {
		t.Fatal(err)
	}
	if err := l.Allow("a"); !errors.Is(err, ErrShed) {
		t.Fatalf("bucket not empty after burst: %v", err)
	}
	// 100ms at 10/s refills exactly one token.
	clk.Advance(100 * time.Millisecond)
	if err := l.Allow("a"); err != nil {
		t.Fatalf("refilled token refused: %v", err)
	}
	if err := l.Allow("a"); !errors.Is(err, ErrShed) {
		t.Fatal("second request admitted on one refilled token")
	}
	// A long idle period refills only to the burst cap.
	clk.Advance(time.Hour)
	for i := 0; i < 2; i++ {
		if err := l.Allow("a"); err != nil {
			t.Fatalf("burst after idle, request %d: %v", i, err)
		}
	}
	if err := l.Allow("a"); !errors.Is(err, ErrShed) {
		t.Fatal("burst cap not enforced after idle refill")
	}
}

func TestTenantIsolation(t *testing.T) {
	clk := newClock()
	l := New(Options{Default: Limit{Rate: 1, Burst: 1}, Now: clk.Now})
	if err := l.Allow("noisy"); err != nil {
		t.Fatal(err)
	}
	if err := l.Allow("noisy"); !errors.Is(err, ErrShed) {
		t.Fatal("noisy tenant not shed")
	}
	// The quiet tenant's bucket is untouched by the noisy one.
	if err := l.Allow("quiet"); err != nil {
		t.Fatalf("quiet tenant shed by noisy tenant's traffic: %v", err)
	}
}

func TestPerTenantOverrides(t *testing.T) {
	clk := newClock()
	l := New(Options{
		Default:   Limit{Rate: 1, Burst: 1},
		PerTenant: map[string]Limit{"vip": {Rate: 100, Burst: 10}, "free": {Rate: 0}},
		Now:       clk.Now,
	})
	for i := 0; i < 10; i++ {
		if err := l.Allow("vip"); err != nil {
			t.Fatalf("vip request %d shed: %v", i, err)
		}
	}
	// Rate <= 0 override means unlimited, not zero.
	for i := 0; i < 50; i++ {
		if err := l.Allow("free"); err != nil {
			t.Fatalf("unlimited override shed: %v", err)
		}
	}
	if err := l.Allow("other"); err != nil {
		t.Fatal(err)
	}
	if err := l.Allow("other"); !errors.Is(err, ErrShed) {
		t.Fatal("default limit not applied to non-overridden tenant")
	}
}

func TestUnlimitedDefaultAdmitsEverything(t *testing.T) {
	l := New(Options{})
	for i := 0; i < 100; i++ {
		if err := l.Allow("anyone"); err != nil {
			t.Fatalf("unlimited limiter shed: %v", err)
		}
	}
	if got := l.Tenants(); len(got) != 0 {
		t.Fatalf("unlimited tenants created buckets: %v", got)
	}
}

func TestNilLimiterAdmitsEverything(t *testing.T) {
	var l *Limiter
	if err := l.Allow("x"); err != nil {
		t.Fatalf("nil limiter shed: %v", err)
	}
	if l.Sheds() != 0 || l.Stats() != nil || l.Tenants() != nil {
		t.Fatal("nil limiter stats not empty")
	}
}

func TestEmptyTenantSharesAnonymousBucket(t *testing.T) {
	clk := newClock()
	l := New(Options{Default: Limit{Rate: 1, Burst: 1}, Now: clk.Now})
	if err := l.Allow(""); err != nil {
		t.Fatal(err)
	}
	if err := l.Allow(""); !errors.Is(err, ErrShed) {
		t.Fatal("anonymous traffic bypassed admission control")
	}
	if got := l.Tenants(); len(got) != 1 || got[0] != DefaultTenant {
		t.Fatalf("Tenants = %v, want [%s]", got, DefaultTenant)
	}
}

func TestBurstDefaultsToRate(t *testing.T) {
	clk := newClock()
	l := New(Options{Default: Limit{Rate: 5}, Now: clk.Now})
	for i := 0; i < 5; i++ {
		if err := l.Allow("t"); err != nil {
			t.Fatalf("request %d within default burst shed: %v", i, err)
		}
	}
	if err := l.Allow("t"); !errors.Is(err, ErrShed) {
		t.Fatal("burst did not default to Rate")
	}
	// Sub-1 rates still get a usable burst of 1.
	l2 := New(Options{Default: Limit{Rate: 0.5}, Now: clk.Now})
	if err := l2.Allow("t"); err != nil {
		t.Fatalf("rate<1 tenant has no burst: %v", err)
	}
}

func TestShedsTotal(t *testing.T) {
	clk := newClock()
	l := New(Options{Default: Limit{Rate: 1, Burst: 1}, Now: clk.Now})
	for _, tenant := range []string{"a", "a", "b", "b", "b"} {
		_ = l.Allow(tenant)
	}
	if got := l.Sheds(); got != 3 { // a: 1 admitted 1 shed; b: 1 admitted 2 shed
		t.Fatalf("Sheds = %d, want 3", got)
	}
}

func TestConcurrentAllow(t *testing.T) {
	clk := newClock()
	l := New(Options{Default: Limit{Rate: 1, Burst: 100}, Now: clk.Now})
	var wg sync.WaitGroup
	admitted := make([]int64, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := l.Allow("shared"); err == nil {
					admitted[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, n := range admitted {
		total += n
	}
	// 400 concurrent requests against a 100-token bucket with no refill
	// (frozen clock): exactly 100 admitted, never more.
	if total != 100 {
		t.Fatalf("admitted %d of 400 against burst 100", total)
	}
}
