// Package controlplane is a minimal SELF-SERV control plane: it rolls a
// composite's validated routing plan and replica directory out to a
// fleet of host daemons over the hostapi admin protocol and flips the
// fleet to the new plan version only after every reachable host holds
// the complete snapshot (validate-then-swap).
//
// The control plane is a pure pusher. It sits on the ADMIN surface
// only: executions route peer-to-peer through the coordinators'
// transport and never consult the control plane, so hosts keep serving
// on their last-known-good configuration when the control plane is
// slow, partitioned, or dead (AdminCalls pins that property in tests,
// the same way the scale-out benchmark pins zero central RPCs).
//
// A rollout is version-stamped end to end:
//
//  1. Prepare: generate, validate, and COMPILE the plan locally, then
//     stamp it with a fresh monotonic version. A chart that does not
//     compile never touches a host.
//  2. Apply: upload every state's table to every reachable host of its
//     service, push the version-stamped replica directory, and only
//     then Activate the version fleet-wide. Each push is atomic per
//     host and hosts reject stale (older-version) pushes with 409, so
//     a retrying or racing control plane can never regress a host.
//
// A host that cannot be reached is skipped, not fatal: it keeps
// serving the previous version (data-plane autonomy) and frames that
// land on it for a version it never learned are re-routed one hop by
// the engine's stale-snapshot path. Apply fails — activating nothing,
// leaving the whole fleet on last-known-good — only when a state would
// end up with zero replicas.
package controlplane

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"selfserv/internal/hostapi"
	"selfserv/internal/message"
	"selfserv/internal/routing"
	"selfserv/internal/statechart"
)

// Release is one versioned rollout of a composite. Prepare fills the
// plan fields; Apply fills the fleet fields.
type Release struct {
	// Composite is the statechart name.
	Composite string
	// Version is the plan version stamped on every table, directory
	// push, and message of this release.
	Version uint64
	// Plan is the validated declarative routing plan (version-stamped).
	Plan *routing.Plan
	// Compiled is the plan's compiled execution form — what a wrapper
	// for this release executes (engine.NewCompiledWrapper).
	Compiled *routing.CompiledPlan
	// Peers is the replica directory pushed to the fleet: state ID (and
	// the wrapper ID) to coordinator transport addresses.
	Peers map[string][]string
	// Activated lists the admin URLs now serving this version.
	Activated []string
	// Skipped records hosts left on their last-known-good config and
	// why (unreachable, push rejected). They are not part of this
	// release's replica sets.
	Skipped map[string]error
}

// ControlPlane pushes releases to a fixed fleet of hostapi daemons.
type ControlPlane struct {
	calls atomic.Uint64

	mu sync.Mutex // lockorder:controlplane — guards versions/lastGood; never held across admin calls
	// hosts maps admin URL to its client; fixed at construction.
	hosts map[string]*hostapi.Client
	// order is the admin URLs in construction order (deterministic
	// iteration for tests and error reports).
	order []string
	// versions allocates monotonic plan versions per composite.
	versions map[string]uint64
	// lastGood is the newest fully-applied release per composite.
	lastGood map[string]*Release
}

// New builds a control plane over the given hostapi admin URLs. No
// host is contacted until Apply.
func New(adminURLs ...string) *ControlPlane {
	cp := &ControlPlane{
		hosts:    make(map[string]*hostapi.Client, len(adminURLs)),
		versions: map[string]uint64{},
		lastGood: map[string]*Release{},
	}
	for _, u := range adminURLs {
		if _, dup := cp.hosts[u]; dup {
			continue
		}
		cp.hosts[u] = &hostapi.Client{
			BaseURL:    u,
			HTTPClient: &http.Client{Transport: countingTransport{&cp.calls, http.DefaultTransport}},
		}
		cp.order = append(cp.order, u)
	}
	return cp
}

// countingTransport counts every admin request the control plane
// issues. Tests assert the count stays flat while instances execute:
// the control plane is never in the hot path.
type countingTransport struct {
	n    *atomic.Uint64
	base http.RoundTripper
}

func (t countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	t.n.Add(1)
	return t.base.RoundTrip(r)
}

// AdminCalls reports the total admin requests issued so far (including
// failed ones). Executions must never move this counter.
func (cp *ControlPlane) AdminCalls() uint64 { return cp.calls.Load() }

// LastKnownGood returns the newest fully-applied release of the
// composite, or nil if none has been applied.
func (cp *ControlPlane) LastKnownGood(composite string) *Release {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.lastGood[composite]
}

// Prepare validates and compiles the chart locally and stamps the plan
// with a fresh version. Nothing is pushed: a chart that fails
// validation or compilation is rejected before any host is touched,
// and the caller gets the compiled plan early enough to start a
// version-pinned wrapper before Apply announces its address.
func (cp *ControlPlane) Prepare(sc *statechart.Statechart) (*Release, error) {
	plan, err := routing.Generate(sc)
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	cp.mu.Lock()
	cp.versions[sc.Name]++
	version := cp.versions[sc.Name]
	cp.mu.Unlock()
	plan.SetVersion(version)
	compiled, err := routing.CompilePlan(plan)
	if err != nil {
		return nil, err
	}
	return &Release{
		Composite: sc.Name,
		Version:   version,
		Plan:      plan,
		Compiled:  compiled,
		Skipped:   map[string]error{},
	}, nil
}

// Apply rolls the prepared release out: tables to every reachable host
// of each state's service, the version-stamped replica directory to
// the whole fleet, then a fleet-wide Activate. wrapperAddr, when
// non-empty, is published as the release's wrapper endpoint.
//
// Unreachable or rejecting hosts land in rel.Skipped and keep serving
// last-known-good. Apply returns an error — without activating the
// version anywhere — only when some state would have zero replicas.
func (cp *ControlPlane) Apply(rel *Release, wrapperAddr string) error {
	if rel.Skipped == nil {
		rel.Skipped = map[string]error{}
	}
	// Discover each host's services and coordinator address. A host
	// that fails /info is skipped for the whole release.
	type hostInfo struct {
		url       string
		client    *hostapi.Client
		coordAddr string
		services  map[string]bool
	}
	var fleet []hostInfo
	for _, u := range cp.order {
		info, err := cp.hosts[u].Info()
		if err != nil {
			rel.Skipped[u] = err
			continue
		}
		services := make(map[string]bool, len(info.Services))
		for _, svc := range info.Services {
			services[svc] = true
		}
		fleet = append(fleet, hostInfo{u, cp.hosts[u], info.CoordAddr, services})
	}

	// Upload tables. installed remembers (host, state) pairs for the
	// unwind path; peers accumulates the replica directory.
	ids := make([]string, 0, len(rel.Plan.Tables))
	for id := range rel.Plan.Tables {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	type step struct {
		client *hostapi.Client
		state  string
	}
	var installed []step
	unwind := func() {
		for i := len(installed) - 1; i >= 0; i-- {
			_ = installed[i].client.Uninstall(rel.Composite, installed[i].state, rel.Version)
		}
	}
	peers := map[string][]string{}
	for _, id := range ids {
		tbl := rel.Plan.Tables[id]
		for i := range fleet {
			h := &fleet[i]
			if !h.services[tbl.Service] || rel.Skipped[h.url] != nil {
				continue
			}
			if err := h.client.Install(rel.Composite, tbl); err != nil {
				// Drop the whole host, not just this state: a host
				// holding half a version must never activate it.
				rel.Skipped[h.url] = err
				kept := installed[:0]
				for _, st := range installed {
					if st.client != h.client {
						kept = append(kept, st)
					} else {
						_ = st.client.Uninstall(rel.Composite, st.state, rel.Version)
					}
				}
				installed = kept
				continue
			}
			installed = append(installed, step{h.client, id})
			peers[id] = append(peers[id], h.coordAddr)
		}
		if len(peers[id]) == 0 {
			unwind()
			return fmt.Errorf("controlplane: %s v%d: state %q (service %q) has no reachable replica; fleet stays on last-known-good",
				rel.Composite, rel.Version, id, tbl.Service)
		}
	}
	if wrapperAddr != "" {
		peers[message.WrapperID] = []string{wrapperAddr}
	}
	rel.Peers = peers

	// Push the directory, then activate — only on hosts that hold their
	// complete slice of the release. Both pushes are version-stamped;
	// the host rejects anything older than what it already applied.
	for i := range fleet {
		h := &fleet[i]
		if rel.Skipped[h.url] != nil {
			continue
		}
		if err := h.client.PushReplicaDirectoryV(rel.Composite, rel.Version, peers); err != nil {
			rel.Skipped[h.url] = err
			continue
		}
		if err := h.client.Activate(rel.Composite, rel.Version); err != nil {
			rel.Skipped[h.url] = err
			continue
		}
		rel.Activated = append(rel.Activated, h.url)
	}
	if len(rel.Activated) == 0 {
		unwind()
		return fmt.Errorf("controlplane: %s v%d: no host activated the release; fleet stays on last-known-good", rel.Composite, rel.Version)
	}
	cp.mu.Lock()
	cp.lastGood[rel.Composite] = rel
	cp.mu.Unlock()
	return nil
}

// Rollout is Prepare followed by Apply — the one-call path when the
// wrapper address is already known (or there is no remote wrapper).
func (cp *ControlPlane) Rollout(sc *statechart.Statechart, wrapperAddr string) (*Release, error) {
	rel, err := cp.Prepare(sc)
	if err != nil {
		return nil, err
	}
	if err := cp.Apply(rel, wrapperAddr); err != nil {
		return nil, err
	}
	return rel, nil
}

// Recover replays the durability journal on every host of the fleet —
// the second half of recovery-aware activation. The restart playbook
// for a durable fleet (docs/durability.md) is: bring the daemons back
// up over their journal directories, Apply (or Rollout) the composite
// so every host holds its tables and the release is ACTIVATED, then
// Recover so each daemon replays its journal into live coordinators.
// Replay before activation would rebuild instances with nowhere to
// land; the order is enforced by convention here, by commit-point
// replay idempotency on the daemon.
//
// Journal-less daemons (409) are skipped, not fatal: a mixed fleet
// recovers whatever was durable. Unreachable hosts and failed replays
// are collected into the returned error; the per-host outcomes are in
// the returned map regardless.
func (cp *ControlPlane) Recover() (map[string]*hostapi.RecoveryStatus, error) {
	statuses := make(map[string]*hostapi.RecoveryStatus, len(cp.order))
	var errs []error
	for _, u := range cp.order {
		st, err := cp.hosts[u].Recover()
		if st != nil {
			statuses[u] = st
		}
		if err != nil {
			if st == nil {
				// Distinguish "runs journal-less" (a clean 409 with no
				// status body) from a real failure by probing the status
				// endpoint; an unreachable host fails that too.
				if probe, perr := cp.hosts[u].RecoveryStatus(); perr == nil && !probe.Configured {
					statuses[u] = probe
					continue
				}
			}
			errs = append(errs, fmt.Errorf("%s: %w", u, err))
		}
	}
	return statuses, errors.Join(errs...)
}

// Retire drops a drained version from the fleet (coordinators and
// routes). Best-effort: unreachable hosts are collected into the
// returned error but do not stop the sweep — they will reject nothing,
// they simply never learn, and their stale coordinators go when the
// host restarts or a later retire reaches them.
func (cp *ControlPlane) Retire(composite string, version uint64) error {
	var errs []error
	for _, u := range cp.order {
		if err := cp.hosts[u].Retire(composite, version); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
