package controlplane

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"selfserv/internal/engine"
	"selfserv/internal/hostapi"
	"selfserv/internal/service"
	"selfserv/internal/statechart"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

// daemon simulates one hostd process: a coordinator host on the shared
// in-memory network plus its own admin HTTP server and directory.
type daemon struct {
	host  *engine.Host
	dir   *engine.Directory
	admin *httptest.Server
}

// incr is the chain workload's step: x -> x+1.
func incr(_ context.Context, params map[string]string) (map[string]string, error) {
	x, err := strconv.Atoi(params["x"])
	if err != nil {
		return nil, fmt.Errorf("bad x %q: %w", params["x"], err)
	}
	return map[string]string{"x": strconv.Itoa(x + 1)}, nil
}

// newDaemon's registry holds EXACTLY svc<svcIndex> — each daemon is one
// component service's host, the way a real fleet partitions providers.
func newDaemon(t *testing.T, net transport.Network, addr string, svcIndex int) *daemon {
	t.Helper()
	reg := service.NewRegistry()
	s := service.NewSimulated(fmt.Sprintf("svc%d", svcIndex), service.SimulatedOptions{})
	s.Handle("run", incr)
	reg.Register(s)
	dir := engine.NewDirectory()
	h, err := engine.NewHost(net, addr, reg, dir, engine.HostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	admin := httptest.NewServer(hostapi.NewServer(h, dir, reg.Names))
	t.Cleanup(admin.Close)
	return &daemon{host: h, dir: dir, admin: admin}
}

// deployWrapper runs one release end to end the way a caller does:
// start a wrapper on the compiled plan (so its address exists), Apply
// the release announcing that address, then seed the wrapper's own
// directory from the resolved peer set.
func deployWrapper(t *testing.T, cp *ControlPlane, net transport.Network, addr string, rel *Release) *engine.Wrapper {
	t.Helper()
	wdir := engine.NewDirectory()
	w, err := engine.NewCompiledWrapper(net, addr, wdir, rel.Compiled, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	if err := cp.Apply(rel, w.Addr()); err != nil {
		t.Fatal(err)
	}
	for id, addrs := range rel.Peers {
		wdir.SetReplicasV(rel.Composite, rel.Version, id, addrs)
	}
	wdir.SetCurrent(rel.Composite, rel.Version)
	return w
}

func execute(t *testing.T, w *engine.Wrapper) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	out, err := w.Execute(ctx, map[string]string{"x": "0"})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return out["x"]
}

// TestRolloutAndRedeploy drives the full control-plane lifecycle:
// validate-then-swap rollout, executions off the hot path, a second
// versioned rollout with the first still serving, and retirement.
func TestRolloutAndRedeploy(t *testing.T) {
	sc := workload.Chain(2)
	net := transport.NewInMem(transport.InMemOptions{})
	defer net.Close()
	d1 := newDaemon(t, net, "coord-1", 1) // svc1
	d2 := newDaemon(t, net, "coord-2", 2) // svc2
	cp := New(d1.admin.URL, d2.admin.URL)

	rel1, err := cp.Prepare(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rel1.Version != 1 {
		t.Fatalf("first release version = %d, want 1", rel1.Version)
	}
	w1 := deployWrapper(t, cp, net, "wrapper-1", rel1)
	if len(rel1.Skipped) != 0 {
		t.Fatalf("skipped hosts on a healthy fleet: %v", rel1.Skipped)
	}
	if got := execute(t, w1); got != "2" {
		t.Fatalf("x = %q, want 2", got)
	}

	// The control plane is never in the hot path: executing more
	// instances issues zero admin calls.
	before := cp.AdminCalls()
	for i := 0; i < 5; i++ {
		if got := execute(t, w1); got != "2" {
			t.Fatalf("x = %q, want 2", got)
		}
	}
	if after := cp.AdminCalls(); after != before {
		t.Fatalf("executions issued %d admin calls; the control plane must stay off the hot path", after-before)
	}

	// v2 rollout while v1 keeps serving.
	rel2, err := cp.Prepare(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Version != 2 {
		t.Fatalf("second release version = %d, want 2", rel2.Version)
	}
	w2 := deployWrapper(t, cp, net, "wrapper-2", rel2)
	if got := execute(t, w2); got != "2" {
		t.Fatalf("v2 x = %q, want 2", got)
	}
	// v1 instances still run on v1 — its coordinators are not retired.
	if got := execute(t, w1); got != "2" {
		t.Fatalf("v1 after v2 activation: x = %q, want 2", got)
	}
	if lkg := cp.LastKnownGood(sc.Name); lkg == nil || lkg.Version != 2 {
		t.Fatalf("LastKnownGood = %+v, want v2", lkg)
	}
	if cur := d1.dir.Current(sc.Name); cur != 2 {
		t.Fatalf("daemon current version = %d, want 2", cur)
	}

	// Retire v1 once drained: its routes and coordinators leave.
	if err := cp.Retire(sc.Name, 1); err != nil {
		t.Fatal(err)
	}
	for _, d := range []*daemon{d1, d2} {
		for _, v := range d.dir.Versions(sc.Name) {
			if v == 1 {
				t.Fatalf("v1 still routable on %s after retire", d.host.Addr())
			}
		}
	}
	if got := execute(t, w2); got != "2" {
		t.Fatalf("v2 after retiring v1: x = %q, want 2", got)
	}
}

// TestApplyFailureKeepsLastKnownGood loses a host mid-fleet: the
// rollout that needs it must fail without activating anything, and the
// fleet — including with the control plane dead afterwards — keeps
// serving the last-known-good version.
func TestApplyFailureKeepsLastKnownGood(t *testing.T) {
	sc := workload.Chain(2)
	net := transport.NewInMem(transport.InMemOptions{})
	defer net.Close()
	d1 := newDaemon(t, net, "coord-1", 1)
	d2 := newDaemon(t, net, "coord-2", 2)
	cp := New(d1.admin.URL, d2.admin.URL)

	rel1, err := cp.Prepare(sc)
	if err != nil {
		t.Fatal(err)
	}
	w1 := deployWrapper(t, cp, net, "wrapper-1", rel1)
	if got := execute(t, w1); got != "2" {
		t.Fatalf("x = %q, want 2", got)
	}

	// svc2's only host stops answering the ADMIN surface (its
	// coordinator transport stays up — the process is partitioned from
	// the control plane, not from its peers).
	d2.admin.Close()

	rel2, err := cp.Prepare(sc)
	if err != nil {
		t.Fatal(err)
	}
	err = cp.Apply(rel2, w1.Addr())
	if err == nil {
		t.Fatal("Apply succeeded with a service's only host unreachable")
	}
	if !strings.Contains(err.Error(), "last-known-good") {
		t.Fatalf("Apply error = %v", err)
	}
	if len(rel2.Activated) != 0 {
		t.Fatalf("failed rollout activated hosts: %v", rel2.Activated)
	}
	if lkg := cp.LastKnownGood(sc.Name); lkg == nil || lkg.Version != rel1.Version {
		t.Fatalf("LastKnownGood = %+v, want v%d", lkg, rel1.Version)
	}
	if cur := d1.dir.Current(sc.Name); cur != rel1.Version {
		t.Fatalf("reachable host moved to %d during a failed rollout", cur)
	}

	// Data-plane autonomy: with the control plane unable to reach half
	// the fleet (or gone entirely), v1 executions still complete.
	for i := 0; i < 3; i++ {
		if got := execute(t, w1); got != "2" {
			t.Fatalf("execution %d with control plane degraded: x = %q", i, got)
		}
	}
}

// TestPrepareRejectsInvalidChart pins validate-then-swap: a chart that
// fails validation never produces a release (and so never touches a
// host).
func TestPrepareRejectsInvalidChart(t *testing.T) {
	cp := New("http://127.0.0.1:1")
	sc := workload.Chain(2)
	sc.Root.Transitions = append(sc.Root.Transitions, statechart.Transition{From: "s1", To: "missing"})
	if _, err := cp.Prepare(sc); err == nil {
		t.Fatal("Prepare accepted an invalid chart")
	}
	if cp.AdminCalls() != 0 {
		t.Fatalf("Prepare touched a host: %d admin calls", cp.AdminCalls())
	}
}
