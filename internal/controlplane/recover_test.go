package controlplane

// Recovery-aware activation (docs/durability.md): a durable daemon that
// died mid-execution comes back empty; the control plane re-applies the
// last-known-good release (tables + directory + activation) and THEN
// broadcasts /recover, so the daemon's journal replay finds live
// coordinators to rebuild its instances into and the interrupted
// composite completes.

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"selfserv/internal/engine"
	"selfserv/internal/hostapi"
	"selfserv/internal/journal"
	"selfserv/internal/service"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

// durableDaemon is a hostd-shaped process with a durability journal and
// the /recover hook wired the way cmd/hostd wires it.
type durableDaemon struct {
	host  *engine.Host
	dir   *engine.Directory
	jnl   *journal.Journal
	admin *httptest.Server
}

func newDurableDaemon(t *testing.T, net transport.Network, addr string, reg *service.Registry, jdir string) *durableDaemon {
	t.Helper()
	j, err := journal.Open(journal.Options{Dir: jdir, Fsync: journal.FsyncOff})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	dir := engine.NewDirectory()
	h, err := engine.NewHost(net, addr, reg, dir, engine.HostOptions{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	srv := hostapi.NewServer(h, dir, reg.Names)
	srv.SetRecoverFunc(func(ctx context.Context) (engine.RecoveryStats, error) {
		return engine.Recover(ctx, j, []*engine.Host{h}, nil)
	})
	admin := httptest.NewServer(srv)
	d := &durableDaemon{host: h, dir: dir, jnl: j, admin: admin}
	t.Cleanup(d.crash)
	return d
}

// crash kills the daemon the way a process death would: endpoints and
// journal close, nothing drains. Safe to call twice.
func (d *durableDaemon) crash() {
	d.admin.Close()
	d.host.Close()
	d.jnl.Close()
}

// TestRecoverBroadcastMixedFleet: Recover sweeps the whole fleet,
// replaying durable daemons and skipping journal-less ones (409) as a
// non-error — a mixed fleet recovers whatever was durable.
func TestRecoverBroadcastMixedFleet(t *testing.T) {
	net := transport.NewInMem(transport.InMemOptions{})
	defer net.Close()
	d1 := newDaemon(t, net, "coord-1", 1) // journal-less
	reg := service.NewRegistry()
	s := service.NewSimulated("svc2", service.SimulatedOptions{})
	s.Handle("run", incr)
	reg.Register(s)
	dd := newDurableDaemon(t, net, "coord-2", reg, t.TempDir())

	cp := New(d1.admin.URL, dd.admin.URL)
	statuses, err := cp.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if st := statuses[d1.admin.URL]; st == nil || st.Configured {
		t.Fatalf("journal-less daemon status = %+v, want unconfigured skip", st)
	}
	if st := statuses[dd.admin.URL]; st == nil || !st.Ran || st.Error != "" {
		t.Fatalf("durable daemon status = %+v, want a clean replay", st)
	}
}

// TestRecoverAfterDaemonRestart is the fleet-level crash-recovery
// drill: svc2's daemon dies while svc2 is mid-invocation, restarts over
// the same journal directory, the control plane re-applies the SAME
// release (same plan version — what the journal records name) and
// broadcasts /recover, and the interrupted Chain(2) execution — whose
// wrapper never died — completes with exactly one svc2 invocation per
// life.
func TestRecoverAfterDaemonRestart(t *testing.T) {
	sc := workload.Chain(2)
	net := transport.NewInMem(transport.InMemOptions{})
	defer net.Close()
	jdir := t.TempDir()

	d1 := newDaemon(t, net, "coord-1", 1) // svc1, journal-less

	// Life A of svc2's daemon: the provider blocks mid-invocation so the
	// crash lands with the invocation in doubt (arrival journaled, round
	// not).
	regA := service.NewRegistry()
	svc2a := service.NewSimulated("svc2", service.SimulatedOptions{})
	reached := make(chan struct{})
	gate := make(chan struct{})
	defer close(gate) // release the zombie handler at test end
	var once sync.Once
	svc2a.Handle("run", func(ctx context.Context, p map[string]string) (map[string]string, error) {
		once.Do(func() { close(reached) })
		<-gate
		return incr(ctx, p)
	})
	regA.Register(svc2a)
	ddA := newDurableDaemon(t, net, "coord-2", regA, jdir)

	cp := New(d1.admin.URL, ddA.admin.URL)
	rel, err := cp.Prepare(sc)
	if err != nil {
		t.Fatal(err)
	}
	w1 := deployWrapper(t, cp, net, "wrapper-1", rel)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	type result struct {
		out map[string]string
		err error
	}
	done := make(chan result, 1)
	go func() {
		out, err := w1.ExecuteInstance(ctx, "r-1", map[string]string{"x": "0"})
		done <- result{out, err}
	}()
	select {
	case <-reached:
	case <-ctx.Done():
		t.Fatal("svc2 never reached")
	}
	ddA.crash()

	// Life B: fresh daemon, fresh provider objects, same journal
	// directory, same coordination address.
	regB := service.NewRegistry()
	svc2b := service.NewSimulated("svc2", service.SimulatedOptions{})
	svc2b.Handle("run", incr)
	regB.Register(svc2b)
	ddB := newDurableDaemon(t, net, "coord-2", regB, jdir)

	// Recovery-aware activation: re-apply the SAME release so the
	// restarted daemon holds v1's tables and routes, then replay.
	cp2 := New(d1.admin.URL, ddB.admin.URL)
	if err := cp2.Apply(rel, w1.Addr()); err != nil {
		t.Fatalf("re-apply after restart: %v", err)
	}
	statuses, err := cp2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	st := statuses[ddB.admin.URL]
	if st == nil || !st.Ran || st.Stats.Coordinators == 0 {
		t.Fatalf("restarted daemon replayed nothing: %+v", st)
	}

	res := <-done
	if res.err != nil {
		t.Fatalf("interrupted execution failed: %v", res.err)
	}
	if res.out["x"] != "2" {
		t.Fatalf("x = %q, want 2", res.out["x"])
	}
	if inv, _, _ := svc2a.Counters(); inv != 1 {
		t.Errorf("life A svc2 invoked %d times, want 1 (in doubt at the kill)", inv)
	}
	if inv, _, _ := svc2b.Counters(); inv != 1 {
		t.Errorf("life B svc2 invoked %d times, want 1 (the recovery re-execution)", inv)
	}
}
