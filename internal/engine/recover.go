package engine

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"selfserv/internal/journal"
	"selfserv/internal/message"
	"selfserv/internal/service"
)

// This file implements crash recovery: rebuilding the in-flight
// instances a dead process left in its journal and driving them to
// completion (docs/durability.md). The contract is exactly-once at the
// provider boundary and at-least-once on the wire:
//
//   - Every invocation that COMPLETED before the crash is primed back
//     into the provider's service.Idempotent cache under its original
//     key, so a re-fired round replays the cached response instead of
//     executing the operation again.
//   - Every outbound message of a journaled round is REDELIVERED —
//     conservatively, because the journal cannot know which sends
//     reached the wire before the crash — and the receivers'
//     per-source sequence marks (coordInstance.lastSeen) drop the ones
//     the first life already applied.
//
// Recovery runs after the restarted fleet has re-installed its routing
// tables and re-registered its providers: replayed records whose
// (composite, state, version) has no coordinator are counted as skipped
// rather than failing the whole replay, so a partial redeploy degrades
// visibly instead of fatally. Addresses are NOT taken from the journal —
// a restarted fleet listens somewhere new — every redelivery re-resolves
// its logical peer through the live directory.

// RecoveryStats summarizes one journal replay.
type RecoveryStats struct {
	// Coordinators is the number of live coordinator instances rebuilt
	// into RAM (and re-checked for satisfiable clauses).
	Coordinators int
	// Wrappers is the number of wrapper executions rebuilt; unfinished
	// ones had their start phase re-sent and run to completion.
	Wrappers int
	// Passive is the number of instances left passivated on disk (their
	// next frame rehydrates them; recovery does not touch them).
	Passive int
	// Finished is the number of journaled executions that had already
	// completed (wrapper done records) and were not rebuilt.
	Finished int
	// Redelivered is the number of outbound messages re-sent from
	// journaled rounds and start phases.
	Redelivered int
	// Primed is the number of completed invocation outcomes seeded into
	// idempotency caches.
	Primed int
	// Skipped is the number of journal records that had no installed
	// coordinator or wrapper to replay into (plan not redeployed, or
	// redeployed under a different version).
	Skipped int
}

func (s RecoveryStats) String() string {
	return fmt.Sprintf("coords=%d wrappers=%d passive=%d finished=%d redelivered=%d primed=%d skipped=%d",
		s.Coordinators, s.Wrappers, s.Passive, s.Finished, s.Redelivered, s.Primed, s.Skipped)
}

// replayedCoord accumulates one coordinator instance's journaled life.
type replayedCoord struct {
	c       *coordinator
	id      string
	inst    *coordInstance
	msgs    []journal.OutMsg // outbound messages owed redelivery
	invokes []*journal.Record
	passive bool // last effective record was a passivation
}

// replayedWrap accumulates one wrapper execution's journaled life.
type replayedWrap struct {
	w        *Wrapper
	id       string
	inputs   map[string]string
	arrivals []*journal.Record
	done     bool
}

// Recover replays j into the given hosts and wrappers. It must run
// after tables are installed and providers registered, and before (or
// concurrently with — the engine's locking covers it) new traffic.
func Recover(ctx context.Context, j *journal.Journal, hosts []*Host, wrappers []*Wrapper) (RecoveryStats, error) {
	var stats RecoveryStats
	coords := map[string]*replayedCoord{}
	wraps := map[string]*replayedWrap{}

	findCoord := func(composite, state string, version uint64) *coordinator {
		for _, h := range hosts {
			if c := h.coordinatorFor(composite, state, version); c != nil {
				return c
			}
		}
		return nil
	}
	findWrap := func(composite string, version uint64) *Wrapper {
		for _, w := range wrappers {
			if w.plan.Composite == composite && w.compiled.Version == version {
				return w
			}
		}
		return nil
	}

	err := j.Replay(func(r *journal.Record) error {
		switch r.Kind {
		case journal.KindWStart, journal.KindWArrival, journal.KindWDone:
			key := r.Composite + "\x00" + strconv.FormatUint(r.Version, 10) + "\x00" + r.Instance
			rw := wraps[key]
			if rw == nil {
				w := findWrap(r.Composite, r.Version)
				if w == nil {
					stats.Skipped++
					return nil
				}
				rw = &replayedWrap{w: w, id: r.Instance}
				wraps[key] = rw
			}
			switch r.Kind {
			case journal.KindWStart:
				rw.inputs = r.Vars
			case journal.KindWArrival:
				rw.arrivals = append(rw.arrivals, r)
			case journal.KindWDone:
				rw.done = true
			}
			return nil
		}

		key := r.Composite + "\x00" + r.State + "\x00" + strconv.FormatUint(r.Version, 10) + "\x00" + r.Instance
		rc := coords[key]
		if rc == nil {
			c := findCoord(r.Composite, r.State, r.Version)
			if c == nil {
				stats.Skipped++
				return nil
			}
			rc = &replayedCoord{c: c, id: r.Instance, inst: newReplayInstance(c)}
			coords[key] = rc
		}
		c, inst := rc.c, rc.inst
		// The replay instance is process-private until recovery installs
		// it into a shard, but the guarded-field contract is
		// machine-checked (selfservvet guardedby): take the uncontended
		// instance lock exactly as live commit points do.
		inst.mu.Lock()
		defer inst.mu.Unlock()
		switch r.Kind {
		case journal.KindArrival:
			rc.passive = false
			if idx, ok := c.table.SourceIndex(r.Src); ok {
				bag := inst.srcVars[idx]
				if bag == nil {
					bag = make(map[string]string, len(r.Vars))
					inst.srcVars[idx] = bag
				}
				for k, v := range r.Vars {
					bag[k] = v
				}
				inst.srcVer[idx]++
				inst.counts[idx]++
				inst.pending[idx>>6] |= 1 << (idx & 63)
				if r.Seq > inst.lastSeen[idx] {
					inst.lastSeen[idx] = r.Seq
				}
			} else {
				for k, v := range r.Vars {
					inst.base[k] = v
				}
			}
		case journal.KindInvoke:
			rc.invokes = append(rc.invokes, r)
		case journal.KindRound:
			rc.passive = false
			// Re-apply the round exactly as finish committed it: consume
			// the matched clause's counts, drop the bags the snapshot
			// absorbed, fold the results into base, and advance the
			// sequence counters. The round's sends are owed redelivery.
			for _, name := range r.Consumed {
				if idx, ok := c.table.SourceIndex(name); ok {
					if inst.counts[idx] > 0 {
						inst.counts[idx]--
					}
					if inst.counts[idx] == 0 {
						inst.pending[idx>>6] &^= 1 << (idx & 63)
					}
				}
			}
			for _, name := range r.Cleared {
				if idx, ok := c.table.SourceIndex(name); ok {
					inst.srcVars[idx] = nil
				}
			}
			for k, v := range r.Vars {
				inst.base[k] = v
			}
			inst.fireSeq = r.FireSeq
			inst.sendSeq = r.SendSeq
			inst.merged = nil
			rc.msgs = append(rc.msgs, r.Msgs...)
		case journal.KindSnapshot, journal.KindPassivate:
			// A snapshot/passivation record carries the WHOLE state: start
			// over from it. Accumulated sends survive a snapshot (the
			// snapshot lands in the same critical section as its round, so
			// that round's messages may still be unflushed) but not a
			// passivation (an idle instance has flushed everything).
			rc.inst = newReplayInstance(c)
			c.restoreLocked(rc.inst, r)
			rc.passive = r.Kind == journal.KindPassivate
			if rc.passive {
				rc.msgs = nil
			}
		}
		return nil
	})
	if err != nil {
		return stats, fmt.Errorf("engine: recovery replay: %w", err)
	}

	// Prime completed invocation outcomes into the providers' idempotency
	// caches BEFORE anything can re-fire.
	registries := map[*service.Registry]bool{}
	for _, h := range hosts {
		registries[h.registry] = true
	}
	for _, rc := range coords {
		for _, inv := range rc.invokes {
			if primeInvoke(registries, inv) {
				stats.Primed++
			}
		}
	}

	// Seat the rebuilt instances. No sends yet: every instance (and the
	// wrapper of every execution) must be reachable before the first
	// redelivered frame can land.
	var live []*replayedCoord
	for _, rc := range coords {
		if rc.passive {
			stats.Passive++
			continue
		}
		if rc.c.instances.insertCounted(rc.id, rc.inst) {
			live = append(live, rc)
			stats.Coordinators++
		}
	}
	var restored []*replayedWrap
	for _, rw := range wraps {
		if rw.done {
			stats.Finished++
			continue
		}
		if rw.inputs == nil {
			// Arrival records without a start record: the start was never
			// journaled, so the client never got past ExecuteInstance's
			// commit point — nothing to finish.
			stats.Skipped++
			continue
		}
		if rw.w.restoreInstance(rw) {
			restored = append(restored, rw)
			stats.Wrappers++
		}
	}

	// Redeliver. Every address is re-resolved through the live directory;
	// receivers dedup by (source, sequence).
	for _, rc := range live {
		c := rc.c
		for _, om := range rc.msgs {
			addr, found := c.host.dir.RouteV(c.composite, c.version, om.To, rc.id, om.Vars[TenantVar])
			if !found {
				c.host.logf("recover %s/%s: no address for peer %q of instance %s", c.composite, c.table.State, om.To, rc.id)
				continue
			}
			m := &message.Message{
				Type:      message.Type(om.Type),
				Composite: c.composite,
				Instance:  rc.id,
				From:      c.table.State,
				To:        om.To,
				Version:   c.version,
				Seq:       int(om.Seq),
				Vars:      om.Vars,
			}
			if err := c.host.sender.Send(ctx, addr, m); err != nil {
				c.host.logf("recover %s/%s: redelivery to %s failed: %v", c.composite, c.table.State, om.To, err)
				continue
			}
			stats.Redelivered++
		}
	}
	for _, rw := range restored {
		n, err := rw.w.resendStart(ctx, rw.id, rw.inputs)
		if err != nil {
			return stats, fmt.Errorf("engine: recovery restart of %s instance %s: %w", rw.w.plan.Composite, rw.id, err)
		}
		stats.Redelivered += n
	}

	// Finally, re-check every live instance's clauses: an instance whose
	// AND-join was already satisfied at crash time (arrivals journaled,
	// fire never finished) gets no new frame to wake it — this kick
	// re-fires it, and the primed idempotency keys make the re-fire
	// replay any invocation that had already completed.
	for _, rc := range live {
		rc.inst.mu.Lock()
		rc.c.maybeFireLocked(ctx, rc.id, rc.inst)
		rc.inst.mu.Unlock()
	}
	return stats, nil
}

// newReplayInstance builds an empty, hydrated coordInstance for replay.
func newReplayInstance(c *coordinator) *coordInstance {
	return &coordInstance{
		counts:   make([]uint32, c.table.NumSources()),
		pending:  make([]uint64, c.table.MaskWords()),
		base:     map[string]string{},
		srcVars:  make([]map[string]string, c.table.NumSources()),
		srcVer:   make([]uint32, c.table.NumSources()),
		lastSeen: make([]uint64, c.table.NumSources()),
		hydrated: true,
	}
}

// primeInvoke seeds one journaled invocation outcome into the
// service.Idempotent wrapper of its provider, wherever it sits in the
// provider's decorator chain. Reports whether a cache was found.
func primeInvoke(registries map[*service.Registry]bool, r *journal.Record) bool {
	primed := false
	for reg := range registries {
		prov, err := reg.Lookup(r.Service)
		if err != nil {
			continue
		}
		for prov != nil {
			if idem, ok := prov.(*service.Idempotent); ok {
				idem.Prime(r.Key, service.Response{Outputs: r.Outputs})
				primed = true
				break
			}
			u, ok := prov.(interface{ Unwrap() service.Provider })
			if !ok {
				break
			}
			prov = u.Unwrap()
		}
	}
	return primed
}

// restoreInstance rebuilds one crashed execution inside the wrapper:
// the instance is re-seated in the table and the in-flight gauge, its
// journaled termination notices re-applied, and a finalizer goroutine
// attached so the execution completes (journaled done record, gauge
// release) even if nobody calls WaitRecovered. Reports false for a
// duplicate ID.
func (w *Wrapper) restoreInstance(rw *replayedWrap) bool {
	inst := &wrapperInstance{
		done:    make(chan struct{}),
		pending: make([]uint64, w.compiled.FinishMaskWords()),
		base:    map[string]string{},
		srcVars: make([]map[string]string, w.compiled.NumFinishSources()),
	}
	for k, v := range rw.inputs {
		inst.base[k] = v
	}
	for _, a := range rw.arrivals {
		if a.Error != "" {
			inst.err = fmt.Errorf("%w: state %s: %s", ErrInstanceFault, a.Src, a.Error)
			inst.finished = true
			break
		}
		inst.mergeFrom(w, a.Src, a.Vars)
		inst.record(w, a.Src)
	}
	if !inst.finished && w.finishSatisfied(inst) {
		inst.finished = true
	}
	if inst.finished {
		close(inst.done)
	}
	if !w.instances.insert(rw.id, inst) {
		return false
	}
	// Recovered IDs must never collide with fresh Execute IDs: push the
	// allocator past any "i<n>" we restore, or a new execution would
	// reuse the ID and its frames would land on the recovered twin.
	if n, err := strconv.ParseInt(strings.TrimPrefix(rw.id, "i"), 10, 64); err == nil {
		for {
			cur := w.seq.Load()
			if cur >= n || w.seq.CompareAndSwap(cur, n) {
				break
			}
		}
	}
	if err := w.beginInstance(); err != nil {
		// Draining: the restored instance can still complete (the endpoint
		// is open), it just isn't tracked by the gauge.
		go func() { <-inst.done; w.journalDone(rw.id, inst.err) }()
		return true
	}
	go func() {
		<-inst.done
		w.journalDone(rw.id, inst.err)
		w.endInstance()
	}()
	return true
}

// resendStart re-runs the start phase of a recovered execution. The
// stamps are deterministic (startPhase), so receivers that saw the
// first life's start frames drop the duplicates. Returns the number of
// messages sent.
func (w *Wrapper) resendStart(ctx context.Context, id string, inputs map[string]string) (int, error) {
	box, err := w.startPhase(id, inputs)
	if err != nil {
		return 0, err
	}
	if err := box.flush(ctx, w.sender); err != nil {
		return 0, err
	}
	return box.msgs(), nil
}

// Recovered lists the IDs of instances currently in the wrapper's table
// — after a Recover, the rebuilt executions a caller can WaitRecovered
// on.
func (w *Wrapper) Recovered() []string {
	var ids []string
	w.instances.forEach(func(id string, _ *wrapperInstance) {
		ids = append(ids, id)
	})
	return ids
}

// WaitRecovered blocks until a recovery-restored instance terminates
// and returns its projected outputs — completing, on behalf of the new
// process, the Execute call the crash interrupted. The instance stays
// in the table (the attached finalizer owns the gauge), so concurrent
// waiters all get the result.
func (w *Wrapper) WaitRecovered(ctx context.Context, id string) (map[string]string, error) {
	inst, ok := w.instances.get(id)
	if !ok {
		return nil, fmt.Errorf("engine: composite %q: no recovered instance %q", w.plan.Composite, id)
	}
	select {
	case <-inst.done:
	case <-ctx.Done():
		return nil, fmt.Errorf("engine: composite %q instance %s: %w", w.plan.Composite, id, ctx.Err())
	}
	inst.mu.Lock()
	err := inst.err
	final := inst.mergedVars(w)
	inst.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return w.projectOutputs(final), nil
}
