// Package engine executes composite services. It provides the paper's
// peer-to-peer provisioning model — state coordinators co-located with
// their component services, exchanging notifications according to
// precompiled routing tables — plus a centralized baseline orchestrator
// (the architecture the paper argues against) used as the comparator in
// experiments E3/E7.
//
// The pieces:
//
//   - Host (host.go): runs the coordinators of the states whose services
//     live on that node, and answers remote invocation requests.
//   - Wrapper (wrapper.go): the composite service's client-facing shim;
//     starts instances and collects termination notices.
//   - Central (central.go): the baseline hub orchestrator that keeps all
//     control flow on one node.
//
// All components speak the message vocabulary of package message over any
// transport.Network, so the same code runs in-process (tests, benchmarks)
// and over TCP (examples, cmd/hostd).
package engine

import (
	"errors"
	"fmt"
	"sync"

	"selfserv/internal/expr"
	"selfserv/internal/message"
)

// ErrInstanceFault reports that a composite execution failed; the cause
// is in the message carried by the fault.
var ErrInstanceFault = errors.New("engine: instance fault")

// ErrUnknownComposite reports a start request for an undeployed service.
var ErrUnknownComposite = errors.New("engine: unknown composite")

// Directory maps (composite, peer ID) to the transport address hosting
// that peer. Peer IDs are state IDs plus message.WrapperID. It is the
// runtime equivalent of the "location" column the paper stores in routing
// tables; the deployer fills it during deployment.
type Directory struct {
	mu    sync.RWMutex
	addrs map[string]map[string]string
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{addrs: map[string]map[string]string{}}
}

// Set records that peer id of composite lives at addr.
func (d *Directory) Set(composite, id, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	byID, ok := d.addrs[composite]
	if !ok {
		byID = map[string]string{}
		d.addrs[composite] = byID
	}
	byID[id] = addr
}

// Lookup resolves the address of peer id within composite.
func (d *Directory) Lookup(composite, id string) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	addr, ok := d.addrs[composite][id]
	return addr, ok
}

// Peers returns a copy of the peer->address map for composite.
func (d *Directory) Peers(composite string) map[string]string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[string]string, len(d.addrs[composite]))
	for id, addr := range d.addrs[composite] {
		out[id] = addr
	}
	return out
}

// Funcs is a registry of guard functions (e.g. the travel scenario's
// domestic(...) and near(...)) made available to every condition
// evaluation. Both coordinators (postprocessing) and wrappers (start
// conditions) use it.
type Funcs map[string]expr.Func

// env builds the evaluation environment for one instance's variable bag.
func (f Funcs) env(vars map[string]string) expr.Env {
	e := expr.NewMapEnv()
	for k, v := range vars {
		e.BindText(k, v)
	}
	for name, fn := range f {
		e.BindFunc(name, fn)
	}
	return e
}

// evalCondition evaluates a guard against vars; the empty guard is true.
func (f Funcs) evalCondition(cond string, vars map[string]string) (bool, error) {
	if cond == "" {
		return true, nil
	}
	ok, err := expr.EvalBool(cond, f.env(vars))
	if err != nil {
		return false, fmt.Errorf("engine: condition %q: %w", cond, err)
	}
	return ok, nil
}

// applyActions evaluates assignments against vars and returns a NEW bag
// with the results merged (the input map is never mutated).
func (f Funcs) applyActions(actions []actionList, vars map[string]string) (map[string]string, error) {
	out := make(map[string]string, len(vars)+2)
	for k, v := range vars {
		out[k] = v
	}
	for _, as := range actions {
		for _, a := range as {
			v, err := expr.Eval(a.Expr, f.env(out))
			if err != nil {
				return nil, fmt.Errorf("engine: action %s := %s: %w", a.Var, a.Expr, err)
			}
			out[a.Var] = v.Text()
		}
	}
	return out, nil
}

// actionList is a slice of assignments (routing.Target.Actions shape,
// kept local to avoid importing routing here).
type actionList []assignment

type assignment struct {
	Var  string
	Expr string
}

// fault constructs a fault message for an instance.
func fault(composite, instance, from string, err error) *message.Message {
	return &message.Message{
		Type:      message.TypeFault,
		Composite: composite,
		Instance:  instance,
		From:      from,
		To:        message.WrapperID,
		Error:     err.Error(),
	}
}
