// Package engine executes composite services. It provides the paper's
// peer-to-peer provisioning model — state coordinators co-located with
// their component services, exchanging notifications according to
// precompiled routing tables — plus a centralized baseline orchestrator
// (the architecture the paper argues against) used as the comparator in
// experiments E3/E7.
//
// The pieces:
//
//   - Host (host.go): runs the coordinators of the states whose services
//     live on that node, and answers remote invocation requests.
//   - Wrapper (wrapper.go): the composite service's client-facing shim;
//     starts instances and collects termination notices.
//   - Central (central.go): the baseline hub orchestrator that keeps all
//     control flow on one node.
//
// All components speak the message vocabulary of package message over any
// transport.Network, so the same code runs in-process (tests, benchmarks)
// and over TCP (examples, cmd/hostd).
//
// # Compiled execution plans
//
// The engine never parses a guard expression at runtime. Host.Install,
// NewWrapper, and NewCentral each compile their routing artifact
// (routing.CompileTable / routing.CompilePlan) exactly once, at deploy
// time, and every execution instance shares the resulting immutable
// structures: pre-parsed *expr.Program guards and actions, interned
// notification sources, bitmask precondition coverage, and a function
// environment bound once per composite. The contract this buys is that an
// ill-formed guard fails the DEPLOYMENT (Install/NewWrapper/NewCentral
// return the parse error) and can never fault a running instance; the
// notification hot path is pointer-chasing over prebuilt tables, exactly
// the paper's "the coordinators do not need to implement any complex
// scheduling algorithm" invariant.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"selfserv/internal/expr"
	"selfserv/internal/message"
	"selfserv/internal/placement"
	"selfserv/internal/routing"
)

// TenantVar is the reserved variable carrying the requesting tenant's
// identity through a composite execution. Callers put it in the input
// bag; it rides the ordinary dataflow (start messages, notification
// merges) so every coordinator can attribute its service invocations
// (service.Request.Tenant) to the tenant that started the instance.
// Variables starting with '$' are engine metadata: they are stripped
// from result documents and from the params of remote invocations.
const TenantVar = "$tenant"

// ErrInstanceFault reports that a composite execution failed; the cause
// is in the message carried by the fault.
var ErrInstanceFault = errors.New("engine: instance fault")

// ErrUnknownComposite reports a start request for an undeployed service.
var ErrUnknownComposite = errors.New("engine: unknown composite")

// ErrDraining reports a start request against a wrapper that is draining:
// a newer plan version has been deployed and this endpoint only finishes
// the instances it already owns.
var ErrDraining = errors.New("engine: composite draining")

// Directory maps (composite, plan version, peer ID) to the replica set
// hosting that peer. Peer IDs are state IDs plus message.WrapperID. It
// is the runtime equivalent of the "location" column the paper stores
// in routing tables; the deployer fills it during deployment. Since the
// scale-out work, a peer may be hosted by N replicas: the directory
// stores a precomputed placement.Group per peer and resolves one
// concrete replica per routing key via Route (tenant →
// cell/shuffle-shard, instance → rendezvous). Routing is a pure local
// computation — never an RPC — so every node holding the same directory
// contents routes the same key to the same replica.
//
// Since the redeploy work, each composite keeps SEVERAL peer tables at
// once — one per live plan version — plus a `current` pointer naming
// the version new instances start on. In-flight instances pinned to an
// older version keep resolving against that version's table until the
// platform retires it, so a swap never re-routes a half-finished
// execution. Version 0 is the unversioned namespace: everything written
// through the legacy (version-less) methods lands there, and a
// composite that never saw a versioned deploy behaves exactly as
// before.
//
// Reads are lock-free: the directory keeps its entire contents in an
// immutable copy-on-write snapshot swapped atomically on writes. Writes
// happen a handful of times per composite (deploy, redeploy); lookups
// happen on every notification send, so the coordinator hot path pays
// one atomic load, three map reads, and a few FNV hashes — no RWMutex.
type Directory struct {
	mu   sync.Mutex // lockorder:directory — serializes writers only; never nested
	snap atomic.Pointer[dirSnap]
}

// dirSnap is one immutable directory state: the placement policy and,
// per composite, the versioned peer tables. The policy lives in the
// snapshot so a Route racing a SetPolicy sees a consistent (groups,
// policy) pair.
type dirSnap struct {
	policy placement.Policy
	comps  map[string]*compDir
}

// compDir is one composite's entry: the version new instances start on
// and one peer table per still-live plan version.
type compDir struct {
	current  uint64
	versions map[uint64]map[string]*placement.Group
}

// table returns the peer table for one exact version (nil if absent).
func (cd *compDir) table(version uint64) map[string]*placement.Group {
	if cd == nil {
		return nil
	}
	return cd.versions[version]
}

// NewDirectory returns an empty directory with the zero (no sharding,
// no cells) placement policy.
func NewDirectory() *Directory {
	d := &Directory{}
	d.snap.Store(&dirSnap{comps: map[string]*compDir{}})
	return d
}

// update applies fn to a deep-enough copy of the snapshot under the
// writer lock: the composite map, the changed composite's version map,
// and the changed version's peer map are fresh; the (immutable) groups
// are shared. fn edits the peer table of the given version, or of the
// composite's current version when useCurrent is set.
func (d *Directory) update(composite string, version uint64, useCurrent bool, fn func(byID map[string]*placement.Group, pol placement.Policy)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.snap.Load()
	next := &dirSnap{policy: old.policy, comps: make(map[string]*compDir, len(old.comps)+1)}
	for c, cd := range old.comps {
		next.comps[c] = cd
	}
	oldCD := old.comps[composite]
	cd := &compDir{versions: map[uint64]map[string]*placement.Group{}}
	if oldCD != nil {
		cd.current = oldCD.current
		for v, byID := range oldCD.versions {
			cd.versions[v] = byID
		}
	}
	if useCurrent {
		version = cd.current
	}
	byID := make(map[string]*placement.Group, len(cd.versions[version])+1)
	for id, g := range cd.versions[version] {
		byID[id] = g
	}
	fn(byID, old.policy)
	cd.versions[version] = byID
	next.comps[composite] = cd
	d.snap.Store(next)
}

// SetPolicy installs the placement policy and rebuilds every group of
// every version under it. Deployment configuration: every node of a
// deployment must install the same policy, exactly like the same
// routing tables.
func (d *Directory) SetPolicy(pol placement.Policy) {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.snap.Load()
	next := &dirSnap{policy: pol, comps: make(map[string]*compDir, len(old.comps))}
	for c, cd := range old.comps {
		rebuilt := &compDir{current: cd.current, versions: make(map[uint64]map[string]*placement.Group, len(cd.versions))}
		for v, byID := range cd.versions {
			byV := make(map[string]*placement.Group, len(byID))
			for id, g := range byID {
				byV[id] = placement.Build(g.Addrs(), pol)
			}
			rebuilt.versions[v] = byV
		}
		next.comps[c] = rebuilt
	}
	d.snap.Store(next)
}

// SetCurrent moves the composite's current pointer to version: new
// instances start on it, unversioned reads resolve against it. A stale
// move (version lower than the current pointer) is rejected — returns
// false — so out-of-order rollout pushes cannot regress a host that
// already activated a newer plan. Activating the version already
// current is an idempotent success.
func (d *Directory) SetCurrent(composite string, version uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.snap.Load()
	oldCD := old.comps[composite]
	if oldCD != nil && version < oldCD.current {
		return false
	}
	if oldCD != nil && version == oldCD.current {
		return true
	}
	next := &dirSnap{policy: old.policy, comps: make(map[string]*compDir, len(old.comps)+1)}
	for c, cd := range old.comps {
		next.comps[c] = cd
	}
	cd := &compDir{current: version, versions: map[uint64]map[string]*placement.Group{}}
	if oldCD != nil {
		for v, byID := range oldCD.versions {
			cd.versions[v] = byID
		}
	}
	next.comps[composite] = cd
	d.snap.Store(next)
	return true
}

// Current returns the version new instances of composite start on
// (zero when the composite is unknown or never saw a versioned deploy).
func (d *Directory) Current(composite string) uint64 {
	if cd := d.snap.Load().comps[composite]; cd != nil {
		return cd.current
	}
	return 0
}

// Versions returns the live plan versions of composite, unordered.
func (d *Directory) Versions(composite string) []uint64 {
	cd := d.snap.Load().comps[composite]
	if cd == nil {
		return nil
	}
	out := make([]uint64, 0, len(cd.versions))
	for v := range cd.versions {
		out = append(out, v)
	}
	return out
}

// RetireVersion drops version's peer table, releasing the routing state
// of a fully drained plan. The current version is never retired (the
// call is ignored); retiring an absent version is a no-op.
func (d *Directory) RetireVersion(composite string, version uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.snap.Load()
	oldCD := old.comps[composite]
	if oldCD == nil || version == oldCD.current {
		return
	}
	if _, ok := oldCD.versions[version]; !ok {
		return
	}
	next := &dirSnap{policy: old.policy, comps: make(map[string]*compDir, len(old.comps))}
	for c, cd := range old.comps {
		next.comps[c] = cd
	}
	cd := &compDir{current: oldCD.current, versions: make(map[uint64]map[string]*placement.Group, len(oldCD.versions))}
	for v, byID := range oldCD.versions {
		if v != version {
			cd.versions[v] = byID
		}
	}
	next.comps[composite] = cd
	d.snap.Store(next)
}

// Policy returns the directory's current placement policy.
func (d *Directory) Policy() placement.Policy { return d.snap.Load().policy }

// Set records that peer id of composite lives at addr — replacing any
// previous replica set with the singleton {addr}. Wrappers (one per
// composite deployment) and single-host deployments use this. Writes
// land in the composite's current version.
func (d *Directory) Set(composite, id, addr string) {
	d.SetReplicas(composite, id, []string{addr})
}

// SetV is Set against one exact plan version.
func (d *Directory) SetV(composite string, version uint64, id, addr string) {
	d.SetReplicasV(composite, version, id, []string{addr})
}

// SetReplicas replaces peer id's replica set in the current version.
func (d *Directory) SetReplicas(composite, id string, addrs []string) {
	d.update(composite, 0, true, func(byID map[string]*placement.Group, pol placement.Policy) {
		byID[id] = placement.Build(addrs, pol)
	})
}

// SetReplicasV replaces peer id's replica set in one exact version.
// Deployers use this to stage v(n+1)'s peer table while v(n) keeps
// serving; SetCurrent flips instances over once the table is complete.
func (d *Directory) SetReplicasV(composite string, version uint64, id string, addrs []string) {
	d.update(composite, version, false, func(byID map[string]*placement.Group, pol placement.Policy) {
		byID[id] = placement.Build(addrs, pol)
	})
}

// AddReplica adds addr to peer id's replica set in the current version
// (idempotent). The replica set is a SET: the order AddReplica calls
// arrive in does not affect routing, so nodes that learn of replicas in
// different orders still agree.
func (d *Directory) AddReplica(composite, id, addr string) {
	d.update(composite, 0, true, addReplicaFn(id, addr))
}

// AddReplicaV is AddReplica against one exact plan version.
func (d *Directory) AddReplicaV(composite string, version uint64, id, addr string) {
	d.update(composite, version, false, addReplicaFn(id, addr))
}

func addReplicaFn(id, addr string) func(map[string]*placement.Group, placement.Policy) {
	return func(byID map[string]*placement.Group, pol placement.Policy) {
		var addrs []string
		if g := byID[id]; g != nil {
			addrs = append(addrs, g.Addrs()...)
		}
		byID[id] = placement.Build(append(addrs, addr), pol)
	}
}

// RemoveReplica removes addr from peer id's replica set in the current
// version, dropping the peer entirely when no replicas remain.
func (d *Directory) RemoveReplica(composite, id, addr string) {
	d.update(composite, 0, true, removeReplicaFn(id, addr))
}

// RemoveReplicaV is RemoveReplica against one exact plan version.
func (d *Directory) RemoveReplicaV(composite string, version uint64, id, addr string) {
	d.update(composite, version, false, removeReplicaFn(id, addr))
}

func removeReplicaFn(id, addr string) func(map[string]*placement.Group, placement.Policy) {
	return func(byID map[string]*placement.Group, pol placement.Policy) {
		g := byID[id]
		if g == nil {
			return
		}
		addrs := make([]string, 0, g.Len())
		for _, a := range g.Addrs() {
			if a != addr {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			delete(byID, id)
			return
		}
		byID[id] = placement.Build(addrs, pol)
	}
}

// Route resolves the replica of peer id that owns the (instance,
// tenant) routing key, lock-free, against the composite's current
// version. This is THE send-path resolution for coordinator
// notifications: deterministic across nodes, so all notifications of
// one instance converge on the same replica's coordinator state (the
// AND-join counting depends on that).
func (d *Directory) Route(composite, id, instance, tenant string) (string, bool) {
	s := d.snap.Load()
	cd := s.comps[composite]
	if cd == nil {
		return "", false
	}
	g, ok := cd.table(cd.current)[id]
	if !ok {
		return "", false
	}
	return g.Pick(tenant, instance, s.policy)
}

// RouteV resolves against one exact plan version — what an in-flight
// instance pinned to version uses so a swap never re-routes it. No
// fallback: a missing version reports false and the caller decides
// (host.go re-routes stale-snapshot frames, wrappers fault loudly).
func (d *Directory) RouteV(composite string, version uint64, id, instance, tenant string) (string, bool) {
	s := d.snap.Load()
	g, ok := s.comps[composite].table(version)[id]
	if !ok {
		return "", false
	}
	return g.Pick(tenant, instance, s.policy)
}

// Lookup resolves the canonical first replica of peer id in the current
// version without taking any lock. Kept for singleton peers (the
// wrapper) and as the single-replica compatibility read; replicated
// peers should be resolved with Route.
func (d *Directory) Lookup(composite, id string) (string, bool) {
	cd := d.snap.Load().comps[composite]
	if cd == nil {
		return "", false
	}
	g, ok := cd.table(cd.current)[id]
	if !ok {
		return "", false
	}
	return g.First()
}

// LookupV is Lookup against one exact plan version.
func (d *Directory) LookupV(composite string, version uint64, id string) (string, bool) {
	g, ok := d.snap.Load().comps[composite].table(version)[id]
	if !ok {
		return "", false
	}
	return g.First()
}

// Replicas returns a copy of peer id's replica list (sorted) in the
// current version.
func (d *Directory) Replicas(composite, id string) []string {
	cd := d.snap.Load().comps[composite]
	if cd == nil {
		return nil
	}
	g, ok := cd.table(cd.current)[id]
	if !ok {
		return nil
	}
	return append([]string(nil), g.Addrs()...)
}

// Peers returns the peer->first-replica map for composite's current
// version — the single-host view, kept for displays and single-replica
// callers.
func (d *Directory) Peers(composite string) map[string]string {
	cd := d.snap.Load().comps[composite]
	var byID map[string]*placement.Group
	if cd != nil {
		byID = cd.table(cd.current)
	}
	out := make(map[string]string, len(byID))
	for id, g := range byID {
		if addr, ok := g.First(); ok {
			out[id] = addr
		}
	}
	return out
}

// PeerReplicas returns a copy of the full peer->replicas map for
// composite's current version (the replicated twin of Peers; what
// deployers push to remote hosts).
func (d *Directory) PeerReplicas(composite string) map[string][]string {
	cd := d.snap.Load().comps[composite]
	if cd == nil {
		return map[string][]string{}
	}
	return peerReplicas(cd.table(cd.current))
}

// PeerReplicasV is PeerReplicas against one exact plan version.
func (d *Directory) PeerReplicasV(composite string, version uint64) map[string][]string {
	return peerReplicas(d.snap.Load().comps[composite].table(version))
}

func peerReplicas(byID map[string]*placement.Group) map[string][]string {
	out := make(map[string][]string, len(byID))
	for id, g := range byID {
		out[id] = append([]string(nil), g.Addrs()...)
	}
	return out
}

// Funcs is a registry of guard functions (e.g. the travel scenario's
// domestic(...) and near(...)) made available to every condition
// evaluation. Both coordinators (postprocessing) and wrappers (start
// conditions) use it.
type Funcs map[string]expr.Func

// Env returns the function-resolution layer shared by every evaluation of
// a composite. Built once (at deploy time) and chained under a
// per-evaluation variable layer; see evalEnv.
func (f Funcs) Env() expr.Env { return expr.FuncsEnv(f) }

// evalEnv builds the two-layer evaluation environment for one variable
// bag: a lazy text-variable layer over the composite's shared function
// layer. The only per-evaluation work is one small slice allocation —
// functions are never re-bound and variables are converted on lookup.
func evalEnv(vars map[string]string, funcs expr.Env) expr.Env {
	return expr.ChainEnv{expr.TextVars(vars), funcs}
}

// mergeLayers builds the CANONICAL variable bag from a base layer plus
// per-source bags overlaid in the compiled merge order (sorted source
// IDs; see routing's MergeOrder/FinishMergeOrder). This is the single
// definition of the order-independence invariant both coordinators and
// wrappers rely on: every receiver of the same set of notifications
// computes the same bag, regardless of arrival order — the seed-8
// AND-join fix. Any change to merge semantics goes here, once.
func mergeLayers(base map[string]string, order []int, srcVars []map[string]string) map[string]string {
	out := make(map[string]string, len(base)+4)
	for k, v := range base {
		out[k] = v
	}
	for _, idx := range order {
		for k, v := range srcVars[idx] {
			out[k] = v
		}
	}
	return out
}

// evalGuard evaluates a precompiled guard against vars; a nil guard
// (statically true, e.g. the empty condition) is true without touching
// the environment.
func evalGuard(g *expr.Program, vars map[string]string, funcs expr.Env) (bool, error) {
	if g == nil {
		return true, nil
	}
	ok, err := g.EvalBool(evalEnv(vars, funcs))
	if err != nil {
		return false, fmt.Errorf("engine: condition %q: %w", g.Source(), err)
	}
	return ok, nil
}

// applyActions evaluates precompiled assignments against vars and returns
// a NEW bag with the results merged (the input map is never mutated).
func applyActions(actions []routing.CompiledAssignment, vars map[string]string, funcs expr.Env) (map[string]string, error) {
	out := make(map[string]string, len(vars)+len(actions))
	for k, v := range vars {
		out[k] = v
	}
	for _, a := range actions {
		v, err := a.Expr.Eval(evalEnv(out, funcs))
		if err != nil {
			return nil, fmt.Errorf("engine: action %s := %s: %w", a.Var, a.Expr.Source(), err)
		}
		out[a.Var] = v.Text()
	}
	return out, nil
}

// fault constructs a fault message for an instance.
func fault(composite, instance, from string, err error) *message.Message {
	return &message.Message{
		Type:      message.TypeFault,
		Composite: composite,
		Instance:  instance,
		From:      from,
		To:        message.WrapperID,
		Error:     err.Error(),
	}
}
