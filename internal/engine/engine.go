// Package engine executes composite services. It provides the paper's
// peer-to-peer provisioning model — state coordinators co-located with
// their component services, exchanging notifications according to
// precompiled routing tables — plus a centralized baseline orchestrator
// (the architecture the paper argues against) used as the comparator in
// experiments E3/E7.
//
// The pieces:
//
//   - Host (host.go): runs the coordinators of the states whose services
//     live on that node, and answers remote invocation requests.
//   - Wrapper (wrapper.go): the composite service's client-facing shim;
//     starts instances and collects termination notices.
//   - Central (central.go): the baseline hub orchestrator that keeps all
//     control flow on one node.
//
// All components speak the message vocabulary of package message over any
// transport.Network, so the same code runs in-process (tests, benchmarks)
// and over TCP (examples, cmd/hostd).
//
// # Compiled execution plans
//
// The engine never parses a guard expression at runtime. Host.Install,
// NewWrapper, and NewCentral each compile their routing artifact
// (routing.CompileTable / routing.CompilePlan) exactly once, at deploy
// time, and every execution instance shares the resulting immutable
// structures: pre-parsed *expr.Program guards and actions, interned
// notification sources, bitmask precondition coverage, and a function
// environment bound once per composite. The contract this buys is that an
// ill-formed guard fails the DEPLOYMENT (Install/NewWrapper/NewCentral
// return the parse error) and can never fault a running instance; the
// notification hot path is pointer-chasing over prebuilt tables, exactly
// the paper's "the coordinators do not need to implement any complex
// scheduling algorithm" invariant.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"selfserv/internal/expr"
	"selfserv/internal/message"
	"selfserv/internal/routing"
)

// TenantVar is the reserved variable carrying the requesting tenant's
// identity through a composite execution. Callers put it in the input
// bag; it rides the ordinary dataflow (start messages, notification
// merges) so every coordinator can attribute its service invocations
// (service.Request.Tenant) to the tenant that started the instance.
// Variables starting with '$' are engine metadata: they are stripped
// from result documents and from the params of remote invocations.
const TenantVar = "$tenant"

// ErrInstanceFault reports that a composite execution failed; the cause
// is in the message carried by the fault.
var ErrInstanceFault = errors.New("engine: instance fault")

// ErrUnknownComposite reports a start request for an undeployed service.
var ErrUnknownComposite = errors.New("engine: unknown composite")

// Directory maps (composite, peer ID) to the transport address hosting
// that peer. Peer IDs are state IDs plus message.WrapperID. It is the
// runtime equivalent of the "location" column the paper stores in routing
// tables; the deployer fills it during deployment.
//
// Reads are lock-free: the directory keeps its entire contents in an
// immutable copy-on-write snapshot swapped atomically on writes. Writes
// happen a handful of times per composite (deploy, redeploy); lookups
// happen on every notification send, so the coordinator hot path pays one
// atomic load and two map reads — no RWMutex.
type Directory struct {
	mu   sync.Mutex // serializes writers only
	snap atomic.Pointer[map[string]map[string]string]
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	d := &Directory{}
	empty := map[string]map[string]string{}
	d.snap.Store(&empty)
	return d
}

// Set records that peer id of composite lives at addr. It rebuilds the
// affected composite's map copy-on-write, so concurrent readers keep a
// consistent snapshot.
func (d *Directory) Set(composite, id, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := *d.snap.Load()
	next := make(map[string]map[string]string, len(old)+1)
	for c, byID := range old {
		next[c] = byID
	}
	byID := make(map[string]string, len(old[composite])+1)
	for k, v := range old[composite] {
		byID[k] = v
	}
	byID[id] = addr
	next[composite] = byID
	d.snap.Store(&next)
}

// Lookup resolves the address of peer id within composite without taking
// any lock.
func (d *Directory) Lookup(composite, id string) (string, bool) {
	addr, ok := (*d.snap.Load())[composite][id]
	return addr, ok
}

// Peers returns a copy of the peer->address map for composite.
func (d *Directory) Peers(composite string) map[string]string {
	byID := (*d.snap.Load())[composite]
	out := make(map[string]string, len(byID))
	for id, addr := range byID {
		out[id] = addr
	}
	return out
}

// Funcs is a registry of guard functions (e.g. the travel scenario's
// domestic(...) and near(...)) made available to every condition
// evaluation. Both coordinators (postprocessing) and wrappers (start
// conditions) use it.
type Funcs map[string]expr.Func

// Env returns the function-resolution layer shared by every evaluation of
// a composite. Built once (at deploy time) and chained under a
// per-evaluation variable layer; see evalEnv.
func (f Funcs) Env() expr.Env { return expr.FuncsEnv(f) }

// evalEnv builds the two-layer evaluation environment for one variable
// bag: a lazy text-variable layer over the composite's shared function
// layer. The only per-evaluation work is one small slice allocation —
// functions are never re-bound and variables are converted on lookup.
func evalEnv(vars map[string]string, funcs expr.Env) expr.Env {
	return expr.ChainEnv{expr.TextVars(vars), funcs}
}

// mergeLayers builds the CANONICAL variable bag from a base layer plus
// per-source bags overlaid in the compiled merge order (sorted source
// IDs; see routing's MergeOrder/FinishMergeOrder). This is the single
// definition of the order-independence invariant both coordinators and
// wrappers rely on: every receiver of the same set of notifications
// computes the same bag, regardless of arrival order — the seed-8
// AND-join fix. Any change to merge semantics goes here, once.
func mergeLayers(base map[string]string, order []int, srcVars []map[string]string) map[string]string {
	out := make(map[string]string, len(base)+4)
	for k, v := range base {
		out[k] = v
	}
	for _, idx := range order {
		for k, v := range srcVars[idx] {
			out[k] = v
		}
	}
	return out
}

// evalGuard evaluates a precompiled guard against vars; a nil guard
// (statically true, e.g. the empty condition) is true without touching
// the environment.
func evalGuard(g *expr.Program, vars map[string]string, funcs expr.Env) (bool, error) {
	if g == nil {
		return true, nil
	}
	ok, err := g.EvalBool(evalEnv(vars, funcs))
	if err != nil {
		return false, fmt.Errorf("engine: condition %q: %w", g.Source(), err)
	}
	return ok, nil
}

// applyActions evaluates precompiled assignments against vars and returns
// a NEW bag with the results merged (the input map is never mutated).
func applyActions(actions []routing.CompiledAssignment, vars map[string]string, funcs expr.Env) (map[string]string, error) {
	out := make(map[string]string, len(vars)+len(actions))
	for k, v := range vars {
		out[k] = v
	}
	for _, a := range actions {
		v, err := a.Expr.Eval(evalEnv(out, funcs))
		if err != nil {
			return nil, fmt.Errorf("engine: action %s := %s: %w", a.Var, a.Expr.Source(), err)
		}
		out[a.Var] = v.Text()
	}
	return out, nil
}

// fault constructs a fault message for an instance.
func fault(composite, instance, from string, err error) *message.Message {
	return &message.Message{
		Type:      message.TypeFault,
		Composite: composite,
		Instance:  instance,
		From:      from,
		To:        message.WrapperID,
		Error:     err.Error(),
	}
}
