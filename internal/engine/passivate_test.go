package engine_test

// Deterministic pinning of the passivation path (docs/durability.md):
// an AND-join instance that received only its first arrival is idle, so
// a cap-hit on its stripe passivates it to the journal; the second
// arrival transparently rehydrates it and the firing's parameters are
// byte-identical to a run whose cap nothing ever hit. No sleeps, no
// scheduling dependence: instance IDs i1..i40 pigeonhole over the
// 32-way striped table, so with a cap of 1 at least 8 half-armed join
// instances are guaranteed to passivate before their second arrival.

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"selfserv/internal/engine"
	"selfserv/internal/journal"
	"selfserv/internal/message"
	"selfserv/internal/routing"
	"selfserv/internal/service"
	"selfserv/internal/statechart"
	"selfserv/internal/transport"
)

const passivateInstances = 40

// drivePassivateJoin runs the two-phase AND-join drive on a fresh host
// with the given cap and returns each instance's firing parameters plus
// the host's durability counters. Phase one delivers every instance's
// s1 arrival (half-covering the {s1, s2} clause, leaving the instance
// idle); phase two delivers s2, which must fire the join whether the
// instance stayed resident or went through disk.
func drivePassivateJoin(t *testing.T, cap int) (map[string]map[string]string, *engine.Host) {
	t.Helper()
	net := transport.NewInMem(transport.InMemOptions{Synchronous: true})
	t.Cleanup(func() { net.Close() })

	type firing struct {
		params map[string]string
	}
	fired := make(chan firing, passivateInstances)
	reg := service.NewRegistry()
	s := service.NewSimulated("SvcJoin", service.SimulatedOptions{})
	s.Handle("run", func(_ context.Context, p map[string]string) (map[string]string, error) {
		fired <- firing{params: p}
		return map[string]string{}, nil
	})
	reg.Register(s)

	j, err := journal.Open(journal.Options{Dir: t.TempDir(), Fsync: journal.FsyncOff})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	t.Cleanup(func() { j.Close() })

	dir := engine.NewDirectory()
	h, err := engine.NewHost(net, "pass-host", reg, dir, engine.HostOptions{
		MaxInstancesPerState: cap,
		Journal:              j,
	})
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(func() { h.Close() })

	err = h.Install("C", &routing.Table{
		State:     "join",
		Service:   "SvcJoin",
		Operation: "run",
		Inputs: []statechart.Binding{
			{Param: "x", Var: "x"},
			{Param: "y", Var: "y"},
			{Param: "s", Var: "s"},
		},
		Preconditions: []routing.Clause{
			{Sources: []string{"s1", "s2"}},
		},
		Postprocessings: []routing.Target{{To: message.WrapperID}},
	})
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	if _, err := net.Listen("pass-sink", func(context.Context, *message.Message) {}); err != nil {
		t.Fatal(err)
	}
	dir.Set("C", message.WrapperID, "pass-sink")

	notify := func(instance, from string, vars map[string]string) {
		t.Helper()
		err := net.Send(context.Background(), "pass-host", &message.Message{
			Type: message.TypeNotify, Composite: "C", Instance: instance,
			From: from, To: "join", Vars: vars,
		})
		if err != nil {
			t.Fatalf("notify %s<-%s: %v", instance, from, err)
		}
	}

	// Phase 1: every instance half-arms its join and goes idle. The
	// synchronous network means each arrival (and any cap-hit
	// passivation it causes) completes before the next Send returns.
	for k := 1; k <= passivateInstances; k++ {
		notify(fmt.Sprintf("i%d", k), "s1", map[string]string{
			"x": fmt.Sprint(k), "s": "from-s1",
		})
	}
	// Phase 2: the second arrival completes the clause. For passivated
	// instances this path MUST rehydrate from the journal first.
	for k := 1; k <= passivateInstances; k++ {
		notify(fmt.Sprintf("i%d", k), "s2", map[string]string{
			"y": fmt.Sprint(2 * k), "s": "from-s2",
		})
	}

	got := map[string]map[string]string{}
	for len(got) < passivateInstances {
		select {
		case f := <-fired:
			got[f.params["x"]] = f.params
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d/%d joins fired (cap %d): a passivated instance was not rehydrated",
				len(got), passivateInstances, cap)
		}
	}
	return got, h
}

// TestPassivateRehydrateANDJoinDeterministic is the engine-level
// rehydration contract: half-armed AND-join instances forced out by a
// cap of 1 fire with parameters byte-identical to a run that never
// passivated — per-source bags, canonical merge order, and coverage
// masks all survive the disk round-trip.
func TestPassivateRehydrateANDJoinDeterministic(t *testing.T) {
	tight, tightHost := drivePassivateJoin(t, 1)
	roomy, roomyHost := drivePassivateJoin(t, passivateInstances*2)

	if !reflect.DeepEqual(tight, roomy) {
		t.Errorf("firing params diverge between tight and roomy caps:\n tight: %v\n roomy: %v", tight, roomy)
	}
	for k := 1; k <= passivateInstances; k++ {
		p, ok := tight[fmt.Sprint(k)]
		if !ok {
			t.Fatalf("instance with x=%d never fired", k)
		}
		if p["y"] != fmt.Sprint(2*k) {
			t.Errorf("x=%d fired with y=%q, want %d: per-source bag lost across passivation", k, p["y"], 2*k)
		}
		// Both sources carry s; the canonical (sorted-source) merge must
		// hold across the disk round-trip: s2 overrides s1.
		if p["s"] != "from-s2" {
			t.Errorf("x=%d fired with s=%q, want from-s2 (canonical merge violated after rehydrate)", k, p["s"])
		}
	}

	// 40 instance IDs over a 32-way striped table at cap 1 guarantee
	// at least 8 idle half-armed instances were passivated, and every
	// one of them fired above, so it was rehydrated.
	if got := tightHost.Passivated(); got == 0 {
		t.Error("tight cap passivated nothing; the pigeonhole guarantee is broken")
	}
	if got := tightHost.Rehydrated(); got == 0 {
		t.Error("tight cap rehydrated nothing despite passivations")
	}
	if got := tightHost.Evicted(); got != 0 {
		t.Errorf("tight cap EVICTED %d instances; with a journal, passivation must fully replace eviction", got)
	}
	if got := roomyHost.Passivated(); got != 0 {
		t.Errorf("roomy cap passivated %d instances, want 0", got)
	}
}
