package engine_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"selfserv/internal/deployer"
	"selfserv/internal/engine"
	"selfserv/internal/routing"
	"selfserv/internal/service"
	"selfserv/internal/statechart"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

// fabric is a deployed peer-to-peer execution environment for one chart:
// one host per component service (the paper's topology), one wrapper.
type fabric struct {
	net     transport.Network
	dir     *engine.Directory
	hosts   map[string]*engine.Host // service name -> host
	wrapper *engine.Wrapper
	plan    *routing.Plan
}

// buildFabric deploys sc over a fresh in-memory network, one host per
// service, using reg for provider lookup on every host (providers are
// addressed by name, so sharing the registry is safe; each host still
// only runs its own coordinators).
func buildFabric(t testing.TB, sc *statechart.Statechart, reg *service.Registry, funcs engine.Funcs) *fabric {
	t.Helper()
	net := transport.NewInMem(transport.InMemOptions{})
	t.Cleanup(func() { net.Close() })
	return buildFabricOn(t, net, sc, reg, funcs)
}

func buildFabricOn(t testing.TB, net transport.Network, sc *statechart.Statechart, reg *service.Registry, funcs engine.Funcs) *fabric {
	t.Helper()
	dir := engine.NewDirectory()
	hosts := map[string]*engine.Host{}
	placement := deployer.Placement{}
	for i, svc := range sc.Services() {
		addr := fmt.Sprintf("host-%s-%d", sanitizeAddr(svc), i)
		h, err := engine.NewHost(net, addr, reg, dir, engine.HostOptions{Funcs: funcs})
		if err != nil {
			t.Fatalf("NewHost(%s): %v", svc, err)
		}
		t.Cleanup(func() { h.Close() })
		hosts[svc] = h
		placement[svc] = []deployer.Installer{h}
	}
	dep, err := deployer.Deploy(sc, placement)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	w, err := engine.NewWrapper(net, "wrapper-"+sc.Name, dir, dep.Plan, funcs)
	if err != nil {
		t.Fatalf("NewWrapper: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	return &fabric{net: net, dir: dir, hosts: hosts, wrapper: w, plan: dep.Plan}
}

func sanitizeAddr(s string) string {
	return strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			return r
		}
		return '-'
	}, s)
}

func ctxWithTimeout(t testing.TB) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestChainExecution(t *testing.T) {
	const n = 5
	reg := service.NewRegistry()
	workload.RegisterChainProviders(reg, n, service.SimulatedOptions{})
	f := buildFabric(t, workload.Chain(n), reg, nil)
	out, err := f.wrapper.Execute(ctxWithTimeout(t), map[string]string{"x": "0"})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if out["x"] != "5" {
		t.Fatalf("x = %q, want 5 (outputs: %v)", out["x"], out)
	}
}

func TestParallelExecution(t *testing.T) {
	const k = 4
	reg := service.NewRegistry()
	workload.RegisterParallelProviders(reg, k, service.SimulatedOptions{})
	sc := workload.Parallel(k)
	// Declare all branch outputs so they survive projection.
	sc.Outputs = nil
	for i := 1; i <= k; i++ {
		sc.Outputs = append(sc.Outputs, statechart.Param{Name: fmt.Sprintf("y%d", i), Type: "number"})
	}
	f := buildFabric(t, sc, reg, nil)
	out, err := f.wrapper.Execute(ctxWithTimeout(t), map[string]string{"x": "10"})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	for i := 1; i <= k; i++ {
		want := fmt.Sprint(10 + i)
		if got := out[fmt.Sprintf("y%d", i)]; got != want {
			t.Errorf("y%d = %q, want %s (outputs: %v)", i, got, want, out)
		}
	}
}

// travelFabric builds the full travel deployment.
func travelFabric(t testing.TB) *fabric {
	t.Helper()
	reg := service.NewRegistry()
	if _, err := workload.RegisterTravelProviders(reg, service.SimulatedOptions{}); err != nil {
		t.Fatal(err)
	}
	return buildFabric(t, workload.Travel(), reg, engine.Funcs(workload.TravelGuards()))
}

func TestTravelDomesticNearAttraction(t *testing.T) {
	// Sydney: domestic flight, Opera House 2km away -> no car rental.
	f := travelFabric(t)
	out, err := f.wrapper.Execute(ctxWithTimeout(t), workload.TravelRequest("alice", "sydney", true))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if out["flightRef"] != "QF-ALI-SYD" {
		t.Errorf("flightRef = %q, want domestic booking", out["flightRef"])
	}
	if out["major_attraction"] != "Opera House" {
		t.Errorf("major_attraction = %q", out["major_attraction"])
	}
	if out["accommodation"] == "" {
		t.Error("no accommodation booked")
	}
	if out["carRef"] != "" {
		t.Errorf("carRef = %q, want none (attraction is near)", out["carRef"])
	}
}

func TestTravelDomesticFarAttraction(t *testing.T) {
	// Melbourne: domestic flight, Great Ocean Road 180km -> car rental.
	f := travelFabric(t)
	out, err := f.wrapper.Execute(ctxWithTimeout(t), workload.TravelRequest("bob", "melbourne", true))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if out["flightRef"] != "QF-BOB-MEL" {
		t.Errorf("flightRef = %q", out["flightRef"])
	}
	if out["carRef"] != "CAR-BOB" {
		t.Errorf("carRef = %q, want CAR-BOB (attraction is far)", out["carRef"])
	}
}

func TestTravelInternational(t *testing.T) {
	// Tokyo: international arrangements, Mount Fuji 100km -> car rental.
	f := travelFabric(t)
	out, err := f.wrapper.Execute(ctxWithTimeout(t), workload.TravelRequest("carol", "tokyo", false))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if out["flightRef"] != "INT-CAR-TOK" {
		t.Errorf("flightRef = %q, want international booking", out["flightRef"])
	}
	if out["carRef"] != "CAR-CAR" {
		t.Errorf("carRef = %q", out["carRef"])
	}
}

func TestTravelInternationalNear(t *testing.T) {
	// Paris: international, Louvre 3km -> no car rental.
	f := travelFabric(t)
	out, err := f.wrapper.Execute(ctxWithTimeout(t), workload.TravelRequest("dave", "paris", false))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !strings.HasPrefix(out["flightRef"], "INT-") {
		t.Errorf("flightRef = %q", out["flightRef"])
	}
	if out["carRef"] != "" {
		t.Errorf("carRef = %q, want none", out["carRef"])
	}
}

func TestConcurrentInstances(t *testing.T) {
	f := travelFabric(t)
	ctx := ctxWithTimeout(t)
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dest := "sydney"
			if i%2 == 1 {
				dest = "melbourne"
			}
			out, err := f.wrapper.Execute(ctx, workload.TravelRequest(fmt.Sprintf("u%02d", i), dest, true))
			if err != nil {
				errs <- fmt.Errorf("instance %d: %w", i, err)
				return
			}
			wantCar := dest == "melbourne"
			if (out["carRef"] != "") != wantCar {
				errs <- fmt.Errorf("instance %d: carRef = %q, wantCar = %v", i, out["carRef"], wantCar)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestLoopExecution(t *testing.T) {
	// a -> b; b -> a while x < 3 (incrementing); b -> end when x >= 3.
	root := &statechart.State{
		ID: "root", Kind: statechart.KindCompound,
		Children: []*statechart.State{
			{ID: "init", Kind: statechart.KindInitial},
			{ID: "a", Kind: statechart.KindBasic, Service: "A", Operation: "op",
				Inputs:  []statechart.Binding{{Param: "x", Var: "x"}},
				Outputs: []statechart.Binding{{Param: "x", Var: "x"}}},
			{ID: "b", Kind: statechart.KindBasic, Service: "B", Operation: "op",
				Inputs:  []statechart.Binding{{Param: "x", Var: "x"}},
				Outputs: []statechart.Binding{{Param: "x", Var: "x"}}},
			{ID: "end", Kind: statechart.KindFinal},
		},
		Transitions: []statechart.Transition{
			{From: "init", To: "a"},
			{From: "a", To: "b"},
			{From: "b", To: "a", Condition: "x < 3"},
			{From: "b", To: "end", Condition: "x >= 3"},
		},
	}
	sc := &statechart.Statechart{
		Name:    "Looper",
		Inputs:  []statechart.Param{{Name: "x", Type: "number"}},
		Outputs: []statechart.Param{{Name: "x", Type: "number"}},
		Root:    root,
	}
	reg := service.NewRegistry()
	echo := func(name string) {
		s := service.NewSimulated(name, service.SimulatedOptions{})
		s.Echo("op")
		reg.Register(s)
	}
	echo("A")
	// B increments x.
	b := service.NewSimulated("B", service.SimulatedOptions{})
	b.Handle("op", func(_ context.Context, p map[string]string) (map[string]string, error) {
		var x float64
		fmt.Sscanf(p["x"], "%g", &x)
		return map[string]string{"x": fmt.Sprintf("%g", x+1)}, nil
	})
	reg.Register(b)

	f := buildFabric(t, sc, reg, nil)
	out, err := f.wrapper.Execute(ctxWithTimeout(t), map[string]string{"x": "0"})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if out["x"] != "3" {
		t.Fatalf("x = %q, want 3 (loop ran 3 times)", out["x"])
	}
}

func TestServiceFaultPropagates(t *testing.T) {
	reg := service.NewRegistry()
	s := service.NewSimulated("svc1", service.SimulatedOptions{})
	s.Handle("run", func(context.Context, map[string]string) (map[string]string, error) {
		return nil, fmt.Errorf("backend exploded")
	})
	reg.Register(s)
	f := buildFabric(t, workload.Chain(1), reg, nil)
	_, err := f.wrapper.Execute(ctxWithTimeout(t), map[string]string{"x": "0"})
	if !errors.Is(err, engine.ErrInstanceFault) {
		t.Fatalf("err = %v, want ErrInstanceFault", err)
	}
	if !strings.Contains(err.Error(), "backend exploded") {
		t.Fatalf("err %q should carry the cause", err)
	}
}

func TestNoStartConditionMatches(t *testing.T) {
	// Chart whose only entry is guarded false for this request.
	sc := workload.Chain(1)
	sc.Root.Transitions[0].Condition = "x > 100"
	reg := service.NewRegistry()
	workload.RegisterChainProviders(reg, 1, service.SimulatedOptions{})
	f := buildFabric(t, sc, reg, nil)
	_, err := f.wrapper.Execute(ctxWithTimeout(t), map[string]string{"x": "0"})
	if err == nil || !strings.Contains(err.Error(), "no start condition") {
		t.Fatalf("err = %v", err)
	}
}

func TestExecutionTimeout(t *testing.T) {
	reg := service.NewRegistry()
	slow := service.NewSimulated("svc1", service.SimulatedOptions{BaseLatency: time.Minute})
	slow.Echo("run")
	reg.Register(slow)
	f := buildFabric(t, workload.Chain(1), reg, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := f.wrapper.Execute(ctx, map[string]string{"x": "0"})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestDuplicateInstanceID(t *testing.T) {
	reg := service.NewRegistry()
	slow := service.NewSimulated("svc1", service.SimulatedOptions{BaseLatency: 200 * time.Millisecond})
	slow.Echo("run")
	reg.Register(slow)
	f := buildFabric(t, workload.Chain(1), reg, nil)
	ctx := ctxWithTimeout(t)
	done := make(chan error, 1)
	go func() {
		_, err := f.wrapper.ExecuteInstance(ctx, "same", map[string]string{"x": "0"})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := f.wrapper.ExecuteInstance(ctx, "same", map[string]string{"x": "0"}); err == nil {
		t.Fatal("duplicate instance accepted")
	}
	if err := <-done; err != nil {
		t.Fatalf("first instance: %v", err)
	}
}

func TestCommunityInsideComposite(t *testing.T) {
	// The travel fabric's AccommodationBooking is a community; verify the
	// booking went to one of its brands.
	f := travelFabric(t)
	out, err := f.wrapper.Execute(ctxWithTimeout(t), workload.TravelRequest("erin", "sydney", true))
	if err != nil {
		t.Fatal(err)
	}
	brand := strings.Fields(out["accommodation"])[0]
	switch brand {
	case "GrandHotel", "CityLodge", "HarbourInn":
	default:
		t.Fatalf("accommodation %q not booked via the community", out["accommodation"])
	}
}

func TestTransitionActionsApply(t *testing.T) {
	sc := workload.Chain(2)
	// After s1, set a derived variable used as s2's input expression.
	sc.Root.Transitions[1].Actions = []statechart.Assignment{{Var: "x", Expr: "x * 10"}}
	reg := service.NewRegistry()
	workload.RegisterChainProviders(reg, 2, service.SimulatedOptions{})
	f := buildFabric(t, sc, reg, nil)
	out, err := f.wrapper.Execute(ctxWithTimeout(t), map[string]string{"x": "1"})
	if err != nil {
		t.Fatal(err)
	}
	// s1: x=2; action: x=20; s2: x=21.
	if out["x"] != "21" {
		t.Fatalf("x = %q, want 21", out["x"])
	}
}

func TestCentralMatchesP2POutputs(t *testing.T) {
	reg := service.NewRegistry()
	if _, err := workload.RegisterTravelProviders(reg, service.SimulatedOptions{}); err != nil {
		t.Fatal(err)
	}
	funcs := engine.Funcs(workload.TravelGuards())
	f := buildFabric(t, workload.Travel(), reg, funcs)
	central, err := engine.NewCentral(f.net, "central", f.dir, f.plan, funcs)
	if err != nil {
		t.Fatalf("NewCentral: %v", err)
	}
	defer central.Close()

	for _, tc := range []struct {
		customer, dest string
	}{
		{"alice", "sydney"},
		{"bob", "melbourne"},
		{"carol", "tokyo"},
		{"dave", "paris"},
	} {
		req := workload.TravelRequest(tc.customer, tc.dest, true)
		p2p, err := f.wrapper.Execute(ctxWithTimeout(t), req)
		if err != nil {
			t.Fatalf("p2p %s: %v", tc.dest, err)
		}
		cen, err := central.Execute(ctxWithTimeout(t), req)
		if err != nil {
			t.Fatalf("central %s: %v", tc.dest, err)
		}
		for _, key := range []string{"flightRef", "major_attraction", "carRef"} {
			if p2p[key] != cen[key] {
				t.Errorf("%s: %s differs: p2p=%q central=%q", tc.dest, key, p2p[key], cen[key])
			}
		}
	}
}

func TestCentralFaultPropagates(t *testing.T) {
	reg := service.NewRegistry()
	s := service.NewSimulated("svc1", service.SimulatedOptions{})
	s.Handle("run", func(context.Context, map[string]string) (map[string]string, error) {
		return nil, fmt.Errorf("central backend exploded")
	})
	reg.Register(s)
	f := buildFabric(t, workload.Chain(1), reg, nil)
	central, err := engine.NewCentral(f.net, "central", f.dir, f.plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()
	_, err = central.Execute(ctxWithTimeout(t), map[string]string{"x": "0"})
	if !errors.Is(err, engine.ErrInstanceFault) {
		t.Fatalf("err = %v", err)
	}
}

func TestHubConcentratesLoad(t *testing.T) {
	// E7 sanity check: on Parallel(k), the busiest P2P node handles O(1)
	// messages per execution while the central hub handles ~2k.
	const k = 6
	regP2P := service.NewRegistry()
	workload.RegisterParallelProviders(regP2P, k, service.SimulatedOptions{})
	sc := workload.Parallel(k)

	p2pNet := transport.NewInMem(transport.InMemOptions{})
	defer p2pNet.Close()
	fp := buildFabricOn(t, p2pNet, sc, regP2P, nil)
	if _, err := fp.wrapper.Execute(ctxWithTimeout(t), map[string]string{"x": "0"}); err != nil {
		t.Fatal(err)
	}
	_, p2pBusiest := p2pNet.Stats().Busiest()

	cenNet := transport.NewInMem(transport.InMemOptions{})
	defer cenNet.Close()
	fc := buildFabricOn(t, cenNet, sc, regP2P, nil)
	central, err := engine.NewCentral(cenNet, "central", fc.dir, fc.plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()
	if _, err := central.Execute(ctxWithTimeout(t), map[string]string{"x": "0"}); err != nil {
		t.Fatal(err)
	}
	hub := cenNet.Stats().Nodes["central"]
	hubTraffic := hub.MsgsIn + hub.MsgsOut
	p2pTraffic := p2pBusiest.MsgsIn + p2pBusiest.MsgsOut

	if hubTraffic < int64(2*k) {
		t.Fatalf("hub traffic = %d, want >= %d (2 messages per invocation)", hubTraffic, 2*k)
	}
	// The busiest P2P node is the wrapper (k starts + k dones = 2k) —
	// but no *coordinator* node sees more than a constant number.
	var worstCoord int64
	for addr, ns := range p2pNet.Stats().Nodes {
		if strings.HasPrefix(addr, "host-") {
			if tr := ns.MsgsIn + ns.MsgsOut; tr > worstCoord {
				worstCoord = tr
			}
		}
	}
	if worstCoord > 4 {
		t.Fatalf("busiest coordinator handles %d messages; want O(1) per execution", worstCoord)
	}
	_ = p2pTraffic
}

func TestTCPEndToEndTravel(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	reg := service.NewRegistry()
	if _, err := workload.RegisterTravelProviders(reg, service.SimulatedOptions{}); err != nil {
		t.Fatal(err)
	}
	net := transport.NewTCP()
	defer net.Close()
	dir := engine.NewDirectory()
	funcs := engine.Funcs(workload.TravelGuards())
	sc := workload.Travel()
	placement := deployer.Placement{}
	for _, svc := range sc.Services() {
		h, err := engine.NewHost(net, "127.0.0.1:0", reg, dir, engine.HostOptions{Funcs: funcs})
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		placement[svc] = []deployer.Installer{h}
	}
	dep, err := deployer.Deploy(sc, placement)
	if err != nil {
		t.Fatal(err)
	}
	w, err := engine.NewWrapper(net, "127.0.0.1:0", dir, dep.Plan, funcs)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	out, err := w.Execute(ctxWithTimeout(t), workload.TravelRequest("tina", "melbourne", true))
	if err != nil {
		t.Fatalf("Execute over TCP: %v", err)
	}
	if out["flightRef"] != "QF-TIN-MEL" || out["carRef"] != "CAR-TIN" {
		t.Fatalf("outputs = %v", out)
	}
}

func TestDeployerRejectsUnplacedService(t *testing.T) {
	reg := service.NewRegistry()
	workload.RegisterChainProviders(reg, 2, service.SimulatedOptions{})
	net := transport.NewInMem(transport.InMemOptions{})
	defer net.Close()
	dir := engine.NewDirectory()
	h, err := engine.NewHost(net, "h1", reg, dir, engine.HostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	_, err = deployer.Deploy(workload.Chain(2), deployer.Placement{"svc1": {h}})
	if err == nil || !strings.Contains(err.Error(), "no placement") {
		t.Fatalf("err = %v", err)
	}
}

func TestHostInstallRequiresLocalService(t *testing.T) {
	reg := service.NewRegistry() // empty: service not present
	net := transport.NewInMem(transport.InMemOptions{})
	defer net.Close()
	dir := engine.NewDirectory()
	h, err := engine.NewHost(net, "h1", reg, dir, engine.HostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	err = h.Install("C", &routing.Table{State: "s", Service: "missing", Operation: "op"})
	if err == nil {
		t.Fatal("Install accepted a table for an absent service")
	}
}

func TestHostStates(t *testing.T) {
	reg := service.NewRegistry()
	workload.RegisterChainProviders(reg, 2, service.SimulatedOptions{})
	net := transport.NewInMem(transport.InMemOptions{})
	defer net.Close()
	dir := engine.NewDirectory()
	h, err := engine.NewHost(net, "h1", reg, dir, engine.HostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	dep, err := deployer.Deploy(workload.Chain(2), deployer.Placement{"svc1": {h}, "svc2": {h}})
	if err != nil {
		t.Fatal(err)
	}
	states := h.States("Chain2")
	if len(states) != 2 {
		t.Fatalf("States = %v", states)
	}
	h.Uninstall("Chain2", "s1", 0)
	if got := h.States("Chain2"); len(got) != 1 || got[0] != "s2" {
		t.Fatalf("States after Uninstall = %v", got)
	}
	_ = dep
}

func BenchmarkP2PChain8(b *testing.B) {
	reg := service.NewRegistry()
	workload.RegisterChainProviders(reg, 8, service.SimulatedOptions{})
	f := buildFabric(b, workload.Chain(8), reg, nil)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.wrapper.Execute(ctx, map[string]string{"x": "0"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkP2PTravel(b *testing.B) {
	reg := service.NewRegistry()
	if _, err := workload.RegisterTravelProviders(reg, service.SimulatedOptions{}); err != nil {
		b.Fatal(err)
	}
	f := buildFabric(b, workload.Travel(), reg, engine.Funcs(workload.TravelGuards()))
	ctx := context.Background()
	req := workload.TravelRequest("bench", "melbourne", true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.wrapper.Execute(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}
