package engine_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"selfserv/internal/routing"
	"selfserv/internal/service"
	"selfserv/internal/statechart"
	"selfserv/internal/workload"
)

// eventChart: quote -> [on confirm] purchase -> end. The purchase step
// waits for both the quote's completion AND the user's "confirm" event,
// whose payload carries the approval limit used in the guard.
func eventChart(guard string) *statechart.Statechart {
	return &statechart.Statechart{
		Name:    "Purchasing",
		Inputs:  []statechart.Param{{Name: "item", Type: "string"}},
		Outputs: []statechart.Param{{Name: "order", Type: "string"}},
		Root: &statechart.State{
			ID: "root", Kind: statechart.KindCompound,
			Children: []*statechart.State{
				{ID: "i", Kind: statechart.KindInitial},
				{ID: "quote", Kind: statechart.KindBasic, Service: "Quoter", Operation: "quote",
					Inputs:  []statechart.Binding{{Param: "item", Var: "item"}},
					Outputs: []statechart.Binding{{Param: "price", Var: "price"}}},
				{ID: "purchase", Kind: statechart.KindBasic, Service: "Purchaser", Operation: "buy",
					Inputs:  []statechart.Binding{{Param: "item", Var: "item"}},
					Outputs: []statechart.Binding{{Param: "order", Var: "order"}}},
				{ID: "f", Kind: statechart.KindFinal},
			},
			Transitions: []statechart.Transition{
				{From: "i", To: "quote"},
				{From: "quote", To: "purchase", Event: "confirm", Condition: guard},
				{From: "purchase", To: "f"},
			},
		},
	}
}

func eventFabric(t *testing.T, guard string) *fabric {
	t.Helper()
	reg := service.NewRegistry()
	quoter := service.NewSimulated("Quoter", service.SimulatedOptions{})
	quoter.Handle("quote", func(_ context.Context, p map[string]string) (map[string]string, error) {
		return map[string]string{"price": "120"}, nil
	})
	reg.Register(quoter)
	purchaser := service.NewSimulated("Purchaser", service.SimulatedOptions{})
	purchaser.Handle("buy", func(_ context.Context, p map[string]string) (map[string]string, error) {
		return map[string]string{"order": "ORD-" + p["item"]}, nil
	})
	reg.Register(purchaser)
	return buildFabric(t, eventChart(guard), reg, nil)
}

func TestEventGatesTransition(t *testing.T) {
	f := eventFabric(t, "")
	ctx := ctxWithTimeout(t)

	done := make(chan map[string]string, 1)
	errs := make(chan error, 1)
	go func() {
		out, err := f.wrapper.ExecuteInstance(ctx, "ev1", map[string]string{"item": "widget"})
		if err != nil {
			errs <- err
			return
		}
		done <- out
	}()

	// Without the event, the instance must NOT complete.
	select {
	case out := <-done:
		t.Fatalf("completed without the confirm event: %v", out)
	case err := <-errs:
		t.Fatalf("failed early: %v", err)
	case <-time.After(150 * time.Millisecond):
	}

	if err := f.wrapper.RaiseEvent(ctx, "ev1", "confirm", map[string]string{"approver": "boss"}); err != nil {
		t.Fatalf("RaiseEvent: %v", err)
	}
	select {
	case out := <-done:
		if out["order"] != "ORD-widget" {
			t.Fatalf("out = %v", out)
		}
	case err := <-errs:
		t.Fatalf("execution failed: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("instance did not complete after the event")
	}
}

func TestEventBeforeCompletionAlsoFires(t *testing.T) {
	// Raising the event before the source state finishes must work too:
	// the clause counts pending notifications regardless of order.
	reg := service.NewRegistry()
	quoter := service.NewSimulated("Quoter", service.SimulatedOptions{BaseLatency: 100 * time.Millisecond})
	quoter.Handle("quote", func(context.Context, map[string]string) (map[string]string, error) {
		return map[string]string{"price": "9"}, nil
	})
	reg.Register(quoter)
	purchaser := service.NewSimulated("Purchaser", service.SimulatedOptions{})
	purchaser.Handle("buy", func(_ context.Context, p map[string]string) (map[string]string, error) {
		return map[string]string{"order": "OK"}, nil
	})
	reg.Register(purchaser)
	f := buildFabric(t, eventChart(""), reg, nil)
	ctx := ctxWithTimeout(t)

	done := make(chan error, 1)
	go func() {
		_, err := f.wrapper.ExecuteInstance(ctx, "early", map[string]string{"item": "x"})
		done <- err
	}()
	// Quote takes 100ms; raise immediately.
	time.Sleep(10 * time.Millisecond)
	if err := f.wrapper.RaiseEvent(ctx, "early", "confirm", nil); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("execution: %v", err)
	}
}

func TestEventPayloadGuard(t *testing.T) {
	// The guard references both the quote output and the event payload:
	// price <= limit. A too-low limit must keep the instance waiting; a
	// second confirm with a higher limit releases it.
	f := eventFabric(t, "price <= limit")
	ctx := ctxWithTimeout(t)

	done := make(chan error, 1)
	go func() {
		_, err := f.wrapper.ExecuteInstance(ctx, "pay1", map[string]string{"item": "gold"})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	// price is 120; limit 100 fails the guard -> still waiting.
	if err := f.wrapper.RaiseEvent(ctx, "pay1", "confirm", map[string]string{"limit": "100"}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		t.Fatalf("completed despite failing guard: %v", err)
	case <-time.After(150 * time.Millisecond):
	}
	// A new confirm with limit 200 satisfies the guard.
	if err := f.wrapper.RaiseEvent(ctx, "pay1", "confirm", map[string]string{"limit": "200"}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("execution: %v", err)
	}
}

func TestEventPlanShape(t *testing.T) {
	plan, err := routing.Generate(eventChart("price <= limit"))
	if err != nil {
		t.Fatal(err)
	}
	if evs := plan.Events(); len(evs) != 1 || evs[0] != "confirm" {
		t.Fatalf("Events = %v", evs)
	}
	if subs := plan.EventSubscribers("confirm"); len(subs) != 1 || subs[0] != "purchase" {
		t.Fatalf("Subscribers = %v", subs)
	}
	if subs := plan.EventSubscribers("ghost"); len(subs) != 0 {
		t.Fatalf("ghost subscribers = %v", subs)
	}
	// The purchase clause requires both quote and the event, with the
	// guard receiver-side.
	pre := plan.Tables["purchase"].Preconditions
	if len(pre) != 1 {
		t.Fatalf("preconditions = %+v", pre)
	}
	c := pre[0]
	if len(c.Sources) != 2 || c.Condition != "price <= limit" {
		t.Fatalf("clause = %+v", c)
	}
	found := false
	for _, s := range c.Sources {
		if s == routing.EventSource("confirm") {
			found = true
		}
	}
	if !found {
		t.Fatalf("clause sources = %v", c.Sources)
	}
	// The quote's postprocessing is unconditional (guard moved).
	for _, tgt := range plan.Tables["quote"].Postprocessings {
		if tgt.Condition != "" {
			t.Fatalf("quote postprocessing = %+v", tgt)
		}
	}
}

func TestEventValidation(t *testing.T) {
	t.Run("bad event name", func(t *testing.T) {
		sc := eventChart("")
		sc.Root.Transitions[1].Event = "has space"
		if err := statechart.Validate(sc); err == nil || !strings.Contains(err.Error(), "malformed event name") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("event on initial transition", func(t *testing.T) {
		sc := eventChart("")
		sc.Root.Transitions[0].Event = "go"
		if err := statechart.Validate(sc); err == nil || !strings.Contains(err.Error(), "initial transitions") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("event into final", func(t *testing.T) {
		sc := eventChart("")
		sc.Root.Transitions[2].Event = "finish"
		if err := statechart.Validate(sc); err == nil || !strings.Contains(err.Error(), "final state") {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestRaiseEventUnknownSubscriberIsNoop(t *testing.T) {
	f := travelFabric(t)
	// TravelPlanner has no events; raising one is a harmless no-op.
	if err := f.wrapper.RaiseEvent(context.Background(), "none", "ghost", nil); err != nil {
		t.Fatalf("RaiseEvent: %v", err)
	}
	_ = workload.Travel
}
