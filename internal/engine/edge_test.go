package engine_test

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"selfserv/internal/engine"
	"selfserv/internal/message"
	"selfserv/internal/service"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

// TestHostIgnoresUnknownCoordinator: a notification for a state that is
// not installed must be dropped without crashing the host.
func TestHostIgnoresUnknownCoordinator(t *testing.T) {
	reg := service.NewRegistry()
	net := transport.NewInMem(transport.InMemOptions{Synchronous: true})
	defer net.Close()
	dir := engine.NewDirectory()
	var logged atomic.Int64
	h, err := engine.NewHost(net, "h1", reg, dir, engine.HostOptions{
		Logf: func(string, ...any) { logged.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	err = net.Send(context.Background(), "h1", &message.Message{
		Type: message.TypeNotify, Composite: "ghost", To: "nowhere", From: "a",
	})
	if err != nil {
		t.Fatal(err)
	}
	if logged.Load() == 0 {
		t.Fatal("unknown coordinator message was not logged")
	}
}

// TestHostInvokeEndpoint exercises the remote-invocation surface directly
// (the path the central baseline uses).
func TestHostInvokeEndpoint(t *testing.T) {
	reg := service.NewRegistry()
	echo := service.NewSimulated("Echo", service.SimulatedOptions{}).Echo("op")
	reg.Register(echo)
	net := transport.NewInMem(transport.InMemOptions{})
	defer net.Close()
	dir := engine.NewDirectory()
	h, err := engine.NewHost(net, "h1", reg, dir, engine.HostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	replies := make(chan *message.Message, 1)
	_, err = net.Listen("caller", func(_ context.Context, m *message.Message) { replies <- m })
	if err != nil {
		t.Fatal(err)
	}

	send := func(to string) *message.Message {
		t.Helper()
		err := net.Send(context.Background(), "h1", &message.Message{
			Type: message.TypeInvoke, Instance: "tok1", To: to,
			ReplyTo: "caller", Vars: map[string]string{"k": "v"},
		})
		if err != nil {
			t.Fatal(err)
		}
		select {
		case m := <-replies:
			return m
		case <-time.After(5 * time.Second):
			t.Fatal("no reply")
			return nil
		}
	}

	if m := send("Echo/op"); m.Error != "" || m.Vars["k"] != "v" || m.Instance != "tok1" {
		t.Fatalf("reply = %+v", m)
	}
	if m := send("Echo/none"); m.Error == "" {
		t.Fatal("unknown operation did not error")
	}
	if m := send("Ghost/op"); m.Error == "" {
		t.Fatal("unknown service did not error")
	}
	if m := send("malformed"); m.Error == "" || !strings.Contains(m.Error, "malformed") {
		t.Fatalf("malformed target reply = %+v", m)
	}
}

// TestWrapperDropsForeignAndLateMessages: messages for other composites or
// finished/unknown instances must be ignored.
func TestWrapperDropsForeignAndLateMessages(t *testing.T) {
	reg := service.NewRegistry()
	workload.RegisterChainProviders(reg, 1, service.SimulatedOptions{})
	f := buildFabric(t, workload.Chain(1), reg, nil)

	// Normal run to learn the wrapper address works.
	out, err := f.wrapper.Execute(ctxWithTimeout(t), map[string]string{"x": "0"})
	if err != nil || out["x"] != "1" {
		t.Fatalf("run: %v %v", out, err)
	}
	wAddr := f.wrapper.Addr()
	// Foreign composite.
	if err := f.net.Send(context.Background(), wAddr, &message.Message{
		Type: message.TypeDone, Composite: "Other", Instance: "i1", From: "s1",
	}); err != nil {
		t.Fatal(err)
	}
	// Late done for a finished instance.
	if err := f.net.Send(context.Background(), wAddr, &message.Message{
		Type: message.TypeDone, Composite: "Chain1", Instance: "i1", From: "s1",
	}); err != nil {
		t.Fatal(err)
	}
	// Fault for unknown instance.
	if err := f.net.Send(context.Background(), wAddr, &message.Message{
		Type: message.TypeFault, Composite: "Chain1", Instance: "zzz", From: "s1", Error: "boom",
	}); err != nil {
		t.Fatal(err)
	}
	// The wrapper still works afterwards.
	out, err = f.wrapper.Execute(ctxWithTimeout(t), map[string]string{"x": "5"})
	if err != nil || out["x"] != "6" {
		t.Fatalf("post-noise run: %v %v", out, err)
	}
}

// TestCentralStallsOnEventChart: the central baseline does not implement
// ECA events, so an event-gated chart must stall with a diagnostic rather
// than hang.
func TestCentralStallsOnEventChart(t *testing.T) {
	f := eventFabric(t, "")
	central, err := engine.NewCentral(f.net, "central", f.dir, f.plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()
	_, err = central.Execute(ctxWithTimeout(t), map[string]string{"item": "x"})
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("err = %v, want stall diagnostic", err)
	}
}

// TestP2PUnderLossyNetworkEventuallyFailsCleanly: with heavy loss the
// execution may hang awaiting a dropped message; the wrapper must respect
// the context deadline and return its error rather than block forever.
func TestP2PUnderLossyNetworkEventuallyFailsCleanly(t *testing.T) {
	reg := service.NewRegistry()
	workload.RegisterChainProviders(reg, 4, service.SimulatedOptions{})
	net := transport.NewInMem(transport.InMemOptions{DropRate: 0.8, Seed: 3})
	defer net.Close()
	f := buildFabricOn(t, net, workload.Chain(4), reg, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.wrapper.Execute(ctx, map[string]string{"x": "0"})
	if err == nil {
		t.Skip("execution survived 80% loss; nothing to assert")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline not honoured")
	}
}

// TestDirectory exercises the peer directory API.
func TestDirectory(t *testing.T) {
	d := engine.NewDirectory()
	if _, ok := d.Lookup("C", "s1"); ok {
		t.Fatal("empty directory resolved something")
	}
	d.Set("C", "s1", "addr1")
	d.Set("C", "s2", "addr2")
	d.Set("D", "s1", "other")
	if addr, ok := d.Lookup("C", "s1"); !ok || addr != "addr1" {
		t.Fatalf("Lookup = %q %v", addr, ok)
	}
	peers := d.Peers("C")
	if len(peers) != 2 || peers["s2"] != "addr2" {
		t.Fatalf("Peers = %v", peers)
	}
	// Peers returns a copy.
	peers["s1"] = "mutated"
	if addr, _ := d.Lookup("C", "s1"); addr != "addr1" {
		t.Fatal("Peers exposed internal state")
	}
}
