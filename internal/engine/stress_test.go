package engine_test

// The concurrent-instance stress contract behind the lock-striped
// engine state (shard.go, docs/engine.md): one composite, many
// in-flight executions, every one must complete with the right outputs
// and none may observe another's variables. Runs as part of `make
// flake` (race detector, count=10, nightly in CI), where a missed
// shard/instance lock or a bag shared across instances shows up as a
// race report or a wrong output.

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"selfserv/internal/deployer"
	"selfserv/internal/engine"
	"selfserv/internal/service"
	"selfserv/internal/statechart"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

// TestConcurrentInstancesStress drives 64 concurrent Executes per
// composite shape — well past the shard count, so same-shard instances
// exercise the per-instance locking too — each instance with a DISTINCT
// input, and checks every output. Cross-instance state leakage (the bug
// class striping could introduce) corrupts an output deterministically:
// Chain's x threads through every hop, Parallel's y_i are per-branch
// sums of the instance's own x.
func TestConcurrentInstancesStress(t *testing.T) {
	const inflight = 64
	const k = 4

	t.Run("chain", func(t *testing.T) {
		reg := service.NewRegistry()
		workload.RegisterChainProviders(reg, k, service.SimulatedOptions{})
		f := buildFabric(t, workload.Chain(k), reg, nil)
		runConcurrent(t, inflight, func(ctx context.Context, i int) error {
			in := map[string]string{"x": strconv.Itoa(i * 100)}
			out, err := f.wrapper.Execute(ctx, in)
			if err != nil {
				return err
			}
			if want := strconv.Itoa(i*100 + k); out["x"] != want {
				return fmt.Errorf("instance %d: x = %q, want %s (cross-instance leak?)", i, out["x"], want)
			}
			return nil
		})
	})

	t.Run("parallel", func(t *testing.T) {
		reg := service.NewRegistry()
		workload.RegisterParallelProviders(reg, k, service.SimulatedOptions{})
		sc := workload.Parallel(k)
		sc.Outputs = nil
		for i := 1; i <= k; i++ {
			sc.Outputs = append(sc.Outputs, statechart.Param{Name: fmt.Sprintf("y%d", i), Type: "number"})
		}
		f := buildFabric(t, sc, reg, nil)
		runConcurrent(t, inflight, func(ctx context.Context, i int) error {
			in := map[string]string{"x": strconv.Itoa(i * 100)}
			out, err := f.wrapper.Execute(ctx, in)
			if err != nil {
				return err
			}
			for b := 1; b <= k; b++ {
				if want := strconv.Itoa(i*100 + b); out[fmt.Sprintf("y%d", b)] != want {
					return fmt.Errorf("instance %d: y%d = %q, want %s (cross-instance leak?)",
						i, b, out[fmt.Sprintf("y%d", b)], want)
				}
			}
			return nil
		})
	})
}

// TestTightCapConcurrentInstances pins the eviction gate of the sharded
// tables: with MaxInstancesPerState equal to the in-flight count, NO
// live instance may be evicted — eviction must key on the table's TOTAL
// population, not the shard's. (A per-shard bound of cap/shards would
// evict any two same-shard instances on sight at this cap, hanging
// their executions; 16 IDs over 32 shards collide with near certainty.)
func TestTightCapConcurrentInstances(t *testing.T) {
	const inflight = 16
	reg := service.NewRegistry()
	workload.RegisterChainProviders(reg, 2, service.SimulatedOptions{})
	sc := workload.Chain(2)

	net := transport.NewInMem(transport.InMemOptions{})
	t.Cleanup(func() { net.Close() })
	dir := engine.NewDirectory()
	h, err := engine.NewHost(net, "tight-host", reg, dir, engine.HostOptions{
		MaxInstancesPerState: inflight,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	dep, err := deployer.Deploy(sc, deployer.Placement{"svc1": {h}, "svc2": {h}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := engine.NewWrapper(net, "tight-wrapper", dir, dep.Plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })

	runConcurrent(t, inflight, func(ctx context.Context, i int) error {
		out, err := w.Execute(ctx, map[string]string{"x": strconv.Itoa(i * 10)})
		if err != nil {
			return err
		}
		if want := strconv.Itoa(i*10 + 2); out["x"] != want {
			return fmt.Errorf("instance %d: x = %q, want %s", i, out["x"], want)
		}
		return nil
	})
}

// runConcurrent launches n executions at once and reports every failure.
func runConcurrent(t *testing.T, n int, exec func(ctx context.Context, i int) error) {
	t.Helper()
	ctx := ctxWithTimeout(t)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = exec(ctx, i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("execution %d: %v", i, err)
		}
	}
}
