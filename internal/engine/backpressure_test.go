package engine_test

// Engine-level half of the flow-control contract: transport
// backpressure SURFACES instead of silently dropping a round. A full
// queue at a peer fails the wrapper's start phase (the caller sees the
// transport error) or faults the instance (a coordinator that cannot
// notify its successor reports it), and a refused destination never
// stops the rest of a round's fan-out.

import (
	"errors"
	"strings"
	"testing"

	"selfserv/internal/engine"
	"selfserv/internal/message"
	"selfserv/internal/service"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

func shedFlow() transport.FlowOptions {
	return transport.FlowOptions{QueueLen: 1, Policy: transport.QueueShed}
}

// wedge stalls addr and fills its 1-frame queue, so the next send
// toward it sheds with ErrQueueFull.
func wedge(t *testing.T, net *transport.InMem, addr string) {
	t.Helper()
	net.Hold(addr)
	filler := &message.Message{Type: message.TypeNotify, Composite: "filler"}
	if err := net.Send(ctxWithTimeout(t), addr, filler); err != nil {
		t.Fatalf("pre-filling %s: %v", addr, err)
	}
}

func TestExecuteSurfacesStartBackpressure(t *testing.T) {
	net := transport.NewInMem(transport.InMemOptions{Flow: shedFlow()})
	t.Cleanup(func() { net.Close() })
	reg := service.NewRegistry()
	workload.RegisterChainProviders(reg, 2, service.SimulatedOptions{})
	f := buildFabricOn(t, net, workload.Chain(2), reg, nil)

	// Wedge the entry state's host: the wrapper's start flush must
	// refuse the execution with the transport error, not hang or drop.
	wedge(t, net, f.hosts["svc1"].Addr())

	_, err := f.wrapper.Execute(ctxWithTimeout(t), map[string]string{"x": "0"})
	if !errors.Is(err, transport.ErrQueueFull) {
		t.Fatalf("Execute with a wedged entry host = %v, want ErrQueueFull surfaced", err)
	}
}

func TestCoordinatorBackpressureFaultsInstance(t *testing.T) {
	net := transport.NewInMem(transport.InMemOptions{Flow: shedFlow()})
	t.Cleanup(func() { net.Close() })
	reg := service.NewRegistry()
	workload.RegisterChainProviders(reg, 2, service.SimulatedOptions{})
	f := buildFabricOn(t, net, workload.Chain(2), reg, nil)

	// Wedge the SECOND state's host: the first coordinator fires fine,
	// then cannot deliver its notification — the instance must fault
	// with the backpressure cause, not stall until the caller times out.
	wedge(t, net, f.hosts["svc2"].Addr())

	_, err := f.wrapper.Execute(ctxWithTimeout(t), map[string]string{"x": "0"})
	if !errors.Is(err, engine.ErrInstanceFault) {
		t.Fatalf("Execute = %v, want an instance fault", err)
	}
	// The cause crossed the wire as fault text, so match on it.
	if !strings.Contains(err.Error(), "send queue full") {
		t.Fatalf("fault does not carry the backpressure cause: %v", err)
	}
}

func TestStartFanContinuesPastWedgedBranch(t *testing.T) {
	net := transport.NewInMem(transport.InMemOptions{Flow: shedFlow()})
	t.Cleanup(func() { net.Close() })
	reg := service.NewRegistry()
	workload.RegisterParallelProviders(reg, 2, service.SimulatedOptions{})
	f := buildFabricOn(t, net, workload.Parallel(2), reg, nil)

	// Wedge ONE branch's host; the other must still get its start
	// notification even though the round reports the error — one slow
	// peer stalls only its own traffic.
	healthy := f.hosts["svc2"].Addr()
	before := net.Stats().Nodes[healthy].MsgsIn
	wedge(t, net, f.hosts["svc1"].Addr())

	_, err := f.wrapper.Execute(ctxWithTimeout(t), map[string]string{"x": "0"})
	if !errors.Is(err, transport.ErrQueueFull) {
		t.Fatalf("Execute = %v, want ErrQueueFull surfaced", err)
	}
	after := net.Stats().Nodes[healthy].MsgsIn
	if after <= before {
		t.Fatalf("healthy branch received no start notification (MsgsIn %d -> %d): "+
			"a wedged destination stopped the whole fan", before, after)
	}
}
