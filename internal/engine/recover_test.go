package engine_test

// Engine-level crash recovery (docs/durability.md): a fabric whose
// every endpoint dies mid-Chain(3) is rebuilt over the same journal
// directory, engine.Recover replays the journal into the fresh hosts
// and wrapper, and the interrupted instance completes with zero
// duplicate invocations — the same contract the core-level suite pins
// through Platform.Crash/Recover, here against the engine API directly.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"selfserv/internal/deployer"
	"selfserv/internal/engine"
	"selfserv/internal/journal"
	"selfserv/internal/service"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

func recIncr(_ context.Context, p map[string]string) (map[string]string, error) {
	var x int
	fmt.Sscanf(p["x"], "%d", &x)
	return map[string]string{"x": fmt.Sprint(x + 1)}, nil
}

// buildDurableChain deploys Chain(n) over net with every host and the
// wrapper journaling to j — one host per service, deterministic
// addresses so life B's fabric is shaped exactly like life A's.
func buildDurableChain(t *testing.T, net transport.Network, n int, reg *service.Registry, j *journal.Journal) ([]*engine.Host, *engine.Wrapper) {
	t.Helper()
	sc := workload.Chain(n)
	dir := engine.NewDirectory()
	placement := deployer.Placement{}
	var hosts []*engine.Host
	for i, svc := range sc.Services() {
		h, err := engine.NewHost(net, fmt.Sprintf("rec-host-%d", i), reg, dir, engine.HostOptions{Journal: j})
		if err != nil {
			t.Fatalf("NewHost(%s): %v", svc, err)
		}
		hosts = append(hosts, h)
		placement[svc] = []deployer.Installer{h}
	}
	dep, err := deployer.Deploy(sc, placement)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	w, err := engine.NewWrapper(net, "rec-wrapper", dir, dep.Plan, nil)
	if err != nil {
		t.Fatalf("NewWrapper: %v", err)
	}
	w.SetJournal(j)
	return hosts, w
}

func TestEngineCrashRecoveryMidChain(t *testing.T) {
	const n = 3
	jdir := t.TempDir()
	openJournal := func() *journal.Journal {
		j, err := journal.Open(journal.Options{Dir: jdir, Fsync: journal.FsyncOff})
		if err != nil {
			t.Fatalf("journal.Open: %v", err)
		}
		return j
	}

	// --- life A: the kill lands while svc2's invocation is in flight ---
	netA := transport.NewInMem(transport.InMemOptions{})
	regA := service.NewRegistry()
	reached := make(chan struct{})
	gate := make(chan struct{})
	defer close(gate) // release life A's stuck provider goroutine
	var once sync.Once
	aSims := map[int]*service.Simulated{}
	for i := 1; i <= n; i++ {
		s := service.NewSimulated(fmt.Sprintf("svc%d", i), service.SimulatedOptions{})
		if i == 2 {
			s.Handle("run", func(ctx context.Context, p map[string]string) (map[string]string, error) {
				once.Do(func() { close(reached) })
				<-gate
				return recIncr(ctx, p)
			})
		} else {
			s.Handle("run", recIncr)
		}
		aSims[i] = s
		regA.Register(service.NewIdempotent(s, 0))
	}
	jA := openJournal()
	hostsA, wA := buildDurableChain(t, netA, n, regA, jA)
	if wA.Composite() != workload.Chain(n).Name {
		t.Fatalf("wrapper composite = %q", wA.Composite())
	}

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	execDone := make(chan struct{})
	go func() {
		defer close(execDone)
		// Life A's client: its Execute dies with the process.
		wA.ExecuteInstance(ctxA, "rec-1", map[string]string{"x": "0"})
	}()
	select {
	case <-reached:
	case <-ctxWithTimeout(t).Done():
		t.Fatal("svc2 never reached")
	}
	if got := wA.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}
	// The kill: every endpoint and the journal close, nothing drains, no
	// abandonment or completion records are written.
	wA.Kill()
	for _, h := range hostsA {
		h.Close()
	}
	jA.Close()
	netA.Close()
	cancelA()
	<-execDone

	// --- life B: fresh fabric, same journal directory ------------------
	netB := transport.NewInMem(transport.InMemOptions{})
	defer netB.Close()
	regB := service.NewRegistry()
	bSims := map[int]*service.Simulated{}
	for i := 1; i <= n; i++ {
		s := service.NewSimulated(fmt.Sprintf("svc%d", i), service.SimulatedOptions{})
		s.Handle("run", recIncr)
		bSims[i] = s
		regB.Register(service.NewIdempotent(s, 0))
	}
	jB := openJournal()
	defer jB.Close()
	hostsB, wB := buildDurableChain(t, netB, n, regB, jB)
	defer wB.Close()
	for _, h := range hostsB {
		defer h.Close()
	}

	ctx := ctxWithTimeout(t)
	stats, err := engine.Recover(ctx, jB, hostsB, []*engine.Wrapper{wB})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if stats.Wrappers != 1 {
		t.Errorf("recovered wrappers = %d, want 1 (stats: %s)", stats.Wrappers, stats)
	}
	if s := stats.String(); !strings.Contains(s, "wrappers") {
		t.Errorf("RecoveryStats.String() = %q, want the counter summary", s)
	}
	found := false
	for _, id := range wB.Recovered() {
		if id == "rec-1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("instance rec-1 lost: recovered = %v", wB.Recovered())
	}
	if _, err := wB.WaitRecovered(ctx, "no-such-instance"); err == nil {
		t.Error("WaitRecovered on an unknown instance succeeded")
	}
	out, err := wB.WaitRecovered(ctx, "rec-1")
	if err != nil {
		t.Fatalf("WaitRecovered: %v", err)
	}
	if out["x"] != fmt.Sprint(n) {
		t.Fatalf("x = %q, want %d", out["x"], n)
	}
	if got := wB.Abandoned(); got != 0 {
		t.Errorf("Abandoned = %d, want 0", got)
	}

	// Zero duplicate invocations across both lives: svc1's round was
	// journaled in life A and must not re-run; svc2 was in doubt at the
	// kill and legally re-executes once; svc3 runs only in life B.
	if inv, _, _ := aSims[1].Counters(); inv != 1 {
		t.Errorf("life A svc1 invoked %d times, want 1", inv)
	}
	if inv, _, _ := bSims[1].Counters(); inv != 0 {
		t.Errorf("life B svc1 invoked %d times, want 0 (round was journaled)", inv)
	}
	for i := 2; i <= n; i++ {
		if inv, _, _ := bSims[i].Counters(); inv != 1 {
			t.Errorf("life B svc%d invoked %d times, want 1", i, inv)
		}
	}
	if inv, _, _ := aSims[3].Counters(); inv != 0 {
		t.Errorf("life A svc3 invoked %d times, want 0", inv)
	}
}
