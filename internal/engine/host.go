package engine

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"selfserv/internal/expr"
	"selfserv/internal/journal"
	"selfserv/internal/limits"
	"selfserv/internal/message"
	"selfserv/internal/routing"
	"selfserv/internal/service"
	"selfserv/internal/statechart"
	"selfserv/internal/transport"
)

// HostOptions configure a Host.
type HostOptions struct {
	// Funcs are the guard functions available to condition evaluation.
	Funcs Funcs
	// MaxInstancesPerState bounds per-coordinator instance bookkeeping;
	// the oldest instances are evicted beyond it. Zero means 16384.
	MaxInstancesPerState int
	// Logf, when set, receives coordinator trace lines (tests and the
	// hostd binary use it; benchmarks leave it nil).
	Logf func(format string, args ...any)
	// Limits, when set, gates remote TypeInvoke requests per tenant
	// (message variable engine.TenantVar). Nil admits everything.
	Limits *limits.Limiter
	// Journal, when set, makes every coordinator on this host durable:
	// arrivals, invocations, and firing rounds are journaled at their
	// commit points, cap-hit eviction becomes passivation (state goes to
	// the journal, not the floor), and outbound notifications carry
	// per-instance sequence numbers so crash-recovery redelivery can be
	// deduplicated. Nil keeps the pre-durability in-RAM behavior.
	Journal *journal.Journal
}

// Host is one node of the peer-to-peer execution fabric. It runs the
// coordinators of every state deployed to it (states whose component
// service lives on this node) and answers remote TypeInvoke requests
// (used by the centralized baseline and by remote wrappers).
type Host struct {
	ep       transport.Endpoint
	sender   transport.Sender // outbound handle attributed to this host
	registry *service.Registry
	dir      *Directory
	opts     HostOptions
	funcEnv  expr.Env // function layer shared by every evaluation
	// recorder surfaces shed decisions in the transport's destination-
	// keyed stats (both built-in networks implement it); nil-safe.
	recorder transport.AvailabilityRecorder

	mu     sync.RWMutex
	coords map[string]*coordinator // key: coordKey(composite, stateID, version)

	// Swap observability: frames that reached this host under a stale
	// directory snapshot and were forwarded to the right replica, and
	// frames that could not be placed at all (version retired everywhere).
	rerouted     atomic.Uint64
	droppedStale atomic.Uint64

	// Durability observability: instances whose state was LOST to a
	// cap-hit eviction (no journal, or the passivation write failed),
	// instances passivated to the journal, and passivated instances
	// rehydrated back into RAM on a later frame.
	evicted    atomic.Uint64
	passivated atomic.Uint64
	rehydrated atomic.Uint64
}

// SwapStats reports how many stale-snapshot frames this host re-routed
// and how many it had to drop (faulting the instance). Both should stay
// zero in a steady state; they only move during a fleet rollout.
type SwapStats struct {
	Rerouted     uint64
	DroppedStale uint64
}

// SwapStats returns the host's stale-frame counters.
func (h *Host) SwapStats() SwapStats {
	return SwapStats{Rerouted: h.rerouted.Load(), DroppedStale: h.droppedStale.Load()}
}

// Evicted counts live instances dropped at the cap with their state
// LOST — the pre-durability FIFO eviction. With a journal configured
// this should stay zero (cap hits passivate instead); every increment
// is also logged loudly, because a lost instance stalls or faults its
// composite.
func (h *Host) Evicted() uint64 { return h.evicted.Load() }

// Passivated counts instances serialized to the journal at a cap hit.
func (h *Host) Passivated() uint64 { return h.passivated.Load() }

// Rehydrated counts passivated instances restored into RAM by a later
// notification.
func (h *Host) Rehydrated() uint64 { return h.rehydrated.Load() }

// reroutedVar marks a frame that was already forwarded once by a host
// that had no coordinator for it ('$'-prefixed: engine metadata, never
// a service parameter). One hop is enough to cover the stale-snapshot
// window; a second miss means the version is gone and the frame drops.
const reroutedVar = "$rerouted"

// NewHost creates a host listening on addr over net, executing services
// out of registry and resolving peers through dir.
func NewHost(net transport.Network, addr string, registry *service.Registry, dir *Directory, opts HostOptions) (*Host, error) {
	if opts.MaxInstancesPerState <= 0 {
		opts.MaxInstancesPerState = 16384
	}
	h := &Host{
		registry: registry,
		dir:      dir,
		opts:     opts,
		funcEnv:  opts.Funcs.Env(),
		coords:   map[string]*coordinator{},
	}
	ep, err := net.Listen(addr, h.handle)
	if err != nil {
		return nil, fmt.Errorf("engine: host listen: %w", err)
	}
	h.ep = ep
	h.sender = net.Open(ep.Addr())
	if rec, ok := net.(transport.AvailabilityRecorder); ok {
		h.recorder = rec
	}
	return h, nil
}

// Addr returns the host's transport address.
func (h *Host) Addr() string { return h.ep.Addr() }

// Close unregisters the host from the network.
func (h *Host) Close() error { return h.ep.Close() }

// Install deploys one state's routing table onto this host — the moment
// the paper describes as the deployer "uploading these tables into the
// hosts of the corresponding component services". The host compiles the
// table (parsing every guard and action; see routing.CompileTable),
// registers the state's coordinator, and records its own address in the
// directory. An ill-formed guard fails HERE, at deploy time — never
// during an execution. In-process deployers that already hold a compiled
// table (deployer.Deploy) use InstallCompiled instead, so nothing is
// parsed twice.
func (h *Host) Install(composite string, table *routing.Table) error {
	if table == nil {
		return fmt.Errorf("engine: nil table")
	}
	compiled, err := routing.CompileTable(table)
	if err != nil {
		return fmt.Errorf("engine: install %s/%s: %w", composite, table.State, err)
	}
	return h.InstallCompiled(composite, compiled)
}

// InstallCompiled registers a coordinator for an already-compiled table.
// The compiled artifact is shared, immutable state: one compilation at
// deploy time serves every host and every execution instance.
func (h *Host) InstallCompiled(composite string, table *routing.CompiledTable) error {
	if table == nil {
		return fmt.Errorf("engine: nil table")
	}
	if _, err := h.registry.Lookup(table.Service); err != nil {
		return fmt.Errorf("engine: install %s/%s: %w", composite, table.State, err)
	}
	c := &coordinator{
		host:      h,
		composite: composite,
		version:   table.Version,
		table:     table,
	}
	h.mu.Lock()
	h.coords[coordKey(composite, table.State, table.Version)] = c
	h.mu.Unlock()
	// Join the state's replica set rather than replacing it: N hosts can
	// install the same table and each call lands its address in the
	// shared group (order-independent, so concurrent installs agree).
	// The registration is version-scoped: installing v(n+1) never touches
	// v(n)'s replica set, so draining instances keep their routes.
	h.dir.AddReplicaV(composite, table.Version, table.State, h.Addr())
	return nil
}

// Uninstall removes one version of a state's coordinator (service
// retirement or the rollback of a failed deploy) and withdraws this
// host from that version's replica set so no peer routes new
// notifications here. Version 0 is the unversioned namespace.
func (h *Host) Uninstall(composite, stateID string, version uint64) {
	h.mu.Lock()
	delete(h.coords, coordKey(composite, stateID, version))
	h.mu.Unlock()
	h.dir.RemoveReplicaV(composite, version, stateID, h.Addr())
}

// RetireVersion removes every coordinator of composite's given plan
// version from this host — the final step of a drain, after the last
// pinned instance completed (or was abandoned at the drain deadline).
func (h *Host) RetireVersion(composite string, version uint64) {
	h.mu.Lock()
	var removed []string
	for k, c := range h.coords {
		if comp, state, ok := splitCoordKey(k); ok && comp == composite && c.version == version {
			delete(h.coords, k)
			removed = append(removed, state)
		}
	}
	h.mu.Unlock()
	for _, s := range removed {
		h.dir.RemoveReplicaV(composite, version, s, h.Addr())
	}
}

// States returns the state IDs deployed on this host for composite
// (deduplicated across plan versions).
func (h *Host) States(composite string) []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	for k := range h.coords {
		if comp, state, ok := splitCoordKey(k); ok && comp == composite && !seen[state] {
			seen[state] = true
			out = append(out, state)
		}
	}
	return out
}

// coordinatorFor returns the coordinator installed for one (composite,
// state, version), or nil. Recovery uses it to route replayed journal
// records to their owners.
func (h *Host) coordinatorFor(composite, stateID string, version uint64) *coordinator {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.coords[coordKey(composite, stateID, version)]
}

func coordKey(composite, stateID string, version uint64) string {
	return composite + "\x00" + stateID + "\x00" + strconv.FormatUint(version, 10)
}

func splitCoordKey(k string) (composite, stateID string, ok bool) {
	composite, rest, ok1 := strings.Cut(k, "\x00")
	stateID, _, ok2 := strings.Cut(rest, "\x00")
	return composite, stateID, ok1 && ok2
}

// handle is the host's transport handler.
func (h *Host) handle(ctx context.Context, m *message.Message) {
	switch m.Type {
	case message.TypeStart, message.TypeNotify:
		h.mu.RLock()
		c := h.coords[coordKey(m.Composite, m.To, m.Version)]
		if c == nil && m.Version == 0 {
			// Unversioned sender against a versioned deployment: serve the
			// frame with the composite's current version.
			if cur := h.dir.Current(m.Composite); cur != 0 {
				c = h.coords[coordKey(m.Composite, m.To, cur)]
			}
		}
		h.mu.RUnlock()
		if c == nil {
			h.redirect(ctx, m)
			return
		}
		c.onNotification(ctx, m)
	case message.TypeInvoke:
		// Own goroutine: serveInvoke executes the service inline, and the
		// messages of one frame are delivered sequentially — a coalesced
		// invoke round (Central batches per host) must not serialize
		// co-hosted executions. Invokes are order-independent (replies
		// correlate by token), so frame FIFO is not needed here.
		go h.serveInvoke(ctx, m)
	default:
		h.logf("host %s: unexpected message %s", h.Addr(), m)
	}
}

// redirect handles a start/notify frame that reached a host with no
// matching coordinator. During a fleet rollout a sender may route under
// a stale directory snapshot (pushes are atomic per host, not across
// the fleet): the frame is DETECTED here — the version pin doesn't
// match any local coordinator — and re-routed once via this host's own
// directory rather than misdelivered into the wrong version's state. A
// frame that still has no home (its version was retired everywhere, or
// it already took its one re-route hop) is dropped loudly: counted,
// logged, and the instance faulted to its wrapper so the client fails
// instead of hanging.
func (h *Host) redirect(ctx context.Context, m *message.Message) {
	if m.Vars[reroutedVar] == "" {
		if addr, ok := h.dir.RouteV(m.Composite, m.Version, m.To, m.Instance, m.Vars[TenantVar]); ok && addr != h.Addr() {
			fwd := m.Clone()
			fwd.MergeVars(map[string]string{reroutedVar: "1"})
			if err := h.sender.Send(ctx, addr, fwd); err == nil {
				h.rerouted.Add(1)
				h.logf("host %s: re-routed stale frame for %s/%s v%d to %s", h.Addr(), m.Composite, m.To, m.Version, addr)
				return
			}
		}
	}
	h.droppedStale.Add(1)
	h.logf("host %s: no coordinator for %s/%s v%d; dropping %s", h.Addr(), m.Composite, m.To, m.Version, m)
	if addr, ok := h.lookupWrapper(m.Composite, m.Version); ok {
		f := fault(m.Composite, m.Instance, m.To, fmt.Errorf("engine: frame for retired plan version %d of %s/%s dropped", m.Version, m.Composite, m.To))
		f.Version = m.Version
		if err := h.sender.Send(ctx, addr, f); err != nil {
			h.logf("host %s: stale-frame fault delivery failed: %v", h.Addr(), err)
		}
	}
}

// lookupWrapper resolves the wrapper endpoint of composite, preferring
// the exact plan version's registration and falling back to the current
// one (so a retired version's fault still reaches somebody who can log
// it against the instance).
func (h *Host) lookupWrapper(composite string, version uint64) (string, bool) {
	if addr, ok := h.dir.LookupV(composite, version, message.WrapperID); ok {
		return addr, true
	}
	return h.dir.Lookup(composite, message.WrapperID)
}

// serveInvoke executes a remote invocation request ("service/operation"
// in To) and replies with a TypeResult to m.ReplyTo.
func (h *Host) serveInvoke(ctx context.Context, m *message.Message) {
	reply := &message.Message{
		Type:      message.TypeResult,
		Composite: m.Composite,
		Instance:  m.Instance,
		From:      m.To,
	}
	svc, op, ok := strings.Cut(m.To, "/")
	if !ok {
		reply.Error = fmt.Sprintf("engine: malformed invoke target %q", m.To)
	} else if err := h.opts.Limits.Allow(m.Vars[TenantVar]); err != nil {
		// Per-tenant admission: the shed is decided before the provider
		// is touched, and surfaces in this host's transport stats.
		if h.recorder != nil {
			h.recorder.RecordShed(h.Addr())
		}
		reply.Error = err.Error()
	} else {
		// Reserved '$'-prefixed variables are engine metadata, not service
		// parameters: the tenant moves to Request.Tenant, and the invoke
		// token (unique per firing) becomes the idempotency key so a
		// retried TypeInvoke can never execute the provider twice.
		params := m.Vars
		if _, tagged := params[TenantVar]; tagged {
			params = make(map[string]string, len(m.Vars))
			for k, v := range m.Vars {
				if !strings.HasPrefix(k, "$") {
					params[k] = v
				}
			}
		}
		resp, err := h.registry.Invoke(ctx, service.Request{
			Service:        svc,
			Operation:      op,
			Params:         params,
			Tenant:         m.Vars[TenantVar],
			IdempotencyKey: m.Composite + "/" + m.Instance + "/" + m.To,
		})
		if err != nil {
			reply.Error = err.Error()
		} else {
			reply.Vars = resp.Outputs
		}
	}
	if m.ReplyTo == "" {
		h.logf("host %s: invoke without replyTo", h.Addr())
		return
	}
	if err := h.sender.Send(ctx, m.ReplyTo, reply); err != nil {
		h.logf("host %s: reply to %s failed: %v", h.Addr(), m.ReplyTo, err)
	}
}

func (h *Host) logf(format string, args ...any) {
	if h.opts.Logf != nil {
		h.opts.Logf(format, args...)
	}
}

// coordinator is the peer software component attached to one state of a
// composite service (§2). It interprets its COMPILED routing table:
// collect notifications until a precondition clause is satisfied, invoke
// the local component service, then run postprocessing. All guards and
// actions were parsed at install time; per notification the coordinator
// only bumps an interned counter, compares bitmasks, and walks prebuilt
// expression trees.
//
// Instance bookkeeping is LOCK-STRIPED (see shard.go): the instance
// table is sharded by instance-ID hash and each instance carries its
// own mutex, so concurrent executions of the same composite never
// serialize behind a coordinator-wide lock — the critical section of a
// notification (counter bump, bag merge, guard eval) is per instance.
type coordinator struct {
	host      *Host
	composite string
	version   uint64 // plan version this coordinator belongs to; pins routing
	table     *routing.CompiledTable

	instances shardedTable[*coordInstance]
}

// coordInstance is the per-execution bookkeeping of one coordinator.
// Notification counts are indexed by the table's interned source IDs;
// pending mirrors "count > 0" as a bitmask so clause coverage is a
// word-compare (routing.CompiledClause.Covered).
//
// Variables are kept LAYERED, not merged on arrival: srcVars holds one
// accumulated bag per interned source, base holds everything else
// (non-interned senders, and the results of this coordinator's own
// firings). The bag guards and bindings see is rebuilt on demand by
// merging base plus every source bag in the table's canonical merge
// order (sorted source IDs, routing.CompiledTable.MergeOrder) — NEVER
// in arrival order. Arrival-order merging was the seed-8 AND-join
// liveness bug: two alternative successors of one concurrent state
// (clauses {A,B} guarded "x%2=0" vs "x%2=1") could merge A's and B's
// bags in opposite orders under scheduler jitter, disagree on x, and
// BOTH reject — stalling the instance forever. With a canonical order,
// every receiver of the same notifications computes the same bag, so
// exactly one of a set of complementary guards holds.
type coordInstance struct {
	mu      sync.Mutex // lockorder:instance — guards everything below; see shard.go for lock order
	counts  []uint32
	pending []uint64
	base    map[string]string
	srcVars []map[string]string // per interned source, accumulated in sender FIFO order
	srcVer  []uint32            // bumped on every write to the matching srcVars bag
	merged  map[string]string   // cached canonical merge; nil when stale
	running bool                // an invocation is in flight; new clause checks wait
	fireSeq uint64              // firings launched so far; keys idempotent retries

	// Durability bookkeeping, used only when the host has a journal.
	// lastSeen is the per-interned-source high-water mark of received
	// message sequence numbers: recovery redelivery may repeat a message
	// the crashed process already applied (and journaled), and the mark
	// drops the duplicate. sendSeq numbers this instance's outbound
	// notifications. hydrated is false until the instance has checked the
	// journal's passive index for an earlier life to restore.
	lastSeen []uint64
	sendSeq  uint64
	hydrated bool
}

func (c *coordinator) instance(id string) *coordInstance {
	j := c.host.opts.Journal
	return c.instances.getOrCreate(id, c.host.opts.MaxInstancesPerState, func() *coordInstance {
		inst := &coordInstance{
			counts:   make([]uint32, c.table.NumSources()),
			pending:  make([]uint64, c.table.MaskWords()),
			base:     map[string]string{},
			srcVars:  make([]map[string]string, c.table.NumSources()),
			srcVer:   make([]uint32, c.table.NumSources()),
			hydrated: j == nil,
		}
		if j != nil {
			inst.lastSeen = make([]uint64, c.table.NumSources())
		}
		return inst
	}, c.onEvict)
}

// onEvict is consulted by the instance table when a cap-hit create
// needs room: it runs under the shard mutex, so it may only TryLock the
// victim (see shard.go's lock-order note). A victim with an invocation
// in flight — or one whose mutex is busy — is vetoed. Otherwise, with a
// journal configured, the victim's full state is serialized as a
// passivation record (rehydrated transparently by its next frame); with
// no journal, the state is LOST, counted, and logged loudly.
func (c *coordinator) onEvict(id string, inst *coordInstance) bool {
	if !inst.mu.TryLock() {
		return false
	}
	defer inst.mu.Unlock()
	if inst.running {
		return false
	}
	// A freshly created object whose first notification has not yet been
	// applied (or whose passive state has not been read back) must not be
	// selected: passivating it would append an EMPTY snapshot that
	// shadows the instance's real record in the journal's passive index,
	// losing every arrival it had accumulated. The creator is about to
	// lock it anyway; veto and let the scan pick an older entry.
	if !inst.hydrated {
		return false
	}
	if j := c.host.opts.Journal; j != nil {
		if err := j.Append(c.snapshotLocked(journal.KindPassivate, id, inst)); err == nil {
			c.host.passivated.Add(1)
			c.host.logf("coord %s/%s: passivated instance %s at cap %d",
				c.composite, c.table.State, id, c.host.opts.MaxInstancesPerState)
			return true
		} else {
			c.host.logf("coord %s/%s: passivation write for %s failed (%v); falling back to LOSSY eviction",
				c.composite, c.table.State, id, err)
		}
	}
	c.host.evicted.Add(1)
	c.host.logf("coord %s/%s: EVICTED live instance %s at cap %d — its state is lost and the execution will stall or fault",
		c.composite, c.table.State, id, c.host.opts.MaxInstancesPerState)
	return true
}

// snapshotLocked serializes inst as a snapshot or passivation record.
// Per-source state is keyed by source NAME so a restart that recompiles
// the plan (possibly interning in a different order) can still map it
// back. Caller holds inst.mu; Append marshals synchronously, so sharing
// the live maps with the record is safe.
func (c *coordinator) snapshotLocked(kind string, instanceID string, inst *coordInstance) *journal.Record {
	var counts map[string]uint32
	var bags map[string]map[string]string
	var seen map[string]uint64
	for i := 0; i < c.table.NumSources(); i++ {
		name := c.table.SourceName(i)
		if inst.counts[i] > 0 {
			if counts == nil {
				counts = map[string]uint32{}
			}
			counts[name] = inst.counts[i]
		}
		if inst.srcVars[i] != nil {
			if bags == nil {
				bags = map[string]map[string]string{}
			}
			bags[name] = inst.srcVars[i]
		}
		if inst.lastSeen != nil && inst.lastSeen[i] > 0 {
			if seen == nil {
				seen = map[string]uint64{}
			}
			seen[name] = inst.lastSeen[i]
		}
	}
	return &journal.Record{
		Kind:      kind,
		Composite: c.composite,
		State:     c.table.State,
		Instance:  instanceID,
		Version:   c.version,
		Vars:      inst.base,
		Counts:    counts,
		SrcVars:   bags,
		LastSeen:  seen,
		FireSeq:   inst.fireSeq,
		SendSeq:   inst.sendSeq,
	}
}

// restoreLocked loads a snapshot/passivation record into inst (fresh or
// being rebuilt by recovery). Sources that are no longer interned —
// plan drift across a restart — fold their bags into the base layer,
// which at worst re-delivers their variables out of canonical order but
// never loses data. Caller holds inst.mu.
func (c *coordinator) restoreLocked(inst *coordInstance, r *journal.Record) {
	for k, v := range r.Vars {
		inst.base[k] = v
	}
	for name, n := range r.Counts {
		if idx, ok := c.table.SourceIndex(name); ok {
			inst.counts[idx] = n
			if n > 0 {
				inst.pending[idx>>6] |= 1 << (idx & 63)
			}
		}
	}
	for name, bag := range r.SrcVars {
		idx, ok := c.table.SourceIndex(name)
		if !ok {
			for k, v := range bag {
				inst.base[k] = v
			}
			continue
		}
		m := make(map[string]string, len(bag))
		for k, v := range bag {
			m[k] = v
		}
		inst.srcVars[idx] = m
		inst.srcVer[idx]++
	}
	if inst.lastSeen != nil {
		for name, s := range r.LastSeen {
			if idx, ok := c.table.SourceIndex(name); ok {
				inst.lastSeen[idx] = s
			}
		}
	}
	inst.fireSeq = r.FireSeq
	inst.sendSeq = r.SendSeq
	inst.merged = nil
}

// rehydrateLocked gives a freshly created instance its earlier life
// back, if the journal holds a passivation record for it. Runs at most
// once per in-RAM object; caller holds inst.mu and has confirmed table
// membership.
func (c *coordinator) rehydrateLocked(instanceID string, inst *coordInstance) {
	if inst.hydrated {
		return
	}
	inst.hydrated = true
	j := c.host.opts.Journal
	if j == nil {
		return
	}
	r, ok, err := j.TakePassive(c.composite, c.table.State, instanceID)
	if err != nil {
		c.host.logf("coord %s/%s: rehydrate %s: %v", c.composite, c.table.State, instanceID, err)
		return
	}
	if !ok {
		return
	}
	c.restoreLocked(inst, r)
	c.host.rehydrated.Add(1)
	c.host.logf("coord %s/%s: rehydrated instance %s (fireSeq %d)",
		c.composite, c.table.State, instanceID, inst.fireSeq)
}

// mergedVarsLocked returns the instance's variable bag (mergeLayers
// over the table's canonical order). The result is cached until the
// next layer write and MUST NOT be mutated by callers. Caller holds
// inst.mu.
func (c *coordinator) mergedVarsLocked(inst *coordInstance) map[string]string {
	if inst.merged == nil {
		inst.merged = mergeLayers(inst.base, c.table.MergeOrder(), inst.srcVars)
	}
	return inst.merged
}

// onNotification processes a start/notify message for one instance.
func (c *coordinator) onNotification(ctx context.Context, m *message.Message) {
	inst := c.instance(m.Instance)
	inst.mu.Lock()
	// Between the table lookup and taking inst.mu, an over-cap create in
	// this shard may have evicted inst — and a later notification may
	// already have re-created the ID. Re-check membership under the lock
	// and chase the current pointer, so one instance's notifications can
	// never split across an orphaned object and its fresh twin (the
	// single-mutex design excluded this by construction; eviction of a
	// live instance still loses its state, as documented, but it must
	// lose it to ONE object).
	for {
		cur, ok := c.instances.get(m.Instance)
		if ok && cur == inst {
			break
		}
		inst.mu.Unlock()
		inst = c.instance(m.Instance)
		inst.mu.Lock()
	}
	// A fresh in-RAM object may be the reincarnation of a passivated
	// instance: restore it from the journal before applying the frame.
	c.rehydrateLocked(m.Instance, inst)
	j := c.host.opts.Journal
	// Senders outside the interned universe appear in no precondition
	// clause and can never contribute to coverage; their variables go to
	// the base layer, the count is dropped.
	if idx, ok := c.table.SourceIndex(m.From); ok {
		// Durable dedup: recovery redelivers the journaled outbound
		// messages of every restored round conservatively — a message the
		// crashed process already delivered (and whose effect this
		// instance already journaled) comes again, and counting it twice
		// would double-arm the AND-join. Sequence-stamped messages at or
		// below the sender's high-water mark are duplicates; unstamped
		// messages (Seq 0: journal-less sender, or a pre-durability peer)
		// pass untouched.
		if j != nil && m.Seq != 0 && inst.lastSeen != nil {
			if seq := uint64(m.Seq); seq <= inst.lastSeen[idx] {
				c.host.logf("coord %s/%s: dropped duplicate frame %s seq %d from %s (seen %d)",
					c.composite, c.table.State, m.Instance, m.Seq, m.From, inst.lastSeen[idx])
				inst.mu.Unlock()
				return
			} else {
				inst.lastSeen[idx] = seq
			}
		}
	}
	// Write-ahead commit point: the arrival becomes durable before its
	// effects do. An append failure degrades durability, never liveness —
	// the frame is still applied.
	if j != nil {
		rec := &journal.Record{
			Kind:      journal.KindArrival,
			Composite: c.composite,
			State:     c.table.State,
			Instance:  m.Instance,
			Version:   c.version,
			Src:       m.From,
			Seq:       uint64(m.Seq),
			Vars:      m.Vars,
		}
		if err := j.Append(rec); err != nil {
			c.host.logf("coord %s/%s: journal arrival append for %s failed: %v",
				c.composite, c.table.State, m.Instance, err)
		}
	}
	if idx, ok := c.table.SourceIndex(m.From); ok {
		bag := inst.srcVars[idx]
		if bag == nil {
			bag = make(map[string]string, len(m.Vars))
			inst.srcVars[idx] = bag
		}
		for k, v := range m.Vars {
			bag[k] = v
		}
		inst.srcVer[idx]++
		inst.counts[idx]++
		inst.pending[idx>>6] |= 1 << (idx & 63)
	} else {
		for k, v := range m.Vars {
			inst.base[k] = v
		}
	}
	inst.merged = nil
	c.maybeFireLocked(ctx, m.Instance, inst)
	inst.mu.Unlock()
}

// maybeFireLocked checks precondition clauses and launches the service
// invocation when one is satisfied: all of its sources have pending
// notifications AND its receiver-side condition (if any) holds on the
// merged variable bag. Clauses whose condition evaluates false keep their
// notifications pending — a later notification may change the bag (or
// satisfy an alternative clause). Caller holds inst.mu.
func (c *coordinator) maybeFireLocked(ctx context.Context, instanceID string, inst *coordInstance) {
	if inst.running {
		return
	}
	// The bag is built lazily, only once some clause is covered: most
	// arrivals at a wide AND-join cover nothing and must stay O(m.Vars),
	// not O(whole bag). The build is cached (inst.merged) across clauses
	// and across arrivals that add no variables.
	var bag map[string]string
	for _, clause := range c.table.Preconditions {
		if !clause.Covered(inst.pending) {
			continue
		}
		if bag == nil {
			bag = c.mergedVarsLocked(inst)
		}
		ok, err := evalGuard(clause.Condition, bag, c.host.funcEnv)
		if err != nil {
			// A receiver-side guard referencing still-missing variables is
			// not an error: the bag may complete later. Anything else is.
			if isUndefinedVar(err) {
				continue
			}
			go c.sendFault(ctx, instanceID, err)
			return
		}
		if !ok {
			continue
		}
		// Consume the notifications of the matched clause so loops re-arm.
		// With a journal, remember WHICH sources were decremented (by
		// name): the round record replays the same decrements on recovery.
		var consumed []string
		for _, idx := range clause.SourceIndexes() {
			if inst.counts[idx] > 0 {
				inst.counts[idx]--
				if c.host.opts.Journal != nil {
					consumed = append(consumed, c.table.SourceName(idx))
				}
			}
			if inst.counts[idx] == 0 {
				inst.pending[idx>>6] &^= 1 << (idx & 63)
			}
		}
		// The firing works on a private snapshot of the bag (applyActions
		// already copies). With no actions to apply, the cached canonical
		// merge ITSELF becomes the snapshot: its only other reference is
		// inst.merged, cleared here, and the layers it was built from are
		// untouched — the next evaluation rebuilds the cache. Ownership
		// transfer instead of an O(bag) copy per firing.
		var snapshot map[string]string
		if len(clause.Actions) > 0 {
			snapshot, err = applyActions(clause.Actions, bag, c.host.funcEnv)
			if err != nil {
				go c.sendFault(ctx, instanceID, err)
				return
			}
		} else {
			snapshot = bag
			inst.merged = nil
		}
		inst.running = true
		inst.fireSeq++
		// Remember each source bag's version at fire time: finish uses it
		// to tell data absorbed into this snapshot from data that arrived
		// while the service ran.
		firedVer := append([]uint32(nil), inst.srcVer...)
		go c.fire(ctx, instanceID, inst.fireSeq, snapshot, firedVer, consumed)
		return
	}
}

// isUndefinedVar reports whether err stems from an undefined variable in
// a guard (receiver-side guards tolerate these until the bag completes).
func isUndefinedVar(err error) bool {
	return err != nil && strings.Contains(err.Error(), "undefined variable")
}

// fire invokes the component service and runs postprocessing. fireSeq
// numbers this firing within the instance; firedVer is the per-source
// bag version vector captured when the snapshot was taken (see finish);
// consumed names the sources whose counts the matched clause
// decremented (journaling only — nil otherwise).
func (c *coordinator) fire(ctx context.Context, instanceID string, fireSeq uint64, vars map[string]string, firedVer []uint32, consumed []string) {
	c.host.logf("coord %s/%s: firing instance %s", c.composite, c.table.State, instanceID)

	params, err := bindInputs(c.table.Inputs, vars, c.host.funcEnv)
	var key string
	if err == nil {
		var resp service.Response
		// The idempotency key names the LOGICAL firing — composite,
		// instance, state, firing number — never the provider that ends
		// up executing it: a community retrying the invocation on an
		// alternative member after a failure replays the cached response
		// instead of executing the operation twice. The same property
		// carries across a CRASH: recovery replays the journal up to the
		// last completed round, so a re-fired interrupted round computes
		// the same fireSeq, presents the same key, and — with the journaled
		// invoke outcome primed back into service.Idempotent — replays the
		// completed invocation instead of executing it a second time.
		key = c.composite + "/" + instanceID + "/" + c.table.State + "/" + strconv.FormatUint(fireSeq, 10)
		resp, err = c.host.registry.Invoke(ctx, service.Request{
			Service:        c.table.Service,
			Operation:      c.table.Operation,
			Params:         params,
			Tenant:         vars[TenantVar],
			IdempotencyKey: key,
		})
		if err == nil {
			bindOutputs(c.table.Outputs, resp.Outputs, vars)
			// Commit point: the invocation's outcome is durable before its
			// effects propagate. Only successes are recorded — Idempotent
			// forgets failures, and so does the journal, so a crash between
			// a failed attempt and its retry re-executes (correct).
			if j := c.host.opts.Journal; j != nil {
				rec := &journal.Record{
					Kind:      journal.KindInvoke,
					Composite: c.composite,
					State:     c.table.State,
					Instance:  instanceID,
					Version:   c.version,
					Service:   c.table.Service,
					Key:       key,
					Outputs:   resp.Outputs,
					FireSeq:   fireSeq,
				}
				if jerr := j.Append(rec); jerr != nil {
					c.host.logf("coord %s/%s: journal invoke append for %s failed: %v",
						c.composite, c.table.State, instanceID, jerr)
				}
			}
		}
	}

	if err != nil {
		c.finish(ctx, instanceID, nil, firedVer, fireSeq, nil, err)
		return
	}
	c.finish(ctx, instanceID, vars, firedVer, fireSeq, consumed, nil)
}

// finish merges results, re-checks pending clauses (loops), and runs the
// postprocessing phase: evaluating each target's precompiled condition on
// the local variable bag and collecting the notifications of the peers
// whose guard holds into a per-destination outbox, flushed once at the
// end of the round — peers co-hosted at one address share a single wire
// frame (per-destination FIFO order preserved).
func (c *coordinator) finish(ctx context.Context, instanceID string, vars map[string]string, firedVer []uint32, fireSeq uint64, consumed []string, invokeErr error) {
	j := c.host.opts.Journal
	inst, _ := c.instances.get(instanceID)
	var box outbox
	built := false
	var postErr error
	if inst != nil {
		inst.mu.Lock()
		if vars != nil {
			// The firing's results (clause actions + service outputs) join
			// the BASE layer. Source bags whose version is unchanged since
			// the fire snapshot was taken are fully ABSORBED by it — their
			// contents already reached the snapshot through the canonical
			// merge — so they are cleared: stale source data must not
			// shadow the fresher results in later evaluations. A bag
			// written DURING the firing keeps its contents and still
			// overrides base, so a loop's fresh notification beats our
			// now-older results.
			var cleared []string
			for i, bag := range inst.srcVars {
				if bag != nil && inst.srcVer[i] == firedVer[i] {
					inst.srcVars[i] = nil
					if j != nil {
						cleared = append(cleared, c.table.SourceName(i))
					}
				}
			}
			for k, v := range vars {
				inst.base[k] = v
			}
			inst.merged = nil
			if j != nil {
				// Commit point: the round record must be journaled INSIDE
				// the same critical section as the absorption above. The
				// journal serializes an instance's records (one WAL shard),
				// so an arrival journaled after this record is an arrival
				// applied after it — replay clears exactly the bags this
				// round absorbed, never a fresher one that interleaved. The
				// outbox is therefore also BUILT here (postprocessing is
				// pure evaluation plus a directory read — instance before
				// directory is fine), so each outbound message's sequence
				// stamp is covered by the record; the flush still happens
				// outside the lock, after it.
				var msgs []journal.OutMsg
				box, msgs, postErr = c.postRound(instanceID, inst, vars)
				built = true
				if postErr == nil {
					rec := &journal.Record{
						Kind:      journal.KindRound,
						Composite: c.composite,
						State:     c.table.State,
						Instance:  instanceID,
						Version:   c.version,
						FireSeq:   fireSeq,
						Consumed:  consumed,
						Cleared:   cleared,
						Vars:      vars,
						SendSeq:   inst.sendSeq,
						Msgs:      msgs,
					}
					if err := j.Append(rec); err != nil {
						c.host.logf("coord %s/%s: journal round append for %s failed: %v",
							c.composite, c.table.State, instanceID, err)
					}
					// Periodic snapshot: bounds replay work (and, after
					// compaction, journal size) for long-lived instances.
					if every := j.SnapshotEvery(); every > 0 && fireSeq%uint64(every) == 0 {
						if err := j.Append(c.snapshotLocked(journal.KindSnapshot, instanceID, inst)); err != nil {
							c.host.logf("coord %s/%s: journal snapshot append for %s failed: %v",
								c.composite, c.table.State, instanceID, err)
						}
					}
				}
			}
		}
		inst.running = false
		inst.mu.Unlock()
	}

	if invokeErr != nil {
		c.sendFault(ctx, instanceID, invokeErr)
		return
	}

	if !built {
		// Journal-less path (or the instance vanished): build the outbox
		// from the snapshot without holding any lock, as before.
		box, _, postErr = c.postRound(instanceID, nil, vars)
	}
	if postErr != nil {
		c.sendFault(ctx, instanceID, postErr)
		return
	}
	if err := box.flush(ctx, c.host.sender); err != nil {
		c.sendFault(ctx, instanceID, fmt.Errorf("engine: notify peers of %s: %w", c.table.State, err))
		return
	}
	c.host.logf("coord %s/%s: instance %s notified %d peer(s) in %d frame(s)",
		c.composite, c.table.State, instanceID, box.msgs(), len(box.addrs))

	// Loops: the consumed clause may already be re-satisfiable.
	if inst, _ := c.instances.get(instanceID); inst != nil {
		inst.mu.Lock()
		c.maybeFireLocked(ctx, instanceID, inst)
		inst.mu.Unlock()
	}
}

// postRound runs the postprocessing phase on the round's final bag:
// each target's precompiled condition is evaluated and the
// notifications of the peers whose guard holds are collected into a
// per-destination outbox. When inst is non-nil (the journaling path;
// caller holds inst.mu), every message is stamped with the instance's
// next send sequence number and also returned in journal form — To is
// the LOGICAL peer, not its address, because recovery re-resolves
// addresses through the directory of the restarted fleet.
func (c *coordinator) postRound(instanceID string, inst *coordInstance, vars map[string]string) (outbox, []journal.OutMsg, error) {
	var box outbox
	var logged []journal.OutMsg
	for _, target := range c.table.Postprocessings {
		ok, err := evalGuard(target.Condition, vars, c.host.funcEnv)
		if err != nil {
			return box, nil, err
		}
		if !ok {
			continue
		}
		outVars := vars
		if len(target.Actions) > 0 {
			outVars, err = applyActions(target.Actions, vars, c.host.funcEnv)
			if err != nil {
				return box, nil, err
			}
		}
		typ := message.TypeNotify
		if target.To == message.WrapperID {
			typ = message.TypeDone
		}
		// Deterministic replica choice: the (instance, tenant) key picks
		// the same replica of target.To on every sender, so all of an
		// instance's notifications converge on one coordinator object.
		// The lookup is pinned to THIS coordinator's plan version: an
		// in-flight instance keeps flowing through the tables it started
		// on even while a newer version is live.
		addr, found := c.host.dir.RouteV(c.composite, c.version, target.To, instanceID, vars[TenantVar])
		if !found {
			return box, nil, fmt.Errorf("engine: no address for peer %q of %s v%d", target.To, c.composite, c.version)
		}
		m := &message.Message{
			Type:      typ,
			Composite: c.composite,
			Instance:  instanceID,
			From:      c.table.State,
			To:        target.To,
			Version:   c.version,
			Vars:      outVars,
		}
		if inst != nil {
			inst.sendSeq++
			m.Seq = int(inst.sendSeq)
			logged = append(logged, journal.OutMsg{Type: string(typ), To: target.To, Seq: inst.sendSeq, Vars: outVars})
		}
		box.add(addr, m)
	}
	return box, logged, nil
}

// sendFault reports a failed firing to the wrapper.
func (c *coordinator) sendFault(ctx context.Context, instanceID string, cause error) {
	addr, found := c.host.lookupWrapper(c.composite, c.version)
	if !found {
		c.host.logf("coord %s/%s: fault with no wrapper address: %v", c.composite, c.table.State, cause)
		return
	}
	m := fault(c.composite, instanceID, c.table.State, cause)
	m.Version = c.version
	if err := c.host.sender.Send(ctx, addr, m); err != nil {
		c.host.logf("coord %s/%s: fault delivery failed: %v (original: %v)", c.composite, c.table.State, err, cause)
	}
}

// bindInputs computes the service call parameters from the instance
// variables per the state's compiled input bindings. A binding with Var
// copies the variable (missing variables are an error: the precondition
// fired, so dataflow should have delivered them); a binding with a
// compiled Expr evaluates it.
func bindInputs(bindings []routing.CompiledBinding, vars map[string]string, funcs expr.Env) (map[string]string, error) {
	if len(bindings) == 0 {
		return nil, nil // nil params: providers read, never write, their input map
	}
	params := make(map[string]string, len(bindings))
	for _, b := range bindings {
		switch {
		case b.Var != "":
			v, ok := vars[b.Var]
			if !ok {
				return nil, fmt.Errorf("engine: input %q needs undefined variable %q", b.Param, b.Var)
			}
			params[b.Param] = v
		case b.Expr != nil:
			v, err := b.Expr.Eval(evalEnv(vars, funcs))
			if err != nil {
				return nil, fmt.Errorf("engine: input %q: %w", b.Param, err)
			}
			params[b.Param] = v.Text()
		}
	}
	return params, nil
}

// bindOutputs copies operation outputs into the instance variable bag per
// the state's output bindings. Unbound outputs are ignored; bound-but-
// missing outputs simply don't set the variable (services may omit
// optional outputs).
func bindOutputs(bindings []statechart.Binding, outputs, vars map[string]string) {
	for _, b := range bindings {
		if v, ok := outputs[b.Param]; ok {
			vars[b.Var] = v
		}
	}
}
