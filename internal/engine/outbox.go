package engine

import (
	"context"
	"errors"

	"selfserv/internal/message"
	"selfserv/internal/transport"
)

// outbox collects one firing round's outbound notifications keyed by
// destination address, so a round that notifies several peers hosted at
// the same address pays ONE wire frame for them instead of one per
// notification (the coalescing the ROADMAP's batching item asks for).
// Messages stay in enqueue order per destination and destinations flush
// in first-use order, so per-(destination, instance) FIFO is preserved:
// the receiver's handler sees a round's messages exactly as a sequential
// sender would have emitted them.
//
// An outbox is single-round, single-goroutine state: build, flush, drop.
// Rounds address at most a handful of peers, so destinations live in a
// linearly-scanned slice — no per-round map allocation on the hot path.
type outbox struct {
	addrs   []string
	batches [][]*message.Message
}

// add enqueues m for addr.
func (o *outbox) add(addr string, m *message.Message) {
	for i, a := range o.addrs {
		if a == addr {
			o.batches[i] = append(o.batches[i], m)
			return
		}
	}
	o.addrs = append(o.addrs, addr)
	o.batches = append(o.batches, []*message.Message{m})
}

// empty reports whether nothing was enqueued.
func (o *outbox) empty() bool { return len(o.addrs) == 0 }

// msgs returns the total number of enqueued messages.
func (o *outbox) msgs() int {
	n := 0
	for _, ms := range o.batches {
		n += len(ms)
	}
	return n
}

// flush sends every destination's batch through s, one frame per
// destination. A destination that refuses its frame — a full bounded
// queue (transport.ErrQueueFull), an expired send deadline
// (transport.ErrSendDeadline), or any other transport error — does NOT
// stop the round: the remaining destinations still get their frames, so
// one slow peer stalls only its own traffic. All failures are joined
// into the returned error, which callers surface to the coordinator's
// fault path instead of silently dropping the round.
func (o *outbox) flush(ctx context.Context, s transport.Sender) error {
	var errs []error
	for i, addr := range o.addrs {
		ms := o.batches[i]
		var err error
		if len(ms) == 1 {
			err = s.Send(ctx, addr, ms[0])
		} else {
			err = s.SendBatch(ctx, addr, ms)
		}
		if err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
