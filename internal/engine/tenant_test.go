package engine_test

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"selfserv/internal/engine"
	"selfserv/internal/limits"
	"selfserv/internal/service"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

// recordingProvider captures the full service.Request of every
// invocation, so tests can assert on the tenant tag and idempotency key
// the engine attaches.
type recordingProvider struct {
	name string
	mu   sync.Mutex
	reqs []service.Request
}

func (p *recordingProvider) Name() string         { return p.name }
func (p *recordingProvider) Operations() []string { return []string{"run"} }
func (p *recordingProvider) Requests() []service.Request {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]service.Request(nil), p.reqs...)
}

func (p *recordingProvider) Invoke(_ context.Context, req service.Request) (service.Response, error) {
	p.mu.Lock()
	p.reqs = append(p.reqs, req)
	p.mu.Unlock()
	x, _ := strconv.Atoi(req.Params["x"])
	return service.Response{Outputs: map[string]string{"x": strconv.Itoa(x + 1)}}, nil
}

// TestTenantAndIdempotencyKeyReachProviders: the TenantVar input rides
// the composite's dataflow into every firing's service.Request, each
// firing carries a unique idempotency key naming the logical invocation,
// and the reserved variable never leaks into provider params or the
// result document.
func TestTenantAndIdempotencyKeyReachProviders(t *testing.T) {
	const n = 3
	reg := service.NewRegistry()
	provs := make([]*recordingProvider, n)
	for i := 0; i < n; i++ {
		provs[i] = &recordingProvider{name: "svc" + strconv.Itoa(i+1)}
		reg.Register(provs[i])
	}
	f := buildFabric(t, workload.Chain(n), reg, nil)

	out, err := f.wrapper.Execute(ctxWithTimeout(t), map[string]string{
		"x": "0", engine.TenantVar: "acme",
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if out["x"] != strconv.Itoa(n) {
		t.Fatalf("x = %q, want %d", out["x"], n)
	}
	if _, leaked := out[engine.TenantVar]; leaked {
		t.Fatalf("reserved %s leaked into the result document: %v", engine.TenantVar, out)
	}

	keys := map[string]bool{}
	for _, p := range provs {
		reqs := p.Requests()
		if len(reqs) != 1 {
			t.Fatalf("%s invoked %d times, want 1", p.name, len(reqs))
		}
		req := reqs[0]
		if req.Tenant != "acme" {
			t.Errorf("%s saw tenant %q, want acme", p.name, req.Tenant)
		}
		if req.IdempotencyKey == "" {
			t.Errorf("%s saw empty idempotency key", p.name)
		}
		if keys[req.IdempotencyKey] {
			t.Errorf("idempotency key %q reused across firings", req.IdempotencyKey)
		}
		keys[req.IdempotencyKey] = true
		if _, leaked := req.Params[engine.TenantVar]; leaked {
			t.Errorf("%s params contain reserved %s: %v", p.name, engine.TenantVar, req.Params)
		}
	}
}

// TestWrapperShedsRateLimitedTenant: a tenant past its bucket is shed at
// wrapper admission — before any instance state exists — while other
// tenants keep executing, and the shed surfaces in transport stats.
func TestWrapperShedsRateLimitedTenant(t *testing.T) {
	const n = 2
	reg := service.NewRegistry()
	for i := 0; i < n; i++ {
		reg.Register(&recordingProvider{name: "svc" + strconv.Itoa(i+1)})
	}
	net := transport.NewInMem(transport.InMemOptions{})
	t.Cleanup(func() { net.Close() })
	f := buildFabricOn(t, net, workload.Chain(n), reg, nil)

	// A frozen clock never refills the bucket: tenant "noisy" gets
	// exactly one admission, everyone else is unlimited.
	now := time.Unix(9000, 0)
	f.wrapper.SetLimiter(limits.New(limits.Options{
		PerTenant: map[string]limits.Limit{"noisy": {Rate: 0.001, Burst: 1}},
		Now:       func() time.Time { return now },
	}))

	ctx := ctxWithTimeout(t)
	if _, err := f.wrapper.Execute(ctx, map[string]string{"x": "0", engine.TenantVar: "noisy"}); err != nil {
		t.Fatalf("first noisy execution: %v", err)
	}
	if _, err := f.wrapper.Execute(ctx, map[string]string{"x": "0", engine.TenantVar: "noisy"}); !errors.Is(err, limits.ErrShed) {
		t.Fatalf("second noisy execution = %v, want ErrShed", err)
	}
	// Other tenants (and untagged anonymous traffic) are unaffected.
	if _, err := f.wrapper.Execute(ctx, map[string]string{"x": "0", engine.TenantVar: "quiet"}); err != nil {
		t.Fatalf("quiet tenant execution: %v", err)
	}
	if _, err := f.wrapper.Execute(ctx, map[string]string{"x": "0"}); err != nil {
		t.Fatalf("anonymous execution: %v", err)
	}
	if got := net.Stats().Nodes[f.wrapper.Addr()].ShedRequests; got != 1 {
		t.Fatalf("ShedRequests at wrapper = %d, want 1", got)
	}
}

// TestCentralThreadsTenantThroughInvokes: the centralized baseline tags
// its TypeInvoke messages with the tenant, the serving host moves the
// tag into Request.Tenant, and the reserved variable never reaches the
// provider's params.
func TestCentralThreadsTenantThroughInvokes(t *testing.T) {
	const n = 2
	reg := service.NewRegistry()
	provs := make([]*recordingProvider, n)
	for i := 0; i < n; i++ {
		provs[i] = &recordingProvider{name: "svc" + strconv.Itoa(i+1)}
		reg.Register(provs[i])
	}
	net := transport.NewInMem(transport.InMemOptions{})
	t.Cleanup(func() { net.Close() })
	f := buildFabricOn(t, net, workload.Chain(n), reg, nil)

	central, err := engine.NewCentral(net, "central-tenant", f.dir, f.plan, nil)
	if err != nil {
		t.Fatalf("NewCentral: %v", err)
	}
	t.Cleanup(func() { central.Close() })

	out, err := central.Execute(ctxWithTimeout(t), map[string]string{
		"x": "0", engine.TenantVar: "acme",
	})
	if err != nil {
		t.Fatalf("central Execute: %v", err)
	}
	if out["x"] != strconv.Itoa(n) {
		t.Fatalf("x = %q, want %d", out["x"], n)
	}
	for _, p := range provs {
		for _, req := range p.Requests() {
			if req.Tenant != "acme" {
				t.Errorf("%s saw tenant %q, want acme", p.name, req.Tenant)
			}
			if _, leaked := req.Params[engine.TenantVar]; leaked {
				t.Errorf("%s params contain reserved %s", p.name, engine.TenantVar)
			}
			if req.IdempotencyKey == "" {
				t.Errorf("%s: remote invoke carried no idempotency key", p.name)
			}
		}
	}
}
