package engine

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"

	"selfserv/internal/expr"
	"selfserv/internal/message"
	"selfserv/internal/routing"
	"selfserv/internal/transport"
)

// Central is the baseline the paper argues against: a hub orchestrator
// that keeps ALL control flow on one node. It interprets the same
// COMPILED routing plan as the peer-to-peer fabric (so E3/E7 comparisons
// stay apples-to-apples: both sides pay zero runtime parsing), but every
// state firing becomes a remote invocation round trip
// (TypeInvoke/TypeResult) through the hub, and every routing decision is
// taken centrally. Used as the comparator in experiments E3 and E7.
//
// Independent states still execute concurrently (the hub is an
// orchestrator, not a serializer), so wall-clock comparisons against the
// P2P engine isolate coordination cost, not artificial sequentialization.
type Central struct {
	ep       transport.Endpoint
	sender   transport.Sender // outbound handle attributed to the hub
	dir      *Directory
	plan     *routing.Plan
	compiled *routing.CompiledPlan
	funcs    Funcs
	funcEnv  expr.Env

	seq atomic.Int64

	// pending routes invocation replies (token → waiter channel). It is
	// lock-striped by token hash (shard.go): concurrent runs register and
	// resolve replies without sharing a hub-wide mutex.
	pending shardedTable[chan *message.Message]
}

// NewCentral deploys a central orchestrator for plan, listening on addr
// for invocation replies. The plan is validated and compiled here, at
// deploy time — ill-formed guards never reach an execution. The plan's
// states must already be installed on hosts (so the directory knows where
// each component service lives).
func NewCentral(net transport.Network, addr string, dir *Directory, plan *routing.Plan, funcs Funcs) (*Central, error) {
	compiled, err := routing.CompilePlan(plan)
	if err != nil {
		return nil, err
	}
	return NewCompiledCentral(net, addr, dir, compiled, funcs)
}

// NewCompiledCentral is NewCentral for a plan the deployer already
// compiled — the compilation is shared, not repeated.
func NewCompiledCentral(net transport.Network, addr string, dir *Directory, compiled *routing.CompiledPlan, funcs Funcs) (*Central, error) {
	plan := compiled.Plan
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	c := &Central{
		dir:      dir,
		plan:     plan,
		compiled: compiled,
		funcs:    funcs,
		funcEnv:  funcs.Env(),
	}
	ep, err := net.Listen(addr, c.handle)
	if err != nil {
		return nil, fmt.Errorf("engine: central listen: %w", err)
	}
	c.ep = ep
	c.sender = net.Open(ep.Addr())
	return c, nil
}

// Addr returns the orchestrator's transport address.
func (c *Central) Addr() string { return c.ep.Addr() }

// Close unregisters the orchestrator.
func (c *Central) Close() error { return c.ep.Close() }

// handle routes invocation replies to their waiting goroutine.
func (c *Central) handle(_ context.Context, m *message.Message) {
	if m.Type != message.TypeResult {
		return
	}
	ch, ok := c.pending.take(m.Instance)
	if !ok {
		return
	}
	ch <- m
}

// stateResult reports one completed remote invocation to the event loop.
type stateResult struct {
	state   string
	outputs map[string]string
	err     error
}

// centralMark is the hub-local notification bookkeeping for one state,
// indexed by the state's compiled table interning (the hub equivalent of
// coordInstance counts).
type centralMark struct {
	counts  []uint32
	pending []uint64
}

// centralRun is the marking of one instance inside the hub. donePend is
// the seen-source bitmask over the finish universe (finish clauses are
// never consumed, so no counts are kept — mirroring wrapperInstance).
type centralRun struct {
	vars     map[string]string
	received map[string]*centralMark // state -> interned notification counts
	donePend []uint64
	inflight int
	results  chan stateResult
}

// Execute runs one instance of the composite through the hub and returns
// the final bag restricted to declared inputs+outputs.
func (c *Central) Execute(ctx context.Context, inputs map[string]string) (map[string]string, error) {
	run := &centralRun{
		vars:     map[string]string{},
		received: map[string]*centralMark{},
		donePend: make([]uint64, c.compiled.FinishMaskWords()),
		results:  make(chan stateResult, len(c.plan.Tables)+1),
	}
	for k, v := range inputs {
		run.vars[k] = v
	}
	instance := "c" + strconv.FormatInt(c.seq.Add(1), 10)

	// Start phase: hub evaluates entry guards (it is the wrapper here).
	started := 0
	for _, target := range c.compiled.Start {
		ok, err := evalGuard(target.Condition, run.vars, c.funcEnv)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if err := c.applyAssignments(run, target.Actions); err != nil {
			return nil, err
		}
		if err := c.notify(run, message.WrapperID, target.To); err != nil {
			return nil, err
		}
		started++
	}
	if started == 0 {
		return nil, fmt.Errorf("engine: composite %q: no start condition matched the request", c.plan.Composite)
	}
	if err := c.fireEnabled(ctx, instance, run); err != nil {
		return nil, err
	}

	// Event loop: process invocation completions until a finish clause
	// holds or the instance stalls.
	for {
		if c.finishSatisfied(run) {
			return c.projectOutputs(run.vars), nil
		}
		if run.inflight == 0 {
			return nil, fmt.Errorf("engine: composite %q instance %s stalled: no enabled state and no pending invocation", c.plan.Composite, instance)
		}
		select {
		case res := <-run.results:
			run.inflight--
			if res.err != nil {
				return nil, fmt.Errorf("%w: state %s: %v", ErrInstanceFault, res.state, res.err)
			}
			tbl := c.compiled.Tables[res.state]
			bindOutputs(tbl.Outputs, res.outputs, run.vars)
			if err := c.postprocess(run, tbl); err != nil {
				return nil, err
			}
			if err := c.fireEnabled(ctx, instance, run); err != nil {
				return nil, err
			}
		case <-ctx.Done():
			return nil, fmt.Errorf("engine: composite %q instance %s: %w", c.plan.Composite, instance, ctx.Err())
		}
	}
}

// notify records a control notification in the hub's marking. (No network
// message: this is exactly the centralization being measured — routing
// decisions are local to the hub.)
func (c *Central) notify(run *centralRun, from, to string) error {
	if to == message.WrapperID {
		if idx, ok := c.compiled.FinishSourceIndex(from); ok {
			run.donePend[idx>>6] |= 1 << (idx & 63)
		}
		return nil
	}
	tbl := c.compiled.Tables[to]
	if tbl == nil {
		return fmt.Errorf("engine: notification for unknown state %q", to)
	}
	mark, ok := run.received[to]
	if !ok {
		mark = &centralMark{
			counts:  make([]uint32, tbl.NumSources()),
			pending: make([]uint64, tbl.MaskWords()),
		}
		run.received[to] = mark
	}
	if idx, ok := tbl.SourceIndex(from); ok {
		mark.counts[idx]++
		mark.pending[idx>>6] |= 1 << (idx & 63)
	}
	return nil
}

// postprocess evaluates a completed state's postprocessing targets on the
// hub's global bag.
func (c *Central) postprocess(run *centralRun, tbl *routing.CompiledTable) error {
	for _, target := range tbl.Postprocessings {
		ok, err := evalGuard(target.Condition, run.vars, c.funcEnv)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := c.applyAssignments(run, target.Actions); err != nil {
			return err
		}
		if err := c.notify(run, tbl.State, target.To); err != nil {
			return err
		}
	}
	return nil
}

// applyAssignments applies precompiled ECA actions to the hub's global bag.
func (c *Central) applyAssignments(run *centralRun, actions []routing.CompiledAssignment) error {
	if len(actions) == 0 {
		return nil
	}
	merged, err := applyActions(actions, run.vars, c.funcEnv)
	if err != nil {
		return err
	}
	run.vars = merged
	return nil
}

// launch is one enabled invocation of a firing round: the request
// message plus the reply channel its waiter consumes.
type launch struct {
	state string
	token string
	msg   *message.Message
	ch    chan *message.Message
}

// launchGroup collects one destination host's launches of a firing
// round (the Central equivalent of an outbox entry: one frame per
// group, first-use order).
type launchGroup struct {
	addr     string
	launches []*launch
}

// fireEnabled launches remote invocations for every state whose
// precondition now holds. The round's TypeInvoke messages are grouped
// per destination and flushed as one frame per host — states co-hosted
// on one node cost the hub one syscall per round, not one per state.
// Replies still arrive (and are awaited) independently.
func (c *Central) fireEnabled(ctx context.Context, instance string, run *centralRun) error {
	var groups []*launchGroup
	for state, mark := range run.received {
		tbl := c.compiled.Tables[state]
	clauses:
		for _, clause := range tbl.Preconditions {
			if !clause.Covered(mark.pending) {
				continue
			}
			ok, err := evalGuard(clause.Condition, run.vars, c.funcEnv)
			if err != nil {
				if isUndefinedVar(err) {
					continue clauses
				}
				return err
			}
			if !ok {
				continue
			}
			for _, idx := range clause.SourceIndexes() {
				if mark.counts[idx] > 0 {
					mark.counts[idx]--
				}
				if mark.counts[idx] == 0 {
					mark.pending[idx>>6] &^= 1 << (idx & 63)
				}
			}
			if err := c.applyAssignments(run, clause.Actions); err != nil {
				return err
			}
			params, err := bindInputs(tbl.Inputs, run.vars, c.funcEnv)
			if err != nil {
				return err
			}
			// The tenant tag rides the invoke as the reserved TenantVar
			// entry; serveInvoke moves it into Request.Tenant and strips
			// it from the provider's params.
			if tenant := run.vars[TenantVar]; tenant != "" {
				if params == nil {
					params = map[string]string{}
				}
				params[TenantVar] = tenant
			}
			// Pinned to the hub's own compiled plan version: a redeploy
			// mid-run must not re-route this instance's invocations.
			addr, found := "", false
			if v := c.compiled.Version; v != 0 {
				addr, found = c.dir.RouteV(c.plan.Composite, v, tbl.State, instance, run.vars[TenantVar])
			} else {
				addr, found = c.dir.Route(c.plan.Composite, tbl.State, instance, run.vars[TenantVar])
			}
			if !found {
				return fmt.Errorf("engine: state %q is not deployed", tbl.State)
			}
			l := &launch{
				state: tbl.State,
				token: instance + "/" + tbl.State + "/" + strconv.FormatInt(c.seq.Add(1), 10),
				ch:    make(chan *message.Message, 1),
			}
			l.msg = &message.Message{
				Type:      message.TypeInvoke,
				Composite: c.plan.Composite,
				Instance:  l.token,
				From:      "central",
				To:        tbl.Service + "/" + tbl.Operation,
				ReplyTo:   c.Addr(),
				Version:   c.compiled.Version,
				Vars:      params,
			}
			// Same first-use-order linear grouping as outbox.add, but over
			// launches (the reply bookkeeping must travel with the message).
			grp := (*launchGroup)(nil)
			for _, g := range groups {
				if g.addr == addr {
					grp = g
					break
				}
			}
			if grp == nil {
				grp = &launchGroup{addr: addr}
				groups = append(groups, grp)
			}
			grp.launches = append(grp.launches, l)
			run.inflight++
			break // one firing per state per round; loop re-checks later
		}
	}

	// Register every reply route before anything is sent: a fast host
	// must never answer an unregistered token.
	for _, g := range groups {
		for _, l := range g.launches {
			c.pending.insert(l.token, l.ch)
		}
	}

	for _, g := range groups {
		g := g
		ms := make([]*message.Message, len(g.launches))
		for i, l := range g.launches {
			ms[i] = l.msg
		}
		// One goroutine per destination: dial latency stays off the event
		// loop, and the whole round for that host is one frame.
		go func() {
			if err := c.sender.SendBatch(ctx, g.addr, ms); err != nil {
				// Fail every invocation of the lost frame through its reply
				// channel, wire-shaped, so the waiters below stay the only
				// writers of run.results.
				for _, l := range g.launches {
					l.ch <- &message.Message{Type: message.TypeResult, Error: err.Error()}
				}
			}
		}()
		for _, l := range g.launches {
			go c.awaitReply(ctx, l, run.results)
		}
	}
	return nil
}

// awaitReply blocks until l's TypeResult arrives (or ctx ends) and
// reports it to the event loop.
func (c *Central) awaitReply(ctx context.Context, l *launch, results chan<- stateResult) {
	defer c.pending.remove(l.token)
	select {
	case reply := <-l.ch:
		if reply.Error != "" {
			results <- stateResult{state: l.state, err: fmt.Errorf("%s", reply.Error)}
			return
		}
		results <- stateResult{state: l.state, outputs: reply.Vars}
	case <-ctx.Done():
		results <- stateResult{state: l.state, err: ctx.Err()}
	}
}

// finishSatisfied checks the compiled finish clauses against collected
// termination notices.
func (c *Central) finishSatisfied(run *centralRun) bool {
	for _, clause := range c.compiled.Finish {
		if !clause.Covered(run.donePend) {
			continue
		}
		ok, err := evalGuard(clause.Condition, run.vars, c.funcEnv)
		if err != nil || !ok {
			continue
		}
		return true
	}
	return false
}

// projectOutputs mirrors Wrapper.projectOutputs.
func (c *Central) projectOutputs(vars map[string]string) map[string]string {
	if len(c.plan.Outputs) == 0 {
		out := make(map[string]string, len(vars))
		for k, v := range vars {
			out[k] = v
		}
		return out
	}
	out := map[string]string{}
	for _, p := range c.plan.Inputs {
		if v, ok := vars[p.Name]; ok {
			out[p.Name] = v
		}
	}
	for _, p := range c.plan.Outputs {
		if v, ok := vars[p.Name]; ok {
			out[p.Name] = v
		}
	}
	return out
}
