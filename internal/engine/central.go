package engine

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"selfserv/internal/message"
	"selfserv/internal/routing"
	"selfserv/internal/statechart"
	"selfserv/internal/transport"
)

// Central is the baseline the paper argues against: a hub orchestrator
// that keeps ALL control flow on one node. It interprets the same routing
// plan as the peer-to-peer fabric, but every state firing becomes a
// remote invocation round trip (TypeInvoke/TypeResult) through the hub,
// and every routing decision is taken centrally. Used as the comparator
// in experiments E3 and E7.
//
// Independent states still execute concurrently (the hub is an
// orchestrator, not a serializer), so wall-clock comparisons against the
// P2P engine isolate coordination cost, not artificial sequentialization.
type Central struct {
	net   transport.Network
	ep    transport.Endpoint
	dir   *Directory
	plan  *routing.Plan
	funcs Funcs

	seq atomic.Int64

	mu      sync.Mutex
	pending map[string]chan *message.Message
}

// NewCentral deploys a central orchestrator for plan, listening on addr
// for invocation replies. The plan's states must already be installed on
// hosts (so the directory knows where each component service lives).
func NewCentral(net transport.Network, addr string, dir *Directory, plan *routing.Plan, funcs Funcs) (*Central, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	c := &Central{
		net:     net,
		dir:     dir,
		plan:    plan,
		funcs:   funcs,
		pending: map[string]chan *message.Message{},
	}
	ep, err := net.Listen(addr, c.handle)
	if err != nil {
		return nil, fmt.Errorf("engine: central listen: %w", err)
	}
	c.ep = ep
	return c, nil
}

// Addr returns the orchestrator's transport address.
func (c *Central) Addr() string { return c.ep.Addr() }

// Close unregisters the orchestrator.
func (c *Central) Close() error { return c.ep.Close() }

// handle routes invocation replies to their waiting goroutine.
func (c *Central) handle(_ context.Context, m *message.Message) {
	if m.Type != message.TypeResult {
		return
	}
	c.mu.Lock()
	ch := c.pending[m.Instance]
	delete(c.pending, m.Instance)
	c.mu.Unlock()
	if ch != nil {
		ch <- m
	}
}

// stateResult reports one completed remote invocation to the event loop.
type stateResult struct {
	state   string
	outputs map[string]string
	err     error
}

// centralRun is the marking of one instance inside the hub.
type centralRun struct {
	vars     map[string]string
	received map[string]map[string]int // state -> source -> pending count
	done     map[string]int            // wrapper-bound termination notices
	inflight int
	results  chan stateResult
}

// Execute runs one instance of the composite through the hub and returns
// the final bag restricted to declared inputs+outputs.
func (c *Central) Execute(ctx context.Context, inputs map[string]string) (map[string]string, error) {
	run := &centralRun{
		vars:     map[string]string{},
		received: map[string]map[string]int{},
		done:     map[string]int{},
		results:  make(chan stateResult, len(c.plan.Tables)+1),
	}
	for k, v := range inputs {
		run.vars[k] = v
	}
	instance := "c" + strconv.FormatInt(c.seq.Add(1), 10)

	// Start phase: hub evaluates entry guards (it is the wrapper here).
	started := 0
	for _, target := range c.plan.Start {
		ok, err := c.funcs.evalCondition(target.Condition, run.vars)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if err := c.applyAssignments(run, target.Actions); err != nil {
			return nil, err
		}
		c.notify(run, message.WrapperID, target.To)
		started++
	}
	if started == 0 {
		return nil, fmt.Errorf("engine: composite %q: no start condition matched the request", c.plan.Composite)
	}
	if err := c.fireEnabled(ctx, instance, run); err != nil {
		return nil, err
	}

	// Event loop: process invocation completions until a finish clause
	// holds or the instance stalls.
	for {
		if c.finishSatisfied(run) {
			return c.projectOutputs(run.vars), nil
		}
		if run.inflight == 0 {
			return nil, fmt.Errorf("engine: composite %q instance %s stalled: no enabled state and no pending invocation", c.plan.Composite, instance)
		}
		select {
		case res := <-run.results:
			run.inflight--
			if res.err != nil {
				return nil, fmt.Errorf("%w: state %s: %v", ErrInstanceFault, res.state, res.err)
			}
			tbl := c.plan.Tables[res.state]
			bindOutputs(tbl.Outputs, res.outputs, run.vars)
			if err := c.postprocess(run, tbl); err != nil {
				return nil, err
			}
			if err := c.fireEnabled(ctx, instance, run); err != nil {
				return nil, err
			}
		case <-ctx.Done():
			return nil, fmt.Errorf("engine: composite %q instance %s: %w", c.plan.Composite, instance, ctx.Err())
		}
	}
}

// notify records a control notification in the hub's marking. (No network
// message: this is exactly the centralization being measured — routing
// decisions are local to the hub.)
func (c *Central) notify(run *centralRun, from, to string) {
	if to == message.WrapperID {
		run.done[from]++
		return
	}
	bySrc, ok := run.received[to]
	if !ok {
		bySrc = map[string]int{}
		run.received[to] = bySrc
	}
	bySrc[from]++
}

// postprocess evaluates a completed state's postprocessing targets on the
// hub's global bag.
func (c *Central) postprocess(run *centralRun, tbl *routing.Table) error {
	for _, target := range tbl.Postprocessings {
		ok, err := c.funcs.evalCondition(target.Condition, run.vars)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := c.applyAssignments(run, target.Actions); err != nil {
			return err
		}
		c.notify(run, tbl.State, target.To)
	}
	return nil
}

// applyAssignments applies ECA actions to the hub's global bag.
func (c *Central) applyAssignments(run *centralRun, actions []statechart.Assignment) error {
	if len(actions) == 0 {
		return nil
	}
	var al actionList
	for _, a := range actions {
		al = append(al, assignment{Var: a.Var, Expr: a.Expr})
	}
	merged, err := c.funcs.applyActions([]actionList{al}, run.vars)
	if err != nil {
		return err
	}
	run.vars = merged
	return nil
}

// fireEnabled launches remote invocations for every state whose
// precondition now holds.
func (c *Central) fireEnabled(ctx context.Context, instance string, run *centralRun) error {
	for state, bySrc := range run.received {
		tbl := c.plan.Tables[state]
		if tbl == nil {
			return fmt.Errorf("engine: notification for unknown state %q", state)
		}
	clauses:
		for _, clause := range tbl.Covered(bySrc) {
			ok, err := c.funcs.evalCondition(clause.Condition, run.vars)
			if err != nil {
				if isUndefinedVar(err) {
					continue clauses
				}
				return err
			}
			if !ok {
				continue
			}
			for _, src := range clause.Sources {
				bySrc[src]--
				if bySrc[src] <= 0 {
					delete(bySrc, src)
				}
			}
			if err := c.applyAssignments(run, clause.Actions); err != nil {
				return err
			}
			params, err := bindInputs(c.funcs, tbl.Inputs, run.vars)
			if err != nil {
				return err
			}
			run.inflight++
			go c.invokeRemote(ctx, instance, tbl, params, run.results)
			break // one firing per state per round; loop re-checks later
		}
	}
	return nil
}

// invokeRemote performs one TypeInvoke/TypeResult round trip to the host
// owning the state's service.
func (c *Central) invokeRemote(ctx context.Context, instance string, tbl *routing.Table, params map[string]string, results chan<- stateResult) {
	addr, found := c.dir.Lookup(c.plan.Composite, tbl.State)
	if !found {
		results <- stateResult{state: tbl.State, err: fmt.Errorf("state %q is not deployed", tbl.State)}
		return
	}
	token := instance + "/" + tbl.State + "/" + strconv.FormatInt(c.seq.Add(1), 10)
	ch := make(chan *message.Message, 1)
	c.mu.Lock()
	c.pending[token] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, token)
		c.mu.Unlock()
	}()

	m := &message.Message{
		Type:      message.TypeInvoke,
		Composite: c.plan.Composite,
		Instance:  token,
		From:      "central",
		To:        tbl.Service + "/" + tbl.Operation,
		ReplyTo:   c.Addr(),
		Vars:      params,
	}
	sendCtx := transport.WithSender(ctx, c.Addr())
	if err := c.net.Send(sendCtx, addr, m); err != nil {
		results <- stateResult{state: tbl.State, err: err}
		return
	}
	select {
	case reply := <-ch:
		if reply.Error != "" {
			results <- stateResult{state: tbl.State, err: fmt.Errorf("%s", reply.Error)}
			return
		}
		results <- stateResult{state: tbl.State, outputs: reply.Vars}
	case <-ctx.Done():
		results <- stateResult{state: tbl.State, err: ctx.Err()}
	}
}

// finishSatisfied checks the plan's finish clauses against collected
// termination notices.
func (c *Central) finishSatisfied(run *centralRun) bool {
	for _, clause := range c.plan.Finish {
		all := true
		for _, src := range clause.Sources {
			if run.done[src] <= 0 {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		ok, err := c.funcs.evalCondition(clause.Condition, run.vars)
		if err != nil || !ok {
			continue
		}
		return true
	}
	return false
}

// projectOutputs mirrors Wrapper.projectOutputs.
func (c *Central) projectOutputs(vars map[string]string) map[string]string {
	if len(c.plan.Outputs) == 0 {
		out := make(map[string]string, len(vars))
		for k, v := range vars {
			out[k] = v
		}
		return out
	}
	out := map[string]string{}
	for _, p := range c.plan.Inputs {
		if v, ok := vars[p.Name]; ok {
			out[p.Name] = v
		}
	}
	for _, p := range c.plan.Outputs {
		if v, ok := vars[p.Name]; ok {
			out[p.Name] = v
		}
	}
	return out
}
