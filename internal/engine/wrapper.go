package engine

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"selfserv/internal/expr"
	"selfserv/internal/journal"
	"selfserv/internal/limits"
	"selfserv/internal/message"
	"selfserv/internal/routing"
	"selfserv/internal/transport"
)

// Wrapper is the composite service's entry point — the class the paper
// has providers "download and configure". It accepts execution requests,
// notifies the coordinators of the states "which need to be entered in
// the first place", then waits for the termination notices of the states
// "which are exited in the last place". The plan is compiled once at
// construction (deploy time); start guards, finish clauses, and event
// subscriptions are interpreted from the shared immutable compilation.
type Wrapper struct {
	ep       transport.Endpoint
	sender   transport.Sender // outbound handle attributed to this wrapper
	dir      *Directory
	plan     *routing.Plan
	compiled *routing.CompiledPlan
	funcs    Funcs
	funcEnv  expr.Env

	// limiter, when set, gates instance admission per tenant (the
	// TenantVar input). Swappable at runtime (hostd reconfiguration);
	// nil admits everything.
	limiter atomic.Pointer[limits.Limiter]
	// jnl, when set, journals the wrapper side of every execution —
	// request inputs at start, each termination/fault notice as it
	// arrives, and the completion — so crash recovery can rebuild
	// in-flight instances and finish them. Atomic because the endpoint
	// listens before the deployer installs the journal.
	jnl atomic.Pointer[journal.Journal]
	// recorder surfaces shed decisions in the transport's destination-
	// keyed stats (both built-in networks implement it); nil-safe.
	recorder transport.AvailabilityRecorder

	seq atomic.Int64

	// instances is lock-striped by instance-ID hash (shard.go); each
	// wrapperInstance carries its own mutex, so concurrent Executes and
	// the termination notices of distinct instances never contend.
	instances shardedTable[*wrapperInstance]

	// lifecycle is the drain bookkeeping: the in-flight gauge, the
	// draining flag (set by Drain/Close — new Executes are rejected with
	// ErrDraining), and the idle channel a drainer blocks on.
	lifecycle struct {
		mu       sync.Mutex // lockorder:instance — leaf; never held across sends or instance locks
		inflight int
		draining bool
		idle     chan struct{} // lazily made; closed when draining hits inflight==0
	}
	// abandoned counts instances failed by a force-Close with work still
	// in flight — the loud stat the old silent teardown never kept.
	abandoned atomic.Uint64
}

// beginInstance admits one execution into the in-flight gauge, or
// rejects it when the wrapper is draining.
func (w *Wrapper) beginInstance() error {
	lc := &w.lifecycle
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.draining {
		return fmt.Errorf("engine: composite %q: %w", w.plan.Composite, ErrDraining)
	}
	lc.inflight++
	return nil
}

// endInstance retires one execution from the gauge and wakes a pending
// drainer when the last one leaves.
func (w *Wrapper) endInstance() {
	lc := &w.lifecycle
	lc.mu.Lock()
	lc.inflight--
	if lc.draining && lc.inflight == 0 && lc.idle != nil {
		close(lc.idle)
		lc.idle = nil
	}
	lc.mu.Unlock()
}

// InFlight returns the number of executions currently inside
// ExecuteInstance — the per-version gauge a drain-aware swap watches.
func (w *Wrapper) InFlight() int {
	w.lifecycle.mu.Lock()
	defer w.lifecycle.mu.Unlock()
	return w.lifecycle.inflight
}

// Abandoned returns how many in-flight instances a force-Close failed.
func (w *Wrapper) Abandoned() uint64 { return w.abandoned.Load() }

// StartDrain flips the wrapper into draining mode without waiting: new
// executions are rejected with ErrDraining from the moment it returns,
// while in-flight instances keep running. A deployer calls it
// synchronously at version-swap time so no execution can slip into the
// old version after the new one went live; the (possibly backgrounded)
// Drain/Close that follows does the waiting.
func (w *Wrapper) StartDrain() {
	lc := &w.lifecycle
	lc.mu.Lock()
	lc.draining = true
	lc.mu.Unlock()
}

// Drain stops admitting new executions (they fail with ErrDraining) and
// blocks until every in-flight instance terminates or ctx is done. It
// returns the number of instances still in flight when it gave up — 0
// means a clean drain. Drain does NOT close the endpoint: the draining
// wrapper keeps receiving the termination notices its instances are
// waiting for.
func (w *Wrapper) Drain(ctx context.Context) int {
	lc := &w.lifecycle
	lc.mu.Lock()
	lc.draining = true
	if lc.inflight == 0 {
		lc.mu.Unlock()
		return 0
	}
	if lc.idle == nil {
		lc.idle = make(chan struct{})
	}
	idle := lc.idle
	lc.mu.Unlock()
	select {
	case <-idle:
		return 0
	case <-ctx.Done():
		return w.InFlight()
	}
}

// wrapperInstance tracks one running execution at the wrapper. Finish
// sources are interned against the compiled plan's finish universe;
// unlike coordinator preconditions, finish clauses are never consumed
// (the instance completes when one holds), so a seen-source bitmask is
// the only bookkeeping needed — no counts.
//
// Like coordInstance, variables are layered per source and merged in
// the canonical order (routing.CompiledPlan.FinishMergeOrder), never in
// arrival order: finish clauses with receiver-side guards (guarded
// transitions from a concurrent state into the root final) must
// evaluate on the same bag regardless of which exit's TypeDone arrived
// last, or complementary guards could all reject and Execute would hang
// — the wrapper-side twin of the seed-8 AND-join liveness bug.
type wrapperInstance struct {
	// done is created once at construction and never reassigned; it sits
	// above the mutex so lock-free waits (<-inst.done) stay legal.
	done chan struct{}

	mu       sync.Mutex // lockorder:instance — guards everything below; see shard.go for lock order
	pending  []uint64
	base     map[string]string   // request inputs + non-finish-universe senders
	srcVars  []map[string]string // per finish source, accumulated in sender FIFO order
	merged   map[string]string   // cached canonical merge; nil when stale
	err      error
	finished bool
}

// mergedVars returns the instance bag (mergeLayers over the finish
// universe's canonical order). Cached until the next write; callers
// must not mutate the result. Caller holds inst.mu.
func (inst *wrapperInstance) mergedVars(w *Wrapper) map[string]string {
	if inst.merged == nil {
		inst.merged = mergeLayers(inst.base, w.compiled.FinishMergeOrder(), inst.srcVars)
	}
	return inst.merged
}

// mergeFrom files one notification's variables under src: into the
// source's own layer when src is in the finish universe, into the base
// layer otherwise. Caller holds inst.mu.
func (inst *wrapperInstance) mergeFrom(w *Wrapper, src string, vars map[string]string) {
	bag := inst.base
	if idx, ok := w.compiled.FinishSourceIndex(src); ok {
		if inst.srcVars[idx] == nil {
			inst.srcVars[idx] = make(map[string]string, len(vars))
		}
		bag = inst.srcVars[idx]
	}
	for k, v := range vars {
		bag[k] = v
	}
	inst.merged = nil
}

// NewWrapper deploys the wrapper side of plan: it validates and COMPILES
// the plan (any ill-formed guard fails here, at deploy time), listens on
// addr, and registers itself as the composite's WrapperID peer in dir.
func NewWrapper(net transport.Network, addr string, dir *Directory, plan *routing.Plan, funcs Funcs) (*Wrapper, error) {
	compiled, err := routing.CompilePlan(plan)
	if err != nil {
		return nil, err
	}
	return NewCompiledWrapper(net, addr, dir, compiled, funcs)
}

// NewCompiledWrapper is NewWrapper for a plan the deployer already
// compiled — the compilation is shared, not repeated.
func NewCompiledWrapper(net transport.Network, addr string, dir *Directory, compiled *routing.CompiledPlan, funcs Funcs) (*Wrapper, error) {
	plan := compiled.Plan
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	w := &Wrapper{
		dir:      dir,
		plan:     plan,
		compiled: compiled,
		funcs:    funcs,
		funcEnv:  funcs.Env(),
	}
	ep, err := net.Listen(addr, w.handle)
	if err != nil {
		return nil, fmt.Errorf("engine: wrapper listen: %w", err)
	}
	w.ep = ep
	w.sender = net.Open(ep.Addr())
	if rec, ok := net.(transport.AvailabilityRecorder); ok {
		w.recorder = rec
	}
	// A versioned wrapper registers in ITS version's peer table (staged
	// by the deployer, activated by SetCurrent); an unversioned one keeps
	// the legacy behavior of writing to the current table.
	if compiled.Version != 0 {
		dir.SetV(plan.Composite, compiled.Version, message.WrapperID, ep.Addr())
	} else {
		dir.Set(plan.Composite, message.WrapperID, ep.Addr())
	}
	return w, nil
}

// SetLimiter installs (or, with nil, removes) the per-tenant admission
// limiter consulted by Execute/ExecuteInstance. Safe to call while
// executions are in flight.
func (w *Wrapper) SetLimiter(l *limits.Limiter) { w.limiter.Store(l) }

// SetJournal installs the write-ahead journal the wrapper records its
// executions into (nil-safe no-op). Called by the deployer right after
// construction, before the composite is activated.
func (w *Wrapper) SetJournal(j *journal.Journal) {
	if j != nil {
		w.jnl.Store(j)
	}
}

func (w *Wrapper) journal() *journal.Journal { return w.jnl.Load() }

// Addr returns the wrapper's transport address.
func (w *Wrapper) Addr() string { return w.ep.Addr() }

// Composite returns the composite service name this wrapper fronts.
func (w *Wrapper) Composite() string { return w.plan.Composite }

// Version returns the compiled plan version this wrapper serves
// (zero for unversioned deployments).
func (w *Wrapper) Version() uint64 { return w.compiled.Version }

// Close force-closes the wrapper: admission stops, every instance still
// in flight is FAILED (its Execute returns an abandonment error), the
// abandoned count is recorded, and the endpoint closes. The old
// behavior — tear down the endpoint and strand in-flight instances in a
// silent hang — was the redeploy data-loss bug; a caller that wants
// zero abandonment calls Drain first and Close only when InFlight
// reaches 0. Close returns a non-nil error exactly when it abandoned
// work.
func (w *Wrapper) Close() error {
	lc := &w.lifecycle
	lc.mu.Lock()
	lc.draining = true
	lc.mu.Unlock()

	var failed int
	w.instances.forEach(func(id string, inst *wrapperInstance) {
		inst.mu.Lock()
		if !inst.finished {
			inst.err = fmt.Errorf("%w: instance %s abandoned: wrapper for %q v%d closed with the instance in flight",
				ErrInstanceFault, id, w.plan.Composite, w.compiled.Version)
			inst.finished = true
			close(inst.done)
			failed++
		}
		inst.mu.Unlock()
	})
	if failed > 0 {
		w.abandoned.Add(uint64(failed))
	}
	err := w.ep.Close()
	if failed > 0 && err == nil {
		err = fmt.Errorf("engine: composite %q v%d: force-close abandoned %d in-flight instance(s)",
			w.plan.Composite, w.compiled.Version, failed)
	}
	return err
}

// Kill closes the wrapper's endpoint and nothing else: no drain, no
// abandonment bookkeeping, no journal records — the state a process
// kill leaves behind. The durability fault suite crashes platforms with
// it; in-flight Executes stay blocked until their context expires, and
// recovery (engine.Recover) is what completes their instances.
func (w *Wrapper) Kill() error { return w.ep.Close() }

// route resolves a peer address pinned to this wrapper's plan version;
// unversioned wrappers resolve against the composite's current tables.
func (w *Wrapper) route(id, instance, tenant string) (string, bool) {
	if v := w.compiled.Version; v != 0 {
		return w.dir.RouteV(w.plan.Composite, v, id, instance, tenant)
	}
	return w.dir.Route(w.plan.Composite, id, instance, tenant)
}

// Execute runs one instance of the composite service with the given
// input variables and returns the final variable bag restricted to the
// composite's declared outputs (plus every input, which the paper's XML
// result documents also carry). It blocks until the instance terminates,
// faults, or ctx is done.
func (w *Wrapper) Execute(ctx context.Context, inputs map[string]string) (map[string]string, error) {
	id := "i" + strconv.FormatInt(w.seq.Add(1), 10)
	return w.ExecuteInstance(ctx, id, inputs)
}

// ExecuteInstance is Execute with a caller-chosen instance ID (IDs must
// be unique per wrapper).
func (w *Wrapper) ExecuteInstance(ctx context.Context, id string, inputs map[string]string) (map[string]string, error) {
	// Admission control happens before ANY instance state is allocated:
	// a shed request must cost the platform nothing but this check. The
	// nil limiter admits everything (limits.Limiter is nil-receiver safe).
	if err := w.limiter.Load().Allow(inputs[TenantVar]); err != nil {
		if w.recorder != nil {
			w.recorder.RecordShed(w.ep.Addr())
		}
		return nil, fmt.Errorf("engine: composite %q: %w", w.plan.Composite, err)
	}
	if err := w.beginInstance(); err != nil {
		return nil, err
	}
	defer w.endInstance()
	inst := &wrapperInstance{
		done:    make(chan struct{}),
		pending: make([]uint64, w.compiled.FinishMaskWords()),
		base:    map[string]string{},
		srcVars: make([]map[string]string, w.compiled.NumFinishSources()),
	}
	for k, v := range inputs {
		inst.base[k] = v
	}
	if !w.instances.insert(id, inst) {
		return nil, fmt.Errorf("engine: duplicate instance ID %q", id)
	}
	defer w.instances.remove(id)

	box, err := w.startPhase(id, inputs)
	if err != nil {
		return nil, err
	}
	// Write-ahead commit point: the request becomes durable before any
	// start message is sent, so a crash mid-start replays the WHOLE start
	// phase (the stamps are deterministic — see startPhase — and the
	// receivers' dedup drops whatever the first life already delivered).
	if j := w.journal(); j != nil {
		rec := &journal.Record{
			Kind:      journal.KindWStart,
			Composite: w.plan.Composite,
			Instance:  id,
			Version:   w.compiled.Version,
			Vars:      inputs,
		}
		if jerr := j.Append(rec); jerr != nil {
			return nil, fmt.Errorf("engine: journal start of %s: %w", w.plan.Composite, jerr)
		}
	}
	if err := box.flush(ctx, w.sender); err != nil {
		return nil, fmt.Errorf("engine: start %s: %w", w.plan.Composite, err)
	}

	select {
	case <-inst.done:
	case <-ctx.Done():
		return nil, fmt.Errorf("engine: composite %q instance %s: %w", w.plan.Composite, id, ctx.Err())
	}
	w.journalDone(id, inst.err)
	if inst.err != nil {
		return nil, inst.err
	}
	// The final bag is the same canonical merge the finish clauses were
	// evaluated on (handle/RaiseEvent stop writing once finished is set,
	// but the cache build itself must still happen under the lock).
	inst.mu.Lock()
	final := inst.mergedVars(w)
	inst.mu.Unlock()
	return w.projectOutputs(final), nil
}

// startPhase evaluates the entry targets on the request inputs and
// builds the outbox of start notifications. The wrapper is the "sender"
// for entry states: it evaluates their (precompiled) guard conditions
// against the inputs and works on a private copy of the bag — once the
// first start message is out, coordinators (and a concurrent
// RaiseEvent) may already be merging into the instance's layers, so the
// send path must never read the live bag. Start notifications for
// states sharing a host coalesce into one frame per destination: the
// outbox is built fully before anything is sent.
//
// When journaling, each start message is sequence-stamped 1..k in
// compiled-plan iteration order — deterministic, so a crash-recovery
// re-run of the phase produces IDENTICAL stamps and the coordinators'
// dedup marks absorb the overlap with whatever the first life already
// delivered.
func (w *Wrapper) startPhase(id string, inputs map[string]string) (outbox, error) {
	base := make(map[string]string, len(inputs))
	for k, v := range inputs {
		base[k] = v
	}
	var box outbox
	journaling := w.journal() != nil
	var seq int
	for _, target := range w.compiled.Start {
		ok, err := evalGuard(target.Condition, inputs, w.funcEnv)
		if err != nil {
			return box, err
		}
		if !ok {
			continue
		}
		vars := base
		if len(target.Actions) > 0 {
			vars, err = applyActions(target.Actions, vars, w.funcEnv)
			if err != nil {
				return box, err
			}
		}
		// Same deterministic (instance, tenant) replica choice the
		// coordinators make on their send path: the start message must
		// land on the replica every later notification converges on. The
		// lookup and the message are pinned to this wrapper's plan
		// version — the instance runs to completion on the version it
		// started on, whatever deploys happen meanwhile.
		addr, found := w.route(target.To, id, base[TenantVar])
		if !found {
			return box, fmt.Errorf("engine: composite %q: state %q is not deployed", w.plan.Composite, target.To)
		}
		m := &message.Message{
			Type:      message.TypeStart,
			Composite: w.plan.Composite,
			Instance:  id,
			From:      message.WrapperID,
			To:        target.To,
			Version:   w.compiled.Version,
			Vars:      vars,
		}
		if journaling {
			seq++
			m.Seq = seq
		}
		box.add(addr, m)
	}
	if box.empty() {
		return box, fmt.Errorf("engine: composite %q: no start condition matched the request", w.plan.Composite)
	}
	return box, nil
}

// journalDone records an instance's completion (or fault) so recovery
// knows not to rebuild it. Best-effort: losing it means recovery would
// rebuild a finished instance, whose redelivered frames the
// coordinators' dedup then absorbs.
func (w *Wrapper) journalDone(id string, instErr error) {
	j := w.journal()
	if j == nil {
		return
	}
	rec := &journal.Record{
		Kind:      journal.KindWDone,
		Composite: w.plan.Composite,
		Instance:  id,
		Version:   w.compiled.Version,
	}
	if instErr != nil {
		rec.Error = instErr.Error()
	}
	_ = j.Append(rec)
}

// projectOutputs filters the final bag to declared inputs+outputs; when
// the plan declares no outputs the whole bag is returned. Reserved
// '$'-prefixed variables (TenantVar and friends) are engine metadata,
// never part of the result document.
func (w *Wrapper) projectOutputs(vars map[string]string) map[string]string {
	if len(w.plan.Outputs) == 0 {
		out := make(map[string]string, len(vars))
		for k, v := range vars {
			if strings.HasPrefix(k, "$") {
				continue
			}
			out[k] = v
		}
		return out
	}
	out := map[string]string{}
	for _, p := range w.plan.Inputs {
		if v, ok := vars[p.Name]; ok {
			out[p.Name] = v
		}
	}
	for _, p := range w.plan.Outputs {
		if v, ok := vars[p.Name]; ok {
			out[p.Name] = v
		}
	}
	return out
}

// record marks one received finish-relevant notification from src (a
// state ID or event pseudo-source). Sources outside the compiled finish
// universe are ignored — no finish clause can ever require them. Caller
// holds inst.mu.
func (inst *wrapperInstance) record(w *Wrapper, src string) {
	if idx, ok := w.compiled.FinishSourceIndex(src); ok {
		inst.pending[idx>>6] |= 1 << (idx & 63)
	}
}

// RaiseEvent delivers an ECA event to a running instance: every state
// whose precondition subscribes to the event receives a notification from
// the "$event:<name>" pseudo-source, carrying the event's payload
// variables. Raising an event the plan never references is a no-op (the
// paper's composite consumes only declared events). Subscriber sets are
// precomputed at compile time.
func (w *Wrapper) RaiseEvent(ctx context.Context, instanceID, event string, payload map[string]string) error {
	subscribers := w.compiled.EventSubscribers(event)
	src := routing.EventSource(event)

	// Routing needs the instance's tenant, which came in with the start
	// request, not necessarily with this event payload.
	tenant := payload[TenantVar]

	// The wrapper's own finish clauses may reference the event too.
	if inst, ok := w.instances.get(instanceID); ok {
		inst.mu.Lock()
		if t, ok := inst.base[TenantVar]; ok {
			tenant = t
		}
		if !inst.finished {
			inst.mergeFrom(w, src, payload)
			inst.record(w, src)
			if w.finishSatisfied(inst) {
				inst.finished = true
				close(inst.done)
			}
		}
		inst.mu.Unlock()
	}

	// Subscribers co-hosted at one address share a frame (same coalescing
	// as the start phase).
	var box outbox
	for _, state := range subscribers {
		addr, found := w.route(state, instanceID, tenant)
		if !found {
			return fmt.Errorf("engine: event %q: subscriber %q is not deployed", event, state)
		}
		box.add(addr, &message.Message{
			Type:      message.TypeNotify,
			Composite: w.plan.Composite,
			Instance:  instanceID,
			From:      src,
			To:        state,
			Version:   w.compiled.Version,
			Vars:      payload,
		})
	}
	if err := box.flush(ctx, w.sender); err != nil {
		return fmt.Errorf("engine: event %q: %w", event, err)
	}
	return nil
}

// handle receives termination and fault notices from exit coordinators.
func (w *Wrapper) handle(_ context.Context, m *message.Message) {
	if m.Composite != w.plan.Composite {
		return
	}
	inst, ok := w.instances.get(m.Instance)
	if !ok {
		return // late notice after completion: drop
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.finished {
		return // duplicate notice after completion: drop
	}
	// Write-ahead commit point: the notice is durable before it is
	// applied. No dedup check first — the wrapper's bookkeeping (bitmask
	// OR, map merge) is idempotent, so a redelivered duplicate is
	// harmless both live and on replay.
	if j := w.journal(); j != nil && (m.Type == message.TypeDone || m.Type == message.TypeFault) {
		rec := &journal.Record{
			Kind:      journal.KindWArrival,
			Composite: w.plan.Composite,
			Instance:  m.Instance,
			Version:   w.compiled.Version,
			Src:       m.From,
			Seq:       uint64(m.Seq),
			Vars:      m.Vars,
			Error:     m.Error, // non-empty exactly for faults
		}
		_ = j.Append(rec)
	}
	switch m.Type {
	case message.TypeDone:
		inst.mergeFrom(w, m.From, m.Vars)
		inst.record(w, m.From)
		if w.finishSatisfied(inst) {
			inst.finished = true
			close(inst.done)
		}
	case message.TypeFault:
		inst.err = fmt.Errorf("%w: state %s: %s", ErrInstanceFault, m.From, m.Error)
		inst.finished = true
		close(inst.done)
	}
}

// finishSatisfied checks the compiled finish clauses against received
// termination notices: all sources present (bitmask coverage) and the
// clause's precompiled receiver-side condition (if any) true on the
// CANONICALLY merged bag (see wrapperInstance). Conditions that cannot
// be evaluated yet (undefined variables) keep waiting. Caller holds
// inst.mu.
func (w *Wrapper) finishSatisfied(inst *wrapperInstance) bool {
	// The bag is built lazily, like the coordinator's: most termination
	// notices at a wide AND-join cover no clause yet (and an unguarded
	// clause never needs the bag at all), so the canonical merge — O(all
	// variables) — must not be paid per arrival, only per actually
	// evaluated guard. Execute's final read rebuilds the cache if no
	// guard ever forced it.
	var bag map[string]string
	for _, clause := range w.compiled.Finish {
		if !clause.Covered(inst.pending) {
			continue
		}
		if clause.Condition == nil {
			return true
		}
		if bag == nil {
			bag = inst.mergedVars(w)
		}
		ok, err := evalGuard(clause.Condition, bag, w.funcEnv)
		if err != nil || !ok {
			continue
		}
		return true
	}
	return false
}
