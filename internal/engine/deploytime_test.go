package engine_test

import (
	"strings"
	"testing"

	"selfserv/internal/engine"
	"selfserv/internal/message"
	"selfserv/internal/routing"
	"selfserv/internal/service"
	"selfserv/internal/statechart"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

// These tests pin the compiled-plan contract: an ill-formed guard or
// action surfaces when the artifact is DEPLOYED (Host.Install,
// NewWrapper, NewCentral), never while an instance is executing. Before
// the compiled-plan layer the same inputs deployed fine and faulted the
// first instance that evaluated the broken expression.

// badPlan returns a structurally valid single-state plan with one
// expression replaced by unparseable source, per the mutate callback.
func badPlan(mutate func(p *routing.Plan)) *routing.Plan {
	p := &routing.Plan{
		Composite: "C",
		Tables: map[string]*routing.Table{
			"s": {
				State:     "s",
				Service:   "svc1",
				Operation: "op",
				Preconditions: []routing.Clause{
					{Sources: []string{message.WrapperID}},
				},
				Postprocessings: []routing.Target{
					{To: message.WrapperID},
				},
			},
		},
		Start:  []routing.Target{{To: "s"}},
		Finish: []routing.Clause{{Sources: []string{"s"}}},
	}
	mutate(p)
	return p
}

func chainRegistry(t *testing.T) *service.Registry {
	t.Helper()
	reg := service.NewRegistry()
	workload.RegisterChainProviders(reg, 1, service.SimulatedOptions{})
	return reg
}

func TestInstallRejectsInvalidGuards(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(p *routing.Plan)
	}{
		{"precondition-condition", func(p *routing.Plan) {
			p.Tables["s"].Preconditions[0].Condition = "x > ("
		}},
		{"precondition-action", func(p *routing.Plan) {
			p.Tables["s"].Preconditions[0].Actions = []statechart.Assignment{{Var: "y", Expr: "1 +"}}
		}},
		{"postprocessing-condition", func(p *routing.Plan) {
			p.Tables["s"].Postprocessings[0].Condition = "and and"
		}},
		{"postprocessing-action", func(p *routing.Plan) {
			p.Tables["s"].Postprocessings[0].Actions = []statechart.Assignment{{Var: "y", Expr: "(("}}
		}},
		{"input-binding-expr", func(p *routing.Plan) {
			p.Tables["s"].Inputs = []statechart.Binding{{Param: "in", Expr: "x ++"}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := transport.NewInMem(transport.InMemOptions{})
			defer net.Close()
			dir := engine.NewDirectory()
			h, err := engine.NewHost(net, "h1", chainRegistry(t), dir, engine.HostOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()
			plan := badPlan(tc.mutate)
			err = h.Install("C", plan.Tables["s"])
			if err == nil {
				t.Fatal("Install accepted a table with an unparseable expression")
			}
			if !strings.Contains(err.Error(), "install") && !strings.Contains(err.Error(), "compile") {
				t.Errorf("error %q does not identify the deploy-time failure", err)
			}
			// The broken coordinator must not have been registered.
			if states := h.States("C"); len(states) != 0 {
				t.Errorf("host registered states %v despite failed install", states)
			}
		})
	}
}

func TestWrapperRejectsInvalidPlanGuards(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(p *routing.Plan)
	}{
		{"start-condition", func(p *routing.Plan) {
			p.Start[0].Condition = "vip and ("
		}},
		{"start-action", func(p *routing.Plan) {
			p.Start[0].Actions = []statechart.Assignment{{Var: "y", Expr: "* 2"}}
		}},
		{"finish-condition", func(p *routing.Plan) {
			p.Finish[0].Condition = "x <"
		}},
		{"table-condition", func(p *routing.Plan) {
			p.Tables["s"].Postprocessings[0].Condition = "))"
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := transport.NewInMem(transport.InMemOptions{})
			defer net.Close()
			dir := engine.NewDirectory()
			plan := badPlan(tc.mutate)
			if _, err := engine.NewWrapper(net, "w1", dir, plan, nil); err == nil {
				t.Fatal("NewWrapper accepted a plan with an unparseable expression")
			}
			if _, err := engine.NewCentral(net, "c1", dir, plan, nil); err == nil {
				t.Fatal("NewCentral accepted a plan with an unparseable expression")
			}
		})
	}
}

// TestValidGuardsStillDeploy guards the other direction: the deploy-time
// compilation must not reject plans whose guards are well-formed but
// reference variables that only exist at runtime.
func TestValidGuardsStillDeploy(t *testing.T) {
	net := transport.NewInMem(transport.InMemOptions{})
	defer net.Close()
	dir := engine.NewDirectory()
	plan := badPlan(func(p *routing.Plan) {
		p.Start[0].Condition = "" // always
		p.Tables["s"].Preconditions[0].Condition = "runtime_only_var > 3"
		p.Tables["s"].Postprocessings[0].Condition = "near(x) or price < budget"
	})
	h, err := engine.NewHost(net, "h1", chainRegistry(t), dir, engine.HostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.Install("C", plan.Tables["s"]); err != nil {
		t.Fatalf("Install rejected a well-formed table: %v", err)
	}
	w, err := engine.NewWrapper(net, "w1", dir, plan, nil)
	if err != nil {
		t.Fatalf("NewWrapper rejected a well-formed plan: %v", err)
	}
	defer w.Close()
}
