package engine_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"selfserv/internal/core"
	"selfserv/internal/service"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

// TestStartFanCoalescesPerDestination pins the Network v2 acceptance
// criterion: when a wide parallel fan's branches are co-hosted, the
// wrapper's start round costs ONE wire frame per destination host, not
// one per notification — FramesOut stays at ~1 per (destination,
// instance) per round while MsgsOut still counts every notification.
func TestStartFanCoalescesPerDestination(t *testing.T) {
	const k = 8
	net := transport.NewInMem(transport.InMemOptions{})
	p := core.New(core.Options{Network: net})
	defer p.Close()
	workload.RegisterParallelProviders(p.Registry(), k, service.SimulatedOptions{})

	// ALL k branch services on one host: the worst case for an unbatched
	// transport (k frames per start round) and the best case for v2 (1).
	h, err := p.AddHost("the-one-host")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= k; i++ {
		prov, err := p.Registry().Lookup(fmt.Sprintf("svc%d", i))
		if err != nil {
			t.Fatal(err)
		}
		p.RegisterService(h, prov)
	}
	comp, err := p.Deploy(workload.Parallel(k))
	if err != nil {
		t.Fatal(err)
	}

	const execs = 5
	for i := 0; i < execs; i++ {
		if _, err := comp.Execute(ctxWithTimeout(t), map[string]string{"x": "0"}); err != nil {
			t.Fatal(err)
		}
	}

	wrapper := net.Stats().Nodes[comp.Wrapper().Addr()]
	if wrapper.MsgsOut != k*execs {
		t.Fatalf("wrapper MsgsOut = %d, want %d (k notifications per execution)", wrapper.MsgsOut, k*execs)
	}
	if wrapper.FramesOut != execs {
		t.Fatalf("wrapper FramesOut = %d, want %d (ONE frame per start round)", wrapper.FramesOut, execs)
	}

	// The branches complete independently (k separate firing rounds), so
	// the host's Done notices stay k frames — coalescing only merges
	// messages of one round, never across rounds.
	host := net.Stats().Nodes["the-one-host"]
	if host.MsgsOut != k*execs || host.FramesOut != k*execs {
		t.Fatalf("host stats = %+v, want %d msgs in %d frames", host, k*execs, k*execs)
	}
}

// TestCentralInvokeRoundCoalesces: the hub's firing round batches its
// TypeInvoke messages per destination host the same way.
func TestCentralInvokeRoundCoalesces(t *testing.T) {
	const k = 6
	net := transport.NewInMem(transport.InMemOptions{})
	p := core.New(core.Options{Network: net})
	defer p.Close()
	workload.RegisterParallelProviders(p.Registry(), k, service.SimulatedOptions{})
	h, err := p.AddHost("hub-worker")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= k; i++ {
		prov, err := p.Registry().Lookup(fmt.Sprintf("svc%d", i))
		if err != nil {
			t.Fatal(err)
		}
		p.RegisterService(h, prov)
	}
	comp, err := p.Deploy(workload.Parallel(k))
	if err != nil {
		t.Fatal(err)
	}
	central, err := comp.NewCentralBaseline("the-hub")
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()

	if _, err := central.Execute(ctxWithTimeout(t), map[string]string{"x": "0"}); err != nil {
		t.Fatal(err)
	}
	hub := net.Stats().Nodes["the-hub"]
	if hub.MsgsOut != k {
		t.Fatalf("hub MsgsOut = %d, want %d invokes", hub.MsgsOut, k)
	}
	if hub.FramesOut != 1 {
		t.Fatalf("hub FramesOut = %d, want 1 (the whole parallel round in one frame)", hub.FramesOut)
	}
}

// TestBatchedInvokesStayConcurrent guards the "hub is an orchestrator,
// not a serializer" contract against the frame-delivery semantics: a
// coalesced invoke frame is handed to the host's handler sequentially,
// so serveInvoke must dispatch executions onto their own goroutines or
// co-hosted states would serialize. Every branch handler blocks until
// all k have entered; if executions were serialized the barrier would
// never fill and the run would fault.
func TestBatchedInvokesStayConcurrent(t *testing.T) {
	const k = 4
	net := transport.NewInMem(transport.InMemOptions{})
	p := core.New(core.Options{Network: net})
	defer p.Close()

	var entered atomic.Int32
	release := make(chan struct{})
	h, err := p.AddHost("barrier-host")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= k; i++ {
		s := service.NewSimulated(fmt.Sprintf("svc%d", i), service.SimulatedOptions{})
		s.Handle("run", func(ctx context.Context, _ map[string]string) (map[string]string, error) {
			if entered.Add(1) == k {
				close(release)
			}
			select {
			case <-release:
			case <-time.After(5 * time.Second):
				return nil, fmt.Errorf("co-hosted invocations serialized: only %d of %d entered", entered.Load(), k)
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return map[string]string{"y": "1"}, nil
		})
		p.RegisterService(h, s)
	}
	comp, err := p.Deploy(workload.Parallel(k))
	if err != nil {
		t.Fatal(err)
	}
	central, err := comp.NewCentralBaseline("barrier-hub")
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()
	if _, err := central.Execute(ctxWithTimeout(t), map[string]string{"x": "0"}); err != nil {
		t.Fatalf("central execution with barrier handlers: %v", err)
	}
}
