package engine_test

import (
	"fmt"
	"testing"

	"selfserv/internal/deployer"
	"selfserv/internal/engine"
	"selfserv/internal/service"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

// TestRandomChartsP2PEqualsCentral is a differential property test: for
// random sequential/branching statecharts (no concurrency, so dataflow is
// deterministic), the peer-to-peer engine and the hub baseline must
// produce identical outputs for identical inputs. Any divergence means
// one of the two interpreters of the routing plan is wrong.
func TestRandomChartsP2PEqualsCentral(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			sc := workload.RandomChart(workload.RandomOptions{
				States: 12, MaxDepth: 3, BranchProb: 0.35, ParallelProb: 0, Seed: seed,
			})
			reg := service.NewRegistry()
			workload.RegisterIncrementProviders(reg, sc, service.SimulatedOptions{})
			f := buildFabric(t, sc, reg, nil)
			central, err := engine.NewCentral(f.net, "central", f.dir, f.plan, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer central.Close()

			for _, x := range []string{"0", "1", "2", "7"} {
				in := map[string]string{"x": x}
				p2pOut, err := f.wrapper.Execute(ctxWithTimeout(t), in)
				if err != nil {
					t.Fatalf("p2p x=%s: %v\nchart: %s", x, err, sc)
				}
				cenOut, err := central.Execute(ctxWithTimeout(t), in)
				if err != nil {
					t.Fatalf("central x=%s: %v\nchart: %s", x, err, sc)
				}
				if p2pOut["x"] != cenOut["x"] {
					t.Errorf("x=%s: p2p -> %q, central -> %q\nchart: %s",
						x, p2pOut["x"], cenOut["x"], sc)
				}
			}
		})
	}
}

// TestRandomParallelChartsBothComplete covers charts WITH concurrency:
// parallel regions share the in-out variable x, so the final value depends
// on merge order and cannot be compared across engines — but both engines
// must complete every execution without stalling or faulting (liveness of
// the AND-join synchronization).
func TestRandomParallelChartsBothComplete(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			sc := workload.RandomChart(workload.RandomOptions{
				States: 14, MaxDepth: 3, BranchProb: 0.3, ParallelProb: 0.4, Seed: seed,
			})
			reg := service.NewRegistry()
			workload.RegisterIncrementProviders(reg, sc, service.SimulatedOptions{})
			f := buildFabric(t, sc, reg, nil)
			central, err := engine.NewCentral(f.net, "central", f.dir, f.plan, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer central.Close()

			for _, x := range []string{"0", "3"} {
				in := map[string]string{"x": x}
				if _, err := f.wrapper.Execute(ctxWithTimeout(t), in); err != nil {
					t.Fatalf("p2p x=%s: %v\nchart: %s", x, err, sc)
				}
				if _, err := central.Execute(ctxWithTimeout(t), in); err != nil {
					t.Fatalf("central x=%s: %v\nchart: %s", x, err, sc)
				}
			}
		})
	}
}

// TestInstanceEviction verifies that per-coordinator instance bookkeeping
// is bounded: with MaxInstancesPerState = 8, a long run of distinct
// instances must still execute correctly (eviction only discards finished
// instances in FIFO order).
func TestInstanceEviction(t *testing.T) {
	reg := service.NewRegistry()
	workload.RegisterChainProviders(reg, 2, service.SimulatedOptions{})
	sc := workload.Chain(2)

	net := transport.NewInMem(transport.InMemOptions{})
	defer net.Close()
	dir := engine.NewDirectory()
	h, err := engine.NewHost(net, "single-host", reg, dir, engine.HostOptions{
		MaxInstancesPerState: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	dep, err := deployer.Deploy(sc, deployer.Placement{"svc1": {h}, "svc2": {h}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := engine.NewWrapper(net, "wrapper", dir, dep.Plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	ctx := ctxWithTimeout(t)
	for i := 0; i < 100; i++ {
		out, err := w.Execute(ctx, map[string]string{"x": "0"})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if out["x"] != "2" {
			t.Fatalf("run %d: x = %q", i, out["x"])
		}
	}
}
