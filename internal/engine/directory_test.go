package engine

import (
	"fmt"
	"testing"

	"selfserv/internal/placement"
)

// TestDirectoryRouteDeterministicAcrossNodes is the scale-out
// determinism property at the Directory layer: two directories (two
// "nodes") that learned the same replica set in DIFFERENT orders route
// every (instance, tenant) key to the same replica — including after a
// directory update adds another replica.
func TestDirectoryRouteDeterministicAcrossNodes(t *testing.T) {
	pol := placement.Policy{ShardSize: 2, Dedicated: map[string]int{"visa": 1}}
	d1 := NewDirectory()
	d1.SetPolicy(pol)
	d2 := NewDirectory()
	d2.SetPolicy(pol)

	replicas := []string{"r1", "r2", "r3", "r4"}
	for _, a := range replicas { // forward order
		d1.AddReplica("C", "s1", a)
	}
	for i := len(replicas) - 1; i >= 0; i-- { // reverse order
		d2.AddReplica("C", "s1", replicas[i])
	}

	check := func(phase string) {
		t.Helper()
		for i := 0; i < 100; i++ {
			inst := fmt.Sprintf("i%d", i)
			for _, tenant := range []string{"", "visa", "acme"} {
				a1, ok1 := d1.Route("C", "s1", inst, tenant)
				a2, ok2 := d2.Route("C", "s1", inst, tenant)
				if !ok1 || !ok2 || a1 != a2 {
					t.Fatalf("%s: nodes disagree on (%q,%q): %q/%v vs %q/%v",
						phase, inst, tenant, a1, ok1, a2, ok2)
				}
			}
		}
	}
	check("initial")

	// A directory update (scale-out event) must leave the nodes agreeing.
	d1.AddReplica("C", "s1", "r5")
	d2.AddReplica("C", "s1", "r5")
	check("after AddReplica")

	d1.RemoveReplica("C", "s1", "r2")
	d2.RemoveReplica("C", "s1", "r2")
	check("after RemoveReplica")
	for _, d := range []*Directory{d1, d2} {
		if got := d.Replicas("C", "s1"); len(got) != 4 {
			t.Fatalf("replicas = %v", got)
		}
	}
}

// TestDirectoryReplicaSetSemantics pins the Set/AddReplica/Remove
// contract: Set replaces with a singleton, AddReplica is idempotent,
// removing the last replica drops the peer, Lookup returns the
// canonical first replica.
func TestDirectoryReplicaSetSemantics(t *testing.T) {
	d := NewDirectory()
	d.AddReplica("C", "s1", "b")
	d.AddReplica("C", "s1", "a")
	d.AddReplica("C", "s1", "a") // idempotent
	if got := d.Replicas("C", "s1"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("replicas = %v", got)
	}
	if addr, ok := d.Lookup("C", "s1"); !ok || addr != "a" {
		t.Fatalf("Lookup = %q, %v", addr, ok)
	}
	if pr := d.PeerReplicas("C"); len(pr["s1"]) != 2 {
		t.Fatalf("PeerReplicas = %v", pr)
	}

	d.Set("C", "s1", "only")
	if got := d.Replicas("C", "s1"); len(got) != 1 || got[0] != "only" {
		t.Fatalf("after Set, replicas = %v", got)
	}

	d.RemoveReplica("C", "s1", "only")
	if _, ok := d.Lookup("C", "s1"); ok {
		t.Fatal("peer survived removal of its last replica")
	}
	if _, ok := d.Route("C", "s1", "i1", ""); ok {
		t.Fatal("Route resolved a removed peer")
	}
}

// TestDirectorySetPolicyRebuilds pins that installing a policy after
// replicas exist re-shards the existing groups (a dedicated cell starts
// isolating immediately).
func TestDirectorySetPolicyRebuilds(t *testing.T) {
	d := NewDirectory()
	for _, a := range []string{"r1", "r2", "r3", "r4"} {
		d.AddReplica("C", "s1", a)
	}
	d.SetPolicy(placement.Policy{Dedicated: map[string]int{"visa": 2}})

	visa := map[string]bool{}
	other := map[string]bool{}
	for i := 0; i < 100; i++ {
		inst := fmt.Sprintf("i%d", i)
		if a, ok := d.Route("C", "s1", inst, "visa"); ok {
			visa[a] = true
		}
		if a, ok := d.Route("C", "s1", inst, "acme"); ok {
			other[a] = true
		}
	}
	if len(visa) != 2 {
		t.Fatalf("visa cell spread over %d replicas, want 2", len(visa))
	}
	for a := range other {
		if visa[a] {
			t.Fatalf("non-dedicated tenant landed on visa cell replica %s", a)
		}
	}
}
