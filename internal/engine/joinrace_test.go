package engine_test

// Regression tests for the seed-8 AND-join liveness flake
// (TestRandomParallelChartsBothComplete/seed-8, ROADMAP "known flake").
//
// Root cause: a guarded transition OUT of a concurrent state compiles to
// receiver-side guards on the AND-join clauses of EVERY alternative
// successor (routing's guard-placement rule: no single region exit sees
// the merged bag). Each successor's coordinator used to evaluate that
// guard on a bag merged in ARRIVAL order, so two successors with
// complementary guards ("x % 2 = 0" vs "x % 2 = 1") could — under
// scheduler jitter — merge the regions' bags in opposite orders,
// disagree on x, and BOTH reject. The notifications stayed pending
// forever and the instance stalled until its deadline (~1 in 5 loops of
// -race -count=10). The mirror interleaving made BOTH fire instead.
//
// The fix merges per-source bags in a canonical order (sorted source
// IDs, routing.CompiledTable.MergeOrder), so every receiver of the same
// notifications computes the same bag and exactly one complementary
// guard holds. These tests pin both losing interleavings
// deterministically — synchronous in-memory delivery, no sleeps, no
// timing dependence — rather than re-running the random chart under a
// longer deadline.

import (
	"context"
	"testing"
	"time"

	"selfserv/internal/engine"
	"selfserv/internal/message"
	"selfserv/internal/routing"
	"selfserv/internal/service"
	"selfserv/internal/statechart"
	"selfserv/internal/transport"
)

// joinFixture is one host running the two alternative AND-join
// successors "even" (guard x % 2 = 0) and "odd" (guard x % 2 = 1), both
// joining on sources {s1, s2} — the minimal shape of seed-8's
// npar11 --[x % 2 = 0]--> n26 / --[x % 2 = 1]--> n27.
type joinFixture struct {
	net   *transport.InMem
	fired map[string]chan map[string]string // state -> invocation params
}

func newJoinFixture(t *testing.T) *joinFixture {
	t.Helper()
	f := &joinFixture{
		net:   transport.NewInMem(transport.InMemOptions{Synchronous: true}),
		fired: map[string]chan map[string]string{},
	}
	t.Cleanup(func() { f.net.Close() })

	reg := service.NewRegistry()
	for _, state := range []string{"even", "odd"} {
		state := state
		ch := make(chan map[string]string, 4)
		f.fired[state] = ch
		s := service.NewSimulated("Svc-"+state, service.SimulatedOptions{})
		s.Handle("run", func(_ context.Context, p map[string]string) (map[string]string, error) {
			ch <- p
			return map[string]string{}, nil
		})
		reg.Register(s)
	}

	dir := engine.NewDirectory()
	h, err := engine.NewHost(f.net, "join-host", reg, dir, engine.HostOptions{})
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(func() { h.Close() })

	for state, cond := range map[string]string{"even": "x % 2 = 0", "odd": "x % 2 = 1"} {
		err := h.Install("C", &routing.Table{
			State:     state,
			Service:   "Svc-" + state,
			Operation: "run",
			Inputs:    []statechart.Binding{{Param: "x", Var: "x"}},
			Preconditions: []routing.Clause{
				{Sources: []string{"s1", "s2"}, Condition: cond},
			},
			Postprocessings: []routing.Target{{To: message.WrapperID}},
		})
		if err != nil {
			t.Fatalf("Install %s: %v", state, err)
		}
	}
	// The coordinators notify the wrapper after firing; give that ID an
	// address so the postprocessing lookup succeeds (a sink, not asserted).
	if _, err := f.net.Listen("join-wrapper", func(context.Context, *message.Message) {}); err != nil {
		t.Fatal(err)
	}
	dir.Set("C", message.WrapperID, "join-wrapper")
	return f
}

// notify delivers one region-exit notification synchronously: from
// carries its own region's view of x.
func (f *joinFixture) notify(t *testing.T, instance, to, from, x string) {
	t.Helper()
	err := f.net.Send(context.Background(), "join-host", &message.Message{
		Type:      message.TypeNotify,
		Composite: "C",
		Instance:  instance,
		From:      from,
		To:        to,
		Vars:      map[string]string{"x": x},
	})
	if err != nil {
		t.Fatalf("notify %s<-%s: %v", to, from, err)
	}
}

// expectFire waits for the state's service invocation and returns its
// params; expectQuiet asserts the state never fired.
func (f *joinFixture) expectFire(t *testing.T, state string) map[string]string {
	t.Helper()
	select {
	case p := <-f.fired[state]:
		return p
	case <-time.After(5 * time.Second):
		t.Fatalf("AND-join successor %q never fired: the losing interleaving stalled the instance (arrival-order bag merge)", state)
		return nil
	}
}

func (f *joinFixture) expectQuiet(t *testing.T, state string) {
	t.Helper()
	select {
	case p := <-f.fired[state]:
		t.Fatalf("AND-join successor %q fired (params %v): complementary guards both held — receivers disagreed on the merged bag", state, p)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestANDJoinGuardsAgreeBothStallInterleaving pins the interleaving that
// caused the seed-8 stall: the "even" successor sees s1 (x=2) before
// s2 (x=3), the "odd" successor sees them in the OPPOSITE order. With
// arrival-order merging, even's bag ends odd and odd's bag ends even —
// both guards reject, nothing ever fires, the instance hangs. With the
// canonical merge order both receivers agree on s2's x (sources sorted:
// s1 before s2), so exactly "odd" fires, with x = 3.
func TestANDJoinGuardsAgreeBothStallInterleaving(t *testing.T) {
	f := newJoinFixture(t)
	// Region exits disagree on x: region 1 left it even, region 2 odd.
	f.notify(t, "i1", "even", "s1", "2")
	f.notify(t, "i1", "odd", "s2", "3")
	f.notify(t, "i1", "even", "s2", "3") // even now covered, last arrival x=3
	f.notify(t, "i1", "odd", "s1", "2")  // odd now covered, last arrival x=2

	p := f.expectFire(t, "odd")
	f.expectQuiet(t, "even")
	if p["x"] != "3" {
		t.Fatalf("odd fired with x = %q, want the canonical merge's 3 (s2 overrides s1)", p["x"])
	}
}

// TestANDJoinGuardsAgreeBothFireInterleaving pins the mirror
// interleaving: each receiver's LAST arrival matches its own guard, so
// with arrival-order merging BOTH complementary successors fired (a
// divergence rather than a stall). The canonical merge picks one.
func TestANDJoinGuardsAgreeBothFireInterleaving(t *testing.T) {
	f := newJoinFixture(t)
	f.notify(t, "i2", "odd", "s1", "2")
	f.notify(t, "i2", "even", "s2", "3")
	f.notify(t, "i2", "odd", "s2", "3")  // odd covered, last arrival x=3 (its guard holds)
	f.notify(t, "i2", "even", "s1", "2") // even covered, last arrival x=2 (its guard holds)

	p := f.expectFire(t, "odd")
	f.expectQuiet(t, "even")
	if p["x"] != "3" {
		t.Fatalf("odd fired with x = %q, want 3", p["x"])
	}
}

// TestFiringResultsVisibleToLaterClauses pins the layering against a
// shadowing regression: a firing's service outputs must be visible to
// the guards of LATER clauses of the same state, even when an interned
// source's earlier notification carried an older value for the same
// variable. (A source bag that was fully absorbed into the fire
// snapshot is cleared at finish; only data arriving DURING the firing
// may override the results.)
func TestFiringResultsVisibleToLaterClauses(t *testing.T) {
	net := transport.NewInMem(transport.InMemOptions{Synchronous: true})
	defer net.Close()

	fired := make(chan map[string]string, 4)
	reg := service.NewRegistry()
	s := service.NewSimulated("SvcGate", service.SimulatedOptions{})
	s.Handle("run", func(_ context.Context, p map[string]string) (map[string]string, error) {
		fired <- p
		// The firing rewrites x: later guard evaluations must see 10,
		// not the x=1 the s1 notification carried.
		return map[string]string{"x": "10"}, nil
	})
	reg.Register(s)

	dir := engine.NewDirectory()
	h, err := engine.NewHost(net, "gate-host", reg, dir, engine.HostOptions{})
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	defer h.Close()
	err = h.Install("C", &routing.Table{
		State:     "gate",
		Service:   "SvcGate",
		Operation: "run",
		Inputs:    []statechart.Binding{{Param: "x", Var: "x"}},
		Outputs:   []statechart.Binding{{Param: "x", Var: "x"}},
		Preconditions: []routing.Clause{
			{Sources: []string{"s1"}},
			{Sources: []string{"s2"}, Condition: "x = 10"},
		},
		Postprocessings: []routing.Target{{To: message.WrapperID}},
	})
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	if _, err := net.Listen("gate-wrapper", func(context.Context, *message.Message) {}); err != nil {
		t.Fatal(err)
	}
	dir.Set("C", message.WrapperID, "gate-wrapper")

	notify := func(from string, vars map[string]string) {
		t.Helper()
		err := net.Send(context.Background(), "gate-host", &message.Message{
			Type: message.TypeNotify, Composite: "C", Instance: "i1",
			From: from, To: "gate", Vars: vars,
		})
		if err != nil {
			t.Fatalf("notify from %s: %v", from, err)
		}
	}
	expect := func(wantX string) map[string]string {
		t.Helper()
		select {
		case p := <-fired:
			if p["x"] != wantX {
				t.Fatalf("fired with x = %q, want %q", p["x"], wantX)
			}
			return p
		case <-time.After(5 * time.Second):
			t.Fatalf("gate never fired waiting for x=%s: stale source data shadowed the firing's output", wantX)
			return nil
		}
	}

	notify("s1", map[string]string{"x": "1"})
	expect("1") // first clause fires on s1's bag
	notify("s2", map[string]string{"y": "7"})
	// The second clause's guard (x = 10) must see the FIRING's output,
	// not s1's stale x=1.
	expect("10")
}

// TestWrapperFinishBagIsArrivalOrderIndependent pins the wrapper-side
// twin: the final variable bag (and therefore finish-guard evaluation
// and the execution's outputs) must not depend on which exit's
// termination notice arrived last. Two exits report different x; both
// delivery orders must yield the canonical merge's value.
func TestWrapperFinishBagIsArrivalOrderIndependent(t *testing.T) {
	for name, order := range map[string][2]string{
		"a-then-b": {"a", "b"},
		"b-then-a": {"b", "a"},
	} {
		t.Run(name, func(t *testing.T) {
			net := transport.NewInMem(transport.InMemOptions{Synchronous: true})
			defer net.Close()
			dir := engine.NewDirectory()

			plan := &routing.Plan{
				Composite: "W",
				Inputs:    nil,
				Outputs:   nil,
				Tables: map[string]*routing.Table{
					"a": {State: "a", Service: "SA", Operation: "run",
						Preconditions:   []routing.Clause{{Sources: []string{message.WrapperID}}},
						Postprocessings: []routing.Target{{To: message.WrapperID}}},
					"b": {State: "b", Service: "SB", Operation: "run",
						Preconditions:   []routing.Clause{{Sources: []string{message.WrapperID}}},
						Postprocessings: []routing.Target{{To: message.WrapperID}}},
				},
				Start:  []routing.Target{{To: "a"}, {To: "b"}},
				Finish: []routing.Clause{{Sources: []string{"a", "b"}}},
			}
			// The states are never really deployed: the test injects their
			// TypeDone notices directly, in a chosen order. Park their
			// directory entries on a sink so the wrapper's start flush has
			// somewhere to go.
			if _, err := net.Listen("sink", func(context.Context, *message.Message) {}); err != nil {
				t.Fatal(err)
			}
			dir.Set("W", "a", "sink")
			dir.Set("W", "b", "sink")

			w, err := engine.NewWrapper(net, "wrapper-W", dir, plan, nil)
			if err != nil {
				t.Fatalf("NewWrapper: %v", err)
			}
			defer w.Close()

			type result struct {
				out map[string]string
				err error
			}
			done := make(chan result, 1)
			go func() {
				out, err := w.ExecuteInstance(context.Background(), "i1", map[string]string{"x": "0"})
				done <- result{out, err}
			}()
			// Wait until the start frame reached the sink, so the instance
			// is registered before its termination notices arrive.
			deadline := time.Now().Add(5 * time.Second)
			for net.Stats().Nodes["sink"].MsgsIn < 2 {
				if time.Now().After(deadline) {
					t.Fatal("start notifications never reached the sink")
				}
				time.Sleep(time.Millisecond)
			}

			x := map[string]string{"a": "10", "b": "11"}
			for _, from := range order {
				err := net.Send(context.Background(), "wrapper-W", &message.Message{
					Type:      message.TypeDone,
					Composite: "W",
					Instance:  "i1",
					From:      from,
					To:        message.WrapperID,
					Vars:      map[string]string{"x": x[from]},
				})
				if err != nil {
					t.Fatalf("done from %s: %v", from, err)
				}
			}
			res := <-done
			if res.err != nil {
				t.Fatalf("ExecuteInstance: %v", res.err)
			}
			// Canonical merge: "a" before "b", so b's x wins in EITHER
			// delivery order. Before the fix this was last-arrival-wins.
			if res.out["x"] != "11" {
				t.Fatalf("final x = %q under order %v, want the canonical 11", res.out["x"], order)
			}
		})
	}
}
