package engine

import (
	"sync"
	"sync/atomic"
)

// This file implements the lock-striped instance tables behind the
// engine's concurrent-execution scaling (docs/engine.md). Before the
// striping, every component kept its per-instance state in ONE
// mutex-guarded map — so all in-flight instances of a coordinator (or a
// wrapper, or the hub's reply routing) serialized behind a single lock,
// and the paper's "heavy traffic" regime degenerated to a convoy. The
// shard table splits the map by instance-ID hash: instances in
// different shards never touch the same mutex, and the shard mutex
// guards only the map shape (lookup, insert, evict). The instance's own
// state is protected by the instance's own mutex (coordInstance.mu,
// wrapperInstance.mu), so even same-shard instances contend only for
// the nanoseconds of a map read — the guard-eval/bag-merge critical
// section is per-instance.
//
// Lock order: the eviction-race re-check loop (coordinator
// onNotification) holds an instance mutex while re-reading the shard
// map, so instance-before-shard is the one nesting that BLOCKS. The
// only path needing the opposite nesting — getOrCreate's onEvict hook
// inspecting an eviction candidate under the shard mutex — must
// therefore TryLock the candidate's instance mutex and veto on failure;
// it may never block on it. No code path holds two shard mutexes or two
// instance mutexes at once.

// instShardCount stripes every per-instance table. 32 shards keep the
// collision probability negligible for realistic in-flight counts while
// costing ~1.5 KiB per coordinator; must be a power of two.
const instShardCount = 32

// instShardIdx hashes an instance ID onto its stripe (FNV-1a, masked).
// Instance IDs are short ("i421"), so the byte loop beats importing
// hash/fnv and its interface indirection.
func instShardIdx(id string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return h & (instShardCount - 1)
}

// tableShard is one stripe: a map plus, for capped tables, the
// insertion order used for FIFO eviction.
type tableShard[V any] struct {
	mu    sync.Mutex // lockorder:shard — level 1, acquired before any instance mutex
	m     map[string]V
	order []string
}

// shardedTable is a string-keyed map striped across instShardCount
// mutexes. The zero value is ready to use. count tracks the total
// population across shards (maintained by getOrCreate's create/evict
// only — the capped-table path); insert/remove users don't need it.
type shardedTable[V any] struct {
	shards [instShardCount]tableShard[V]
	count  atomic.Int64
}

// get returns the value for id, if present.
func (t *shardedTable[V]) get(id string) (V, bool) {
	s := &t.shards[instShardIdx(id)]
	s.mu.Lock()
	v, ok := s.m[id]
	s.mu.Unlock()
	return v, ok
}

// insert adds id→v and reports whether it was absent; an existing entry
// is left untouched (the caller's duplicate-ID check).
func (t *shardedTable[V]) insert(id string, v V) bool {
	s := &t.shards[instShardIdx(id)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.m[id]; dup {
		return false
	}
	if s.m == nil {
		s.m = map[string]V{}
	}
	s.m[id] = v
	return true
}

// insertCounted is insert for capped tables: the new entry joins the
// shard's eviction order and the global population count, exactly as if
// getOrCreate had built it. Crash recovery uses it to re-seat restored
// instances so they stay subject to the same cap (and passivation) as
// instances created by live traffic.
func (t *shardedTable[V]) insertCounted(id string, v V) bool {
	s := &t.shards[instShardIdx(id)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.m[id]; dup {
		return false
	}
	if s.m == nil {
		s.m = map[string]V{}
	}
	s.m[id] = v
	s.order = append(s.order, id)
	t.count.Add(1)
	return true
}

// take removes and returns the value for id in one critical section, so
// two racing takers can never both claim it (Central's reply routing
// relies on this: a duplicate TypeResult must find nothing).
func (t *shardedTable[V]) take(id string) (V, bool) {
	s := &t.shards[instShardIdx(id)]
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[id]
	if ok {
		delete(s.m, id)
	}
	return v, ok
}

// remove deletes id (a no-op when absent).
func (t *shardedTable[V]) remove(id string) {
	s := &t.shards[instShardIdx(id)]
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

// forEach calls fn on every live entry, one shard at a time. fn runs
// under the shard mutex: it must stay short, must not touch the table,
// and may take at most the entry's own instance mutex (shard before
// instance is the documented lock order).
func (t *shardedTable[V]) forEach(fn func(id string, v V)) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for id, v := range s.m {
			fn(id, v)
		}
		s.mu.Unlock()
	}
}

// getOrCreate returns the value for id, building it with mk on first
// use. max bounds the TOTAL population across all shards (the atomic
// count): while it is exceeded, the oldest evictable entry of the new
// entry's shard is evicted (FIFO). Gating eviction on the global count —
// not the shard's — means a small cap with few live instances never
// evicts one of them just because two IDs hashed to the same shard; only
// when the table as a whole is over budget does the valve open, matching
// the pre-striping single map. Eviction is a safety valve against leaked
// bookkeeping, not a precise LRU (it scans the current shard's oldest,
// not the global oldest).
//
// onEvict, when non-nil, is consulted under the shard mutex before each
// candidate leaves the table; returning false vetoes THAT candidate and
// the scan moves to the next-oldest (bounded by evictScanLimit, so a
// shard full of vetoes cannot turn creation into a linear walk). The
// hook is where the owner journals the victim (passivation) or counts
// the loss loudly (Host.Evicted). It runs under the shard mutex, so it
// must TryLock — never Lock — the candidate's instance mutex (see the
// lock-order note at the top of this file) and veto when the try fails.
func (t *shardedTable[V]) getOrCreate(id string, max int, mk func() V, onEvict func(id string, v V) bool) V {
	s := &t.shards[instShardIdx(id)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.m[id]; ok {
		return v
	}
	if s.m == nil {
		s.m = map[string]V{}
	}
	v := mk()
	s.m[id] = v
	s.order = append(s.order, id)
	if max > 0 && t.count.Add(1) > int64(max) && len(s.order) > 1 {
		for scanned := 0; len(s.order) > 1 && scanned < evictScanLimit; scanned++ {
			victim := s.order[0]
			cand, ok := s.m[victim]
			if !ok {
				// Stale order entry (the id was removed, or re-created and
				// re-appended): drop the tombstone and keep scanning without
				// charging the scan budget — it frees nothing and vetoes
				// nothing.
				s.order = s.order[1:]
				scanned--
				continue
			}
			if onEvict != nil && !onEvict(victim, cand) {
				// Vetoed (e.g. an invocation is in flight): rotate the
				// candidate to the back so the next over-cap create doesn't
				// re-scan it first.
				s.order = append(s.order[1:], victim)
				continue
			}
			s.order = s.order[1:]
			delete(s.m, victim)
			t.count.Add(-1)
			break
		}
	}
	return v
}

// evictScanLimit bounds how many veto'd candidates one over-cap create
// will step over before giving up for this round (the table runs over
// budget until a later create finds an evictable entry).
const evictScanLimit = 8
