package engine

import (
	"sync"
	"sync/atomic"
)

// This file implements the lock-striped instance tables behind the
// engine's concurrent-execution scaling (docs/engine.md). Before the
// striping, every component kept its per-instance state in ONE
// mutex-guarded map — so all in-flight instances of a coordinator (or a
// wrapper, or the hub's reply routing) serialized behind a single lock,
// and the paper's "heavy traffic" regime degenerated to a convoy. The
// shard table splits the map by instance-ID hash: instances in
// different shards never touch the same mutex, and the shard mutex
// guards only the map shape (lookup, insert, evict). The instance's own
// state is protected by the instance's own mutex (coordInstance.mu,
// wrapperInstance.mu), so even same-shard instances contend only for
// the nanoseconds of a map read — the guard-eval/bag-merge critical
// section is per-instance.
//
// Lock order (the only one in this package): shard mutex strictly
// before instance mutex, and never more than one of each. No code path
// holds two shard mutexes or two instance mutexes at once, so the
// striping cannot deadlock.

// instShardCount stripes every per-instance table. 32 shards keep the
// collision probability negligible for realistic in-flight counts while
// costing ~1.5 KiB per coordinator; must be a power of two.
const instShardCount = 32

// instShardIdx hashes an instance ID onto its stripe (FNV-1a, masked).
// Instance IDs are short ("i421"), so the byte loop beats importing
// hash/fnv and its interface indirection.
func instShardIdx(id string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return h & (instShardCount - 1)
}

// tableShard is one stripe: a map plus, for capped tables, the
// insertion order used for FIFO eviction.
type tableShard[V any] struct {
	mu    sync.Mutex // lockorder:shard — level 1, acquired before any instance mutex
	m     map[string]V
	order []string
}

// shardedTable is a string-keyed map striped across instShardCount
// mutexes. The zero value is ready to use. count tracks the total
// population across shards (maintained by getOrCreate's create/evict
// only — the capped-table path); insert/remove users don't need it.
type shardedTable[V any] struct {
	shards [instShardCount]tableShard[V]
	count  atomic.Int64
}

// get returns the value for id, if present.
func (t *shardedTable[V]) get(id string) (V, bool) {
	s := &t.shards[instShardIdx(id)]
	s.mu.Lock()
	v, ok := s.m[id]
	s.mu.Unlock()
	return v, ok
}

// insert adds id→v and reports whether it was absent; an existing entry
// is left untouched (the caller's duplicate-ID check).
func (t *shardedTable[V]) insert(id string, v V) bool {
	s := &t.shards[instShardIdx(id)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.m[id]; dup {
		return false
	}
	if s.m == nil {
		s.m = map[string]V{}
	}
	s.m[id] = v
	return true
}

// take removes and returns the value for id in one critical section, so
// two racing takers can never both claim it (Central's reply routing
// relies on this: a duplicate TypeResult must find nothing).
func (t *shardedTable[V]) take(id string) (V, bool) {
	s := &t.shards[instShardIdx(id)]
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[id]
	if ok {
		delete(s.m, id)
	}
	return v, ok
}

// remove deletes id (a no-op when absent).
func (t *shardedTable[V]) remove(id string) {
	s := &t.shards[instShardIdx(id)]
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

// forEach calls fn on every live entry, one shard at a time. fn runs
// under the shard mutex: it must stay short, must not touch the table,
// and may take at most the entry's own instance mutex (shard before
// instance is the documented lock order).
func (t *shardedTable[V]) forEach(fn func(id string, v V)) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for id, v := range s.m {
			fn(id, v)
		}
		s.mu.Unlock()
	}
}

// getOrCreate returns the value for id, building it with mk on first
// use. max bounds the TOTAL population across all shards (the atomic
// count): while it is exceeded, the oldest entry of the new entry's
// shard is evicted (FIFO). Gating eviction on the global count — not
// the shard's — means a small cap with few live instances never evicts
// one of them just because two IDs hashed to the same shard; only when
// the table as a whole is over budget does the valve open, matching
// the pre-striping single map. Eviction is a safety valve against
// leaked bookkeeping, not a precise LRU (it takes the current shard's
// oldest, not the global oldest); an evicted instance that is still
// executing keeps running on its own pointer and simply loses late
// notifications.
func (t *shardedTable[V]) getOrCreate(id string, max int, mk func() V) V {
	s := &t.shards[instShardIdx(id)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.m[id]; ok {
		return v
	}
	if s.m == nil {
		s.m = map[string]V{}
	}
	v := mk()
	s.m[id] = v
	s.order = append(s.order, id)
	if max > 0 && t.count.Add(1) > int64(max) && len(s.order) > 1 {
		evict := s.order[0]
		s.order = s.order[1:]
		delete(s.m, evict)
		t.count.Add(-1)
	}
	return v
}
