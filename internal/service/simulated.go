package service

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// SimulatedOptions configure a Simulated provider's performance and
// failure envelope. The paper's demo ran against live toy services; the
// reproduction substitutes deterministic simulated ones so experiments
// are scriptable (see DESIGN.md, substitution table).
type SimulatedOptions struct {
	// BaseLatency is the minimum service time per invocation.
	BaseLatency time.Duration
	// Jitter adds a uniformly random extra in [0, Jitter).
	Jitter time.Duration
	// FailRate in [0,1) makes that fraction of invocations return an
	// error (after the latency has elapsed, like a real timeout/fault).
	FailRate float64
	// Seed drives jitter and failures reproducibly. Zero uses a fixed
	// default.
	Seed int64
	// MaxConcurrent caps in-flight invocations: callers beyond the cap
	// queue (FIFO-ish, via a semaphore) until a slot frees. Zero means
	// unlimited. This models a real provider's capacity — a thread pool,
	// a connection limit — and is what makes per-replica throughput
	// finite in the scale-out experiments: one replica saturates at
	// MaxConcurrent/BaseLatency invocations per second, N replicas at N
	// times that.
	MaxConcurrent int
}

// Simulated is a configurable in-process elementary service.
type Simulated struct {
	name string
	opts SimulatedOptions
	sem  chan struct{} // nil when MaxConcurrent == 0

	mu       sync.Mutex
	ops      map[string]Func
	rng      *rand.Rand
	invoked  int64
	failures int64
	inflight int64
	down     bool
}

// NewSimulated returns a provider with no operations; add them with
// Handle.
func NewSimulated(name string, opts SimulatedOptions) *Simulated {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	s := &Simulated{
		name: name,
		opts: opts,
		ops:  map[string]Func{},
		rng:  rand.New(rand.NewSource(seed)),
	}
	if opts.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, opts.MaxConcurrent)
	}
	return s
}

// Handle registers fn as the implementation of operation op and returns
// the provider for chaining.
func (s *Simulated) Handle(op string, fn Func) *Simulated {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops[op] = fn
	return s
}

// Echo registers an operation that copies its inputs to its outputs,
// useful for wiring tests.
func (s *Simulated) Echo(op string) *Simulated {
	return s.Handle(op, func(_ context.Context, params map[string]string) (map[string]string, error) {
		out := make(map[string]string, len(params))
		for k, v := range params {
			out[k] = v
		}
		return out, nil
	})
}

// Name implements Provider.
func (s *Simulated) Name() string { return s.name }

// Operations implements Provider.
func (s *Simulated) Operations() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ops := make([]string, 0, len(s.ops))
	for op := range s.ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return ops
}

// SetDown flips the provider's kill switch: while down, every Invoke
// and Probe fails fast with ErrProviderDown (no latency is simulated —
// a dead process doesn't sleep). This is the chaos lever availability
// experiments use to model provider death and recovery mid-composite.
func (s *Simulated) SetDown(down bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.down = down
}

// Down reports whether the kill switch is set.
func (s *Simulated) Down() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down
}

// Probe implements the health-check probe contract (see community
// package's Prober): it succeeds instantly unless the provider is down.
func (s *Simulated) Probe(context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return fmt.Errorf("service %s: %w", s.name, ErrProviderDown)
	}
	return nil
}

// Invoke implements Provider: it sleeps for the configured service time,
// then either fails (per FailRate) or runs the operation handler.
func (s *Simulated) Invoke(ctx context.Context, req Request) (Response, error) {
	s.mu.Lock()
	if s.down {
		s.invoked++
		s.failures++
		s.mu.Unlock()
		return Response{}, fmt.Errorf("service %s.%s: %w", s.name, req.Operation, ErrProviderDown)
	}
	fn, ok := s.ops[req.Operation]
	var extra time.Duration
	if s.opts.Jitter > 0 {
		extra = time.Duration(s.rng.Int63n(int64(s.opts.Jitter)))
	}
	fail := s.opts.FailRate > 0 && s.rng.Float64() < s.opts.FailRate
	s.invoked++
	s.inflight++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.inflight--
		s.mu.Unlock()
	}()

	if !ok {
		return Response{}, fmt.Errorf("%w: %s.%s", ErrUnknownOperation, s.name, req.Operation)
	}
	if s.sem != nil {
		// Capacity gate BEFORE the service time: a saturated provider
		// queues new work rather than serving everything concurrently.
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-ctx.Done():
			return Response{}, fmt.Errorf("service %s.%s: %w", s.name, req.Operation, ctx.Err())
		}
	}
	if d := s.opts.BaseLatency + extra; d > 0 {
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return Response{}, fmt.Errorf("service %s.%s: %w", s.name, req.Operation, ctx.Err())
		}
	}
	if fail {
		s.mu.Lock()
		s.failures++
		s.mu.Unlock()
		return Response{}, fmt.Errorf("service %s.%s: simulated fault", s.name, req.Operation)
	}
	out, err := fn(ctx, req.Params)
	if err != nil {
		s.mu.Lock()
		s.failures++
		s.mu.Unlock()
		return Response{}, fmt.Errorf("service %s.%s: %w", s.name, req.Operation, err)
	}
	return Response{Outputs: out}, nil
}

// Counters reports lifetime invocation/failure counts and the number of
// in-flight invocations (the provider's instantaneous load).
func (s *Simulated) Counters() (invoked, failures, inflight int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.invoked, s.failures, s.inflight
}
