package service

import (
	"context"
	"fmt"
	"strconv"
)

// This file provides the five component services of the paper's travel
// scenario (Fig 2). They are deterministic simulations: outputs are
// derived from inputs, so end-to-end tests can assert exact results.
//
// The attraction-distance model: AttractionsSearch reports the distance
// (km) between the major attraction and the city centre; destinations are
// assigned fixed distances so tests can force the near/far branches.

// DomesticCities are the destinations the DomesticFlightBooking service
// can reach; the travel scenario's domestic(dest) guard checks membership.
var DomesticCities = []string{"sydney", "melbourne", "brisbane", "perth", "adelaide"}

// IsDomesticCity reports whether dest is served domestically.
func IsDomesticCity(dest string) bool {
	for _, c := range DomesticCities {
		if c == dest {
			return true
		}
	}
	return false
}

// attractionTable maps destinations to (attraction, distance-km). Unknown
// destinations get a default far-away attraction, exercising car rental.
var attractionTable = map[string]struct {
	name string
	km   float64
}{
	"sydney":    {"Opera House", 2},
	"melbourne": {"Great Ocean Road", 180},
	"brisbane":  {"Australia Zoo", 70},
	"perth":     {"Rottnest Island", 30},
	"adelaide":  {"Barossa Valley", 60},
	"tokyo":     {"Mount Fuji", 100},
	"paris":     {"Louvre", 3},
	"auckland":  {"Hobbiton", 160},
}

// NewDomesticFlightBooking returns the DFB elementary service.
func NewDomesticFlightBooking(opts SimulatedOptions) *Simulated {
	s := NewSimulated("DomesticFlightBooking", opts)
	s.Handle("book", func(_ context.Context, p map[string]string) (map[string]string, error) {
		dest := p["dest"]
		if dest == "" {
			return nil, fmt.Errorf("missing dest")
		}
		if !IsDomesticCity(dest) {
			return nil, fmt.Errorf("no domestic route to %q", dest)
		}
		return map[string]string{
			"ref": fmt.Sprintf("QF-%s-%s", short(p["customer"]), short(dest)),
		}, nil
	})
	return s
}

// NewInternationalTravel returns the ITA elementary service, which books
// an international flight and bundles travel insurance.
func NewInternationalTravel(opts SimulatedOptions) *Simulated {
	s := NewSimulated("InternationalTravel", opts)
	s.Handle("arrange", func(_ context.Context, p map[string]string) (map[string]string, error) {
		dest := p["dest"]
		if dest == "" {
			return nil, fmt.Errorf("missing dest")
		}
		return map[string]string{
			"ref":       fmt.Sprintf("INT-%s-%s", short(p["customer"]), short(dest)),
			"insurance": fmt.Sprintf("INS-%s", short(p["customer"])),
		}, nil
	})
	return s
}

// NewAttractionsSearch returns the AS elementary service.
func NewAttractionsSearch(opts SimulatedOptions) *Simulated {
	s := NewSimulated("AttractionsSearch", opts)
	s.Handle("search", func(_ context.Context, p map[string]string) (map[string]string, error) {
		dest := p["dest"]
		a, ok := attractionTable[dest]
		if !ok {
			a.name, a.km = "Remote Wonder", 120
		}
		return map[string]string{
			"top":      a.name,
			"distance": strconv.FormatFloat(a.km, 'g', -1, 64),
		}, nil
	})
	return s
}

// NewAccommodationBooking returns one accommodation provider. Several of
// these, under different hotel names, form the AccommodationBooking
// community in the demo. The provider name is the hotel brand; the
// community routes "AccommodationBooking" requests to one of them.
func NewAccommodationBooking(brand string, opts SimulatedOptions) *Simulated {
	s := NewSimulated(brand, opts)
	s.Handle("book", func(_ context.Context, p map[string]string) (map[string]string, error) {
		dest := p["dest"]
		if dest == "" {
			return nil, fmt.Errorf("missing dest")
		}
		return map[string]string{
			"addr": fmt.Sprintf("%s %s", brand, dest),
		}, nil
	})
	return s
}

// NewCarRental returns the CR elementary service.
func NewCarRental(opts SimulatedOptions) *Simulated {
	s := NewSimulated("CarRental", opts)
	s.Handle("rent", func(_ context.Context, p map[string]string) (map[string]string, error) {
		if p["addr"] == "" {
			return nil, fmt.Errorf("missing addr (pickup location)")
		}
		return map[string]string{
			"car": fmt.Sprintf("CAR-%s", short(p["customer"])),
		}, nil
	})
	return s
}

// short returns a compact uppercase token derived from s for reference
// strings.
func short(s string) string {
	if s == "" {
		return "X"
	}
	if len(s) > 3 {
		s = s[:3]
	}
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		out[i] = c
	}
	return string(out)
}
