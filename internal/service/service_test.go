package service

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Lookup("ghost"); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("Lookup(ghost) = %v", err)
	}
	a := NewSimulated("A", SimulatedOptions{}).Echo("op")
	b := NewSimulated("B", SimulatedOptions{}).Echo("op")
	r.Register(a)
	r.Register(b)
	if got := r.Names(); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Fatalf("Names = %v", got)
	}
	p, err := r.Lookup("A")
	if err != nil || p.Name() != "A" {
		t.Fatalf("Lookup(A) = %v, %v", p, err)
	}
	resp, err := r.Invoke(context.Background(), Request{Service: "B", Operation: "op", Params: map[string]string{"k": "v"}})
	if err != nil || resp.Outputs["k"] != "v" {
		t.Fatalf("Invoke = %v, %v", resp, err)
	}
	r.Unregister("A")
	if _, err := r.Lookup("A"); err == nil {
		t.Fatal("Unregister did not remove A")
	}
	// Re-registering replaces.
	a2 := NewSimulated("B", SimulatedOptions{}).Handle("op", func(context.Context, map[string]string) (map[string]string, error) {
		return map[string]string{"v": "2"}, nil
	})
	r.Register(a2)
	resp, err = r.Invoke(context.Background(), Request{Service: "B", Operation: "op"})
	if err != nil || resp.Outputs["v"] != "2" {
		t.Fatalf("replaced Invoke = %v, %v", resp, err)
	}
}

func TestSimulatedUnknownOperation(t *testing.T) {
	s := NewSimulated("S", SimulatedOptions{})
	_, err := s.Invoke(context.Background(), Request{Operation: "nope"})
	if !errors.Is(err, ErrUnknownOperation) {
		t.Fatalf("err = %v", err)
	}
}

func TestSimulatedLatency(t *testing.T) {
	s := NewSimulated("S", SimulatedOptions{BaseLatency: 20 * time.Millisecond}).Echo("op")
	start := time.Now()
	if _, err := s.Invoke(context.Background(), Request{Operation: "op"}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 18*time.Millisecond {
		t.Fatalf("returned after %v, want >= 20ms", d)
	}
}

func TestSimulatedContextCancel(t *testing.T) {
	s := NewSimulated("S", SimulatedOptions{BaseLatency: time.Minute}).Echo("op")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Invoke(ctx, Request{Operation: "op"})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not interrupt the sleep")
	}
}

func TestSimulatedFailRate(t *testing.T) {
	s := NewSimulated("S", SimulatedOptions{FailRate: 0.5, Seed: 7}).Echo("op")
	fails := 0
	const n = 400
	for i := 0; i < n; i++ {
		if _, err := s.Invoke(context.Background(), Request{Operation: "op"}); err != nil {
			fails++
		}
	}
	if fails < n/4 || fails > 3*n/4 {
		t.Fatalf("fails = %d of %d at 50%% rate", fails, n)
	}
	invoked, failures, inflight := s.Counters()
	if invoked != n || failures != int64(fails) || inflight != 0 {
		t.Fatalf("counters = %d %d %d", invoked, failures, inflight)
	}
}

func TestSimulatedHandlerError(t *testing.T) {
	s := NewSimulated("S", SimulatedOptions{}).Handle("op", func(context.Context, map[string]string) (map[string]string, error) {
		return nil, fmt.Errorf("domain failure")
	})
	_, err := s.Invoke(context.Background(), Request{Operation: "op"})
	if err == nil || !strings.Contains(err.Error(), "domain failure") {
		t.Fatalf("err = %v", err)
	}
	_, failures, _ := s.Counters()
	if failures != 1 {
		t.Fatalf("failures = %d", failures)
	}
}

func TestSimulatedConcurrentInvocations(t *testing.T) {
	s := NewSimulated("S", SimulatedOptions{Jitter: time.Millisecond}).Echo("op")
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Invoke(context.Background(), Request{
				Operation: "op",
				Params:    map[string]string{"i": fmt.Sprint(i)},
			})
			if err != nil || resp.Outputs["i"] != fmt.Sprint(i) {
				t.Errorf("invocation %d: %v %v", i, resp, err)
			}
		}(i)
	}
	wg.Wait()
	invoked, failures, inflight := s.Counters()
	if invoked != 50 || failures != 0 || inflight != 0 {
		t.Fatalf("counters = %d %d %d", invoked, failures, inflight)
	}
}

func TestOperationsSorted(t *testing.T) {
	s := NewSimulated("S", SimulatedOptions{}).Echo("zeta").Echo("alpha").Echo("mid")
	if got := s.Operations(); !reflect.DeepEqual(got, []string{"alpha", "mid", "zeta"}) {
		t.Fatalf("Operations = %v", got)
	}
}

func TestTravelServices(t *testing.T) {
	ctx := context.Background()

	t.Run("domestic flight", func(t *testing.T) {
		dfb := NewDomesticFlightBooking(SimulatedOptions{})
		resp, err := dfb.Invoke(ctx, Request{Operation: "book", Params: map[string]string{
			"customer": "alice", "dest": "sydney",
		}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Outputs["ref"] != "QF-ALI-SYD" {
			t.Fatalf("ref = %q", resp.Outputs["ref"])
		}
		if _, err := dfb.Invoke(ctx, Request{Operation: "book", Params: map[string]string{
			"customer": "alice", "dest": "tokyo",
		}}); err == nil {
			t.Fatal("booked a domestic flight to tokyo")
		}
		if _, err := dfb.Invoke(ctx, Request{Operation: "book"}); err == nil {
			t.Fatal("booked with no destination")
		}
	})

	t.Run("international", func(t *testing.T) {
		ita := NewInternationalTravel(SimulatedOptions{})
		resp, err := ita.Invoke(ctx, Request{Operation: "arrange", Params: map[string]string{
			"customer": "bob", "dest": "tokyo",
		}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Outputs["ref"] != "INT-BOB-TOK" || resp.Outputs["insurance"] != "INS-BOB" {
			t.Fatalf("outputs = %v", resp.Outputs)
		}
	})

	t.Run("attractions near and far", func(t *testing.T) {
		as := NewAttractionsSearch(SimulatedOptions{})
		near, err := as.Invoke(ctx, Request{Operation: "search", Params: map[string]string{"dest": "sydney"}})
		if err != nil {
			t.Fatal(err)
		}
		if near.Outputs["top"] != "Opera House" || near.Outputs["distance"] != "2" {
			t.Fatalf("sydney = %v", near.Outputs)
		}
		far, err := as.Invoke(ctx, Request{Operation: "search", Params: map[string]string{"dest": "melbourne"}})
		if err != nil {
			t.Fatal(err)
		}
		if far.Outputs["distance"] != "180" {
			t.Fatalf("melbourne = %v", far.Outputs)
		}
		unknown, err := as.Invoke(ctx, Request{Operation: "search", Params: map[string]string{"dest": "atlantis"}})
		if err != nil {
			t.Fatal(err)
		}
		if unknown.Outputs["top"] != "Remote Wonder" {
			t.Fatalf("unknown = %v", unknown.Outputs)
		}
	})

	t.Run("accommodation brand", func(t *testing.T) {
		ab := NewAccommodationBooking("GrandHotel", SimulatedOptions{})
		resp, err := ab.Invoke(ctx, Request{Operation: "book", Params: map[string]string{
			"customer": "alice", "dest": "sydney",
		}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Outputs["addr"] != "GrandHotel sydney" {
			t.Fatalf("addr = %q", resp.Outputs["addr"])
		}
	})

	t.Run("car rental", func(t *testing.T) {
		cr := NewCarRental(SimulatedOptions{})
		resp, err := cr.Invoke(ctx, Request{Operation: "rent", Params: map[string]string{
			"customer": "alice", "addr": "GrandHotel sydney",
		}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Outputs["car"] != "CAR-ALI" {
			t.Fatalf("car = %q", resp.Outputs["car"])
		}
		if _, err := cr.Invoke(ctx, Request{Operation: "rent"}); err == nil {
			t.Fatal("rented with no pickup address")
		}
	})
}

func TestIsDomesticCity(t *testing.T) {
	if !IsDomesticCity("sydney") || IsDomesticCity("tokyo") || IsDomesticCity("") {
		t.Fatal("IsDomesticCity wrong")
	}
}

func BenchmarkSimulatedInvoke(b *testing.B) {
	s := NewSimulated("S", SimulatedOptions{}).Echo("op")
	req := Request{Operation: "op", Params: map[string]string{"a": "1"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Invoke(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}
