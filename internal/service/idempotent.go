package service

import (
	"container/list"
	"context"
	"sync"
)

// DefaultIdempotencyCapacity bounds the completed-response cache of an
// Idempotent wrapper when the caller passes capacity <= 0.
const DefaultIdempotencyCapacity = 1024

// Idempotent decorates a Provider with at-most-once execution per
// IdempotencyKey: the retry half of the failover contract. When a
// delegated invocation times out, the caller cannot know whether the
// provider executed it — retrying blindly risks a duplicate booking.
// Failover retries therefore carry the SAME IdempotencyKey, and this
// wrapper turns the retry into either (a) joining the still-in-flight
// first attempt (singleflight), or (b) replaying the cached response of
// a completed attempt, instead of a second execution.
//
// Semantics per Invoke:
//   - Empty IdempotencyKey: pass through untouched (no dedup).
//   - Key seen, attempt in flight: block until it finishes, share its
//     result (the duplicate never reaches the inner provider).
//   - Key seen, attempt SUCCEEDED: replay the cached Response.
//   - Key seen, attempt FAILED: the key is forgotten — a retry after a
//     real failure must re-execute, only duplicates of successes are
//     suppressed.
//
// Successful responses are kept in an LRU cache of bounded capacity;
// eviction of a key re-opens it (an extremely late retry may then
// re-execute — at-most-once holds within the cache horizon, which the
// retry budget's bounded backoff keeps far shorter than).
type Idempotent struct {
	inner    Provider
	capacity int

	mu       sync.Mutex
	inflight map[string]*call
	done     map[string]*list.Element // key -> entry in lru
	lru      *list.List               // front = most recent; holds *entry
	hits     int64
}

type call struct {
	wg   sync.WaitGroup
	resp Response
	err  error
}

type entry struct {
	key  string
	resp Response
}

// NewIdempotent wraps inner with IdempotencyKey-based dedup. capacity
// bounds the completed-response cache (<= 0 means
// DefaultIdempotencyCapacity).
func NewIdempotent(inner Provider, capacity int) *Idempotent {
	if capacity <= 0 {
		capacity = DefaultIdempotencyCapacity
	}
	return &Idempotent{
		inner:    inner,
		capacity: capacity,
		inflight: map[string]*call{},
		done:     map[string]*list.Element{},
		lru:      list.New(),
	}
}

// Name implements Provider.
func (i *Idempotent) Name() string { return i.inner.Name() }

// Operations implements Provider.
func (i *Idempotent) Operations() []string { return i.inner.Operations() }

// Unwrap returns the decorated provider.
func (i *Idempotent) Unwrap() Provider { return i.inner }

// Hits reports how many invocations were answered without reaching the
// inner provider (joined an in-flight attempt or replayed a cached
// response) — the number of duplicate executions prevented.
func (i *Idempotent) Hits() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.hits
}

// Prime seeds the completed-response cache with a key whose successful
// outcome is already known — the crash-recovery path: replayed journal
// records carry the (key, response) pairs of invocations that completed
// before the crash, and priming them means a re-fired round replays the
// response instead of executing the provider a second time. A key that
// is already cached or in flight is left untouched.
func (i *Idempotent) Prime(key string, resp Response) {
	if key == "" {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if _, ok := i.done[key]; ok {
		return
	}
	if _, ok := i.inflight[key]; ok {
		return
	}
	i.done[key] = i.lru.PushFront(&entry{key: key, resp: resp})
	for i.lru.Len() > i.capacity {
		oldest := i.lru.Back()
		i.lru.Remove(oldest)
		delete(i.done, oldest.Value.(*entry).key)
	}
}

// Invoke implements Provider with the dedup semantics documented on the
// type.
func (i *Idempotent) Invoke(ctx context.Context, req Request) (Response, error) {
	key := req.IdempotencyKey
	if key == "" {
		return i.inner.Invoke(ctx, req)
	}

	i.mu.Lock()
	if el, ok := i.done[key]; ok {
		i.lru.MoveToFront(el)
		i.hits++
		resp := el.Value.(*entry).resp
		i.mu.Unlock()
		return resp, nil
	}
	if c, ok := i.inflight[key]; ok {
		i.hits++
		i.mu.Unlock()
		c.wg.Wait() // share the first attempt's outcome
		return c.resp, c.err
	}
	c := &call{}
	c.wg.Add(1)
	i.inflight[key] = c
	i.mu.Unlock()

	c.resp, c.err = i.inner.Invoke(ctx, req)

	i.mu.Lock()
	delete(i.inflight, key)
	if c.err == nil {
		i.done[key] = i.lru.PushFront(&entry{key: key, resp: c.resp})
		for i.lru.Len() > i.capacity {
			oldest := i.lru.Back()
			i.lru.Remove(oldest)
			delete(i.done, oldest.Value.(*entry).key)
		}
	}
	i.mu.Unlock()
	c.wg.Done()
	return c.resp, c.err
}
