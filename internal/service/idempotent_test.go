package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
)

// countingProvider executes for real every time it is reached, so tests
// can count actual executions behind the dedup layer.
type countingProvider struct {
	executions atomic.Int64
	fail       atomic.Bool
	release    chan struct{} // when non-nil, Invoke blocks until closed
}

func (p *countingProvider) Name() string         { return "counting" }
func (p *countingProvider) Operations() []string { return []string{"op"} }

func (p *countingProvider) Invoke(_ context.Context, req Request) (Response, error) {
	n := p.executions.Add(1)
	if p.release != nil {
		<-p.release
	}
	if p.fail.Load() {
		return Response{}, errors.New("boom")
	}
	return Response{Outputs: map[string]string{"n": strconv.FormatInt(n, 10), "key": req.IdempotencyKey}}, nil
}

func TestIdempotentReplaysCompletedSuccess(t *testing.T) {
	p := &countingProvider{}
	w := NewIdempotent(p, 8)
	req := Request{Operation: "op", IdempotencyKey: "k1"}

	first, err := w.Invoke(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := w.Invoke(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if p.executions.Load() != 1 {
		t.Fatalf("executions = %d, want 1 (retry must not re-execute)", p.executions.Load())
	}
	if first.Outputs["n"] != second.Outputs["n"] {
		t.Fatalf("retry got a different response: %v vs %v", first.Outputs, second.Outputs)
	}
	if w.Hits() != 1 {
		t.Fatalf("Hits = %d, want 1", w.Hits())
	}
}

func TestIdempotentDistinctKeysExecuteSeparately(t *testing.T) {
	p := &countingProvider{}
	w := NewIdempotent(p, 8)
	for i := 0; i < 3; i++ {
		if _, err := w.Invoke(context.Background(), Request{Operation: "op", IdempotencyKey: fmt.Sprintf("k%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if p.executions.Load() != 3 {
		t.Fatalf("executions = %d, want 3", p.executions.Load())
	}
}

func TestIdempotentEmptyKeyPassesThrough(t *testing.T) {
	p := &countingProvider{}
	w := NewIdempotent(p, 8)
	for i := 0; i < 3; i++ {
		if _, err := w.Invoke(context.Background(), Request{Operation: "op"}); err != nil {
			t.Fatal(err)
		}
	}
	if p.executions.Load() != 3 {
		t.Fatalf("executions = %d, want 3 (no key, no dedup)", p.executions.Load())
	}
	if w.Hits() != 0 {
		t.Fatalf("Hits = %d, want 0", w.Hits())
	}
}

func TestIdempotentFailureForgetsKey(t *testing.T) {
	p := &countingProvider{}
	p.fail.Store(true)
	w := NewIdempotent(p, 8)
	req := Request{Operation: "op", IdempotencyKey: "k"}

	if _, err := w.Invoke(context.Background(), req); err == nil {
		t.Fatal("expected failure")
	}
	// The provider recovers; a retry with the same key must re-execute
	// (only successes are deduplicated).
	p.fail.Store(false)
	if _, err := w.Invoke(context.Background(), req); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if p.executions.Load() != 2 {
		t.Fatalf("executions = %d, want 2", p.executions.Load())
	}
}

func TestIdempotentConcurrentDuplicatesShareOneExecution(t *testing.T) {
	p := &countingProvider{release: make(chan struct{})}
	w := NewIdempotent(p, 8)
	req := Request{Operation: "op", IdempotencyKey: "k"}

	const dupes = 8
	var wg sync.WaitGroup
	results := make([]Response, dupes)
	errs := make([]error, dupes)
	for g := 0; g < dupes; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = w.Invoke(context.Background(), req)
		}(g)
	}
	// Let the leader start, then release it; every duplicate must have
	// joined it rather than executed.
	for p.executions.Load() == 0 {
		runtime.Gosched()
	}
	close(p.release)
	wg.Wait()

	if p.executions.Load() != 1 {
		t.Fatalf("executions = %d, want 1 (singleflight)", p.executions.Load())
	}
	for g := 0; g < dupes; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if results[g].Outputs["n"] != "1" {
			t.Fatalf("goroutine %d got response %v", g, results[g].Outputs)
		}
	}
	if w.Hits() != dupes-1 {
		t.Fatalf("Hits = %d, want %d", w.Hits(), dupes-1)
	}
}

func TestIdempotentLRUEviction(t *testing.T) {
	p := &countingProvider{}
	w := NewIdempotent(p, 2)
	for _, k := range []string{"a", "b", "c"} { // "a" evicted by "c"
		if _, err := w.Invoke(context.Background(), Request{Operation: "op", IdempotencyKey: k}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Invoke(context.Background(), Request{Operation: "op", IdempotencyKey: "b"}); err != nil {
		t.Fatal(err)
	}
	if p.executions.Load() != 3 {
		t.Fatalf("executions = %d: cached key %q re-executed", p.executions.Load(), "b")
	}
	// "a" aged out of the bounded cache, so it re-executes.
	if _, err := w.Invoke(context.Background(), Request{Operation: "op", IdempotencyKey: "a"}); err != nil {
		t.Fatal(err)
	}
	if p.executions.Load() != 4 {
		t.Fatalf("executions = %d, want 4 after eviction", p.executions.Load())
	}
}

func TestIdempotentPreservesIdentity(t *testing.T) {
	p := &countingProvider{}
	w := NewIdempotent(p, 8)
	if w.Name() != "counting" {
		t.Fatalf("Name = %q", w.Name())
	}
	if ops := w.Operations(); len(ops) != 1 || ops[0] != "op" {
		t.Fatalf("Operations = %v", ops)
	}
	if w.Unwrap() != Provider(p) {
		t.Fatal("Unwrap did not return the inner provider")
	}
}

func TestSimulatedSetDown(t *testing.T) {
	s := NewSimulated("hotel", SimulatedOptions{}).Echo("book")
	if err := s.Probe(context.Background()); err != nil {
		t.Fatalf("probe of healthy provider: %v", err)
	}
	s.SetDown(true)
	if !s.Down() {
		t.Fatal("Down = false after SetDown(true)")
	}
	if _, err := s.Invoke(context.Background(), Request{Operation: "book"}); !errors.Is(err, ErrProviderDown) {
		t.Fatalf("invoke of dead provider = %v, want ErrProviderDown", err)
	}
	if err := s.Probe(context.Background()); !errors.Is(err, ErrProviderDown) {
		t.Fatalf("probe of dead provider = %v, want ErrProviderDown", err)
	}
	invoked, failures, _ := s.Counters()
	if invoked != 1 || failures != 1 {
		t.Fatalf("counters = %d/%d, want the dead invoke counted", invoked, failures)
	}
	s.SetDown(false)
	if _, err := s.Invoke(context.Background(), Request{Operation: "book"}); err != nil {
		t.Fatalf("invoke after recovery: %v", err)
	}
}
