// Package service defines the component-service abstraction of SELF-SERV:
// an elementary service is "an individual Web-accessible application";
// this package provides the Provider interface every invokable thing
// implements (simulated elementary services, service communities, and
// remote SOAP-bound services alike), a thread-safe registry, and a
// configurable simulated provider used to stand in for the paper's real
// airline/hotel/attraction services.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Request asks a provider to execute one operation.
type Request struct {
	// Service is the provider name the caller believes it is invoking
	// (informational; providers may serve several aliases).
	Service string
	// Operation is the operation name.
	Operation string
	// Params carries the text-encoded input parameters. It may be NIL
	// when the operation binds no inputs, and providers must treat it
	// as read-only either way (build outputs in a fresh map): the
	// engine hands out the same map it keeps binding state in, and
	// skips allocating one entirely for binding-less operations.
	Params map[string]string
	// Tenant tags the request with the calling tenant for per-tenant
	// traffic controls (rate limits, load shedding; see package limits).
	// Empty means anonymous. Providers treat it as read-only metadata;
	// it never participates in operation semantics.
	Tenant string
	// IdempotencyKey uniquely identifies the LOGICAL invocation this
	// request belongs to, across retries: a failover retry of the same
	// composite firing carries the same key, so dedup layers (see
	// NewIdempotent, community delegation) can recognize and suppress a
	// duplicate execution. Empty disables deduplication for the request.
	IdempotencyKey string
}

// Response carries an operation's outputs.
type Response struct {
	// Outputs maps output parameter names to text-encoded values.
	Outputs map[string]string
}

// Provider executes operations. Implementations must be safe for
// concurrent use.
type Provider interface {
	// Name returns the provider's registered name.
	Name() string
	// Operations lists the operation names the provider accepts, sorted.
	Operations() []string
	// Invoke executes one operation.
	Invoke(ctx context.Context, req Request) (Response, error)
}

// ErrUnknownOperation reports an Invoke with an operation the provider
// does not implement.
var ErrUnknownOperation = errors.New("service: unknown operation")

// ErrUnknownService reports a registry lookup miss.
var ErrUnknownService = errors.New("service: unknown service")

// ErrProviderDown reports an invocation or probe against a provider whose
// process is (simulated as) dead; see Simulated.SetDown.
var ErrProviderDown = errors.New("service: provider down")

// Registry is a thread-safe name -> Provider directory, the in-process
// equivalent of the paper's "pool of services".
type Registry struct {
	mu        sync.RWMutex
	providers map[string]Provider
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{providers: map[string]Provider{}}
}

// Register adds p under its name. Re-registering a name replaces the
// previous provider (services upgrade in place).
func (r *Registry) Register(p Provider) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.providers[p.Name()] = p
}

// Unregister removes the named provider (no-op when absent).
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.providers, name)
}

// Lookup resolves a provider by name.
func (r *Registry) Lookup(name string) (Provider, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.providers[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownService, name)
	}
	return p, nil
}

// Names returns all registered provider names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.providers))
	for n := range r.providers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Invoke is a convenience that resolves req.Service and invokes it.
func (r *Registry) Invoke(ctx context.Context, req Request) (Response, error) {
	p, err := r.Lookup(req.Service)
	if err != nil {
		return Response{}, err
	}
	return p.Invoke(ctx, req)
}

// Func adapts a plain function to an operation implementation.
type Func func(ctx context.Context, params map[string]string) (map[string]string, error)
