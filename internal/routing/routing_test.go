package routing

import (
	"reflect"
	"strings"
	"testing"

	"selfserv/internal/message"
	"selfserv/internal/statechart"
	"selfserv/internal/workload"
)

func mustGenerate(t *testing.T, sc *statechart.Statechart) *Plan {
	t.Helper()
	p, err := Generate(sc)
	if err != nil {
		t.Fatalf("Generate(%s): %v", sc.Name, err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("plan.Validate(%s): %v\n%s", sc.Name, err, p)
	}
	return p
}

func hasClause(cs []Clause, want ...string) bool {
	return findClause(cs, want...) != nil
}

func findClause(cs []Clause, want ...string) *Clause {
	for i, c := range cs {
		if len(c.Sources) != len(want) {
			continue
		}
		match := true
		for j := range c.Sources {
			if c.Sources[j] != want[j] {
				match = false
				break
			}
		}
		if match {
			return &cs[i]
		}
	}
	return nil
}

func targetsTo(ts []Target, to string) []Target {
	var out []Target
	for _, t := range ts {
		if t.To == to {
			out = append(out, t)
		}
	}
	return out
}

func TestGenerateChain(t *testing.T) {
	p := mustGenerate(t, workload.Chain(3))
	if len(p.Tables) != 3 {
		t.Fatalf("tables = %d, want 3", len(p.Tables))
	}
	// Start enters s1 unconditionally.
	if len(p.Start) != 1 || p.Start[0].To != "s1" || p.Start[0].Condition != "" {
		t.Fatalf("Start = %+v", p.Start)
	}
	// s1 waits for the wrapper; s2 for s1; s3 for s2.
	if !hasClause(p.Tables["s1"].Preconditions, message.WrapperID) {
		t.Fatalf("s1 preconditions = %v", p.Tables["s1"].Preconditions)
	}
	if !hasClause(p.Tables["s2"].Preconditions, "s1") {
		t.Fatalf("s2 preconditions = %v", p.Tables["s2"].Preconditions)
	}
	if !hasClause(p.Tables["s3"].Preconditions, "s2") {
		t.Fatalf("s3 preconditions = %v", p.Tables["s3"].Preconditions)
	}
	// s3 notifies the wrapper; finish waits for s3 alone.
	if len(targetsTo(p.Tables["s3"].Postprocessings, message.WrapperID)) != 1 {
		t.Fatalf("s3 postprocessings = %+v", p.Tables["s3"].Postprocessings)
	}
	if !hasClause(p.Finish, "s3") {
		t.Fatalf("Finish = %v", p.Finish)
	}
	// Inner states never talk to the wrapper.
	if len(targetsTo(p.Tables["s1"].Postprocessings, message.WrapperID)) != 0 {
		t.Fatalf("s1 must not notify the wrapper: %+v", p.Tables["s1"].Postprocessings)
	}
}

func TestGenerateParallel(t *testing.T) {
	p := mustGenerate(t, workload.Parallel(3))
	// The wrapper starts all three branches.
	if len(p.Start) != 3 {
		t.Fatalf("Start = %+v", p.Start)
	}
	// Finish is one clause requiring all three.
	if len(p.Finish) != 1 {
		t.Fatalf("Finish = %v", p.Finish)
	}
	if !hasClause(p.Finish, "p1", "p2", "p3") {
		t.Fatalf("Finish = %v, want the 3-way AND clause", p.Finish)
	}
	// Every branch notifies the wrapper.
	for _, id := range []string{"p1", "p2", "p3"} {
		if len(targetsTo(p.Tables[id].Postprocessings, message.WrapperID)) != 1 {
			t.Fatalf("%s postprocessings = %+v", id, p.Tables[id].Postprocessings)
		}
	}
}

func TestGenerateTravel(t *testing.T) {
	p := mustGenerate(t, workload.Travel())

	// Start: the AND-state's entries = DFB|ITA (guarded), AS, AB.
	if len(p.Start) != 4 {
		t.Fatalf("Start = %+v", p.Start)
	}
	var dfbCond, itaCond string
	for _, s := range p.Start {
		switch s.To {
		case "DFB":
			dfbCond = s.Condition
		case "ITA":
			itaCond = s.Condition
		case "AS", "AB":
			if s.Condition != "" {
				t.Errorf("%s start condition = %q, want unconditional", s.To, s.Condition)
			}
		default:
			t.Errorf("unexpected start target %q", s.To)
		}
	}
	if !strings.Contains(dfbCond, "domestic(destination)") || strings.Contains(dfbCond, "not") {
		t.Errorf("DFB condition = %q", dfbCond)
	}
	if !strings.Contains(itaCond, "not") {
		t.Errorf("ITA condition = %q", itaCond)
	}

	// CR is the AND-join: it needs one clause per (flight-alternative x AS x AB).
	cr := p.Tables["CR"]
	if len(cr.Preconditions) != 2 {
		t.Fatalf("CR preconditions = %v, want 2 clauses (DFB and ITA alternatives)", cr.Preconditions)
	}
	if !hasClause(cr.Preconditions, "AB", "AS", "DFB") {
		t.Errorf("CR preconditions missing {AB,AS,DFB}: %v", cr.Preconditions)
	}
	if !hasClause(cr.Preconditions, "AB", "AS", "ITA") {
		t.Errorf("CR preconditions missing {AB,AS,ITA}: %v", cr.Preconditions)
	}

	// The near/far guard crosses regions, so it moves receiver-side: each
	// booking member notifies BOTH CR and the wrapper unconditionally, and
	// the guard sits on the receivers' clauses.
	for _, id := range []string{"DFB", "ITA", "AS", "AB"} {
		tbl := p.Tables[id]
		crTargets := targetsTo(tbl.Postprocessings, "CR")
		if len(crTargets) != 1 || crTargets[0].Condition != "" {
			t.Errorf("%s -> CR targets = %+v, want unconditional", id, crTargets)
		}
		wTargets := targetsTo(tbl.Postprocessings, message.WrapperID)
		if len(wTargets) != 1 || wTargets[0].Condition != "" {
			t.Errorf("%s -> wrapper targets = %+v, want unconditional", id, wTargets)
		}
	}
	for _, clause := range cr.Preconditions {
		if !strings.Contains(clause.Condition, "not near") {
			t.Errorf("CR clause %v condition = %q, want receiver-side 'not near' guard", clause.Sources, clause.Condition)
		}
	}

	// CR itself notifies the wrapper unconditionally.
	crW := targetsTo(cr.Postprocessings, message.WrapperID)
	if len(crW) != 1 || crW[0].Condition != "" {
		t.Fatalf("CR -> wrapper = %+v", crW)
	}

	// Finish: either CR alone (unconditioned), or the three parallel
	// branches guarded receiver-side by "near(...)", with both flight
	// alternatives -> 3 clauses total.
	if len(p.Finish) != 3 {
		t.Fatalf("Finish = %v, want 3 clauses", p.Finish)
	}
	if c := findClause(p.Finish, "CR"); c == nil || c.Condition != "" {
		t.Errorf("Finish {CR} = %+v", c)
	}
	for _, want := range [][]string{{"AB", "AS", "DFB"}, {"AB", "AS", "ITA"}} {
		c := findClause(p.Finish, want...)
		if c == nil || !strings.HasPrefix(c.Condition, "near") {
			t.Errorf("Finish clause %v = %+v, want near(...) guard", want, c)
		}
	}

	// Tables carry the service bindings so a coordinator needs nothing else.
	if cr.Service != "CarRental" || cr.Operation != "rent" || len(cr.Inputs) != 2 {
		t.Fatalf("CR table bindings = %+v", cr)
	}
}

func TestGenerateAlternativeJoin(t *testing.T) {
	// a -> (b|c) -> d: d must accept either source.
	root := &statechart.State{
		ID: "root", Kind: statechart.KindCompound,
		Children: []*statechart.State{
			{ID: "init", Kind: statechart.KindInitial},
			{ID: "a", Kind: statechart.KindBasic, Service: "A", Operation: "op"},
			{ID: "b", Kind: statechart.KindBasic, Service: "B", Operation: "op"},
			{ID: "c", Kind: statechart.KindBasic, Service: "C", Operation: "op"},
			{ID: "d", Kind: statechart.KindBasic, Service: "D", Operation: "op"},
			{ID: "end", Kind: statechart.KindFinal},
		},
		Transitions: []statechart.Transition{
			{From: "init", To: "a"},
			{From: "a", To: "b", Condition: "x > 0"},
			{From: "a", To: "c", Condition: "x <= 0"},
			{From: "b", To: "d"},
			{From: "c", To: "d"},
			{From: "d", To: "end"},
		},
	}
	sc := &statechart.Statechart{Name: "Alt", Root: root}
	p := mustGenerate(t, sc)
	d := p.Tables["d"]
	if len(d.Preconditions) != 2 || !hasClause(d.Preconditions, "b") || !hasClause(d.Preconditions, "c") {
		t.Fatalf("d preconditions = %v", d.Preconditions)
	}
	a := p.Tables["a"]
	bT := targetsTo(a.Postprocessings, "b")
	cT := targetsTo(a.Postprocessings, "c")
	if len(bT) != 1 || bT[0].Condition != "x > 0" {
		t.Fatalf("a->b = %+v", bT)
	}
	if len(cT) != 1 || cT[0].Condition != "x <= 0" {
		t.Fatalf("a->c = %+v", cT)
	}
}

func TestGenerateNestedCompound(t *testing.T) {
	// a -> [sub: u -> v] -> z; entering the sub targets u, exiting from v.
	sub := &statechart.State{
		ID: "sub", Kind: statechart.KindCompound,
		Children: []*statechart.State{
			{ID: "si", Kind: statechart.KindInitial},
			{ID: "u", Kind: statechart.KindBasic, Service: "U", Operation: "op"},
			{ID: "v", Kind: statechart.KindBasic, Service: "V", Operation: "op"},
			{ID: "sf", Kind: statechart.KindFinal},
		},
		Transitions: []statechart.Transition{
			{From: "si", To: "u"},
			{From: "u", To: "v"},
			{From: "v", To: "sf"},
		},
	}
	root := &statechart.State{
		ID: "root", Kind: statechart.KindCompound,
		Children: []*statechart.State{
			{ID: "init", Kind: statechart.KindInitial},
			{ID: "a", Kind: statechart.KindBasic, Service: "A", Operation: "op"},
			sub,
			{ID: "z", Kind: statechart.KindBasic, Service: "Z", Operation: "op"},
			{ID: "end", Kind: statechart.KindFinal},
		},
		Transitions: []statechart.Transition{
			{From: "init", To: "a"},
			{From: "a", To: "sub"},
			{From: "sub", To: "z"},
			{From: "z", To: "end"},
		},
	}
	p := mustGenerate(t, &statechart.Statechart{Name: "Nested", Root: root})
	if !hasClause(p.Tables["u"].Preconditions, "a") {
		t.Fatalf("u preconditions = %v", p.Tables["u"].Preconditions)
	}
	if !hasClause(p.Tables["z"].Preconditions, "v") {
		t.Fatalf("z preconditions = %v", p.Tables["z"].Preconditions)
	}
	if len(targetsTo(p.Tables["a"].Postprocessings, "u")) != 1 {
		t.Fatalf("a postprocessings = %+v", p.Tables["a"].Postprocessings)
	}
	if len(targetsTo(p.Tables["v"].Postprocessings, "z")) != 1 {
		t.Fatalf("v postprocessings = %+v", p.Tables["v"].Postprocessings)
	}
}

func TestGenerateLoop(t *testing.T) {
	// a -> b; b -> a [again]; b -> end [done]. Loops are static tables.
	root := &statechart.State{
		ID: "root", Kind: statechart.KindCompound,
		Children: []*statechart.State{
			{ID: "init", Kind: statechart.KindInitial},
			{ID: "a", Kind: statechart.KindBasic, Service: "A", Operation: "op"},
			{ID: "b", Kind: statechart.KindBasic, Service: "B", Operation: "op"},
			{ID: "end", Kind: statechart.KindFinal},
		},
		Transitions: []statechart.Transition{
			{From: "init", To: "a"},
			{From: "a", To: "b"},
			{From: "b", To: "a", Condition: "x < 3", Actions: []statechart.Assignment{{Var: "x", Expr: "x + 1"}}},
			{From: "b", To: "end", Condition: "x >= 3"},
		},
	}
	p := mustGenerate(t, &statechart.Statechart{Name: "Loop", Root: root})
	a := p.Tables["a"]
	if !hasClause(a.Preconditions, message.WrapperID) || !hasClause(a.Preconditions, "b") {
		t.Fatalf("a preconditions = %v", a.Preconditions)
	}
	back := targetsTo(p.Tables["b"].Postprocessings, "a")
	if len(back) != 1 || back[0].Condition != "x < 3" || len(back[0].Actions) != 1 {
		t.Fatalf("b->a = %+v", back)
	}
}

func TestGenerateRejectsInvalidChart(t *testing.T) {
	sc := workload.Chain(2)
	sc.Root.Children[1].Service = "" // invalidate
	if _, err := Generate(sc); err == nil {
		t.Fatal("Generate accepted an invalid chart")
	}
	if _, err := Generate(&statechart.Statechart{Name: "x"}); err == nil {
		t.Fatal("Generate accepted a chart without root")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	sc := workload.Travel()
	p1 := mustGenerate(t, sc)
	p2 := mustGenerate(t, sc)
	d1, err := MarshalPlan(p1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := MarshalPlan(p2)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Fatal("Generate is not deterministic")
	}
}

func TestCovered(t *testing.T) {
	tbl := &Table{
		State: "q",
		Preconditions: []Clause{
			{Sources: []string{"a", "b"}},
			{Sources: []string{"c"}, Condition: "x > 0"},
		},
	}
	if got := tbl.Covered(map[string]int{"a": 1}); len(got) != 0 {
		t.Fatalf("partial clause covered: %v", got)
	}
	if got := tbl.Covered(map[string]int{"a": 1, "b": 1}); len(got) != 1 || len(got[0].Sources) != 2 {
		t.Fatalf("clause {a,b}: %v", got)
	}
	if got := tbl.Covered(map[string]int{"c": 2}); len(got) != 1 || got[0].Condition != "x > 0" {
		t.Fatalf("clause {c}: %v", got)
	}
	if got := tbl.Covered(map[string]int{"a": 1, "b": 1, "c": 1}); len(got) != 2 {
		t.Fatalf("both clauses: %v", got)
	}
	if got := tbl.Covered(nil); len(got) != 0 {
		t.Fatalf("empty set covered: %v", got)
	}
	// Zero or negative counts do not cover.
	if got := tbl.Covered(map[string]int{"c": 0}); len(got) != 0 {
		t.Fatalf("zero count covered: %v", got)
	}
}

func TestPeers(t *testing.T) {
	tbl := &Table{
		Preconditions:   []Clause{{Sources: []string{"a", "b"}}, {Sources: []string{"a"}}},
		Postprocessings: []Target{{To: "z"}, {To: message.WrapperID}},
	}
	got := tbl.Peers()
	want := []string{message.WrapperID, "a", "b", "z"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Peers = %v, want %v", got, want)
	}
}

func TestPlanValidateCatchesProblems(t *testing.T) {
	p := &Plan{
		Composite: "bad",
		Tables: map[string]*Table{
			"lonely": {State: "lonely"},
		},
	}
	err := p.Validate()
	if err == nil {
		t.Fatal("Validate accepted a broken plan")
	}
	for _, want := range []string{"no start targets", "no finish clauses", "unreachable", "dead end"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestPlanStringMentionsEverything(t *testing.T) {
	p := mustGenerate(t, workload.Travel())
	s := p.String()
	for _, want := range []string{"TravelPlanner", "CR", "pre:", "post:", "finish:", "start:"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q", want)
		}
	}
}

func TestConj(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"", "", ""},
		{"x", "", "x"},
		{"", "y", "y"},
		{"true", "y", "y"},
		{"x", "true", "x"},
		{"x", "y", "(x) and (y)"},
	}
	for _, c := range cases {
		if got := conj(c.a, c.b); got != c.want {
			t.Errorf("conj(%q, %q) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
}

func TestXMLPlanRoundTrip(t *testing.T) {
	for _, sc := range []*statechart.Statechart{workload.Travel(), workload.Chain(4), workload.Parallel(3)} {
		p := mustGenerate(t, sc)
		data, err := MarshalPlan(p)
		if err != nil {
			t.Fatalf("MarshalPlan: %v", err)
		}
		back, err := UnmarshalPlan(data)
		if err != nil {
			t.Fatalf("UnmarshalPlan: %v", err)
		}
		if !reflect.DeepEqual(p, back) {
			d2, _ := MarshalPlan(back)
			t.Fatalf("round trip mismatch for %s:\n%s\nvs\n%s", sc.Name, data, d2)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("round-tripped plan invalid: %v", err)
		}
	}
}

func TestXMLTableRoundTrip(t *testing.T) {
	p := mustGenerate(t, workload.Travel())
	for id, tbl := range p.Tables {
		data, err := MarshalTable(tbl)
		if err != nil {
			t.Fatalf("MarshalTable(%s): %v", id, err)
		}
		back, err := UnmarshalTable(data)
		if err != nil {
			t.Fatalf("UnmarshalTable(%s): %v", id, err)
		}
		if !reflect.DeepEqual(tbl, back) {
			t.Fatalf("table %s round trip mismatch", id)
		}
	}
}

func TestUnmarshalPlanErrors(t *testing.T) {
	if _, err := UnmarshalPlan([]byte("nope")); err == nil {
		t.Fatal("accepted garbage")
	}
	dup := `<routingPlan composite="x">
	  <table state="a" service="S" operation="o"/>
	  <table state="a" service="S" operation="o"/>
	</routingPlan>`
	if _, err := UnmarshalPlan([]byte(dup)); err == nil {
		t.Fatal("accepted duplicate tables")
	}
}

// Property: for every random chart, the generated plan validates, and all
// postprocessing conditions parse as expressions.
func TestRandomChartsProducePlansThatValidate(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		sc := workload.RandomChart(workload.RandomOptions{
			States: 20, MaxDepth: 3, BranchProb: 0.3, ParallelProb: 0.25, Seed: seed,
		})
		p, err := Generate(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v\nchart: %s\nplan: %s", seed, err, sc, p)
		}
	}
}

func BenchmarkGenerateTravel(b *testing.B) {
	sc := workload.Travel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateBySize(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		sc := workload.RandomChart(workload.RandomOptions{
			States: n, MaxDepth: 3, BranchProb: 0.25, ParallelProb: 0.2, Seed: 99,
		})
		b.Run(sc.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Generate(sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
