package routing

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"selfserv/internal/statechart"
)

// The paper stores routing tables as XML documents in plain files on each
// component service's host. This file defines that document format, both
// for a whole Plan (the deployer's working artifact) and for a single
// Table (what actually gets uploaded to one host).

type xmlPlan struct {
	XMLName xml.Name    `xml:"routingPlan"`
	Name    string      `xml:"composite,attr"`
	Version uint64      `xml:"version,attr,omitempty"`
	Inputs  []xmlParam  `xml:"input"`
	Outputs []xmlParam  `xml:"output"`
	Start   []xmlTarget `xml:"start>notify"`
	Finish  []xmlClause `xml:"finish>clause"`
	Tables  []xmlTable  `xml:"table"`
}

type xmlParam struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr,omitempty"`
}

type xmlTable struct {
	State     string       `xml:"state,attr"`
	Version   uint64       `xml:"version,attr,omitempty"`
	Service   string       `xml:"service,attr"`
	Operation string       `xml:"operation,attr"`
	Inputs    []xmlBinding `xml:"in"`
	Outputs   []xmlBinding `xml:"out"`
	Pre       []xmlClause  `xml:"preconditions>clause"`
	Post      []xmlTarget  `xml:"postprocessings>notify"`
}

type xmlBinding struct {
	Param string `xml:"param,attr"`
	Var   string `xml:"var,attr,omitempty"`
	Expr  string `xml:"expr,attr,omitempty"`
}

type xmlClause struct {
	Sources   string      `xml:"sources,attr"`
	Condition string      `xml:"condition,attr,omitempty"`
	Actions   []xmlAssign `xml:"assign"`
}

type xmlTarget struct {
	To        string      `xml:"to,attr"`
	Condition string      `xml:"condition,attr,omitempty"`
	Actions   []xmlAssign `xml:"assign"`
}

type xmlAssign struct {
	Var  string `xml:"var,attr"`
	Expr string `xml:"expr,attr"`
}

// MarshalPlan encodes a whole plan as an indented XML document.
func MarshalPlan(p *Plan) ([]byte, error) {
	doc := xmlPlan{Name: p.Composite, Version: p.Version}
	for _, prm := range p.Inputs {
		doc.Inputs = append(doc.Inputs, xmlParam(prm))
	}
	for _, prm := range p.Outputs {
		doc.Outputs = append(doc.Outputs, xmlParam(prm))
	}
	for _, t := range p.Start {
		doc.Start = append(doc.Start, toXMLTarget(t))
	}
	for _, c := range p.Finish {
		doc.Finish = append(doc.Finish, toXMLClause(c))
	}
	ids := sortedTableIDs(p)
	for _, id := range ids {
		doc.Tables = append(doc.Tables, toXMLTable(p.Tables[id]))
	}
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(&buf)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, fmt.Errorf("routing: marshal plan %q: %w", p.Composite, err)
	}
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

// UnmarshalPlan decodes a document produced by MarshalPlan.
func UnmarshalPlan(data []byte) (*Plan, error) {
	var doc xmlPlan
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("routing: unmarshal plan: %w", err)
	}
	p := &Plan{Composite: doc.Name, Version: doc.Version, Tables: map[string]*Table{}}
	for _, prm := range doc.Inputs {
		p.Inputs = append(p.Inputs, statechart.Param(prm))
	}
	for _, prm := range doc.Outputs {
		p.Outputs = append(p.Outputs, statechart.Param(prm))
	}
	for _, t := range doc.Start {
		p.Start = append(p.Start, fromXMLTarget(t))
	}
	for _, c := range doc.Finish {
		p.Finish = append(p.Finish, parseClause(c))
	}
	for _, xt := range doc.Tables {
		tbl := fromXMLTable(xt)
		if _, dup := p.Tables[tbl.State]; dup {
			return nil, fmt.Errorf("routing: duplicate table for state %q", tbl.State)
		}
		p.Tables[tbl.State] = tbl
	}
	return p, nil
}

// MarshalTable encodes a single state's routing table, the artifact the
// deployer uploads to one component service's host.
func MarshalTable(t *Table) ([]byte, error) {
	doc := toXMLTable(t)
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(&buf)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, fmt.Errorf("routing: marshal table %q: %w", t.State, err)
	}
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

// UnmarshalTable decodes a document produced by MarshalTable.
func UnmarshalTable(data []byte) (*Table, error) {
	var doc xmlTable
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("routing: unmarshal table: %w", err)
	}
	return fromXMLTable(doc), nil
}

// WritePlan writes the XML encoding of p to w.
func WritePlan(w io.Writer, p *Plan) error {
	data, err := MarshalPlan(p)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadPlan decodes a plan document from r.
func ReadPlan(r io.Reader) (*Plan, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("routing: read plan: %w", err)
	}
	return UnmarshalPlan(data)
}

func toXMLTable(t *Table) xmlTable {
	xt := xmlTable{
		State:     t.State,
		Version:   t.Version,
		Service:   t.Service,
		Operation: t.Operation,
	}
	for _, b := range t.Inputs {
		xt.Inputs = append(xt.Inputs, xmlBinding(b))
	}
	for _, b := range t.Outputs {
		xt.Outputs = append(xt.Outputs, xmlBinding(b))
	}
	for _, c := range t.Preconditions {
		xt.Pre = append(xt.Pre, toXMLClause(c))
	}
	for _, tg := range t.Postprocessings {
		xt.Post = append(xt.Post, toXMLTarget(tg))
	}
	return xt
}

func fromXMLTable(xt xmlTable) *Table {
	t := &Table{
		State:     xt.State,
		Version:   xt.Version,
		Service:   xt.Service,
		Operation: xt.Operation,
	}
	for _, b := range xt.Inputs {
		t.Inputs = append(t.Inputs, statechart.Binding(b))
	}
	for _, b := range xt.Outputs {
		t.Outputs = append(t.Outputs, statechart.Binding(b))
	}
	for _, c := range xt.Pre {
		t.Preconditions = append(t.Preconditions, parseClause(c))
	}
	for _, tg := range xt.Post {
		t.Postprocessings = append(t.Postprocessings, fromXMLTarget(tg))
	}
	return t
}

func toXMLTarget(t Target) xmlTarget {
	xt := xmlTarget{To: t.To, Condition: t.Condition}
	for _, a := range t.Actions {
		xt.Actions = append(xt.Actions, xmlAssign(a))
	}
	return xt
}

func fromXMLTarget(xt xmlTarget) Target {
	t := Target{To: xt.To, Condition: xt.Condition}
	for _, a := range xt.Actions {
		t.Actions = append(t.Actions, statechart.Assignment(a))
	}
	return t
}

func toXMLClause(c Clause) xmlClause {
	xc := xmlClause{Sources: strings.Join(c.Sources, " "), Condition: c.Condition}
	for _, a := range c.Actions {
		xc.Actions = append(xc.Actions, xmlAssign(a))
	}
	return xc
}

func parseClause(c xmlClause) Clause {
	out := Clause{Condition: c.Condition}
	if strings.TrimSpace(c.Sources) != "" {
		out.Sources = strings.Fields(c.Sources)
	}
	for _, a := range c.Actions {
		out.Actions = append(out.Actions, statechart.Assignment(a))
	}
	return out
}

func sortedTableIDs(p *Plan) []string {
	ids := make([]string, 0, len(p.Tables))
	for id := range p.Tables {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
