package routing

import (
	"fmt"
	"sort"

	"selfserv/internal/expr"
	"selfserv/internal/statechart"
)

// This file implements the compiled half of the deployment artifact: the
// per-composite execution plan the coordinators actually interpret at
// runtime. A Plan (routing.go) is the declarative, serializable form —
// guard conditions and actions are source strings, precondition sources
// are peer-ID strings. Compiling it:
//
//   - parses every Clause.Condition, Target.Condition, and
//     Assignment.Expr exactly once, into shared *expr.Program handles;
//   - interns each table's precondition sources to small integer indices,
//     so per-instance notification bookkeeping is a counts slice plus a
//     "pending" bitmask instead of a map[string]int;
//   - turns clause coverage ("have all sources notified?") into a
//     word-wise mask comparison instead of a map scan.
//
// Compilation happens at deploy time (Host.Install, NewWrapper,
// NewCentral all compile before accepting traffic), which makes it the
// LAST place an ill-formed guard can surface: once a CompiledTable or
// CompiledPlan exists, the notification hot path is pointer-chasing over
// immutable precompiled structures and cannot hit a parse error.

// CompiledAssignment is one pre-parsed ECA action: Var := Expr.
type CompiledAssignment struct {
	Var  string
	Expr *expr.Program
}

// CompiledTarget is a Target with its guard pre-parsed. A nil Condition
// means "always notify" (empty or constant-true guards are elided at
// compile time so the runtime skips evaluation entirely).
type CompiledTarget struct {
	To        string
	Condition *expr.Program
	Actions   []CompiledAssignment
}

// CompiledClause is a Clause with its guard pre-parsed and its sources
// interned against the owning table's source universe. Sources keeps the
// original (sorted) IDs for error messages and logs.
type CompiledClause struct {
	Sources   []string
	Condition *expr.Program
	Actions   []CompiledAssignment

	srcIdx []int    // interned source indices, parallel to Sources
	mask   []uint64 // required-sources bitmask over the interning universe
}

// Covered reports whether every source of the clause has a pending
// notification, given the receiver's pending bitmask (bit i set iff the
// source interned at index i has count > 0). This is the per-notification
// replacement for Clause.covers' map scan.
func (c *CompiledClause) Covered(pending []uint64) bool {
	for w, m := range c.mask {
		if pending[w]&m != m {
			return false
		}
	}
	return true
}

// SourceIndexes returns the interned indices of the clause's sources, in
// the same order as Sources. Callers use it to consume notifications once
// the clause fires. The returned slice is shared and must not be mutated.
func (c *CompiledClause) SourceIndexes() []int { return c.srcIdx }

// CompiledBinding is a Binding with any value expression pre-parsed.
// Exactly one of Var/Expr is set (validated by statechart.Validate).
type CompiledBinding struct {
	Param string
	Var   string
	Expr  *expr.Program
}

// sourceInterner assigns dense integer indices to source IDs.
type sourceInterner struct {
	index map[string]int
	ids   []string
	order []int // indices sorted by source ID; see mergeOrder
}

func newSourceInterner() *sourceInterner {
	return &sourceInterner{index: map[string]int{}}
}

func (si *sourceInterner) intern(id string) int {
	if i, ok := si.index[id]; ok {
		return i
	}
	i := len(si.ids)
	si.index[id] = i
	si.ids = append(si.ids, id)
	return i
}

// words returns the number of uint64 mask words covering the universe.
func (si *sourceInterner) words() int { return (len(si.ids) + 63) / 64 }

// seal freezes the universe and precomputes the canonical merge order:
// the interned indices sorted by source ID. Every receiver that merges
// per-source variable bags in this order computes the SAME merged bag
// for the same set of notifications, regardless of arrival order — the
// determinism alternative receivers of one AND-join need to agree on
// which guarded successor fires (see engine: coordinator/wrapper).
// "$wrapper" and "$event:..." pseudo-sources sort before state IDs, so
// request inputs and event payloads form the lowest-priority layer.
func (si *sourceInterner) seal() {
	si.order = make([]int, len(si.ids))
	for i := range si.order {
		si.order[i] = i
	}
	sort.Slice(si.order, func(a, b int) bool {
		return si.ids[si.order[a]] < si.ids[si.order[b]]
	})
}

// CompiledTable is the runtime form of one state's routing table: every
// expression pre-parsed, every precondition source interned. It is built
// once per (composite, state) at install time and shared immutably by all
// execution instances of that coordinator.
type CompiledTable struct {
	// Table is the declarative source of this compilation (kept for
	// identity, logs, and re-serialization).
	Table *Table

	// Version is the deployment version copied from the declarative
	// table. Coordinators stamp every outgoing notification with it and
	// hosts key their coordinator table by it, so instances started on
	// version v keep exchanging v-routed notifications while a newer
	// version serves fresh traffic (docs/controlplane.md).
	Version uint64

	State     string
	Service   string
	Operation string

	Inputs  []CompiledBinding
	Outputs []statechart.Binding

	Preconditions   []*CompiledClause
	Postprocessings []CompiledTarget

	interner *sourceInterner
}

// NumSources returns the size of the table's interned source universe —
// the length of the per-instance notification-count slice.
func (t *CompiledTable) NumSources() int { return len(t.interner.ids) }

// MaskWords returns the number of uint64 words in the pending bitmask.
func (t *CompiledTable) MaskWords() int { return t.interner.words() }

// SourceIndex resolves a notification sender to its interned index.
// Senders that appear in no precondition clause return ok=false: they can
// never contribute to coverage, so the caller may drop the count.
func (t *CompiledTable) SourceIndex(id string) (int, bool) {
	i, ok := t.interner.index[id]
	return i, ok
}

// SourceName is the inverse of SourceIndex: the state ID behind an
// interned index. The journal serializes per-source state (counts,
// bags, dedup high-water marks) keyed by source NAME, not index —
// interning order is a compile-time artifact that a recompiled plan
// need not reproduce, while state IDs are stable across restarts.
func (t *CompiledTable) SourceName(i int) string { return t.interner.ids[i] }

// MergeOrder returns the interned source indices sorted by source ID —
// the canonical order in which per-source variable bags must be merged
// so that every receiver computes the same bag for the same set of
// notifications, independent of arrival order. The slice is shared and
// must not be mutated.
func (t *CompiledTable) MergeOrder() []int { return t.interner.order }

// CompileTable compiles one routing table. Errors identify the offending
// guard or action so deploy-time failures are actionable.
func CompileTable(tbl *Table) (*CompiledTable, error) {
	if tbl == nil {
		return nil, fmt.Errorf("routing: compile: nil table")
	}
	ct := &CompiledTable{
		Table:     tbl,
		Version:   tbl.Version,
		State:     tbl.State,
		Service:   tbl.Service,
		Operation: tbl.Operation,
		Outputs:   tbl.Outputs,
		interner:  newSourceInterner(),
	}
	var err error
	if ct.Inputs, err = compileBindings(tbl.Inputs); err != nil {
		return nil, fmt.Errorf("routing: compile state %q: %w", tbl.State, err)
	}
	// Intern every source first so masks share one universe.
	for _, c := range tbl.Preconditions {
		for _, src := range c.Sources {
			ct.interner.intern(src)
		}
	}
	for _, c := range tbl.Preconditions {
		cc, err := compileClause(c, ct.interner)
		if err != nil {
			return nil, fmt.Errorf("routing: compile state %q precondition: %w", tbl.State, err)
		}
		ct.Preconditions = append(ct.Preconditions, cc)
	}
	for _, tg := range tbl.Postprocessings {
		c, err := compileTarget(tg)
		if err != nil {
			return nil, fmt.Errorf("routing: compile state %q postprocessing: %w", tbl.State, err)
		}
		ct.Postprocessings = append(ct.Postprocessings, c)
	}
	ct.interner.seal()
	return ct, nil
}

// CompiledPlan is the runtime form of a whole deployment plan. The
// wrapper interprets Start/Finish; the centralized baseline interprets
// everything. One CompiledPlan is built per composite at deploy time and
// shared immutably by all instances.
type CompiledPlan struct {
	// Plan is the declarative source of this compilation.
	Plan *Plan

	// Version is the deployment version copied from the declarative
	// plan (see Plan.Version). Wrappers pin every instance they start to
	// it; the platform's redeploy path drains version v(n) while v(n+1)
	// serves new executions.
	Version uint64

	Tables map[string]*CompiledTable
	Start  []CompiledTarget
	Finish []*CompiledClause

	finish    *sourceInterner
	eventSubs map[string][]string
}

// NumFinishSources returns the size of the finish-clause source universe.
func (p *CompiledPlan) NumFinishSources() int { return len(p.finish.ids) }

// FinishMaskWords returns the pending-bitmask width for finish tracking.
func (p *CompiledPlan) FinishMaskWords() int { return p.finish.words() }

// FinishSourceIndex resolves a termination-notice sender (or event
// pseudo-source) to its interned index in the finish universe.
func (p *CompiledPlan) FinishSourceIndex(id string) (int, bool) {
	i, ok := p.finish.index[id]
	return i, ok
}

// FinishMergeOrder returns the finish-universe indices in canonical
// (sorted-by-source-ID) merge order; see CompiledTable.MergeOrder. The
// slice is shared and must not be mutated.
func (p *CompiledPlan) FinishMergeOrder() []int { return p.finish.order }

// EventSubscribers returns the precomputed, sorted state IDs whose
// preconditions reference the event. The slice is shared; don't mutate.
func (p *CompiledPlan) EventSubscribers(event string) []string {
	return p.eventSubs[event]
}

// CompilePlan compiles every table plus the wrapper's start targets and
// finish clauses. It is side-effect free: a failed compilation leaves no
// partial artifact, which lets deployers verify a plan before touching
// any host.
func CompilePlan(plan *Plan) (*CompiledPlan, error) {
	if plan == nil {
		return nil, fmt.Errorf("routing: compile: nil plan")
	}
	cp := &CompiledPlan{
		Plan:      plan,
		Version:   plan.Version,
		Tables:    make(map[string]*CompiledTable, len(plan.Tables)),
		finish:    newSourceInterner(),
		eventSubs: map[string][]string{},
	}
	for id, tbl := range plan.Tables {
		ct, err := CompileTable(tbl)
		if err != nil {
			return nil, fmt.Errorf("routing: compile plan %q: %w", plan.Composite, err)
		}
		cp.Tables[id] = ct
	}
	for _, tg := range plan.Start {
		c, err := compileTarget(tg)
		if err != nil {
			return nil, fmt.Errorf("routing: compile plan %q start: %w", plan.Composite, err)
		}
		cp.Start = append(cp.Start, c)
	}
	for _, c := range plan.Finish {
		for _, src := range c.Sources {
			cp.finish.intern(src)
		}
	}
	for _, c := range plan.Finish {
		cc, err := compileClause(c, cp.finish)
		if err != nil {
			return nil, fmt.Errorf("routing: compile plan %q finish: %w", plan.Composite, err)
		}
		cp.Finish = append(cp.Finish, cc)
	}
	for _, ev := range plan.Events() {
		cp.eventSubs[ev] = plan.EventSubscribers(ev)
	}
	cp.finish.seal()
	return cp, nil
}

// compileCondition parses a guard, eliding guards that are statically
// true so the runtime can skip them with a nil check.
func compileCondition(src string) (*expr.Program, error) {
	p, err := expr.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("condition %q: %w", src, err)
	}
	if v, ok := p.ConstBool(); ok && v {
		return nil, nil
	}
	return p, nil
}

func compileActions(in []statechart.Assignment) ([]CompiledAssignment, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := make([]CompiledAssignment, len(in))
	for i, a := range in {
		p, err := expr.Compile(a.Expr)
		if err != nil {
			return nil, fmt.Errorf("action %s := %s: %w", a.Var, a.Expr, err)
		}
		out[i] = CompiledAssignment{Var: a.Var, Expr: p}
	}
	return out, nil
}

func compileBindings(in []statechart.Binding) ([]CompiledBinding, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := make([]CompiledBinding, len(in))
	for i, b := range in {
		cb := CompiledBinding{Param: b.Param, Var: b.Var}
		if b.Expr != "" {
			p, err := expr.Compile(b.Expr)
			if err != nil {
				return nil, fmt.Errorf("input %q: %w", b.Param, err)
			}
			cb.Expr = p
		}
		out[i] = cb
	}
	return out, nil
}

func compileTarget(t Target) (CompiledTarget, error) {
	cond, err := compileCondition(t.Condition)
	if err != nil {
		return CompiledTarget{}, fmt.Errorf("target %q: %w", t.To, err)
	}
	actions, err := compileActions(t.Actions)
	if err != nil {
		return CompiledTarget{}, fmt.Errorf("target %q: %w", t.To, err)
	}
	return CompiledTarget{To: t.To, Condition: cond, Actions: actions}, nil
}

func compileClause(c Clause, si *sourceInterner) (*CompiledClause, error) {
	cond, err := compileCondition(c.Condition)
	if err != nil {
		return nil, err
	}
	actions, err := compileActions(c.Actions)
	if err != nil {
		return nil, err
	}
	cc := &CompiledClause{
		Sources:   c.Sources,
		Condition: cond,
		Actions:   actions,
		srcIdx:    make([]int, len(c.Sources)),
	}
	for i, src := range c.Sources {
		cc.srcIdx[i] = si.intern(src)
	}
	// Covered only iterates the clause's own mask words, so a mask shorter
	// than the final universe (possible only if a caller skipped the
	// pre-interning pass) still compares correctly against a full-width
	// pending bitmask.
	cc.mask = make([]uint64, si.words())
	for _, idx := range cc.srcIdx {
		cc.mask[idx>>6] |= 1 << (idx & 63)
	}
	return cc, nil
}
