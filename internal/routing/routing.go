// Package routing implements the service deployer's core algorithm: the
// static extraction of per-state routing tables from a composite service's
// statechart (Benatallah et al., ICDE 2002; §2 of the VLDB'02 demo paper).
//
// A routing table tells one peer coordinator everything it needs at
// runtime, so that "the coordinators do not need to implement any complex
// scheduling algorithm":
//
//   - Preconditions: a disjunction of clauses; each clause is the set of
//     peers whose completion notifications must ALL have arrived before
//     the state's service may be invoked. Multiple clauses express
//     alternative entry paths (OR-joins); multi-member clauses express
//     AND-join synchronization after concurrent regions.
//   - Postprocessings: guarded targets; after the service completes, the
//     coordinator evaluates each target's condition against the instance's
//     variable bag and notifies every target whose condition holds.
//
// Guard placement: conditions are evaluated by the SENDER (postprocessing
// side) whenever the source of a transition is a single state — the
// sender then owns the complete variable bag of its control path. For
// transitions leaving a CONCURRENT state, no single region exit sees the
// merged bag (the travel scenario's near(major_attraction, accommodation)
// guard needs outputs of two different regions), so those guards move to
// the RECEIVER: every region exit notifies the successor unconditionally,
// and the successor's precondition clause carries the guard, evaluated on
// the merged bag once all notifications have arrived. The same rule
// applies to the wrapper's finish clauses.
//
// The package has two artifact layers. Plan/Table (this file) is the
// declarative, serializable form: guards and actions are source strings,
// sources are peer-ID strings. CompiledPlan/CompiledTable (compiled.go)
// is the runtime form the engine interprets: every expression pre-parsed
// to a shared *expr.Program, sources interned to small integers, clause
// coverage a bitmask compare. Compilation runs exactly once per
// composite, at deploy time, which makes deployment the ONLY place a
// guard parse error can surface — a deployed composite never parses at
// runtime (statechart.Validate already enforces the same contract for
// charts; CompileTable/CompilePlan enforce it for plans loaded from
// files or built by hand).
package routing

import (
	"fmt"
	"sort"
	"strings"

	"selfserv/internal/message"
	"selfserv/internal/statechart"
)

// EventSourcePrefix marks pseudo-sources in precondition clauses that are
// satisfied by raised ECA events rather than by peer completion
// notifications: a transition "on e [cond]" compiles to a clause
// containing the real sources plus "$event:e".
const EventSourcePrefix = "$event:"

// EventSource returns the pseudo-source ID for event name.
func EventSource(event string) string { return EventSourcePrefix + event }

// Target is one guarded postprocessing entry: whom to notify after the
// local service completes, under what condition, applying which variable
// assignments to the outgoing message.
type Target struct {
	// To is a state ID, or message.WrapperID for termination notices.
	To string
	// Condition guards the notification; empty means always.
	Condition string
	// Actions are assignments applied to the variable bag of the outgoing
	// notification (ECA rule actions of the crossed transitions).
	Actions []statechart.Assignment
}

// Clause is one alternative way a state becomes fireable: every source in
// Sources (state IDs or message.WrapperID) must have sent a notification,
// and Condition — if any — must evaluate to true on the instance's merged
// variable bag (receiver-side guard of an AND-join; see the package
// comment). Actions are applied to the bag when the clause fires.
// Sources are kept sorted and unique.
type Clause struct {
	Sources   []string
	Condition string
	Actions   []statechart.Assignment
}

// covers reports whether every source has a pending notification in
// received (counts > 0).
func (c Clause) covers(received map[string]int) bool {
	for _, src := range c.Sources {
		if received[src] <= 0 {
			return false
		}
	}
	return true
}

// Table is the routing knowledge of one basic state's coordinator.
type Table struct {
	// Version is the deployment version of the plan this table belongs
	// to. Version 0 is the unversioned (pre-control-plane) namespace;
	// versioned deployments stamp every table with the plan's version so
	// hosts can keep coordinators of several plan versions side by side
	// while the older versions drain (docs/controlplane.md).
	Version uint64
	// State is the basic state this table belongs to.
	State string
	// Service and Operation to invoke, with parameter bindings, copied
	// from the statechart so a coordinator needs no other artifact.
	Service   string
	Operation string
	Inputs    []statechart.Binding
	Outputs   []statechart.Binding
	// Preconditions in disjunctive normal form.
	Preconditions []Clause
	// Postprocessings to evaluate after the service completes.
	Postprocessings []Target
}

// Plan is the full deployment artifact for one composite service: one
// table per basic state, plus the wrapper's own start/finish knowledge.
type Plan struct {
	// Composite is the composite service name.
	Composite string
	// Version is this deployment's monotonically increasing version.
	// Generate leaves it 0 (the unversioned namespace); the deployer
	// stamps it (SetVersion) before compiling, so the compiled plan, all
	// its tables, and every runtime message of an instance carry the
	// version the instance started on (docs/controlplane.md).
	Version uint64
	// Inputs and Outputs mirror the composite signature.
	Inputs  []statechart.Param
	Outputs []statechart.Param
	// Tables maps basic state ID to its routing table.
	Tables map[string]*Table
	// Start lists the guarded targets the wrapper notifies to begin an
	// instance (the states "which need to be entered in the first place").
	Start []Target
	// Finish lists the clauses of states whose termination notices the
	// wrapper must collect before the instance is complete.
	Finish []Clause
}

// SetVersion stamps the plan AND every table with the deployment
// version, so the per-state artifacts uploaded to hosts agree with the
// wrapper's plan about which version an instance runs on. Call before
// CompilePlan: compilation copies the version into the immutable
// compiled artifacts.
func (p *Plan) SetVersion(v uint64) {
	p.Version = v
	for _, tbl := range p.Tables {
		tbl.Version = v
	}
}

// Generate compiles a validated statechart into a Plan. The chart must
// have passed statechart.Validate; Generate re-checks only what it needs
// and returns an error for structurally impossible inputs.
func Generate(sc *statechart.Statechart) (*Plan, error) {
	if sc.Root == nil {
		return nil, fmt.Errorf("routing: statechart %q has no root", sc.Name)
	}
	if err := statechart.Validate(sc); err != nil {
		return nil, fmt.Errorf("routing: %w", err)
	}
	g := &generator{plan: &Plan{
		Composite: sc.Name,
		Inputs:    append([]statechart.Param(nil), sc.Inputs...),
		Outputs:   append([]statechart.Param(nil), sc.Outputs...),
		Tables:    map[string]*Table{},
	}}
	// Allocate a table for every basic state first, so wiring can target
	// any of them.
	sc.Root.Walk(func(s *statechart.State) bool {
		if s.Kind == statechart.KindBasic {
			g.plan.Tables[s.ID] = &Table{
				State:     s.ID,
				Service:   s.Service,
				Operation: s.Operation,
				Inputs:    append([]statechart.Binding(nil), s.Inputs...),
				Outputs:   append([]statechart.Binding(nil), s.Outputs...),
			}
		}
		return true
	})
	if err := g.wireCompound(sc.Root); err != nil {
		return nil, err
	}
	// Root-level entry and exit become wrapper knowledge.
	ens, err := g.entries(sc.Root)
	if err != nil {
		return nil, err
	}
	for _, e := range ens {
		g.plan.Start = append(g.plan.Start, Target{To: e.id, Condition: e.cond, Actions: e.actions})
		g.addPrecondition(e.id, Clause{Sources: []string{message.WrapperID}})
	}
	exs, err := g.exitGroups(sc.Root)
	if err != nil {
		return nil, err
	}
	for _, grp := range exs {
		clause := g.wireGroupToTarget(grp, message.WrapperID, "", nil)
		g.plan.Finish = append(g.plan.Finish, clause)
	}
	g.dedupe()
	return g.plan, nil
}

// wireGroupToTarget attaches postprocessing entries on every member of
// grp notifying `to`, and returns the precondition clause the receiver
// must hold. Guard placement follows the package rule: single-member
// groups evaluate transCond sender-side; multi-member groups move it to
// the receiver's clause.
func (g *generator) wireGroupToTarget(grp group, to, transCond string, transActions []statechart.Assignment) Clause {
	return g.wireGroupToTargetOn(grp, to, "", transCond, transActions)
}

// wireGroupToTargetOn is wireGroupToTarget for ECA transitions: when event
// is non-empty the receiver's clause additionally requires the raised
// event, and the transition guard moves receiver-side (its condition may
// reference event payload variables the sender never sees).
func (g *generator) wireGroupToTargetOn(grp group, to, event, transCond string, transActions []statechart.Assignment) Clause {
	if event != "" {
		// Keep the guard off the senders: they notify unconditionally and
		// the receiver decides once completion(s) AND the event are in.
		sources := make([]string, 0, len(grp.members)+1)
		for _, m := range grp.members {
			sources = append(sources, m.id)
			g.addPostprocessing(m.id, Target{To: to, Condition: m.cond, Actions: m.actions})
		}
		sources = append(sources, EventSource(event))
		return normalizeClause(Clause{
			Sources:   sources,
			Condition: conj(grp.cond, transCond),
			Actions:   concatActions(grp.actions, transActions),
		})
	}
	grp = grp.foldCond(transCond, transActions)
	if len(grp.members) == 1 {
		m := grp.members[0]
		g.addPostprocessing(m.id, Target{
			To:        to,
			Condition: m.cond,
			Actions:   m.actions,
		})
		return normalizeClause(Clause{Sources: []string{m.id}})
	}
	sources := make([]string, 0, len(grp.members))
	for _, m := range grp.members {
		sources = append(sources, m.id)
		// Member-local conditions (from exits nested inside the member's
		// own region) stay sender-side; only the cross-region guard moves.
		g.addPostprocessing(m.id, Target{To: to, Condition: m.cond, Actions: m.actions})
	}
	return normalizeClause(Clause{Sources: sources, Condition: grp.cond, Actions: grp.actions})
}

// guardedRef is a state reference with an accumulated guard and actions.
type guardedRef struct {
	id      string
	cond    string
	actions []statechart.Assignment
}

// group is a set of refs that must all complete (AND semantics). For
// multi-member groups, cond/actions accumulate guards that span regions
// and therefore cannot be evaluated by any single member; they move to
// the receiver's clause (see the package comment on guard placement).
type group struct {
	members []guardedRef
	cond    string
	actions []statechart.Assignment
}

// foldCond attaches a transition guard to the group: single-member groups
// keep guards sender-side; multi-member groups accumulate them on the
// group for receiver-side evaluation.
func (g group) foldCond(cond string, actions []statechart.Assignment) group {
	if cond == "" && len(actions) == 0 {
		return g
	}
	if len(g.members) == 1 {
		m := g.members[0]
		return group{members: []guardedRef{{
			id:      m.id,
			cond:    conj(m.cond, cond),
			actions: concatActions(m.actions, actions),
		}}, cond: g.cond, actions: g.actions}
	}
	return group{
		members: g.members,
		cond:    conj(g.cond, cond),
		actions: concatActions(g.actions, actions),
	}
}

type generator struct {
	plan *Plan
}

// entries resolves the set of guarded basic states entered when s is
// entered.
func (g *generator) entries(s *statechart.State) ([]guardedRef, error) {
	switch s.Kind {
	case statechart.KindBasic:
		return []guardedRef{{id: s.ID}}, nil
	case statechart.KindCompound:
		init := s.Initial()
		if init == nil {
			return nil, fmt.Errorf("routing: compound %q has no initial state", s.ID)
		}
		var out []guardedRef
		for _, t := range s.TransitionsFrom(init.ID) {
			child := s.Child(t.To)
			if child == nil {
				return nil, fmt.Errorf("routing: %q: transition to unknown %q", s.ID, t.To)
			}
			inner, err := g.entries(child)
			if err != nil {
				return nil, err
			}
			for _, e := range inner {
				out = append(out, guardedRef{
					id:      e.id,
					cond:    conj(t.Condition, e.cond),
					actions: concatActions(t.Actions, e.actions),
				})
			}
		}
		return out, nil
	case statechart.KindConcurrent:
		var out []guardedRef
		for _, region := range s.Children {
			inner, err := g.entries(region)
			if err != nil {
				return nil, err
			}
			out = append(out, inner...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("routing: cannot enter %s state %q", s.Kind, s.ID)
	}
}

// exitGroups resolves the groups of guarded basic states whose joint
// completion means s has completed. Alternative exit paths yield multiple
// groups; concurrent regions yield the cross product of their groups.
func (g *generator) exitGroups(s *statechart.State) ([]group, error) {
	switch s.Kind {
	case statechart.KindBasic:
		return []group{{members: []guardedRef{{id: s.ID}}}}, nil
	case statechart.KindCompound:
		fin := s.Final()
		if fin == nil {
			return nil, fmt.Errorf("routing: compound %q has no final state", s.ID)
		}
		var out []group
		for _, t := range s.TransitionsTo(fin.ID) {
			child := s.Child(t.From)
			if child == nil {
				return nil, fmt.Errorf("routing: %q: transition from unknown %q", s.ID, t.From)
			}
			inner, err := g.exitGroups(child)
			if err != nil {
				return nil, err
			}
			for _, grp := range inner {
				out = append(out, grp.foldCond(t.Condition, t.Actions))
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("routing: compound %q has no transition into its final state", s.ID)
		}
		return out, nil
	case statechart.KindConcurrent:
		combos := []group{{}}
		for _, region := range s.Children {
			inner, err := g.exitGroups(region)
			if err != nil {
				return nil, err
			}
			var next []group
			for _, base := range combos {
				for _, grp := range inner {
					merged := group{
						members: append(append([]guardedRef(nil), base.members...), grp.members...),
						cond:    conj(base.cond, grp.cond),
						actions: concatActions(base.actions, grp.actions),
					}
					next = append(next, merged)
				}
			}
			combos = next
		}
		return combos, nil
	default:
		return nil, fmt.Errorf("routing: cannot exit %s state %q", s.Kind, s.ID)
	}
}

// wireCompound wires all transitions between working (non-pseudo) sibling
// states of every compound state, recursively.
func (g *generator) wireCompound(s *statechart.State) error {
	switch s.Kind {
	case statechart.KindCompound:
		init, fin := s.Initial(), s.Final()
		for _, t := range s.Transitions {
			if init != nil && t.From == init.ID {
				continue // entry wiring handled by the parent via entries()
			}
			if fin != nil && t.To == fin.ID {
				continue // exit wiring handled by the parent via exitGroups()
			}
			if err := g.wireTransition(s, t); err != nil {
				return err
			}
		}
		for _, c := range s.Children {
			if c.IsComposite() {
				if err := g.wireCompound(c); err != nil {
					return err
				}
			}
		}
		return nil
	case statechart.KindConcurrent:
		for _, region := range s.Children {
			if err := g.wireCompound(region); err != nil {
				return err
			}
		}
		return nil
	default:
		return nil
	}
}

// wireTransition connects every exit group of the source to every entry of
// the destination.
func (g *generator) wireTransition(parent *statechart.State, t statechart.Transition) error {
	from := parent.Child(t.From)
	to := parent.Child(t.To)
	if from == nil || to == nil {
		return fmt.Errorf("routing: %q: transition %s->%s references unknown states", parent.ID, t.From, t.To)
	}
	groups, err := g.exitGroups(from)
	if err != nil {
		return err
	}
	ens, err := g.entries(to)
	if err != nil {
		return err
	}
	for _, grp := range groups {
		for _, e := range ens {
			clause := g.wireGroupToTargetOn(grp, e.id, t.Event,
				conj(t.Condition, e.cond),
				concatActions(t.Actions, e.actions))
			g.addPrecondition(e.id, clause)
		}
	}
	return nil
}

func (g *generator) addPrecondition(stateID string, c Clause) {
	tbl := g.plan.Tables[stateID]
	if tbl == nil {
		return
	}
	tbl.Preconditions = append(tbl.Preconditions, c)
}

func (g *generator) addPostprocessing(stateID string, t Target) {
	tbl := g.plan.Tables[stateID]
	if tbl == nil {
		return
	}
	tbl.Postprocessings = append(tbl.Postprocessings, t)
}

// dedupe removes duplicate clauses and targets and sorts everything so the
// generated plan is deterministic.
func (g *generator) dedupe() {
	for _, tbl := range g.plan.Tables {
		tbl.Preconditions = dedupeClauses(tbl.Preconditions)
		tbl.Postprocessings = dedupeTargets(tbl.Postprocessings)
	}
	g.plan.Finish = dedupeClauses(g.plan.Finish)
	g.plan.Start = dedupeTargets(g.plan.Start)
}

func dedupeClauses(in []Clause) []Clause {
	seen := map[string]bool{}
	var out []Clause
	for _, c := range in {
		key := clauseKey(c)
		if !seen[key] {
			seen[key] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return clauseKey(out[i]) < clauseKey(out[j])
	})
	return out
}

func clauseKey(c Clause) string {
	return strings.Join(c.Sources, "\x00") + "\x01" + c.Condition + "\x01" + actionsKey(c.Actions)
}

func dedupeTargets(in []Target) []Target {
	seen := map[string]bool{}
	var out []Target
	for _, t := range in {
		key := t.To + "\x00" + t.Condition + "\x00" + actionsKey(t.Actions)
		if !seen[key] {
			seen[key] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].Condition < out[j].Condition
	})
	return out
}

func actionsKey(as []statechart.Assignment) string {
	parts := make([]string, len(as))
	for i, a := range as {
		parts[i] = a.Var + ":=" + a.Expr
	}
	return strings.Join(parts, ";")
}

func normalizeClause(c Clause) Clause {
	sort.Strings(c.Sources)
	out := c.Sources[:0]
	var prev string
	for i, id := range c.Sources {
		if i == 0 || id != prev {
			out = append(out, id)
		}
		prev = id
	}
	c.Sources = out
	return c
}

// conj combines two guard expressions conjunctively, treating "" as true.
func conj(a, b string) string {
	a, b = strings.TrimSpace(a), strings.TrimSpace(b)
	switch {
	case a == "" || a == "true":
		return b
	case b == "" || b == "true":
		return a
	default:
		return "(" + a + ") and (" + b + ")"
	}
}

func concatActions(a, b []statechart.Assignment) []statechart.Assignment {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make([]statechart.Assignment, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// Covered returns, in order, every precondition clause whose sources all
// have pending notifications in received. The caller (the coordinator)
// evaluates each candidate's Condition on the merged variable bag and
// fires the first one that holds.
func (t *Table) Covered(received map[string]int) []Clause {
	var out []Clause
	for _, c := range t.Preconditions {
		if c.covers(received) {
			out = append(out, c)
		}
	}
	return out
}

// Peers returns every distinct peer this table communicates with (sources
// of preconditions and targets of postprocessings), sorted.
func (t *Table) Peers() []string {
	seen := map[string]bool{}
	for _, c := range t.Preconditions {
		for _, src := range c.Sources {
			seen[src] = true
		}
	}
	for _, tg := range t.Postprocessings {
		seen[tg.To] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Validate checks plan invariants: every table has at least one
// precondition clause (it can be entered) and at least one postprocessing
// (its completion is observed), every referenced peer exists, and the
// wrapper can both start and finish an instance.
func (p *Plan) Validate() error {
	var problems []string
	if len(p.Start) == 0 {
		problems = append(problems, "no start targets")
	}
	if len(p.Finish) == 0 {
		problems = append(problems, "no finish clauses")
	}
	known := func(id string) bool {
		return id == message.WrapperID ||
			strings.HasPrefix(id, EventSourcePrefix) ||
			p.Tables[id] != nil
	}
	for _, t := range p.Start {
		if !known(t.To) {
			problems = append(problems, fmt.Sprintf("start target %q has no table", t.To))
		}
	}
	ids := make([]string, 0, len(p.Tables))
	for id := range p.Tables {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		tbl := p.Tables[id]
		if len(tbl.Preconditions) == 0 {
			problems = append(problems, fmt.Sprintf("state %q has no precondition (unreachable)", id))
		}
		if len(tbl.Postprocessings) == 0 {
			problems = append(problems, fmt.Sprintf("state %q has no postprocessing (dead end)", id))
		}
		for _, peer := range tbl.Peers() {
			if !known(peer) {
				problems = append(problems, fmt.Sprintf("state %q references unknown peer %q", id, peer))
			}
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("routing: plan for %q invalid: %s", p.Composite, strings.Join(problems, "; "))
	}
	return nil
}

// Events returns the distinct ECA event names referenced by any
// precondition clause (or finish clause), sorted.
func (p *Plan) Events() []string {
	seen := map[string]bool{}
	collect := func(cs []Clause) {
		for _, c := range cs {
			for _, src := range c.Sources {
				if strings.HasPrefix(src, EventSourcePrefix) {
					seen[strings.TrimPrefix(src, EventSourcePrefix)] = true
				}
			}
		}
	}
	for _, t := range p.Tables {
		collect(t.Preconditions)
	}
	collect(p.Finish)
	out := make([]string, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// EventSubscribers returns the state IDs whose preconditions reference the
// event, sorted — the peers a wrapper must notify when the event is
// raised.
func (p *Plan) EventSubscribers(event string) []string {
	src := EventSource(event)
	var out []string
	ids := sortedPlanIDs(p)
	for _, id := range ids {
		for _, c := range p.Tables[id].Preconditions {
			if containsString(c.Sources, src) {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

func sortedPlanIDs(p *Plan) []string {
	ids := make([]string, 0, len(p.Tables))
	for id := range p.Tables {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func containsString(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// String renders the plan as a readable multi-line table for logs, tests,
// and the CLI's "explain" mode.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan %s\n", p.Composite)
	fmt.Fprintf(&sb, "  start:")
	for _, t := range p.Start {
		fmt.Fprintf(&sb, " %s%s", t.To, condSuffix(t.Condition))
	}
	sb.WriteByte('\n')
	ids := make([]string, 0, len(p.Tables))
	for id := range p.Tables {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		tbl := p.Tables[id]
		fmt.Fprintf(&sb, "  %s (%s.%s)\n", id, tbl.Service, tbl.Operation)
		for _, c := range tbl.Preconditions {
			fmt.Fprintf(&sb, "    pre:  all of {%s}%s\n", strings.Join(c.Sources, ", "), condSuffix(c.Condition))
		}
		for _, t := range tbl.Postprocessings {
			fmt.Fprintf(&sb, "    post: notify %s%s\n", t.To, condSuffix(t.Condition))
		}
	}
	fmt.Fprintf(&sb, "  finish:")
	for _, c := range p.Finish {
		fmt.Fprintf(&sb, " all of {%s}%s", strings.Join(c.Sources, ", "), condSuffix(c.Condition))
	}
	sb.WriteByte('\n')
	return sb.String()
}

func condSuffix(cond string) string {
	if cond == "" {
		return ""
	}
	return " [" + cond + "]"
}
