package routing

import (
	"testing"

	"selfserv/internal/message"
	"selfserv/internal/statechart"
)

// TestCompiledCoveredMatchesDeclarative: the bitmask coverage of a
// compiled clause agrees with Clause.covers for every subset of sources.
func TestCompiledCoveredMatchesDeclarative(t *testing.T) {
	tbl := &Table{
		State:   "s",
		Service: "svc", Operation: "op",
		Preconditions: []Clause{
			{Sources: []string{"a", "b"}},
			{Sources: []string{"c"}, Condition: "x > 0"},
			{Sources: []string{"a", "c", "d"}},
		},
		Postprocessings: []Target{{To: message.WrapperID}},
	}
	ct, err := CompileTable(tbl)
	if err != nil {
		t.Fatal(err)
	}
	universe := []string{"a", "b", "c", "d"}
	if got := ct.NumSources(); got != len(universe) {
		t.Fatalf("NumSources = %d, want %d", got, len(universe))
	}
	for subset := 0; subset < 1<<len(universe); subset++ {
		received := map[string]int{}
		pending := make([]uint64, ct.MaskWords())
		for bit, src := range universe {
			if subset&(1<<bit) == 0 {
				continue
			}
			received[src] = 1
			idx, ok := ct.SourceIndex(src)
			if !ok {
				t.Fatalf("SourceIndex(%q) missing", src)
			}
			pending[idx>>6] |= 1 << (idx & 63)
		}
		declarative := tbl.Covered(received)
		var compiled []*CompiledClause
		for _, c := range ct.Preconditions {
			if c.Covered(pending) {
				compiled = append(compiled, c)
			}
		}
		if len(declarative) != len(compiled) {
			t.Fatalf("subset %04b: declarative covered %d clauses, compiled %d", subset, len(declarative), len(compiled))
		}
		for i := range declarative {
			if len(declarative[i].Sources) != len(compiled[i].Sources) {
				t.Fatalf("subset %04b: clause %d mismatch", subset, i)
			}
		}
	}
}

// TestCompileElidesConstantTrueGuards: empty and "true" guards compile to
// nil so the runtime skips evaluation.
func TestCompileElidesConstantTrueGuards(t *testing.T) {
	p := &Plan{
		Composite: "C",
		Tables: map[string]*Table{
			"s": {
				State: "s", Service: "svc", Operation: "op",
				Preconditions:   []Clause{{Sources: []string{message.WrapperID}, Condition: "true"}},
				Postprocessings: []Target{{To: message.WrapperID, Condition: ""}},
			},
		},
		Start:  []Target{{To: "s", Condition: "   "}},
		Finish: []Clause{{Sources: []string{"s"}, Condition: "x > 1"}},
	}
	cp, err := CompilePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Tables["s"].Preconditions[0].Condition != nil {
		t.Error("constant-true precondition guard not elided")
	}
	if cp.Tables["s"].Postprocessings[0].Condition != nil {
		t.Error("empty postprocessing guard not elided")
	}
	if cp.Start[0].Condition != nil {
		t.Error("whitespace start guard not elided")
	}
	if cp.Finish[0].Condition == nil {
		t.Error("real finish guard was elided")
	}
}

// TestCompilePlanErrors: a broken expression anywhere in the plan fails
// compilation with a message naming the location.
func TestCompilePlanErrors(t *testing.T) {
	base := func() *Plan {
		return &Plan{
			Composite: "C",
			Tables: map[string]*Table{
				"s": {
					State: "s", Service: "svc", Operation: "op",
					Preconditions:   []Clause{{Sources: []string{message.WrapperID}}},
					Postprocessings: []Target{{To: message.WrapperID}},
				},
			},
			Start:  []Target{{To: "s"}},
			Finish: []Clause{{Sources: []string{"s"}}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Plan)
	}{
		{"clause-condition", func(p *Plan) { p.Tables["s"].Preconditions[0].Condition = "((" }},
		{"clause-action", func(p *Plan) {
			p.Tables["s"].Preconditions[0].Actions = []statechart.Assignment{{Var: "v", Expr: "1 +"}}
		}},
		{"target-condition", func(p *Plan) { p.Tables["s"].Postprocessings[0].Condition = "or or" }},
		{"start-condition", func(p *Plan) { p.Start[0].Condition = "x <" }},
		{"finish-condition", func(p *Plan) { p.Finish[0].Condition = "))" }},
		{"input-binding", func(p *Plan) {
			p.Tables["s"].Inputs = []statechart.Binding{{Param: "p", Expr: "* 3"}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base()
			tc.mutate(p)
			if _, err := CompilePlan(p); err == nil {
				t.Fatal("CompilePlan accepted a broken expression")
			}
		})
	}
}
