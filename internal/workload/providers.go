package workload

import (
	"context"
	"fmt"
	"strconv"

	"selfserv/internal/community"
	"selfserv/internal/service"
	"selfserv/internal/statechart"
)

// RegisterTravelProviders registers the five component services of the
// travel scenario in reg: four elementary services and the
// AccommodationBooking community (three hotel brands behind a QoS
// delegation policy), matching the demo where "Accommodation Booking is a
// service community, while others are elementary services". It returns
// the community for experiment instrumentation.
func RegisterTravelProviders(reg *service.Registry, opts service.SimulatedOptions) (*community.Community, error) {
	reg.Register(service.NewDomesticFlightBooking(opts))
	reg.Register(service.NewInternationalTravel(opts))
	reg.Register(service.NewAttractionsSearch(opts))
	reg.Register(service.NewCarRental(opts))
	return RegisterTravelCommunity(reg, opts)
}

// RegisterTravelCommunity registers just the AccommodationBooking
// community (three hotel brands behind a QoS policy with one failover).
func RegisterTravelCommunity(reg *service.Registry, opts service.SimulatedOptions) (*community.Community, error) {
	return RegisterTravelCommunityWith(reg, opts, community.Options{})
}

// RegisterTravelCommunityWith is RegisterTravelCommunity with explicit
// community options — hostd uses it to wire health checks, breakers, and
// availability observers from its flags. A nil Policy and zero Failover
// keep the standard QoS-with-one-failover configuration.
func RegisterTravelCommunityWith(reg *service.Registry, opts service.SimulatedOptions, commOpts community.Options) (*community.Community, error) {
	if commOpts.Policy == nil {
		commOpts.Policy = community.NewQoS(community.Weights{})
	}
	if commOpts.Failover == 0 {
		commOpts.Failover = 1
	}
	ab := community.New("AccommodationBooking", commOpts)
	for i, brand := range []string{"GrandHotel", "CityLodge", "HarbourInn"} {
		m := &community.Member{
			Provider:   service.NewAccommodationBooking(brand, opts),
			Cost:       float64(1 + i),
			Attributes: map[string]string{"brand": brand},
		}
		if err := ab.Join(m); err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
	}
	reg.Register(ab)
	return ab, nil
}

// RegisterChainProviders registers svc1..svcN, each incrementing the
// numeric variable x, so a Chain(n) execution started with x=0 finishes
// with x=n (an end-to-end dataflow check).
func RegisterChainProviders(reg *service.Registry, n int, opts service.SimulatedOptions) {
	for i := 1; i <= n; i++ {
		s := service.NewSimulated(fmt.Sprintf("svc%d", i), opts)
		s.Handle("run", incrementX)
		reg.Register(s)
	}
}

// RegisterParallelProviders registers svc1..svcK for Parallel(k), each
// returning y = x + i (distinct per branch).
func RegisterParallelProviders(reg *service.Registry, k int, opts service.SimulatedOptions) {
	for i := 1; i <= k; i++ {
		i := i
		s := service.NewSimulated(fmt.Sprintf("svc%d", i), opts)
		s.Handle("run", func(_ context.Context, p map[string]string) (map[string]string, error) {
			x, err := strconv.ParseFloat(p["x"], 64)
			if err != nil {
				return nil, fmt.Errorf("bad x %q: %w", p["x"], err)
			}
			return map[string]string{"y": strconv.FormatFloat(x+float64(i), 'g', -1, 64)}, nil
		})
		reg.Register(s)
	}
}

// RegisterIncrementProviders registers an "x+1" provider for every
// service referenced by sc (used by the differential tests that compare
// P2P against the central baseline on random charts).
func RegisterIncrementProviders(reg *service.Registry, sc *statechart.Statechart, opts service.SimulatedOptions) {
	for _, name := range sc.Services() {
		s := service.NewSimulated(name, opts)
		s.Handle("run", incrementX)
		reg.Register(s)
	}
}

func incrementX(_ context.Context, p map[string]string) (map[string]string, error) {
	x, err := strconv.ParseFloat(p["x"], 64)
	if err != nil {
		return nil, fmt.Errorf("bad x %q: %w", p["x"], err)
	}
	return map[string]string{"x": strconv.FormatFloat(x+1, 'g', -1, 64)}, nil
}
