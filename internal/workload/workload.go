// Package workload builds the statecharts and request mixes used by the
// examples, the test suites, and the benchmark harness (experiments
// E1–E7 in DESIGN.md). It includes the paper's travel scenario (Fig 2)
// and parameterized families — chains, parallel fans, and random nested
// charts — for scalability sweeps.
package workload

import (
	"fmt"
	"math/rand"

	"selfserv/internal/statechart"
)

// Travel returns the paper's Fig 2 composite service: a traveller books a
// domestic flight OR an international travel arrangement, in parallel
// with an attractions search and an accommodation booking (the latter is
// served by a community); when all three finish, a car is rented if the
// major attraction is far from the accommodation.
//
// Service names used (to be registered with the platform):
// DomesticFlightBooking, InternationalTravel, AttractionsSearch,
// AccommodationBooking (community), CarRental.
func Travel() *statechart.Statechart {
	flightRegion := &statechart.State{
		ID: "flightRegion", Kind: statechart.KindCompound,
		Children: []*statechart.State{
			{ID: "fInit", Kind: statechart.KindInitial},
			{ID: "DFB", Name: "Domestic Flight Booking", Kind: statechart.KindBasic,
				Service: "DomesticFlightBooking", Operation: "book",
				Inputs: []statechart.Binding{
					{Param: "customer", Var: "customer"},
					{Param: "dest", Var: "destination"},
					{Param: "depart", Var: "departDate"},
					{Param: "return", Var: "returnDate"},
				},
				Outputs: []statechart.Binding{{Param: "ref", Var: "flightRef"}}},
			{ID: "ITA", Name: "International Travel Arrangements", Kind: statechart.KindBasic,
				Service: "InternationalTravel", Operation: "arrange",
				Inputs: []statechart.Binding{
					{Param: "customer", Var: "customer"},
					{Param: "dest", Var: "destination"},
					{Param: "depart", Var: "departDate"},
					{Param: "return", Var: "returnDate"},
				},
				Outputs: []statechart.Binding{
					{Param: "ref", Var: "flightRef"},
					{Param: "insurance", Var: "insuranceRef"},
				}},
			{ID: "fEnd", Kind: statechart.KindFinal},
		},
		Transitions: []statechart.Transition{
			{From: "fInit", To: "DFB", Condition: "domestic(destination)"},
			{From: "fInit", To: "ITA", Condition: "not domestic(destination)"},
			{From: "DFB", To: "fEnd"},
			{From: "ITA", To: "fEnd"},
		},
	}
	asRegion := &statechart.State{
		ID: "asRegion", Kind: statechart.KindCompound,
		Children: []*statechart.State{
			{ID: "aInit", Kind: statechart.KindInitial},
			{ID: "AS", Name: "Attractions Search", Kind: statechart.KindBasic,
				Service: "AttractionsSearch", Operation: "search",
				Inputs: []statechart.Binding{{Param: "dest", Var: "destination"}},
				Outputs: []statechart.Binding{
					{Param: "top", Var: "major_attraction"},
					{Param: "distance", Var: "attractionDistance"},
				}},
			{ID: "aEnd", Kind: statechart.KindFinal},
		},
		Transitions: []statechart.Transition{
			{From: "aInit", To: "AS"},
			{From: "AS", To: "aEnd"},
		},
	}
	abRegion := &statechart.State{
		ID: "abRegion", Kind: statechart.KindCompound,
		Children: []*statechart.State{
			{ID: "bInit", Kind: statechart.KindInitial},
			{ID: "AB", Name: "Accommodation Booking", Kind: statechart.KindBasic,
				Service: "AccommodationBooking", Operation: "book",
				Inputs: []statechart.Binding{
					{Param: "customer", Var: "customer"},
					{Param: "dest", Var: "destination"},
				},
				Outputs: []statechart.Binding{{Param: "addr", Var: "accommodation"}}},
			{ID: "bEnd", Kind: statechart.KindFinal},
		},
		Transitions: []statechart.Transition{
			{From: "bInit", To: "AB"},
			{From: "AB", To: "bEnd"},
		},
	}
	root := &statechart.State{
		ID: "root", Kind: statechart.KindCompound,
		Children: []*statechart.State{
			{ID: "init", Kind: statechart.KindInitial},
			{ID: "bookings", Name: "Bookings", Kind: statechart.KindConcurrent,
				Children: []*statechart.State{flightRegion, asRegion, abRegion}},
			{ID: "CR", Name: "Car Rental", Kind: statechart.KindBasic,
				Service: "CarRental", Operation: "rent",
				Inputs: []statechart.Binding{
					{Param: "customer", Var: "customer"},
					{Param: "addr", Var: "accommodation"},
				},
				Outputs: []statechart.Binding{{Param: "car", Var: "carRef"}}},
			{ID: "end", Kind: statechart.KindFinal},
		},
		Transitions: []statechart.Transition{
			{From: "init", To: "bookings"},
			{From: "bookings", To: "CR", Condition: "not near(attractionDistance)"},
			{From: "bookings", To: "end", Condition: "near(attractionDistance)"},
			{From: "CR", To: "end"},
		},
	}
	return &statechart.Statechart{
		Name: "TravelPlanner",
		Inputs: []statechart.Param{
			{Name: "customer", Type: "string"},
			{Name: "destination", Type: "string"},
			{Name: "departDate", Type: "string"},
			{Name: "returnDate", Type: "string"},
		},
		Outputs: []statechart.Param{
			{Name: "flightRef", Type: "string"},
			{Name: "accommodation", Type: "string"},
			{Name: "major_attraction", Type: "string"},
			{Name: "carRef", Type: "string"},
		},
		Root: root,
	}
}

// Chain returns a sequential composite of n basic states
// s1 -> s2 -> ... -> sn, each invoking service "svc<i>".run and threading
// a counter variable through. Used by E3/E5.
func Chain(n int) *statechart.Statechart {
	if n < 1 {
		panic("workload: Chain needs n >= 1")
	}
	root := &statechart.State{ID: "root", Kind: statechart.KindCompound}
	root.Children = append(root.Children, &statechart.State{ID: "init", Kind: statechart.KindInitial})
	prev := "init"
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("s%d", i)
		root.Children = append(root.Children, &statechart.State{
			ID: id, Kind: statechart.KindBasic,
			Service: fmt.Sprintf("svc%d", i), Operation: "run",
			Inputs:  []statechart.Binding{{Param: "x", Var: "x"}},
			Outputs: []statechart.Binding{{Param: "x", Var: "x"}},
		})
		root.Transitions = append(root.Transitions, statechart.Transition{From: prev, To: id})
		prev = id
	}
	root.Children = append(root.Children, &statechart.State{ID: "end", Kind: statechart.KindFinal})
	root.Transitions = append(root.Transitions, statechart.Transition{From: prev, To: "end"})
	return &statechart.Statechart{
		Name:    fmt.Sprintf("Chain%d", n),
		Inputs:  []statechart.Param{{Name: "x", Type: "number"}},
		Outputs: []statechart.Param{{Name: "x", Type: "number"}},
		Root:    root,
	}
}

// Parallel returns a composite with one AND-state of k single-service
// regions: init -> AND(p1 || ... || pk) -> end. Each region invokes
// service "svc<i>".run. Used by E3/E7 to stress join synchronization.
func Parallel(k int) *statechart.Statechart {
	if k < 2 {
		panic("workload: Parallel needs k >= 2")
	}
	par := &statechart.State{ID: "par", Kind: statechart.KindConcurrent}
	for i := 1; i <= k; i++ {
		id := fmt.Sprintf("p%d", i)
		region := &statechart.State{
			ID: "r" + id, Kind: statechart.KindCompound,
			Children: []*statechart.State{
				{ID: "i" + id, Kind: statechart.KindInitial},
				{ID: id, Kind: statechart.KindBasic,
					Service: fmt.Sprintf("svc%d", i), Operation: "run",
					Inputs:  []statechart.Binding{{Param: "x", Var: "x"}},
					Outputs: []statechart.Binding{{Param: "y", Var: fmt.Sprintf("y%d", i)}},
				},
				{ID: "f" + id, Kind: statechart.KindFinal},
			},
			Transitions: []statechart.Transition{
				{From: "i" + id, To: id},
				{From: id, To: "f" + id},
			},
		}
		par.Children = append(par.Children, region)
	}
	root := &statechart.State{
		ID: "root", Kind: statechart.KindCompound,
		Children: []*statechart.State{
			{ID: "init", Kind: statechart.KindInitial},
			par,
			{ID: "end", Kind: statechart.KindFinal},
		},
		Transitions: []statechart.Transition{
			{From: "init", To: "par"},
			{From: "par", To: "end"},
		},
	}
	return &statechart.Statechart{
		Name:    fmt.Sprintf("Parallel%d", k),
		Inputs:  []statechart.Param{{Name: "x", Type: "number"}},
		Outputs: []statechart.Param{{Name: "y1", Type: "number"}},
		Root:    root,
	}
}

// RandomOptions parameterize RandomChart.
type RandomOptions struct {
	// States is the approximate number of basic states (>= 1).
	States int
	// MaxDepth bounds composite nesting (1 = flat).
	MaxDepth int
	// BranchProb is the probability that a slot becomes an alternative
	// branch pair instead of a single state.
	BranchProb float64
	// ParallelProb is the probability that a slot becomes a concurrent
	// state (when depth allows).
	ParallelProb float64
	// Seed makes generation reproducible.
	Seed int64
}

// RandomChart generates a valid random statechart with roughly
// opts.States basic states, for deployer scalability experiments (E5).
// The same options always produce the same chart.
func RandomChart(opts RandomOptions) *statechart.Statechart {
	if opts.States < 1 {
		opts.States = 1
	}
	if opts.MaxDepth < 1 {
		opts.MaxDepth = 1
	}
	g := &randGen{
		rng:    rand.New(rand.NewSource(opts.Seed + 1)),
		opts:   opts,
		budget: opts.States,
	}
	root := g.compoundN("n", opts.MaxDepth, -1)
	return &statechart.Statechart{
		Name:    fmt.Sprintf("Random%d_%d", opts.States, opts.Seed),
		Inputs:  []statechart.Param{{Name: "x", Type: "number"}},
		Outputs: []statechart.Param{{Name: "x", Type: "number"}},
		Root:    root,
	}
}

type randGen struct {
	rng    *rand.Rand
	opts   RandomOptions
	budget int
	nextID int
}

func (g *randGen) id(prefix string) string {
	g.nextID++
	return fmt.Sprintf("%s%d", prefix, g.nextID)
}

// basic consumes one unit of budget and returns a basic state.
func (g *randGen) basic(prefix string) *statechart.State {
	g.budget--
	id := g.id(prefix)
	return &statechart.State{
		ID: id, Kind: statechart.KindBasic,
		Service: "svc_" + id, Operation: "run",
		Inputs:  []statechart.Binding{{Param: "x", Var: "x"}},
		Outputs: []statechart.Binding{{Param: "x", Var: "x"}},
	}
}

// slot produces the next working state: a basic state, a nested compound,
// or a concurrent state, depending on depth and dice.
func (g *randGen) slot(prefix string, depth int) *statechart.State {
	if depth > 1 && g.budget >= 4 && g.rng.Float64() < g.opts.ParallelProb {
		k := 2 + g.rng.Intn(2) // 2..3 regions
		par := &statechart.State{ID: g.id(prefix + "par"), Kind: statechart.KindConcurrent}
		for i := 0; i < k; i++ {
			par.Children = append(par.Children, g.compound(prefix, depth-1))
		}
		return par
	}
	if depth > 1 && g.budget >= 2 && g.rng.Float64() < 0.3 {
		return g.compound(prefix, depth-1)
	}
	return g.basic(prefix)
}

// compound builds a sequential backbone with optional alternative
// branches, consuming budget proportionally.
func (g *randGen) compound(prefix string, depth int) *statechart.State {
	// Nested compounds take between 1 and 3 sequential slots.
	return g.compoundN(prefix, depth, 1+g.rng.Intn(3))
}

// compoundN builds a compound state with the given number of sequential
// slots; slots < 0 means "keep going until the basic-state budget is
// spent" (used for the root so charts actually reach the requested size).
func (g *randGen) compoundN(prefix string, depth, slots int) *statechart.State {
	c := &statechart.State{ID: g.id(prefix + "c"), Kind: statechart.KindCompound}
	init := &statechart.State{ID: g.id(prefix + "i"), Kind: statechart.KindInitial}
	fin := &statechart.State{ID: g.id(prefix + "f"), Kind: statechart.KindFinal}
	c.Children = append(c.Children, init)

	prev := init.ID
	prevCond := ""
	for s := 0; slots < 0 && g.budget > 0 || s < slots; s++ {
		if slots >= 0 && g.budget <= 0 && s > 0 {
			break
		}
		if g.budget >= 2 && g.rng.Float64() < g.opts.BranchProb {
			// Alternative branch: prev splits to a/b on x parity; both go
			// to a join slot via direct wiring to the next slot.
			a := g.slot(prefix, depth)
			b := g.slot(prefix, depth)
			join := g.basicOrReuse(prefix)
			c.Children = append(c.Children, a, b, join)
			c.Transitions = append(c.Transitions,
				statechart.Transition{From: prev, To: a.ID, Condition: conjCond(prevCond, "x % 2 = 0")},
				statechart.Transition{From: prev, To: b.ID, Condition: conjCond(prevCond, "x % 2 = 1")},
				statechart.Transition{From: a.ID, To: join.ID},
				statechart.Transition{From: b.ID, To: join.ID},
			)
			prev, prevCond = join.ID, ""
			continue
		}
		st := g.slot(prefix, depth)
		c.Children = append(c.Children, st)
		c.Transitions = append(c.Transitions, statechart.Transition{From: prev, To: st.ID, Condition: prevCond})
		prev, prevCond = st.ID, ""
	}
	c.Children = append(c.Children, fin)
	c.Transitions = append(c.Transitions, statechart.Transition{From: prev, To: fin.ID})
	return c
}

// basicOrReuse always creates a basic state; the budget may go negative
// to keep generated charts valid (every compound needs a working state).
func (g *randGen) basicOrReuse(prefix string) *statechart.State {
	return g.basic(prefix)
}

func conjCond(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	return "(" + a + ") and (" + b + ")"
}

// TravelRequest returns the input variable bag for one travel execution.
// Domestic destinations trigger the DFB branch; far attractions trigger
// car rental.
func TravelRequest(customer, destination string, domestic bool) map[string]string {
	return map[string]string{
		"customer":    customer,
		"destination": destination,
		"departDate":  "2026-07-01",
		"returnDate":  "2026-07-14",
	}
}
