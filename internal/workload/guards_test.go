package workload

import (
	"testing"

	"selfserv/internal/expr"
	"selfserv/internal/service"
)

func TestTravelGuards(t *testing.T) {
	guards := TravelGuards()
	domestic, near := guards["domestic"], guards["near"]
	if domestic == nil || near == nil {
		t.Fatal("guards missing")
	}

	v, err := domestic([]expr.Value{expr.StringVal("sydney")})
	if err != nil || !v.IsTrue() {
		t.Fatalf("domestic(sydney) = %v, %v", v, err)
	}
	v, err = domestic([]expr.Value{expr.StringVal("tokyo")})
	if err != nil || v.IsTrue() {
		t.Fatalf("domestic(tokyo) = %v, %v", v, err)
	}
	if _, err := domestic(nil); err == nil {
		t.Error("domestic() arity not checked")
	}
	if _, err := domestic([]expr.Value{expr.Number(1)}); err == nil {
		t.Error("domestic(number) type not checked")
	}

	v, err = near([]expr.Value{expr.Number(10)})
	if err != nil || !v.IsTrue() {
		t.Fatalf("near(10) = %v, %v", v, err)
	}
	v, err = near([]expr.Value{expr.Number(120)})
	if err != nil || v.IsTrue() {
		t.Fatalf("near(120) = %v, %v", v, err)
	}
	if _, err := near([]expr.Value{expr.StringVal("x")}); err == nil {
		t.Error("near(string) type not checked")
	}

	// The guards compose with the expression language as used in charts.
	env := expr.NewMapEnv().BindText("destination", "melbourne").BindText("attractionDistance", "180")
	for name, fn := range guards {
		env.BindFunc(name, fn)
	}
	ok, err := expr.EvalBool("domestic(destination) and not near(attractionDistance)", env)
	if err != nil || !ok {
		t.Fatalf("composed guard = %v, %v", ok, err)
	}
}

func TestRegisterIncrementProviders(t *testing.T) {
	sc := Chain(3)
	reg := service.NewRegistry()
	RegisterIncrementProviders(reg, sc, service.SimulatedOptions{})
	for _, svc := range sc.Services() {
		if _, err := reg.Lookup(svc); err != nil {
			t.Fatalf("service %s not registered: %v", svc, err)
		}
	}
}
