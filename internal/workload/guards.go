package workload

import (
	"fmt"

	"selfserv/internal/expr"
	"selfserv/internal/service"
)

// TravelGuards returns the guard functions the travel scenario's ECA
// rules reference:
//
//   - domestic(dest): whether dest is served by domestic flights;
//   - near(distance): whether the major attraction is within walking /
//     transit range of the accommodation (< 50 km), which suppresses the
//     car rental step.
//
// Register them as engine.Funcs on every host and wrapper executing the
// travel composite.
func TravelGuards() map[string]expr.Func {
	return map[string]expr.Func{
		"domestic": func(args []expr.Value) (expr.Value, error) {
			if len(args) != 1 {
				return expr.Value{}, fmt.Errorf("domestic expects 1 argument, got %d", len(args))
			}
			dest, err := args[0].AsString()
			if err != nil {
				return expr.Value{}, err
			}
			return expr.Bool(service.IsDomesticCity(dest)), nil
		},
		"near": func(args []expr.Value) (expr.Value, error) {
			if len(args) != 1 {
				return expr.Value{}, fmt.Errorf("near expects 1 argument, got %d", len(args))
			}
			km, err := args[0].AsNumber()
			if err != nil {
				return expr.Value{}, err
			}
			return expr.Bool(km < 50), nil
		},
	}
}
