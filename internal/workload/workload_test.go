package workload

import (
	"testing"

	"selfserv/internal/statechart"
)

func TestTravelValidates(t *testing.T) {
	sc := Travel()
	if err := statechart.Validate(sc); err != nil {
		t.Fatalf("Travel: %v", err)
	}
	if got := len(sc.BasicStates()); got != 5 {
		t.Fatalf("Travel has %d basic states, want 5", got)
	}
}

func TestChainValidatesAndSizes(t *testing.T) {
	for _, n := range []int{1, 2, 8, 32} {
		sc := Chain(n)
		if err := statechart.Validate(sc); err != nil {
			t.Fatalf("Chain(%d): %v", n, err)
		}
		if got := len(sc.BasicStates()); got != n {
			t.Fatalf("Chain(%d) has %d basic states", n, got)
		}
	}
}

func TestParallelValidatesAndSizes(t *testing.T) {
	for _, k := range []int{2, 3, 8, 16} {
		sc := Parallel(k)
		if err := statechart.Validate(sc); err != nil {
			t.Fatalf("Parallel(%d): %v", k, err)
		}
		if got := len(sc.BasicStates()); got != k {
			t.Fatalf("Parallel(%d) has %d basic states", k, got)
		}
		if d := sc.Depth(); d != 4 {
			t.Fatalf("Parallel(%d) depth = %d, want 4", k, d)
		}
	}
}

func TestPanicsOnBadSizes(t *testing.T) {
	assertPanics(t, func() { Chain(0) })
	assertPanics(t, func() { Parallel(1) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestRandomChartValidAndReproducible(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		opts := RandomOptions{States: 24, MaxDepth: 3, BranchProb: 0.3, ParallelProb: 0.3, Seed: seed}
		sc := RandomChart(opts)
		if err := statechart.Validate(sc); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, sc)
		}
		again := RandomChart(opts)
		if sc.String() != again.String() {
			t.Fatalf("seed %d: non-reproducible chart", seed)
		}
	}
}

func TestRandomChartScalesWithBudget(t *testing.T) {
	small := RandomChart(RandomOptions{States: 4, MaxDepth: 2, Seed: 7})
	big := RandomChart(RandomOptions{States: 128, MaxDepth: 4, BranchProb: 0.25, ParallelProb: 0.25, Seed: 7})
	if len(big.BasicStates()) <= len(small.BasicStates()) {
		t.Fatalf("big chart (%d basics) not bigger than small (%d)",
			len(big.BasicStates()), len(small.BasicStates()))
	}
	// The generator may overshoot slightly but should land near budget.
	if n := len(big.BasicStates()); n < 64 {
		t.Fatalf("requested ~128 basic states, got %d", n)
	}
}

func TestTravelRequest(t *testing.T) {
	req := TravelRequest("alice", "sydney", true)
	for _, k := range []string{"customer", "destination", "departDate", "returnDate"} {
		if req[k] == "" {
			t.Errorf("request missing %q", k)
		}
	}
}
