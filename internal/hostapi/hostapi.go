// Package hostapi is the administration protocol of a SELF-SERV host
// daemon: the HTTP surface the service deployer uses to upload routing
// tables "into the hosts of the corresponding component services" when
// deployer and hosts live in different processes (cmd/hostd +
// cmd/selfserv). In-process deployments use engine.Host.Install directly
// and never touch this package.
//
// Endpoints (all under the admin address):
//
//	GET  /info                         -> coordinator transport address, services, states
//	POST /install?composite=C          -> body: routing table XML; installs a coordinator
//	                                     (the table's version attribute scopes it)
//	POST /uninstall?composite=C&state=S[&version=N] -> removes the state's coordinator
//	                                     (deploy rollback; version 0 = unversioned)
//	POST /directory?composite=C[&version=N] -> body: "peerID addr" lines; records peer
//	                                     locations (repeated peerIDs accumulate a
//	                                     replica set). Versioned pushes are rejected
//	                                     with 409 when older than one already applied.
//	POST /activate?composite=C&version=N -> flips the composite's current version; 409
//	                                     when N is older than the active version
//	POST /retire?composite=C&version=N -> drops version N's coordinators and routes
//	POST /recover                      -> replays the daemon's durability journal
//	                                     (409 when the daemon runs journal-less);
//	                                     call AFTER tables are reinstalled so the
//	                                     replayed instances have coordinators to
//	                                     land on (docs/durability.md)
//	GET  /recover                      -> recovery status JSON
//	GET  /healthz                      -> 200 ok
//
// Versioned pushes make a fleet rollout safe without cross-host
// transactions: each push is atomic per host, the version stamp totally
// orders pushes per composite, and a control plane retrying or racing
// another one can never regress a host to an older snapshot.
package hostapi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"selfserv/internal/engine"
	"selfserv/internal/routing"
)

// Info describes a host daemon.
type Info struct {
	// CoordAddr is the transport address coordinators listen on.
	CoordAddr string `json:"coordAddr"`
	// Services are the provider names available locally.
	Services []string `json:"services"`
	// States maps composite -> state IDs installed here.
	States map[string][]string `json:"states"`
}

// Server exposes one engine.Host over HTTP.
type Server struct {
	host     *engine.Host
	dir      *engine.Directory
	services func() []string
	mux      *http.ServeMux

	// recoverFn, when set (SetRecoverFunc), replays the daemon's
	// durability journal; nil means the daemon runs journal-less and
	// POST /recover is a 409.
	recoverFn func(context.Context) (engine.RecoveryStats, error)

	mu        sync.Mutex // lockorder:hostapi — guards installed/dirVersion/recovery only; HTTP handlers run concurrently
	recovery  RecoveryStatus
	installed map[string][]string
	// dirVersion is the newest directory version applied per composite;
	// older pushes are rejected (409) instead of replacing a newer
	// snapshot. Unversioned (v0) pushes bypass the check for backward
	// compatibility.
	dirVersion map[string]uint64
}

// NewServer wraps host (with its directory) in an admin API. services
// reports the local provider names for /info.
func NewServer(host *engine.Host, dir *engine.Directory, services func() []string) *Server {
	s := &Server{
		host:       host,
		dir:        dir,
		services:   services,
		mux:        http.NewServeMux(),
		installed:  map[string][]string{},
		dirVersion: map[string]uint64{},
	}
	s.mux.HandleFunc("/info", s.handleInfo)
	s.mux.HandleFunc("/install", s.handleInstall)
	s.mux.HandleFunc("/uninstall", s.handleUninstall)
	s.mux.HandleFunc("/directory", s.handleDirectory)
	s.mux.HandleFunc("/activate", s.handleActivate)
	s.mux.HandleFunc("/retire", s.handleRetire)
	s.mux.HandleFunc("/recover", s.handleRecover)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// RecoveryStatus is the /recover resource: whether this daemon journals
// at all, whether a replay has run, and what the last replay did.
type RecoveryStatus struct {
	// Configured reports whether the daemon has a durability journal
	// (a recover function was installed).
	Configured bool `json:"configured"`
	// Ran reports whether a replay has been triggered on this daemon.
	Ran bool `json:"ran"`
	// Stats is the last replay's outcome (zero until Ran).
	Stats engine.RecoveryStats `json:"stats"`
	// Error is the last replay's failure, "" on success.
	Error string `json:"error,omitempty"`
}

// SetRecoverFunc installs the journal-replay hook behind POST /recover
// (typically core.Platform.Recover). Without one the endpoint reports
// the daemon as journal-less.
func (s *Server) SetRecoverFunc(fn func(context.Context) (engine.RecoveryStats, error)) {
	s.mu.Lock()
	s.recoverFn = fn
	s.recovery.Configured = fn != nil
	s.mu.Unlock()
}

// handleRecover serves the recovery resource: GET reports status, POST
// replays the journal synchronously and reports what it rebuilt. The
// control plane calls POST after re-activating a release on a restarted
// daemon, so replayed instances find live coordinators (recovery-aware
// activation).
func (s *Server) handleRecover(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		s.mu.Lock()
		fn := s.recoverFn
		s.mu.Unlock()
		if fn == nil {
			http.Error(w, "durability is not configured on this daemon", http.StatusConflict)
			return
		}
		stats, err := fn(r.Context())
		s.mu.Lock()
		s.recovery.Ran = true
		s.recovery.Stats = stats
		if err != nil {
			s.recovery.Error = err.Error()
		} else {
			s.recovery.Error = ""
		}
		s.mu.Unlock()
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	st := s.recovery
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if st.Error != "" {
		w.WriteHeader(http.StatusInternalServerError)
	}
	json.NewEncoder(w).Encode(st)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	info := Info{
		CoordAddr: s.host.Addr(),
		Services:  s.services(),
		States:    map[string][]string{},
	}
	s.mu.Lock()
	composites := make([]string, 0, len(s.installed))
	for composite := range s.installed {
		composites = append(composites, composite)
	}
	s.mu.Unlock()
	for _, composite := range composites {
		states := s.host.States(composite)
		sort.Strings(states)
		info.States[composite] = states
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(info)
}

func (s *Server) handleInstall(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	composite := r.URL.Query().Get("composite")
	if composite == "" {
		http.Error(w, "missing composite parameter", http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	table, err := routing.UnmarshalTable(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.host.Install(composite, table); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.mu.Lock()
	s.installed[composite] = append(s.installed[composite], table.State)
	s.mu.Unlock()
	fmt.Fprintf(w, "installed %s/%s\n", composite, table.State)
}

func (s *Server) handleUninstall(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	composite := r.URL.Query().Get("composite")
	state := r.URL.Query().Get("state")
	if composite == "" || state == "" {
		http.Error(w, "missing composite or state parameter", http.StatusBadRequest)
		return
	}
	version, ok := versionParam(w, r)
	if !ok {
		return
	}
	s.host.Uninstall(composite, state, version)
	s.mu.Lock()
	kept := s.installed[composite][:0]
	for _, st := range s.installed[composite] {
		if st != state {
			kept = append(kept, st)
		}
	}
	if len(kept) == 0 {
		delete(s.installed, composite)
	} else {
		s.installed[composite] = kept
	}
	s.mu.Unlock()
	fmt.Fprintf(w, "uninstalled %s/%s\n", composite, state)
}

func (s *Server) handleDirectory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	composite := r.URL.Query().Get("composite")
	if composite == "" {
		http.Error(w, "missing composite parameter", http.StatusBadRequest)
		return
	}
	version, ok := versionParam(w, r)
	if !ok {
		return
	}
	// Group the lines by peer ID first, then install each peer's FULL
	// replica set atomically: a repeated ID accumulates replicas, and a
	// re-push replaces the old set instead of merging with it.
	scanner := bufio.NewScanner(io.LimitReader(r.Body, 1<<20))
	replicas := map[string][]string{}
	var order []string
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			http.Error(w, fmt.Sprintf("malformed directory line %q", line), http.StatusBadRequest)
			return
		}
		if _, seen := replicas[fields[0]]; !seen {
			order = append(order, fields[0])
		}
		replicas[fields[0]] = append(replicas[fields[0]], fields[1])
	}
	if err := scanner.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if version != 0 {
		// Monotonicity gate: the whole push is accepted or rejected BEFORE
		// any replica set changes, so a stale control plane (retry storm,
		// two racing rollouts) can never half-apply an older snapshot over
		// a newer one.
		s.mu.Lock()
		if last := s.dirVersion[composite]; version < last {
			s.mu.Unlock()
			http.Error(w, fmt.Sprintf("stale directory push: version %d < applied %d", version, last), http.StatusConflict)
			return
		}
		s.dirVersion[composite] = version
		s.mu.Unlock()
		for _, id := range order {
			s.dir.SetReplicasV(composite, version, id, replicas[id])
		}
	} else {
		for _, id := range order {
			s.dir.SetReplicas(composite, id, replicas[id])
		}
	}
	fmt.Fprintf(w, "recorded %d peer(s) for %s\n", len(order), composite)
}

// handleActivate flips the composite's current plan version: new
// instances start on it, in-flight ones keep their pinned version. A
// stale activation (older than the active version) is a 409.
func (s *Server) handleActivate(w http.ResponseWriter, r *http.Request) {
	composite, version, ok := s.compositeVersion(w, r)
	if !ok {
		return
	}
	if !s.dir.SetCurrent(composite, version) {
		http.Error(w, fmt.Sprintf("stale activation: version %d < current %d", version, s.dir.Current(composite)), http.StatusConflict)
		return
	}
	fmt.Fprintf(w, "activated %s v%d\n", composite, version)
}

// handleRetire drops a drained plan version: its coordinators leave the
// host and its routes leave the directory.
func (s *Server) handleRetire(w http.ResponseWriter, r *http.Request) {
	composite, version, ok := s.compositeVersion(w, r)
	if !ok {
		return
	}
	s.host.RetireVersion(composite, version)
	s.dir.RetireVersion(composite, version)
	fmt.Fprintf(w, "retired %s v%d\n", composite, version)
}

// compositeVersion parses the composite and mandatory version params of
// a POST admin request, writing the error response itself on failure.
func (s *Server) compositeVersion(w http.ResponseWriter, r *http.Request) (string, uint64, bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return "", 0, false
	}
	composite := r.URL.Query().Get("composite")
	if composite == "" {
		http.Error(w, "missing composite parameter", http.StatusBadRequest)
		return "", 0, false
	}
	raw := r.URL.Query().Get("version")
	if raw == "" {
		http.Error(w, "missing version parameter", http.StatusBadRequest)
		return "", 0, false
	}
	version, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad version parameter %q", raw), http.StatusBadRequest)
		return "", 0, false
	}
	return composite, version, true
}

// versionParam parses an optional version query parameter (default 0),
// writing the error response itself on failure.
func versionParam(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	raw := r.URL.Query().Get("version")
	if raw == "" {
		return 0, true
	}
	version, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad version parameter %q", raw), http.StatusBadRequest)
		return 0, false
	}
	return version, true
}

// Client drives a remote host daemon's admin API.
type Client struct {
	// BaseURL is the admin address, e.g. "http://10.0.0.5:7070".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Info fetches the daemon's description.
func (c *Client) Info() (*Info, error) {
	resp, err := c.http().Get(c.BaseURL + "/info")
	if err != nil {
		return nil, fmt.Errorf("hostapi: info: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("hostapi: info: HTTP %d", resp.StatusCode)
	}
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("hostapi: info: %w", err)
	}
	return &info, nil
}

// Install uploads one routing table.
func (c *Client) Install(composite string, table *routing.Table) error {
	data, err := routing.MarshalTable(table)
	if err != nil {
		return err
	}
	return c.post(fmt.Sprintf("/install?composite=%s", composite), "text/xml", data)
}

// Uninstall removes one state's coordinator from the daemon (the
// deployer's rollback path). Version 0 targets the unversioned
// namespace; the parameter is omitted on the wire for old daemons.
func (c *Client) Uninstall(composite, state string, version uint64) error {
	path := fmt.Sprintf("/uninstall?composite=%s&state=%s", composite, state)
	if version != 0 {
		path += fmt.Sprintf("&version=%d", version)
	}
	return c.post(path, "text/plain", nil)
}

// Activate flips the composite's current plan version on the daemon.
func (c *Client) Activate(composite string, version uint64) error {
	return c.post(fmt.Sprintf("/activate?composite=%s&version=%d", composite, version), "text/plain", nil)
}

// Retire drops a drained plan version from the daemon.
func (c *Client) Retire(composite string, version uint64) error {
	return c.post(fmt.Sprintf("/retire?composite=%s&version=%d", composite, version), "text/plain", nil)
}

// Recover replays the daemon's durability journal and returns what it
// rebuilt. Daemons running journal-less answer 409, surfaced as an
// error here. Call after the daemon's tables are reinstalled.
func (c *Client) Recover() (*RecoveryStatus, error) {
	resp, err := c.http().Post(c.BaseURL+"/recover", "text/plain", nil)
	if err != nil {
		return nil, fmt.Errorf("hostapi: recover: %w", err)
	}
	return decodeRecovery(resp)
}

// RecoveryStatus fetches the daemon's recovery status without
// triggering a replay.
func (c *Client) RecoveryStatus() (*RecoveryStatus, error) {
	resp, err := c.http().Get(c.BaseURL + "/recover")
	if err != nil {
		return nil, fmt.Errorf("hostapi: recovery status: %w", err)
	}
	return decodeRecovery(resp)
}

func decodeRecovery(resp *http.Response) (*RecoveryStatus, error) {
	defer resp.Body.Close()
	var st RecoveryStatus
	switch resp.StatusCode {
	case http.StatusOK, http.StatusInternalServerError:
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return nil, fmt.Errorf("hostapi: recover: %w", err)
		}
		if st.Error != "" {
			return &st, fmt.Errorf("hostapi: recover: %s", st.Error)
		}
		return &st, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("hostapi: recover: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
}

// PushDirectory records peer locations on the daemon (one replica per
// peer; see PushReplicaDirectory for replica sets).
func (c *Client) PushDirectory(composite string, peers map[string]string) error {
	replicas := make(map[string][]string, len(peers))
	for id, addr := range peers {
		replicas[id] = []string{addr}
	}
	return c.PushReplicaDirectory(composite, replicas)
}

// PushReplicaDirectory records each peer's full replica set on the
// daemon (repeated "peerID addr" lines on the wire — old daemons that
// last-write-win on repeats simply keep one replica).
func (c *Client) PushReplicaDirectory(composite string, peers map[string][]string) error {
	return c.PushReplicaDirectoryV(composite, 0, peers)
}

// PushReplicaDirectoryV is PushReplicaDirectory stamped with a plan
// version: the daemon stages the snapshot under that version and
// rejects it (409) if it has already applied a newer one.
func (c *Client) PushReplicaDirectoryV(composite string, version uint64, peers map[string][]string) error {
	var sb strings.Builder
	ids := make([]string, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, addr := range peers[id] {
			fmt.Fprintf(&sb, "%s %s\n", id, addr)
		}
	}
	path := fmt.Sprintf("/directory?composite=%s", composite)
	if version != 0 {
		path += fmt.Sprintf("&version=%d", version)
	}
	return c.post(path, "text/plain", []byte(sb.String()))
}

func (c *Client) post(path, contentType string, body []byte) error {
	resp, err := c.http().Post(c.BaseURL+path, contentType, strings.NewReader(string(body)))
	if err != nil {
		return fmt.Errorf("hostapi: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("hostapi: %s: HTTP %d: %s", path, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// RemoteInstaller adapts a Client to deployer.Installer, so the standard
// deployer drives remote daemons exactly like in-process hosts.
type RemoteInstaller struct {
	Client *Client
	// CoordAddr caches the daemon's transport address (from Info).
	CoordAddr string
}

// NewRemoteInstaller resolves a daemon's transport address and returns an
// installer for it.
func NewRemoteInstaller(adminURL string) (*RemoteInstaller, error) {
	c := &Client{BaseURL: adminURL}
	info, err := c.Info()
	if err != nil {
		return nil, err
	}
	return &RemoteInstaller{Client: c, CoordAddr: info.CoordAddr}, nil
}

// Install implements deployer.Installer.
func (ri *RemoteInstaller) Install(composite string, table *routing.Table) error {
	return ri.Client.Install(composite, table)
}

// Uninstall implements deployer.Installer (the rollback path). Errors
// are swallowed: rollback is best-effort over hosts that may be the
// very ones that just failed.
func (ri *RemoteInstaller) Uninstall(composite, state string, version uint64) {
	_ = ri.Client.Uninstall(composite, state, version)
}

// Addr implements deployer.Installer: the coordinator transport address
// (what peers must dial), not the admin URL.
func (ri *RemoteInstaller) Addr() string { return ri.CoordAddr }
