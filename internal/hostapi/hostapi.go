// Package hostapi is the administration protocol of a SELF-SERV host
// daemon: the HTTP surface the service deployer uses to upload routing
// tables "into the hosts of the corresponding component services" when
// deployer and hosts live in different processes (cmd/hostd +
// cmd/selfserv). In-process deployments use engine.Host.Install directly
// and never touch this package.
//
// Endpoints (all under the admin address):
//
//	GET  /info                         -> coordinator transport address, services, states
//	POST /install?composite=C          -> body: routing table XML; installs a coordinator
//	POST /directory?composite=C       -> body: "peerID addr" lines; records peer locations
//	GET  /healthz                      -> 200 ok
package hostapi

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"selfserv/internal/engine"
	"selfserv/internal/routing"
)

// Info describes a host daemon.
type Info struct {
	// CoordAddr is the transport address coordinators listen on.
	CoordAddr string `json:"coordAddr"`
	// Services are the provider names available locally.
	Services []string `json:"services"`
	// States maps composite -> state IDs installed here.
	States map[string][]string `json:"states"`
}

// Server exposes one engine.Host over HTTP.
type Server struct {
	host      *engine.Host
	dir       *engine.Directory
	services  func() []string
	mux       *http.ServeMux
	installed map[string][]string
}

// NewServer wraps host (with its directory) in an admin API. services
// reports the local provider names for /info.
func NewServer(host *engine.Host, dir *engine.Directory, services func() []string) *Server {
	s := &Server{
		host:      host,
		dir:       dir,
		services:  services,
		mux:       http.NewServeMux(),
		installed: map[string][]string{},
	}
	s.mux.HandleFunc("/info", s.handleInfo)
	s.mux.HandleFunc("/install", s.handleInstall)
	s.mux.HandleFunc("/directory", s.handleDirectory)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	info := Info{
		CoordAddr: s.host.Addr(),
		Services:  s.services(),
		States:    map[string][]string{},
	}
	for composite := range s.installed {
		states := s.host.States(composite)
		sort.Strings(states)
		info.States[composite] = states
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(info)
}

func (s *Server) handleInstall(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	composite := r.URL.Query().Get("composite")
	if composite == "" {
		http.Error(w, "missing composite parameter", http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	table, err := routing.UnmarshalTable(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.host.Install(composite, table); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.installed[composite] = append(s.installed[composite], table.State)
	fmt.Fprintf(w, "installed %s/%s\n", composite, table.State)
}

func (s *Server) handleDirectory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	composite := r.URL.Query().Get("composite")
	if composite == "" {
		http.Error(w, "missing composite parameter", http.StatusBadRequest)
		return
	}
	scanner := bufio.NewScanner(io.LimitReader(r.Body, 1<<20))
	n := 0
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			http.Error(w, fmt.Sprintf("malformed directory line %q", line), http.StatusBadRequest)
			return
		}
		s.dir.Set(composite, fields[0], fields[1])
		n++
	}
	if err := scanner.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fmt.Fprintf(w, "recorded %d peer(s) for %s\n", n, composite)
}

// Client drives a remote host daemon's admin API.
type Client struct {
	// BaseURL is the admin address, e.g. "http://10.0.0.5:7070".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Info fetches the daemon's description.
func (c *Client) Info() (*Info, error) {
	resp, err := c.http().Get(c.BaseURL + "/info")
	if err != nil {
		return nil, fmt.Errorf("hostapi: info: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("hostapi: info: HTTP %d", resp.StatusCode)
	}
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("hostapi: info: %w", err)
	}
	return &info, nil
}

// Install uploads one routing table.
func (c *Client) Install(composite string, table *routing.Table) error {
	data, err := routing.MarshalTable(table)
	if err != nil {
		return err
	}
	return c.post(fmt.Sprintf("/install?composite=%s", composite), "text/xml", data)
}

// PushDirectory records peer locations on the daemon.
func (c *Client) PushDirectory(composite string, peers map[string]string) error {
	var sb strings.Builder
	ids := make([]string, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&sb, "%s %s\n", id, peers[id])
	}
	return c.post(fmt.Sprintf("/directory?composite=%s", composite), "text/plain", []byte(sb.String()))
}

func (c *Client) post(path, contentType string, body []byte) error {
	resp, err := c.http().Post(c.BaseURL+path, contentType, strings.NewReader(string(body)))
	if err != nil {
		return fmt.Errorf("hostapi: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("hostapi: %s: HTTP %d: %s", path, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// RemoteInstaller adapts a Client to deployer.Installer, so the standard
// deployer drives remote daemons exactly like in-process hosts.
type RemoteInstaller struct {
	Client *Client
	// CoordAddr caches the daemon's transport address (from Info).
	CoordAddr string
}

// NewRemoteInstaller resolves a daemon's transport address and returns an
// installer for it.
func NewRemoteInstaller(adminURL string) (*RemoteInstaller, error) {
	c := &Client{BaseURL: adminURL}
	info, err := c.Info()
	if err != nil {
		return nil, err
	}
	return &RemoteInstaller{Client: c, CoordAddr: info.CoordAddr}, nil
}

// Install implements deployer.Installer.
func (ri *RemoteInstaller) Install(composite string, table *routing.Table) error {
	return ri.Client.Install(composite, table)
}

// Addr implements deployer.Installer: the coordinator transport address
// (what peers must dial), not the admin URL.
func (ri *RemoteInstaller) Addr() string { return ri.CoordAddr }
