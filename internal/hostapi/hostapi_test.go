package hostapi

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"selfserv/internal/deployer"
	"selfserv/internal/engine"
	"selfserv/internal/message"
	"selfserv/internal/routing"
	"selfserv/internal/service"
	"selfserv/internal/transport"
	"selfserv/internal/workload"
)

// daemon bundles one simulated hostd process: TCP-coordinator host plus
// admin HTTP server.
type daemon struct {
	host  *engine.Host
	dir   *engine.Directory
	admin *httptest.Server
}

func newDaemon(t *testing.T, net transport.Network, reg *service.Registry) *daemon {
	t.Helper()
	dir := engine.NewDirectory()
	h, err := engine.NewHost(net, "127.0.0.1:0", reg, dir, engine.HostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	srv := NewServer(h, dir, reg.Names)
	admin := httptest.NewServer(srv)
	t.Cleanup(admin.Close)
	return &daemon{host: h, dir: dir, admin: admin}
}

func TestDistributedDeployAndExecute(t *testing.T) {
	// Two "processes", each with its own directory, connected over real
	// TCP; a third party deploys Chain(2) across them and executes it.
	sc := workload.Chain(2)

	reg1 := service.NewRegistry()
	workload.RegisterChainProviders(reg1, 1, service.SimulatedOptions{}) // svc1
	reg2 := service.NewRegistry()
	reg2.Register(mustLookup(t, func() *service.Registry {
		r := service.NewRegistry()
		workload.RegisterChainProviders(r, 2, service.SimulatedOptions{})
		return r
	}(), "svc2"))

	net1 := transport.NewTCP()
	defer net1.Close()
	net2 := transport.NewTCP()
	defer net2.Close()
	d1 := newDaemon(t, net1, reg1)
	d2 := newDaemon(t, net2, reg2)

	// Deployer side: remote installers driven through the admin API.
	ri1, err := NewRemoteInstaller(d1.admin.URL)
	if err != nil {
		t.Fatal(err)
	}
	ri2, err := NewRemoteInstaller(d2.admin.URL)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := deployer.Deploy(sc, deployer.Placement{"svc1": {ri1}, "svc2": {ri2}})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}

	// Wrapper side: its own process with its own transport + directory.
	wnet := transport.NewTCP()
	defer wnet.Close()
	wdir := engine.NewDirectory()
	for state, addrs := range dep.Hosts {
		wdir.SetReplicas(sc.Name, state, addrs)
	}
	w, err := engine.NewWrapper(wnet, "127.0.0.1:0", wdir, dep.Plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Every daemon (and the wrapper) must know all peer locations.
	peers := map[string][]string{message.WrapperID: {w.Addr()}}
	for state, addrs := range dep.Hosts {
		peers[state] = addrs
	}
	for _, ri := range []*RemoteInstaller{ri1, ri2} {
		if err := ri.Client.PushReplicaDirectory(sc.Name, peers); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	out, err := w.Execute(ctx, map[string]string{"x": "0"})
	if err != nil {
		t.Fatalf("Execute across daemons: %v", err)
	}
	if out["x"] != "2" {
		t.Fatalf("x = %q, want 2", out["x"])
	}

	// Info reflects the installations.
	info, err := ri1.Client.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.CoordAddr != d1.host.Addr() {
		t.Fatalf("info.CoordAddr = %q", info.CoordAddr)
	}
	if got := info.States["Chain2"]; len(got) != 1 || got[0] != "s1" {
		t.Fatalf("info.States = %v", info.States)
	}
}

func mustLookup(t *testing.T, reg *service.Registry, name string) service.Provider {
	t.Helper()
	p, err := reg.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestReplicaDirectoryAndUninstall covers the scale-out admin surface:
// repeated "peerID addr" lines accumulate a replica set (and a re-push
// replaces it), and /uninstall removes a state's coordinator and its
// /info entry.
func TestReplicaDirectoryAndUninstall(t *testing.T) {
	reg := service.NewRegistry()
	workload.RegisterChainProviders(reg, 1, service.SimulatedOptions{})
	net := transport.NewInMem(transport.InMemOptions{})
	defer net.Close()
	d := newDaemon(t, net, reg)
	c := &Client{BaseURL: d.admin.URL}

	if err := c.PushReplicaDirectory("C", map[string][]string{
		"s1": {"addr-b", "addr-a"},
		"s2": {"addr-c"},
	}); err != nil {
		t.Fatal(err)
	}
	if got := d.dir.Replicas("C", "s1"); len(got) != 2 || got[0] != "addr-a" || got[1] != "addr-b" {
		t.Fatalf("s1 replicas = %v", got)
	}
	// Re-push REPLACES the set (a departed replica must disappear).
	if err := c.PushReplicaDirectory("C", map[string][]string{"s1": {"addr-a"}}); err != nil {
		t.Fatal(err)
	}
	if got := d.dir.Replicas("C", "s1"); len(got) != 1 || got[0] != "addr-a" {
		t.Fatalf("s1 replicas after re-push = %v", got)
	}

	// Install then uninstall a real coordinator through the admin API.
	plan, err := routing.Generate(workload.Chain(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Install("Chain1", plan.Tables["s1"]); err != nil {
		t.Fatalf("Install: %v", err)
	}
	info, err := c.Info()
	if err != nil || len(info.States["Chain1"]) != 1 {
		t.Fatalf("info after install = %+v, %v", info, err)
	}
	if err := c.Uninstall("Chain1", "s1", 0); err != nil {
		t.Fatalf("Uninstall: %v", err)
	}
	info, err = c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if _, still := info.States["Chain1"]; still {
		t.Fatalf("state survived uninstall: %+v", info.States)
	}
	if _, ok := d.dir.Lookup("Chain1", "s1"); ok {
		t.Fatal("directory still routes to the uninstalled coordinator")
	}

	t.Run("uninstall without params", func(t *testing.T) {
		if err := c.post("/uninstall?composite=C", "text/plain", nil); err == nil {
			t.Fatal("accepted")
		}
	})
}

// TestVersionedPushesRejectStale pins the rollout-ordering guarantee:
// version-stamped directory pushes and activations are totally ordered
// per composite, and a host never regresses to an older snapshot no
// matter how a control plane retries or races.
func TestVersionedPushesRejectStale(t *testing.T) {
	reg := service.NewRegistry()
	net := transport.NewInMem(transport.InMemOptions{})
	defer net.Close()
	d := newDaemon(t, net, reg)
	c := &Client{BaseURL: d.admin.URL}

	if err := c.PushReplicaDirectoryV("C", 2, map[string][]string{"s1": {"addr-v2"}}); err != nil {
		t.Fatal(err)
	}
	err := c.PushReplicaDirectoryV("C", 1, map[string][]string{"s1": {"addr-v1"}})
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("stale directory push: err = %v, want 409", err)
	}
	// Same-version re-push is a retry, not a regression: accepted.
	if err := c.PushReplicaDirectoryV("C", 2, map[string][]string{"s1": {"addr-v2b"}}); err != nil {
		t.Fatalf("same-version re-push: %v", err)
	}
	if got := d.dir.Replicas("C", "s1"); len(got) != 0 {
		t.Fatalf("unactivated version already routable: %v", got)
	}

	if err := c.Activate("C", 2); err != nil {
		t.Fatal(err)
	}
	if got := d.dir.Replicas("C", "s1"); len(got) != 1 || got[0] != "addr-v2b" {
		t.Fatalf("replicas after activate = %v", got)
	}
	err = c.Activate("C", 1)
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("stale activation: err = %v, want 409", err)
	}
	// Idempotent re-activation of the current version is fine.
	if err := c.Activate("C", 2); err != nil {
		t.Fatalf("re-activate current: %v", err)
	}
}

func TestAdminErrors(t *testing.T) {
	reg := service.NewRegistry()
	net := transport.NewInMem(transport.InMemOptions{})
	defer net.Close()
	d := newDaemon(t, net, reg)
	c := &Client{BaseURL: d.admin.URL}

	t.Run("install bad xml", func(t *testing.T) {
		err := c.post("/install?composite=C", "text/xml", []byte("not xml"))
		if err == nil || !strings.Contains(err.Error(), "400") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("install without composite", func(t *testing.T) {
		err := c.post("/install", "text/xml", []byte("<x/>"))
		if err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("install for absent service", func(t *testing.T) {
		err := c.Install("C", &routing.Table{State: "s", Service: "missing", Operation: "op"})
		if err == nil || !strings.Contains(err.Error(), "409") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("directory malformed", func(t *testing.T) {
		err := c.post("/directory?composite=C", "text/plain", []byte("only-one-field\n"))
		if err == nil {
			t.Fatal("accepted")
		}
	})
	t.Run("directory comments and blanks ok", func(t *testing.T) {
		err := c.post("/directory?composite=C", "text/plain", []byte("# comment\n\npeer addr\n"))
		if err != nil {
			t.Fatal(err)
		}
	})
	t.Run("healthz", func(t *testing.T) {
		resp, err := d.admin.Client().Get(d.admin.URL + "/healthz")
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("healthz: %v %v", resp, err)
		}
		resp.Body.Close()
	})
	t.Run("remote installer against dead daemon", func(t *testing.T) {
		if _, err := NewRemoteInstaller("http://127.0.0.1:1"); err == nil {
			t.Fatal("reached a dead daemon")
		}
	})
}

// TestRecoverEndpoint pins the recovery resource: a journal-less daemon
// reports Configured=false and rejects replays with 409; with a recover
// function installed, POST replays and reports stats, GET reflects the
// last outcome, and a failing replay surfaces its error (HTTP 500 with
// the status body).
func TestRecoverEndpoint(t *testing.T) {
	reg := service.NewRegistry()
	net := transport.NewInMem(transport.InMemOptions{})
	defer net.Close()
	dir := engine.NewDirectory()
	h, err := engine.NewHost(net, "recover-host", reg, dir, engine.HostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	srv := NewServer(h, dir, reg.Names)
	admin := httptest.NewServer(srv)
	defer admin.Close()
	c := &Client{BaseURL: admin.URL}

	st, err := c.RecoveryStatus()
	if err != nil {
		t.Fatalf("RecoveryStatus: %v", err)
	}
	if st.Configured || st.Ran {
		t.Fatalf("journal-less status = %+v, want unconfigured", st)
	}
	if _, err := c.Recover(); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("journal-less Recover err = %v, want 409", err)
	}

	var calls int
	srv.SetRecoverFunc(func(context.Context) (engine.RecoveryStats, error) {
		calls++
		return engine.RecoveryStats{Coordinators: 3, Wrappers: 1}, nil
	})
	st, err = c.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !st.Configured || !st.Ran || st.Stats.Coordinators != 3 || st.Stats.Wrappers != 1 {
		t.Fatalf("recover status = %+v", st)
	}
	if calls != 1 {
		t.Fatalf("recover fn ran %d times, want 1", calls)
	}
	st, err = c.RecoveryStatus()
	if err != nil || !st.Ran || st.Stats.Coordinators != 3 {
		t.Fatalf("status after replay = %+v, %v", st, err)
	}

	srv.SetRecoverFunc(func(context.Context) (engine.RecoveryStats, error) {
		return engine.RecoveryStats{}, fmt.Errorf("segment torn beyond repair")
	})
	st, err = c.Recover()
	if err == nil || !strings.Contains(err.Error(), "segment torn") {
		t.Fatalf("failing replay err = %v", err)
	}
	if st == nil || st.Error == "" {
		t.Fatalf("failing replay status = %+v", st)
	}
}
