package uddi

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

func seeded(t *testing.T) (*Registry, BusinessEntity, BusinessService) {
	t.Helper()
	r := NewRegistry()
	biz, err := r.SaveBusiness(BusinessEntity{Name: "QF Airlines", Contact: "ops@qf.example"})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := r.SaveService(BusinessService{
		BusinessKey: biz.BusinessKey,
		Name:        "DomesticFlightBooking",
		Description: "books domestic flights",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.SaveBinding(BindingTemplate{
		ServiceKey:  svc.ServiceKey,
		AccessPoint: "http://qf.example/soap",
		WSDLURL:     "http://qf.example/wsdl",
	}); err != nil {
		t.Fatal(err)
	}
	return r, biz, svc
}

func TestSaveAndGet(t *testing.T) {
	r, biz, svc := seeded(t)
	gotB, err := r.GetBusiness(biz.BusinessKey)
	if err != nil || gotB.Name != "QF Airlines" {
		t.Fatalf("GetBusiness = %+v, %v", gotB, err)
	}
	gotS, err := r.GetService(svc.ServiceKey)
	if err != nil || gotS.Name != "DomesticFlightBooking" || gotS.BusinessKey != biz.BusinessKey {
		t.Fatalf("GetService = %+v, %v", gotS, err)
	}
	bindings, err := r.GetBindings(svc.ServiceKey)
	if err != nil || len(bindings) != 1 || bindings[0].AccessPoint != "http://qf.example/soap" {
		t.Fatalf("GetBindings = %+v, %v", bindings, err)
	}
	if _, err := r.GetBusiness("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing business err = %v", err)
	}
	if _, err := r.GetService("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing service err = %v", err)
	}
	if _, err := r.GetBindings("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing bindings err = %v", err)
	}
}

func TestSaveValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.SaveBusiness(BusinessEntity{}); err == nil {
		t.Error("business without name accepted")
	}
	if _, err := r.SaveService(BusinessService{Name: "x", BusinessKey: "ghost"}); err == nil {
		t.Error("service under unknown business accepted")
	}
	biz, _ := r.SaveBusiness(BusinessEntity{Name: "B"})
	if _, err := r.SaveService(BusinessService{BusinessKey: biz.BusinessKey}); err == nil {
		t.Error("service without name accepted")
	}
	if _, err := r.SaveBinding(BindingTemplate{ServiceKey: "ghost", AccessPoint: "x"}); err == nil {
		t.Error("binding under unknown service accepted")
	}
	svc, _ := r.SaveService(BusinessService{BusinessKey: biz.BusinessKey, Name: "S"})
	if _, err := r.SaveBinding(BindingTemplate{ServiceKey: svc.ServiceKey}); err == nil {
		t.Error("binding without access point accepted")
	}
	if _, err := r.SaveTModel(TModel{}); err == nil {
		t.Error("tModel without name accepted")
	}
}

func TestUpdateInPlace(t *testing.T) {
	r, _, svc := seeded(t)
	svc.Description = "updated"
	if _, err := r.SaveService(svc); err != nil {
		t.Fatal(err)
	}
	got, _ := r.GetService(svc.ServiceKey)
	if got.Description != "updated" {
		t.Fatalf("Description = %q", got.Description)
	}
	_, services, _, _ := r.Counts()
	if services != 1 {
		t.Fatalf("services = %d after update, want 1", services)
	}
}

func TestFindQualifiers(t *testing.T) {
	r, biz, _ := seeded(t)
	if _, err := r.SaveService(BusinessService{BusinessKey: biz.BusinessKey, Name: "InternationalFlightBooking"}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pattern string
		q       Qualifier
		want    int
	}{
		{"Domestic", MatchPrefix, 1},
		{"domestic", MatchPrefix, 1}, // case-insensitive
		{"Flight", MatchPrefix, 0},
		{"Flight", MatchContains, 2},
		{"DomesticFlightBooking", MatchExact, 1},
		{"Domestic", MatchExact, 0},
		{"", MatchPrefix, 2},
	}
	for _, tc := range cases {
		got := r.FindService(ServiceQuery{NamePattern: tc.pattern, Qualifier: tc.q})
		if len(got) != tc.want {
			t.Errorf("FindService(%q, %v) = %d hits, want %d", tc.pattern, tc.q, len(got), tc.want)
		}
	}
}

func TestFindByBusinessAndTModel(t *testing.T) {
	r, biz, svc := seeded(t)
	other, _ := r.SaveBusiness(BusinessEntity{Name: "VA Airlines"})
	otherSvc, _ := r.SaveService(BusinessService{BusinessKey: other.BusinessKey, Name: "DomesticFlightBookingVA"})
	tm, err := r.SaveTModel(TModel{Name: "FlightBooking-interface"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.TagService(svc.ServiceKey, tm.TModelKey); err != nil {
		t.Fatal(err)
	}
	if err := r.TagService(otherSvc.ServiceKey, tm.TModelKey); err != nil {
		t.Fatal(err)
	}

	byBiz := r.FindService(ServiceQuery{BusinessKey: biz.BusinessKey})
	if len(byBiz) != 1 || byBiz[0].ServiceKey != svc.ServiceKey {
		t.Fatalf("by business = %+v", byBiz)
	}
	byTM := r.FindService(ServiceQuery{TModelKey: tm.TModelKey})
	if len(byTM) != 2 {
		t.Fatalf("by tModel = %+v", byTM)
	}
	// tag errors
	if err := r.TagService("ghost", tm.TModelKey); err == nil {
		t.Error("tagging unknown service accepted")
	}
	if err := r.TagService(svc.ServiceKey, "ghost"); err == nil {
		t.Error("tagging unknown tModel accepted")
	}
	// idempotent tagging
	if err := r.TagService(svc.ServiceKey, tm.TModelKey); err != nil {
		t.Fatal(err)
	}
	tms := r.FindTModel("Flight", MatchPrefix)
	if len(tms) != 1 || tms[0].Name != "FlightBooking-interface" {
		t.Fatalf("FindTModel = %+v", tms)
	}
}

func TestDeleteService(t *testing.T) {
	r, _, svc := seeded(t)
	if err := r.DeleteService(svc.ServiceKey); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GetService(svc.ServiceKey); !errors.Is(err, ErrNotFound) {
		t.Fatal("service still present")
	}
	_, _, bindings, _ := r.Counts()
	if bindings != 0 {
		t.Fatalf("bindings = %d after delete, want 0", bindings)
	}
	if err := r.DeleteService(svc.ServiceKey); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestConcurrentPublishes(t *testing.T) {
	r := NewRegistry()
	biz, _ := r.SaveBusiness(BusinessEntity{Name: "B"})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				svc, err := r.SaveService(BusinessService{
					BusinessKey: biz.BusinessKey,
					Name:        fmt.Sprintf("svc-%d-%d", g, i),
				})
				if err != nil {
					t.Errorf("SaveService: %v", err)
					return
				}
				if _, err := r.SaveBinding(BindingTemplate{ServiceKey: svc.ServiceKey, AccessPoint: "http://x"}); err != nil {
					t.Errorf("SaveBinding: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	_, services, bindings, _ := r.Counts()
	if services != 400 || bindings != 400 {
		t.Fatalf("counts = %d services, %d bindings", services, bindings)
	}
	// All keys unique.
	seen := map[string]bool{}
	for _, s := range r.FindService(ServiceQuery{}) {
		if seen[s.ServiceKey] {
			t.Fatalf("duplicate key %q", s.ServiceKey)
		}
		seen[s.ServiceKey] = true
	}
}

func TestSOAPServerAndClient(t *testing.T) {
	reg := NewRegistry()
	ts := httptest.NewServer(Serve(reg, nil))
	defer ts.Close()
	c := &Client{URL: ts.URL + "/uddi"}

	biz, err := c.SaveBusiness(BusinessEntity{Name: "QF Airlines", Contact: "ops@qf"})
	if err != nil {
		t.Fatalf("SaveBusiness: %v", err)
	}
	if biz.BusinessKey == "" {
		t.Fatal("no business key assigned")
	}
	svc, err := c.SaveService(BusinessService{BusinessKey: biz.BusinessKey, Name: "FlightBooking"})
	if err != nil {
		t.Fatalf("SaveService: %v", err)
	}
	bnd, err := c.SaveBinding(BindingTemplate{
		ServiceKey:  svc.ServiceKey,
		AccessPoint: "http://qf/soap",
		WSDLURL:     "http://qf/wsdl",
	})
	if err != nil {
		t.Fatalf("SaveBinding: %v", err)
	}
	if bnd.BindingKey == "" {
		t.Fatal("no binding key")
	}
	tm, err := c.SaveTModel(TModel{Name: "FlightBooking-interface"})
	if err != nil {
		t.Fatalf("SaveTModel: %v", err)
	}
	if err := c.TagService(svc.ServiceKey, tm.TModelKey); err != nil {
		t.Fatalf("TagService: %v", err)
	}

	businesses, err := c.FindBusiness("QF", MatchPrefix)
	if err != nil || len(businesses) != 1 || businesses[0].Name != "QF Airlines" {
		t.Fatalf("FindBusiness = %+v, %v", businesses, err)
	}
	services, err := c.FindService(ServiceQuery{NamePattern: "Flight", Qualifier: MatchContains})
	if err != nil || len(services) != 1 {
		t.Fatalf("FindService = %+v, %v", services, err)
	}
	byTM, err := c.FindService(ServiceQuery{TModelKey: tm.TModelKey})
	if err != nil || len(byTM) != 1 {
		t.Fatalf("FindService by tModel = %+v, %v", byTM, err)
	}
	detail, err := c.GetServiceDetail(svc.ServiceKey)
	if err != nil || detail.Name != "FlightBooking" || detail.BusinessKey != biz.BusinessKey {
		t.Fatalf("GetServiceDetail = %+v, %v", detail, err)
	}
	bd, err := c.GetBusinessDetail(biz.BusinessKey)
	if err != nil || bd.Contact != "ops@qf" {
		t.Fatalf("GetBusinessDetail = %+v, %v", bd, err)
	}
	bindings, err := c.GetBindings(svc.ServiceKey)
	if err != nil || len(bindings) != 1 || bindings[0].WSDLURL != "http://qf/wsdl" {
		t.Fatalf("GetBindings = %+v, %v", bindings, err)
	}
	if err := c.DeleteService(svc.ServiceKey); err != nil {
		t.Fatalf("DeleteService: %v", err)
	}
	if _, err := c.GetServiceDetail(svc.ServiceKey); err == nil {
		t.Fatal("service still present after delete")
	}
	// Client errors surface SOAP faults.
	if _, err := c.SaveService(BusinessService{Name: "orphan", BusinessKey: "ghost"}); err == nil {
		t.Fatal("orphan service accepted over SOAP")
	}
}

func BenchmarkPublishAndFind(b *testing.B) {
	r := NewRegistry()
	biz, _ := r.SaveBusiness(BusinessEntity{Name: "B"})
	for i := 0; i < 500; i++ {
		svc, _ := r.SaveService(BusinessService{BusinessKey: biz.BusinessKey, Name: fmt.Sprintf("svc-%04d", i)})
		_, _ = r.SaveBinding(BindingTemplate{ServiceKey: svc.ServiceKey, AccessPoint: "http://x"})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits := r.FindService(ServiceQuery{NamePattern: "svc-02", Qualifier: MatchPrefix})
		if len(hits) != 100 {
			b.Fatalf("hits = %d", len(hits))
		}
	}
}
