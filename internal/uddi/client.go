package uddi

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"selfserv/internal/soap"
)

// Client is a typed UDDI client speaking the SOAP wire format of
// NewSOAPServer against a registry URL.
type Client struct {
	// URL is the registry's SOAP endpoint (e.g. "http://host:port/uddi").
	URL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) call(action string, params map[string]string) (map[string]string, error) {
	resp, err := soap.Call(c.HTTPClient, c.URL, &soap.Message{Action: action, Params: params})
	if err != nil {
		return nil, fmt.Errorf("uddi: %s: %w", action, err)
	}
	return resp.Params, nil
}

// SaveBusiness publishes a business entity and returns it with its key.
func (c *Client) SaveBusiness(b BusinessEntity) (BusinessEntity, error) {
	out, err := c.call("save_business", map[string]string{
		"businessKey": b.BusinessKey,
		"name":        b.Name,
		"description": b.Description,
		"contact":     b.Contact,
	})
	if err != nil {
		return b, err
	}
	b.BusinessKey = out["businessKey"]
	return b, nil
}

// SaveService publishes a business service and returns it with its key.
func (c *Client) SaveService(s BusinessService) (BusinessService, error) {
	out, err := c.call("save_service", map[string]string{
		"serviceKey":  s.ServiceKey,
		"businessKey": s.BusinessKey,
		"name":        s.Name,
		"description": s.Description,
	})
	if err != nil {
		return s, err
	}
	s.ServiceKey = out["serviceKey"]
	return s, nil
}

// SaveBinding publishes a binding template and returns it with its key.
func (c *Client) SaveBinding(b BindingTemplate) (BindingTemplate, error) {
	out, err := c.call("save_binding", map[string]string{
		"bindingKey":  b.BindingKey,
		"serviceKey":  b.ServiceKey,
		"accessPoint": b.AccessPoint,
		"wsdlURL":     b.WSDLURL,
	})
	if err != nil {
		return b, err
	}
	b.BindingKey = out["bindingKey"]
	return b, nil
}

// SaveTModel publishes a tModel and returns it with its key.
func (c *Client) SaveTModel(t TModel) (TModel, error) {
	out, err := c.call("save_tModel", map[string]string{
		"tModelKey":   t.TModelKey,
		"name":        t.Name,
		"overviewURL": t.OverviewURL,
	})
	if err != nil {
		return t, err
	}
	t.TModelKey = out["tModelKey"]
	return t, nil
}

// TagService links a service to an interface tModel.
func (c *Client) TagService(serviceKey, tModelKey string) error {
	_, err := c.call("tag_service", map[string]string{
		"serviceKey": serviceKey,
		"tModelKey":  tModelKey,
	})
	return err
}

// FindBusiness queries businesses by name pattern.
func (c *Client) FindBusiness(pattern string, q Qualifier) ([]BusinessEntity, error) {
	out, err := c.call("find_business", map[string]string{
		"name":          pattern,
		"findQualifier": qualifierName(q),
	})
	if err != nil {
		return nil, err
	}
	keys := strings.Fields(out["businessKeys"])
	hits := make([]BusinessEntity, len(keys))
	for i, k := range keys {
		hits[i] = BusinessEntity{BusinessKey: k, Name: out[fmt.Sprintf("name_%d", i)]}
	}
	return hits, nil
}

// FindService queries services.
func (c *Client) FindService(q ServiceQuery) ([]BusinessService, error) {
	out, err := c.call("find_service", map[string]string{
		"name":          q.NamePattern,
		"findQualifier": qualifierName(q.Qualifier),
		"businessKey":   q.BusinessKey,
		"tModelKey":     q.TModelKey,
	})
	if err != nil {
		return nil, err
	}
	keys := strings.Fields(out["serviceKeys"])
	hits := make([]BusinessService, len(keys))
	for i, k := range keys {
		hits[i] = BusinessService{ServiceKey: k, Name: out[fmt.Sprintf("name_%d", i)]}
	}
	return hits, nil
}

// FindTModel queries tModels by name pattern.
func (c *Client) FindTModel(pattern string, q Qualifier) ([]TModel, error) {
	out, err := c.call("find_tModel", map[string]string{
		"name":          pattern,
		"findQualifier": qualifierName(q),
	})
	if err != nil {
		return nil, err
	}
	keys := strings.Fields(out["tModelKeys"])
	hits := make([]TModel, len(keys))
	for i, k := range keys {
		hits[i] = TModel{TModelKey: k, Name: out[fmt.Sprintf("name_%d", i)]}
	}
	return hits, nil
}

// GetServiceDetail fetches one service record.
func (c *Client) GetServiceDetail(serviceKey string) (BusinessService, error) {
	out, err := c.call("get_serviceDetail", map[string]string{"serviceKey": serviceKey})
	if err != nil {
		return BusinessService{}, err
	}
	return BusinessService{
		ServiceKey:  out["serviceKey"],
		BusinessKey: out["businessKey"],
		Name:        out["name"],
		Description: out["description"],
	}, nil
}

// GetBusinessDetail fetches one business record.
func (c *Client) GetBusinessDetail(businessKey string) (BusinessEntity, error) {
	out, err := c.call("get_businessDetail", map[string]string{"businessKey": businessKey})
	if err != nil {
		return BusinessEntity{}, err
	}
	return BusinessEntity{
		BusinessKey: out["businessKey"],
		Name:        out["name"],
		Description: out["description"],
		Contact:     out["contact"],
	}, nil
}

// GetBindings fetches a service's binding templates.
func (c *Client) GetBindings(serviceKey string) ([]BindingTemplate, error) {
	out, err := c.call("get_bindingDetail", map[string]string{"serviceKey": serviceKey})
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(out["count"])
	if err != nil {
		return nil, fmt.Errorf("uddi: bad count %q", out["count"])
	}
	hits := make([]BindingTemplate, n)
	for i := 0; i < n; i++ {
		hits[i] = BindingTemplate{
			BindingKey:  out[fmt.Sprintf("bindingKey_%d", i)],
			ServiceKey:  serviceKey,
			AccessPoint: out[fmt.Sprintf("accessPoint_%d", i)],
			WSDLURL:     out[fmt.Sprintf("wsdlURL_%d", i)],
		}
	}
	return hits, nil
}

// DeleteService removes a service registration.
func (c *Client) DeleteService(serviceKey string) error {
	_, err := c.call("delete_service", map[string]string{"serviceKey": serviceKey})
	return err
}

func qualifierName(q Qualifier) string {
	switch q {
	case MatchExact:
		return "exactNameMatch"
	case MatchContains:
		return "contains"
	default:
		return ""
	}
}
