package uddi

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"selfserv/internal/soap"
)

// NewSOAPServer exposes the registry's publish and inquiry API as SOAP
// actions, the wire shape the paper describes ("a UDDI/SOAP request ...
// is sent to the UDDI registry"). Mount the returned server on an HTTP
// route (see Serve) or call it in-process via soap.Server.ServeHTTP.
//
// Parameter flattening: list results are returned as space-separated key
// lists plus one <name_N> entry per hit, since the soap package carries
// flat documents. The action names and field names follow UDDI v2.
func NewSOAPServer(r *Registry) *soap.Server {
	s := soap.NewServer()

	s.Handle("save_business", func(p map[string]string) (map[string]string, error) {
		b, err := r.SaveBusiness(BusinessEntity{
			BusinessKey: p["businessKey"],
			Name:        p["name"],
			Description: p["description"],
			Contact:     p["contact"],
		})
		if err != nil {
			return nil, clientFault(err)
		}
		return map[string]string{"businessKey": b.BusinessKey}, nil
	})

	s.Handle("save_service", func(p map[string]string) (map[string]string, error) {
		svc, err := r.SaveService(BusinessService{
			ServiceKey:  p["serviceKey"],
			BusinessKey: p["businessKey"],
			Name:        p["name"],
			Description: p["description"],
		})
		if err != nil {
			return nil, clientFault(err)
		}
		return map[string]string{"serviceKey": svc.ServiceKey}, nil
	})

	s.Handle("save_binding", func(p map[string]string) (map[string]string, error) {
		b, err := r.SaveBinding(BindingTemplate{
			BindingKey:  p["bindingKey"],
			ServiceKey:  p["serviceKey"],
			AccessPoint: p["accessPoint"],
			WSDLURL:     p["wsdlURL"],
		})
		if err != nil {
			return nil, clientFault(err)
		}
		return map[string]string{"bindingKey": b.BindingKey}, nil
	})

	s.Handle("save_tModel", func(p map[string]string) (map[string]string, error) {
		t, err := r.SaveTModel(TModel{
			TModelKey:   p["tModelKey"],
			Name:        p["name"],
			OverviewURL: p["overviewURL"],
		})
		if err != nil {
			return nil, clientFault(err)
		}
		return map[string]string{"tModelKey": t.TModelKey}, nil
	})

	s.Handle("tag_service", func(p map[string]string) (map[string]string, error) {
		if err := r.TagService(p["serviceKey"], p["tModelKey"]); err != nil {
			return nil, clientFault(err)
		}
		return map[string]string{}, nil
	})

	s.Handle("find_business", func(p map[string]string) (map[string]string, error) {
		hits := r.FindBusiness(p["name"], qualifierFrom(p))
		out := map[string]string{"count": strconv.Itoa(len(hits))}
		keys := make([]string, len(hits))
		for i, b := range hits {
			keys[i] = b.BusinessKey
			out[fmt.Sprintf("name_%d", i)] = b.Name
		}
		out["businessKeys"] = strings.Join(keys, " ")
		return out, nil
	})

	s.Handle("find_service", func(p map[string]string) (map[string]string, error) {
		hits := r.FindService(ServiceQuery{
			NamePattern: p["name"],
			Qualifier:   qualifierFrom(p),
			BusinessKey: p["businessKey"],
			TModelKey:   p["tModelKey"],
		})
		out := map[string]string{"count": strconv.Itoa(len(hits))}
		keys := make([]string, len(hits))
		for i, svc := range hits {
			keys[i] = svc.ServiceKey
			out[fmt.Sprintf("name_%d", i)] = svc.Name
		}
		out["serviceKeys"] = strings.Join(keys, " ")
		return out, nil
	})

	s.Handle("find_tModel", func(p map[string]string) (map[string]string, error) {
		hits := r.FindTModel(p["name"], qualifierFrom(p))
		out := map[string]string{"count": strconv.Itoa(len(hits))}
		keys := make([]string, len(hits))
		for i, t := range hits {
			keys[i] = t.TModelKey
			out[fmt.Sprintf("name_%d", i)] = t.Name
		}
		out["tModelKeys"] = strings.Join(keys, " ")
		return out, nil
	})

	s.Handle("get_businessDetail", func(p map[string]string) (map[string]string, error) {
		b, err := r.GetBusiness(p["businessKey"])
		if err != nil {
			return nil, clientFault(err)
		}
		return map[string]string{
			"businessKey": b.BusinessKey,
			"name":        b.Name,
			"description": b.Description,
			"contact":     b.Contact,
		}, nil
	})

	s.Handle("get_serviceDetail", func(p map[string]string) (map[string]string, error) {
		svc, err := r.GetService(p["serviceKey"])
		if err != nil {
			return nil, clientFault(err)
		}
		return map[string]string{
			"serviceKey":  svc.ServiceKey,
			"businessKey": svc.BusinessKey,
			"name":        svc.Name,
			"description": svc.Description,
		}, nil
	})

	s.Handle("get_bindingDetail", func(p map[string]string) (map[string]string, error) {
		bindings, err := r.GetBindings(p["serviceKey"])
		if err != nil {
			return nil, clientFault(err)
		}
		out := map[string]string{"count": strconv.Itoa(len(bindings))}
		for i, b := range bindings {
			out[fmt.Sprintf("bindingKey_%d", i)] = b.BindingKey
			out[fmt.Sprintf("accessPoint_%d", i)] = b.AccessPoint
			out[fmt.Sprintf("wsdlURL_%d", i)] = b.WSDLURL
		}
		return out, nil
	})

	s.Handle("delete_service", func(p map[string]string) (map[string]string, error) {
		if err := r.DeleteService(p["serviceKey"]); err != nil {
			return nil, clientFault(err)
		}
		return map[string]string{}, nil
	})

	return s
}

func qualifierFrom(p map[string]string) Qualifier {
	switch p["findQualifier"] {
	case "exactNameMatch":
		return MatchExact
	case "contains":
		return MatchContains
	default:
		return MatchPrefix
	}
}

func clientFault(err error) error {
	return &soap.Fault{Code: "Client", String: err.Error()}
}

// Serve mounts the registry's SOAP endpoint at /uddi on mux (creating a
// mux when nil) and returns the handler, for use with http.Server.
func Serve(r *Registry, mux *http.ServeMux) *http.ServeMux {
	if mux == nil {
		mux = http.NewServeMux()
	}
	mux.Handle("/uddi", NewSOAPServer(r))
	return mux
}
