// Package uddi implements the subset of the Universal Description,
// Discovery and Integration registry that SELF-SERV's discovery engine
// uses: businessEntity / businessService / bindingTemplate / tModel
// records, save_* publish operations, find_* inquiry operations with
// prefix or exact matching, and get_*Detail lookups.
//
// The paper's implementation delegated this to the IBM WSTK 2.4 UDDI
// registry; this package is the in-repo substitute (see DESIGN.md's
// substitution table). The registry is exposed both as a Go API (this
// file) and as SOAP-over-HTTP endpoints (server.go / client.go),
// mirroring "service registration, discovery and invocation are
// implemented as SOAP calls".
package uddi

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound reports a get_*Detail miss.
var ErrNotFound = errors.New("uddi: not found")

// BusinessEntity describes a service provider (white pages).
type BusinessEntity struct {
	BusinessKey string
	Name        string
	Description string
	Contact     string
}

// BusinessService describes one advertised service (yellow pages).
type BusinessService struct {
	ServiceKey  string
	BusinessKey string
	Name        string
	Description string
}

// BindingTemplate carries the technical entry point of a service (green
// pages): its access point and the URL of its WSDL description.
type BindingTemplate struct {
	BindingKey  string
	ServiceKey  string
	AccessPoint string
	WSDLURL     string
}

// TModel is a reusable technical fingerprint; SELF-SERV uses tModels to
// tag service interfaces (e.g. "FlightBooking-interface") so composers
// can find alternative providers of the same interface.
type TModel struct {
	TModelKey   string
	Name        string
	OverviewURL string
}

// Registry is a thread-safe in-memory UDDI registry.
type Registry struct {
	mu         sync.RWMutex
	seq        int
	businesses map[string]*BusinessEntity
	services   map[string]*BusinessService
	bindings   map[string]*BindingTemplate
	tmodels    map[string]*TModel
	// serviceTModels links serviceKey -> tModelKeys (interface tags).
	serviceTModels map[string][]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		businesses:     map[string]*BusinessEntity{},
		services:       map[string]*BusinessService{},
		bindings:       map[string]*BindingTemplate{},
		tmodels:        map[string]*TModel{},
		serviceTModels: map[string][]string{},
	}
}

func (r *Registry) nextKey(prefix string) string {
	r.seq++
	return fmt.Sprintf("%s-%06d", prefix, r.seq)
}

// SaveBusiness registers or updates a business entity. An empty
// BusinessKey allocates one.
func (r *Registry) SaveBusiness(b BusinessEntity) (BusinessEntity, error) {
	if b.Name == "" {
		return b, fmt.Errorf("uddi: business needs a name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if b.BusinessKey == "" {
		b.BusinessKey = r.nextKey("biz")
	}
	cp := b
	r.businesses[b.BusinessKey] = &cp
	return b, nil
}

// SaveService registers or updates a business service under an existing
// business.
func (r *Registry) SaveService(s BusinessService) (BusinessService, error) {
	if s.Name == "" {
		return s, fmt.Errorf("uddi: service needs a name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.businesses[s.BusinessKey]; !ok {
		return s, fmt.Errorf("uddi: unknown businessKey %q", s.BusinessKey)
	}
	if s.ServiceKey == "" {
		s.ServiceKey = r.nextKey("svc")
	}
	cp := s
	r.services[s.ServiceKey] = &cp
	return s, nil
}

// SaveBinding registers or updates a binding template under an existing
// service.
func (r *Registry) SaveBinding(b BindingTemplate) (BindingTemplate, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.services[b.ServiceKey]; !ok {
		return b, fmt.Errorf("uddi: unknown serviceKey %q", b.ServiceKey)
	}
	if b.AccessPoint == "" {
		return b, fmt.Errorf("uddi: binding needs an access point")
	}
	if b.BindingKey == "" {
		b.BindingKey = r.nextKey("bnd")
	}
	cp := b
	r.bindings[b.BindingKey] = &cp
	return b, nil
}

// SaveTModel registers or updates a tModel.
func (r *Registry) SaveTModel(t TModel) (TModel, error) {
	if t.Name == "" {
		return t, fmt.Errorf("uddi: tModel needs a name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t.TModelKey == "" {
		t.TModelKey = r.nextKey("tm")
	}
	cp := t
	r.tmodels[t.TModelKey] = &cp
	return t, nil
}

// TagService links a service to a tModel (interface fingerprint).
func (r *Registry) TagService(serviceKey, tModelKey string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.services[serviceKey]; !ok {
		return fmt.Errorf("uddi: unknown serviceKey %q", serviceKey)
	}
	if _, ok := r.tmodels[tModelKey]; !ok {
		return fmt.Errorf("uddi: unknown tModelKey %q", tModelKey)
	}
	for _, k := range r.serviceTModels[serviceKey] {
		if k == tModelKey {
			return nil
		}
	}
	r.serviceTModels[serviceKey] = append(r.serviceTModels[serviceKey], tModelKey)
	return nil
}

// Qualifier selects the matching mode of find operations.
type Qualifier int

// Matching modes.
const (
	// MatchPrefix is UDDI's default leftmost match.
	MatchPrefix Qualifier = iota
	// MatchExact requires full equality ("exactNameMatch").
	MatchExact
	// MatchContains is a convenience substring match.
	MatchContains
)

func (q Qualifier) match(value, pattern string) bool {
	value, pattern = strings.ToLower(value), strings.ToLower(pattern)
	switch q {
	case MatchExact:
		return value == pattern
	case MatchContains:
		return strings.Contains(value, pattern)
	default:
		return strings.HasPrefix(value, pattern)
	}
}

// FindBusiness returns businesses whose name matches pattern, sorted by
// name. An empty pattern matches everything.
func (r *Registry) FindBusiness(pattern string, q Qualifier) []BusinessEntity {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []BusinessEntity
	for _, b := range r.businesses {
		if pattern == "" || q.match(b.Name, pattern) {
			out = append(out, *b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ServiceQuery filters FindService.
type ServiceQuery struct {
	// NamePattern matches the service name per Qualifier; empty matches
	// all names.
	NamePattern string
	Qualifier   Qualifier
	// BusinessKey restricts to one provider when non-empty.
	BusinessKey string
	// TModelKey restricts to services tagged with the interface when
	// non-empty (how communities find alternative members).
	TModelKey string
}

// FindService returns the services matching q, sorted by name.
func (r *Registry) FindService(q ServiceQuery) []BusinessService {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []BusinessService
	for _, s := range r.services {
		if q.BusinessKey != "" && s.BusinessKey != q.BusinessKey {
			continue
		}
		if q.NamePattern != "" && !q.Qualifier.match(s.Name, q.NamePattern) {
			continue
		}
		if q.TModelKey != "" && !r.taggedLocked(s.ServiceKey, q.TModelKey) {
			continue
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (r *Registry) taggedLocked(serviceKey, tModelKey string) bool {
	for _, k := range r.serviceTModels[serviceKey] {
		if k == tModelKey {
			return true
		}
	}
	return false
}

// FindTModel returns tModels whose name matches pattern, sorted by name.
func (r *Registry) FindTModel(pattern string, q Qualifier) []TModel {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []TModel
	for _, t := range r.tmodels {
		if pattern == "" || q.match(t.Name, pattern) {
			out = append(out, *t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// GetBusiness returns the business with the given key.
func (r *Registry) GetBusiness(key string) (BusinessEntity, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b, ok := r.businesses[key]
	if !ok {
		return BusinessEntity{}, fmt.Errorf("%w: business %q", ErrNotFound, key)
	}
	return *b, nil
}

// GetService returns the service with the given key.
func (r *Registry) GetService(key string) (BusinessService, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.services[key]
	if !ok {
		return BusinessService{}, fmt.Errorf("%w: service %q", ErrNotFound, key)
	}
	return *s, nil
}

// GetBindings returns the binding templates of a service, sorted by key.
func (r *Registry) GetBindings(serviceKey string) ([]BindingTemplate, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if _, ok := r.services[serviceKey]; !ok {
		return nil, fmt.Errorf("%w: service %q", ErrNotFound, serviceKey)
	}
	var out []BindingTemplate
	for _, b := range r.bindings {
		if b.ServiceKey == serviceKey {
			out = append(out, *b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].BindingKey < out[j].BindingKey })
	return out, nil
}

// DeleteService removes a service and its bindings.
func (r *Registry) DeleteService(key string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.services[key]; !ok {
		return fmt.Errorf("%w: service %q", ErrNotFound, key)
	}
	delete(r.services, key)
	delete(r.serviceTModels, key)
	for bk, b := range r.bindings {
		if b.ServiceKey == key {
			delete(r.bindings, bk)
		}
	}
	return nil
}

// Counts reports registry sizes (businesses, services, bindings,
// tModels), used by monitoring and experiments.
func (r *Registry) Counts() (businesses, services, bindings, tmodels int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.businesses), len(r.services), len(r.bindings), len(r.tmodels)
}
