package statechart_test

import (
	"fmt"
	"reflect"
	"testing"

	"selfserv/internal/statechart"
	"selfserv/internal/workload"
)

// Property: every valid random chart survives an XML round trip with its
// structure intact, and Clone is always deep.
func TestRandomChartsXMLRoundTripAndClone(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			sc := workload.RandomChart(workload.RandomOptions{
				States: 18, MaxDepth: 4, BranchProb: 0.35, ParallelProb: 0.3, Seed: seed,
			})
			if err := statechart.Validate(sc); err != nil {
				t.Fatalf("invalid chart: %v", err)
			}

			data, err := statechart.MarshalXML(sc)
			if err != nil {
				t.Fatalf("MarshalXML: %v", err)
			}
			back, err := statechart.UnmarshalXML(data)
			if err != nil {
				t.Fatalf("UnmarshalXML: %v", err)
			}
			// Unmarshal defaults Name to ID; normalize for comparison.
			norm := sc.Clone()
			norm.Root.Walk(func(s *statechart.State) bool {
				if s.Name == "" {
					s.Name = s.ID
				}
				return true
			})
			if !reflect.DeepEqual(norm, back) {
				t.Fatalf("XML round trip changed the chart:\n%s\nvs\n%s", norm, back)
			}
			if err := statechart.Validate(back); err != nil {
				t.Fatalf("round-tripped chart invalid: %v", err)
			}

			// Clone depth: mutating the clone leaves the original intact.
			cp := sc.Clone()
			cp.Root.Walk(func(s *statechart.State) bool {
				s.ID = "mut_" + s.ID
				return true
			})
			if sc.Root.ID == cp.Root.ID {
				t.Fatal("Clone shares state")
			}
			if err := statechart.Validate(sc); err != nil {
				t.Fatalf("original corrupted by clone mutation: %v", err)
			}

			// Structural counters agree between original and round trip.
			if sc.CountStates() != back.CountStates() || sc.Depth() != back.Depth() ||
				len(sc.BasicStates()) != len(back.BasicStates()) {
				t.Fatal("structural counters diverged after round trip")
			}
		})
	}
}

// Property: Find locates exactly the states Walk visits.
func TestFindConsistentWithWalk(t *testing.T) {
	sc := workload.RandomChart(workload.RandomOptions{
		States: 20, MaxDepth: 3, BranchProb: 0.3, ParallelProb: 0.3, Seed: 99,
	})
	var ids []string
	sc.Root.Walk(func(s *statechart.State) bool {
		ids = append(ids, s.ID)
		return true
	})
	for _, id := range ids {
		got := sc.Find(id)
		if got == nil || got.ID != id {
			t.Fatalf("Find(%q) = %v", id, got)
		}
		if id != sc.Root.ID {
			if p := sc.Parent(id); p == nil || p.Child(id) == nil {
				t.Fatalf("Parent(%q) inconsistent", id)
			}
		}
	}
}
