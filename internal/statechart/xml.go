package statechart

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
)

// The XML vocabulary mirrors the paper's service editor output: the
// composite service is an XML document with nested <state> elements and
// sibling <transition> elements carrying ECA rules.
//
// Example (abbreviated travel scenario):
//
//	<statechart name="TravelPlanner">
//	  <input name="destination" type="string"/>
//	  <state id="root" kind="compound">
//	    <state id="init" kind="initial"/>
//	    <state id="DFB" kind="basic" service="DomesticFlight" operation="book">
//	      <in param="dest" var="destination"/>
//	      <out param="ref" var="flightRef"/>
//	    </state>
//	    <state id="end" kind="final"/>
//	    <transition from="init" to="DFB" condition="domestic(destination)"/>
//	    <transition from="DFB" to="end"/>
//	  </state>
//	</statechart>

type xmlChart struct {
	XMLName xml.Name   `xml:"statechart"`
	Name    string     `xml:"name,attr"`
	Inputs  []xmlParam `xml:"input"`
	Outputs []xmlParam `xml:"output"`
	Root    *xmlState  `xml:"state"`
}

type xmlParam struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr,omitempty"`
}

type xmlState struct {
	ID          string          `xml:"id,attr"`
	Name        string          `xml:"name,attr,omitempty"`
	Kind        string          `xml:"kind,attr,omitempty"`
	Service     string          `xml:"service,attr,omitempty"`
	Operation   string          `xml:"operation,attr,omitempty"`
	Inputs      []xmlBinding    `xml:"in"`
	Outputs     []xmlBinding    `xml:"out"`
	Children    []*xmlState     `xml:"state"`
	Transitions []xmlTransition `xml:"transition"`
}

type xmlBinding struct {
	Param string `xml:"param,attr"`
	Var   string `xml:"var,attr,omitempty"`
	Expr  string `xml:"expr,attr,omitempty"`
}

type xmlTransition struct {
	From      string      `xml:"from,attr"`
	To        string      `xml:"to,attr"`
	Event     string      `xml:"event,attr,omitempty"`
	Condition string      `xml:"condition,attr,omitempty"`
	Actions   []xmlAction `xml:"assign"`
}

type xmlAction struct {
	Var  string `xml:"var,attr"`
	Expr string `xml:"expr,attr"`
}

// MarshalXML encodes the statechart as an indented XML document.
func MarshalXML(sc *Statechart) ([]byte, error) {
	doc := &xmlChart{Name: sc.Name}
	for _, p := range sc.Inputs {
		doc.Inputs = append(doc.Inputs, xmlParam(p))
	}
	for _, p := range sc.Outputs {
		doc.Outputs = append(doc.Outputs, xmlParam(p))
	}
	if sc.Root != nil {
		doc.Root = toXMLState(sc.Root)
	}
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(&buf)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, fmt.Errorf("statechart: marshal %q: %w", sc.Name, err)
	}
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

func toXMLState(s *State) *xmlState {
	xs := &xmlState{
		ID:        s.ID,
		Kind:      s.Kind.String(),
		Service:   s.Service,
		Operation: s.Operation,
	}
	if s.Name != s.ID {
		xs.Name = s.Name
	}
	for _, b := range s.Inputs {
		xs.Inputs = append(xs.Inputs, xmlBinding(b))
	}
	for _, b := range s.Outputs {
		xs.Outputs = append(xs.Outputs, xmlBinding(b))
	}
	for _, c := range s.Children {
		xs.Children = append(xs.Children, toXMLState(c))
	}
	for _, t := range s.Transitions {
		xt := xmlTransition{From: t.From, To: t.To, Event: t.Event, Condition: t.Condition}
		for _, a := range t.Actions {
			xt.Actions = append(xt.Actions, xmlAction(a))
		}
		xs.Transitions = append(xs.Transitions, xt)
	}
	return xs
}

// UnmarshalXML decodes a statechart document produced by MarshalXML or by
// the (simulated) service editor. The result is not validated; call
// Validate separately so that all problems are reported together.
func UnmarshalXML(data []byte) (*Statechart, error) {
	var doc xmlChart
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("statechart: unmarshal: %w", err)
	}
	return fromXMLChart(&doc)
}

// ReadXML decodes a statechart document from r.
func ReadXML(r io.Reader) (*Statechart, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("statechart: read: %w", err)
	}
	return UnmarshalXML(data)
}

// WriteXML encodes sc to w as an indented XML document.
func WriteXML(w io.Writer, sc *Statechart) error {
	data, err := MarshalXML(sc)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

func fromXMLChart(doc *xmlChart) (*Statechart, error) {
	sc := &Statechart{Name: doc.Name}
	for _, p := range doc.Inputs {
		sc.Inputs = append(sc.Inputs, Param(p))
	}
	for _, p := range doc.Outputs {
		sc.Outputs = append(sc.Outputs, Param(p))
	}
	if doc.Root != nil {
		root, err := fromXMLState(doc.Root)
		if err != nil {
			return nil, err
		}
		sc.Root = root
	}
	return sc, nil
}

func fromXMLState(xs *xmlState) (*State, error) {
	kind, err := KindFromString(xs.Kind)
	if err != nil {
		return nil, fmt.Errorf("state %q: %w", xs.ID, err)
	}
	s := &State{
		ID:        xs.ID,
		Name:      xs.Name,
		Kind:      kind,
		Service:   xs.Service,
		Operation: xs.Operation,
	}
	if s.Name == "" {
		s.Name = s.ID
	}
	for _, b := range xs.Inputs {
		s.Inputs = append(s.Inputs, Binding(b))
	}
	for _, b := range xs.Outputs {
		s.Outputs = append(s.Outputs, Binding(b))
	}
	for _, c := range xs.Children {
		child, err := fromXMLState(c)
		if err != nil {
			return nil, err
		}
		s.Children = append(s.Children, child)
	}
	for _, t := range xs.Transitions {
		tr := Transition{From: t.From, To: t.To, Event: t.Event, Condition: t.Condition}
		for _, a := range t.Actions {
			tr.Actions = append(tr.Actions, Assignment(a))
		}
		s.Transitions = append(s.Transitions, tr)
	}
	return s, nil
}
