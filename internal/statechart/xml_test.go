package statechart

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestXMLRoundTrip(t *testing.T) {
	for name, sc := range map[string]*Statechart{
		"travel": travelChart(),
		"chain":  chain(4),
	} {
		t.Run(name, func(t *testing.T) {
			data, err := MarshalXML(sc)
			if err != nil {
				t.Fatalf("MarshalXML: %v", err)
			}
			back, err := UnmarshalXML(data)
			if err != nil {
				t.Fatalf("UnmarshalXML: %v", err)
			}
			// Unmarshal defaults Name to ID; normalize the original the same way.
			norm := sc.Clone()
			norm.Root.Walk(func(s *State) bool {
				if s.Name == "" {
					s.Name = s.ID
				}
				return true
			})
			if !reflect.DeepEqual(norm, back) {
				t.Fatalf("round trip mismatch:\noriginal: %s\nback:     %s", norm, back)
			}
			if err := Validate(back); err != nil {
				t.Fatalf("round-tripped chart invalid: %v", err)
			}
		})
	}
}

func TestXMLReaderWriter(t *testing.T) {
	sc := travelChart()
	var buf bytes.Buffer
	if err := WriteXML(&buf, sc); err != nil {
		t.Fatalf("WriteXML: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "<?xml") {
		t.Error("missing XML header")
	}
	back, err := ReadXML(&buf)
	if err != nil {
		t.Fatalf("ReadXML: %v", err)
	}
	if back.Name != "TravelPlanner" {
		t.Fatalf("Name = %q", back.Name)
	}
	if back.Find("CR") == nil {
		t.Fatal("lost CR state")
	}
}

func TestUnmarshalHandEditedDocument(t *testing.T) {
	// A document as the paper's service editor would emit it, with the
	// "and" alias for concurrent and a defaulted basic kind.
	doc := `<?xml version="1.0"?>
<statechart name="Mini">
  <input name="city" type="string"/>
  <output name="ref" type="string"/>
  <state id="root" kind="compound">
    <state id="i" kind="initial"/>
    <state id="par" kind="and">
      <state id="r1" kind="compound">
        <state id="r1i" kind="initial"/>
        <state id="book" service="Booker" operation="book">
          <in param="city" var="city"/>
          <out param="ref" var="ref"/>
        </state>
        <state id="r1f" kind="final"/>
        <transition from="r1i" to="book"/>
        <transition from="book" to="r1f"/>
      </state>
      <state id="r2" kind="compound">
        <state id="r2i" kind="initial"/>
        <state id="search" service="Searcher" operation="search">
          <in param="q" expr="'hotels in ' + city"/>
          <out param="hits" var="hits"/>
        </state>
        <state id="r2f" kind="final"/>
        <transition from="r2i" to="search"/>
        <transition from="search" to="r2f"/>
      </state>
    </state>
    <state id="f" kind="final"/>
    <transition from="i" to="par"/>
    <transition from="par" to="f">
      <assign var="done" expr="true"/>
    </transition>
  </state>
</statechart>`
	sc, err := UnmarshalXML([]byte(doc))
	if err != nil {
		t.Fatalf("UnmarshalXML: %v", err)
	}
	if err := Validate(sc); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	par := sc.Find("par")
	if par.Kind != KindConcurrent {
		t.Fatalf("par kind = %v, want concurrent", par.Kind)
	}
	book := sc.Find("book")
	if book.Kind != KindBasic {
		t.Fatalf("book kind = %v (default should be basic)", book.Kind)
	}
	search := sc.Find("search")
	if len(search.Inputs) != 1 || search.Inputs[0].Expr == "" {
		t.Fatalf("search inputs = %+v", search.Inputs)
	}
	tr := sc.Root.TransitionsFrom("par")
	if len(tr) != 1 || len(tr[0].Actions) != 1 || tr[0].Actions[0].Var != "done" {
		t.Fatalf("par transition = %+v", tr)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":      "this is not xml",
		"unknown kind": `<statechart name="x"><state id="r" kind="wat"/></statechart>`,
	}
	for name, doc := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := UnmarshalXML([]byte(doc)); err == nil {
				t.Fatal("UnmarshalXML succeeded, want error")
			}
		})
	}
}

func TestMarshalOmitsDefaults(t *testing.T) {
	sc := chain(1)
	data, err := MarshalXML(sc)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if strings.Contains(s, `name=""`) {
		t.Error("marshal emitted empty name attributes")
	}
	if strings.Contains(s, `service=""`) {
		t.Error("marshal emitted empty service attributes")
	}
}
