// Package statechart defines the declarative composition model of
// SELF-SERV: composite services are described as statecharts whose basic
// states are bound to component web services (or service communities) and
// whose transitions carry ECA-style guard conditions.
//
// The model supports the constructs used by the paper's travel scenario
// and by the ICDE'02 companion algorithms:
//
//   - basic states bound to a service operation,
//   - compound (OR) states with an initial and a final pseudo-state,
//   - concurrent (AND) states whose regions execute in parallel,
//   - guarded transitions between sibling states.
//
// Statecharts are plain data: they can be built programmatically (see
// package composer), loaded from XML (see xml.go), validated, and compiled
// into routing tables (see package routing).
package statechart

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a state.
type Kind int

// State kinds.
const (
	// KindBasic is a state bound to a component service invocation.
	KindBasic Kind = iota
	// KindInitial is the entry pseudo-state of a compound state.
	KindInitial
	// KindFinal is the exit pseudo-state of a compound state.
	KindFinal
	// KindCompound is an OR-state: exactly one child is active at a time.
	KindCompound
	// KindConcurrent is an AND-state: all regions are active in parallel.
	KindConcurrent
)

// String returns the XML attribute spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindBasic:
		return "basic"
	case KindInitial:
		return "initial"
	case KindFinal:
		return "final"
	case KindCompound:
		return "compound"
	case KindConcurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// KindFromString parses the XML spelling of a kind.
func KindFromString(s string) (Kind, error) {
	switch s {
	case "basic", "":
		return KindBasic, nil
	case "initial":
		return KindInitial, nil
	case "final":
		return KindFinal, nil
	case "compound":
		return KindCompound, nil
	case "concurrent", "and":
		return KindConcurrent, nil
	default:
		return 0, fmt.Errorf("statechart: unknown state kind %q", s)
	}
}

// Param declares a named, typed parameter of a composite service or of a
// state's service operation. Type is informational ("string", "number",
// "bool") and checked only when both sides declare it.
type Param struct {
	Name string
	Type string
}

// Binding maps a service operation parameter to a composite-service
// variable (by name) or to a constant expression.
type Binding struct {
	// Param is the name of the component operation's parameter.
	Param string
	// Var is the composite variable the parameter is wired to. Exactly one
	// of Var and Expr is set.
	Var string
	// Expr is an expression over composite variables supplying the value.
	Expr string
}

// Transition connects two sibling states inside a compound state.
type Transition struct {
	// From and To are sibling state IDs.
	From string
	To   string
	// Event is an optional event name (ECA "on" part). Empty means the
	// transition fires on completion of the source state.
	Event string
	// Condition is a guard expression; empty means always enabled.
	Condition string
	// Actions are variable assignments ("var := expr") executed when the
	// transition is taken. They run in the sender's coordinator.
	Actions []Assignment
}

// Assignment sets a composite variable from an expression.
type Assignment struct {
	Var  string
	Expr string
}

// State is a node of the statechart tree.
type State struct {
	// ID is unique within the whole statechart.
	ID string
	// Name is a human-readable label; defaults to ID.
	Name string
	// Kind classifies the state.
	Kind Kind

	// Service and Operation bind a basic state to a component service
	// (which may be a community). Unset for pseudo and composite states.
	Service   string
	Operation string
	// Inputs and Outputs wire the operation's parameters to composite
	// variables. Outputs' Var names receive the operation results.
	Inputs  []Binding
	Outputs []Binding

	// Children are the sub-states of a compound state, or the regions of a
	// concurrent state (each region must itself be a compound state).
	Children []*State
	// Transitions connect children of a compound state.
	Transitions []Transition
}

// Statechart is a complete composite-service definition.
type Statechart struct {
	// Name identifies the composite service.
	Name string
	// Inputs and Outputs declare the composite operation's signature.
	Inputs  []Param
	Outputs []Param
	// Root is the top-level compound state.
	Root *State
}

// IsPseudo reports whether the state is an initial or final pseudo-state.
func (s *State) IsPseudo() bool {
	return s.Kind == KindInitial || s.Kind == KindFinal
}

// IsComposite reports whether the state contains children.
func (s *State) IsComposite() bool {
	return s.Kind == KindCompound || s.Kind == KindConcurrent
}

// Initial returns the initial pseudo-state of a compound state, or nil.
func (s *State) Initial() *State {
	for _, c := range s.Children {
		if c.Kind == KindInitial {
			return c
		}
	}
	return nil
}

// Final returns the final pseudo-state of a compound state, or nil.
func (s *State) Final() *State {
	for _, c := range s.Children {
		if c.Kind == KindFinal {
			return c
		}
	}
	return nil
}

// Child returns the direct child with the given ID, or nil.
func (s *State) Child(id string) *State {
	for _, c := range s.Children {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// TransitionsFrom returns the transitions leaving child state id.
func (s *State) TransitionsFrom(id string) []Transition {
	var out []Transition
	for _, t := range s.Transitions {
		if t.From == id {
			out = append(out, t)
		}
	}
	return out
}

// TransitionsTo returns the transitions entering child state id.
func (s *State) TransitionsTo(id string) []Transition {
	var out []Transition
	for _, t := range s.Transitions {
		if t.To == id {
			out = append(out, t)
		}
	}
	return out
}

// Walk visits s and all descendants in depth-first pre-order. Returning
// false from fn stops descent into that subtree (but not the walk).
func (s *State) Walk(fn func(*State) bool) {
	if !fn(s) {
		return
	}
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// Find locates a state by ID anywhere in the chart, or returns nil.
func (sc *Statechart) Find(id string) *State {
	var found *State
	if sc.Root == nil {
		return nil
	}
	sc.Root.Walk(func(s *State) bool {
		if s.ID == id {
			found = s
		}
		return found == nil
	})
	return found
}

// Parent returns the parent of the state with the given ID, or nil for the
// root or an unknown ID.
func (sc *Statechart) Parent(id string) *State {
	var parent *State
	if sc.Root == nil {
		return nil
	}
	sc.Root.Walk(func(s *State) bool {
		for _, c := range s.Children {
			if c.ID == id {
				parent = s
				return false
			}
		}
		return parent == nil
	})
	return parent
}

// BasicStates returns all basic states in the chart in a deterministic
// (document) order.
func (sc *Statechart) BasicStates() []*State {
	var out []*State
	if sc.Root == nil {
		return nil
	}
	sc.Root.Walk(func(s *State) bool {
		if s.Kind == KindBasic {
			out = append(out, s)
		}
		return true
	})
	return out
}

// Services returns the distinct service names referenced by basic states,
// sorted alphabetically.
func (sc *Statechart) Services() []string {
	seen := map[string]bool{}
	for _, s := range sc.BasicStates() {
		seen[s.Service] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CountStates returns the total number of states including pseudo-states.
func (sc *Statechart) CountStates() int {
	n := 0
	if sc.Root == nil {
		return 0
	}
	sc.Root.Walk(func(*State) bool { n++; return true })
	return n
}

// Depth returns the maximum nesting depth (root = 1).
func (sc *Statechart) Depth() int {
	var depth func(s *State) int
	depth = func(s *State) int {
		best := 1
		for _, c := range s.Children {
			if d := depth(c) + 1; d > best {
				best = d
			}
		}
		return best
	}
	if sc.Root == nil {
		return 0
	}
	return depth(sc.Root)
}

// String returns a compact tree rendering useful in logs and tests.
func (sc *Statechart) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "statechart %s", sc.Name)
	var render func(s *State, indent string)
	render = func(s *State, indent string) {
		fmt.Fprintf(&sb, "\n%s%s [%s]", indent, s.ID, s.Kind)
		if s.Service != "" {
			fmt.Fprintf(&sb, " -> %s.%s", s.Service, s.Operation)
		}
		for _, c := range s.Children {
			render(c, indent+"  ")
		}
		for _, t := range s.Transitions {
			fmt.Fprintf(&sb, "\n%s  %s --[%s]--> %s", indent, t.From, t.Condition, t.To)
		}
	}
	if sc.Root != nil {
		render(sc.Root, "  ")
	}
	return sb.String()
}

// Clone returns a deep copy of the statechart. The copy shares no mutable
// state with the original, so it can be modified or deployed independently.
func (sc *Statechart) Clone() *Statechart {
	cp := &Statechart{
		Name:    sc.Name,
		Inputs:  append([]Param(nil), sc.Inputs...),
		Outputs: append([]Param(nil), sc.Outputs...),
	}
	if sc.Root != nil {
		cp.Root = cloneState(sc.Root)
	}
	return cp
}

func cloneState(s *State) *State {
	cp := &State{
		ID:        s.ID,
		Name:      s.Name,
		Kind:      s.Kind,
		Service:   s.Service,
		Operation: s.Operation,
		Inputs:    append([]Binding(nil), s.Inputs...),
		Outputs:   append([]Binding(nil), s.Outputs...),
	}
	for _, t := range s.Transitions {
		t.Actions = append([]Assignment(nil), t.Actions...)
		cp.Transitions = append(cp.Transitions, t)
	}
	for _, c := range s.Children {
		cp.Children = append(cp.Children, cloneState(c))
	}
	return cp
}
