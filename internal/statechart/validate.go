package statechart

import (
	"fmt"
	"strings"

	"selfserv/internal/expr"
)

// ValidationError aggregates all problems found in a statechart so that a
// composer sees every issue in one pass, mirroring the service editor's
// "analyse" step in the paper.
type ValidationError struct {
	Chart    string
	Problems []string
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("statechart %q is invalid:\n  - %s",
		e.Chart, strings.Join(e.Problems, "\n  - "))
}

// Validate checks the well-formedness rules the deployer relies on:
//
//   - the root exists and is a compound state;
//   - state IDs are unique and non-empty;
//   - every compound state has exactly one initial and exactly one final
//     pseudo-state, plus at least one other child;
//   - every region of a concurrent state is a compound state;
//   - basic states name a service and operation; pseudo/composite states
//     do not;
//   - transitions connect existing siblings, never start at a final state
//     nor end at an initial state; the initial state has at least one
//     outgoing transition and no incoming ones;
//   - guard conditions, binding expressions, and action expressions parse;
//   - every non-pseudo child of a compound state is reachable from the
//     initial state, and the final state is reachable from the initial
//     state;
//   - concurrent states have at least two regions (otherwise they are
//     pointless and usually a composition mistake).
//
// Validate returns nil if the chart is well-formed, otherwise a
// *ValidationError listing every problem found.
func Validate(sc *Statechart) error {
	v := &validator{chart: sc}
	v.run()
	if len(v.problems) == 0 {
		return nil
	}
	return &ValidationError{Chart: sc.Name, Problems: v.problems}
}

type validator struct {
	chart    *Statechart
	problems []string
}

func (v *validator) errorf(format string, args ...any) {
	v.problems = append(v.problems, fmt.Sprintf(format, args...))
}

func (v *validator) run() {
	sc := v.chart
	if sc.Name == "" {
		v.errorf("composite service has no name")
	}
	if sc.Root == nil {
		v.errorf("no root state")
		return
	}
	if sc.Root.Kind != KindCompound {
		v.errorf("root state %q must be compound, is %s", sc.Root.ID, sc.Root.Kind)
	}
	v.checkUniqueIDs()
	sc.Root.Walk(func(s *State) bool {
		v.checkState(s)
		return true
	})
	v.checkParams()
}

func (v *validator) checkUniqueIDs() {
	seen := map[string]bool{}
	v.chart.Root.Walk(func(s *State) bool {
		if s.ID == "" {
			v.errorf("a %s state has an empty ID", s.Kind)
			return true
		}
		if strings.HasPrefix(s.ID, "$") {
			v.errorf("state ID %q uses reserved prefix '$'", s.ID)
		}
		if seen[s.ID] {
			v.errorf("duplicate state ID %q", s.ID)
		}
		seen[s.ID] = true
		return true
	})
}

func (v *validator) checkState(s *State) {
	switch s.Kind {
	case KindBasic:
		if s.Service == "" {
			v.errorf("basic state %q names no service", s.ID)
		}
		if s.Operation == "" {
			v.errorf("basic state %q names no operation", s.ID)
		}
		if len(s.Children) > 0 {
			v.errorf("basic state %q has children", s.ID)
		}
		if len(s.Transitions) > 0 {
			v.errorf("basic state %q declares transitions (only compound states may)", s.ID)
		}
		v.checkBindings(s)
	case KindInitial, KindFinal:
		if s.Service != "" || s.Operation != "" {
			v.errorf("pseudo-state %q must not bind a service", s.ID)
		}
		if len(s.Children) > 0 || len(s.Transitions) > 0 {
			v.errorf("pseudo-state %q must be a leaf", s.ID)
		}
	case KindCompound:
		v.checkCompound(s)
	case KindConcurrent:
		v.checkConcurrent(s)
	default:
		v.errorf("state %q has unknown kind %d", s.ID, int(s.Kind))
	}
}

func (v *validator) checkBindings(s *State) {
	for _, b := range s.Inputs {
		if b.Param == "" {
			v.errorf("state %q has an input binding with no parameter name", s.ID)
		}
		if (b.Var == "") == (b.Expr == "") {
			v.errorf("state %q input %q must set exactly one of var/expr", s.ID, b.Param)
			continue
		}
		if b.Expr != "" {
			if _, err := expr.Parse(b.Expr); err != nil {
				v.errorf("state %q input %q: %v", s.ID, b.Param, err)
			}
		}
	}
	for _, b := range s.Outputs {
		if b.Param == "" {
			v.errorf("state %q has an output binding with no parameter name", s.ID)
		}
		if b.Var == "" {
			v.errorf("state %q output %q must name a target variable", s.ID, b.Param)
		}
		if b.Expr != "" {
			v.errorf("state %q output %q must not carry an expression", s.ID, b.Param)
		}
	}
}

func (v *validator) checkCompound(s *State) {
	if s.Service != "" || s.Operation != "" {
		v.errorf("compound state %q must not bind a service", s.ID)
	}
	var initials, finals, others int
	ids := map[string]*State{}
	for _, c := range s.Children {
		ids[c.ID] = c
		switch c.Kind {
		case KindInitial:
			initials++
		case KindFinal:
			finals++
		default:
			others++
		}
	}
	if initials != 1 {
		v.errorf("compound state %q has %d initial states, want exactly 1", s.ID, initials)
	}
	if finals != 1 {
		v.errorf("compound state %q has %d final states, want exactly 1", s.ID, finals)
	}
	if others == 0 {
		v.errorf("compound state %q has no working states", s.ID)
	}
	v.checkTransitions(s, ids)
	if initials == 1 && finals == 1 {
		v.checkReachability(s)
	}
}

func (v *validator) checkConcurrent(s *State) {
	if s.Service != "" || s.Operation != "" {
		v.errorf("concurrent state %q must not bind a service", s.ID)
	}
	if len(s.Transitions) > 0 {
		v.errorf("concurrent state %q must not declare transitions between regions", s.ID)
	}
	if len(s.Children) < 2 {
		v.errorf("concurrent state %q has %d regions, want at least 2", s.ID, len(s.Children))
	}
	for _, r := range s.Children {
		if r.Kind != KindCompound {
			v.errorf("region %q of concurrent state %q must be compound, is %s", r.ID, s.ID, r.Kind)
		}
	}
}

func (v *validator) checkTransitions(s *State, ids map[string]*State) {
	for i, t := range s.Transitions {
		from, okF := ids[t.From]
		to, okT := ids[t.To]
		if !okF {
			v.errorf("transition #%d in %q starts at unknown state %q", i, s.ID, t.From)
		}
		if !okT {
			v.errorf("transition #%d in %q ends at unknown state %q", i, s.ID, t.To)
		}
		if okF && from.Kind == KindFinal {
			v.errorf("transition #%d in %q starts at final state %q", i, s.ID, t.From)
		}
		if okT && to.Kind == KindInitial {
			v.errorf("transition #%d in %q ends at initial state %q", i, s.ID, t.To)
		}
		if okF && okT && from.Kind == KindInitial && to.Kind == KindFinal {
			v.errorf("transition #%d in %q short-circuits initial to final", i, s.ID)
		}
		if t.Condition != "" {
			if _, err := expr.Parse(t.Condition); err != nil {
				v.errorf("transition %s->%s in %q: %v", t.From, t.To, s.ID, err)
			}
		}
		if t.Event != "" {
			if !validEventName(t.Event) {
				v.errorf("transition %s->%s in %q has malformed event name %q", t.From, t.To, s.ID, t.Event)
			}
			if okF && from.Kind == KindInitial {
				v.errorf("transition %s->%s in %q: initial transitions must not carry events", t.From, t.To, s.ID)
			}
			if okT && to.Kind == KindFinal {
				v.errorf("transition %s->%s in %q: transitions into a final state must not carry events", t.From, t.To, s.ID)
			}
		}
		for _, a := range t.Actions {
			if a.Var == "" {
				v.errorf("transition %s->%s in %q has an action with no target variable", t.From, t.To, s.ID)
			}
			if _, err := expr.Parse(a.Expr); err != nil {
				v.errorf("transition %s->%s action %q in %q: %v", t.From, t.To, a.Var, s.ID, err)
			}
		}
	}
	if init := s.Initial(); init != nil {
		if len(s.TransitionsFrom(init.ID)) == 0 {
			v.errorf("initial state of %q has no outgoing transition", s.ID)
		}
		if len(s.TransitionsTo(init.ID)) > 0 {
			v.errorf("initial state of %q has incoming transitions", s.ID)
		}
	}
}

// checkReachability verifies that every working child and the final state
// are reachable from the initial state via transitions.
func (v *validator) checkReachability(s *State) {
	init := s.Initial()
	if init == nil {
		return
	}
	reached := map[string]bool{init.ID: true}
	frontier := []string{init.ID}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, t := range s.TransitionsFrom(cur) {
			if !reached[t.To] {
				reached[t.To] = true
				frontier = append(frontier, t.To)
			}
		}
	}
	for _, c := range s.Children {
		if c.Kind == KindInitial {
			continue
		}
		if !reached[c.ID] {
			v.errorf("state %q in %q is unreachable from the initial state", c.ID, s.ID)
		}
	}
}

// checkParams verifies the composite signature: declared parameter names
// are unique, and output variables are produced by at least one state
// output binding or transition action (a heuristic completeness check).
func (v *validator) checkParams() {
	seen := map[string]bool{}
	for _, p := range v.chart.Inputs {
		if p.Name == "" {
			v.errorf("composite input with empty name")
		}
		if seen[p.Name] {
			v.errorf("duplicate composite parameter %q", p.Name)
		}
		seen[p.Name] = true
	}
	produced := map[string]bool{}
	v.chart.Root.Walk(func(s *State) bool {
		for _, b := range s.Outputs {
			produced[b.Var] = true
		}
		for _, t := range s.Transitions {
			for _, a := range t.Actions {
				produced[a.Var] = true
			}
		}
		return true
	})
	// Inputs and outputs are separate namespaces: a name appearing in both
	// is an in-out variable threaded through the composite.
	seenOut := map[string]bool{}
	for _, p := range v.chart.Outputs {
		if p.Name == "" {
			v.errorf("composite output with empty name")
			continue
		}
		if seenOut[p.Name] {
			v.errorf("duplicate composite parameter %q", p.Name)
		}
		seenOut[p.Name] = true
		if !produced[p.Name] && !inputDeclared(v.chart, p.Name) {
			v.errorf("composite output %q is never produced by any state or action", p.Name)
		}
	}
}

// validEventName accepts identifier-shaped event names (letters, digits,
// '_', '-', '.'; must start with a letter or '_').
func validEventName(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
		case i > 0 && (r >= '0' && r <= '9' || r == '-' || r == '.'):
		default:
			return false
		}
	}
	return s != ""
}

func inputDeclared(sc *Statechart, name string) bool {
	for _, p := range sc.Inputs {
		if p.Name == name {
			return true
		}
	}
	return false
}
