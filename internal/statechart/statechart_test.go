package statechart

import (
	"strings"
	"testing"
)

// chain returns a valid linear chart: init -> s1 -> s2 -> ... -> sn -> end.
func chain(n int) *Statechart {
	root := &State{ID: "root", Kind: KindCompound}
	root.Children = append(root.Children, &State{ID: "init", Kind: KindInitial})
	prev := "init"
	for i := 1; i <= n; i++ {
		id := "s" + string(rune('0'+i))
		root.Children = append(root.Children, &State{
			ID: id, Kind: KindBasic, Service: "svc" + id, Operation: "run",
		})
		root.Transitions = append(root.Transitions, Transition{From: prev, To: id})
		prev = id
	}
	root.Children = append(root.Children, &State{ID: "end", Kind: KindFinal})
	root.Transitions = append(root.Transitions, Transition{From: prev, To: "end"})
	return &Statechart{Name: "chain", Root: root}
}

// travelChart builds the paper's Fig 2 scenario:
// init -> AND(flight-or-ITA || attractions || accommodation) -> conditional CR -> end.
func travelChart() *Statechart {
	flightRegion := &State{
		ID: "flightRegion", Kind: KindCompound,
		Children: []*State{
			{ID: "fInit", Kind: KindInitial},
			{ID: "DFB", Kind: KindBasic, Service: "DomesticFlightBooking", Operation: "book",
				Inputs:  []Binding{{Param: "dest", Var: "destination"}},
				Outputs: []Binding{{Param: "ref", Var: "flightRef"}}},
			{ID: "ITA", Kind: KindBasic, Service: "InternationalTravel", Operation: "arrange",
				Inputs:  []Binding{{Param: "dest", Var: "destination"}},
				Outputs: []Binding{{Param: "ref", Var: "flightRef"}}},
			{ID: "fEnd", Kind: KindFinal},
		},
		Transitions: []Transition{
			{From: "fInit", To: "DFB", Condition: "domestic(destination)"},
			{From: "fInit", To: "ITA", Condition: "not domestic(destination)"},
			{From: "DFB", To: "fEnd"},
			{From: "ITA", To: "fEnd"},
		},
	}
	asRegion := &State{
		ID: "asRegion", Kind: KindCompound,
		Children: []*State{
			{ID: "aInit", Kind: KindInitial},
			{ID: "AS", Kind: KindBasic, Service: "AttractionsSearch", Operation: "search",
				Inputs:  []Binding{{Param: "dest", Var: "destination"}},
				Outputs: []Binding{{Param: "top", Var: "major_attraction"}}},
			{ID: "aEnd", Kind: KindFinal},
		},
		Transitions: []Transition{
			{From: "aInit", To: "AS"},
			{From: "AS", To: "aEnd"},
		},
	}
	abRegion := &State{
		ID: "abRegion", Kind: KindCompound,
		Children: []*State{
			{ID: "bInit", Kind: KindInitial},
			{ID: "AB", Kind: KindBasic, Service: "AccommodationBooking", Operation: "book",
				Inputs:  []Binding{{Param: "dest", Var: "destination"}},
				Outputs: []Binding{{Param: "addr", Var: "accommodation"}}},
			{ID: "bEnd", Kind: KindFinal},
		},
		Transitions: []Transition{
			{From: "bInit", To: "AB"},
			{From: "AB", To: "bEnd"},
		},
	}
	par := &State{
		ID: "bookings", Kind: KindConcurrent,
		Children: []*State{flightRegion, asRegion, abRegion},
	}
	root := &State{
		ID: "root", Kind: KindCompound,
		Children: []*State{
			{ID: "init", Kind: KindInitial},
			par,
			{ID: "CR", Kind: KindBasic, Service: "CarRental", Operation: "rent",
				Inputs:  []Binding{{Param: "addr", Var: "accommodation"}},
				Outputs: []Binding{{Param: "car", Var: "car"}}},
			{ID: "end", Kind: KindFinal},
		},
		Transitions: []Transition{
			{From: "init", To: "bookings"},
			{From: "bookings", To: "CR", Condition: "not near(major_attraction, accommodation)"},
			{From: "bookings", To: "end", Condition: "near(major_attraction, accommodation)"},
			{From: "CR", To: "end"},
		},
	}
	return &Statechart{
		Name:    "TravelPlanner",
		Inputs:  []Param{{Name: "destination", Type: "string"}},
		Outputs: []Param{{Name: "flightRef", Type: "string"}, {Name: "accommodation", Type: "string"}},
		Root:    root,
	}
}

func TestValidateTravelScenario(t *testing.T) {
	sc := travelChart()
	if err := Validate(sc); err != nil {
		t.Fatalf("travel scenario should validate: %v", err)
	}
}

func TestValidateChain(t *testing.T) {
	if err := Validate(chain(3)); err != nil {
		t.Fatalf("chain should validate: %v", err)
	}
}

func TestAccessors(t *testing.T) {
	sc := travelChart()
	if got := sc.Find("AB"); got == nil || got.Service != "AccommodationBooking" {
		t.Fatalf("Find(AB) = %+v", got)
	}
	if sc.Find("nope") != nil {
		t.Fatal("Find(nope) found something")
	}
	if p := sc.Parent("AB"); p == nil || p.ID != "abRegion" {
		t.Fatalf("Parent(AB) = %v", p)
	}
	if p := sc.Parent("root"); p != nil {
		t.Fatalf("Parent(root) = %v, want nil", p)
	}
	basics := sc.BasicStates()
	if len(basics) != 5 {
		t.Fatalf("BasicStates: got %d, want 5", len(basics))
	}
	svcs := sc.Services()
	want := []string{"AccommodationBooking", "AttractionsSearch", "CarRental", "DomesticFlightBooking", "InternationalTravel"}
	if len(svcs) != len(want) {
		t.Fatalf("Services = %v, want %v", svcs, want)
	}
	for i := range want {
		if svcs[i] != want[i] {
			t.Fatalf("Services = %v, want %v", svcs, want)
		}
	}
	if d := sc.Depth(); d != 4 {
		t.Fatalf("Depth = %d, want 4", d)
	}
	if n := sc.CountStates(); n != 18 {
		t.Fatalf("CountStates = %d, want 18", n)
	}
	root := sc.Root
	if init := root.Initial(); init == nil || init.ID != "init" {
		t.Fatalf("Initial = %v", init)
	}
	if fin := root.Final(); fin == nil || fin.ID != "end" {
		t.Fatalf("Final = %v", fin)
	}
	if len(root.TransitionsFrom("bookings")) != 2 {
		t.Fatal("TransitionsFrom(bookings) != 2")
	}
	if len(root.TransitionsTo("end")) != 2 {
		t.Fatal("TransitionsTo(end) != 2")
	}
	if root.Child("CR") == nil || root.Child("AB") != nil {
		t.Fatal("Child lookup wrong (must be direct children only)")
	}
}

func TestCloneIsDeep(t *testing.T) {
	sc := travelChart()
	cp := sc.Clone()
	cp.Find("AB").Service = "Mutated"
	cp.Root.Transitions[1].Condition = "true"
	cp.Inputs[0].Name = "changed"
	if sc.Find("AB").Service != "AccommodationBooking" {
		t.Fatal("Clone shares State pointers")
	}
	if sc.Root.Transitions[1].Condition == "true" {
		t.Fatal("Clone shares transition slice")
	}
	if sc.Inputs[0].Name != "destination" {
		t.Fatal("Clone shares param slice")
	}
}

func mustInvalid(t *testing.T, sc *Statechart, wantSubstr string) {
	t.Helper()
	err := Validate(sc)
	if err == nil {
		t.Fatalf("Validate accepted invalid chart (want %q)", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("Validate error %q does not mention %q", err, wantSubstr)
	}
}

func TestValidateRejections(t *testing.T) {
	t.Run("no root", func(t *testing.T) {
		mustInvalid(t, &Statechart{Name: "x"}, "no root state")
	})
	t.Run("no name", func(t *testing.T) {
		sc := chain(1)
		sc.Name = ""
		mustInvalid(t, sc, "no name")
	})
	t.Run("root not compound", func(t *testing.T) {
		mustInvalid(t, &Statechart{Name: "x", Root: &State{ID: "r", Kind: KindBasic, Service: "s", Operation: "o"}}, "must be compound")
	})
	t.Run("duplicate ids", func(t *testing.T) {
		sc := chain(2)
		sc.Root.Children[1].ID = "s2"
		sc.Root.Transitions[0].To = "s2"
		mustInvalid(t, sc, "duplicate state ID")
	})
	t.Run("reserved id", func(t *testing.T) {
		sc := chain(1)
		sc.Root.Children[1].ID = "$bad"
		sc.Root.Transitions[0].To = "$bad"
		sc.Root.Transitions[1].From = "$bad"
		mustInvalid(t, sc, "reserved prefix")
	})
	t.Run("basic without service", func(t *testing.T) {
		sc := chain(1)
		sc.Root.Children[1].Service = ""
		mustInvalid(t, sc, "names no service")
	})
	t.Run("basic without operation", func(t *testing.T) {
		sc := chain(1)
		sc.Root.Children[1].Operation = ""
		mustInvalid(t, sc, "names no operation")
	})
	t.Run("two initials", func(t *testing.T) {
		sc := chain(1)
		sc.Root.Children = append(sc.Root.Children, &State{ID: "init2", Kind: KindInitial})
		mustInvalid(t, sc, "initial states")
	})
	t.Run("no final", func(t *testing.T) {
		sc := chain(1)
		var kept []*State
		for _, c := range sc.Root.Children {
			if c.Kind != KindFinal {
				kept = append(kept, c)
			}
		}
		sc.Root.Children = kept
		mustInvalid(t, sc, "final states")
	})
	t.Run("unknown transition target", func(t *testing.T) {
		sc := chain(1)
		sc.Root.Transitions = append(sc.Root.Transitions, Transition{From: "s1", To: "ghost"})
		mustInvalid(t, sc, "unknown state")
	})
	t.Run("transition from final", func(t *testing.T) {
		sc := chain(1)
		sc.Root.Transitions = append(sc.Root.Transitions, Transition{From: "end", To: "s1"})
		mustInvalid(t, sc, "starts at final")
	})
	t.Run("transition into initial", func(t *testing.T) {
		sc := chain(1)
		sc.Root.Transitions = append(sc.Root.Transitions, Transition{From: "s1", To: "init"})
		mustInvalid(t, sc, "incoming transitions")
	})
	t.Run("bad guard", func(t *testing.T) {
		sc := chain(1)
		sc.Root.Transitions[0].Condition = "((("
		mustInvalid(t, sc, "syntax error")
	})
	t.Run("bad action", func(t *testing.T) {
		sc := chain(1)
		sc.Root.Transitions[0].Actions = []Assignment{{Var: "x", Expr: "1 +"}}
		mustInvalid(t, sc, "syntax error")
	})
	t.Run("action without var", func(t *testing.T) {
		sc := chain(1)
		sc.Root.Transitions[0].Actions = []Assignment{{Var: "", Expr: "1"}}
		mustInvalid(t, sc, "no target variable")
	})
	t.Run("unreachable state", func(t *testing.T) {
		sc := chain(2)
		// Remove s1 -> s2, leaving s2 unreachable (but keep s2 -> end).
		var kept []Transition
		for _, tr := range sc.Root.Transitions {
			if !(tr.From == "s1" && tr.To == "s2") {
				kept = append(kept, tr)
			}
		}
		sc.Root.Transitions = append(kept, Transition{From: "s1", To: "end"})
		mustInvalid(t, sc, "unreachable")
	})
	t.Run("concurrent with one region", func(t *testing.T) {
		inner := chain(1).Root
		inner.ID = "region1"
		sc := &Statechart{Name: "x", Root: &State{
			ID: "root", Kind: KindCompound,
			Children: []*State{
				{ID: "init", Kind: KindInitial},
				{ID: "par", Kind: KindConcurrent, Children: []*State{inner}},
				{ID: "end", Kind: KindFinal},
			},
			Transitions: []Transition{{From: "init", To: "par"}, {From: "par", To: "end"}},
		}}
		mustInvalid(t, sc, "regions, want at least 2")
	})
	t.Run("region not compound", func(t *testing.T) {
		sc := &Statechart{Name: "x", Root: &State{
			ID: "root", Kind: KindCompound,
			Children: []*State{
				{ID: "init", Kind: KindInitial},
				{ID: "par", Kind: KindConcurrent, Children: []*State{
					{ID: "r1", Kind: KindBasic, Service: "s", Operation: "o"},
					{ID: "r2", Kind: KindBasic, Service: "s", Operation: "o"},
				}},
				{ID: "end", Kind: KindFinal},
			},
			Transitions: []Transition{{From: "init", To: "par"}, {From: "par", To: "end"}},
		}}
		mustInvalid(t, sc, "must be compound")
	})
	t.Run("pseudo with service", func(t *testing.T) {
		sc := chain(1)
		sc.Root.Children[0].Service = "oops"
		mustInvalid(t, sc, "must not bind a service")
	})
	t.Run("input binding both var and expr", func(t *testing.T) {
		sc := chain(1)
		sc.Root.Children[1].Inputs = []Binding{{Param: "p", Var: "v", Expr: "1"}}
		mustInvalid(t, sc, "exactly one of var/expr")
	})
	t.Run("output binding without var", func(t *testing.T) {
		sc := chain(1)
		sc.Root.Children[1].Outputs = []Binding{{Param: "p"}}
		mustInvalid(t, sc, "target variable")
	})
	t.Run("output never produced", func(t *testing.T) {
		sc := chain(1)
		sc.Outputs = []Param{{Name: "ghostOutput"}}
		mustInvalid(t, sc, "never produced")
	})
	t.Run("duplicate params", func(t *testing.T) {
		sc := chain(1)
		sc.Inputs = []Param{{Name: "a"}, {Name: "a"}}
		mustInvalid(t, sc, "duplicate composite parameter")
	})
	t.Run("initial without outgoing", func(t *testing.T) {
		sc := chain(1)
		sc.Root.Transitions = []Transition{{From: "s1", To: "end"}}
		mustInvalid(t, sc, "no outgoing transition")
	})
}

func TestValidationErrorListsAllProblems(t *testing.T) {
	sc := chain(1)
	sc.Name = ""
	sc.Root.Children[1].Service = ""
	sc.Root.Children[1].Operation = ""
	err := Validate(sc)
	if err == nil {
		t.Fatal("want error")
	}
	ve, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("error type %T, want *ValidationError", err)
	}
	if len(ve.Problems) < 3 {
		t.Fatalf("got %d problems, want >= 3: %v", len(ve.Problems), ve.Problems)
	}
}

func TestStringRendering(t *testing.T) {
	s := travelChart().String()
	for _, want := range []string{"TravelPlanner", "DFB", "CarRental.rent", "domestic(destination)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}
