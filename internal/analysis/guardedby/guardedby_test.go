package guardedby_test

import (
	"testing"

	"selfserv/internal/analysis/analysistest"
	"selfserv/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, "testdata/src", guardedby.Analyzer, "guardedby")
}
