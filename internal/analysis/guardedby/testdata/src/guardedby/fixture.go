// Fixture for the guardedby analyzer: the `guards everything below`
// convention from internal/engine's coordInstance/wrapperInstance,
// including every sanctioned way around it (Locked-suffix helpers,
// "caller holds" docs, fresh objects, fields above the mutex, and the
// escape comment).
package guardedby

import "sync"

type counter struct {
	id string // above the mutex: not guarded, lock-free by design

	mu sync.Mutex // guards everything below
	n  int
	m  map[string]int
}

func (c *counter) ok() {
	c.mu.Lock()
	c.n++
	c.m["x"] = c.n
	c.mu.Unlock()
}

func (c *counter) okDefer() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) okAboveMutex() string {
	return c.id // declared above mu: unguarded on purpose
}

func (c *counter) okBranchRelease(stop bool) {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return
	}
	c.n++
	c.mu.Unlock()
}

func (c *counter) badRead() int {
	return c.n // want `read of c.n without holding c.mu`
}

func (c *counter) badWrite() {
	c.n = 1 // want `write to c.n without holding c.mu`
}

func (c *counter) badMapWrite() {
	c.m["x"] = 1 // want `write to c.m without holding c.mu`
}

func (c *counter) badAfterUnlock() int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.n // want `read of c.n without holding c.mu`
}

// bumpLocked is exempt by the *Locked naming convention.
func (c *counter) bumpLocked() { c.n++ }

// applyDelta folds one delta into the counter. Caller holds c.mu.
func (c *counter) applyDelta(d int) { c.n += d }

// newCounter writes fields of a fresh, unshared object: no lock needed.
func newCounter() *counter {
	c := &counter{m: map[string]int{}}
	c.n = 1
	return c
}

// snapshot reads lock-free on purpose, with the documented escape.
func (c *counter) snapshot() int {
	//selfservvet:ignore guardedby -- monitoring snapshot; a stale read is acceptable
	return c.n
}

type rwbox struct {
	mu sync.RWMutex // guards everything below
	v  int
}

func (b *rwbox) okRead() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.v
}

func (b *rwbox) okWrite(v int) {
	b.mu.Lock()
	b.v = v
	b.mu.Unlock()
}

func (b *rwbox) badWriteUnderRLock() {
	b.mu.RLock()
	b.v = 1 // want `write to b.v while holding only b.mu.RLock`
	b.mu.RUnlock()
}

// applyWrapped bumps the counter. Like real code, its doc wraps: Caller
// holds c.mu across a line break, and the exemption must still match.
func (c *counter) applyWrapped(d int) {
	c.n += d
}
