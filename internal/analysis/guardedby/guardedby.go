// Package guardedby enforces the repo's `// guards everything below`
// mutex convention: every struct field declared after a mutex carrying
// that comment may only be read while the same object's mutex is held,
// and only written under the full (write) lock.
//
// The check is intra-procedural. Helper functions that run with the
// lock already held declare it the way the codebase always has: a name
// ending in "Locked", or a doc comment containing "caller holds".
// Intentionally lock-free accesses (copy-on-write snapshots, immutable
// post-publication fields) carry a
// `//selfservvet:ignore guardedby -- <reason>` escape comment — or,
// better, move above the mutex field so they are not in the guarded
// region at all.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"selfserv/internal/analysis/framework"
	"selfserv/internal/analysis/locks"
)

// Analyzer is the guardedby check.
var Analyzer = &framework.Analyzer{
	Name: "guardedby",
	Doc: "check that fields below a 'guards everything below' mutex are accessed under it\n\n" +
		"Reads require the mutex (RLock suffices for sync.RWMutex); " +
		"writes require the full lock. Functions named *Locked or " +
		"documented 'caller holds ...' are exempt.",
	Run: run,
}

// Annotation is the comment marker that arms the check for a mutex
// field.
const Annotation = "guards everything below"

func run(pass *framework.Pass) error {
	guards := map[*types.Var]*locks.MutexField{} // guarded field -> its mutex
	fields := locks.MutexFields(pass.TypesInfo, pass.Files)
	for i := range fields {
		mf := &fields[i]
		if !strings.Contains(mf.Comment, Annotation) {
			continue
		}
		for _, below := range mf.Below {
			guards[below] = mf
		}
	}
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if exemptFunc(fn) {
				continue
			}
			checkFunc(pass, guards, fn)
		}
	}
	return nil
}

// exemptFunc reports the two caller-holds-the-lock conventions.
func exemptFunc(fn *ast.FuncDecl) bool {
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		return true
	}
	if fn.Doc == nil {
		return false
	}
	// Normalize line wrapping: "Caller\nholds inst.mu." must match.
	doc := strings.Join(strings.Fields(strings.ToLower(fn.Doc.Text())), " ")
	return strings.Contains(doc, "caller holds")
}

func checkFunc(pass *framework.Pass, guards map[*types.Var]*locks.MutexField, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	writes := writeTargets(fn.Body)
	fresh := freshIdents(info, fn.Body)

	w := &locks.Walker{
		Info: info,
		Visit: func(n ast.Node, held []locks.Held) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			obj, _ := info.Uses[sel.Sel].(*types.Var)
			if obj == nil {
				return
			}
			mf, guarded := guards[obj]
			if !guarded {
				return
			}
			// A freshly constructed, not-yet-shared object needs no
			// locking.
			if base, ok := sel.X.(*ast.Ident); ok {
				if bo := info.Uses[base]; bo != nil && fresh[bo] {
					return
				}
			}
			key := locks.ExprKey(sel.X) + "." + mf.Field.Name()
			isWrite := writes[sel]
			for _, h := range held {
				if h.Key != key {
					continue
				}
				if isWrite && h.RLock {
					pass.Reportf(sel.Pos(),
						"write to %s.%s while holding only %s.RLock (field is below %q — writes need the full lock)",
						locks.ExprKey(sel.X), obj.Name(), key, Annotation)
				}
				return
			}
			what := "read of"
			if isWrite {
				what = "write to"
			}
			pass.Reportf(sel.Pos(),
				"%s %s.%s without holding %s (field is below the %q mutex)",
				what, locks.ExprKey(sel.X), obj.Name(), key, Annotation)
		},
	}
	w.Walk(fn.Body)
}

// writeTargets collects the selector expressions that are assignment
// targets, inc/dec operands, or have their address taken — the accesses
// that need the full lock.
func writeTargets(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	writes := map[*ast.SelectorExpr]bool{}
	mark := func(e ast.Expr) {
		// Unwrap element/deref chains: s.m[id] = v and *p.f = v both
		// mutate through the base selector.
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SelectorExpr:
				writes[x] = true
				return
			default:
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
		return true
	})
	return writes
}

// freshIdents finds local variables bound to a composite literal in
// this function: objects that cannot be shared yet, so their fields
// need no lock.
func freshIdents(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if !isCompositeLit(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					fresh[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

func isCompositeLit(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := e.X.(*ast.CompositeLit)
			return ok
		}
	}
	return false
}
