// Package reservedvar protects the engine's reserved dataflow
// namespace. '$'-prefixed variables (engine.TenantVar and friends) are
// engine metadata: they ride notifications, are stripped before
// provider invocation, and are matched by name in the admission path.
// A string literal like "$tenant" outside internal/engine silently
// recreates that coupling by value — a rename of the constant, or a
// typo ("$Tenant"), then routes traffic to the wrong tenant bucket.
// Everyone else imports the constant.
package reservedvar

import (
	"go/ast"
	"go/token"
	"strconv"

	"selfserv/internal/analysis/framework"
	"selfserv/internal/engine"
)

// EnginePath is the one package allowed to spell reserved names as
// literals: the package that defines them.
const EnginePath = "selfserv/internal/engine"

// Reserved maps each reserved dataflow variable literal to the
// constant that must be used instead. Grows with the engine's reserved
// namespace.
var Reserved = map[string]string{
	engine.TenantVar: "engine.TenantVar",
}

// Analyzer is the reservedvar check.
var Analyzer = &framework.Analyzer{
	Name: "reservedvar",
	Doc: "check that reserved dataflow variable names are spelled via their engine constants\n\n" +
		"String literals colliding with engine.TenantVar (and future " +
		"reserved '$'-names) outside internal/engine must use the " +
		"constant, so renames and admission-path matching stay coupled.",
	Run: run,
}

func run(pass *framework.Pass) error {
	if pass.Pkg.Path() == EnginePath {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if constName, reserved := Reserved[s]; reserved {
				pass.Reportf(lit.Pos(),
					"string literal %q collides with the reserved dataflow variable %s: use the constant",
					s, constName)
			}
			return true
		})
	}
	return nil
}
