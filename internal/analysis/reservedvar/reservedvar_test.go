package reservedvar_test

import (
	"testing"

	"selfserv/internal/analysis/analysistest"
	"selfserv/internal/analysis/reservedvar"
	"selfserv/internal/engine"
)

func TestReservedVar(t *testing.T) {
	analysistest.Run(t, "testdata/src", reservedvar.Analyzer,
		"reservedvar", "selfserv/internal/engine")
}

// TestReservedListCoversEngine pins the analyzer's reserved set to the
// engine's real constants: a new reserved name added to the engine
// without a matching analyzer entry fails here.
func TestReservedListCoversEngine(t *testing.T) {
	if _, ok := reservedvar.Reserved[engine.TenantVar]; !ok {
		t.Fatalf("reservedvar.Reserved is missing engine.TenantVar (%q)", engine.TenantVar)
	}
}
