// The defining package is exempt: internal/engine is where reserved
// names are spelled as literals, once.
package engine

// TenantVar mirrors the real engine constant; the analyzer keys the
// exemption on the package path, so this literal is allowed.
const TenantVar = "$tenant"

func ok() string { return "$tenant" }
