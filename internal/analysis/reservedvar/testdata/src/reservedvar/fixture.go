// Fixture for the reservedvar analyzer: reserved dataflow names are
// spelled via their engine constants outside internal/engine.
package reservedvar

func badLiteral() string {
	return "$tenant" // want `string literal "\$tenant" collides with the reserved dataflow variable engine.TenantVar`
}

func badMapKey() map[string]string {
	return map[string]string{"$tenant": "acme"} // want `collides with the reserved dataflow variable`
}

func okOtherDollar() string {
	return "$other" // not reserved: user dataflow variables are fair game
}

func okPlain() string { return "tenant" }

// escapedDocExample renders the literal for humans, on purpose.
func escapedDocExample() string {
	return "$tenant" //selfservvet:ignore reservedvar -- CLI help text showing the literal syntax
}
