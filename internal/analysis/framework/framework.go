// Package framework is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis core: enough Analyzer/Pass/
// Diagnostic surface for selfservvet's repo-specific checkers, plus a
// loader (load.go) that type-checks module packages offline via
// `go list -export` and the gc export-data importer, and a driver
// (run.go) that applies analyzers and filters `//selfservvet:ignore`
// escape comments.
//
// The API deliberately mirrors go/analysis field-for-field so the
// analyzers port to the real framework mechanically if the module ever
// grows a golang.org/x/tools dependency; the build environment for this
// repo is offline-first, so the module stays stdlib-only instead
// (ROADMAP "dependency-free" stance, docs/static-analysis.md).
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Mirrors analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//selfservvet:ignore <name>` escape comments. Lowercase, no
	// spaces.
	Name string

	// Doc is the help text: first line is the one-line summary.
	Doc string

	// Run applies the analyzer to one package, reporting findings via
	// pass.Report/Reportf. The return error is for operational failures
	// (a finding is never an error).
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass carries one package's parsed-and-typed representation to an
// analyzer. Mirrors the analysis.Pass fields the suite needs.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report emits one diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
