package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// TestVariant reports a `pkg [pkg.test]`-style package: the same
	// import path recompiled with its _test.go files. Diagnostics in
	// non-test files of a variant duplicate the base package's and are
	// deduplicated by the runner.
	TestVariant bool
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	ForTest    string
	Standard   bool
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct{ Err string }
}

// goList runs `go list` in dir with the given extra arguments and
// decodes the JSON package stream.
func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e",
		"-json=ImportPath,Dir,Name,Export,GoFiles,CgoFiles,ImportMap,ForTest,Standard,Module,Error"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup adapts an importPath→export-data-file map (with an
// optional per-package ImportMap indirection) into the lookup function
// the gc importer wants.
func exportLookup(exports map[string]string, importMap map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
}

// newInfo allocates a types.Info with every map an analyzer may need.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// LoadPackages loads and type-checks every package of the main module
// matched by patterns (run from dir), using build-cache export data for
// dependencies so the whole load works offline. With includeTests the
// `pkg [pkg.test]` variants (in-package _test.go files) and external
// `pkg_test` packages are loaded too; generated `.test` mains never are.
func LoadPackages(dir string, patterns []string, includeTests bool) ([]*Package, error) {
	args := []string{"-export", "-deps"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	var out []*Package
	for _, p := range listed {
		if p.Module == nil || !p.Module.Main || p.Error != nil {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // generated test main
		}
		if len(p.CgoFiles) > 0 {
			// Cgo packages need generated sources; none exist in this
			// module, so skipping is a guard, not a gap.
			continue
		}
		pkg, err := typecheck(fset, p, exports)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.ImportPath, err)
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// typecheck parses p's files and type-checks them against dependency
// export data.
func typecheck(fset *token.FileSet, p *listPkg, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, g := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, g), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", exportLookup(exports, p.ImportMap)),
	}
	tpkg, err := conf.Check(strings.TrimSuffix(p.ImportPath, " ["+p.ForTest+".test]"), fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath:  p.ImportPath,
		Dir:         p.Dir,
		Fset:        fset,
		Files:       files,
		Types:       tpkg,
		TypesInfo:   info,
		TestVariant: p.ForTest != "",
	}, nil
}

// fixtureImporter resolves imports for analysistest fixtures: import
// paths that exist as directories under the fixture source root are
// type-checked from source (recursively); everything else resolves
// through build-cache export data fetched on demand with
// `go list -export`.
type fixtureImporter struct {
	root string // the testdata/src directory
	fset *token.FileSet

	mu      sync.Mutex
	source  map[string]*Package // fixture packages by import path
	exports map[string]string   // export data files by import path
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, err := fi.load(path); err != nil {
		return nil, err
	} else if pkg != nil {
		return pkg.Types, nil
	}
	// Not a fixture package: resolve via export data, pulling the
	// package (and its deps) into the cache on first sight.
	fi.mu.Lock()
	_, known := fi.exports[path]
	fi.mu.Unlock()
	if !known {
		listed, err := goList(fi.root, "-export", "-deps", path)
		if err != nil {
			return nil, err
		}
		fi.mu.Lock()
		for _, p := range listed {
			if p.Export != "" {
				fi.exports[p.ImportPath] = p.Export
			}
		}
		fi.mu.Unlock()
	}
	imp := importer.ForCompiler(fi.fset, "gc", exportLookup(fi.exports, nil))
	return imp.Import(path)
}

// load type-checks the fixture package at path (a directory under the
// fixture root), returning (nil, nil) when no such directory exists.
func (fi *fixtureImporter) load(path string) (*Package, error) {
	fi.mu.Lock()
	cached, ok := fi.source[path]
	fi.mu.Unlock()
	if ok {
		if cached == nil {
			return nil, fmt.Errorf("import cycle through fixture package %q", path)
		}
		return cached, nil
	}
	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil // not a fixture package
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fi.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	fi.mu.Lock()
	fi.source[path] = nil // cycle marker
	fi.mu.Unlock()
	info := newInfo()
	conf := types.Config{Importer: fi}
	tpkg, err := conf.Check(path, fi.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("fixture %s: %w", path, err)
	}
	pkg := &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       fi.fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	fi.mu.Lock()
	fi.source[path] = pkg
	fi.mu.Unlock()
	return pkg, nil
}

// LoadFixture type-checks the fixture package at srcRoot/<importPath>
// (analysistest layout: testdata/src/<importPath>/*.go). Imports of
// sibling fixture packages load from source; stdlib imports load from
// build-cache export data.
func LoadFixture(srcRoot, importPath string) (*Package, error) {
	fi := &fixtureImporter{
		root:    srcRoot,
		fset:    token.NewFileSet(),
		source:  map[string]*Package{},
		exports: map[string]string{},
	}
	pkg, err := fi.load(importPath)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("no fixture package at %s", filepath.Join(srcRoot, importPath))
	}
	return pkg, nil
}
