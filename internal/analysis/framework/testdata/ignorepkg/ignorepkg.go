// Package ignorepkg exercises the escape-comment filter in
// framework_test.go.
package ignorepkg

//selfservvet:ignore flagfunc -- test fixture: waived on purpose
func waived() {}

func kept() {}

//selfservvet:ignore flagfunc
func reasonless() {}
