package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one resolved diagnostic: position made concrete, analyzer
// attached, escape comments already applied.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// IgnorePrefix starts an escape comment. The full syntax is
//
//	//selfservvet:ignore <analyzer>[,<analyzer>...] -- <reason>
//
// placed on the flagged line or on the line directly above it. The
// reason is mandatory: an ignore without one is itself reported (the
// escape hatch documents WHY an invariant is waived, or it is noise).
const IgnorePrefix = "selfservvet:ignore"

var ignoreRe = regexp.MustCompile(`^selfservvet:ignore\s+([\w,\s]+?)\s+--\s+(\S.*)$`)

// ignoreIndex records, per file line, which analyzers are waived.
type ignoreIndex map[string]map[int]map[string]bool

// buildIgnoreIndex scans a package's comments for escape directives.
// Malformed directives (no analyzer list or no reason) are returned as
// findings so they fail the lint run instead of silently waiving
// nothing.
func buildIgnoreIndex(pkg *Package) (ignoreIndex, []Finding) {
	idx := ignoreIndex{}
	var bad []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, IgnorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := ignoreRe.FindStringSubmatch(text)
				if m == nil {
					bad = append(bad, Finding{
						Analyzer: "selfservvet",
						Pos:      pos,
						Message:  fmt.Sprintf("malformed escape comment: want //%s <analyzer>[,<analyzer>] -- <reason>", IgnorePrefix),
					})
					continue
				}
				lines := idx[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					idx[pos.Filename] = lines
				}
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					// The directive waives its own line and the next:
					// inline form covers the former, standalone form the
					// latter.
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if lines[line] == nil {
							lines[line] = map[string]bool{}
						}
						lines[line][name] = true
					}
				}
			}
		}
	}
	return idx, bad
}

func (idx ignoreIndex) ignored(f Finding) bool {
	lines, ok := idx[f.Pos.Filename]
	if !ok {
		return false
	}
	return lines[f.Pos.Line][f.Analyzer]
}

// Run applies every analyzer to every package, resolves positions,
// filters escape-commented findings, deduplicates across test-variant
// recompiles, and returns the remainder sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var all []Finding
	seen := map[string]bool{}
	add := func(f Finding) {
		key := f.Pos.String() + "\x00" + f.Analyzer + "\x00" + f.Message
		if !seen[key] {
			seen[key] = true
			all = append(all, f)
		}
	}
	for _, pkg := range pkgs {
		idx, bad := buildIgnoreIndex(pkg)
		for _, f := range bad {
			add(f)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			var diags []Diagnostic
			pass.report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
			for _, d := range diags {
				f := Finding{Analyzer: a.Name, Pos: pkg.Fset.Position(d.Pos), Message: d.Message}
				if !idx.ignored(f) {
					add(f)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return all, nil
}

// CommentText returns the raw text of every comment in the group,
// joined — a convenience for analyzers matching annotations like
// "guards everything below" in field trailers or doc comments.
func CommentText(groups ...*ast.CommentGroup) string {
	var b strings.Builder
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			b.WriteString(c.Text)
			b.WriteString("\n")
		}
	}
	return b.String()
}
