package framework_test

import (
	"go/ast"
	"strings"
	"testing"

	"selfserv/internal/analysis/framework"
)

// TestLoadPackagesOffline pins the loader contract everything else
// stands on: a module package type-checks from build-cache export data
// alone, with comments preserved for the annotation-driven analyzers.
func TestLoadPackagesOffline(t *testing.T) {
	pkgs, err := framework.LoadPackages("../../..", []string{"./internal/analysis/framework"}, false)
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Types == nil || p.TypesInfo == nil || len(p.Files) == 0 {
		t.Fatalf("package %s loaded without types or files", p.ImportPath)
	}
	if p.Types.Scope().Lookup("Analyzer") == nil {
		t.Errorf("type-checked scope is missing the Analyzer type")
	}
	hasComments := false
	for _, f := range p.Files {
		if len(f.Comments) > 0 {
			hasComments = true
		}
	}
	if !hasComments {
		t.Errorf("files parsed without comments; annotation analyzers would be blind")
	}
}

// TestLoadPackagesTestVariants: with tests included, the _test.go files
// of a package are loaded (as the `pkg [pkg.test]` variant) so
// invariants hold in test helpers too.
func TestLoadPackagesTestVariants(t *testing.T) {
	pkgs, err := framework.LoadPackages("../../..", []string{"./internal/analysis/framework"}, true)
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	sawVariant := false
	for _, p := range pkgs {
		if p.TestVariant {
			sawVariant = true
			found := false
			for _, f := range p.Files {
				name := p.Fset.Position(f.Package).Filename
				if strings.HasSuffix(name, "_test.go") {
					found = true
				}
			}
			if !found {
				t.Errorf("test variant %s has no _test.go files", p.ImportPath)
			}
		}
	}
	if !sawVariant {
		t.Fatalf("no test-variant package loaded for a package that has tests")
	}
}

// TestIgnoreFilter pins the escape-hatch semantics: a reasoned ignore
// suppresses its analyzer on that line (and the next), a reasonless one
// is itself a finding.
func TestIgnoreFilter(t *testing.T) {
	pkgs, err := framework.LoadPackages("../../..", []string{"./internal/analysis/framework/testdata/ignorepkg"}, false)
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	flagEveryFunc := &framework.Analyzer{
		Name: "flagfunc",
		Doc:  "test analyzer: flags every function declaration",
		Run: func(pass *framework.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fn, ok := d.(*ast.FuncDecl); ok {
						pass.Reportf(fn.Pos(), "function %s flagged", fn.Name.Name)
					}
				}
			}
			return nil
		},
	}
	findings, err := framework.Run(pkgs, []*framework.Analyzer{flagEveryFunc})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var msgs []string
	for _, f := range findings {
		msgs = append(msgs, f.Analyzer+": "+f.Message)
	}
	joined := strings.Join(msgs, "\n")
	if strings.Contains(joined, "function waived flagged") {
		t.Errorf("escape comment did not suppress the finding:\n%s", joined)
	}
	if !strings.Contains(joined, "function kept flagged") {
		t.Errorf("unwaived finding went missing:\n%s", joined)
	}
	if !strings.Contains(joined, "selfservvet: malformed escape comment") {
		t.Errorf("reasonless ignore was not reported:\n%s", joined)
	}
}
