package sentinelerr_test

import (
	"testing"

	"selfserv/internal/analysis/analysistest"
	"selfserv/internal/analysis/sentinelerr"
)

func TestSentinelErr(t *testing.T) {
	analysistest.Run(t, "testdata/src", sentinelerr.Analyzer, "sentinelerr")
}
