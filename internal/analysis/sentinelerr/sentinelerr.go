// Package sentinelerr enforces the transport/circuit/limits error
// contract (docs/transport.md): sentinel errors travel WRAPPED —
// transport.ErrQueueFull arrives as fmt.Errorf("...: %w", ErrQueueFull),
// circuit.ErrOpen as "%w for another 2s" — so matching them with == or
// != silently never fires. Two rules:
//
//  1. A direct ==/!= (or switch-case) comparison against a
//     package-level error variable must be errors.Is. Sentinels from
//     package io are exempt: io.EOF is documented to be returned
//     unwrapped and == is its idiom.
//
//  2. fmt.Errorf with an error-typed argument but no %w verb in the
//     format drops the chain: errors.Is stops working downstream. A
//     deliberate chain break carries an escape comment.
package sentinelerr

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"selfserv/internal/analysis/framework"
)

// Analyzer is the sentinelerr check.
var Analyzer = &framework.Analyzer{
	Name: "sentinelerr",
	Doc: "check that sentinel errors are matched with errors.Is and wrapped with %w\n\n" +
		"Direct ==/!=/switch-case comparison against a package-level error " +
		"variable never matches a wrapped error; fmt.Errorf without %w " +
		"breaks the errors.Is chain.",
	Run: run,
}

func run(pass *framework.Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isNil(info, n.X) || isNil(info, n.Y) {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if s := sentinelVar(info, side); s != nil {
						pass.Reportf(n.Pos(),
							"%s compared with %s: sentinel errors arrive wrapped — use errors.Is(err, %s)",
							s.Name(), n.Op, s.Name())
						break
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorType(info.Types[n.Tag].Type) {
					return true
				}
				for _, cs := range n.Body.List {
					cc, ok := cs.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, v := range cc.List {
						if s := sentinelVar(info, v); s != nil {
							pass.Reportf(v.Pos(),
								"switch-case on sentinel %s compares with ==: use errors.Is(err, %s)",
								s.Name(), s.Name())
						}
					}
				}
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil
}

// sentinelVar resolves e to a package-level error-typed variable — a
// sentinel. Package io is exempt (io.EOF is returned unwrapped by
// contract).
func sentinelVar(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() == "io" {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // not package-level
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

// isErrorType matches the error interface itself (sentinels are
// declared `var ErrX = errors.New(...)`, statically typed error).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Identical(iface, errorIface)
}

// checkErrorf flags fmt.Errorf calls that take an error argument but do
// not wrap it with %w.
func checkErrorf(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	errorT := types.Universe.Lookup("error").Type()
	for _, arg := range call.Args[1:] {
		at := pass.TypesInfo.Types[arg].Type
		if at == nil {
			continue
		}
		if types.AssignableTo(at, errorT) && !isNilType(at) {
			pass.Reportf(call.Pos(),
				"fmt.Errorf formats an error without %%w: downstream errors.Is/errors.As stop matching — wrap with %%w (or escape-comment a deliberate chain break)")
			return
		}
	}
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

func isNilType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
