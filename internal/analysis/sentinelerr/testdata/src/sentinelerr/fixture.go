// Fixture for the sentinelerr analyzer: the transport/circuit/limits
// sentinel contract. Sentinels arrive wrapped, so ==/!=/switch-case
// never match them, and fmt.Errorf without %w breaks the chain.
package sentinelerr

import (
	"errors"
	"fmt"
	"io"

	"dep"
)

var ErrFull = errors.New("queue full")

func badEq(err error) bool {
	return err == ErrFull // want `ErrFull compared with ==: sentinel errors arrive wrapped`
}

func badNeq(err error) bool {
	return err != ErrFull // want `ErrFull compared with !=`
}

func badCrossPackage(err error) bool {
	return err == dep.ErrRemote // want `ErrRemote compared with ==`
}

func badSwitch(err error) string {
	switch err {
	case ErrFull: // want `switch-case on sentinel ErrFull compares with ==`
		return "full"
	case nil:
		return "ok"
	}
	return "other"
}

func okIs(err error) bool {
	return errors.Is(err, ErrFull)
}

func okNil(err error) bool { return err == nil }

// okEOF: io.EOF is documented to be returned unwrapped; == is its
// idiom.
func okEOF(err error) bool { return err == io.EOF }

func badWrap(err error) error {
	return fmt.Errorf("send failed: %v", err) // want `fmt.Errorf formats an error without %w`
}

func okWrap(err error) error {
	return fmt.Errorf("send failed: %w", err)
}

func okNoErrorArg(n int) error {
	return fmt.Errorf("bad frame length %d", n)
}

// escapedBreak deliberately flattens the chain at a public API
// boundary, with the reason on record.
func escapedBreak(err error) error {
	return fmt.Errorf("internal failure: %v", err) //selfservvet:ignore sentinelerr -- public API boundary: callers must not match internal sentinels
}
