// Package dep supplies a cross-package sentinel for the sentinelerr
// fixture.
package dep

import "errors"

// ErrRemote is a sentinel error matched by downstream packages.
var ErrRemote = errors.New("dep: remote unavailable")
