// Package lockorder enforces the repo's documented lock hierarchy
// (internal/engine/shard.go, docs/engine.md): a shard mutex is acquired
// strictly before an instance mutex, and no code path ever holds two
// locks of the same level.
//
// Mutex fields opt in with a `lockorder:<level>` annotation in the
// field's comment, where <level> is one of the named levels below (or a
// bare integer for future hierarchies). Acquiring a lock whose level is
// less than or equal to the level of any annotated lock already held is
// a violation.
//
// Beyond the engine's shard/instance pair, the control-plane locks are
// annotated too: "platform" (core.Platform.mu, level 0 — outermost,
// never held across engine calls), "directory" (engine.Directory.mu,
// level 3 — serializes copy-on-write rebuilds only; the read path is
// an atomic snapshot load), "hostapi" (admin-server bookkeeping, level
// 4), "controlplane" (controlplane.ControlPlane.mu, level 5 — guards
// the version allocator and last-known-good table, never held across
// admin pushes), and "journal" (journal.Journal's per-shard mutex,
// level 6 — the durability leaf: commit points append while holding an
// instance lock, so the journal ranks below every other repo mutex and
// may never acquire one). None of these may nest with another lock of
// the same level, and any cross-level acquisition must follow
// increasing rank.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"strconv"

	"selfserv/internal/analysis/framework"
	"selfserv/internal/analysis/locks"
)

// Analyzer is the lockorder check.
var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc: "check the shard-before-instance lock hierarchy\n\n" +
		"Mutex fields annotated `lockorder:<level>` (platform 0, shard 1, " +
		"instance 2, directory 3, hostapi 4, controlplane 5, journal 6, " +
		"or a bare integer) must be acquired in strictly increasing level " +
		"order, and never two of the same level.",
	Run: run,
}

// Named levels of the repo-wide hierarchy; lower acquires first.
var namedLevels = map[string]int{
	"platform":     0,
	"shard":        1,
	"instance":     2,
	"directory":    3,
	"hostapi":      4,
	"controlplane": 5,
	"journal":      6,
}

var annotationRe = regexp.MustCompile(`lockorder:\s*([A-Za-z0-9_]+)`)

type level struct {
	rank int
	name string
}

func run(pass *framework.Pass) error {
	levels := map[*types.Var]level{}
	for _, mf := range locks.MutexFields(pass.TypesInfo, pass.Files) {
		m := annotationRe.FindStringSubmatch(mf.Comment)
		if m == nil {
			continue
		}
		name := m[1]
		rank, ok := namedLevels[name]
		if !ok {
			var err error
			rank, err = strconv.Atoi(name)
			if err != nil {
				pass.Reportf(mf.Decl.Pos(),
					"unknown lockorder level %q (known: platform, shard, instance, directory, hostapi, controlplane, journal, or an integer)", name)
				continue
			}
		}
		levels[mf.Field] = level{rank: rank, name: name}
	}
	if len(levels) == 0 {
		return nil
	}

	check := func(body *ast.BlockStmt) {
		w := &locks.Walker{
			Info: pass.TypesInfo,
			OnAcquire: func(op locks.Op, held []locks.Held) {
				acq, ok := levels[op.Field]
				if !ok {
					return
				}
				for _, h := range held {
					have, ok := levels[h.Field]
					if !ok {
						continue
					}
					if have.rank >= acq.rank {
						pass.Reportf(op.Call.Pos(),
							"acquiring %s (lockorder:%s) while holding %s (lockorder:%s): %s",
							op.Key, acq.name, h.Key, have.name, orderHint(have, acq))
					}
				}
			},
		}
		w.Walk(body)
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				check(fn.Body)
			}
		}
	}
	return nil
}

func orderHint(held, acq level) string {
	if held.rank == acq.rank {
		return fmt.Sprintf("never hold two level-%d (%s) locks at once", acq.rank, acq.name)
	}
	return "locks must be acquired in increasing level order (shard before instance)"
}
