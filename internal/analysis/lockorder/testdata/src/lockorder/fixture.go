// Fixture for the lockorder analyzer: the engine's striped-table shape
// (internal/engine/shard.go) in miniature. The regression cases pin the
// exact contract the PR 5 lock-striping refactor had to get right:
// shard before instance, never two locks of the same level.
package lockorder

import "sync"

type instance struct {
	mu sync.Mutex // lockorder:instance — guards n
	n  int
}

type shard struct {
	mu sync.Mutex // lockorder:shard — guards the map shape only
	m  map[string]*instance
}

type table struct {
	shards [4]shard
}

// journalShard is the durability leaf (internal/journal): commit
// points append while the instance lock is held, so the journal mutex
// ranks below everything and may never acquire another repo lock.
type journalShard struct {
	mu  sync.Mutex // lockorder:journal — leaf; taken under instance locks
	buf []byte
}

// okShardThenInstance is the canonical fast path: shard lock for the
// lookup, released before the instance critical section.
func (t *table) okShardThenInstance(id string) {
	s := &t.shards[0]
	s.mu.Lock()
	inst := s.m[id]
	s.mu.Unlock()
	if inst == nil {
		return
	}
	inst.mu.Lock()
	inst.n++
	inst.mu.Unlock()
}

// okNested acquires the instance under the shard: shard → instance is
// the documented order, one of each level.
func (t *table) okNested(id string) {
	s := &t.shards[1]
	s.mu.Lock()
	if inst := s.m[id]; inst != nil {
		inst.mu.Lock()
		inst.n++
		inst.mu.Unlock()
	}
	s.mu.Unlock()
}

// okBranchRelease unlocks on the early-exit branch; the fall-through
// path still holds the shard, and re-acquiring after a full release is
// fine.
func (t *table) okBranchRelease(id string, stop bool) {
	s := &t.shards[2]
	s.mu.Lock()
	if stop {
		s.mu.Unlock()
		return
	}
	delete(s.m, id)
	s.mu.Unlock()
	t.shards[3].mu.Lock()
	t.shards[3].mu.Unlock()
}

func (t *table) badTwoShards() {
	t.shards[0].mu.Lock()
	t.shards[1].mu.Lock() // want `never hold two level-1 \(shard\) locks at once`
	t.shards[1].mu.Unlock()
	t.shards[0].mu.Unlock()
}

func badTwoInstances(a, b *instance) {
	a.mu.Lock()
	b.mu.Lock() // want `never hold two level-2 \(instance\) locks at once`
	b.mu.Unlock()
	a.mu.Unlock()
}

func (t *table) badInstanceThenShard(inst *instance) {
	inst.mu.Lock()
	t.shards[0].mu.Lock() // want `acquiring t.shards\[0\].mu \(lockorder:shard\) while holding inst.mu \(lockorder:instance\)`
	t.shards[0].mu.Unlock()
	inst.mu.Unlock()
}

// okAppendAtCommitPoint is the engine's commit-point shape: the
// instance lock is held while the snapshot is journaled. instance (2)
// before journal (6) is increasing order.
func okAppendAtCommitPoint(inst *instance, js *journalShard) {
	inst.mu.Lock()
	js.mu.Lock()
	js.buf = append(js.buf, byte(inst.n))
	js.mu.Unlock()
	inst.mu.Unlock()
}

// badRehydrateUnderJournal inverts the hierarchy: replay must release
// the journal shard before touching any engine lock.
func badRehydrateUnderJournal(inst *instance, js *journalShard) {
	js.mu.Lock()
	inst.mu.Lock() // want `acquiring inst.mu \(lockorder:instance\) while holding js.mu \(lockorder:journal\)`
	inst.mu.Unlock()
	js.mu.Unlock()
}

func badTwoJournalShards(a, b *journalShard) {
	a.mu.Lock()
	b.mu.Lock() // want `never hold two level-6 \(journal\) locks at once`
	b.mu.Unlock()
	a.mu.Unlock()
}

// escapedTwoShards shows the escape hatch: a deliberate, reasoned
// violation stays visible in the source but does not fail the build.
func (t *table) escapedTwoShards() {
	t.shards[0].mu.Lock()
	t.shards[1].mu.Lock() //selfservvet:ignore lockorder -- rebalance copies between shards under a global stop-the-world
	t.shards[1].mu.Unlock()
	t.shards[0].mu.Unlock()
}

// goroutineResets: a spawned goroutine holds nothing, so its shard lock
// is clean even though the spawner held an instance.
func goroutineResets(t *table, inst *instance) {
	inst.mu.Lock()
	go func() {
		t.shards[0].mu.Lock()
		t.shards[0].mu.Unlock()
	}()
	inst.mu.Unlock()
}
