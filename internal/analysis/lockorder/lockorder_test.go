package lockorder_test

import (
	"testing"

	"selfserv/internal/analysis/analysistest"
	"selfserv/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata/src", lockorder.Analyzer, "lockorder")
}
