// Package injectedclock keeps deterministic packages deterministic.
//
// Two rules:
//
//  1. In a package that exposes an injectable clock — any struct field
//     or package-level variable of type func() time.Time (the
//     Options.Now convention in circuit, limits, community) — bare
//     time.Now/time.Since calls are violations: they bypass the
//     injected clock the deterministic chaos/flake suites depend on.
//     The one allowed use is the default-wiring site, where time.Now
//     is assigned to the clock hook itself (circuit.go's
//     `o.Now = time.Now`).
//
//  2. In every package, the global math/rand source (rand.Intn,
//     rand.Shuffle, ...) is a violation: the repo's convention is an
//     owned `rand.New(rand.NewSource(seed))` so every randomized
//     behaviour replays under a seed.
package injectedclock

import (
	"go/ast"
	"go/types"
	"strings"

	"selfserv/internal/analysis/framework"
)

// Analyzer is the injectedclock check.
var Analyzer = &framework.Analyzer{
	Name: "injectedclock",
	Doc: "check that packages with an injectable clock use it, and that rand is always seeded\n\n" +
		"Bare time.Now/time.Since in a package declaring a func() time.Time " +
		"hook must route through the hook; math/rand's global source is " +
		"forbidden everywhere in favour of rand.New(rand.NewSource(seed)).",
	Run: run,
}

// globalRandFns are the math/rand package-level functions that consume
// the shared, unseeded-by-default source. rand.New/NewSource/NewZipf
// construct owned sources and are fine.
var globalRandFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
}

func run(pass *framework.Pass) error {
	hooks := clockHooks(pass)
	for _, file := range pass.Files {
		// Test files may use the wall clock (deadline loops, watchdogs);
		// the injectable-clock rule is about production code paths. The
		// seeded-rand rule still applies so suites replay under a seed.
		isTestFile := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if len(hooks) == 0 || isTestFile {
					return true
				}
				switch obj.Name() {
				case "Now", "Since":
					if isDefaultWiring(pass, sel, hooks) {
						return true
					}
					pass.Reportf(sel.Pos(),
						"bare time.%s in a package with an injectable clock (%s): route through the hook so seeded tests stay deterministic",
						obj.Name(), hookNames(hooks))
				}
			case "math/rand", "math/rand/v2":
				fn, isFunc := obj.(*types.Func)
				// Only package-level functions hit the global source;
				// methods on an owned *rand.Rand are the fix, not the bug.
				if isFunc && fn.Type().(*types.Signature).Recv() == nil && globalRandFns[obj.Name()] {
					pass.Reportf(sel.Pos(),
						"rand.%s uses the global source: use an owned rand.New(rand.NewSource(seed)) so behaviour replays under a seed",
						obj.Name())
				}
			}
			return true
		})
	}
	return nil
}

// clockHooks finds every struct field and package-level var of type
// func() time.Time declared in this package.
func clockHooks(pass *framework.Pass) []*types.Var {
	var hooks []*types.Var
	for _, name := range pass.Pkg.Scope().Names() {
		if v, ok := pass.Pkg.Scope().Lookup(name).(*types.Var); ok && isClockFuncType(v.Type()) {
			hooks = append(hooks, v)
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				for _, id := range f.Names {
					if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok && isClockFuncType(v.Type()) {
						hooks = append(hooks, v)
					}
				}
			}
			return true
		})
	}
	return hooks
}

// isClockFuncType matches func() time.Time.
func isClockFuncType(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Time"
}

// isDefaultWiring reports whether sel (a time.Now reference) is the
// value being assigned to one of the package's clock hooks — the single
// allowed bare use: `o.Now = time.Now`, `Now: time.Now`, or a hook's
// var initializer.
func isDefaultWiring(pass *framework.Pass, sel *ast.SelectorExpr, hooks []*types.Var) bool {
	isHook := func(obj types.Object) bool {
		for _, h := range hooks {
			if obj == h {
				return true
			}
		}
		return false
	}
	target := func(e ast.Expr) types.Object {
		switch e := e.(type) {
		case *ast.Ident:
			if o := pass.TypesInfo.Defs[e]; o != nil {
				return o
			}
			return pass.TypesInfo.Uses[e]
		case *ast.SelectorExpr:
			return pass.TypesInfo.Uses[e.Sel]
		}
		return nil
	}
	for _, file := range pass.Files {
		found := false
		ast.Inspect(file, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if rhs == sel && i < len(n.Lhs) && isHook(target(n.Lhs[i])) {
						found = true
					}
				}
			case *ast.KeyValueExpr:
				if n.Value == sel {
					if id, ok := n.Key.(*ast.Ident); ok && isHook(target(id)) {
						found = true
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if v == sel && i < len(n.Names) && isHook(target(n.Names[i])) {
						found = true
					}
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func hookNames(hooks []*types.Var) string {
	seen := map[string]bool{}
	names := ""
	for _, h := range hooks {
		if seen[h.Name()] {
			continue
		}
		seen[h.Name()] = true
		if names != "" {
			names += ", "
		}
		names += h.Name()
	}
	return names
}
