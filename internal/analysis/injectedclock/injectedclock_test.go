package injectedclock_test

import (
	"testing"

	"selfserv/internal/analysis/analysistest"
	"selfserv/internal/analysis/injectedclock"
)

func TestInjectedClock(t *testing.T) {
	analysistest.Run(t, "testdata/src", injectedclock.Analyzer, "injectedclock", "nohook", "journalish")
}
