// Fixture mirroring internal/journal's shape: Options.Now stamps
// records, so every timestamp and every randomized backoff in the
// package must route through the injected hook / an owned seeded
// source. This is the durability determinism contract — replaying a
// journal under a seeded clock must reproduce byte-identical records.
package journalish

import (
	"math/rand"
	"time"
)

type options struct {
	// Now stamps records (observability only). Defaults to time.Now.
	Now func() time.Time
}

type record struct {
	Kind string
	Time int64
}

type journal struct{ opts options }

func open(opts options) *journal {
	if opts.Now == nil {
		opts.Now = time.Now // default wiring: the one sanctioned bare use
	}
	return &journal{opts: opts}
}

// okAppend stamps through the hook — what internal/journal does.
func (j *journal) okAppend(kind string) record {
	return record{Kind: kind, Time: j.opts.Now().UnixNano()}
}

// badAppend bypasses the hook: replay under a fixed clock would see a
// different byte stream every run.
func (j *journal) badAppend(kind string) record {
	return record{Kind: kind, Time: time.Now().UnixNano()} // want `bare time.Now in a package with an injectable clock \(Now\)`
}

// okBackoff: retry jitter from an owned seeded source replays.
func okBackoff(seed int64, base time.Duration) time.Duration {
	rng := rand.New(rand.NewSource(seed))
	return base + time.Duration(rng.Int63n(int64(base)))
}

// badBackoff: global-source jitter makes fsync retry timing
// unreproducible.
func badBackoff(base time.Duration) time.Duration {
	return base + time.Duration(rand.Int63n(int64(base))) // want `rand.Int63n uses the global source`
}
