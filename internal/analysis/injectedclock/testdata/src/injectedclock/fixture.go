// Fixture for the injectedclock analyzer: a package that declares a
// func() time.Time hook (the circuit/limits Options.Now convention)
// must route every time read through it; the global math/rand source is
// forbidden everywhere.
package injectedclock

import (
	"math/rand"
	"time"
)

type options struct {
	// Now is the clock; nil means time.Now.
	Now func() time.Time
}

// withDefaults is the one sanctioned bare use: wiring the default.
func (o options) withDefaults() options {
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

type meter struct{ opts options }

func (m *meter) okMeasure(f func()) time.Duration {
	start := m.opts.Now()
	f()
	return m.opts.Now().Sub(start)
}

func (m *meter) badNow() time.Time {
	return time.Now() // want `bare time.Now in a package with an injectable clock \(Now\)`
}

func (m *meter) badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `bare time.Since in a package with an injectable clock`
}

func okSeeded(seed int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Int63n(100)
}

func badGlobalRand() int {
	return rand.Intn(100) // want `rand.Intn uses the global source`
}

func badGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle uses the global source`
}

// escapedNow is deliberate wall-clock use, documented in place.
func escapedNow() time.Time {
	//selfservvet:ignore injectedclock -- operator-facing log timestamp, not engine time
	return time.Now()
}
