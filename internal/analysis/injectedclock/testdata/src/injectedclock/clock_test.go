package injectedclock

import (
	"math/rand"
	"time"
)

// Test files are exempt from the injectable-clock rule: deadline loops
// and watchdogs legitimately read the wall clock.
func testDeadline() bool {
	deadline := time.Now().Add(time.Second)
	return time.Now().After(deadline)
}

// The seeded-rand rule still applies in test files.
func testShuffle() {
	rand.Shuffle(3, func(i, j int) {}) // want `rand.Shuffle uses the global source`
}
