// A package with NO injectable clock: bare time.Now is fine (the clock
// rule arms only where a hook exists), but the global rand source is
// still forbidden.
package nohook

import (
	"math/rand"
	"time"
)

func stamp() time.Time { return time.Now() }

func age(t0 time.Time) time.Duration { return time.Since(t0) }

func badGlobalRand() float64 {
	return rand.Float64() // want `rand.Float64 uses the global source`
}

func okOwned(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}
