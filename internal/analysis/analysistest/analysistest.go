// Package analysistest runs one analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against `// want`
// expectation comments — the same convention as
// golang.org/x/tools/go/analysis/analysistest, re-implemented on the
// repo's stdlib-only framework.
//
// A fixture line that should be flagged carries a trailing comment:
//
//	s.mu.Lock() // want `acquiring .* while holding`
//	bad()       // want "first" "second"
//
// Each quoted (or backquoted) string is a regexp; the diagnostics
// reported on that line must match them one-for-one, in order.
// Lines without a want comment must produce no diagnostics. Escape
// comments (//selfservvet:ignore ... -- reason) are honoured exactly as
// in the real driver, so fixtures can pin the escape hatch too.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"selfserv/internal/analysis/framework"
)

var wantRe = regexp.MustCompile("// *want +(.*)$")

// Run loads each fixture package from srcRoot (a testdata/src
// directory), applies the analyzer, and reports every mismatch between
// diagnostics and want comments as a test error.
func Run(t *testing.T, srcRoot string, a *framework.Analyzer, fixturePkgs ...string) {
	t.Helper()
	for _, pkgPath := range fixturePkgs {
		pkg, err := framework.LoadFixture(srcRoot, pkgPath)
		if err != nil {
			t.Errorf("loading fixture %s: %v", pkgPath, err)
			continue
		}
		findings, err := framework.Run([]*framework.Package{pkg}, []*framework.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, pkgPath, err)
			continue
		}
		checkExpectations(t, pkg, findings)
	}
}

type key struct {
	file string
	line int
}

// checkExpectations diffs findings against the fixture's want comments.
func checkExpectations(t *testing.T, pkg *framework.Package, findings []framework.Finding) {
	t.Helper()
	wants := map[key][]string{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := parseWant(m[1])
				if err != nil {
					t.Errorf("%s: bad want comment: %v", pos, err)
					continue
				}
				wants[key{pos.Filename, pos.Line}] = patterns
			}
		}
	}
	got := map[key][]framework.Finding{}
	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		got[k] = append(got[k], f)
	}
	for k, patterns := range wants {
		fs := got[k]
		delete(got, k)
		if len(fs) != len(patterns) {
			t.Errorf("%s:%d: want %d diagnostic(s) %q, got %d: %v",
				k.file, k.line, len(patterns), patterns, len(fs), fs)
			continue
		}
		for i, p := range patterns {
			re, err := regexp.Compile(p)
			if err != nil {
				t.Errorf("%s:%d: bad want regexp %q: %v", k.file, k.line, p, err)
				continue
			}
			if !re.MatchString(fs[i].Message) {
				t.Errorf("%s:%d: diagnostic %q does not match want %q", k.file, k.line, fs[i].Message, p)
			}
		}
	}
	for k, fs := range got {
		for _, f := range fs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, f.Message)
		}
	}
}

// parseWant splits a want payload into its quoted regexp strings.
func parseWant(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted pattern %q: %w", s[:end+1], err)
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
