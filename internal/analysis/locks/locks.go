// Package locks is the shared substrate of the lockorder and guardedby
// analyzers: it finds annotated sync.Mutex/sync.RWMutex struct fields
// and walks function bodies with a control-flow-approximate "currently
// held" set.
//
// The walk is intra-procedural and deliberately conservative in both
// directions documented on Walker: branch joins keep only locks held on
// EVERY incoming path, deferred Unlocks are treated as end-of-function
// (the lock stays held for the walk), and `go`-spawned function
// literals start with an empty held set while inline/deferred literals
// inherit a copy. Escape comments (//selfservvet:ignore) cover the
// residue a static approximation cannot classify.
package locks

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MutexField is one sync.Mutex/sync.RWMutex struct field, with the
// annotation text and declaration context the analyzers key on.
type MutexField struct {
	Field   *types.Var   // the mutex field object
	Owner   *types.Named // the struct's named type, when it has one
	Decl    *ast.Field   // the field's declaration
	Comment string       // doc comment + trailing line comment, joined
	RW      bool         // sync.RWMutex (RLock/RUnlock exist)
	// Below lists the same struct's fields declared after this mutex,
	// in order — the "guards everything below" universe.
	Below []*types.Var
}

// IsMutexType reports whether t is sync.Mutex or sync.RWMutex, and
// which.
func IsMutexType(t types.Type) (mutex, rw bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return true, false
	case "RWMutex":
		return true, true
	}
	return false, false
}

// MutexFields scans the package's struct declarations for mutex-typed
// fields.
func MutexFields(info *types.Info, files []*ast.File) []MutexField {
	var out []MutexField
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			var owner *types.Named
			if obj, ok := info.Defs[ts.Name]; ok && obj != nil {
				if named, ok := obj.Type().(*types.Named); ok {
					owner = named
				}
			}
			// One linear pass: remember mutex fields seen so far and
			// append every later field to their Below sets.
			var open []*MutexField
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					obj, _ := info.Defs[name].(*types.Var)
					if obj == nil {
						continue
					}
					for _, mf := range open {
						mf.Below = append(mf.Below, obj)
					}
					if mutex, rw := IsMutexType(obj.Type()); mutex {
						out = append(out, MutexField{
							Field:   obj,
							Owner:   owner,
							Decl:    f,
							Comment: commentText(f.Doc, f.Comment),
							RW:      rw,
						})
						open = append(open, &out[len(out)-1])
					}
				}
			}
			return true
		})
	}
	return out
}

func commentText(groups ...*ast.CommentGroup) string {
	var b strings.Builder
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			b.WriteString(c.Text)
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Op is one mutex operation recognized in a call expression.
type Op struct {
	Call  *ast.CallExpr
	Recv  ast.Expr   // the mutex expression (x.mu in x.mu.Lock())
	Field *types.Var // the mutex field, when Recv selects one (else nil)
	Key   string     // canonical text of Recv, the held-set identity
	Name  string     // Lock, RLock, Unlock, RUnlock, TryLock, TryRLock
}

// MutexOp decodes call as a method call on sync.Mutex/sync.RWMutex.
func MutexOp(info *types.Info, call *ast.CallExpr) (Op, bool) {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return Op{}, false
	}
	sel, ok := info.Selections[fun]
	if !ok || sel.Kind() != types.MethodVal {
		return Op{}, false
	}
	m := sel.Obj()
	if m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return Op{}, false
	}
	switch m.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return Op{}, false
	}
	op := Op{Call: call, Recv: fun.X, Name: m.Name(), Key: ExprKey(fun.X)}
	if recvSel, ok := fun.X.(*ast.SelectorExpr); ok {
		if v, ok := info.Uses[recvSel.Sel].(*types.Var); ok && v.IsField() {
			op.Field = v
		}
	}
	return op, true
}

// ExprKey renders an expression as a canonical string so two
// syntactically identical mutex/base expressions compare equal in the
// held set. Unrecognized forms collapse to a position-free placeholder.
func ExprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return ExprKey(e.X) + "[" + ExprKey(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + ExprKey(e.X)
	case *ast.ParenExpr:
		return ExprKey(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + ExprKey(e.X)
	case *ast.CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprKey(a)
		}
		return ExprKey(e.Fun) + "(" + strings.Join(args, ",") + ")"
	case *ast.BasicLit:
		return e.Value
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// Held is one lock the walk believes is currently held.
type Held struct {
	Key   string
	Field *types.Var // nil for non-field mutexes
	RLock bool
	Pos   token.Pos // acquisition site
}

// Walker drives a held-set walk over one function body.
type Walker struct {
	Info *types.Info
	// Visit, when set, is called for every AST node reached in
	// execution-approximate order with the locks held at that point.
	// The held slice is reused — do not retain it.
	Visit func(n ast.Node, held []Held)
	// OnAcquire, when set, is called for each Lock/RLock/TryLock with
	// the locks held BEFORE the acquisition.
	OnAcquire func(op Op, held []Held)
}

// Walk processes a function body starting from an empty held set.
func (w *Walker) Walk(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	held := &heldSet{}
	w.stmts(body.List, held)
}

type heldSet struct{ locks []Held }

func (h *heldSet) clone() *heldSet {
	return &heldSet{locks: append([]Held(nil), h.locks...)}
}

func (h *heldSet) add(l Held) {
	for _, e := range h.locks {
		if e.Key == l.Key {
			return
		}
	}
	h.locks = append(h.locks, l)
}

func (h *heldSet) remove(key string) {
	for i, e := range h.locks {
		if e.Key == key {
			h.locks = append(h.locks[:i], h.locks[i+1:]...)
			return
		}
	}
}

// intersect keeps only locks present in every candidate end state.
func intersect(states []*heldSet) *heldSet {
	if len(states) == 0 {
		return &heldSet{}
	}
	out := &heldSet{}
	for _, l := range states[0].locks {
		inAll := true
		for _, s := range states[1:] {
			found := false
			for _, e := range s.locks {
				if e.Key == l.Key {
					found = true
					break
				}
			}
			if !found {
				inAll = false
				break
			}
		}
		if inAll {
			out.locks = append(out.locks, l)
		}
	}
	return out
}

// stmts walks a statement list; it reports whether linear control flow
// terminated (return/branch/panic) before the end of the list.
func (w *Walker) stmts(list []ast.Stmt, held *heldSet) bool {
	for _, s := range list {
		if w.stmt(s, held) {
			return true
		}
	}
	return false
}

func (w *Walker) stmt(s ast.Stmt, held *heldSet) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.ReturnStmt:
		w.exprs(s, held)
		return true
	case *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		w.exprs(s, held)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := w.Info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
		return false
	case *ast.IfStmt:
		w.exprs(s.Init, held)
		w.exprs(s.Cond, held)
		var ends []*heldSet
		thenHeld := held.clone()
		if !w.stmts(s.Body.List, thenHeld) {
			ends = append(ends, thenHeld)
		}
		if s.Else != nil {
			elseHeld := held.clone()
			if !w.stmt(s.Else, elseHeld) {
				ends = append(ends, elseHeld)
			}
		} else {
			ends = append(ends, held.clone())
		}
		*held = *intersect(ends)
		return len(ends) == 0
	case *ast.ForStmt:
		w.exprs(s.Init, held)
		w.exprs(s.Cond, held)
		body := held.clone()
		w.stmts(s.Body.List, body)
		w.exprs(s.Post, body)
		return false
	case *ast.RangeStmt:
		w.exprs(s.X, held)
		body := held.clone()
		w.stmts(s.Body.List, body)
		return false
	case *ast.SwitchStmt:
		w.exprs(s.Init, held)
		w.exprs(s.Tag, held)
		return w.cases(s.Body, held, false)
	case *ast.TypeSwitchStmt:
		w.exprs(s.Init, held)
		w.exprs(s.Assign, held)
		return w.cases(s.Body, held, false)
	case *ast.SelectStmt:
		return w.cases(s.Body, held, true)
	case *ast.GoStmt:
		// Arguments evaluate now, under the current locks; the body
		// runs on a fresh goroutine that holds nothing.
		for _, a := range s.Call.Args {
			w.exprs(a, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, &heldSet{})
		}
		return false
	case *ast.DeferStmt:
		if op, ok := MutexOp(w.Info, s.Call); ok {
			switch op.Name {
			case "Unlock", "RUnlock":
				// Deferred release: the lock is held until function
				// exit, so the walk keeps it.
				return false
			}
		}
		for _, a := range s.Call.Args {
			w.exprs(a, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// Runs at exit; the held set there is unknowable, assume
			// nothing.
			w.stmts(lit.Body.List, &heldSet{})
		}
		return false
	default:
		w.exprs(s, held)
		return false
	}
}

// cases walks the clause bodies of a switch/type-switch/select. Each
// clause sees a copy of the incoming held set; the outgoing set is the
// intersection of every non-terminating clause (plus the fall-through
// state when a switch has no default clause).
func (w *Walker) cases(body *ast.BlockStmt, held *heldSet, isSelect bool) bool {
	var ends []*heldSet
	hasDefault := false
	for _, cs := range body.List {
		var clauseBody []ast.Stmt
		c := held.clone()
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
			for _, e := range cs.List {
				w.exprs(e, held)
			}
			clauseBody = cs.Body
		case *ast.CommClause:
			if cs.Comm == nil {
				hasDefault = true
			}
			w.stmt(cs.Comm, c)
			clauseBody = cs.Body
		}
		if !w.stmts(clauseBody, c) {
			ends = append(ends, c)
		}
	}
	if !hasDefault && !isSelect {
		ends = append(ends, held.clone())
	}
	if isSelect && len(body.List) == 0 {
		return true // select{} blocks forever
	}
	*held = *intersect(ends)
	return len(ends) == 0
}

// exprs visits all expressions in n, mutating the held set at each
// mutex operation and calling Visit/OnAcquire callbacks.
func (w *Walker) exprs(n ast.Node, held *heldSet) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case nil:
			return false
		case *ast.FuncLit:
			// An inline literal (called immediately, or handed to a
			// synchronous helper like sort.Slice) runs under the
			// current locks; walk it with a copy so its releases don't
			// leak out.
			w.stmts(node.Body.List, held.clone())
			return false
		case *ast.CallExpr:
			if w.Visit != nil {
				w.Visit(node, held.locks)
			}
			if op, ok := MutexOp(w.Info, node); ok {
				// Visit the receiver chain (minus re-triggering the op)
				// so field accesses inside it are still observed.
				w.visitOnly(op.Recv, held)
				switch op.Name {
				case "Lock", "RLock", "TryLock", "TryRLock":
					if w.OnAcquire != nil {
						w.OnAcquire(op, held.locks)
					}
					held.add(Held{
						Key:   op.Key,
						Field: op.Field,
						RLock: op.Name == "RLock" || op.Name == "TryRLock",
						Pos:   node.Pos(),
					})
				case "Unlock", "RUnlock":
					held.remove(op.Key)
				}
				return false
			}
			return true
		default:
			if w.Visit != nil {
				w.Visit(node, held.locks)
			}
			return true
		}
	})
}

// visitOnly runs the Visit callback over a subtree without interpreting
// mutex operations or function literals.
func (w *Walker) visitOnly(n ast.Node, held *heldSet) {
	if n == nil || w.Visit == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if node == nil {
			return false
		}
		w.Visit(node, held.locks)
		return true
	})
}
