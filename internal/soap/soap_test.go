package soap

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := &Message{
		Action: "book",
		Params: map[string]string{
			"customer": "alice",
			"dest":     "sydney <CBD> & \"harbour\"",
			"depart":   "2026-07-01",
		},
	}
	data, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !strings.Contains(string(data), "soap:Envelope") {
		t.Fatalf("no envelope in %s", data)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if back.Action != "book" {
		t.Fatalf("Action = %q", back.Action)
	}
	for k, v := range m.Params {
		if back.Params[k] != v {
			t.Errorf("param %q = %q, want %q", k, back.Params[k], v)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	m := &Message{Action: "op", Params: map[string]string{"b": "2", "a": "1", "c": "3"}}
	first, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, _ := Encode(m)
		if string(again) != string(first) {
			t.Fatal("non-deterministic encoding")
		}
	}
}

func TestEncodeRejectsBadNames(t *testing.T) {
	bad := []string{"", "1abc", "has space", "<tag>", "a&b"}
	for _, name := range bad {
		m := &Message{Action: "op", Params: map[string]string{name: "v"}}
		if _, err := Encode(m); err == nil {
			t.Errorf("Encode accepted parameter name %q", name)
		}
	}
	if _, err := Encode(&Message{}); err == nil {
		t.Error("Encode accepted empty action")
	}
}

func TestFaultRoundTrip(t *testing.T) {
	f := &Fault{Code: "Server", String: "boom", Detail: "stack"}
	data, err := EncodeFault(f)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Decode(data)
	var back *Fault
	if !errors.As(err, &back) {
		t.Fatalf("Decode returned %v, want *Fault", err)
	}
	if back.Code != "Server" || back.String != "boom" || back.Detail != "stack" {
		t.Fatalf("fault = %+v", back)
	}
	if !strings.Contains(back.Error(), "boom") {
		t.Fatalf("Error() = %q", back.Error())
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		[]byte("not xml"),
		[]byte("<other/>"),
	}
	for _, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("Decode(%q) succeeded", data)
		}
	}
	// Empty body.
	empty, _ := encodeEnvelope(nil)
	if _, err := Decode(empty); err == nil || !strings.Contains(err.Error(), "empty body") {
		t.Errorf("empty body err = %v", err)
	}
}

func TestServerDispatch(t *testing.T) {
	srv := NewServer()
	srv.Handle("greet", func(p map[string]string) (map[string]string, error) {
		return map[string]string{"greeting": "hello " + p["name"]}, nil
	})
	srv.Handle("fail", func(map[string]string) (map[string]string, error) {
		return nil, fmt.Errorf("kaput")
	})
	srv.Handle("clientFault", func(map[string]string) (map[string]string, error) {
		return nil, &Fault{Code: "Client", String: "bad request"}
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	t.Run("success", func(t *testing.T) {
		resp, err := Call(nil, ts.URL, &Message{Action: "greet", Params: map[string]string{"name": "bob"}})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Action != "greetResponse" || resp.Params["greeting"] != "hello bob" {
			t.Fatalf("resp = %+v", resp)
		}
	})

	t.Run("server fault", func(t *testing.T) {
		_, err := Call(nil, ts.URL, &Message{Action: "fail"})
		var f *Fault
		if !errors.As(err, &f) || f.Code != "Server" || !strings.Contains(f.String, "kaput") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("client fault passthrough", func(t *testing.T) {
		_, err := Call(nil, ts.URL, &Message{Action: "clientFault"})
		var f *Fault
		if !errors.As(err, &f) || f.Code != "Client" {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("unknown action", func(t *testing.T) {
		_, err := Call(nil, ts.URL, &Message{Action: "nosuch"})
		var f *Fault
		if !errors.As(err, &f) || !strings.Contains(f.String, "unknown action") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("GET rejected", func(t *testing.T) {
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	})
}

func TestCallConnectionError(t *testing.T) {
	_, err := Call(nil, "http://127.0.0.1:1/unreachable", &Message{Action: "x"})
	if err == nil {
		t.Fatal("Call to dead endpoint succeeded")
	}
}

// Property: any printable param values survive the envelope round trip.
func TestQuickParamRoundTrip(t *testing.T) {
	f := func(vals []string) bool {
		m := &Message{Action: "op", Params: map[string]string{}}
		for i, v := range vals {
			m.Params[fmt.Sprintf("p%d", i)] = sanitizeXML(v)
		}
		data, err := Encode(m)
		if err != nil {
			return false
		}
		back, err := Decode(data)
		if err != nil {
			return false
		}
		if len(back.Params) != len(m.Params) {
			return false
		}
		for k, v := range m.Params {
			if back.Params[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func sanitizeXML(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r == '\t' || r == '\n' || r >= 0x20 && r != 0xFFFE && r != 0xFFFF && !(r >= 0xD800 && r <= 0xDFFF) {
			sb.WriteRune(r)
		}
	}
	return strings.Trim(sb.String(), "\r \t\n")
}

func BenchmarkEncodeDecode(b *testing.B) {
	m := &Message{Action: "book", Params: map[string]string{
		"customer": "alice", "dest": "sydney", "depart": "2026-07-01", "return": "2026-07-14",
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := Encode(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
