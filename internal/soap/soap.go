// Package soap implements the subset of SOAP 1.1 that SELF-SERV's
// discovery engine and service bindings use: envelope encoding/decoding
// with a single body element, the fault model, and an HTTP binding
// (client and server handler). The paper implements "service
// registration, discovery and invocation ... as SOAP calls"; this package
// is that wire layer.
package soap

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// Namespace constants for the envelope.
const (
	EnvelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"
	selfservNS = "urn:selfserv"
)

// Fault is a SOAP fault, also used as a Go error.
type Fault struct {
	Code   string // e.g. "Client", "Server"
	String string // human-readable fault string
	Detail string // optional detail
}

// Error implements the error interface.
func (f *Fault) Error() string {
	if f.Detail != "" {
		return fmt.Sprintf("soap: fault %s: %s (%s)", f.Code, f.String, f.Detail)
	}
	return fmt.Sprintf("soap: fault %s: %s", f.Code, f.String)
}

// Message is a decoded SOAP call or response: one body element with flat
// text parameters — the document/literal shape the paper's toolkit
// (WSTK 2.4) produced for simple types.
type Message struct {
	// Action is the local name of the body element (the operation).
	Action string
	// Params are the child elements of the body element.
	Params map[string]string
}

// wire types

type envelope struct {
	XMLName xml.Name `xml:"http://schemas.xmlsoap.org/soap/envelope/ Envelope"`
	Body    body     `xml:"http://schemas.xmlsoap.org/soap/envelope/ Body"`
}

type body struct {
	Raw []byte `xml:",innerxml"`
}

type outEnvelope struct {
	XMLName xml.Name `xml:"soap:Envelope"`
	NS      string   `xml:"xmlns:soap,attr"`
	Body    outBody  `xml:"soap:Body"`
}

type outBody struct {
	Raw []byte `xml:",innerxml"`
}

type faultBody struct {
	XMLName xml.Name `xml:"Fault"`
	Code    string   `xml:"faultcode"`
	String  string   `xml:"faultstring"`
	Detail  string   `xml:"detail,omitempty"`
}

// Encode renders a Message as a SOAP envelope. Parameters are emitted in
// sorted order for determinism.
func Encode(m *Message) ([]byte, error) {
	if m.Action == "" {
		return nil, fmt.Errorf("soap: message has no action")
	}
	var inner bytes.Buffer
	fmt.Fprintf(&inner, "<%s xmlns=%q>", m.Action, selfservNS)
	names := make([]string, 0, len(m.Params))
	for k := range m.Params {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if !validElementName(k) {
			return nil, fmt.Errorf("soap: invalid parameter name %q", k)
		}
		var esc bytes.Buffer
		if err := xml.EscapeText(&esc, []byte(m.Params[k])); err != nil {
			return nil, fmt.Errorf("soap: escape %q: %w", k, err)
		}
		fmt.Fprintf(&inner, "<%s>%s</%s>", k, esc.String(), k)
	}
	fmt.Fprintf(&inner, "</%s>", m.Action)
	return encodeEnvelope(inner.Bytes())
}

// EncodeFault renders a fault envelope.
func EncodeFault(f *Fault) ([]byte, error) {
	raw, err := xml.Marshal(faultBody{Code: f.Code, String: f.String, Detail: f.Detail})
	if err != nil {
		return nil, fmt.Errorf("soap: marshal fault: %w", err)
	}
	return encodeEnvelope(raw)
}

func encodeEnvelope(inner []byte) ([]byte, error) {
	env := outEnvelope{NS: EnvelopeNS, Body: outBody{Raw: inner}}
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(&buf)
	enc.Indent("", "  ")
	if err := enc.Encode(env); err != nil {
		return nil, fmt.Errorf("soap: marshal envelope: %w", err)
	}
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

// Decode parses a SOAP envelope into a Message, or returns the *Fault it
// carries as an error.
func Decode(data []byte) (*Message, error) {
	var env envelope
	if err := xml.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("soap: unmarshal envelope: %w", err)
	}
	dec := xml.NewDecoder(bytes.NewReader(env.Body.Raw))
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("soap: empty body")
		}
		if err != nil {
			return nil, fmt.Errorf("soap: parse body: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		if start.Name.Local == "Fault" {
			var fb faultBody
			if err := dec.DecodeElement(&fb, &start); err != nil {
				return nil, fmt.Errorf("soap: parse fault: %w", err)
			}
			return nil, &Fault{Code: strings.TrimPrefix(fb.Code, "soap:"), String: fb.String, Detail: fb.Detail}
		}
		m := &Message{Action: start.Name.Local, Params: map[string]string{}}
		if err := decodeParams(dec, &start, m.Params); err != nil {
			return nil, err
		}
		return m, nil
	}
}

// decodeParams reads the flat children of the body element.
func decodeParams(dec *xml.Decoder, start *xml.StartElement, out map[string]string) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("soap: parse params: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			var text string
			if err := dec.DecodeElement(&text, &t); err != nil {
				return fmt.Errorf("soap: parse param %s: %w", t.Name.Local, err)
			}
			out[t.Name.Local] = text
		case xml.EndElement:
			if t.Name.Local == start.Name.Local {
				return nil
			}
		}
	}
}

func validElementName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
		case i > 0 && (r >= '0' && r <= '9' || r == '-' || r == '.'):
		default:
			return false
		}
	}
	return true
}

// Call performs a SOAP request/response exchange over HTTP POST.
func Call(client *http.Client, url string, req *Message) (*Message, error) {
	if client == nil {
		client = http.DefaultClient
	}
	data, err := Encode(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("soap: %w", err)
	}
	httpReq.Header.Set("Content-Type", "text/xml; charset=utf-8")
	httpReq.Header.Set("SOAPAction", `"`+req.Action+`"`)
	resp, err := client.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("soap: call %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("soap: read response: %w", err)
	}
	return Decode(body)
}

// Handler is the server side of one SOAP action: it maps request
// parameters to response parameters, or returns an error (a *Fault is
// passed through; other errors become Server faults).
type Handler func(params map[string]string) (map[string]string, error)

// Server dispatches SOAP calls to registered action handlers over HTTP.
// The zero value is ready to use. It implements http.Handler.
type Server struct {
	handlers map[string]Handler
}

// NewServer returns an empty SOAP server.
func NewServer() *Server {
	return &Server{handlers: map[string]Handler{}}
}

// Handle registers h for the given action (body element local name) and
// returns the server for chaining.
func (s *Server) Handle(action string, h Handler) *Server {
	s.handlers[action] = h
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "SOAP endpoint: POST only", http.StatusMethodNotAllowed)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		s.writeFault(w, &Fault{Code: "Client", String: "unreadable request", Detail: err.Error()})
		return
	}
	req, err := Decode(data)
	if err != nil {
		s.writeFault(w, &Fault{Code: "Client", String: "malformed envelope", Detail: err.Error()})
		return
	}
	h, ok := s.handlers[req.Action]
	if !ok {
		s.writeFault(w, &Fault{Code: "Client", String: fmt.Sprintf("unknown action %q", req.Action)})
		return
	}
	out, err := h(req.Params)
	if err != nil {
		if f, ok := err.(*Fault); ok {
			s.writeFault(w, f)
			return
		}
		s.writeFault(w, &Fault{Code: "Server", String: err.Error()})
		return
	}
	resp := &Message{Action: req.Action + "Response", Params: out}
	body, err := Encode(resp)
	if err != nil {
		s.writeFault(w, &Fault{Code: "Server", String: "encode response", Detail: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.Write(body)
}

func (s *Server) writeFault(w http.ResponseWriter, f *Fault) {
	body, err := EncodeFault(f)
	if err != nil {
		http.Error(w, f.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.WriteHeader(http.StatusInternalServerError)
	w.Write(body)
}
