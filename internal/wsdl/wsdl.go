// Package wsdl models the subset of WSDL 1.1 that SELF-SERV uses to
// describe services: messages with string-typed parts, a portType of
// operations (input/output message pairs), a SOAP binding, and a service
// with one port carrying the endpoint address. Documents generate from a
// Definition and parse back; the discovery engine publishes their URLs in
// the UDDI registry, and wrappers read the binding details to invoke
// operations (§4: "sent to the service using the binding details of the
// WSDL service descriptions").
package wsdl

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sort"

	"selfserv/internal/service"
)

// Part is one named parameter of a message.
type Part struct {
	Name string
	Type string // informational: "string", "number", "bool"
}

// Operation describes one operation: its input and output parts.
type Operation struct {
	Name    string
	Inputs  []Part
	Outputs []Part
}

// Definition is a parsed or constructed WSDL document.
type Definition struct {
	// Service is the service name.
	Service string
	// TargetNamespace defaults to "urn:selfserv:<service>".
	TargetNamespace string
	// Endpoint is the SOAP address of the service's port.
	Endpoint string
	// Operations of the single portType, sorted by name.
	Operations []Operation
}

// Operation returns the named operation, or nil.
func (d *Definition) Operation(name string) *Operation {
	for i := range d.Operations {
		if d.Operations[i].Name == name {
			return &d.Operations[i]
		}
	}
	return nil
}

// Validate checks structural completeness.
func (d *Definition) Validate() error {
	if d.Service == "" {
		return fmt.Errorf("wsdl: definition has no service name")
	}
	if d.Endpoint == "" {
		return fmt.Errorf("wsdl: %s: no endpoint address", d.Service)
	}
	if len(d.Operations) == 0 {
		return fmt.Errorf("wsdl: %s: no operations", d.Service)
	}
	seen := map[string]bool{}
	for _, op := range d.Operations {
		if op.Name == "" {
			return fmt.Errorf("wsdl: %s: operation with empty name", d.Service)
		}
		if seen[op.Name] {
			return fmt.Errorf("wsdl: %s: duplicate operation %q", d.Service, op.Name)
		}
		seen[op.Name] = true
	}
	return nil
}

// FromProvider derives a Definition from a live provider: one operation
// per provider operation. Parameter parts cannot be introspected from the
// Provider interface, so operations get a generic single "params" part
// unless the provider implements Describer.
func FromProvider(p service.Provider, endpoint string) *Definition {
	d := &Definition{
		Service:         p.Name(),
		TargetNamespace: "urn:selfserv:" + p.Name(),
		Endpoint:        endpoint,
	}
	type describer interface {
		Describe(op string) ([]Part, []Part, bool)
	}
	for _, op := range p.Operations() {
		o := Operation{Name: op}
		if desc, ok := p.(describer); ok {
			if in, out, found := desc.Describe(op); found {
				o.Inputs, o.Outputs = in, out
			}
		}
		d.Operations = append(d.Operations, o)
	}
	sort.Slice(d.Operations, func(i, j int) bool { return d.Operations[i].Name < d.Operations[j].Name })
	return d
}

// --- XML wire format ---

type xmlDefinitions struct {
	XMLName  xml.Name      `xml:"definitions"`
	Name     string        `xml:"name,attr"`
	TargetNS string        `xml:"targetNamespace,attr"`
	Messages []xmlMessage  `xml:"message"`
	PortType []xmlPortType `xml:"portType"`
	Binding  []xmlBinding  `xml:"binding"`
	Service  []xmlService  `xml:"service"`
}

type xmlMessage struct {
	Name  string    `xml:"name,attr"`
	Parts []xmlPart `xml:"part"`
}

type xmlPart struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr,omitempty"`
}

type xmlPortType struct {
	Name       string           `xml:"name,attr"`
	Operations []xmlPTOperation `xml:"operation"`
}

type xmlPTOperation struct {
	Name   string    `xml:"name,attr"`
	Input  xmlMsgRef `xml:"input"`
	Output xmlMsgRef `xml:"output"`
}

type xmlMsgRef struct {
	Message string `xml:"message,attr"`
}

type xmlBinding struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"`
}

type xmlService struct {
	Name  string    `xml:"name,attr"`
	Ports []xmlPort `xml:"port"`
}

type xmlPort struct {
	Name    string     `xml:"name,attr"`
	Binding string     `xml:"binding,attr"`
	Address xmlAddress `xml:"address"`
}

type xmlAddress struct {
	Location string `xml:"location,attr"`
}

// Marshal renders the definition as a WSDL document.
func Marshal(d *Definition) ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	ns := d.TargetNamespace
	if ns == "" {
		ns = "urn:selfserv:" + d.Service
	}
	doc := xmlDefinitions{
		Name:     d.Service,
		TargetNS: ns,
	}
	pt := xmlPortType{Name: d.Service + "PortType"}
	for _, op := range d.Operations {
		inMsg := xmlMessage{Name: op.Name + "Request"}
		for _, p := range op.Inputs {
			inMsg.Parts = append(inMsg.Parts, xmlPart(p))
		}
		outMsg := xmlMessage{Name: op.Name + "Response"}
		for _, p := range op.Outputs {
			outMsg.Parts = append(outMsg.Parts, xmlPart(p))
		}
		doc.Messages = append(doc.Messages, inMsg, outMsg)
		pt.Operations = append(pt.Operations, xmlPTOperation{
			Name:   op.Name,
			Input:  xmlMsgRef{Message: inMsg.Name},
			Output: xmlMsgRef{Message: outMsg.Name},
		})
	}
	doc.PortType = []xmlPortType{pt}
	doc.Binding = []xmlBinding{{Name: d.Service + "SoapBinding", Type: pt.Name}}
	doc.Service = []xmlService{{
		Name: d.Service,
		Ports: []xmlPort{{
			Name:    d.Service + "Port",
			Binding: d.Service + "SoapBinding",
			Address: xmlAddress{Location: d.Endpoint},
		}},
	}}
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(&buf)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, fmt.Errorf("wsdl: marshal %s: %w", d.Service, err)
	}
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

// Unmarshal parses a document produced by Marshal (or a hand-written one
// of the same shape).
func Unmarshal(data []byte) (*Definition, error) {
	var doc xmlDefinitions
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("wsdl: unmarshal: %w", err)
	}
	d := &Definition{
		Service:         doc.Name,
		TargetNamespace: doc.TargetNS,
	}
	msgs := map[string][]Part{}
	for _, m := range doc.Messages {
		var parts []Part
		for _, p := range m.Parts {
			parts = append(parts, Part(p))
		}
		msgs[m.Name] = parts
	}
	for _, pt := range doc.PortType {
		for _, op := range pt.Operations {
			d.Operations = append(d.Operations, Operation{
				Name:    op.Name,
				Inputs:  msgs[op.Input.Message],
				Outputs: msgs[op.Output.Message],
			})
		}
	}
	sort.Slice(d.Operations, func(i, j int) bool { return d.Operations[i].Name < d.Operations[j].Name })
	for _, s := range doc.Service {
		for _, port := range s.Ports {
			if port.Address.Location != "" {
				d.Endpoint = port.Address.Location
			}
		}
		if s.Name != "" {
			d.Service = s.Name
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Read parses a definition from r.
func Read(r io.Reader) (*Definition, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("wsdl: read: %w", err)
	}
	return Unmarshal(data)
}
