package wsdl

import (
	"reflect"
	"strings"
	"testing"

	"selfserv/internal/service"
)

func sampleDef() *Definition {
	return &Definition{
		Service:  "DomesticFlightBooking",
		Endpoint: "http://provider.example:8080/soap/dfb",
		Operations: []Operation{
			{
				Name: "book",
				Inputs: []Part{
					{Name: "customer", Type: "string"},
					{Name: "dest", Type: "string"},
				},
				Outputs: []Part{{Name: "ref", Type: "string"}},
			},
			{
				Name:    "cancel",
				Inputs:  []Part{{Name: "ref", Type: "string"}},
				Outputs: []Part{{Name: "ok", Type: "bool"}},
			},
		},
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	d := sampleDef()
	data, err := Marshal(d)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	for _, want := range []string{"definitions", "portType", "binding", "address", "bookRequest", "bookResponse"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("document missing %q:\n%s", want, data)
		}
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	d.TargetNamespace = "urn:selfserv:DomesticFlightBooking" // defaulted in output
	if !reflect.DeepEqual(d, back) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", d, back)
	}
}

func TestValidate(t *testing.T) {
	cases := map[string]func(*Definition){
		"no service name":     func(d *Definition) { d.Service = "" },
		"no endpoint":         func(d *Definition) { d.Endpoint = "" },
		"no operations":       func(d *Definition) { d.Operations = nil },
		"empty op name":       func(d *Definition) { d.Operations[0].Name = "" },
		"duplicate operation": func(d *Definition) { d.Operations[1].Name = "book" },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			d := sampleDef()
			mutate(d)
			if err := d.Validate(); err == nil {
				t.Fatal("Validate accepted invalid definition")
			}
			if _, err := Marshal(d); err == nil {
				t.Fatal("Marshal accepted invalid definition")
			}
		})
	}
	if err := sampleDef().Validate(); err != nil {
		t.Fatalf("valid definition rejected: %v", err)
	}
}

func TestOperationLookup(t *testing.T) {
	d := sampleDef()
	if op := d.Operation("book"); op == nil || len(op.Inputs) != 2 {
		t.Fatalf("Operation(book) = %+v", op)
	}
	if d.Operation("nope") != nil {
		t.Fatal("Operation(nope) found something")
	}
}

func TestFromProvider(t *testing.T) {
	p := service.NewSimulated("Echoer", service.SimulatedOptions{}).Echo("ping").Echo("pong")
	d := FromProvider(p, "http://x/soap")
	if d.Service != "Echoer" || d.Endpoint != "http://x/soap" {
		t.Fatalf("definition = %+v", d)
	}
	if len(d.Operations) != 2 || d.Operations[0].Name != "ping" || d.Operations[1].Name != "pong" {
		t.Fatalf("operations = %+v", d.Operations)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if _, err := Marshal(d); err != nil {
		t.Fatalf("Marshal: %v", err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":    "not xml at all",
		"wrong root": "<unrelated/>",
		"no endpoint": `<definitions name="S">
			<portType name="p"><operation name="op"/></portType>
		</definitions>`,
	}
	for name, doc := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Unmarshal([]byte(doc)); err == nil {
				t.Fatal("Unmarshal accepted bad document")
			}
		})
	}
}

func TestReadFromReader(t *testing.T) {
	data, err := Marshal(sampleDef())
	if err != nil {
		t.Fatal(err)
	}
	d, err := Read(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if d.Service != "DomesticFlightBooking" {
		t.Fatalf("Service = %q", d.Service)
	}
}
