// Package transport moves SELF-SERV control documents between peers.
//
// The paper exchanges XML documents over Java sockets. This package
// provides two interchangeable implementations of the same Network
// contract: a TCP implementation (length-prefixed XML frames over
// net.Conn, the production path) and an in-memory implementation (for
// tests and benchmarks, with configurable latency and fault injection).
// Both serialize every message with package message, so costs and
// observable behaviour match across implementations.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"selfserv/internal/message"
)

// Handler consumes an inbound message. Handlers are invoked on their own
// goroutine per message and must be safe for concurrent use.
type Handler func(ctx context.Context, m *message.Message)

// ErrUnknownAddress reports a Send to an address nobody listens on.
var ErrUnknownAddress = errors.New("transport: unknown address")

// ErrClosed reports use of a closed network or endpoint.
var ErrClosed = errors.New("transport: closed")

// Network delivers one-way messages to named endpoints.
type Network interface {
	// Listen registers a handler under addr. For the TCP network the
	// address is "host:port" ("host:0" picks a free port; the returned
	// endpoint reports the bound address). For the in-memory network it
	// is an arbitrary non-empty name.
	Listen(addr string, h Handler) (Endpoint, error)
	// Send delivers m to the endpoint listening on to. Delivery is
	// asynchronous: a nil error means the message was accepted for
	// delivery, not yet handled.
	Send(ctx context.Context, to string, m *message.Message) error
	// Stats returns a snapshot of per-address traffic counters.
	Stats() Stats
	// Close shuts down all endpoints.
	Close() error
}

// Endpoint is a registered listener.
type Endpoint interface {
	// Addr is the address peers use to reach this endpoint.
	Addr() string
	// Close unregisters the endpoint.
	Close() error
}

// NodeStats counts traffic seen by one address.
type NodeStats struct {
	MsgsIn   int64
	MsgsOut  int64
	BytesIn  int64
	BytesOut int64
}

// Stats is a snapshot of traffic by address.
type Stats struct {
	Nodes map[string]NodeStats
}

// Total sums the per-node counters.
func (s Stats) Total() NodeStats {
	var t NodeStats
	for _, n := range s.Nodes {
		t.MsgsIn += n.MsgsIn
		t.MsgsOut += n.MsgsOut
		t.BytesIn += n.BytesIn
		t.BytesOut += n.BytesOut
	}
	return t
}

// Busiest returns the address with the highest MsgsIn+MsgsOut and its
// counters. Ties break alphabetically so results are deterministic.
func (s Stats) Busiest() (string, NodeStats) {
	names := make([]string, 0, len(s.Nodes))
	for n := range s.Nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	bestName, best := "", NodeStats{}
	for _, n := range names {
		ns := s.Nodes[n]
		if bestName == "" || ns.MsgsIn+ns.MsgsOut > best.MsgsIn+best.MsgsOut {
			bestName, best = n, ns
		}
	}
	return bestName, best
}

// statsBook is the shared mutable counter set behind Stats snapshots.
type statsBook struct {
	mu    sync.Mutex
	nodes map[string]*NodeStats
}

func newStatsBook() *statsBook {
	return &statsBook{nodes: map[string]*NodeStats{}}
}

func (b *statsBook) node(addr string) *NodeStats {
	n, ok := b.nodes[addr]
	if !ok {
		n = &NodeStats{}
		b.nodes[addr] = n
	}
	return n
}

func (b *statsBook) recordSend(from, to string, bytes int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if from != "" {
		n := b.node(from)
		n.MsgsOut++
		n.BytesOut += int64(bytes)
	}
	n := b.node(to)
	n.MsgsIn++
	n.BytesIn += int64(bytes)
}

func (b *statsBook) snapshot() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := Stats{Nodes: make(map[string]NodeStats, len(b.nodes))}
	for k, v := range b.nodes {
		out.Nodes[k] = *v
	}
	return out
}

// senderKey carries the logical sender address through context so that
// Stats can attribute outbound traffic. Coordinators set it via WithSender.
type senderKey struct{}

// WithSender tags ctx with the logical sender address for Stats
// attribution.
func WithSender(ctx context.Context, addr string) context.Context {
	return context.WithValue(ctx, senderKey{}, addr)
}

// SenderFrom extracts the sender tag, or "".
func SenderFrom(ctx context.Context) string {
	s, _ := ctx.Value(senderKey{}).(string)
	return s
}

// encode serializes m for the wire.
func encode(m *message.Message) ([]byte, error) {
	data, err := message.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("transport: encode: %w", err)
	}
	return data, nil
}
