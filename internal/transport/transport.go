// Package transport moves SELF-SERV control documents between peers.
//
// The paper exchanges XML documents over Java sockets. This package
// provides two interchangeable implementations of the same Network v2
// contract: a TCP implementation (length-prefixed frames over net.Conn,
// the production path) and an in-memory implementation (for tests and
// benchmarks, with configurable latency and fault injection). Both
// serialize every message with package message, so costs and observable
// behaviour match across implementations.
//
// The contract is sender-oriented and batched:
//
//   - Listen registers an inbound Handler under an address the Network
//     understands; MintAddr produces such addresses from logical hints,
//     so callers never branch on the concrete implementation.
//   - Open mints a Sender — a first-class outbound handle bound to one
//     logical source address. Per-sender state (stats counters, and for
//     TCP the shared connection cache it writes through) lives behind the
//     handle; nothing travels through context values.
//   - SendBatch is the primitive delivery operation: all messages of a
//     batch travel in ONE wire frame and are handed to the receiving
//     Handler sequentially, in slice order. Send is the batch of one.
//
// See docs/transport.md for the frame format and migration notes.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"selfserv/internal/message"
)

// Handler consumes inbound messages. The messages of one frame are
// delivered sequentially on one goroutine (preserving batch order);
// distinct frames may be delivered concurrently, so handlers must be
// safe for concurrent use.
type Handler func(ctx context.Context, m *message.Message)

// ErrUnknownAddress reports a Send to an address nobody listens on.
var ErrUnknownAddress = errors.New("transport: unknown address")

// ErrClosed reports use of a closed network or endpoint.
var ErrClosed = errors.New("transport: closed")

// Network delivers one-way messages to named endpoints.
type Network interface {
	// Listen registers a handler under addr. For the TCP network the
	// address is "host:port" ("host:0" picks a free port; the returned
	// endpoint reports the bound address). For the in-memory network it
	// is an arbitrary non-empty name. MintAddr produces a valid addr for
	// either.
	Listen(addr string, h Handler) (Endpoint, error)
	// MintAddr turns a logical name hint into a listen address this
	// network accepts: the in-memory network uses the hint itself, the
	// TCP network ignores it and mints a loopback ephemeral bind. It
	// exists so deployment code never type-switches on the transport.
	MintAddr(hint string) string
	// Opener mints first-class Senders (see Open).
	Opener
	// Send delivers m to the endpoint listening on to, unattributed to
	// any sender (tooling and tests; coordinators use a Sender).
	// Delivery is asynchronous: a nil error means the message was
	// accepted for delivery, not yet handled.
	Send(ctx context.Context, to string, m *message.Message) error
	// SendBatch delivers ms to the endpoint listening on to as ONE wire
	// frame, atomically: either the whole batch is accepted or none of
	// it. The receiver's handler sees the messages sequentially in slice
	// order (per-destination FIFO within the batch). An empty batch is a
	// no-op.
	SendBatch(ctx context.Context, to string, ms []*message.Message) error
	// Stats returns a snapshot of per-address traffic counters.
	Stats() Stats
	// Close shuts down all endpoints.
	Close() error
}

// Opener mints Senders. Every Network is an Opener; the split lets code
// that only sends (coordinators, wrappers) hold the narrow capability.
type Opener interface {
	// Open returns a Sender whose outbound traffic is attributed to the
	// logical source address from. Handles are cheap and long-lived: a
	// coordinator opens one at start-up and reuses it for every round.
	Open(from string) Sender
}

// Sender is a first-class outbound handle bound to one source address —
// the Network v2 replacement for tagging contexts with a sender name.
// Implementations pin the sender's stats counters at Open time, so the
// hot send path never takes the stats map lock.
type Sender interface {
	// From returns the logical source address the handle was opened with.
	From() string
	// Send delivers one message (the batch of one).
	Send(ctx context.Context, to string, m *message.Message) error
	// SendBatch delivers ms as one frame; see Network.SendBatch.
	SendBatch(ctx context.Context, to string, ms []*message.Message) error
}

// Endpoint is a registered listener.
type Endpoint interface {
	// Addr is the address peers use to reach this endpoint.
	Addr() string
	// Close unregisters the endpoint.
	Close() error
}

// NodeStats counts traffic seen by one address. FramesOut counts wire
// frames (one per Send or SendBatch); MsgsOut counts the messages inside
// them — the gap between the two is the coalescing win.
//
// The flow-control counters (QueueDepth, SendBlocked, Reconnects) are
// keyed by the DESTINATION address: they describe the path TOWARD this
// node, which is where a slow or flaky peer shows up.
type NodeStats struct {
	MsgsIn    int64
	MsgsOut   int64
	BytesIn   int64
	BytesOut  int64
	FramesOut int64
	// QueueDepth is the number of frames currently accepted for this
	// destination but not yet written to the wire (a snapshot, bounded
	// by FlowOptions.QueueLen).
	QueueDepth int64
	// SendBlocked counts sends toward this destination that found the
	// write queue full (whether they then waited or were shed).
	SendBlocked int64
	// Reconnects counts connections to this destination re-established
	// after a failure or an eviction.
	Reconnects int64
	// FramesMerged counts accepted frames toward this destination that
	// were folded into another frame's wire write by cross-round batching
	// (FlowOptions.FlushDelay) — i.e. wire writes SAVED. Zero while
	// FlushDelay is 0.
	FramesMerged int64
	// MergedMsgs and MergedWrites describe the merged wire frames toward
	// this destination: MergedWrites counts wire frames assembled from
	// two or more accepted frames, MergedMsgs the messages they carried.
	// MergedMsgsPerFrame derives the mean batch size from them.
	MergedMsgs   int64
	MergedWrites int64
	// RecvLanes is the number of bounded receive delivery lanes of the
	// most recent listening endpoint at this address
	// (FlowOptions.RecvLanes); zero for addresses that never listened,
	// and in the in-memory network's Synchronous mode, where the
	// sender's goroutine is the lane.
	RecvLanes int64
	// RecvQueueDepth is the number of inbound frames accepted by this
	// node's read side but not yet handed to the handler (a snapshot,
	// bounded by RecvLanes × FlowOptions.RecvQueueLen). A persistently
	// deep receive queue identifies a node whose handlers can't keep up
	// with fan-in — the receive-side twin of QueueDepth.
	RecvQueueDepth int64
	// Failovers counts delegated invocations re-routed away from this
	// destination after a failure (recorded by the community/engine layer
	// via AvailabilityRecorder; the transport only keeps the book).
	Failovers int64
	// ShedRequests counts requests toward this destination refused by
	// per-tenant admission control (see package limits; recorded via
	// AvailabilityRecorder).
	ShedRequests int64
	// BreakerOpens counts circuit-breaker trips for the path toward this
	// destination — transport send breakers (FlowOptions.Breaker) and any
	// higher-layer breakers reported via AvailabilityRecorder.
	BreakerOpens int64
}

// MergedMsgsPerFrame reports the mean number of messages per MERGED wire
// frame (frames assembled from 2+ accepted frames by cross-round
// batching) — the observable for tuning FlowOptions.FlushDelay. Zero
// when no merge has happened.
func (n NodeStats) MergedMsgsPerFrame() float64 {
	if n.MergedWrites == 0 {
		return 0
	}
	return float64(n.MergedMsgs) / float64(n.MergedWrites)
}

// Stats is a snapshot of traffic by address.
type Stats struct {
	Nodes map[string]NodeStats
}

// Total sums the per-node counters.
func (s Stats) Total() NodeStats {
	var t NodeStats
	for _, n := range s.Nodes {
		t.MsgsIn += n.MsgsIn
		t.MsgsOut += n.MsgsOut
		t.BytesIn += n.BytesIn
		t.BytesOut += n.BytesOut
		t.FramesOut += n.FramesOut
		t.QueueDepth += n.QueueDepth
		t.SendBlocked += n.SendBlocked
		t.Reconnects += n.Reconnects
		t.FramesMerged += n.FramesMerged
		t.MergedMsgs += n.MergedMsgs
		t.MergedWrites += n.MergedWrites
		t.RecvLanes += n.RecvLanes
		t.RecvQueueDepth += n.RecvQueueDepth
		t.Failovers += n.Failovers
		t.ShedRequests += n.ShedRequests
		t.BreakerOpens += n.BreakerOpens
	}
	return t
}

// Busiest returns the address with the highest MsgsIn+MsgsOut and its
// counters. Ties break alphabetically so results are deterministic.
func (s Stats) Busiest() (string, NodeStats) {
	names := make([]string, 0, len(s.Nodes))
	for n := range s.Nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	bestName, best := "", NodeStats{}
	for _, n := range names {
		ns := s.Nodes[n]
		if bestName == "" || ns.MsgsIn+ns.MsgsOut > best.MsgsIn+best.MsgsOut {
			bestName, best = n, ns
		}
	}
	return bestName, best
}

// nodeCounters is the live, lock-free counter set behind one address's
// NodeStats. Counters are atomic so concurrent senders never serialize
// on a shared stats lock (the pre-v2 design funnelled every send through
// one mutex).
type nodeCounters struct {
	msgsIn    atomic.Int64
	msgsOut   atomic.Int64
	bytesIn   atomic.Int64
	bytesOut  atomic.Int64
	framesOut atomic.Int64
	// Flow-control counters for the path TOWARD this address.
	queueDepth  atomic.Int64
	sendBlocked atomic.Int64
	reconnects  atomic.Int64
	// Cross-round merge counters for the path TOWARD this address.
	framesMerged atomic.Int64
	mergedMsgs   atomic.Int64
	mergedWrites atomic.Int64
	// Receive-lane counters for this address's own listening endpoint.
	recvLanes      atomic.Int64
	recvQueueDepth atomic.Int64
	// Availability counters for the path toward this address (breaker
	// trips from the send path; failovers and sheds reported by higher
	// layers via AvailabilityRecorder).
	failovers    atomic.Int64
	shedRequests atomic.Int64
	breakerOpens atomic.Int64
}

// recordMerge counts one merged wire write toward this destination:
// frames accepted frames carrying msgs messages went out as ONE frame.
// No-op for unmerged writes (frames < 2).
func (c *nodeCounters) recordMerge(frames, msgs int) {
	if frames < 2 {
		return
	}
	c.framesMerged.Add(int64(frames - 1))
	c.mergedMsgs.Add(int64(msgs))
	c.mergedWrites.Add(1)
}

func (c *nodeCounters) snapshot() NodeStats {
	return NodeStats{
		MsgsIn:         c.msgsIn.Load(),
		MsgsOut:        c.msgsOut.Load(),
		BytesIn:        c.bytesIn.Load(),
		BytesOut:       c.bytesOut.Load(),
		FramesOut:      c.framesOut.Load(),
		QueueDepth:     c.queueDepth.Load(),
		SendBlocked:    c.sendBlocked.Load(),
		Reconnects:     c.reconnects.Load(),
		FramesMerged:   c.framesMerged.Load(),
		MergedMsgs:     c.mergedMsgs.Load(),
		MergedWrites:   c.mergedWrites.Load(),
		RecvLanes:      c.recvLanes.Load(),
		RecvQueueDepth: c.recvQueueDepth.Load(),
		Failovers:      c.failovers.Load(),
		ShedRequests:   c.shedRequests.Load(),
		BreakerOpens:   c.breakerOpens.Load(),
	}
}

// statsBook maps addresses to their counters. The RWMutex guards only
// the map shape; all counting is atomic. Senders resolve their own
// counters once at Open time and bypass even the read lock.
type statsBook struct {
	mu    sync.RWMutex
	nodes map[string]*nodeCounters
}

func newStatsBook() *statsBook {
	return &statsBook{nodes: map[string]*nodeCounters{}}
}

// node returns the counter set for addr, creating it on first use.
func (b *statsBook) node(addr string) *nodeCounters {
	b.mu.RLock()
	n, ok := b.nodes[addr]
	b.mu.RUnlock()
	if ok {
		return n
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if n, ok := b.nodes[addr]; ok {
		return n
	}
	n = &nodeCounters{}
	b.nodes[addr] = n
	return n
}

// recordOut counts one outbound frame carrying msgs messages on out
// (nil for unattributed sends).
func (b *statsBook) recordOut(out *nodeCounters, msgs, bytes int) {
	if out == nil {
		return
	}
	out.msgsOut.Add(int64(msgs))
	out.bytesOut.Add(int64(bytes))
	out.framesOut.Add(1)
}

// recordIn counts msgs delivered messages in one frame of bytes bytes
// for the receiver to.
func (b *statsBook) recordIn(to string, msgs, bytes int) {
	n := b.node(to)
	n.msgsIn.Add(int64(msgs))
	n.bytesIn.Add(int64(bytes))
}

// AvailabilityRecorder lets higher layers (communities, engine hosts)
// attribute availability events — failovers, admission-control sheds,
// breaker trips — to the destination-keyed node stats, so one Stats
// snapshot tells the whole churn story. Both Network implementations
// provide it; callers discover it by type assertion and degrade to
// no-ops when absent.
type AvailabilityRecorder interface {
	// RecordFailover counts one delegation re-routed away from addr.
	RecordFailover(addr string)
	// RecordShed counts one request toward addr refused by per-tenant
	// admission control.
	RecordShed(addr string)
	// RecordBreakerOpen counts one higher-layer breaker trip for addr.
	RecordBreakerOpen(addr string)
}

func (b *statsBook) RecordFailover(addr string)    { b.node(addr).failovers.Add(1) }
func (b *statsBook) RecordShed(addr string)        { b.node(addr).shedRequests.Add(1) }
func (b *statsBook) RecordBreakerOpen(addr string) { b.node(addr).breakerOpens.Add(1) }

func (b *statsBook) snapshot() Stats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := Stats{Nodes: make(map[string]NodeStats, len(b.nodes))}
	for k, v := range b.nodes {
		out.Nodes[k] = v.snapshot()
	}
	return out
}

// Conservative bounds for cross-round merge accounting: a merged
// payload is at most the batch header (magic + count uvarint) plus, per
// folded frame, a promotion length prefix and the frame's own payload
// (batch-format frames shed their header on merge, so their payload
// length already over-counts them). Collecting against these bounds
// guarantees the merged payload respects MaxBatchBytes — and under the
// TCP clamp, maxFrame — BEFORE the merge is built.
const (
	mergeHeaderBound = 1 + binary.MaxVarintLen64 // batch magic + count
	mergeFrameBound  = binary.MaxVarintLen64     // per-frame length prefix
)

// encodeBatch serializes a batch for the wire.
func encodeBatch(ms []*message.Message) ([]byte, error) {
	data, err := message.MarshalBatch(ms)
	if err != nil {
		return nil, fmt.Errorf("transport: encode: %w", err)
	}
	return data, nil
}

// encodeOne serializes a single message for the wire (the hot path:
// Send skips the batch wrapper entirely).
func encodeOne(m *message.Message) ([]byte, error) {
	data, err := message.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("transport: encode: %w", err)
	}
	return data, nil
}
