package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"selfserv/internal/message"
)

// TestContractBatchFIFO: the messages of one SendBatch reach the handler
// sequentially in slice order — per-(destination, instance) FIFO — on
// both transports.
func TestContractBatchFIFO(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			n := h.newNet()
			defer n.Close()
			var mu sync.Mutex
			got := map[string][]int{} // instance -> seqs in arrival order
			ep, err := n.Listen(h.addrFor(1), func(_ context.Context, m *message.Message) {
				mu.Lock()
				got[m.Instance] = append(got[m.Instance], m.Seq)
				mu.Unlock()
			})
			if err != nil {
				t.Fatal(err)
			}
			const instances, per = 3, 20
			var batch []*message.Message
			for seq := 0; seq < per; seq++ {
				for i := 0; i < instances; i++ {
					batch = append(batch, &message.Message{
						Type: message.TypeNotify, Instance: fmt.Sprintf("i%d", i), Seq: seq,
					})
				}
			}
			s := n.Open("batcher")
			if err := s.SendBatch(context.Background(), ep.Addr(), batch); err != nil {
				t.Fatalf("SendBatch: %v", err)
			}
			waitFor(t, func() bool {
				mu.Lock()
				defer mu.Unlock()
				total := 0
				for _, seqs := range got {
					total += len(seqs)
				}
				return total == len(batch)
			}, "batch delivery")
			mu.Lock()
			defer mu.Unlock()
			for inst, seqs := range got {
				for i, seq := range seqs {
					if seq != i {
						t.Fatalf("instance %s arrived out of order: %v", inst, seqs)
					}
				}
			}
		})
	}
}

// TestContractBatchedEqualsSequential: a batched round delivers exactly
// the multiset of messages the equivalent sequential sends deliver, on
// both transports.
func TestContractBatchedEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	mkMsgs := func(n int) []*message.Message {
		ms := make([]*message.Message, n)
		for i := range ms {
			ms[i] = &message.Message{
				Type: message.TypeNotify, Composite: "C", Instance: "i1",
				From: "src", To: "dst", Seq: i,
				Vars: map[string]string{"v": fmt.Sprintf("%d", rng.Intn(1000))},
			}
		}
		return ms
	}
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			deliver := func(batched bool, ms []*message.Message) map[int]string {
				n := h.newNet()
				defer n.Close()
				var mu sync.Mutex
				got := map[int]string{}
				ep, err := n.Listen(h.addrFor(1), func(_ context.Context, m *message.Message) {
					mu.Lock()
					got[m.Seq] = m.Vars["v"]
					mu.Unlock()
				})
				if err != nil {
					t.Fatal(err)
				}
				s := n.Open("src")
				if batched {
					if err := s.SendBatch(context.Background(), ep.Addr(), ms); err != nil {
						t.Fatal(err)
					}
				} else {
					for _, m := range ms {
						if err := s.Send(context.Background(), ep.Addr(), m); err != nil {
							t.Fatal(err)
						}
					}
				}
				waitFor(t, func() bool {
					mu.Lock()
					defer mu.Unlock()
					return len(got) == len(ms)
				}, "all deliveries")
				mu.Lock()
				defer mu.Unlock()
				return got
			}
			ms := mkMsgs(25)
			seq := deliver(false, ms)
			bat := deliver(true, ms)
			if len(seq) != len(bat) {
				t.Fatalf("sequential delivered %d, batched %d", len(seq), len(bat))
			}
			for k, v := range seq {
				if bat[k] != v {
					t.Fatalf("message %d: sequential %q, batched %q", k, v, bat[k])
				}
			}
		})
	}
}

// TestInMemBatchDropDeterminism: drop decisions are per message in send
// order, so under one seed a batched round loses exactly the messages
// the equivalent sequential sends lose.
func TestInMemBatchDropDeterminism(t *testing.T) {
	const total, seed = 400, 23
	run := func(batched bool) []int {
		n := NewInMem(InMemOptions{DropRate: 0.4, Seed: seed, Synchronous: true})
		defer n.Close()
		var got []int
		ep, _ := n.Listen("sink", func(_ context.Context, m *message.Message) {
			got = append(got, m.Seq)
		})
		ms := make([]*message.Message, total)
		for i := range ms {
			ms[i] = &message.Message{Type: message.TypeNotify, Seq: i}
		}
		s := n.Open("src")
		if batched {
			// Several frames, mirroring rounds of work.
			for start := 0; start < total; start += 40 {
				if err := s.SendBatch(context.Background(), ep.Addr(), ms[start:start+40]); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for _, m := range ms {
				if err := s.Send(context.Background(), ep.Addr(), m); err != nil {
					t.Fatal(err)
				}
			}
		}
		return got
	}
	seq := run(false)
	bat := run(true)
	if len(seq) == 0 || len(seq) == total {
		t.Fatalf("drop injection inert: %d of %d delivered", len(seq), total)
	}
	if len(seq) != len(bat) {
		t.Fatalf("sequential delivered %d, batched %d", len(seq), len(bat))
	}
	for i := range seq {
		if seq[i] != bat[i] {
			t.Fatalf("survivor %d: sequential seq %d, batched seq %d", i, seq[i], bat[i])
		}
	}
}

// TestTCPMixedLegacyAndBatchFrames: a raw connection interleaving
// old-style single-document frames with new batch frames is fully
// decoded — the v2 read side is back-compatible with pre-batch senders.
func TestTCPMixedLegacyAndBatchFrames(t *testing.T) {
	tn := NewTCP()
	defer tn.Close()
	var mu sync.Mutex
	var got []int
	ep, err := tn.Listen("127.0.0.1:0", func(_ context.Context, m *message.Message) {
		mu.Lock()
		got = append(got, m.Seq)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	writeFrame := func(payload []byte) {
		t.Helper()
		var prefix [4]byte
		binary.BigEndian.PutUint32(prefix[:], uint32(len(payload)))
		if _, err := conn.Write(append(prefix[:], payload...)); err != nil {
			t.Fatal(err)
		}
	}
	msg := func(seq int) *message.Message {
		return &message.Message{Type: message.TypeNotify, Instance: "i1", Seq: seq}
	}
	legacy, err := message.Marshal(msg(1))
	if err != nil {
		t.Fatal(err)
	}
	writeFrame(legacy) // old sender
	batch, err := message.MarshalBatch([]*message.Message{msg(2), msg(3), msg(4)})
	if err != nil {
		t.Fatal(err)
	}
	writeFrame(batch) // new sender
	legacy2, err := message.Marshal(msg(5))
	if err != nil {
		t.Fatal(err)
	}
	writeFrame(legacy2) // old sender again, same connection
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 5
	}, "mixed frame delivery")
	mu.Lock()
	defer mu.Unlock()
	seen := map[int]bool{}
	for _, s := range got {
		seen[s] = true
	}
	for want := 1; want <= 5; want++ {
		if !seen[want] {
			t.Fatalf("message %d lost; got %v", want, got)
		}
	}
}

// TestContractBatchStats: one SendBatch is one frame — FramesOut counts
// 1 while MsgsOut counts the batch width, on both transports.
func TestContractBatchStats(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			n := h.newNet()
			defer n.Close()
			var seen atomic.Int64
			ep, err := n.Listen(h.addrFor(1), func(context.Context, *message.Message) { seen.Add(1) })
			if err != nil {
				t.Fatal(err)
			}
			ms := make([]*message.Message, 8)
			for i := range ms {
				ms[i] = &message.Message{Type: message.TypeNotify, Seq: i}
			}
			s := n.Open("batcher")
			if err := s.SendBatch(context.Background(), ep.Addr(), ms); err != nil {
				t.Fatal(err)
			}
			waitFor(t, func() bool { return seen.Load() == 8 }, "batch delivery")
			out := n.Stats().Nodes["batcher"]
			if out.FramesOut != 1 || out.MsgsOut != 8 {
				t.Fatalf("sender stats = %+v, want FramesOut=1 MsgsOut=8", out)
			}
			in := n.Stats().Nodes[ep.Addr()]
			if in.MsgsIn != 8 || in.BytesIn != out.BytesOut {
				t.Fatalf("receiver stats = %+v (sender %+v)", in, out)
			}
			// Empty batch: a no-op, not a frame.
			if err := s.SendBatch(context.Background(), ep.Addr(), nil); err != nil {
				t.Fatal(err)
			}
			if fo := n.Stats().Nodes["batcher"].FramesOut; fo != 1 {
				t.Fatalf("empty batch emitted a frame (FramesOut=%d)", fo)
			}
		})
	}
}

func BenchmarkSendBatch(b *testing.B) {
	for _, h := range harnesses() {
		for _, width := range []int{1, 8, 32} {
			b.Run(fmt.Sprintf("%s/width-%d", h.name, width), func(b *testing.B) {
				n := h.newNet()
				defer n.Close()
				var seen atomic.Int64
				ep, err := n.Listen(h.addrFor(1), func(context.Context, *message.Message) { seen.Add(1) })
				if err != nil {
					b.Fatal(err)
				}
				ms := make([]*message.Message, width)
				for i := range ms {
					ms[i] = &message.Message{Type: message.TypeNotify, Vars: map[string]string{"a": "1", "b": "2"}}
				}
				s := n.Open("bench")
				ctx := context.Background()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := s.SendBatch(ctx, ep.Addr(), ms); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				deadline := time.Now().Add(10 * time.Second)
				for seen.Load() < int64(b.N*width) && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
			})
		}
	}
}
