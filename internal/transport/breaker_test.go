package transport

// The send-path circuit-breaker contract, run against both Network
// implementations like the rest of the fault suite. Deterministic: the
// breaker clock is injected, and queue pressure is created with the
// suite's stalled peers.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"selfserv/internal/circuit"
)

type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock { return &testClock{now: time.Unix(7000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// breakerFlow is testFlow plus a tight breaker: two consecutive send
// failures toward a destination trip it.
func breakerFlow(queue int, clk *testClock) FlowOptions {
	flow := testFlow(queue, QueueShed)
	flow.Breaker = &circuit.Options{
		Window: 2, MinSamples: 2, Threshold: 1.0,
		OpenFor: time.Minute, HalfOpenProbes: 1, Now: clk.Now,
	}
	return flow
}

// TestContractBreakerFailsFastWithoutQueueSlots pins the wedged-peer
// story: a destination whose bounded queue keeps refusing sends trips
// its breaker; while the breaker is open, further sends fail instantly
// with circuit.ErrOpen and never touch the queue (SendBlocked stops
// moving — no slots burned, no deadline waits); after the cool-down and
// the peer's recovery, the half-open probe send closes the breaker and
// traffic flows again.
func TestContractBreakerFailsFastWithoutQueueSlots(t *testing.T) {
	const queueLen = 4
	for _, impl := range faultImpls() {
		t.Run(impl.name, func(t *testing.T) {
			clk := newTestClock()
			n := impl.newNet(breakerFlow(queueLen, clk))
			defer n.Close()
			peer := impl.newStalled(t, n)
			ctx := context.Background()

			// Fill the stalled peer's bounded queue until two consecutive
			// sheds trip the breaker.
			var accepted []int
			fails := 0
			for i := 0; fails < 2 && i < 64; i++ {
				err := n.Send(ctx, peer.Addr(), seqMsg(i, impl.pad))
				switch {
				case err == nil:
					accepted = append(accepted, i)
					fails = 0
				case errors.Is(err, ErrQueueFull):
					fails++
				default:
					t.Fatalf("send %d: %v", i, err)
				}
			}
			if fails != 2 {
				t.Fatal("queue never refused two sends in a row")
			}
			st := n.Stats().Nodes[peer.Addr()]
			if st.BreakerOpens != 1 {
				t.Fatalf("BreakerOpens = %d, want 1; stats = %+v", st.BreakerOpens, st)
			}
			blockedBefore := st.SendBlocked

			// Open: instant refusals, no queue interaction.
			for i := 0; i < 5; i++ {
				err := n.Send(ctx, peer.Addr(), seqMsg(100+i, impl.pad))
				if !errors.Is(err, circuit.ErrOpen) {
					t.Fatalf("send while open = %v, want circuit.ErrOpen", err)
				}
			}
			st = n.Stats().Nodes[peer.Addr()]
			if st.SendBlocked != blockedBefore {
				t.Fatalf("open breaker burned queue slots: SendBlocked %d -> %d",
					blockedBefore, st.SendBlocked)
			}

			// The peer drains every accepted frame — in order, nothing from
			// the refused sends — and the cool-down elapses: the next send
			// is the half-open probe, succeeds, and re-closes the breaker.
			got := peer.Drain(t, len(accepted))
			assertSeqs(t, got, accepted)
			clk.Advance(2 * time.Minute)
			for i := 0; i < 3; i++ {
				if err := n.Send(ctx, peer.Addr(), seqMsg(200+i, impl.pad)); err != nil {
					t.Fatalf("send %d after recovery: %v", i, err)
				}
			}
		})
	}
}

// TestContractBreakerOnDeadDestination: sends to a destination nobody
// listens on fail with ErrUnknownAddress and feed the breaker; once it
// opens, further sends are refused with circuit.ErrOpen without
// re-resolving (for TCP: without re-dialing) the dead peer.
func TestContractBreakerOnDeadDestination(t *testing.T) {
	for _, impl := range faultImpls() {
		t.Run(impl.name, func(t *testing.T) {
			clk := newTestClock()
			n := impl.newNet(breakerFlow(4, clk))
			defer n.Close()
			ctx := context.Background()

			// A dead address for either implementation: nothing listens on
			// a fresh loopback port / an unregistered in-memory name.
			dead := "nobody-home"
			if _, ok := n.(*TCP); ok {
				dead = "127.0.0.1:9" // discard port, nothing listens in tests
			}

			for i := 0; i < 2; i++ {
				if err := n.Send(ctx, dead, seqMsg(i, 0)); !errors.Is(err, ErrUnknownAddress) {
					t.Fatalf("send %d to dead destination = %v, want ErrUnknownAddress", i, err)
				}
			}
			if err := n.Send(ctx, dead, seqMsg(2, 0)); !errors.Is(err, circuit.ErrOpen) {
				t.Fatalf("send after breaker trip = %v, want circuit.ErrOpen", err)
			}
			if got := n.Stats().Nodes[dead].BreakerOpens; got != 1 {
				t.Fatalf("BreakerOpens = %d, want 1", got)
			}
		})
	}
}

// TestAvailabilityRecorder: both implementations expose the recorder,
// and recorded events surface in destination-keyed stats and totals.
func TestAvailabilityRecorder(t *testing.T) {
	nets := map[string]Network{
		"inmem": NewInMem(InMemOptions{}),
		"tcp":   NewTCP(),
	}
	for name, n := range nets {
		t.Run(name, func(t *testing.T) {
			defer n.Close()
			rec, ok := n.(AvailabilityRecorder)
			if !ok {
				t.Fatalf("%T does not implement AvailabilityRecorder", n)
			}
			rec.RecordFailover("hostB")
			rec.RecordFailover("hostB")
			rec.RecordShed("hostB")
			rec.RecordBreakerOpen("hostC")
			st := n.Stats()
			b := st.Nodes["hostB"]
			if b.Failovers != 2 || b.ShedRequests != 1 {
				t.Fatalf("hostB stats = %+v", b)
			}
			if c := st.Nodes["hostC"]; c.BreakerOpens != 1 {
				t.Fatalf("hostC stats = %+v", c)
			}
			tot := st.Total()
			if tot.Failovers != 2 || tot.ShedRequests != 1 || tot.BreakerOpens != 1 {
				t.Fatalf("totals = %+v", tot)
			}
		})
	}
}
