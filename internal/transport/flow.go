package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"selfserv/internal/circuit"
)

// This file defines the flow-control and connection-lifecycle contract
// shared by both Network implementations. The pre-flow-control transport
// was fire-and-forget: under heavy fan-in a slow peer's frames piled up
// in kernel buffers (or, in memory, in unbounded goroutines) and the
// only failure handling was a single blind TCP retry. Flow control makes
// the sender's cost bounded and observable:
//
//   - every destination has a BOUNDED write queue of frames;
//   - a full queue either blocks the sender (up to SendDeadline) or
//     sheds the send with ErrQueueFull, per QueuePolicy;
//   - queue depth, blocked sends, and reconnects are visible in Stats,
//     keyed by the DESTINATION address (the slow peer is the one you
//     want to identify);
//   - cached connections age out (IdleTimeout), are capped (MaxConns),
//     and are re-established with jittered exponential backoff instead
//     of one blind retry.
//
// The executable version of this contract is faults_test.go, which runs
// identically against TCP and InMem.

// ErrQueueFull reports a send shed because the destination's bounded
// write queue was full (QueueShed policy).
var ErrQueueFull = errors.New("transport: send queue full")

// ErrSendDeadline reports a send abandoned because the destination's
// write queue stayed full for the whole send deadline (QueueBlock
// policy). The frame was NOT accepted: it will never be delivered.
var ErrSendDeadline = errors.New("transport: send deadline exceeded")

// QueuePolicy selects what a send does when the destination's write
// queue is full.
type QueuePolicy int

const (
	// QueueBlock waits for queue space up to FlowOptions.SendDeadline,
	// then fails with ErrSendDeadline. Backpressure propagates to the
	// sender — the default, matching the engine's expectation that a
	// returned nil means "accepted for delivery".
	QueueBlock QueuePolicy = iota
	// QueueShed fails immediately with ErrQueueFull. Latency-sensitive
	// callers that prefer losing a notification over stalling a round
	// use this and handle the error.
	QueueShed
)

// String returns the flag spelling of the policy ("block" / "shed").
func (p QueuePolicy) String() string {
	if p == QueueShed {
		return "shed"
	}
	return "block"
}

// ParseQueuePolicy parses the flag spelling produced by String.
func ParseQueuePolicy(s string) (QueuePolicy, error) {
	switch s {
	case "block", "":
		return QueueBlock, nil
	case "shed":
		return QueueShed, nil
	}
	return 0, errors.New("transport: queue policy must be \"block\" or \"shed\"")
}

// Default flow-control parameters (see FlowOptions).
const (
	DefaultQueueLen     = 256
	DefaultSendDeadline = 5 * time.Second
	DefaultBackoffBase  = 25 * time.Millisecond
	DefaultBackoffMax   = 2 * time.Second
	// DefaultMaxBatchBytes caps a cross-round merged frame's payload when
	// MaxBatchBytes is 0 and FlushDelay is enabled: large enough to fold
	// hundreds of control documents, small enough to keep head-of-line
	// latency at the receiver bounded.
	DefaultMaxBatchBytes = 256 << 10
	// DefaultRecvLanes is the per-endpoint receive-lane count: enough
	// stripes that distinct peer hosts rarely share a lane, few enough
	// that an idle endpoint costs a handful of parked goroutines.
	DefaultRecvLanes = 8
	// DefaultRecvQueueLen bounds each receive lane's queue, in frames —
	// the receive-side mirror of DefaultQueueLen.
	DefaultRecvQueueLen = 256
)

// FlowOptions tune per-destination flow control and connection
// lifecycle. The zero value means: 256-frame queues, block policy with a
// 5s send deadline, no idle eviction, no connection cap, 25ms..2s
// jittered reconnect backoff, and no cross-round merging (FlushDelay 0:
// one wire write per accepted frame).
type FlowOptions struct {
	// QueueLen caps the per-destination write queue, in frames. A send
	// finding the queue full blocks or sheds per Policy. 0 means 256.
	QueueLen int
	// Policy selects the full-queue behaviour (block by default).
	Policy QueuePolicy
	// SendDeadline bounds how long a QueueBlock send may wait for queue
	// space. 0 means 5s. A context deadline earlier than this wins.
	SendDeadline time.Duration
	// IdleTimeout evicts cached outbound connections that have been idle
	// (no enqueue, no queued frames) this long. 0 disables eviction.
	IdleTimeout time.Duration
	// MaxConns caps the outbound connection cache. When a dial would
	// exceed it, the least-recently-used idle connection is evicted
	// first. Connections with queued frames are never evicted, so the
	// cap is a soft bound under pathological fan-out. 0 means unlimited.
	MaxConns int
	// BackoffBase is the first reconnect delay; each further attempt
	// doubles it up to BackoffMax, jittered to 50-100% of the nominal
	// value. 0 means 25ms.
	BackoffBase time.Duration
	// BackoffMax caps the reconnect delay. 0 means 2s.
	BackoffMax time.Duration
	// BackoffSeed seeds the jitter RNG so reconnect schedules are
	// reproducible in tests. 0 means a fixed default seed.
	BackoffSeed int64
	// FlushDelay enables CROSS-ROUND batching, the Nagle-style
	// latency/throughput knob: a writer that picked up a frame waits this
	// long for more frames to the same destination, then merges
	// everything queued into ONE wire frame (message.MergeBatch — no
	// re-marshaling). Per-(sender,destination) FIFO and the receiver's
	// sequential intra-frame delivery are preserved, so merging is
	// invisible except in frame counts and stats (FramesMerged,
	// MergedMsgsPerFrame). 0 — the default — disables merging entirely:
	// every accepted frame gets its own wire write, byte-identical to the
	// pre-merge transport. Latency-sensitive paths keep 0; throughput-
	// bound fan-in workloads trade FlushDelay of added latency for fewer,
	// larger writes.
	FlushDelay time.Duration
	// MaxBatchBytes caps a merged frame's payload size: when folding the
	// next queued frame in would exceed it, the writer flushes what it
	// has and starts a new batch with that frame. 0 means 256 KiB.
	// Ignored while FlushDelay is 0.
	MaxBatchBytes int
	// RecvLanes is the number of bounded delivery lanes each listening
	// endpoint runs. Inbound frames are hashed by SENDER onto a lane and
	// each lane delivers its frames to the handler sequentially, in
	// arrival order — so cross-frame per-sender FIFO is a contract, not
	// a scheduling accident, and a burst can never explode into
	// unbounded delivery goroutines. 0 means 8.
	RecvLanes int
	// RecvQueueLen bounds each receive lane's queue, in frames. A full
	// lane blocks the reader that feeds it (for TCP the connection's
	// read loop — backpressure propagates through the kernel to the
	// sender's bounded write queue; in memory the sender itself), never
	// drops. 0 means 256.
	RecvQueueLen int
	// Breaker enables a per-DESTINATION circuit breaker on the send path
	// with these settings; nil (the default) disables breakers entirely.
	// With a breaker, repeated send failures toward one destination
	// (queue-full sheds, send-deadline expiries, failed first dials) trip
	// its breaker open, and further sends to it fail fast with
	// circuit.ErrOpen BEFORE touching the write queue — a wedged peer
	// costs its callers an error check, not a queue slot and a deadline
	// wait. Breaker trips are visible in Stats (NodeStats.BreakerOpens).
	Breaker *circuit.Options
}

// withDefaults fills zero fields with the documented defaults.
func (o FlowOptions) withDefaults() FlowOptions {
	if o.QueueLen <= 0 {
		o.QueueLen = DefaultQueueLen
	}
	if o.SendDeadline <= 0 {
		o.SendDeadline = DefaultSendDeadline
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = DefaultBackoffBase
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = DefaultBackoffMax
	}
	if o.BackoffSeed == 0 {
		o.BackoffSeed = 1
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if o.RecvLanes <= 0 {
		o.RecvLanes = DefaultRecvLanes
	}
	if o.RecvQueueLen <= 0 {
		o.RecvQueueLen = DefaultRecvQueueLen
	}
	return o
}

// laneFor hashes a sender key onto one of n receive lanes (FNV-1a).
// Both transports key by the frame's LOGICAL source — its first
// message's From (engine outboxes batch exactly one source per frame) —
// deliberately not by connection or peer address: the logical key is
// stable across reconnects (the per-sender FIFO contract survives
// them) and distinct for senders sharing a host, which an IP key would
// collapse onto one serialized lane.
func laneFor(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(n))
}

// sendWait returns how long a QueueBlock send may wait for queue space:
// the configured SendDeadline, shortened by an earlier context deadline.
func (o FlowOptions) sendWait(ctx context.Context) time.Duration {
	wait := o.SendDeadline
	if dl, ok := ctx.Deadline(); ok {
		if until := time.Until(dl); until < wait {
			wait = until
		}
	}
	return wait
}

// errQueueFull and errSendDeadline build the shared policy errors, so
// both Network implementations refuse sends with identical wording (the
// contract suite runs against both).
func (o FlowOptions) errQueueFull(to string) error {
	return fmt.Errorf("%w: %d frames queued to %s", ErrQueueFull, o.QueueLen, to)
}

func (o FlowOptions) errSendDeadline(to string, wait time.Duration) error {
	return fmt.Errorf("%w: %s still full after %v (%d frames queued)",
		ErrSendDeadline, to, wait, o.QueueLen)
}

// backoff computes jittered exponential reconnect delays. It is shared
// by every connection of one network so the jitter stream is a single
// seeded sequence — reproducible under a fixed seed.
type backoff struct {
	base, max time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

func newBackoff(o FlowOptions) *backoff {
	return &backoff{base: o.BackoffBase, max: o.BackoffMax, rng: rand.New(rand.NewSource(o.BackoffSeed))}
}

// delay returns the sleep before reconnect attempt n (n >= 1):
// min(base<<(n-1), max), jittered to 50-100% so reconnect storms from
// many peers decorrelate.
func (b *backoff) delay(attempt int) time.Duration {
	d := b.base
	for i := 1; i < attempt && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	b.mu.Lock()
	f := 0.5 + 0.5*b.rng.Float64()
	b.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// sendBreakers is the per-destination breaker set shared by both Network
// implementations (nil when FlowOptions.Breaker is nil — every method is
// nil-safe, so the send paths never branch). Trips are mirrored into the
// destination's node stats.
type sendBreakers struct {
	group *circuit.Group
}

func newSendBreakers(flow FlowOptions, book *statsBook) *sendBreakers {
	if flow.Breaker == nil {
		return nil
	}
	g := circuit.NewGroup(*flow.Breaker)
	g.OnOpen(func(dest string) { book.node(dest).breakerOpens.Add(1) })
	return &sendBreakers{group: g}
}

// allow admits or refuses a send toward to. A refusal wraps
// circuit.ErrOpen and cost the caller no queue slot.
func (b *sendBreakers) allow(to string) error {
	if b == nil {
		return nil
	}
	if err := b.group.Get(to).Allow(); err != nil {
		return fmt.Errorf("transport: to %s: %w", to, err)
	}
	return nil
}

// record feeds one send outcome to the destination's breaker. Flow
// refusals (queue full, send deadline), context expiry while queued, and
// dead-destination dials count as failures; acceptance counts as
// success; structural errors (closed network, encode) count as neither.
func (b *sendBreakers) record(to string, err error) {
	if b == nil {
		return
	}
	switch {
	case err == nil:
		b.group.Get(to).Success()
	case errors.Is(err, ErrQueueFull),
		errors.Is(err, ErrSendDeadline),
		errors.Is(err, ErrUnknownAddress),
		errors.Is(err, context.DeadlineExceeded):
		b.group.Get(to).Failure()
	}
}

// state reports the breaker state toward to (Closed when disabled).
func (b *sendBreakers) state(to string) circuit.State {
	if b == nil {
		return circuit.Closed
	}
	return b.group.Get(to).State()
}
