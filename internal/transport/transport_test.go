package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"selfserv/internal/message"
)

// harness abstracts over the two Network implementations so the same
// contract tests run against both.
type harness struct {
	name string
	// newNet builds a fresh network.
	newNet func() Network
	// addrFor produces a listen address for logical node i.
	addrFor func(i int) string
}

func harnesses() []harness {
	return []harness{
		{
			name:    "inmem",
			newNet:  func() Network { return NewInMem(InMemOptions{}) },
			addrFor: func(i int) string { return fmt.Sprintf("node-%d", i) },
		},
		{
			name:    "tcp",
			newNet:  func() Network { return NewTCP() },
			addrFor: func(i int) string { return "127.0.0.1:0" },
		},
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestContractDeliver(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			n := h.newNet()
			defer n.Close()

			var mu sync.Mutex
			var got []*message.Message
			ep, err := n.Listen(h.addrFor(1), func(_ context.Context, m *message.Message) {
				mu.Lock()
				got = append(got, m)
				mu.Unlock()
			})
			if err != nil {
				t.Fatalf("Listen: %v", err)
			}
			msg := &message.Message{
				Type: message.TypeNotify, Composite: "C", Instance: "i1",
				From: "a", To: "b", Vars: map[string]string{"x": "1"},
			}
			if err := n.Send(context.Background(), ep.Addr(), msg); err != nil {
				t.Fatalf("Send: %v", err)
			}
			waitFor(t, func() bool {
				mu.Lock()
				defer mu.Unlock()
				return len(got) == 1
			}, "delivery")
			mu.Lock()
			defer mu.Unlock()
			if got[0].Vars["x"] != "1" || got[0].Instance != "i1" {
				t.Fatalf("delivered %+v", got[0])
			}
		})
	}
}

func TestContractManyToOneOrdering(t *testing.T) {
	// Deliveries are concurrent, but none may be lost.
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			n := h.newNet()
			defer n.Close()
			var count atomic.Int64
			ep, err := n.Listen(h.addrFor(1), func(_ context.Context, m *message.Message) {
				count.Add(1)
			})
			if err != nil {
				t.Fatal(err)
			}
			const senders, per = 8, 50
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						m := &message.Message{Type: message.TypeNotify, Seq: i, From: fmt.Sprintf("s%d", s)}
						if err := n.Send(context.Background(), ep.Addr(), m); err != nil {
							t.Errorf("Send: %v", err)
							return
						}
					}
				}(s)
			}
			wg.Wait()
			waitFor(t, func() bool { return count.Load() == senders*per }, "all deliveries")
		})
	}
}

func TestContractUnknownAddress(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			n := h.newNet()
			defer n.Close()
			var bad string
			if h.name == "tcp" {
				bad = "127.0.0.1:1" // almost certainly nothing listens here
			} else {
				bad = "nobody"
			}
			err := n.Send(context.Background(), bad, &message.Message{Type: message.TypeStart})
			if !errors.Is(err, ErrUnknownAddress) {
				t.Fatalf("Send to unknown = %v, want ErrUnknownAddress", err)
			}
		})
	}
}

func TestContractCloseRejectsSend(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			n := h.newNet()
			ep, err := n.Listen(h.addrFor(1), func(context.Context, *message.Message) {})
			if err != nil {
				t.Fatal(err)
			}
			addr := ep.Addr()
			if err := n.Close(); err != nil {
				t.Fatal(err)
			}
			err = n.Send(context.Background(), addr, &message.Message{Type: message.TypeStart})
			if err == nil {
				t.Fatal("Send after Close succeeded")
			}
		})
	}
}

func TestContractStats(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			n := h.newNet()
			defer n.Close()
			var seen atomic.Int64
			ep, err := n.Listen(h.addrFor(1), func(context.Context, *message.Message) { seen.Add(1) })
			if err != nil {
				t.Fatal(err)
			}
			s := n.Open("sender-A")
			if s.From() != "sender-A" {
				t.Fatalf("Open attributed to %q", s.From())
			}
			ctx := context.Background()
			for i := 0; i < 3; i++ {
				if err := s.Send(ctx, ep.Addr(), &message.Message{Type: message.TypeNotify}); err != nil {
					t.Fatal(err)
				}
			}
			waitFor(t, func() bool { return seen.Load() == 3 }, "deliveries")
			st := n.Stats()
			in := st.Nodes[ep.Addr()]
			if in.MsgsIn != 3 || in.BytesIn == 0 {
				t.Fatalf("receiver stats = %+v", in)
			}
			out := st.Nodes["sender-A"]
			if out.MsgsOut != 3 || out.BytesOut != in.BytesIn {
				t.Fatalf("sender stats = %+v (receiver %+v)", out, in)
			}
			if out.FramesOut != 3 {
				t.Fatalf("FramesOut = %d, want 3 (one frame per single send)", out.FramesOut)
			}
			total := st.Total()
			if total.MsgsIn != 3 || total.MsgsOut != 3 {
				t.Fatalf("total = %+v", total)
			}
			name, busiest := st.Busiest()
			if busiest.MsgsIn+busiest.MsgsOut == 0 || name == "" {
				t.Fatalf("busiest = %q %+v", name, busiest)
			}
		})
	}
}

func TestInMemSynchronousDeterminism(t *testing.T) {
	n := NewInMem(InMemOptions{Synchronous: true})
	defer n.Close()
	var order []int
	ep, _ := n.Listen("sink", func(_ context.Context, m *message.Message) {
		order = append(order, m.Seq) // safe: synchronous delivery, single sender
	})
	for i := 0; i < 10; i++ {
		if err := n.Send(context.Background(), ep.Addr(), &message.Message{Type: message.TypeNotify, Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range order {
		if s != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestInMemDropRate(t *testing.T) {
	n := NewInMem(InMemOptions{DropRate: 0.5, Seed: 42, Synchronous: true})
	defer n.Close()
	delivered := 0
	ep, _ := n.Listen("sink", func(context.Context, *message.Message) { delivered++ })
	const total = 1000
	for i := 0; i < total; i++ {
		if err := n.Send(context.Background(), ep.Addr(), &message.Message{Type: message.TypeNotify}); err != nil {
			t.Fatal(err)
		}
	}
	if delivered < total/3 || delivered > 2*total/3 {
		t.Fatalf("delivered %d of %d with 50%% drop", delivered, total)
	}
	// Deterministic under the same seed.
	n2 := NewInMem(InMemOptions{DropRate: 0.5, Seed: 42, Synchronous: true})
	defer n2.Close()
	delivered2 := 0
	ep2, _ := n2.Listen("sink", func(context.Context, *message.Message) { delivered2++ })
	for i := 0; i < total; i++ {
		_ = n2.Send(context.Background(), ep2.Addr(), &message.Message{Type: message.TypeNotify})
	}
	if delivered2 != delivered {
		t.Fatalf("same seed delivered %d then %d", delivered, delivered2)
	}
}

func TestInMemLatency(t *testing.T) {
	n := NewInMem(InMemOptions{Latency: 30 * time.Millisecond})
	defer n.Close()
	done := make(chan time.Time, 1)
	ep, _ := n.Listen("sink", func(context.Context, *message.Message) { done <- time.Now() })
	start := time.Now()
	if err := n.Send(context.Background(), ep.Addr(), &message.Message{Type: message.TypeNotify}); err != nil {
		t.Fatal(err)
	}
	at := <-done
	if d := at.Sub(start); d < 25*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~30ms", d)
	}
}

// TestInMemLatencyPipelines pins that simulated wire time is a per-frame
// DELAY, not per-lane service time: back-to-back frames from one sender
// (one lane) each arrive ~Latency after their own send, concurrently in
// flight — the lane worker waits on send-time deadlines, it does not
// sleep Latency per frame. Five frames at 100ms must therefore complete
// in ~100ms total, nowhere near the 500ms a serialized sleep would take.
func TestInMemLatencyPipelines(t *testing.T) {
	const lat = 100 * time.Millisecond
	n := NewInMem(InMemOptions{Latency: lat})
	defer n.Close()
	var mu sync.Mutex
	var got []int
	ep, _ := n.Listen("sink", func(_ context.Context, m *message.Message) {
		mu.Lock()
		got = append(got, m.Seq)
		mu.Unlock()
	})
	start := time.Now()
	const frames = 5
	for i := 0; i < frames; i++ {
		if err := n.Send(context.Background(), ep.Addr(), &message.Message{Type: message.TypeNotify, From: "one-sender", Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == frames
	}, "all deliveries")
	elapsed := time.Since(start)
	if elapsed < lat-10*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~%v", elapsed, lat)
	}
	if elapsed > time.Duration(frames-1)*lat {
		t.Fatalf("deliveries took %v — latency is accumulating per queued frame instead of pipelining", elapsed)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, s := range got {
		if s != i {
			t.Fatalf("lane reordered under latency: %v", got)
		}
	}
}

func TestInMemDuplicateListen(t *testing.T) {
	n := NewInMem(InMemOptions{})
	defer n.Close()
	if _, err := n.Listen("a", func(context.Context, *message.Message) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a", func(context.Context, *message.Message) {}); err == nil {
		t.Fatal("duplicate Listen succeeded")
	}
	if _, err := n.Listen("", func(context.Context, *message.Message) {}); err == nil {
		t.Fatal("empty address accepted")
	}
	if _, err := n.Listen("b", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestEndpointCloseStopsDelivery(t *testing.T) {
	n := NewInMem(InMemOptions{Synchronous: true})
	defer n.Close()
	got := 0
	ep, _ := n.Listen("x", func(context.Context, *message.Message) { got++ })
	if err := n.Send(context.Background(), "x", &message.Message{Type: message.TypeNotify}); err != nil {
		t.Fatal(err)
	}
	ep.Close()
	err := n.Send(context.Background(), "x", &message.Message{Type: message.TypeNotify})
	if !errors.Is(err, ErrUnknownAddress) {
		t.Fatalf("Send after endpoint close = %v", err)
	}
	if got != 1 {
		t.Fatalf("got %d deliveries", got)
	}
}

func TestTCPReconnectAfterReceiverRestart(t *testing.T) {
	n := NewTCP()
	defer n.Close()
	recv := NewTCP()
	var count atomic.Int64
	ep, err := recv.Listen("127.0.0.1:0", func(context.Context, *message.Message) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	addr := ep.Addr()
	if err := n.Send(context.Background(), addr, &message.Message{Type: message.TypeNotify}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return count.Load() == 1 }, "first delivery")

	// Restart the receiver on the same port; the sender's cached
	// connection is now stale and must be re-dialed transparently.
	ep.Close()
	ep2, err := recv.Listen(addr, func(context.Context, *message.Message) { count.Add(1) })
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	defer ep2.Close()
	// Sends are fire-and-forget: a write into the stale connection can be
	// silently buffered by the OS before the reset is detected, so the
	// contract is "eventually delivered under retry", not exactly-once.
	deadline := time.Now().Add(5 * time.Second)
	for count.Load() < 2 && time.Now().Before(deadline) {
		_ = n.Send(context.Background(), addr, &message.Message{Type: message.TypeNotify})
		time.Sleep(20 * time.Millisecond)
	}
	if count.Load() < 2 {
		t.Fatal("message never delivered after receiver restart")
	}
	recv.Close()
}

func TestAnonymousSendHasNoSenderAttribution(t *testing.T) {
	// Network.Send (no handle) counts receiver traffic but attributes no
	// sender — only Senders opened via the Opener carry attribution.
	n := NewInMem(InMemOptions{Synchronous: true})
	defer n.Close()
	ep, _ := n.Listen("sink", func(context.Context, *message.Message) {})
	if err := n.Send(context.Background(), ep.Addr(), &message.Message{Type: message.TypeNotify}); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if got := st.Nodes[ep.Addr()]; got.MsgsIn != 1 {
		t.Fatalf("receiver stats = %+v", got)
	}
	if total := st.Total(); total.MsgsOut != 0 || total.FramesOut != 0 {
		t.Fatalf("anonymous send attributed outbound traffic: %+v", total)
	}
}

func BenchmarkInMemSend(b *testing.B) {
	n := NewInMem(InMemOptions{Synchronous: true})
	defer n.Close()
	ep, _ := n.Listen("sink", func(context.Context, *message.Message) {})
	m := &message.Message{Type: message.TypeNotify, Vars: map[string]string{"a": "1", "b": "2"}}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := n.Send(ctx, ep.Addr(), m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPSend(b *testing.B) {
	n := NewTCP()
	defer n.Close()
	var count atomic.Int64
	ep, err := n.Listen("127.0.0.1:0", func(context.Context, *message.Message) { count.Add(1) })
	if err != nil {
		b.Fatal(err)
	}
	m := &message.Message{Type: message.TypeNotify, Vars: map[string]string{"a": "1", "b": "2"}}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Send(ctx, ep.Addr(), m); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	deadline := time.Now().Add(10 * time.Second)
	for count.Load() < int64(b.N) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}
